// Exhaustive adversary: explore every schedule the adversary can force.
//
// A protocol solves a problem only if every execution (every sequence of
// adversarial writer choices) is successful and yields a correct output
// (§2). For small n this is checkable by brute force: the explorer branches
// on each adversary decision and visits every maximal execution. It
// backtracks one journaling EngineState (checkpoint/rewind) instead of
// copying the state at every branch, so a steady-state visit performs no
// heap allocation; tests/wb/exhaustive_test.cpp pins its visit sequence
// against a reference copy-per-branch DFS.
//
// Parallel exploration (ExhaustiveOptions::threads != 1): the schedule tree
// is partitioned at its top one or two decision levels into independent
// subtree tasks — each task is a decision prefix; a worker replays the
// prefix on its own journaling EngineState and exhausts the subtree below —
// and the tasks fan out over the shared worker pool
// (src/support/thread_pool.h). The partition depends only on (graph,
// protocol), never on the thread count, so the set of executions visited and
// the returned total are bit-identical at any thread count; only the
// inter-task visit order varies. threads == 1 is the serial reference path
// the tests oracle against.
//
// Distributed exploration (src/wb/shard.h) builds on the same partition: the
// PrefixTask list is public, and for_each_execution_under sweeps an
// arbitrary subset of subtree tasks, so shards of one sweep can run in
// different processes (or on different hosts) and be merged afterwards.
//
// This is the strongest evidence our simulator can produce for the "yes"
// cells of Table 2, and the machinery behind the minimax searches in the
// benches.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "src/support/hash.h"
#include "src/wb/distinct.h"
#include "src/wb/engine.h"

namespace wb {

struct ExhaustiveOptions {
  /// Upper bound on executions to visit (the explorer throws
  /// BudgetExceededError when the bound would be exceeded — a guard against
  /// accidental n! blowups). Enforced by a shared counter in parallel runs,
  /// so whether a sweep throws is thread-count independent.
  std::uint64_t max_executions = 2'000'000;
  /// Subtree-sweep workers: 1 (default) = the serial reference path; 0 = one
  /// worker per hardware thread; k = at most k workers. With any value other
  /// than 1 the visitor may be invoked concurrently from pool workers and
  /// must be thread-safe (the library's own aggregators below already are).
  std::size_t threads = 1;
  /// Distinct-board accumulator for count_distinct_final_boards (and every
  /// layer above it): exact sorted-run dedup, or a HyperLogLog sketch whose
  /// memory is flat in the cardinality. See src/wb/distinct.h.
  DistinctConfig distinct{};
  /// Hash-consed state memoization (sweep_memoized below): branches whose
  /// engine state — board content + written set, EngineState::memo_key() —
  /// was already explored are answered from a memo table instead of
  /// re-descending. Totals are bit-identical to the unmemoized serial sweep;
  /// the visitor-level APIs (for_each_execution*) ignore the flag, since
  /// their contract is one visit per execution. Serial only.
  bool memoize = false;
  EngineOptions engine;
};

/// Thrown when a sweep would visit more than max_executions executions.
/// A LogicError subclass so existing "guard against blowups" handling keeps
/// working; the distributed sharding layer catches the precise type to turn
/// a worker-local overrun into a deterministic ShardResult flag.
class BudgetExceededError : public LogicError {
 public:
  explicit BudgetExceededError(std::uint64_t max_executions)
      : LogicError("exhaustive exploration budget exceeded (max_executions = " +
                   std::to_string(max_executions) + ")"),
        max_executions_(max_executions) {}
  [[nodiscard]] std::uint64_t max_executions() const noexcept {
    return max_executions_;
  }

 private:
  std::uint64_t max_executions_;
};

/// One independent subtree of the schedule tree, identified by the adversary
/// decisions leading to it (at most the top two levels). depth == 0 is the
/// whole tree.
struct PrefixTask {
  std::array<NodeId, 2> decision{kNoNode, kNoNode};
  std::size_t depth = 0;
  [[nodiscard]] std::span<const NodeId> prefix() const {
    return {decision.data(), depth};
  }
  friend bool operator==(const PrefixTask&, const PrefixTask&) = default;
};

/// Split the top of the schedule tree into independent subtree tasks: one
/// per level-1 branch when the root fan-out already feeds `target_tasks`
/// workers, else one per (level-1, level-2) decision pair. The partition
/// depends only on (graph, protocol, target_tasks) — never on scheduling —
/// and its subtrees' leaves tile the full execution set exactly once; this
/// is what makes both thread- and process-level fan-out mergeable back into
/// bit-identical totals. A root round that is already terminal (a single
/// execution) yields one depth-0 task, so the tiling property holds
/// unconditionally.
[[nodiscard]] std::vector<PrefixTask> partition_executions(
    const Graph& g, const Protocol& p, const EngineOptions& eopts,
    std::size_t target_tasks);

/// The partition a `threads`-worker sweep uses (0 = one worker per hardware
/// thread, 1 = the single whole-tree task of the serial path; otherwise
/// several tasks per worker so dynamic claiming load-balances subtrees of
/// uneven size). This is the one place the load-balancing policy lives —
/// for_each_execution and the CLI exhaustive runner both partition through
/// it, so a caller pairing for_each_execution_under with per-task
/// aggregation sweeps exactly the library's own task shape.
[[nodiscard]] std::vector<PrefixTask> partition_for_threads(
    const Graph& g, const Protocol& p, const EngineOptions& eopts,
    std::size_t threads);

/// Visit every maximal execution of `p` on `g`. The visitor may return false
/// to stop early (e.g. after the first counterexample); the current subtree
/// unwinds and — in parallel runs — sibling subtree tasks are cancelled at
/// their next poll.
/// Returns the number of executions visited, which is exactly the number of
/// visitor invocations: bit-identical at every thread count for a full
/// sweep; under an early stop it is exact but (with threads != 1)
/// scheduling-dependent, since concurrent workers may complete visits
/// already in flight.
std::uint64_t for_each_execution(
    const Graph& g, const Protocol& p,
    const std::function<bool(const ExecutionResult&)>& visit,
    const ExhaustiveOptions& opts = {});

/// Visit every maximal execution inside the subtrees named by `tasks` (one
/// shard of a sweep whose full task list came from partition_executions).
/// The visitor receives the index of the task the execution belongs to, so
/// per-task aggregation needs no locking (a single task is always processed
/// by one worker). Budget, early stop, and the returned count behave exactly
/// as in for_each_execution; with tasks covering the whole tree the visited
/// set and total are bit-identical to it at any thread count.
std::uint64_t for_each_execution_under(
    const Graph& g, const Protocol& p, std::span<const PrefixTask> tasks,
    const std::function<bool(const ExecutionResult&, std::size_t)>& visit,
    const ExhaustiveOptions& opts = {});

/// True iff every execution is successful and `accept(result)` holds for all
/// of them. Stops at the first violation and cancels sibling subtrees; the
/// verdict is deterministic at any thread count. `accept` must be
/// thread-safe when opts.threads != 1.
[[nodiscard]] bool all_executions_ok(
    const Graph& g, const Protocol& p,
    const std::function<bool(const ExecutionResult&)>& accept,
    const ExhaustiveOptions& opts = {});

/// Aggregates of one memoized sweep. The first four are pinned bit-identical
/// to the unmemoized serial sweep's accounting (same executions, same
/// verdict arithmetic, same distinct count — exact or hll); the rest report
/// how much the memo collapsed the schedule tree.
struct MemoizedTotals {
  std::uint64_t executions = 0;
  std::uint64_t engine_failures = 0;  // non-success terminal statuses
  std::uint64_t wrong_outputs = 0;    // successful but judge(result) == false
  std::uint64_t distinct = 0;         // distinct final boards, per opts.distinct
  std::uint64_t states_explored = 0;  // distinct non-terminal states expanded
  std::uint64_t memo_hits = 0;        // branches answered from the table
  std::uint64_t terminals_visited = 0;  // judge invocations (≤ executions)
};

/// Exhaustive sweep with hash-consed state memoization: a depth-first walk
/// on one journaling EngineState that keys every branch point by
/// EngineState::memo_key() and reuses the (executions, failures, wrong)
/// subtree totals of states it has seen before. Protocols whose messages
/// embed the writer's id never collapse (every board is order-unique — the
/// memo is pure overhead); anonymous-message protocols (anon-degree)
/// collapse factorially. Honors opts.max_executions with the same
/// observable as the unmemoized sweep (throws BudgetExceededError iff it
/// would); requires opts.threads == 1 and fault-free engine options.
/// `judge` is invoked once per distinct terminal state, not per execution.
[[nodiscard]] MemoizedTotals sweep_memoized(
    const Graph& g, const Protocol& p,
    const std::function<bool(const ExecutionResult&)>& judge,
    const ExhaustiveOptions& opts = {});

/// Count distinct final whiteboards over all executions (by content, keyed
/// by a word-wise 128-bit hash — see src/support/hash.h), through the
/// accumulator opts.distinct selects (src/wb/distinct.h): exact sorted-run
/// dedup by default — peak memory O(distinct boards), not O(executions) —
/// or a HyperLogLog estimate whose memory is flat in the cardinality, for
/// sweeps past the exact mode's ~10^9-distinct memory wall. Either way one
/// accumulator per subtree task is folded by an order-oblivious merge, so
/// the result is bit-identical at any thread count.
/// Diagnostic for order-oblivious protocols: a SIMASYNC whiteboard is a
/// permutation of one fixed message multiset, so decoders must not depend on
/// order; this reports how much the adversary can vary the board.
[[nodiscard]] std::uint64_t count_distinct_final_boards(
    const Graph& g, const Protocol& p, const ExhaustiveOptions& opts = {});

}  // namespace wb
