// Exhaustive adversary: explore every schedule the adversary can force.
//
// A protocol solves a problem only if every execution (every sequence of
// adversarial writer choices) is successful and yields a correct output
// (§2). For small n this is checkable by brute force: the explorer branches
// on each adversary decision and visits every maximal execution. It
// backtracks one journaling EngineState (checkpoint/rewind) instead of
// copying the state at every branch, so a steady-state visit performs no
// heap allocation; tests/wb/exhaustive_test.cpp pins its visit sequence
// against a reference copy-per-branch DFS.
//
// Parallel exploration (ExhaustiveOptions::threads != 1): the schedule tree
// is partitioned at its top one or two decision levels into independent
// subtree tasks — each task is a decision prefix; a worker replays the
// prefix on its own journaling EngineState and exhausts the subtree below —
// and the tasks fan out over the shared worker pool
// (src/support/thread_pool.h). The partition depends only on (graph,
// protocol), never on the thread count, so the set of executions visited and
// the returned total are bit-identical at any thread count; only the
// inter-task visit order varies. threads == 1 is the serial reference path
// the tests oracle against.
//
// This is the strongest evidence our simulator can produce for the "yes"
// cells of Table 2, and the machinery behind the minimax searches in the
// benches.
#pragma once

#include <cstdint>
#include <functional>

#include "src/wb/engine.h"

namespace wb {

struct ExhaustiveOptions {
  /// Upper bound on executions to visit (the explorer throws LogicError when
  /// the bound would be exceeded — a guard against accidental n! blowups).
  /// Enforced by a shared counter in parallel runs, so whether a sweep
  /// throws is thread-count independent.
  std::uint64_t max_executions = 2'000'000;
  /// Subtree-sweep workers: 1 (default) = the serial reference path; 0 = one
  /// worker per hardware thread; k = at most k workers. With any value other
  /// than 1 the visitor may be invoked concurrently from pool workers and
  /// must be thread-safe (the library's own aggregators below already are).
  std::size_t threads = 1;
  EngineOptions engine;
};

/// Visit every maximal execution of `p` on `g`. The visitor may return false
/// to stop early (e.g. after the first counterexample); the current subtree
/// unwinds and — in parallel runs — sibling subtree tasks are cancelled at
/// their next poll.
/// Returns the number of executions visited, which is exactly the number of
/// visitor invocations: bit-identical at every thread count for a full
/// sweep; under an early stop it is exact but (with threads != 1)
/// scheduling-dependent, since concurrent workers may complete visits
/// already in flight.
std::uint64_t for_each_execution(
    const Graph& g, const Protocol& p,
    const std::function<bool(const ExecutionResult&)>& visit,
    const ExhaustiveOptions& opts = {});

/// True iff every execution is successful and `accept(result)` holds for all
/// of them. Stops at the first violation and cancels sibling subtrees; the
/// verdict is deterministic at any thread count. `accept` must be
/// thread-safe when opts.threads != 1.
[[nodiscard]] bool all_executions_ok(
    const Graph& g, const Protocol& p,
    const std::function<bool(const ExecutionResult&)>& accept,
    const ExhaustiveOptions& opts = {});

/// Count distinct final whiteboards over all executions (by content, keyed
/// by a word-wise 128-bit hash — see src/support/hash.h).
/// Streaming: keys are deduplicated into sorted runs as the sweep proceeds
/// (per worker in parallel runs, merged by sorted-run union), so peak memory
/// is O(distinct boards), not O(executions) — the count no longer buffers
/// one 16-byte key per execution, which matters for sweeps past ~10^8
/// executions. The result is bit-identical at any thread count.
/// Diagnostic for order-oblivious protocols: a SIMASYNC whiteboard is a
/// permutation of one fixed message multiset, so decoders must not depend on
/// order; this reports how much the adversary can vary the board.
[[nodiscard]] std::uint64_t count_distinct_final_boards(
    const Graph& g, const Protocol& p, const ExhaustiveOptions& opts = {});

}  // namespace wb
