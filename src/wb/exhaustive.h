// Exhaustive adversary: explore every schedule the adversary can force.
//
// A protocol solves a problem only if every execution (every sequence of
// adversarial writer choices) is successful and yields a correct output
// (§2). For small n this is checkable by brute force: the explorer branches
// on each adversary decision and visits every maximal execution. It
// backtracks one journaling EngineState (checkpoint/rewind) instead of
// copying the state at every branch, so a steady-state visit performs no
// heap allocation; tests/wb/exhaustive_test.cpp pins its visit sequence
// against a reference copy-per-branch DFS.
//
// This is the strongest evidence our simulator can produce for the "yes"
// cells of Table 2, and the machinery behind the minimax searches in the
// benches.
#pragma once

#include <cstdint>
#include <functional>

#include "src/wb/engine.h"

namespace wb {

struct ExhaustiveOptions {
  /// Upper bound on executions to visit (the explorer throws LogicError when
  /// the bound would be exceeded — a guard against accidental n! blowups).
  std::uint64_t max_executions = 2'000'000;
  EngineOptions engine;
};

/// Visit every maximal execution of `p` on `g`. The visitor may return false
/// to stop early (e.g. after the first counterexample); for_each_execution
/// then returns immediately.
/// Returns the number of executions visited.
std::uint64_t for_each_execution(
    const Graph& g, const Protocol& p,
    const std::function<bool(const ExecutionResult&)>& visit,
    const ExhaustiveOptions& opts = {});

/// True iff every execution is successful and `accept(result)` holds for all
/// of them. Stops at the first violation.
[[nodiscard]] bool all_executions_ok(
    const Graph& g, const Protocol& p,
    const std::function<bool(const ExecutionResult&)>& accept,
    const ExhaustiveOptions& opts = {});

/// Count distinct final whiteboards over all executions (by content, keyed
/// by a word-wise 128-bit hash — see src/support/hash.h).
/// Diagnostic for order-oblivious protocols: a SIMASYNC whiteboard is a
/// permutation of one fixed message multiset, so decoders must not depend on
/// order; this reports how much the adversary can vary the board.
[[nodiscard]] std::uint64_t count_distinct_final_boards(
    const Graph& g, const Protocol& p, const ExhaustiveOptions& opts = {});

}  // namespace wb
