// A node's local knowledge (§2): its own ID, the IDs of its neighbors, and
// the total number of nodes n. This is the *only* graph information a
// protocol callback may consult; the engine never exposes the full graph.
#pragma once

#include <algorithm>
#include <span>

#include "src/graph/graph.h"

namespace wb {

class LocalView {
 public:
  LocalView(NodeId id, std::span<const NodeId> neighbors, std::size_t n)
      : id_(id), neighbors_(neighbors), n_(n) {}

  [[nodiscard]] NodeId id() const noexcept { return id_; }
  [[nodiscard]] std::size_t n() const noexcept { return n_; }

  /// Sorted neighbor IDs.
  [[nodiscard]] std::span<const NodeId> neighbors() const noexcept {
    return neighbors_;
  }
  [[nodiscard]] std::size_t degree() const noexcept {
    return neighbors_.size();
  }
  [[nodiscard]] bool has_neighbor(NodeId w) const {
    return std::binary_search(neighbors_.begin(), neighbors_.end(), w);
  }

 private:
  NodeId id_;
  std::span<const NodeId> neighbors_;
  std::size_t n_;
};

}  // namespace wb
