// Failure-model adapters around Protocol (ROADMAP "Scenario diversity").
//
// Everything else in-tree assumes faithful nodes and a reliable whiteboard.
// This layer drops that assumption without touching the engine's semantics:
// each failure model is an adapter that wraps an unmodified protocol (or a
// corruption decorator over the board itself), so the engine, the exhaustive
// explorer, the shard formats, and the fleet all sweep faulty worlds through
// the exact machinery that sweeps faithful ones.
//
// Three models (FaultKind):
//
//  - crash-stop (kCrash): up to f nodes never activate, so their one write is
//    gone forever — the harshest possible failure in a one-write model.
//    Because activation is invisible on the board (only writes observe), "the
//    node crashed before doing anything" is fully general. Crash worlds are
//    enumerated canonically (crash_world_count / crash_world) and folded into
//    the exhaustive/shard partition as (world, prefix) FaultTasks, or sampled
//    through the statistical engine.
//  - corruption/truncation (kCorrupt): posted messages have bits flipped or
//    are truncated by seed-deterministic injection (CorruptionModel), either
//    at the writer (CorruptingAdapter) or as a board decorator
//    (CorruptingBoard) — the reusable generalization of the corruption-fuzz
//    suite's ad-hoc mutators.
//  - adaptive randomized adversary (kAdaptive): schedule and fault choices
//    are drawn per trial from a seeded policy and swept through the batch
//    engine; the outcome is a *statistical* verdict — failure probability
//    with a Wilson 95% confidence interval — accumulated in the mergeable
//    VerdictAccumulator so sharded/fleet sweeps aggregate across shards
//    exactly like distinct-board counts do.
//
// Fault-free configurations (crash:0, corrupt with p = 0) are bit-identical
// to the unadapted protocol at any thread/shard count — the adapters forward
// every callback untouched — which tests/wb/faults_test.cpp pins against the
// serial oracle.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/wb/batch.h"
#include "src/wb/exhaustive.h"
#include "src/wb/protocol.h"

namespace wb {

// ---------------------------------------------------------------------------
// Fault specs: the `faults=` grammar shared by SweepSpec, the shard
// documents, and the fleet.
// ---------------------------------------------------------------------------

enum class FaultKind : std::uint8_t {
  kNone = 0,
  kCrash,     // crash-stop nodes
  kCorrupt,   // seed-deterministic message corruption/truncation
  kAdaptive,  // seeded random schedule + fault policy, statistical verdict
};

[[nodiscard]] std::string_view fault_kind_name(FaultKind kind);

/// One failure model, fully parameterized. Text grammar (parse/format are
/// exact inverses; parse throws wb::DataError on malformed input):
///
///   none                         no faults (the default)
///   crash:F                      up to F crash-stop nodes, every crash set
///   corrupt:NUM/DEN[:SEED]       each message corrupted with prob NUM/DEN
///                                (SEED defaults to 1)
///   adaptive:SEED[:TRIALS]       seeded adaptive adversary, TRIALS samples
///                                (TRIALS defaults to 4096)
struct FaultSpec {
  static constexpr std::uint64_t kDefaultTrials = 4096;

  FaultKind kind = FaultKind::kNone;
  /// kCrash: maximum number of crashed nodes (every subset of size <= f).
  std::uint32_t crash_f = 0;
  /// kCorrupt: per-message corruption probability num/den (den >= 1).
  std::uint64_t prob_num = 0;
  std::uint64_t prob_den = 1;
  /// kCorrupt: injection seed. kAdaptive: policy seed.
  std::uint64_t seed = 0;
  /// kAdaptive: number of sampled trials.
  std::uint64_t trials = kDefaultTrials;

  [[nodiscard]] static FaultSpec None() { return {}; }
  [[nodiscard]] static FaultSpec Crash(std::uint32_t f) {
    FaultSpec s;
    s.kind = FaultKind::kCrash;
    s.crash_f = f;
    return s;
  }
  [[nodiscard]] static FaultSpec Corrupt(std::uint64_t num, std::uint64_t den,
                                         std::uint64_t seed = 1) {
    FaultSpec s;
    s.kind = FaultKind::kCorrupt;
    s.prob_num = num;
    s.prob_den = den;
    s.seed = seed;
    return s;
  }
  [[nodiscard]] static FaultSpec Adaptive(std::uint64_t seed,
                                          std::uint64_t trials =
                                              kDefaultTrials) {
    FaultSpec s;
    s.kind = FaultKind::kAdaptive;
    s.seed = seed;
    s.trials = trials;
    return s;
  }

  /// True when this spec can never perturb an execution: kNone, crash:0, or
  /// corrupt with probability zero. Fault-free sweeps are pinned
  /// bit-identical to the unadapted protocol.
  [[nodiscard]] bool fault_free() const {
    switch (kind) {
      case FaultKind::kNone:
        return true;
      case FaultKind::kCrash:
        return crash_f == 0;
      case FaultKind::kCorrupt:
        return prob_num == 0;
      case FaultKind::kAdaptive:
        return false;
    }
    return false;
  }

  /// Equality compares only the fields the kind actually uses, so e.g. every
  /// kNone spec is equal regardless of leftover parameter values.
  friend bool operator==(const FaultSpec& a, const FaultSpec& b) {
    if (a.kind != b.kind) return false;
    switch (a.kind) {
      case FaultKind::kNone:
        return true;
      case FaultKind::kCrash:
        return a.crash_f == b.crash_f;
      case FaultKind::kCorrupt:
        return a.prob_num == b.prob_num && a.prob_den == b.prob_den &&
               a.seed == b.seed;
      case FaultKind::kAdaptive:
        return a.seed == b.seed && a.trials == b.trials;
    }
    return false;
  }
};

/// Parse the grammar above. Throws wb::DataError with the offending field.
[[nodiscard]] FaultSpec parse_fault_spec(const std::string& text);
/// Canonical text (always the full form, e.g. "corrupt:1/8:1");
/// parse_fault_spec(fault_spec_to_string(s)) == s for every valid spec.
[[nodiscard]] std::string fault_spec_to_string(const FaultSpec& spec);

// ---------------------------------------------------------------------------
// Crash-stop worlds.
// ---------------------------------------------------------------------------

/// Number of crash sets with at most f of n nodes: sum_{k<=min(f,n)} C(n,k).
/// Throws wb::LogicError if the count overflows uint64 (use sampling there).
[[nodiscard]] std::uint64_t crash_world_count(std::size_t n, std::uint32_t f);

/// The `index`-th crash set in the canonical order: by size, then
/// lexicographically by node id. World 0 is the empty (fault-free) set.
/// Returns the crashed node ids sorted ascending.
[[nodiscard]] std::vector<NodeId> crash_world(std::size_t n, std::uint32_t f,
                                              std::uint64_t index);

/// Crash-stop adapter: the wrapped nodes never activate, so they never
/// compose and never get their one write. With a nonempty crash set the
/// simultaneous classes are rebadged to their non-simultaneous parents
/// (SIMASYNC -> ASYNC, SIMSYNC -> SYNC): the engine's round-1 "every node
/// activates" check is exactly the property a crash violates. With an empty
/// crash set every callback forwards untouched and the inner class is kept,
/// so crash:0 sweeps are bit-identical to the unadapted protocol.
class CrashStopAdapter final : public Protocol {
 public:
  CrashStopAdapter(const Protocol& inner, std::vector<NodeId> crashed);

  [[nodiscard]] ModelClass model_class() const override;
  [[nodiscard]] std::size_t message_bit_limit(std::size_t n) const override {
    return inner_.message_bit_limit(n);
  }
  [[nodiscard]] bool activate(const LocalView& view,
                              const Whiteboard& board) const override;
  [[nodiscard]] Bits compose(const LocalView& view,
                             const Whiteboard& board) const override {
    return inner_.compose(view, board);
  }
  [[nodiscard]] Bits compose(const LocalView& view, const Whiteboard& board,
                             BitWriter& scratch) const override {
    return inner_.compose(view, board, scratch);
  }
  /// Frontier shortcuts are claimed only in the fault-free configuration —
  /// a crashed node's activation verdict is not a function of its neighbors'
  /// writes, it is pinned false.
  [[nodiscard]] FrontierLocality frontier_locality() const override {
    return crashed_.empty() ? inner_.frontier_locality() : FrontierLocality{};
  }
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] std::span<const NodeId> crashed() const { return crashed_; }

 private:
  const Protocol& inner_;
  std::vector<NodeId> crashed_;  // sorted, deduped
};

// ---------------------------------------------------------------------------
// Corruption/truncation.
// ---------------------------------------------------------------------------

/// Flip bit `index` of `bits` (a fresh value; the input is untouched).
[[nodiscard]] Bits flip_bit(const Bits& bits, std::size_t index);
/// Truncate `bits` to its first `new_size` bits.
[[nodiscard]] Bits truncate_bits(const Bits& bits, std::size_t new_size);

/// Seed-deterministic corruption channel. Each message is corrupted with
/// probability num/den, decided by a 128-bit hash of (seed, salt, message
/// contents) — no hidden state, so the same message in the same slot is
/// corrupted the same way in every run, which keeps exhaustive sweeps over
/// corrupted worlds deterministic and shardable. A corrupted message either
/// has one bit flipped (length preserved) or is truncated (strictly
/// shorter); either way it never exceeds the original length, so the
/// engine's message_bit_limit check still passes.
struct CorruptionModel {
  std::uint64_t num = 0;
  std::uint64_t den = 1;
  std::uint64_t seed = 0;

  /// The (possibly corrupted) image of `message`. `salt` distinguishes
  /// message slots (writer id, or board position). num == 0 or an empty
  /// message returns the input unchanged.
  [[nodiscard]] Bits apply(const Bits& message, std::uint64_t salt) const;
};

/// Writer-side corruption: the wrapped protocol's composed messages pass
/// through the corruption channel (salt = writer id) before the engine posts
/// them. With num == 0 every callback result is byte-identical to the inner
/// protocol's, so corrupt:0 sweeps are bit-identical to the unadapted
/// protocol.
class CorruptingAdapter final : public Protocol {
 public:
  CorruptingAdapter(const Protocol& inner, CorruptionModel model)
      : inner_(inner), model_(model) {}

  [[nodiscard]] ModelClass model_class() const override {
    return inner_.model_class();
  }
  [[nodiscard]] std::size_t message_bit_limit(std::size_t n) const override {
    return inner_.message_bit_limit(n);
  }
  [[nodiscard]] bool activate(const LocalView& view,
                              const Whiteboard& board) const override {
    return inner_.activate(view, board);
  }
  [[nodiscard]] Bits compose(const LocalView& view,
                             const Whiteboard& board) const override {
    return model_.apply(inner_.compose(view, board), view.id());
  }
  [[nodiscard]] Bits compose(const LocalView& view, const Whiteboard& board,
                             BitWriter& scratch) const override {
    return model_.apply(inner_.compose(view, board, scratch), view.id());
  }
  /// A corrupted message can change any reader's decode, and the corruption
  /// is keyed by content, not neighborhood — claim no frontier shortcuts
  /// unless the channel is provably transparent.
  [[nodiscard]] FrontierLocality frontier_locality() const override {
    return model_.num == 0 ? inner_.frontier_locality() : FrontierLocality{};
  }
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] const CorruptionModel& model() const { return model_; }

 private:
  const Protocol& inner_;
  CorruptionModel model_;
};

/// Reader-side corruption: the decorator view of a whiteboard whose
/// transport is unreliable. Message i of the image is model.apply(message i,
/// salt = i). This is the reusable generalization of the corruption-fuzz
/// suite's ad-hoc mutators: fuzzing a decoder is `decode(board.image(w))`.
class CorruptingBoard {
 public:
  explicit CorruptingBoard(CorruptionModel model) : model_(model) {}

  /// The corrupted image of `board` (a fresh whiteboard; input untouched).
  [[nodiscard]] Whiteboard image(const Whiteboard& board) const;
  /// Append `message` to `board` through the channel (salt = its slot).
  void append(Whiteboard& board, Bits message) const;

  [[nodiscard]] const CorruptionModel& model() const { return model_; }

 private:
  CorruptionModel model_;
};

// ---------------------------------------------------------------------------
// Verdicts.
// ---------------------------------------------------------------------------

/// How one faulty execution is judged.
enum class FaultVerdict : std::uint8_t {
  kCorrect = 0,      // terminated (or crash-deadlocked) with a correct output
  kWrongOutput,      // terminated with a wrong output
  kDeadlockOrFault,  // deadlocked un-decodably, engine fault, or decode error
};

[[nodiscard]] std::string_view fault_verdict_name(FaultVerdict v);

/// Judges one execution of a faulty world. `crashed` is the world's crash
/// set (empty for corruption/fault-free worlds); classifiers typically treat
/// a deadlock of a crashed world as acceptable iff the partial board still
/// decodes to a correct output. Must be thread-safe (called concurrently
/// from sweep workers).
using FaultClassifier = std::function<FaultVerdict(
    const ExecutionResult&, std::span<const NodeId> crashed)>;

/// Wilson score interval for a binomial proportion.
struct WilsonInterval {
  double lo = 0.0;
  double hi = 1.0;
};

/// Mergeable statistical verdict: trial and failure counts. Same contract as
/// DistinctAccumulator (src/wb/distinct.h): the result depends only on the
/// multiset of recorded outcomes, never on record/merge order or on how
/// trials were split across threads, shards, or fleet workers — so
/// cross-shard aggregation is an exact sum, pinned by the contract battery
/// in tests/wb/faults_test.cpp.
class VerdictAccumulator {
 public:
  /// z for a two-sided 95% normal interval (the conventional 1.96).
  static constexpr double kZ95 = 1.96;

  VerdictAccumulator() = default;
  /// Rehydrate from serialized totals (shard results).
  VerdictAccumulator(std::uint64_t trials, std::uint64_t failures)
      : trials_(trials), failures_(failures) {
    WB_CHECK(failures_ <= trials_);
  }

  void record(FaultVerdict v) { record_failure(v != FaultVerdict::kCorrect); }
  void record_failure(bool failed) {
    ++trials_;
    failures_ += failed ? 1 : 0;
  }
  void merge(const VerdictAccumulator& other) {
    trials_ += other.trials_;
    failures_ += other.failures_;
  }

  [[nodiscard]] std::uint64_t trials() const { return trials_; }
  [[nodiscard]] std::uint64_t failures() const { return failures_; }
  /// Point estimate of the failure probability (0 when no trials ran).
  [[nodiscard]] double failure_rate() const;
  /// Wilson score interval; [0, 1] when no trials ran.
  [[nodiscard]] WilsonInterval wilson(double z = kZ95) const;

  friend bool operator==(const VerdictAccumulator&,
                         const VerdictAccumulator&) = default;

 private:
  std::uint64_t trials_ = 0;
  std::uint64_t failures_ = 0;
};

/// "N trials, F failures — rate 0.xxxx, 95% CI [0.xxxx, 0.xxxx]" (fixed
/// 4-decimal formatting so reports and golden artifacts are byte-stable).
[[nodiscard]] std::string verdict_summary(const VerdictAccumulator& v);

// ---------------------------------------------------------------------------
// Exhaustive fault sweeps.
// ---------------------------------------------------------------------------

/// One unit of a sharded fault sweep: a fault world (crash_world index for
/// kCrash; always 0 for kCorrupt) plus a schedule-tree prefix inside that
/// world's adapted schedule tree. The process-level analogue of PrefixTask.
struct FaultTask {
  std::uint64_t world = 0;
  PrefixTask prefix;
  friend bool operator==(const FaultTask&, const FaultTask&) = default;
};

/// The (world, prefix) partition of an exhaustive fault sweep: every world's
/// schedule tree split at the usual granularity (>= 1 prefix per world,
/// ~target_tasks total). Depends only on (graph, protocol, faults,
/// target_tasks) — never on scheduling — and its subtrees tile the full
/// faulty execution set exactly once, so shards merge bit-identically.
/// kAdaptive has no exhaustive partition (statistical only; throws).
[[nodiscard]] std::vector<FaultTask> partition_fault_tasks(
    const Graph& g, const Protocol& p, const FaultSpec& faults,
    const EngineOptions& eopts, std::size_t target_tasks);

/// Totals of an exhaustive fault sweep. engine_failures counts
/// kDeadlockOrFault verdicts and wrong_outputs counts kWrongOutput, matching
/// the fault-free exhaustive report's two failure tallies; `distinct`
/// accumulates every visited execution's final-board hash across all worlds.
struct FaultSweepTotals {
  std::uint64_t worlds = 0;
  std::uint64_t executions = 0;
  std::uint64_t engine_failures = 0;
  std::uint64_t wrong_outputs = 0;
  std::unique_ptr<DistinctAccumulator> distinct;
};

/// Sweep the executions inside the named (world, prefix) subtrees — one
/// shard of an exhaustive fault sweep. opts.max_executions bounds the whole
/// call (BudgetExceededError, deterministically at any thread count);
/// opts.threads fans each world's prefix list over the pool. Totals are
/// bit-identical at any thread count for the same task list, and merging
/// shard totals over a partition equals the unsharded sweep.
[[nodiscard]] FaultSweepTotals sweep_fault_tasks(
    const Graph& g, const Protocol& p, const FaultSpec& faults,
    std::span<const FaultTask> tasks, const FaultClassifier& classify,
    const ExhaustiveOptions& opts = {});

/// Sweep every execution of every fault world in-process: the fault-model
/// analogue of for_each_execution + count_distinct_final_boards. Worlds are
/// processed in canonical order; within a world the schedule tree fans out
/// over opts.threads workers exactly like a fault-free sweep. For a
/// fault-free spec (crash:0, corrupt:0) the visited execution set, counts,
/// and distinct accumulation are bit-identical to the unadapted explorer.
[[nodiscard]] FaultSweepTotals sweep_faulty_executions(
    const Graph& g, const Protocol& p, const FaultSpec& faults,
    const FaultClassifier& classify, const ExhaustiveOptions& opts = {});

// ---------------------------------------------------------------------------
// Statistical fault sweeps.
// ---------------------------------------------------------------------------

struct StatisticalOptions {
  /// Total trials of the (unstrided) sweep.
  std::uint64_t trials = FaultSpec::kDefaultTrials;
  /// Base seed; trial i draws everything from trial_seed(seed, i).
  std::uint64_t seed = 0;
  /// Shard split: run only trials with index % stride == offset. Every
  /// trial's randomness is keyed by its absolute index, so merging the
  /// accumulators of offsets 0..stride-1 equals the stride=1 single stream.
  std::uint64_t stride = 1;
  std::uint64_t offset = 0;
  /// Batch workers (0 = hardware concurrency). Results are index-keyed, so
  /// totals are bit-identical at any thread count.
  std::size_t threads = 0;
  EngineOptions engine;
};

/// A statistical sweep's totals: the mergeable verdict plus the same
/// failure-mode breakdown the exhaustive sweep reports.
struct StatisticalTotals {
  VerdictAccumulator verdict;
  std::uint64_t engine_failures = 0;
  std::uint64_t wrong_outputs = 0;
};

/// Sample executions of `p` on `g` under the failure model and classify each
/// one. Per trial, a seeded policy draws the fault realization and then a
/// random schedule:
///   kNone     no faults, random schedule;
///   kCrash    exactly min(crash_f, n) crashed nodes, uniform without
///             replacement;
///   kCorrupt  the spec's deterministic corruption channel, random schedule;
///   kAdaptive with probability 1/2 crash one uniform node, random schedule
///             (the seeded adaptive policy).
/// Deterministic given (faults, opts): thread-count independent and
/// stride-split mergeable.
[[nodiscard]] StatisticalTotals run_statistical_verdict(
    const Graph& g, const Protocol& p, const FaultSpec& faults,
    const FaultClassifier& classify, const StatisticalOptions& opts = {});

}  // namespace wb
