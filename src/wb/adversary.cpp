#include "src/wb/adversary.h"

#include <algorithm>

namespace wb {

std::size_t ScriptedAdversary::choose(std::span<const NodeId> candidates,
                                      const Whiteboard&, std::size_t) {
  WB_CHECK_MSG(next_ < order_.size(), "scripted adversary ran out of script");
  const NodeId want = order_[next_++];
  const auto it = std::lower_bound(candidates.begin(), candidates.end(), want);
  WB_CHECK_MSG(it != candidates.end() && *it == want,
               "scripted writer " << want << " is not an active candidate");
  return static_cast<std::size_t>(it - candidates.begin());
}

std::size_t PreferenceAdversary::choose(std::span<const NodeId> candidates,
                                        const Whiteboard&, std::size_t) {
  for (NodeId want : preference_) {
    const auto it =
        std::lower_bound(candidates.begin(), candidates.end(), want);
    if (it != candidates.end() && *it == want) {
      return static_cast<std::size_t>(it - candidates.begin());
    }
  }
  return 0;
}

std::vector<std::unique_ptr<Adversary>> standard_adversaries(
    const Graph& g, std::uint64_t seed) {
  std::vector<std::unique_ptr<Adversary>> out;
  out.reserve(standard_adversary_count());
  for (std::size_t i = 0; i < standard_adversary_count(); ++i) {
    out.push_back(standard_adversary(g, seed, i));
  }
  return out;
}

std::size_t standard_adversary_count() noexcept { return 7; }

std::unique_ptr<Adversary> standard_adversary(const Graph& g,
                                              std::uint64_t seed,
                                              std::size_t index) {
  switch (index) {
    case 0: return std::make_unique<FirstAdversary>();
    case 1: return std::make_unique<LastAdversary>();
    case 2: return std::make_unique<RandomAdversary>(seed);
    case 3: return std::make_unique<RandomAdversary>(seed ^ 0x5bd1e995u);
    case 4: return std::make_unique<RotatingAdversary>();
    case 5: return std::make_unique<MaxDegreeAdversary>(g);
    case 6: return std::make_unique<MinDegreeAdversary>(g);
    default: break;
  }
  WB_CHECK_MSG(false, "battery index " << index << " out of range");
  return nullptr;  // unreachable
}

}  // namespace wb
