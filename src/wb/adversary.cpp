#include "src/wb/adversary.h"

#include <algorithm>

namespace wb {

std::size_t ScriptedAdversary::choose(std::span<const NodeId> candidates,
                                      const Whiteboard&, std::size_t) {
  WB_CHECK_MSG(next_ < order_.size(), "scripted adversary ran out of script");
  const NodeId want = order_[next_++];
  const auto it = std::lower_bound(candidates.begin(), candidates.end(), want);
  WB_CHECK_MSG(it != candidates.end() && *it == want,
               "scripted writer " << want << " is not an active candidate");
  return static_cast<std::size_t>(it - candidates.begin());
}

std::size_t PreferenceAdversary::choose(std::span<const NodeId> candidates,
                                        const Whiteboard&, std::size_t) {
  for (NodeId want : preference_) {
    const auto it =
        std::lower_bound(candidates.begin(), candidates.end(), want);
    if (it != candidates.end() && *it == want) {
      return static_cast<std::size_t>(it - candidates.begin());
    }
  }
  return 0;
}

std::vector<std::unique_ptr<Adversary>> standard_adversaries(
    const Graph& g, std::uint64_t seed) {
  std::vector<std::unique_ptr<Adversary>> out;
  out.push_back(std::make_unique<FirstAdversary>());
  out.push_back(std::make_unique<LastAdversary>());
  out.push_back(std::make_unique<RandomAdversary>(seed));
  out.push_back(std::make_unique<RandomAdversary>(seed ^ 0x5bd1e995u));
  out.push_back(std::make_unique<RotatingAdversary>());
  out.push_back(std::make_unique<MaxDegreeAdversary>(g));
  out.push_back(std::make_unique<MinDegreeAdversary>(g));
  return out;
}

}  // namespace wb
