#include "src/wb/engine.h"

#include <algorithm>
#include <sstream>

namespace wb {

EngineState::EngineState(const Graph& g, const Protocol& p, EngineOptions opts)
    : graph_(&g), protocol_(&p), opts_(opts), n_(g.node_count()) {
  WB_CHECK_MSG(n_ >= 1, "protocols run on graphs with at least one node");
  if (opts_.max_rounds == 0) opts_.max_rounds = 2 * n_ + 8;
  state_.assign(n_, NodeState::kAwake);
  memory_.assign(n_, Bits{});
  written_.assign(n_, false);
  stats_.activation_round.assign(n_, 0);
  stats_.write_round.assign(n_, 0);
}

void EngineState::trace(TraceEvent::Kind kind, NodeId v) {
  if (opts_.record_trace) trace_.push_back(TraceEvent{round_, kind, v});
}

void EngineState::compose_into(NodeId v) {
  Bits message = protocol_->compose(view_of(v), board_);
  const std::size_t limit = protocol_->message_bit_limit(n_);
  if (message.size() > limit) {
    std::ostringstream os;
    os << "node " << v << " composed " << message.size()
       << " bits, exceeding the declared bound of " << limit << " bits";
    fail(RunStatus::kMessageOverflow, os.str());
    return;
  }
  memory_[v - 1] = std::move(message);
}

void EngineState::begin_round() {
  if (terminal()) return;
  ++round_;
  stats_.rounds = round_;
  if (round_ > opts_.max_rounds) {
    fail(RunStatus::kProtocolError, "round limit exceeded without progress");
    return;
  }

  const bool sim = is_simultaneous(protocol_->model_class());
  const bool async = is_asynchronous(protocol_->model_class());

  // Phase 1: termination updates.
  for (NodeId v = 1; v <= n_; ++v) {
    if (state_[v - 1] == NodeState::kActive && written_[v - 1]) {
      state_[v - 1] = NodeState::kTerminated;
      trace(TraceEvent::Kind::kTerminate, v);
    }
  }

  // Phase 2: activations (+ compositions).
  bool newly_active = false;
  for (NodeId v = 1; v <= n_; ++v) {
    if (state_[v - 1] != NodeState::kAwake) continue;
    const bool wants = protocol_->activate(view_of(v), board_);
    if (sim && round_ == 1 && !wants) {
      std::ostringstream os;
      os << "protocol declares a simultaneous class but node " << v
         << " did not activate in round 1";
      fail(RunStatus::kProtocolError, os.str());
      return;
    }
    if (!wants) continue;
    state_[v - 1] = NodeState::kActive;
    stats_.activation_round[v - 1] = round_;
    newly_active = true;
    trace(TraceEvent::Kind::kActivate, v);
    if (async) {
      // Asynchronous classes: the message is created now and frozen.
      compose_into(v);
      if (terminal()) return;
    }
  }
  if (!async) {
    // Synchronous classes: every active, unwritten node recomputes its local
    // memory from the current whiteboard ("may change its mind").
    for (NodeId v = 1; v <= n_; ++v) {
      if (state_[v - 1] == NodeState::kActive && !written_[v - 1]) {
        compose_into(v);
        if (terminal()) return;
      }
    }
  }

  // Candidate set for the adversary.
  candidates_.clear();
  for (NodeId v = 1; v <= n_; ++v) {
    if (state_[v - 1] == NodeState::kActive && !written_[v - 1]) {
      candidates_.push_back(v);
    }
  }

  if (candidates_.empty()) {
    if (stats_.writes == n_) {
      set_status(RunStatus::kSuccess);
    } else {
      // No node can write and — since the whiteboard can no longer change —
      // no awake node will ever activate: corrupted configuration.
      (void)newly_active;  // newly_active implies non-empty candidates
      std::ostringstream os;
      os << "deadlock after " << stats_.writes << "/" << n_ << " writes";
      fail(RunStatus::kDeadlock, os.str());
    }
  }
}

void EngineState::write(std::size_t index) {
  WB_CHECK(!terminal());
  WB_CHECK_MSG(index < candidates_.size(), "adversary chose a non-candidate");
  const NodeId v = candidates_[index];
  const Bits& message = memory_[v - 1];
  stats_.max_message_bits = std::max(stats_.max_message_bits, message.size());
  board_.append(message);
  stats_.total_bits = board_.total_bits();
  written_[v - 1] = true;
  stats_.write_round[v - 1] = round_;
  ++stats_.writes;
  write_order_.push_back(v);
  trace(TraceEvent::Kind::kWrite, v);
  candidates_.clear();
}

void EngineState::fail(RunStatus status, std::string error) {
  status_ = status;
  error_ = std::move(error);
}

ExecutionResult EngineState::finish() const {
  WB_CHECK_MSG(terminal(), "finish() before the run reached a terminal state");
  ExecutionResult r;
  r.status = *status_;
  r.board = board_;
  r.stats = stats_;
  r.write_order = write_order_;
  r.error = error_;
  r.trace = trace_;
  return r;
}

ExecutionResult run_protocol(const Graph& g, const Protocol& p, Adversary& adv,
                             EngineOptions opts) {
  adv.reset();
  EngineState s(g, p, opts);
  while (true) {
    s.begin_round();
    if (s.terminal()) return s.finish();
    const std::size_t pick =
        adv.choose(s.candidates(), s.board(), s.round());
    s.write(pick);
  }
}

ExecutionResult run_protocol(const Graph& g, const Protocol& p,
                             EngineOptions opts) {
  FirstAdversary adv;
  return run_protocol(g, p, adv, opts);
}

}  // namespace wb
