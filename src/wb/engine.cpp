#include "src/wb/engine.h"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <utility>

namespace wb {

EngineState::EngineState(const Graph& g, const Protocol& p, EngineOptions opts)
    : graph_(&g), protocol_(&p), opts_(opts), n_(g.node_count()),
      locality_(p.frontier_locality()) {
  WB_CHECK_MSG(n_ >= 1, "protocols run on graphs with at least one node");
  if (opts_.max_rounds == 0) opts_.max_rounds = 2 * n_ + 8;
  state_.assign(n_, NodeState::kAwake);
  memory_.assign(n_, Bits{});
  written_.assign(n_, false);
  stats_.activation_round.assign(n_, 0);
  stats_.write_round.assign(n_, 0);
  // Exactly n messages can ever be written; reserving up front makes a whole
  // run (and every backtracked re-write) allocation-free on the board.
  board_.reserve(n_);
  write_order_.reserve(n_);
  candidates_.reserve(n_);
  if (opts_.frontier) {
    awake_ids_.resize(n_);
    std::iota(awake_ids_.begin(), awake_ids_.end(), NodeId{1});
  }
}

void EngineState::trace(TraceEvent::Kind kind, NodeId v) {
  if (opts_.record_trace) trace_.push_back(TraceEvent{round_, kind, v});
}

void EngineState::journal_state(NodeId v, NodeState old_state) {
  if (!journaling_) return;
  UndoRecord u;
  u.kind = UndoRecord::Kind::kStateChange;
  u.old_state = old_state;
  u.node = v;
  journal_.push_back(std::move(u));
}

void EngineState::journal_activation(NodeId v) {
  if (!journaling_) return;
  UndoRecord u;
  u.kind = UndoRecord::Kind::kActivation;
  u.node = v;
  journal_.push_back(std::move(u));
}

void EngineState::journal_memory(NodeId v) {
  if (!journaling_) return;
  UndoRecord u;
  u.kind = UndoRecord::Kind::kMemory;
  u.node = v;
  u.old_memory = std::move(memory_[v - 1]);
  journal_.push_back(std::move(u));
}

void EngineState::set_journaling(bool on) {
  // Only a virgin state may start journaling: checkpoints reach exactly as
  // far back as the journal, so enabling after any round would let rewind()
  // silently cross into unrecorded history.
  WB_CHECK_MSG(!on || (journal_.empty() && round_ == 0),
               "enable journaling before the first begin_round()");
  // Frontier mode mutates the candidate buffer and awake list incrementally;
  // rewind() does not restore them, so the combination is rejected outright.
  WB_CHECK_MSG(!on || !opts_.frontier,
               "journaling is incompatible with frontier mode");
  journaling_ = on;
  if (!on) journal_.clear();
}

EngineState::Checkpoint EngineState::checkpoint() const {
  WB_CHECK_MSG(journaling_, "checkpoint() requires journaling");
  WB_CHECK_MSG(!terminal(), "checkpoint() of a terminal state");
  Checkpoint cp;
  cp.round = round_;
  cp.journal_size = journal_.size();
  cp.writes = stats_.writes;
  cp.board_count = board_.message_count();
  cp.max_message_bits = stats_.max_message_bits;
  cp.total_bits = stats_.total_bits;
  cp.trace_size = trace_.size();
  cp.wrote_this_round = wrote_this_round_;
  return cp;
}

void EngineState::rewind(const Checkpoint& cp) {
  WB_CHECK_MSG(journaling_, "rewind() requires journaling");
  WB_CHECK_MSG(cp.journal_size <= journal_.size(),
               "rewind() past an already-rewound checkpoint");
  // Undo journaled mutations newest-first, so a node recomposed several
  // times ends at its memory from checkpoint time.
  while (journal_.size() > cp.journal_size) {
    UndoRecord& u = journal_.back();
    switch (u.kind) {
      case UndoRecord::Kind::kStateChange:
        state_[u.node - 1] = u.old_state;
        break;
      case UndoRecord::Kind::kActivation:
        stats_.activation_round[u.node - 1] = 0;
        break;
      case UndoRecord::Kind::kMemory:
        memory_[u.node - 1] = std::move(u.old_memory);
        break;
    }
    journal_.pop_back();
  }
  // The write log names exactly the nodes written since the checkpoint.
  while (write_order_.size() > cp.writes) {
    const NodeId v = write_order_.back();
    written_[v - 1] = false;
    stats_.write_round[v - 1] = 0;
    write_order_.pop_back();
  }
  board_.truncate(cp.board_count);
  round_ = cp.round;
  stats_.rounds = cp.round;
  stats_.writes = cp.writes;
  stats_.max_message_bits = cp.max_message_bits;
  stats_.total_bits = cp.total_bits;
  trace_.resize(cp.trace_size);
  wrote_this_round_ = cp.wrote_this_round;
  status_.reset();
  error_.clear();
  candidates_.clear();
}

void EngineState::compose_into(NodeId v) {
  // Defensive reset (a no-op after a well-behaved take()): the compose
  // contract hands the protocol an *empty* writer.
  compose_scratch_.reset();
  Bits message;
  try {
    message = protocol_->compose(view_of(v), board_, compose_scratch_);
  } catch (const DataError& e) {
    // Fault firewall: under crash/corruption failure models the board can be
    // one the protocol never promised to decode. A robust decoder signals
    // that with DataError; turn it into a clean terminal status instead of
    // letting it abort the whole sweep.
    std::ostringstream os;
    os << "node " << v << " compose rejected the whiteboard: " << e.what();
    fail(RunStatus::kFault, os.str());
    return;
  }
  const std::size_t limit = protocol_->message_bit_limit(n_);
  if (message.size() > limit) {
    std::ostringstream os;
    os << "node " << v << " composed " << message.size()
       << " bits, exceeding the declared bound of " << limit << " bits";
    fail(RunStatus::kMessageOverflow, os.str());
    return;
  }
  journal_memory(v);
  memory_[v - 1] = std::move(message);
}

void EngineState::begin_round() {
  if (terminal()) return;
  ++round_;
  wrote_this_round_ = false;
  stats_.rounds = round_;
  if (round_ > opts_.max_rounds) {
    fail(RunStatus::kProtocolError, "round limit exceeded without progress");
    return;
  }
  if (opts_.frontier) {
    begin_round_frontier();
  } else {
    begin_round_reference();
  }
  if (terminal()) return;
  finish_round_bookkeeping();
}

void EngineState::begin_round_reference() {
  const bool sim = is_simultaneous(protocol_->model_class());
  const bool async = is_asynchronous(protocol_->model_class());

  // Phase 1: termination updates.
  for (NodeId v = 1; v <= n_; ++v) {
    if (state_[v - 1] == NodeState::kActive && written_[v - 1]) {
      journal_state(v, NodeState::kActive);
      state_[v - 1] = NodeState::kTerminated;
      trace(TraceEvent::Kind::kTerminate, v);
    }
  }

  // Phase 2: activations (+ compositions).
  for (NodeId v = 1; v <= n_; ++v) {
    if (state_[v - 1] != NodeState::kAwake) continue;
    const bool wants = activate_of(v);
    if (terminal()) return;
    if (sim && round_ == 1 && !wants) {
      std::ostringstream os;
      os << "protocol declares a simultaneous class but node " << v
         << " did not activate in round 1";
      fail(RunStatus::kProtocolError, os.str());
      return;
    }
    if (!wants) continue;
    journal_state(v, NodeState::kAwake);
    state_[v - 1] = NodeState::kActive;
    journal_activation(v);
    stats_.activation_round[v - 1] = round_;
    trace(TraceEvent::Kind::kActivate, v);
    if (async) {
      // Asynchronous classes: the message is created now and frozen.
      compose_into(v);
      if (terminal()) return;
    }
  }
  if (!async) {
    // Synchronous classes: every active, unwritten node recomputes its local
    // memory from the current whiteboard ("may change its mind").
    for (NodeId v = 1; v <= n_; ++v) {
      if (state_[v - 1] == NodeState::kActive && !written_[v - 1]) {
        compose_into(v);
        if (terminal()) return;
      }
    }
  }

  // Candidate set for the adversary.
  candidates_.clear();
  for (NodeId v = 1; v <= n_; ++v) {
    if (state_[v - 1] == NodeState::kActive && !written_[v - 1]) {
      candidates_.push_back(v);
    }
  }
}

void EngineState::begin_round_frontier() {
  const bool sim = is_simultaneous(protocol_->model_class());
  const bool async = is_asynchronous(protocol_->model_class());
  const NodeId writer = pending_writer_;
  pending_writer_ = kNoNode;

  // Phase 1: the only node that can newly be active+written is last round's
  // writer (write_node requires an active node, and every earlier writer
  // already terminated) — O(1) instead of the reference scan.
  if (writer != kNoNode && state_[writer - 1] == NodeState::kActive) {
    state_[writer - 1] = NodeState::kTerminated;
    trace(TraceEvent::Kind::kTerminate, writer);
  }

  // Phase 2: activations. Everyone is evaluated in round 1; afterwards, if
  // the protocol's activation is neighbor-local, only awake neighbors of the
  // writer can change their answer. Both iteration orders are ascending, so
  // activation/trace/compose order matches the reference engine exactly.
  newly_activated_.clear();
  const auto eval = [&](NodeId v) -> bool {
    const bool wants = activate_of(v);
    if (terminal()) return false;
    if (sim && round_ == 1 && !wants) {
      std::ostringstream os;
      os << "protocol declares a simultaneous class but node " << v
         << " did not activate in round 1";
      fail(RunStatus::kProtocolError, os.str());
      return false;
    }
    if (!wants) return true;
    state_[v - 1] = NodeState::kActive;
    stats_.activation_round[v - 1] = round_;
    trace(TraceEvent::Kind::kActivate, v);
    newly_activated_.push_back(v);
    if (async) {
      compose_into(v);
      if (terminal()) return false;
    }
    return true;
  };
  if (round_ == 1 || !locality_.activate_neighbor_local) {
    for (NodeId v : awake_ids_) {
      if (!eval(v)) return;
    }
  } else if (writer != kNoNode) {
    const auto nb = graph_->neighbors(writer);
    if (nb.size() <= awake_ids_.size()) {
      // Top-down: walk the writer's (sorted) neighbor list.
      for (NodeId w : nb) {
        if (state_[w - 1] == NodeState::kAwake && !eval(w)) return;
      }
    } else {
      // Bottom-up: the awake population is smaller than the writer's degree.
      for (NodeId v : awake_ids_) {
        if (graph_->has_edge(writer, v) && !eval(v)) return;
      }
    }
  }
  if (!newly_activated_.empty()) {
    awake_ids_.erase(std::remove_if(awake_ids_.begin(), awake_ids_.end(),
                                    [&](NodeId v) {
                                      return state_[v - 1] !=
                                             NodeState::kAwake;
                                    }),
                     awake_ids_.end());
    // Merge the (ascending) new actives into the sorted candidate list.
    const auto mid = static_cast<std::ptrdiff_t>(candidates_.size());
    candidates_.insert(candidates_.end(), newly_activated_.begin(),
                       newly_activated_.end());
    std::inplace_merge(candidates_.begin(), candidates_.begin() + mid,
                       candidates_.end());
  }

  if (!async) {
    if (!locality_.compose_neighbor_local) {
      // Recompose every active unwritten node, as the reference does.
      for (NodeId v : candidates_) {
        compose_into(v);
        if (terminal()) return;
      }
    } else if (writer != kNoNode &&
               graph_->degree(writer) > candidates_.size()) {
      // Bottom-up: scan candidates; recompose the fresh ones and the
      // writer's neighbors (the only memories that can change).
      for (NodeId v : candidates_) {
        if (std::binary_search(newly_activated_.begin(),
                               newly_activated_.end(), v) ||
            graph_->has_edge(writer, v)) {
          compose_into(v);
          if (terminal()) return;
        }
      }
    } else {
      // Top-down: merge-walk the new actives and the writer's candidate
      // neighbors in ascending ID order, skipping duplicates.
      const auto nb = writer == kNoNode ? std::span<const NodeId>{}
                                        : graph_->neighbors(writer);
      std::size_t ai = 0, bi = 0;
      while (true) {
        while (bi < nb.size() && (state_[nb[bi] - 1] != NodeState::kActive ||
                                  written_[nb[bi] - 1])) {
          ++bi;
        }
        NodeId v = kNoNode;
        if (ai < newly_activated_.size() &&
            (bi >= nb.size() || newly_activated_[ai] <= nb[bi])) {
          v = newly_activated_[ai];
          if (bi < nb.size() && nb[bi] == v) ++bi;  // present in both
          ++ai;
        } else if (bi < nb.size()) {
          v = nb[bi];
          ++bi;
        } else {
          break;
        }
        compose_into(v);
        if (terminal()) return;
      }
    }
  }
}

void EngineState::finish_round_bookkeeping() {
  if (candidates_.empty()) {
    if (stats_.writes == n_) {
      set_status(RunStatus::kSuccess);
    } else {
      // No node can write and — since the whiteboard can no longer change —
      // no awake node will ever activate: corrupted configuration.
      std::ostringstream os;
      os << "deadlock after " << stats_.writes << "/" << n_ << " writes";
      fail(RunStatus::kDeadlock, os.str());
    }
  }
}

void EngineState::write(std::size_t index) {
  WB_CHECK(!terminal());
  WB_CHECK_MSG(index < candidates_.size(), "adversary chose a non-candidate");
  const NodeId v = candidates_[index];
  write_node(v);
  // Frontier mode maintains the candidate buffer incrementally (write_node
  // removed v); the reference engine rebuilds it from scratch every round.
  if (!opts_.frontier) candidates_.clear();
}

void EngineState::write_node(NodeId v) {
  WB_CHECK(!terminal());
  WB_CHECK_MSG(v >= 1 && v <= n_ && state_[v - 1] == NodeState::kActive &&
                   !written_[v - 1],
               "write_node(" << v << "): not an active unwritten node");
  WB_CHECK_MSG(!wrote_this_round_,
               "one adversarial write per round: begin_round() first");
  wrote_this_round_ = true;
  const Bits& message = memory_[v - 1];
  stats_.max_message_bits = std::max(stats_.max_message_bits, message.size());
  board_.append(message);
  stats_.total_bits = board_.total_bits();
  written_[v - 1] = true;
  stats_.write_round[v - 1] = round_;
  ++stats_.writes;
  write_order_.push_back(v);
  trace(TraceEvent::Kind::kWrite, v);
  if (opts_.frontier) {
    pending_writer_ = v;
    const auto it =
        std::lower_bound(candidates_.begin(), candidates_.end(), v);
    if (it != candidates_.end() && *it == v) candidates_.erase(it);
  }
}

bool EngineState::activate_of(NodeId v) {
  try {
    return protocol_->activate(view_of(v), board_);
  } catch (const DataError& e) {
    std::ostringstream os;
    os << "node " << v << " activate rejected the whiteboard: " << e.what();
    fail(RunStatus::kFault, os.str());
    return false;
  }
}

void EngineState::fail(RunStatus status, std::string error) {
  status_ = status;
  error_ = std::move(error);
}

void EngineState::finish_into(ExecutionResult& out) const {
  WB_CHECK_MSG(terminal(), "finish() before the run reached a terminal state");
  out.status = *status_;
  out.board = board_;  // O(1): shares the immutable message prefix
  out.stats = stats_;
  out.write_order = write_order_;
  out.error = error_;
  out.trace = trace_;
}

ExecutionResult EngineState::finish() const& {
  ExecutionResult r;
  finish_into(r);
  return r;
}

ExecutionResult EngineState::finish() && {
  WB_CHECK_MSG(terminal(), "finish() before the run reached a terminal state");
  ExecutionResult r;
  r.status = *status_;
  r.board = std::move(board_);
  r.stats = std::move(stats_);
  r.write_order = std::move(write_order_);
  r.error = std::move(error_);
  r.trace = std::move(trace_);
  return r;
}

Hash128 EngineState::memo_key() const {
  Hasher128 h;
  const Hash128 content = board_.content_hash();
  h.update(content.lo);
  h.update(content.hi);
  // The written set, packed 64 nodes per word. Not derivable from the board
  // for protocols whose messages do not embed the writer's id.
  std::uint64_t word = 0;
  for (std::size_t i = 0; i < n_; ++i) {
    if (written_[i]) word |= std::uint64_t{1} << (i % 64);
    if (i % 64 == 63) {
      h.update(word);
      word = 0;
    }
  }
  if (n_ % 64 != 0) h.update(word);
  return h.digest();
}

ExecutionResult run_protocol(const Graph& g, const Protocol& p, Adversary& adv,
                             EngineOptions opts) {
  adv.reset();
  EngineState s(g, p, opts);
  while (true) {
    s.begin_round();
    if (s.terminal()) return std::move(s).finish();
    const std::size_t pick =
        adv.choose(s.candidates(), s.board(), s.round());
    s.write(pick);
  }
}

ExecutionResult run_protocol(const Graph& g, const Protocol& p,
                             EngineOptions opts) {
  FirstAdversary adv;
  return run_protocol(g, p, adv, opts);
}

}  // namespace wb
