#include "src/wb/distinct.h"

#include <utility>

#include "src/support/check.h"

namespace wb {

DistinctConfig parse_distinct_config(const std::string& text) {
  if (text == "exact") return DistinctConfig::Exact();
  constexpr const char* kHll = "hll";
  if (text == kHll) return DistinctConfig::Hll();
  const std::string prefix = std::string(kHll) + ":";
  WB_REQUIRE_MSG(text.rfind(prefix, 0) == 0,
                 "bad distinct config '" << text
                                         << "' (want exact | hll | hll:P)");
  const std::string digits = text.substr(prefix.size());
  WB_REQUIRE_MSG(!digits.empty() &&
                     digits.find_first_not_of("0123456789") == std::string::npos &&
                     digits.size() <= 2,
                 "bad hll precision '" << digits << "' in '" << text << "'");
  const int precision = std::stoi(digits);
  WB_REQUIRE_MSG(precision >= HyperLogLog::kMinPrecision &&
                     precision <= HyperLogLog::kMaxPrecision,
                 "hll precision " << precision << " outside ["
                                  << HyperLogLog::kMinPrecision << ", "
                                  << HyperLogLog::kMaxPrecision << "]");
  return DistinctConfig::Hll(precision);
}

std::string to_string(const DistinctConfig& config) {
  if (config.kind == DistinctKind::kExact) return "exact";
  return "hll:" + std::to_string(config.hll_precision);
}

std::vector<Hash128> union_sorted_runs(std::vector<std::vector<Hash128>> runs) {
  std::vector<Hash128> merged;
  for (std::vector<Hash128>& run : runs) {
    if (merged.empty()) {
      merged = std::move(run);
      continue;
    }
    if (run.empty()) continue;
    std::vector<Hash128> next;
    next.reserve(merged.size() + run.size());
    std::set_union(merged.begin(), merged.end(), run.begin(), run.end(),
                   std::back_inserter(next));
    merged = std::move(next);
  }
  return merged;
}

ExactDistinctAccumulator ExactDistinctAccumulator::from_sorted(
    std::vector<Hash128> sorted_run) {
  ExactDistinctAccumulator acc;
  acc.run_ = std::move(sorted_run);
  return acc;
}

void ExactDistinctAccumulator::merge(DistinctAccumulator&& other) {
  WB_CHECK_MSG(other.config().kind == DistinctKind::kExact,
               "cannot merge a " << to_string(other.config())
                                 << " accumulator into an exact one");
  auto& exact = static_cast<ExactDistinctAccumulator&>(other);
  std::vector<std::vector<Hash128>> runs;
  runs.push_back(std::move(run_));
  runs.push_back(exact.take_sorted());
  run_ = union_sorted_runs(std::move(runs));
}

std::vector<Hash128> ExactDistinctAccumulator::take_sorted() {
  (void)sorted_view();
  return std::move(run_);
}

const std::vector<Hash128>& ExactDistinctAccumulator::sorted_view() {
  std::vector<Hash128> pending = streaming_.take_sorted();
  if (!pending.empty()) {
    std::vector<std::vector<Hash128>> runs;
    runs.push_back(std::move(run_));
    runs.push_back(std::move(pending));
    run_ = union_sorted_runs(std::move(runs));
  }
  return run_;
}

void HllDistinctAccumulator::merge(DistinctAccumulator&& other) {
  WB_CHECK_MSG(other.config() == config(),
               "cannot merge a " << to_string(other.config())
                                 << " accumulator into a "
                                 << to_string(config()) << " one");
  sketch_.merge(static_cast<HllDistinctAccumulator&>(other).sketch_);
}

std::unique_ptr<DistinctAccumulator> make_distinct_accumulator(
    const DistinctConfig& config) {
  if (config.kind == DistinctKind::kExact) {
    return std::make_unique<ExactDistinctAccumulator>();
  }
  return std::make_unique<HllDistinctAccumulator>(config.hll_precision);
}

}  // namespace wb
