// Parallel batch execution of (graph, protocol, adversary) trials.
//
// Correctness in the whiteboard model means surviving *every* adversary
// schedule, so the simulator's dominant workload is embarrassingly parallel:
// many independent runs of the engine over a trial matrix. run_batch fans the
// trials out across the shared worker pool (src/support/thread_pool.h, also
// used by the parallel exhaustive explorer) while keeping the results
// deterministic:
//
//  - every trial gets its own seed, derived from (base seed, trial index)
//    only — never from thread identity or scheduling order;
//  - stateful adversaries are constructed per trial (via the factory) on the
//    worker that executes it, so no mutable state is shared across trials;
//  - results land in a pre-sized vector slot keyed by trial index.
//
// Consequently results[i] is bit-identical for any thread count, which the
// determinism suite in tests/wb/batch_test.cpp pins down.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/wb/engine.h"

namespace wb {

/// Invoked once per trial, on the worker thread that runs it, with the
/// trial's deterministic seed. Must not touch state shared with other trials.
using AdversaryFactory =
    std::function<std::unique_ptr<Adversary>(std::uint64_t trial_seed)>;

/// One unit of batch work. `graph` and `protocol` are borrowed and must
/// outlive the run_batch call; both may be shared across trials (protocol
/// callbacks are const and re-entrant). Exactly one adversary source is used:
/// `make_adversary` when set, else the borrowed `adversary` (which must not
/// be shared with any other trial in the same batch), else FirstAdversary.
struct Trial {
  const Graph* graph = nullptr;
  const Protocol* protocol = nullptr;
  AdversaryFactory make_adversary;
  Adversary* adversary = nullptr;
  EngineOptions engine;
};

struct BatchOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency().
  std::size_t threads = 0;
  /// Base seed mixed into every per-trial seed.
  std::uint64_t seed = 0;
};

/// The seed handed to trial `index`: a splitmix64 mix of (base, index), so it
/// is independent of thread count and of every other trial.
[[nodiscard]] std::uint64_t trial_seed(std::uint64_t base,
                                       std::size_t index) noexcept;

/// Run every trial to completion; results[i] belongs to trials[i]. If any
/// trial throws, the exception of the smallest-index failing trial is
/// rethrown after all workers drain (again independent of thread count).
[[nodiscard]] std::vector<ExecutionResult> run_batch(
    std::span<const Trial> trials, const BatchOptions& opts = {});

/// One adversary battery entry of run_standard_battery.
struct BatteryRun {
  std::string adversary;
  ExecutionResult result;
};

/// Run `p` on `g` under the standard adversary battery
/// (standard_adversaries(g, seed)), one trial per strategy, in parallel.
/// Results are in battery order and bit-identical to the serial loop.
[[nodiscard]] std::vector<BatteryRun> run_standard_battery(
    const Graph& g, const Protocol& p, std::uint64_t seed,
    const BatchOptions& opts = {});

}  // namespace wb
