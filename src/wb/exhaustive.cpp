#include "src/wb/exhaustive.h"

#include <set>
#include <string>
#include <vector>

namespace wb {

namespace {

struct Explorer {
  const std::function<bool(const ExecutionResult&)>* visit;
  std::uint64_t budget;
  std::uint64_t visited = 0;
  bool stopped = false;

  // Depth-first over adversary choices. `s` is consumed (copied at branches).
  void explore(EngineState s) {
    if (stopped) return;
    s.begin_round();
    if (s.terminal()) {
      WB_CHECK_MSG(visited < budget, "exhaustive exploration budget exceeded");
      ++visited;
      if (!(*visit)(s.finish())) stopped = true;
      return;
    }
    const auto cands = s.candidates();
    if (cands.size() == 1) {
      s.write(0);  // no branching: reuse the state
      explore(std::move(s));
      return;
    }
    for (std::size_t i = 0; i < cands.size() && !stopped; ++i) {
      EngineState branch = s;
      branch.write(i);
      explore(std::move(branch));
    }
  }
};

}  // namespace

std::uint64_t for_each_execution(
    const Graph& g, const Protocol& p,
    const std::function<bool(const ExecutionResult&)>& visit,
    const ExhaustiveOptions& opts) {
  Explorer e{&visit, opts.max_executions, 0, false};
  e.explore(EngineState(g, p, opts.engine));
  return e.visited;
}

bool all_executions_ok(
    const Graph& g, const Protocol& p,
    const std::function<bool(const ExecutionResult&)>& accept,
    const ExhaustiveOptions& opts) {
  bool ok = true;
  for_each_execution(
      g, p,
      [&](const ExecutionResult& r) {
        if (!r.ok() || !accept(r)) {
          ok = false;
          return false;
        }
        return true;
      },
      opts);
  return ok;
}

std::uint64_t count_distinct_final_boards(const Graph& g, const Protocol& p,
                                          const ExhaustiveOptions& opts) {
  std::set<std::string> boards;
  for_each_execution(
      g, p,
      [&](const ExecutionResult& r) {
        std::string key;
        for (const Bits& b : r.board.messages()) {
          key.push_back('|');
          for (std::size_t i = 0; i < b.size(); ++i) {
            key.push_back(b.bit(i) ? '1' : '0');
          }
        }
        boards.insert(std::move(key));
        return true;
      },
      opts);
  return static_cast<std::uint64_t>(boards.size());
}

}  // namespace wb
