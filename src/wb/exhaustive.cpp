#include "src/wb/exhaustive.h"

#include <algorithm>
#include <vector>

#include "src/support/hash.h"

namespace wb {

namespace {

// Depth-first over adversary choices on ONE journaling EngineState: branches
// are taken by write_node() and undone by rewind(), never by copying the
// state. Per-frame candidate buffers and the scratch ExecutionResult are
// pooled, so a steady-state visit allocates nothing.
class Backtracker {
 public:
  Backtracker(const Graph& g, const Protocol& p,
              const std::function<bool(const ExecutionResult&)>& visit,
              const ExhaustiveOptions& opts)
      : state_(g, p, opts.engine), visit_(&visit),
        budget_(opts.max_executions) {
    state_.set_journaling(true);
  }

  std::uint64_t run() {
    explore(0);
    return visited_;
  }

 private:
  // Invariant: explore() returns with the state rewound to how it found it.
  void explore(std::size_t depth) {
    const EngineState::Checkpoint pre_round = state_.checkpoint();
    state_.begin_round();
    if (state_.terminal()) {
      WB_CHECK_MSG(visited_ < budget_, "exhaustive exploration budget exceeded");
      ++visited_;
      state_.finish_into(scratch_);
      if (!(*visit_)(scratch_)) stopped_ = true;
      // Release our share of the board storage so the engine is again its
      // sole owner and rewinds in place. (A visitor that kept a copy of the
      // result still owns a consistent snapshot — copy-on-write.)
      scratch_.board = Whiteboard();
      state_.rewind(pre_round);
      return;
    }
    // The round's candidates, copied into this depth's pooled buffer:
    // write_node() does not consume the candidate list, and rewinds restore
    // the state the copies were taken from. Accessed by index and re-fetched
    // each iteration — deeper explore() calls can grow frames_ and move the
    // pooled vectors, so no reference across the recursion stays valid.
    if (frames_.size() <= depth) frames_.emplace_back();
    frames_[depth].assign(state_.candidates().begin(),
                          state_.candidates().end());
    const EngineState::Checkpoint pre_write = state_.checkpoint();
    for (std::size_t i = 0; i < frames_[depth].size(); ++i) {
      if (stopped_) break;
      state_.write_node(frames_[depth][i]);
      explore(depth + 1);
      state_.rewind(pre_write);
    }
    state_.rewind(pre_round);
  }

  EngineState state_;
  const std::function<bool(const ExecutionResult&)>* visit_;
  std::uint64_t budget_;
  std::uint64_t visited_ = 0;
  bool stopped_ = false;
  ExecutionResult scratch_;
  std::vector<std::vector<NodeId>> frames_;
};

}  // namespace

std::uint64_t for_each_execution(
    const Graph& g, const Protocol& p,
    const std::function<bool(const ExecutionResult&)>& visit,
    const ExhaustiveOptions& opts) {
  return Backtracker(g, p, visit, opts).run();
}

bool all_executions_ok(
    const Graph& g, const Protocol& p,
    const std::function<bool(const ExecutionResult&)>& accept,
    const ExhaustiveOptions& opts) {
  bool ok = true;
  for_each_execution(
      g, p,
      [&](const ExecutionResult& r) {
        if (!r.ok() || !accept(r)) {
          ok = false;
          return false;
        }
        return true;
      },
      opts);
  return ok;
}

std::uint64_t count_distinct_final_boards(const Graph& g, const Protocol& p,
                                          const ExhaustiveOptions& opts) {
  // Word-wise 128-bit keys instead of byte-per-bit strings: 16 bytes per
  // execution in one flat buffer, deduplicated with a single sort.
  std::vector<Hash128> keys;
  for_each_execution(
      g, p,
      [&](const ExecutionResult& r) {
        keys.push_back(r.board.content_hash());
        return true;
      },
      opts);
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return static_cast<std::uint64_t>(keys.size());
}

}  // namespace wb
