#include "src/wb/exhaustive.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/support/thread_pool.h"

namespace wb {

namespace {

/// State shared by every subtree task of one sweep. The counter is the
/// single source of truth for both the returned total and the budget guard,
/// so each is thread-count independent; the stop flag is how an early exit,
/// a budget overrun, or a throwing visitor cancels sibling subtrees.
struct ExploreControl {
  std::uint64_t budget = 0;
  std::atomic<std::uint64_t> visited{0};
  std::atomic<bool> stop{false};
};

// Depth-first over adversary choices on ONE journaling EngineState: branches
// are taken by write_node() and undone by rewind(), never by copying the
// state. Per-frame candidate buffers and the scratch ExecutionResult are
// pooled, so a steady-state visit allocates nothing. In a parallel sweep
// each subtree task owns one Backtracker seeded by replaying the task's
// decision prefix.
template <typename Visitor>
class Backtracker {
 public:
  Backtracker(const Graph& g, const Protocol& p, const EngineOptions& eopts,
              ExploreControl& ctl, Visitor& visit)
      : state_(g, p, eopts), ctl_(&ctl), visit_(&visit) {
    state_.set_journaling(true);
  }

  /// Replay `prefix` (one adversary decision per round) and exhaust the
  /// subtree below it. The prefix must consist of decisions recorded from
  /// non-terminal rounds of this same (graph, protocol).
  void run(std::span<const NodeId> prefix) {
    for (const NodeId v : prefix) {
      state_.begin_round();
      WB_CHECK_MSG(!state_.terminal(),
                   "subtree prefix reached a terminal state");
      state_.write_node(v);
    }
    explore(0);
  }

 private:
  // Invariant: explore() returns with the state rewound to how it found it.
  void explore(std::size_t depth) {
    if (ctl_->stop.load(std::memory_order_relaxed)) return;
    const EngineState::Checkpoint pre_round = state_.checkpoint();
    state_.begin_round();
    if (state_.terminal()) {
      visit_terminal();
      state_.rewind(pre_round);
      return;
    }
    // The round's candidates, copied into this depth's pooled buffer:
    // write_node() does not consume the candidate list, and rewinds restore
    // the state the copies were taken from. Accessed by index and re-fetched
    // each iteration — deeper explore() calls can grow frames_ and move the
    // pooled vectors, so no reference across the recursion stays valid.
    if (frames_.size() <= depth) frames_.emplace_back();
    frames_[depth].assign(state_.candidates().begin(),
                          state_.candidates().end());
    const EngineState::Checkpoint pre_write = state_.checkpoint();
    for (std::size_t i = 0; i < frames_[depth].size(); ++i) {
      if (ctl_->stop.load(std::memory_order_relaxed)) break;
      state_.write_node(frames_[depth][i]);
      explore(depth + 1);
      state_.rewind(pre_write);
    }
    state_.rewind(pre_round);
  }

  void visit_terminal() {
    // Reserve this execution's slot in the shared count BEFORE visiting: the
    // sweep's return value is then exactly the number of visitor
    // invocations (no execution is counted without being visited, none is
    // visited without being counted), and whether the budget guard fires
    // depends only on the total, never on the thread count.
    const std::uint64_t slot =
        ctl_->visited.fetch_add(1, std::memory_order_relaxed);
    if (slot >= ctl_->budget) {
      ctl_->visited.fetch_sub(1, std::memory_order_relaxed);
      ctl_->stop.store(true, std::memory_order_relaxed);
      throw BudgetExceededError(ctl_->budget);
    }
    state_.finish_into(scratch_);
    bool keep_going = false;
    try {
      keep_going = (*visit_)(scratch_);
    } catch (...) {
      ctl_->stop.store(true, std::memory_order_relaxed);
      scratch_.board = Whiteboard();
      throw;
    }
    if (!keep_going) ctl_->stop.store(true, std::memory_order_release);
    // Release our share of the board storage so the engine is again its
    // sole owner and rewinds in place. (A visitor that kept a copy of the
    // result still owns a consistent snapshot — copy-on-write.)
    scratch_.board = Whiteboard();
  }

  EngineState state_;
  ExploreControl* ctl_;
  Visitor* visit_;
  ExecutionResult scratch_;
  std::vector<std::vector<NodeId>> frames_;
};

std::size_t resolve_threads(std::size_t requested) {
  if (requested != 0) return requested;
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

/// Sweep exactly the subtrees of `tasks`, serially or over the shared pool.
/// visit(result, task_index) must be safe to call concurrently for
/// *different* task indices (a single task is always processed by one
/// worker). The visited set, the shared count, and whether the budget guard
/// fires are identical for any thread count; only the inter-task visit
/// order varies.
template <typename Visit>
void sweep_tasks(const Graph& g, const Protocol& p,
                 const ExhaustiveOptions& opts,
                 std::span<const PrefixTask> tasks, ExploreControl& ctl,
                 const Visit& visit) {
  const std::size_t threads = resolve_threads(opts.threads);
  if (threads > 1 && tasks.size() > 1) {
    ThreadPool::shared().parallel_for(
        tasks.size(),
        [&](std::size_t t) {
          if (ctl.stop.load(std::memory_order_relaxed)) return;
          auto task_visit = [&visit, t](const ExecutionResult& r) {
            return visit(r, t);
          };
          Backtracker<decltype(task_visit)> bt(g, p, opts.engine, ctl,
                                               task_visit);
          bt.run(tasks[t].prefix());
        },
        threads);
    return;
  }
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    if (ctl.stop.load(std::memory_order_relaxed)) break;
    auto task_visit = [&visit, t](const ExecutionResult& r) {
      return visit(r, t);
    };
    Backtracker<decltype(task_visit)> bt(g, p, opts.engine, ctl, task_visit);
    bt.run(tasks[t].prefix());
  }
}

/// The full-sweep driver behind the classic entry points.
/// prepare(task_count) runs before any visit; visit(result, task) as in
/// sweep_tasks.
template <typename Prepare, typename Visit>
std::uint64_t explore_all(const Graph& g, const Protocol& p,
                          const ExhaustiveOptions& opts,
                          const Prepare& prepare, const Visit& visit) {
  ExploreControl ctl;
  ctl.budget = opts.max_executions;
  const std::vector<PrefixTask> tasks =
      partition_for_threads(g, p, opts.engine, opts.threads);
  prepare(tasks.size());
  sweep_tasks(g, p, opts, tasks, ctl, visit);
  return ctl.visited.load(std::memory_order_relaxed);
}

}  // namespace

std::vector<PrefixTask> partition_for_threads(const Graph& g,
                                              const Protocol& p,
                                              const EngineOptions& eopts,
                                              std::size_t threads) {
  const std::size_t workers = resolve_threads(threads);
  if (workers <= 1) {
    return {PrefixTask{}};  // depth 0: the entire schedule tree, serially
  }
  // Several tasks per worker, so dynamic claiming load-balances subtrees of
  // uneven size.
  return partition_executions(g, p, eopts, workers * 4);
}

std::vector<PrefixTask> partition_executions(const Graph& g, const Protocol& p,
                                             const EngineOptions& eopts,
                                             std::size_t target_tasks) {
  std::vector<PrefixTask> tasks;
  EngineState s(g, p, eopts);
  s.set_journaling(true);
  s.begin_round();
  if (s.terminal()) {
    // A single execution; the depth-0 task keeps the tiling invariant.
    tasks.push_back(PrefixTask{});
    return tasks;
  }
  const std::vector<NodeId> level1(s.candidates().begin(),
                                   s.candidates().end());
  if (level1.size() >= target_tasks) {
    for (const NodeId v : level1) {
      tasks.push_back(PrefixTask{{v, kNoNode}, 1});
    }
    return tasks;
  }
  const EngineState::Checkpoint root = s.checkpoint();
  for (const NodeId v : level1) {
    s.write_node(v);
    s.begin_round();
    if (s.terminal()) {
      tasks.push_back(PrefixTask{{v, kNoNode}, 1});
    } else {
      for (const NodeId u : s.candidates()) {
        tasks.push_back(PrefixTask{{v, u}, 2});
      }
    }
    s.rewind(root);
  }
  return tasks;
}

std::uint64_t for_each_execution(
    const Graph& g, const Protocol& p,
    const std::function<bool(const ExecutionResult&)>& visit,
    const ExhaustiveOptions& opts) {
  return explore_all(
      g, p, opts, [](std::size_t) {},
      [&visit](const ExecutionResult& r, std::size_t) { return visit(r); });
}

std::uint64_t for_each_execution_under(
    const Graph& g, const Protocol& p, std::span<const PrefixTask> tasks,
    const std::function<bool(const ExecutionResult&, std::size_t)>& visit,
    const ExhaustiveOptions& opts) {
  ExploreControl ctl;
  ctl.budget = opts.max_executions;
  sweep_tasks(g, p, opts, tasks, ctl,
              [&visit](const ExecutionResult& r, std::size_t t) {
                return visit(r, t);
              });
  return ctl.visited.load(std::memory_order_relaxed);
}

bool all_executions_ok(
    const Graph& g, const Protocol& p,
    const std::function<bool(const ExecutionResult&)>& accept,
    const ExhaustiveOptions& opts) {
  std::atomic<bool> ok{true};
  explore_all(
      g, p, opts, [](std::size_t) {},
      [&](const ExecutionResult& r, std::size_t) {
        if (!r.ok() || !accept(r)) {
          // Returning false sets the shared stop flag, so sibling subtrees
          // cancel at their next poll; the verdict itself cannot flip back.
          ok.store(false, std::memory_order_relaxed);
          return false;
        }
        return true;
      });
  return ok.load(std::memory_order_relaxed);
}

MemoizedTotals sweep_memoized(
    const Graph& g, const Protocol& p,
    const std::function<bool(const ExecutionResult&)>& judge,
    const ExhaustiveOptions& opts) {
  WB_REQUIRE_MSG(opts.threads == 1, "memoized sweeps are serial");

  struct MemoEntry {
    std::uint64_t executions = 0;
    std::uint64_t engine_failures = 0;
    std::uint64_t wrong_outputs = 0;
  };
  struct KeyHasher {
    std::size_t operator()(const Hash128& h) const noexcept {
      return static_cast<std::size_t>(h.lo ^ h.hi);
    }
  };
  std::unordered_map<Hash128, MemoEntry, KeyHasher> memo;

  MemoizedTotals totals;
  std::unique_ptr<DistinctAccumulator> distinct =
      make_distinct_accumulator(opts.distinct);
  std::uint64_t charged = 0;  // executions accounted so far — the budget
                              // counter the unmemoized sweep would hold at
                              // the same point of its identical visit order
  const auto charge = [&](std::uint64_t executions) {
    if (executions > opts.max_executions - charged) {
      throw BudgetExceededError(opts.max_executions);
    }
    charged += executions;
  };

  EngineState state(g, p, opts.engine);
  state.set_journaling(true);
  ExecutionResult scratch;

  // Invariant (as in Backtracker::explore): returns with the state rewound
  // to how it found it, and returns the subtree's totals.
  const auto explore = [&](const auto& self) -> MemoEntry {
    const EngineState::Checkpoint pre_round = state.checkpoint();
    state.begin_round();
    if (state.terminal()) {
      charge(1);
      ++totals.terminals_visited;
      state.finish_into(scratch);
      MemoEntry leaf{1, 0, 0};
      if (!scratch.ok()) {
        leaf.engine_failures = 1;
      } else if (!judge(scratch)) {
        leaf.wrong_outputs = 1;
      }
      distinct->insert(scratch.board.content_hash());
      state.rewind(pre_round);
      return leaf;
    }
    const Hash128 key = state.memo_key();
    if (const auto it = memo.find(key); it != memo.end()) {
      // The whole subtree was explored from an identical state: its
      // terminals, in the same relative order, contribute the same totals —
      // and its distinct boards are already in the accumulator (set-union
      // and register-max are idempotent, so skipping the re-inserts leaves
      // exact and hll counts alike unchanged).
      ++totals.memo_hits;
      charge(it->second.executions);
      state.rewind(pre_round);
      return it->second;
    }
    ++totals.states_explored;
    MemoEntry sum;
    const std::vector<NodeId> branches(state.candidates().begin(),
                                       state.candidates().end());
    const EngineState::Checkpoint pre_write = state.checkpoint();
    for (const NodeId v : branches) {
      state.write_node(v);
      const MemoEntry sub = self(self);
      sum.executions += sub.executions;
      sum.engine_failures += sub.engine_failures;
      sum.wrong_outputs += sub.wrong_outputs;
      state.rewind(pre_write);
    }
    memo.emplace(key, sum);
    state.rewind(pre_round);
    return sum;
  };

  const MemoEntry root = explore(explore);
  totals.executions = root.executions;
  totals.engine_failures = root.engine_failures;
  totals.wrong_outputs = root.wrong_outputs;
  totals.distinct = distinct->estimate();
  return totals;
}

std::uint64_t count_distinct_final_boards(const Graph& g, const Protocol& p,
                                          const ExhaustiveOptions& opts) {
  // Word-wise 128-bit keys through the configured accumulator: one per
  // subtree task (exclusive to its worker, so no locking), folded afterwards
  // by the accumulator's order-oblivious merge — identical counts at any
  // thread count for exact (set union) and hll (register max) alike.
  std::vector<std::unique_ptr<DistinctAccumulator>> accumulators;
  explore_all(
      g, p, opts,
      [&](std::size_t task_count) {
        accumulators.reserve(task_count);
        for (std::size_t t = 0; t < task_count; ++t) {
          accumulators.push_back(make_distinct_accumulator(opts.distinct));
        }
      },
      [&](const ExecutionResult& r, std::size_t task) {
        accumulators[task]->insert(r.board.content_hash());
        return true;
      });
  if (accumulators.empty()) return 0;
  std::unique_ptr<DistinctAccumulator> total = std::move(accumulators.front());
  for (std::size_t t = 1; t < accumulators.size(); ++t) {
    total->merge(std::move(*accumulators[t]));
  }
  return total->estimate();
}

}  // namespace wb
