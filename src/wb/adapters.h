// Executable forms of the Lemma 4 inclusions:
//
//   PSIMASYNC[f] ⊆ PSIMSYNC[f] ⊆ PASYNC[f] ⊆ PSYNC[f]
//
// Each adapter wraps a protocol of the smaller class into a protocol that
// runs under the larger class's engine semantics and computes the same
// output, following the constructions in the paper's proof:
//  - SimAsyncInSimSync: "nodes create their message initially, ignoring the
//    messages present on the whiteboard" — compose always sees an empty
//    board.
//  - SimSyncInAsync: "fix an order (v_1, ..., v_n) and use this order for a
//    sequential activation" — v_i activates exactly when i-1 messages are on
//    the board, so the adversary is forced into the fixed order and each
//    frozen message equals what the SIMSYNC node would write when selected.
//  - AsyncInSync: "force the protocols in SYNC to create their messages
//    based only on what was known at the moment when they became active" —
//    compose rewinds the whiteboard to the shortest prefix at which the
//    wrapped protocol's activation condition first held and composes from
//    that prefix, making the per-round recomposition a no-op.
//
// Two inclusions are pure rebadging (no behavioral change) and are provided
// by Rebadge: SIMASYNC→ASYNC and SIMSYNC→SYNC.
#pragma once

#include "src/wb/protocol.h"

namespace wb {

namespace detail {

/// The shortest whiteboard prefix of `board` at which `p.activate(view, ·)`
/// holds (falls back to the full board; callers only invoke this for nodes
/// that are active under the full board).
template <typename OutputT>
Whiteboard activation_prefix(const ProtocolWithOutput<OutputT>& p,
                             const LocalView& view, const Whiteboard& board) {
  Whiteboard prefix;
  for (std::size_t k = 0; k <= board.message_count(); ++k) {
    if (k > 0) prefix.append(board.message(k - 1));
    if (p.activate(view, prefix)) return prefix;
  }
  return prefix;  // == full board
}

}  // namespace detail

/// SIMASYNC protocol run under SIMSYNC semantics (Lemma 4, first inclusion).
template <typename OutputT>
class SimAsyncInSimSync final : public ProtocolWithOutput<OutputT> {
 public:
  explicit SimAsyncInSimSync(const ProtocolWithOutput<OutputT>& inner)
      : inner_(&inner) {
    WB_CHECK(inner.model_class() == ModelClass::kSimAsync);
  }
  ModelClass model_class() const override { return ModelClass::kSimSync; }
  std::size_t message_bit_limit(std::size_t n) const override {
    return inner_->message_bit_limit(n);
  }
  bool activate(const LocalView&, const Whiteboard&) const override {
    return true;
  }
  Bits compose(const LocalView& view, const Whiteboard&) const override {
    const Whiteboard empty;
    return inner_->compose(view, empty);  // ignore everything written so far
  }
  Bits compose(const LocalView& view, const Whiteboard&,
               BitWriter& scratch) const override {
    const Whiteboard empty;
    return inner_->compose(view, empty, scratch);
  }
  OutputT output(const Whiteboard& board, std::size_t n) const override {
    return inner_->output(board, n);
  }
  std::string name() const override {
    return inner_->name() + "@simsync";
  }

 private:
  const ProtocolWithOutput<OutputT>* inner_;
};

/// SIMSYNC protocol run under ASYNC semantics via sequential activation
/// (Lemma 4, second inclusion).
template <typename OutputT>
class SimSyncInAsync final : public ProtocolWithOutput<OutputT> {
 public:
  explicit SimSyncInAsync(const ProtocolWithOutput<OutputT>& inner)
      : inner_(&inner) {
    WB_CHECK(inner.model_class() == ModelClass::kSimSync);
  }
  ModelClass model_class() const override { return ModelClass::kAsync; }
  std::size_t message_bit_limit(std::size_t n) const override {
    return inner_->message_bit_limit(n);
  }
  bool activate(const LocalView& view, const Whiteboard& board) const override {
    // v_i raises its hand once v_1..v_{i-1} have written: exactly one node is
    // active at any time, so the adversary is forced into ID order.
    return board.message_count() + 1 == view.id();
  }
  Bits compose(const LocalView& view, const Whiteboard& board) const override {
    return inner_->compose(view, board);
  }
  Bits compose(const LocalView& view, const Whiteboard& board,
               BitWriter& scratch) const override {
    return inner_->compose(view, board, scratch);
  }
  OutputT output(const Whiteboard& board, std::size_t n) const override {
    return inner_->output(board, n);
  }
  std::string name() const override { return inner_->name() + "@async"; }

 private:
  const ProtocolWithOutput<OutputT>* inner_;
};

/// ASYNC protocol run under SYNC semantics by rewinding composition to the
/// activation moment (Lemma 4, third inclusion).
template <typename OutputT>
class AsyncInSync final : public ProtocolWithOutput<OutputT> {
 public:
  explicit AsyncInSync(const ProtocolWithOutput<OutputT>& inner)
      : inner_(&inner) {
    WB_CHECK(is_asynchronous(inner.model_class()));
  }
  ModelClass model_class() const override { return ModelClass::kSync; }
  std::size_t message_bit_limit(std::size_t n) const override {
    return inner_->message_bit_limit(n);
  }
  bool activate(const LocalView& view, const Whiteboard& board) const override {
    return inner_->activate(view, board);
  }
  Bits compose(const LocalView& view, const Whiteboard& board) const override {
    // Recomposition happens every round under SYNC; composing from the
    // activation-time prefix makes every recomposition return the same bits
    // the ASYNC run would have frozen.
    const Whiteboard prefix = detail::activation_prefix(*inner_, view, board);
    return inner_->compose(view, prefix);
  }
  Bits compose(const LocalView& view, const Whiteboard& board,
               BitWriter& scratch) const override {
    const Whiteboard prefix = detail::activation_prefix(*inner_, view, board);
    return inner_->compose(view, prefix, scratch);
  }
  OutputT output(const Whiteboard& board, std::size_t n) const override {
    return inner_->output(board, n);
  }
  std::string name() const override { return inner_->name() + "@sync"; }

 private:
  const ProtocolWithOutput<OutputT>* inner_;
};

/// Class-lattice moves that need no behavioral change: SIMASYNC→ASYNC and
/// SIMSYNC→SYNC (the wrapped protocol's activate() is unconditional, so the
/// free-activation engine still activates everyone in round one).
template <typename OutputT>
class Rebadge final : public ProtocolWithOutput<OutputT> {
 public:
  Rebadge(const ProtocolWithOutput<OutputT>& inner, ModelClass target)
      : inner_(&inner), target_(target) {
    const ModelClass from = inner.model_class();
    const bool valid =
        (from == ModelClass::kSimAsync && target == ModelClass::kAsync) ||
        (from == ModelClass::kSimSync && target == ModelClass::kSync);
    WB_CHECK_MSG(valid, "rebadge only supports SIMASYNC->ASYNC and "
                        "SIMSYNC->SYNC; other moves need a real adapter");
  }
  ModelClass model_class() const override { return target_; }
  std::size_t message_bit_limit(std::size_t n) const override {
    return inner_->message_bit_limit(n);
  }
  bool activate(const LocalView& view, const Whiteboard& board) const override {
    return inner_->activate(view, board);
  }
  Bits compose(const LocalView& view, const Whiteboard& board) const override {
    if (inner_->model_class() == ModelClass::kSimAsync) {
      // A SIMASYNC compose may only see the empty board; under free
      // activation the node still activates in round one, so this holds, but
      // we normalize defensively.
      const Whiteboard empty;
      return inner_->compose(view, empty);
    }
    return inner_->compose(view, board);
  }
  Bits compose(const LocalView& view, const Whiteboard& board,
               BitWriter& scratch) const override {
    if (inner_->model_class() == ModelClass::kSimAsync) {
      const Whiteboard empty;
      return inner_->compose(view, empty, scratch);
    }
    return inner_->compose(view, board, scratch);
  }
  OutputT output(const Whiteboard& board, std::size_t n) const override {
    return inner_->output(board, n);
  }
  std::string name() const override {
    return inner_->name() + "@" + std::string(model_name(target_));
  }

 private:
  const ProtocolWithOutput<OutputT>* inner_;
  ModelClass target_;
};

}  // namespace wb
