#include "src/wb/shard.h"

#include <atomic>
#include <charconv>
#include <memory>
#include <sstream>
#include <utility>

#include "src/support/check.h"

namespace wb::shard {

namespace {

// --- Text-format helpers -----------------------------------------------------

void append_hex16(std::string& out, std::uint64_t v) {
  static constexpr char kDigits[] = "0123456789abcdef";
  for (int shift = 60; shift >= 0; shift -= 4) {
    out.push_back(kDigits[(v >> shift) & 0xF]);
  }
}

/// Strict line cursor over one serialized document. Every field accessor
/// names the keyword it expects, so diagnostics read like
/// "shard spec line 7: expected 'prefix ...', got 'prefxi 1 3'".
class LineParser {
 public:
  LineParser(const std::string& text, const char* what)
      : text_(&text), what_(what) {}

  /// Next line, which must start with `keyword` followed by a space or be
  /// exactly `keyword`; returns the remainder after the space ("" if none).
  std::string expect(const std::string& keyword) {
    const std::string line = next_line(keyword);
    if (line == keyword) return "";
    WB_REQUIRE_MSG(line.size() > keyword.size() &&
                       line.compare(0, keyword.size(), keyword) == 0 &&
                       line[keyword.size()] == ' ',
                   what_ << " line " << line_no_ << ": expected '" << keyword
                         << " ...', got '" << line << "'");
    return line.substr(keyword.size() + 1);
  }

  /// If the next line starts with `keyword`, consume it and return its
  /// payload; otherwise leave the cursor untouched and return nullopt. For
  /// optional fields — the `faults` line that fault-free documents omit —
  /// so pre-fault v2 files keep parsing unchanged.
  std::optional<std::string> try_expect(const std::string& keyword) {
    if (pos_ >= text_->size()) return std::nullopt;
    const std::size_t nl = text_->find('\n', pos_);
    if (nl == std::string::npos) return std::nullopt;
    const std::string line = text_->substr(pos_, nl - pos_);
    std::string payload;
    if (line == keyword) {
      payload = "";
    } else if (line.size() > keyword.size() &&
               line.compare(0, keyword.size(), keyword) == 0 &&
               line[keyword.size()] == ' ') {
      payload = line.substr(keyword.size() + 1);
    } else {
      return std::nullopt;
    }
    pos_ = nl + 1;
    ++line_no_;
    return payload;
  }

  void expect_end() {
    const std::string line = next_line("end");
    WB_REQUIRE_MSG(line == "end", what_ << " line " << line_no_
                                        << ": expected 'end', got '" << line
                                        << "'");
    WB_REQUIRE_MSG(pos_ >= text_->size(),
                   what_ << " line " << line_no_ + 1
                         << ": trailing content after 'end'");
  }

  [[nodiscard]] std::size_t line_no() const noexcept { return line_no_; }
  [[nodiscard]] const char* what() const noexcept { return what_; }

 private:
  std::string next_line(const std::string& expected) {
    WB_REQUIRE_MSG(pos_ < text_->size(),
                   what_ << ": truncated — expected '" << expected
                         << "' but the input ended at line " << line_no_);
    const std::size_t nl = text_->find('\n', pos_);
    WB_REQUIRE_MSG(nl != std::string::npos,
                   what_ << " line " << line_no_ + 1
                         << ": missing final newline");
    std::string line = text_->substr(pos_, nl - pos_);
    pos_ = nl + 1;
    ++line_no_;
    return line;
  }

  const std::string* text_;
  const char* what_;
  std::size_t pos_ = 0;
  std::size_t line_no_ = 0;
};

/// Split a field payload on single spaces (no empties).
std::vector<std::string> split_fields(const std::string& payload) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= payload.size()) {
    const std::size_t sp = payload.find(' ', start);
    if (sp == std::string::npos) {
      out.push_back(payload.substr(start));
      break;
    }
    out.push_back(payload.substr(start, sp - start));
    start = sp + 1;
  }
  return out;
}

std::uint64_t parse_u64_field(const LineParser& lp, const std::string& field,
                             const char* name) {
  std::uint64_t value = 0;
  const char* begin = field.data();
  const char* end = begin + field.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  WB_REQUIRE_MSG(ec == std::errc{} && ptr == end && !field.empty(),
                 lp.what() << " line " << lp.line_no() << ": bad " << name
                           << " '" << field << "'");
  return value;
}

std::uint64_t parse_hex16_field(const LineParser& lp, const std::string& field,
                               const char* name) {
  std::uint64_t value = 0;
  const char* begin = field.data();
  const char* end = begin + field.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value, 16);
  WB_REQUIRE_MSG(field.size() == 16 && ec == std::errc{} && ptr == end,
                 lp.what() << " line " << lp.line_no() << ": bad " << name
                           << " '" << field << "' (want 16 hex digits)");
  return value;
}

Hash128 parse_hash_line(LineParser& lp, const std::string& keyword,
                        const char* name) {
  const auto fields = split_fields(lp.expect(keyword));
  WB_REQUIRE_MSG(fields.size() == 2,
                 lp.what() << " line " << lp.line_no() << ": expected '"
                           << keyword << " <lo> <hi>'");
  Hash128 h;
  h.lo = parse_hex16_field(lp, fields[0], name);
  h.hi = parse_hex16_field(lp, fields[1], name);
  return h;
}

void append_hash_line(std::string& out, const std::string& keyword,
                      const Hash128& h) {
  out += keyword;
  out.push_back(' ');
  append_hex16(out, h.lo);
  out.push_back(' ');
  append_hex16(out, h.hi);
  out.push_back('\n');
}

/// Version line: `<magic> v<version>`. Accepts min_version ..=
/// kFormatVersion (min_version > 1 for formats that did not exist in v1)
/// and returns the version read, so parsers can handle fields that arrived
/// later.
int require_version_line(LineParser& lp, const std::string& magic,
                         int min_version) {
  const std::string version = lp.expect(magic);
  int value = 0;
  bool ok = version.size() == 2 && version[0] == 'v' &&
            version[1] >= '0' && version[1] <= '9';
  if (ok) {
    value = version[1] - '0';
    ok = value >= min_version && value <= kFormatVersion;
  }
  WB_REQUIRE_MSG(ok, lp.what() << ": unsupported format version '" << version
                               << "' (this build reads v" << min_version
                               << "..v" << kFormatVersion << ")");
  return value;
}

DistinctConfig parse_distinct_field(const LineParser& lp,
                                    const std::string& payload) {
  try {
    return parse_distinct_config(payload);
  } catch (const DataError& e) {
    WB_REQUIRE_MSG(false, lp.what() << " line " << lp.line_no() << ": "
                                    << e.what());
  }
  return {};  // unreachable
}

FaultSpec parse_fault_field(const LineParser& lp, const std::string& payload) {
  try {
    return parse_fault_spec(payload);
  } catch (const DataError& e) {
    WB_REQUIRE_MSG(false, lp.what() << " line " << lp.line_no() << ": "
                                    << e.what());
  }
  return {};  // unreachable
}

/// Pack a byte string into the word-wise hasher (length-prefixed so
/// concatenations can't collide trivially).
void hash_bytes(Hasher128& h, const std::string& bytes) {
  h.update(bytes.size());
  std::uint64_t word = 0;
  int filled = 0;
  for (const unsigned char c : bytes) {
    word |= static_cast<std::uint64_t>(c) << (8 * filled);
    if (++filled == 8) {
      h.update(word);
      word = 0;
      filled = 0;
    }
  }
  if (filled != 0) h.update(word);
}

/// Fingerprint of everything shards of one plan agree on — the instance,
/// budget, engine options, distinct-accumulator config, shard count, and
/// the *complete* partition. Two partitions of the same instance (e.g.
/// different tasks_per_shard), or an exact and an hll plan of the same
/// instance, hash differently, so their shards can never be merged into
/// wrong (or silently mixed exact/approximate) totals.
Hash128 fingerprint_plan(const std::string& protocol_spec, const Graph& g,
                         const PlanOptions& opts, std::size_t shard_count,
                         std::span<const PrefixTask> all_tasks,
                         std::span<const FaultTask> all_fault_tasks) {
  Hasher128 h;
  hash_bytes(h, protocol_spec);
  h.update(g.node_count());
  h.update(g.edge_count());
  for (const Edge& e : g.edges()) {
    h.update((static_cast<std::uint64_t>(e.u) << 32) | e.v);
  }
  h.update(opts.max_executions);
  h.update(opts.engine.max_rounds);
  h.update(opts.engine.record_trace ? 1 : 0);
  h.update(static_cast<std::uint64_t>(opts.distinct.kind));
  h.update(opts.distinct.kind == DistinctKind::kHll
               ? static_cast<std::uint64_t>(opts.distinct.hll_precision)
               : 0);
  h.update(shard_count);
  h.update(all_tasks.size());
  for (const PrefixTask& t : all_tasks) {
    h.update(t.depth);
    for (const NodeId v : t.prefix()) h.update(v);
  }
  // Fault-model coverage: hashed only for faulty plans, so every fault-free
  // fingerprint — including those already committed in golden artifacts —
  // is unchanged. Mismatched fault specs (or the same spec with a different
  // world partition) refuse to merge exactly like mismatched partitions.
  if (opts.faults.kind != FaultKind::kNone) {
    h.update(0x66756c74);  // domain tag: "fult"
    h.update(static_cast<std::uint64_t>(opts.faults.kind));
    h.update(opts.faults.crash_f);
    h.update(opts.faults.prob_num);
    h.update(opts.faults.prob_den);
    h.update(opts.faults.seed);
    h.update(opts.faults.trials);
    h.update(all_fault_tasks.size());
    for (const FaultTask& t : all_fault_tasks) {
      h.update(t.world);
      h.update(t.prefix.depth);
      for (const NodeId v : t.prefix.prefix()) h.update(v);
    }
  }
  return h.digest();
}

/// Cap an untrusted entry count before vector::reserve: every serialized
/// entry occupies at least one byte of the document, so a count past the
/// input length is certainly lying and would otherwise turn a corrupted
/// file into a giant allocation (std::bad_alloc) instead of the parse error
/// the per-line reader reports.
std::size_t clamped_reserve(std::uint64_t declared, const std::string& text) {
  return static_cast<std::size_t>(
      std::min<std::uint64_t>(declared, text.size()));
}

/// Register block of an hll result: 2^p bytes, hex-encoded 64 bytes per
/// `reg` line (so a p = 14 sketch is 256 lines of 128 hex digits).
constexpr std::size_t kRegistersPerLine = 64;

void append_register_block(std::string& out,
                           std::span<const std::uint8_t> registers) {
  static constexpr char kDigits[] = "0123456789abcdef";
  out += "registers " + std::to_string(registers.size()) + "\n";
  for (std::size_t start = 0; start < registers.size();
       start += kRegistersPerLine) {
    const std::size_t count =
        std::min(kRegistersPerLine, registers.size() - start);
    out += "reg ";
    for (std::size_t i = 0; i < count; ++i) {
      const std::uint8_t byte = registers[start + i];
      out.push_back(kDigits[byte >> 4]);
      out.push_back(kDigits[byte & 0xF]);
    }
    out.push_back('\n');
  }
}

HyperLogLog parse_register_block(LineParser& lp, int precision) {
  const std::uint64_t declared =
      parse_u64_field(lp, lp.expect("registers"), "register count");
  const std::size_t expected = std::size_t{1} << precision;
  WB_REQUIRE_MSG(declared == expected,
                 lp.what() << " line " << lp.line_no() << ": " << declared
                           << " registers, but precision " << precision
                           << " has " << expected);
  std::vector<std::uint8_t> registers;
  registers.reserve(expected);
  while (registers.size() < expected) {
    const std::size_t count =
        std::min(kRegistersPerLine, expected - registers.size());
    const std::string payload = lp.expect("reg");
    WB_REQUIRE_MSG(payload.size() == 2 * count,
                   lp.what() << " line " << lp.line_no()
                             << ": register line of " << payload.size()
                             << " hex digits, expected " << 2 * count);
    for (std::size_t i = 0; i < count; ++i) {
      const auto nibble = [&](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        WB_REQUIRE_MSG(false, lp.what() << " line " << lp.line_no()
                                        << ": bad hex digit '" << c
                                        << "' in register line");
        return 0;  // unreachable
      };
      registers.push_back(static_cast<std::uint8_t>(
          (nibble(payload[2 * i]) << 4) | nibble(payload[2 * i + 1])));
    }
  }
  try {
    return HyperLogLog::from_registers(precision, registers);
  } catch (const DataError& e) {
    WB_REQUIRE_MSG(false, lp.what() << " line " << lp.line_no() << ": "
                                    << e.what());
  }
  return HyperLogLog(precision);  // unreachable
}

}  // namespace

Hash128 hash_document(const std::string& text) {
  Hasher128 h;
  hash_bytes(h, text);
  return h.digest();
}

std::vector<ShardSpec> plan_shards(const Graph& g, const Protocol& p,
                                   const std::string& protocol_spec,
                                   std::size_t shard_count,
                                   const PlanOptions& opts) {
  WB_REQUIRE_MSG(shard_count >= 1, "shard count must be at least 1");
  WB_REQUIRE_MSG(shard_count <= 1u << 20,
                 "shard count " << shard_count << " is not a serious plan");
  const std::size_t target =
      shard_count * std::max<std::size_t>(1, opts.tasks_per_shard);
  std::vector<PrefixTask> tasks;
  std::vector<FaultTask> fault_tasks;
  if (opts.faults.kind == FaultKind::kNone) {
    tasks = partition_executions(g, p, opts.engine, target);
  } else if (opts.faults.kind != FaultKind::kAdaptive) {
    // Crash/corruption sweeps partition (fault world × prefix) pairs; the
    // world enumeration folds into the same round-robin distribution.
    fault_tasks = partition_fault_tasks(g, p, opts.faults, opts.engine, target);
  }
  // Adaptive plans carry no partition: shard k of K runs trial indices
  // k, k+K, k+2K, ... — the stride split run_shard derives from the shard
  // coordinates, which merges to exactly the single-stream trial set.
  const Hash128 plan = fingerprint_plan(protocol_spec, g, opts, shard_count,
                                        tasks, fault_tasks);
  std::vector<ShardSpec> specs(shard_count);
  for (std::size_t k = 0; k < shard_count; ++k) {
    specs[k].protocol_spec = protocol_spec;
    specs[k].graph = g;
    specs[k].max_executions = opts.max_executions;
    specs[k].engine = opts.engine;
    specs[k].distinct = opts.distinct;
    specs[k].plan = plan;
    specs[k].shard_index = static_cast<std::uint32_t>(k);
    specs[k].shard_count = static_cast<std::uint32_t>(shard_count);
    specs[k].faults = opts.faults;
  }
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    specs[t % shard_count].prefixes.push_back(tasks[t]);
  }
  for (std::size_t t = 0; t < fault_tasks.size(); ++t) {
    specs[t % shard_count].fault_tasks.push_back(fault_tasks[t]);
  }
  return specs;
}

ShardManifest make_manifest(std::span<const ShardSpec> specs) {
  WB_REQUIRE_MSG(!specs.empty(), "no shard specs to index");
  const ShardSpec& first = specs.front();
  WB_REQUIRE_MSG(specs.size() == first.shard_count,
                 "manifest needs the complete plan: got " << specs.size()
                                                          << " specs of "
                                                          << first.shard_count);
  ShardManifest manifest;
  manifest.plan = first.plan;
  manifest.shard_count = first.shard_count;
  manifest.max_executions = first.max_executions;
  manifest.distinct = first.distinct;
  manifest.faults = first.faults;
  manifest.spec_hashes.reserve(specs.size());
  for (std::size_t k = 0; k < specs.size(); ++k) {
    WB_REQUIRE_MSG(specs[k].plan == first.plan,
                   "spec " << k << " belongs to a different plan");
    WB_REQUIRE_MSG(specs[k].shard_index == k,
                   "manifest needs specs in shard order: index "
                       << specs[k].shard_index << " at position " << k);
    manifest.spec_hashes.push_back(hash_document(serialize(specs[k])));
  }
  return manifest;
}

std::string serialize(const ShardSpec& spec) {
  std::ostringstream os;
  os << "wbshard-spec v" << kFormatVersion << "\n";
  os << "protocol " << spec.protocol_spec << "\n";
  os << "graph " << spec.graph.node_count() << " " << spec.graph.edge_count()
     << "\n";
  for (const Edge& e : spec.graph.edges()) {
    os << "edge " << e.u << " " << e.v << "\n";
  }
  os << "max-executions " << spec.max_executions << "\n";
  if (spec.faults.kind != FaultKind::kNone) {
    os << "faults " << fault_spec_to_string(spec.faults) << "\n";
  }
  os << "engine " << spec.engine.max_rounds << " "
     << (spec.engine.record_trace ? 1 : 0) << "\n";
  os << "distinct " << to_string(spec.distinct) << "\n";
  std::string plan_line;
  append_hash_line(plan_line, "plan", spec.plan);
  os << plan_line;
  os << "shard " << spec.shard_index << " " << spec.shard_count << "\n";
  os << "prefixes " << spec.prefixes.size() << "\n";
  for (const PrefixTask& t : spec.prefixes) {
    os << "prefix " << t.depth;
    for (const NodeId v : t.prefix()) os << " " << v;
    os << "\n";
  }
  if (spec.faults.kind == FaultKind::kCrash ||
      spec.faults.kind == FaultKind::kCorrupt) {
    os << "fprefixes " << spec.fault_tasks.size() << "\n";
    for (const FaultTask& t : spec.fault_tasks) {
      os << "fprefix " << t.world << " " << t.prefix.depth;
      for (const NodeId v : t.prefix.prefix()) os << " " << v;
      os << "\n";
    }
  }
  os << "end\n";
  return os.str();
}

ShardSpec parse_shard_spec(const std::string& text) {
  LineParser lp(text, "shard spec");
  const int version = require_version_line(lp, "wbshard-spec", 1);
  ShardSpec spec;

  spec.protocol_spec = lp.expect("protocol");
  WB_REQUIRE_MSG(!spec.protocol_spec.empty(),
                 "shard spec line " << lp.line_no() << ": empty protocol spec");

  const auto graph_fields = split_fields(lp.expect("graph"));
  WB_REQUIRE_MSG(graph_fields.size() == 2,
                 "shard spec line " << lp.line_no()
                                    << ": expected 'graph <n> <m>'");
  const std::uint64_t n = parse_u64_field(lp, graph_fields[0], "node count");
  const std::uint64_t m = parse_u64_field(lp, graph_fields[1], "edge count");
  std::vector<Edge> edges;
  edges.reserve(clamped_reserve(m, text));
  for (std::uint64_t i = 0; i < m; ++i) {
    const auto ef = split_fields(lp.expect("edge"));
    WB_REQUIRE_MSG(ef.size() == 2, "shard spec line "
                                       << lp.line_no()
                                       << ": expected 'edge <u> <v>'");
    const std::uint64_t u = parse_u64_field(lp, ef[0], "edge endpoint");
    const std::uint64_t v = parse_u64_field(lp, ef[1], "edge endpoint");
    WB_REQUIRE_MSG(u >= 1 && v >= 1 && u <= n && v <= n && u != v,
                   "shard spec line " << lp.line_no() << ": bad edge {" << u
                                      << "," << v << "} on " << n << " nodes");
    edges.push_back(make_edge(static_cast<NodeId>(u), static_cast<NodeId>(v)));
  }
  spec.graph = Graph(static_cast<std::size_t>(n), edges);

  spec.max_executions =
      parse_u64_field(lp, lp.expect("max-executions"), "max-executions");

  // Optional: v2 documents without a `faults` line are fault-free.
  if (version >= 2) {
    if (const auto payload = lp.try_expect("faults")) {
      spec.faults = parse_fault_field(lp, *payload);
    }
  }

  const auto engine_fields = split_fields(lp.expect("engine"));
  WB_REQUIRE_MSG(engine_fields.size() == 2,
                 "shard spec line "
                     << lp.line_no()
                     << ": expected 'engine <max-rounds> <record-trace>'");
  spec.engine.max_rounds = static_cast<std::size_t>(
      parse_u64_field(lp, engine_fields[0], "engine max-rounds"));
  const std::uint64_t trace =
      parse_u64_field(lp, engine_fields[1], "engine record-trace");
  WB_REQUIRE_MSG(trace <= 1, "shard spec line "
                                 << lp.line_no()
                                 << ": record-trace must be 0 or 1");
  spec.engine.record_trace = trace == 1;

  // v1 predates the pluggable distinct accumulator; those sweeps were exact.
  spec.distinct = version >= 2
                      ? parse_distinct_field(lp, lp.expect("distinct"))
                      : DistinctConfig::Exact();

  spec.plan = parse_hash_line(lp, "plan", "plan hash");

  const auto shard_fields = split_fields(lp.expect("shard"));
  WB_REQUIRE_MSG(shard_fields.size() == 2,
                 "shard spec line " << lp.line_no()
                                    << ": expected 'shard <index> <count>'");
  spec.shard_index = static_cast<std::uint32_t>(
      parse_u64_field(lp, shard_fields[0], "shard index"));
  spec.shard_count = static_cast<std::uint32_t>(
      parse_u64_field(lp, shard_fields[1], "shard count"));
  WB_REQUIRE_MSG(spec.shard_count >= 1 && spec.shard_index < spec.shard_count,
                 "shard spec line " << lp.line_no() << ": shard "
                                    << spec.shard_index << " of "
                                    << spec.shard_count << " is out of range");

  const std::uint64_t prefix_count =
      parse_u64_field(lp, lp.expect("prefixes"), "prefix count");
  spec.prefixes.reserve(clamped_reserve(prefix_count, text));
  for (std::uint64_t i = 0; i < prefix_count; ++i) {
    const auto pf = split_fields(lp.expect("prefix"));
    WB_REQUIRE_MSG(!pf.empty(),
                   "shard spec line " << lp.line_no()
                                      << ": expected 'prefix <depth> ...'");
    PrefixTask task;
    task.depth = static_cast<std::size_t>(
        parse_u64_field(lp, pf[0], "prefix depth"));
    WB_REQUIRE_MSG(task.depth <= task.decision.size(),
                   "shard spec line " << lp.line_no() << ": prefix depth "
                                      << task.depth << " exceeds the maximum "
                                      << task.decision.size());
    WB_REQUIRE_MSG(pf.size() == 1 + task.depth,
                   "shard spec line "
                       << lp.line_no() << ": prefix of depth " << task.depth
                       << " must carry exactly " << task.depth << " node ids");
    for (std::size_t d = 0; d < task.depth; ++d) {
      const std::uint64_t v = parse_u64_field(lp, pf[1 + d], "prefix node");
      WB_REQUIRE_MSG(v >= 1 && v <= n, "shard spec line "
                                           << lp.line_no() << ": prefix node "
                                           << v << " out of range 1.." << n);
      task.decision[d] = static_cast<NodeId>(v);
    }
    spec.prefixes.push_back(task);
  }

  // Crash/corruption specs carry their (world × prefix) partition; the
  // `fprefixes` section is rejected for every other fault kind (expect_end
  // below refuses it), and required for these two.
  if (spec.faults.kind == FaultKind::kCrash ||
      spec.faults.kind == FaultKind::kCorrupt) {
    std::uint64_t worlds = 1;
    if (spec.faults.kind == FaultKind::kCrash) {
      try {
        worlds = crash_world_count(spec.graph.node_count(),
                                   spec.faults.crash_f);
      } catch (const std::exception& e) {
        WB_REQUIRE_MSG(false, "shard spec line " << lp.line_no() << ": "
                                                 << e.what());
      }
    }
    const std::uint64_t fcount =
        parse_u64_field(lp, lp.expect("fprefixes"), "fault prefix count");
    spec.fault_tasks.reserve(clamped_reserve(fcount, text));
    for (std::uint64_t i = 0; i < fcount; ++i) {
      const auto pf = split_fields(lp.expect("fprefix"));
      WB_REQUIRE_MSG(pf.size() >= 2,
                     "shard spec line "
                         << lp.line_no()
                         << ": expected 'fprefix <world> <depth> ...'");
      FaultTask task;
      task.world = parse_u64_field(lp, pf[0], "fault world");
      WB_REQUIRE_MSG(task.world < worlds,
                     "shard spec line " << lp.line_no() << ": fault world "
                                        << task.world << " out of range 0.."
                                        << worlds - 1);
      task.prefix.depth = static_cast<std::size_t>(
          parse_u64_field(lp, pf[1], "prefix depth"));
      WB_REQUIRE_MSG(task.prefix.depth <= task.prefix.decision.size(),
                     "shard spec line "
                         << lp.line_no() << ": prefix depth "
                         << task.prefix.depth << " exceeds the maximum "
                         << task.prefix.decision.size());
      WB_REQUIRE_MSG(pf.size() == 2 + task.prefix.depth,
                     "shard spec line " << lp.line_no()
                                        << ": fprefix of depth "
                                        << task.prefix.depth
                                        << " must carry exactly "
                                        << task.prefix.depth << " node ids");
      for (std::size_t d = 0; d < task.prefix.depth; ++d) {
        const std::uint64_t v =
            parse_u64_field(lp, pf[2 + d], "prefix node");
        WB_REQUIRE_MSG(v >= 1 && v <= n,
                       "shard spec line " << lp.line_no() << ": prefix node "
                                          << v << " out of range 1.." << n);
        task.prefix.decision[d] = static_cast<NodeId>(v);
      }
      spec.fault_tasks.push_back(task);
    }
  }
  lp.expect_end();
  return spec;
}

std::string serialize(const ShardResult& result) {
  std::string out = "wbshard-result v" + std::to_string(kFormatVersion) + "\n";
  append_hash_line(out, "plan", result.plan);
  out += "shard " + std::to_string(result.shard_index) + " " +
         std::to_string(result.shard_count) + "\n";
  out += "max-executions " + std::to_string(result.max_executions) + "\n";
  if (result.faults.kind != FaultKind::kNone) {
    out += "faults " + fault_spec_to_string(result.faults) + "\n";
  }
  out += "executions " + std::to_string(result.executions) + "\n";
  out += "engine-failures " + std::to_string(result.engine_failures) + "\n";
  out += "wrong-outputs " + std::to_string(result.wrong_outputs) + "\n";
  out += std::string("budget-exceeded ") +
         (result.budget_exceeded ? "1" : "0") + "\n";
  if (result.faults.kind == FaultKind::kAdaptive) {
    out += "verdict " + std::to_string(result.verdict_trials) + " " +
           std::to_string(result.verdict_failures) + "\n";
  }
  out += "distinct-kind " + to_string(result.distinct) + "\n";
  if (result.distinct.kind == DistinctKind::kExact) {
    out += "distinct " + std::to_string(result.board_hashes.size()) + "\n";
    for (const Hash128& h : result.board_hashes) {
      append_hash_line(out, "hash", h);
    }
  } else {
    // A cleared (budget-exceeded) hll result serializes an all-zero sketch,
    // so the document stays deterministic and self-contained.
    const HyperLogLog empty{result.distinct.hll_precision};
    const HyperLogLog& sketch = result.hll.has_value() ? *result.hll : empty;
    append_register_block(out, sketch.registers());
  }
  out += "end\n";
  return out;
}

ShardResult parse_shard_result(const std::string& text) {
  LineParser lp(text, "shard result");
  const int version = require_version_line(lp, "wbshard-result", 1);
  ShardResult result;

  result.plan = parse_hash_line(lp, "plan", "plan hash");

  const auto shard_fields = split_fields(lp.expect("shard"));
  WB_REQUIRE_MSG(shard_fields.size() == 2,
                 "shard result line " << lp.line_no()
                                      << ": expected 'shard <index> <count>'");
  result.shard_index = static_cast<std::uint32_t>(
      parse_u64_field(lp, shard_fields[0], "shard index"));
  result.shard_count = static_cast<std::uint32_t>(
      parse_u64_field(lp, shard_fields[1], "shard count"));
  WB_REQUIRE_MSG(
      result.shard_count >= 1 && result.shard_index < result.shard_count,
      "shard result line " << lp.line_no() << ": shard " << result.shard_index
                           << " of " << result.shard_count
                           << " is out of range");

  result.max_executions =
      parse_u64_field(lp, lp.expect("max-executions"), "max-executions");

  // Optional: v2 documents without a `faults` line are fault-free.
  if (version >= 2) {
    if (const auto payload = lp.try_expect("faults")) {
      result.faults = parse_fault_field(lp, *payload);
    }
  }

  result.executions =
      parse_u64_field(lp, lp.expect("executions"), "executions");
  result.engine_failures =
      parse_u64_field(lp, lp.expect("engine-failures"), "engine-failures");
  result.wrong_outputs =
      parse_u64_field(lp, lp.expect("wrong-outputs"), "wrong-outputs");
  const std::uint64_t exceeded =
      parse_u64_field(lp, lp.expect("budget-exceeded"), "budget-exceeded");
  WB_REQUIRE_MSG(exceeded <= 1, "shard result line "
                                    << lp.line_no()
                                    << ": budget-exceeded must be 0 or 1");
  result.budget_exceeded = exceeded == 1;

  // Adaptive results must carry their statistical verdict; every other
  // fault kind must not (a stray `verdict` line fails the distinct-kind
  // expectation below).
  if (result.faults.kind == FaultKind::kAdaptive) {
    const auto vf = split_fields(lp.expect("verdict"));
    WB_REQUIRE_MSG(vf.size() == 2,
                   "shard result line "
                       << lp.line_no()
                       << ": expected 'verdict <trials> <failures>'");
    result.verdict_trials = parse_u64_field(lp, vf[0], "verdict trials");
    result.verdict_failures = parse_u64_field(lp, vf[1], "verdict failures");
    WB_REQUIRE_MSG(result.verdict_failures <= result.verdict_trials,
                   "shard result line " << lp.line_no() << ": "
                                        << result.verdict_failures
                                        << " failures out of "
                                        << result.verdict_trials << " trials");
  }

  // v1 predates the pluggable distinct accumulator; those results are exact.
  result.distinct = version >= 2
                        ? parse_distinct_field(lp, lp.expect("distinct-kind"))
                        : DistinctConfig::Exact();

  if (result.distinct.kind == DistinctKind::kExact) {
    const std::uint64_t distinct =
        parse_u64_field(lp, lp.expect("distinct"), "distinct count");
    result.board_hashes.reserve(clamped_reserve(distinct, text));
    for (std::uint64_t i = 0; i < distinct; ++i) {
      const Hash128 h = parse_hash_line(lp, "hash", "board hash");
      WB_REQUIRE_MSG(
          result.board_hashes.empty() || result.board_hashes.back() < h,
          "shard result line " << lp.line_no()
                               << ": board hashes must be strictly increasing");
      result.board_hashes.push_back(h);
    }
  } else {
    result.hll = parse_register_block(lp, result.distinct.hll_precision);
  }
  lp.expect_end();
  return result;
}

std::string serialize(const ShardManifest& manifest) {
  std::string out =
      "wbshard-manifest v" + std::to_string(kFormatVersion) + "\n";
  append_hash_line(out, "plan", manifest.plan);
  out += "shards " + std::to_string(manifest.shard_count) + "\n";
  out += "max-executions " + std::to_string(manifest.max_executions) + "\n";
  out += "distinct " + to_string(manifest.distinct) + "\n";
  if (manifest.faults.kind != FaultKind::kNone) {
    out += "faults " + fault_spec_to_string(manifest.faults) + "\n";
  }
  for (const Hash128& h : manifest.spec_hashes) {
    append_hash_line(out, "spec", h);
  }
  out += "end\n";
  return out;
}

ShardManifest parse_shard_manifest(const std::string& text) {
  LineParser lp(text, "shard manifest");
  (void)require_version_line(lp, "wbshard-manifest", 2);
  ShardManifest manifest;
  manifest.plan = parse_hash_line(lp, "plan", "plan hash");
  manifest.shard_count = static_cast<std::uint32_t>(
      parse_u64_field(lp, lp.expect("shards"), "shard count"));
  WB_REQUIRE_MSG(manifest.shard_count >= 1,
                 "shard manifest line " << lp.line_no()
                                        << ": shard count must be at least 1");
  manifest.max_executions =
      parse_u64_field(lp, lp.expect("max-executions"), "max-executions");
  manifest.distinct = parse_distinct_field(lp, lp.expect("distinct"));
  if (const auto payload = lp.try_expect("faults")) {
    manifest.faults = parse_fault_field(lp, *payload);
  }
  manifest.spec_hashes.reserve(
      clamped_reserve(manifest.shard_count, text));
  for (std::uint32_t k = 0; k < manifest.shard_count; ++k) {
    manifest.spec_hashes.push_back(parse_hash_line(lp, "spec", "spec hash"));
  }
  lp.expect_end();
  return manifest;
}

ShardResult run_shard(const ShardSpec& spec, const Protocol& p,
                      const std::function<bool(const ExecutionResult&)>& accept,
                      std::size_t threads) {
  // The canonical classifier: engine failures are terminal, accept (when
  // given) judges successful executions. Field-for-field the pre-fault
  // behavior of this overload.
  const FaultClassifier classify = [&accept](const ExecutionResult& r,
                                             std::span<const NodeId>) {
    if (!r.ok()) return FaultVerdict::kDeadlockOrFault;
    if (accept != nullptr && !accept(r)) return FaultVerdict::kWrongOutput;
    return FaultVerdict::kCorrect;
  };
  return run_shard(spec, p, classify, threads);
}

ShardResult run_shard(const ShardSpec& spec, const Protocol& p,
                      const FaultClassifier& classify, std::size_t threads) {
  WB_CHECK_MSG(classify != nullptr, "run_shard needs a fault classifier");
  ShardResult out;
  out.plan = spec.plan;
  out.shard_index = spec.shard_index;
  out.shard_count = spec.shard_count;
  out.max_executions = spec.max_executions;
  out.distinct = spec.distinct;
  out.faults = spec.faults;

  const auto cleared_payload = [&] {
    if (spec.distinct.kind == DistinctKind::kHll) {
      out.hll = HyperLogLog(spec.distinct.hll_precision);
    }
  };

  if (spec.faults.kind == FaultKind::kAdaptive) {
    // Statistical mode: this shard runs its stride of the trial index
    // space. No distinct-board payload — the sampled board population is
    // not a deterministic set.
    StatisticalOptions sopts;
    sopts.trials = spec.faults.trials;
    sopts.seed = spec.faults.seed;
    sopts.stride = spec.shard_count;
    sopts.offset = spec.shard_index;
    sopts.threads = threads;
    sopts.engine = spec.engine;
    const StatisticalTotals totals =
        run_statistical_verdict(spec.graph, p, spec.faults, classify, sopts);
    out.executions = totals.verdict.trials();
    out.engine_failures = totals.engine_failures;
    out.wrong_outputs = totals.wrong_outputs;
    out.verdict_trials = totals.verdict.trials();
    out.verdict_failures = totals.verdict.failures();
    cleared_payload();
    return out;
  }

  ExhaustiveOptions opts;
  opts.max_executions = spec.max_executions;
  opts.threads = threads;
  opts.distinct = spec.distinct;
  opts.engine = spec.engine;

  if (spec.faults.kind != FaultKind::kNone) {
    FaultSweepTotals totals;
    try {
      totals = sweep_fault_tasks(spec.graph, p, spec.faults, spec.fault_tasks,
                                 classify, opts);
    } catch (const BudgetExceededError&) {
      out.budget_exceeded = true;
      out.executions = spec.max_executions;
      cleared_payload();
      return out;
    }
    out.executions = totals.executions;
    out.engine_failures = totals.engine_failures;
    out.wrong_outputs = totals.wrong_outputs;
    if (totals.distinct == nullptr) {
      cleared_payload();
    } else if (spec.distinct.kind == DistinctKind::kExact) {
      out.board_hashes =
          static_cast<ExactDistinctAccumulator&>(*totals.distinct)
              .take_sorted();
    } else {
      out.hll = static_cast<HllDistinctAccumulator&>(*totals.distinct)
                    .take_sketch();
    }
    return out;
  }

  std::atomic<std::uint64_t> engine_failures{0};
  std::atomic<std::uint64_t> wrong_outputs{0};
  std::vector<std::unique_ptr<DistinctAccumulator>> accumulators;
  accumulators.reserve(spec.prefixes.size());
  for (std::size_t t = 0; t < spec.prefixes.size(); ++t) {
    accumulators.push_back(make_distinct_accumulator(spec.distinct));
  }
  try {
    out.executions = for_each_execution_under(
        spec.graph, p, spec.prefixes,
        [&](const ExecutionResult& r, std::size_t task) {
          accumulators[task]->insert(r.board.content_hash());
          switch (classify(r, {})) {
            case FaultVerdict::kCorrect:
              break;
            case FaultVerdict::kWrongOutput:
              wrong_outputs.fetch_add(1, std::memory_order_relaxed);
              break;
            case FaultVerdict::kDeadlockOrFault:
              engine_failures.fetch_add(1, std::memory_order_relaxed);
              break;
          }
          return true;
        },
        opts);
  } catch (const BudgetExceededError&) {
    // Exactly max_executions visits completed before the guard fired; which
    // ones is scheduling-dependent, so every schedule-dependent field is
    // cleared — the result file is deterministic, and the merge turns the
    // flag back into the oracle's BudgetExceededError.
    out.budget_exceeded = true;
    out.executions = spec.max_executions;
    cleared_payload();
    return out;
  }
  out.engine_failures = engine_failures.load(std::memory_order_relaxed);
  out.wrong_outputs = wrong_outputs.load(std::memory_order_relaxed);
  if (accumulators.empty()) {
    cleared_payload();
    return out;
  }
  std::unique_ptr<DistinctAccumulator> total = std::move(accumulators.front());
  for (std::size_t t = 1; t < accumulators.size(); ++t) {
    total->merge(std::move(*accumulators[t]));
  }
  if (spec.distinct.kind == DistinctKind::kExact) {
    out.board_hashes =
        static_cast<ExactDistinctAccumulator&>(*total).take_sorted();
  } else {
    out.hll = static_cast<HllDistinctAccumulator&>(*total).take_sketch();
  }
  return out;
}

MergedResult merge_shard_results(std::span<const ShardResult> results) {
  WB_REQUIRE_MSG(!results.empty(), "no shard results to merge");
  const ShardResult& first = results.front();
  MergedResult merged;
  merged.shard_count = first.shard_count;
  merged.distinct = first.distinct;
  merged.faults = first.faults;
  std::vector<bool> seen(first.shard_count, false);
  std::vector<std::vector<Hash128>> runs;
  runs.reserve(results.size());
  std::optional<HyperLogLog> sketch;
  bool exceeded = false;
  for (const ShardResult& r : results) {
    WB_REQUIRE_MSG(r.distinct == first.distinct,
                   "shard " << r.shard_index
                            << " counts distinct boards with "
                            << to_string(r.distinct) << ", expected "
                            << to_string(first.distinct)
                            << " — refusing to merge exact and approximate "
                               "artifacts");
    WB_REQUIRE_MSG(r.faults == first.faults,
                   "shard " << r.shard_index << " ran fault model '"
                            << fault_spec_to_string(r.faults)
                            << "', expected '"
                            << fault_spec_to_string(first.faults)
                            << "' — refusing to merge");
    WB_REQUIRE_MSG(r.plan == first.plan,
                   "shard " << r.shard_index
                            << " belongs to a different plan (fingerprint "
                               "mismatch) — refusing to merge");
    WB_REQUIRE_MSG(r.shard_count == first.shard_count,
                   "shard " << r.shard_index << " claims " << r.shard_count
                            << " shards, expected " << first.shard_count);
    WB_REQUIRE_MSG(r.shard_index < first.shard_count,
                   "shard index " << r.shard_index << " out of range");
    WB_REQUIRE_MSG(!seen[r.shard_index],
                   "duplicate result for shard " << r.shard_index);
    seen[r.shard_index] = true;
    merged.executions += r.executions;
    merged.engine_failures += r.engine_failures;
    merged.wrong_outputs += r.wrong_outputs;
    merged.verdict_trials += r.verdict_trials;
    merged.verdict_failures += r.verdict_failures;
    exceeded = exceeded || r.budget_exceeded;
    if (first.distinct.kind == DistinctKind::kExact) {
      runs.push_back(r.board_hashes);
    } else {
      WB_REQUIRE_MSG(r.hll.has_value(),
                     "shard " << r.shard_index
                              << " declares an hll distinct payload but "
                                 "carries no register block");
      if (sketch.has_value()) {
        sketch->merge(*r.hll);
      } else {
        sketch = *r.hll;
      }
    }
  }
  for (std::uint32_t k = 0; k < first.shard_count; ++k) {
    WB_REQUIRE_MSG(seen[k], "missing result for shard " << k << " of "
                                                        << first.shard_count);
  }
  // Adaptive sweeps count trials, not exhaustive visits — their trial
  // budget is the fault spec's, not max_executions.
  if (first.faults.kind != FaultKind::kAdaptive &&
      (exceeded || merged.executions > first.max_executions)) {
    throw BudgetExceededError(first.max_executions);
  }
  if (first.distinct.kind == DistinctKind::kExact) {
    merged.distinct_boards =
        static_cast<std::uint64_t>(union_sorted_runs(std::move(runs)).size());
  } else {
    merged.distinct_boards = sketch.has_value() ? sketch->estimate() : 0;
  }
  return merged;
}

}  // namespace wb::shard
