#include "src/wb/batch.h"

#include <algorithm>
#include <thread>

#include "src/support/hash.h"
#include "src/support/thread_pool.h"

namespace wb {

namespace {

std::uint64_t splitmix64(std::uint64_t x) noexcept {
  return mix64(x + 0x9e3779b97f4a7c15ULL);
}

ExecutionResult run_one(const Trial& t, std::uint64_t seed) {
  WB_CHECK_MSG(t.graph != nullptr && t.protocol != nullptr,
               "batch trial missing graph or protocol");
  if (t.make_adversary) {
    const std::unique_ptr<Adversary> adv = t.make_adversary(seed);
    WB_CHECK_MSG(adv != nullptr, "adversary factory returned null");
    return run_protocol(*t.graph, *t.protocol, *adv, t.engine);
  }
  if (t.adversary != nullptr) {
    return run_protocol(*t.graph, *t.protocol, *t.adversary, t.engine);
  }
  FirstAdversary adv;
  return run_protocol(*t.graph, *t.protocol, adv, t.engine);
}

}  // namespace

std::uint64_t trial_seed(std::uint64_t base, std::size_t index) noexcept {
  // Two mixing rounds so consecutive indices land in unrelated streams.
  return splitmix64(splitmix64(base) ^
                    splitmix64(0x5851f42d4c957f2dULL * (index + 1)));
}

std::vector<ExecutionResult> run_batch(std::span<const Trial> trials,
                                       const BatchOptions& opts) {
  std::vector<ExecutionResult> results(trials.size());
  if (trials.empty()) return results;

  std::size_t threads =
      opts.threads != 0
          ? opts.threads
          : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  threads = std::min(threads, trials.size());

  // The shared pool keeps the two batch guarantees: every trial runs even if
  // another throws, and the exception of the smallest *trial index* is the
  // one rethrown after the drain — failure reporting is as deterministic as
  // the results themselves.
  ThreadPool::shared().parallel_for(
      trials.size(),
      [&](std::size_t i) {
        results[i] = run_one(trials[i], trial_seed(opts.seed, i));
      },
      threads);
  return results;
}

std::vector<BatteryRun> run_standard_battery(const Graph& g, const Protocol& p,
                                             std::uint64_t seed,
                                             const BatchOptions& opts) {
  // Each worker materializes its own copy of strategy i (the strategies are
  // stateful), indexed identically to this naming pass.
  std::vector<std::string> names;
  for (std::size_t i = 0; i < standard_adversary_count(); ++i) {
    names.push_back(standard_adversary(g, seed, i)->name());
  }

  std::vector<Trial> trials(names.size());
  for (std::size_t i = 0; i < trials.size(); ++i) {
    trials[i].graph = &g;
    trials[i].protocol = &p;
    trials[i].make_adversary = [&g, seed, i](std::uint64_t) {
      return standard_adversary(g, seed, i);
    };
  }

  std::vector<ExecutionResult> results = run_batch(trials, opts);
  std::vector<BatteryRun> runs(results.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    runs[i].adversary = std::move(names[i]);
    runs[i].result = std::move(results[i]);
  }
  return runs;
}

}  // namespace wb
