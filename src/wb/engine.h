// Execution engine for whiteboard protocols (§2 of the paper).
//
// One engine round performs, in order:
//   1. termination updates — an active node whose message is on the
//      whiteboard becomes terminated;
//   2. activations — every awake node evaluates act(view, W); nodes that
//      activate compose their message immediately from the same W
//      (asynchronous classes freeze it; synchronous classes also recompose
//      the memories of all previously active nodes from the current W);
//   3. one adversarial write — the adversary picks an active node whose
//      message is not yet on the whiteboard and the engine appends it.
//
// This collapses the paper's "activation round" and the following "write
// round" into one step. The set of reachable whiteboard sequences is
// unchanged: in both formulations a node's message can appear at any point
// after its activation condition first holds, and the adversary ranges over
// exactly those interleavings (see DESIGN.md §4).
//
// The engine is also the referee: it verifies the declared model class
// (simultaneous classes must activate everyone in round one; asynchronous
// messages are frozen by construction) and fails any run whose message
// exceeds the protocol's declared f(n) bit bound.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/graph/graph.h"
#include "src/support/hash.h"
#include "src/wb/adversary.h"
#include "src/wb/protocol.h"

namespace wb {

enum class RunStatus {
  kSuccess,          // all n messages written (successful configuration)
  kDeadlock,         // corrupted configuration: stuck before n writes
  kMessageOverflow,  // a node composed more bits than message_bit_limit(n)
  kProtocolError,    // protocol violated its declared model class / no progress
  kFault,            // a protocol callback rejected the whiteboard (DataError)
                     // — a corrupted or crash-truncated board it cannot decode
};

[[nodiscard]] constexpr std::string_view status_name(RunStatus s) noexcept {
  switch (s) {
    case RunStatus::kSuccess: return "success";
    case RunStatus::kDeadlock: return "deadlock";
    case RunStatus::kMessageOverflow: return "message-overflow";
    case RunStatus::kProtocolError: return "protocol-error";
    case RunStatus::kFault: return "fault";
  }
  return "?";
}

struct TraceEvent {
  enum class Kind { kActivate, kWrite, kTerminate };
  std::size_t round = 0;
  Kind kind = Kind::kActivate;
  NodeId node = kNoNode;
};

struct RunStats {
  std::size_t rounds = 0;
  std::size_t writes = 0;
  std::size_t max_message_bits = 0;
  std::size_t total_bits = 0;
  /// Round at which each node activated (0 = never).
  std::vector<std::size_t> activation_round;
  /// Round at which each node's message was written (0 = never).
  std::vector<std::size_t> write_round;
};

struct ExecutionResult {
  RunStatus status = RunStatus::kProtocolError;
  Whiteboard board;
  RunStats stats;
  /// Engine-side diagnostic: who wrote each message. Not available to the
  /// protocol's output function.
  std::vector<NodeId> write_order;
  std::string error;
  std::vector<TraceEvent> trace;

  [[nodiscard]] bool ok() const noexcept {
    return status == RunStatus::kSuccess;
  }
};

struct EngineOptions {
  /// Safety valve; 0 = automatic (writes can't exceed n, so 2n+8 rounds).
  std::size_t max_rounds = 0;
  bool record_trace = false;
  /// Frontier-aware rounds: instead of rescanning all n nodes every round,
  /// the engine tracks the awake/active sets incrementally and — where the
  /// protocol's FrontierLocality contract allows — only re-activates and
  /// recomposes nodes adjacent to the last writer, switching between
  /// iterating the writer's neighbor list (top-down) and scanning the
  /// tracked population (bottom-up) on frontier density. Executions are
  /// bit-identical to the reference rounds. Incompatible with journaling
  /// (the exhaustive explorer's rewind path keeps the reference engine).
  bool frontier = false;
};

/// Stepwise engine state. Copyable (copies are O(n) — the board is shared
/// copy-on-write), and optionally *journaling*: with journaling enabled the
/// engine records an undo entry for every mutation, so the exhaustive
/// explorer can branch by checkpoint()/rewind() on one state instead of
/// copying it per branch. Typical use is through run_protocol below.
class EngineState {
 public:
  EngineState(const Graph& g, const Protocol& p, EngineOptions opts = {});

  /// Phases 1–2 of the round (terminations, activations, compositions).
  /// No-op if the run already reached a terminal status.
  void begin_round();

  /// Active nodes with unwritten messages, sorted by ID (adversary domain).
  [[nodiscard]] std::span<const NodeId> candidates() const noexcept {
    return candidates_;
  }

  /// Phase 3: write candidate `index`'s memory and finish the round.
  void write(std::size_t index);

  /// Phase 3, addressed by node ID: `v` must be active with an unwritten
  /// message. Unlike write(), leaves the candidate buffer untouched, so a
  /// backtracking caller can iterate its own copy of the candidates across
  /// rewinds.
  void write_node(NodeId v);

  /// Terminal when a status is decided (success/deadlock/overflow/error).
  [[nodiscard]] bool terminal() const noexcept { return status_.has_value(); }

  /// Snapshot the terminal state into an ExecutionResult. The rvalue
  /// overload moves the board/stats/trace out (use via std::move(s).finish()
  /// when the state is done); finish_into re-fills a caller-owned result,
  /// reusing its buffers — the explorer's per-execution path.
  [[nodiscard]] ExecutionResult finish() const&;
  [[nodiscard]] ExecutionResult finish() &&;
  void finish_into(ExecutionResult& out) const;

  [[nodiscard]] const Whiteboard& board() const noexcept { return board_; }
  [[nodiscard]] std::size_t round() const noexcept { return round_; }

  /// State-identity key for memoized exploration: a 128-bit hash of the
  /// board content and the written set. In the fault-free reference engine
  /// these determine every other component at a branch point — activations
  /// are monotone functions of the board history (itself the prefix chain of
  /// the content), memories are frozen at activation (asynchronous) or
  /// recomposed from the current board (synchronous), and the round counter
  /// tracks the write count — so two non-terminal states with equal keys
  /// behave identically under every future schedule. Used by the memoizing
  /// exhaustive sweep and the symbolic frontier engine.
  [[nodiscard]] Hash128 memo_key() const;

  // --- Backtracking API (the exhaustive explorer) ---

  /// A point in the execution to rewind to. Cheap value: scalar cursors into
  /// the undo journal, write log, and trace.
  struct Checkpoint {
    std::size_t round = 0;
    std::size_t journal_size = 0;
    std::size_t writes = 0;
    std::size_t board_count = 0;
    std::size_t max_message_bits = 0;
    std::size_t total_bits = 0;
    std::size_t trace_size = 0;
    bool wrote_this_round = false;
  };

  /// Start recording undo entries. Enable once, before the first
  /// begin_round(); checkpoints only reach back to mutations made while
  /// journaling was on.
  void set_journaling(bool on);

  [[nodiscard]] Checkpoint checkpoint() const;

  /// Restore the exact engine state at `cp` (requires journaling; `cp` must
  /// be from this state and not rewound past already). Clears any terminal
  /// status reached since. The candidate buffer is left empty — callers
  /// branching over candidates keep their own copy.
  void rewind(const Checkpoint& cp);

 private:
  void begin_round_reference();
  void begin_round_frontier();
  void finish_round_bookkeeping();
  void fail(RunStatus status, std::string error);
  void set_status(RunStatus status) { status_ = status; }
  [[nodiscard]] LocalView view_of(NodeId v) const {
    return LocalView(v, graph_->neighbors(v), graph_->node_count());
  }
  void compose_into(NodeId v);
  /// activate() through the fault firewall (see compose_into): a DataError
  /// from the protocol becomes a kFault terminal status. Callers must check
  /// terminal() after; the returned verdict is false on fault.
  [[nodiscard]] bool activate_of(NodeId v);
  void trace(TraceEvent::Kind kind, NodeId v);

  /// One reversible mutation. kStateChange restores a node's lifecycle
  /// state, kActivation clears its activation round (set exactly once, from
  /// 0), kMemory restores its previous local memory.
  struct UndoRecord {
    enum class Kind : std::uint8_t { kStateChange, kActivation, kMemory };
    Kind kind = Kind::kStateChange;
    NodeState old_state = NodeState::kAwake;
    NodeId node = kNoNode;
    Bits old_memory;
  };
  void journal_state(NodeId v, NodeState old_state);
  void journal_activation(NodeId v);
  void journal_memory(NodeId v);

  const Graph* graph_;
  const Protocol* protocol_;
  EngineOptions opts_;
  std::size_t n_;
  std::size_t round_ = 0;
  /// The paper's model admits one adversarial write per round; write_node
  /// enforces it (write() inherited the guarantee from the candidate-buffer
  /// clear, write_node has no buffer to clear).
  bool wrote_this_round_ = false;

  /// Per-engine compose scratch, handed to Protocol::compose so steady-state
  /// composition performs no heap allocation (the writer keeps its buffer
  /// across take()s; inline-sized messages never touch the heap).
  BitWriter compose_scratch_;

  std::vector<NodeState> state_;
  std::vector<Bits> memory_;
  std::vector<bool> written_;
  std::vector<NodeId> candidates_;
  Whiteboard board_;
  std::optional<RunStatus> status_;
  std::string error_;

  RunStats stats_;
  std::vector<NodeId> write_order_;
  std::vector<TraceEvent> trace_;

  bool journaling_ = false;
  std::vector<UndoRecord> journal_;

  // --- Frontier mode (opts_.frontier) ---
  /// The protocol's locality contract, cached at construction.
  FrontierLocality locality_;
  /// Writer of the previous round, kNoNode if that round wrote nothing.
  NodeId pending_writer_ = kNoNode;
  /// Awake node IDs, sorted; activated nodes are removed as they leave.
  std::vector<NodeId> awake_ids_;
  /// Per-round scratch: IDs activated this round, ascending.
  std::vector<NodeId> newly_activated_;
};

/// Run `p` on `g` to completion under `adv`.
[[nodiscard]] ExecutionResult run_protocol(const Graph& g, const Protocol& p,
                                           Adversary& adv,
                                           EngineOptions opts = {});

/// Convenience: run under the natural first-fit adversary.
[[nodiscard]] ExecutionResult run_protocol(const Graph& g, const Protocol& p,
                                           EngineOptions opts = {});

}  // namespace wb
