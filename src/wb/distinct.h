// Pluggable distinct-counting for the exhaustive explorer.
//
// Every sweep aggregate the explorer produces merges order-obliviously —
// that is what makes thread-, process-, and host-level fan-out reproduce the
// serial oracle bit-for-bit. Distinct-board counting is the one aggregate
// with a real strategy choice inside that contract:
//
//  - exact: 128-bit board hashes deduplicated into sorted unique runs,
//    merged by set union. The count is exact; peak memory is O(distinct)
//    16-byte keys — the right default up to ~10^9 distinct boards.
//  - hll: a HyperLogLog sketch (src/support/hll.h). The count is an estimate
//    with relative standard error 1.04/sqrt(2^p); memory is a flat 2^p bytes
//    per accumulator regardless of cardinality — the only option past the
//    exact mode's memory wall.
//
// DistinctAccumulator is the common surface: insert(Hash128) per execution,
// merge to fold per-task (or per-shard) accumulators, estimate for the final
// count. The contract every implementation must honor is that the final
// estimate depends only on the SET of inserted keys — never on insertion
// order, grouping into accumulators, or merge order — so the explorer's
// determinism guarantees (bit-identical results at any thread count, shard
// count K, or merge order) hold for any implementation. Both implementations
// here satisfy it structurally: a sorted-run union and a register-wise max
// are idempotent, commutative, and associative.
//
// The sweep idiom (count_distinct_final_boards, shard::run_shard, the CLI
// exhaustive runner): one accumulator per subtree task — exclusive to its
// worker, so inserts need no locking — folded with merge() afterwards.
#pragma once

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "src/support/hash.h"
#include "src/support/hll.h"

namespace wb {

enum class DistinctKind : std::uint8_t { kExact, kHll };

/// Which distinct-board accumulator a sweep uses. Carried by
/// ExhaustiveOptions, shard::PlanOptions, and the v2 shard file formats; the
/// shard plan fingerprint covers it, so exact and hll artifacts of one
/// instance can never be merged into a silently mixed count.
struct DistinctConfig {
  DistinctKind kind = DistinctKind::kExact;
  /// HyperLogLog precision p: 2^p one-byte registers, relative standard
  /// error 1.04/sqrt(2^p). Meaningless in exact mode — equality and the
  /// canonical text form both ignore it there, so an exact config always
  /// round-trips to itself regardless of what this field holds.
  int hll_precision = kDefaultHllPrecision;

  static constexpr int kDefaultHllPrecision = 14;  // 16 KiB, ~0.8% error

  [[nodiscard]] static DistinctConfig Exact() { return {}; }
  [[nodiscard]] static DistinctConfig Hll(
      int precision = kDefaultHllPrecision) {
    return {DistinctKind::kHll, precision};
  }

  friend bool operator==(const DistinctConfig& a, const DistinctConfig& b) {
    return a.kind == b.kind && (a.kind == DistinctKind::kExact ||
                                a.hll_precision == b.hll_precision);
  }
};

/// Parse "exact", "hll", or "hll:P" (the CLI `distinct=` grammar and the
/// shard-file field). Throws wb::DataError on anything else, including a
/// precision outside HyperLogLog's supported range.
[[nodiscard]] DistinctConfig parse_distinct_config(const std::string& text);

/// Canonical text form: "exact" or "hll:P". parse(to_string(c)) == c.
[[nodiscard]] std::string to_string(const DistinctConfig& config);

/// Streaming distinct-key accumulator: appends are buffered, and every
/// kFlushLimit keys the buffer is folded into a sorted unique run via
/// set-union. Peak memory is O(distinct + kFlushLimit) instead of the
/// O(executions) a collect-then-sort pays. This is the storage engine of the
/// exact DistinctAccumulator below (and usable directly when the caller
/// needs the keys themselves, as the shard result files do).
class StreamingDistinct {
 public:
  void add(const Hash128& key) {
    buffer_.push_back(key);
    if (buffer_.size() >= kFlushLimit) flush();
  }

  /// Sorted unique keys seen so far; the accumulator is left empty.
  [[nodiscard]] std::vector<Hash128> take_sorted() {
    flush();
    return std::move(run_);
  }

 private:
  static constexpr std::size_t kFlushLimit = std::size_t{1} << 16;  // 1 MiB

  void flush() {
    if (buffer_.empty()) return;
    std::sort(buffer_.begin(), buffer_.end());
    buffer_.erase(std::unique(buffer_.begin(), buffer_.end()), buffer_.end());
    std::vector<Hash128> merged;
    merged.reserve(run_.size() + buffer_.size());
    std::set_union(run_.begin(), run_.end(), buffer_.begin(), buffer_.end(),
                   std::back_inserter(merged));
    run_ = std::move(merged);
    buffer_.clear();
  }

  std::vector<Hash128> buffer_;
  std::vector<Hash128> run_;  // sorted, unique
};

/// Union of sorted unique runs into one sorted unique run. Set union is
/// order-oblivious, so the result — and every count derived from it — is
/// identical for any ordering or grouping of the inputs; this is the merge
/// step shared by the parallel distinct-board count and the shard layer.
[[nodiscard]] std::vector<Hash128> union_sorted_runs(
    std::vector<std::vector<Hash128>> runs);

/// The mergeable accumulator surface. Implementations must make estimate()
/// a function of the inserted key SET only (see the file comment); merge()
/// consumes `other`, which must be the same concrete kind and parameters —
/// mixing kinds is a caller bug (wb::LogicError), distinct from the
/// data-level rejection the shard merge performs on foreign files.
class DistinctAccumulator {
 public:
  virtual ~DistinctAccumulator() = default;
  [[nodiscard]] virtual DistinctConfig config() const = 0;
  virtual void insert(const Hash128& key) = 0;
  virtual void merge(DistinctAccumulator&& other) = 0;
  [[nodiscard]] virtual std::uint64_t estimate() = 0;
};

/// Exact counting behind the accumulator surface: StreamingDistinct runs
/// merged by sorted-run union — bit-identical to the pre-API explorer.
class ExactDistinctAccumulator final : public DistinctAccumulator {
 public:
  ExactDistinctAccumulator() = default;
  /// Adopt an already-sorted unique run (e.g. parsed from a shard result).
  [[nodiscard]] static ExactDistinctAccumulator from_sorted(
      std::vector<Hash128> sorted_run);

  [[nodiscard]] DistinctConfig config() const override {
    return DistinctConfig::Exact();
  }
  void insert(const Hash128& key) override { streaming_.add(key); }
  void merge(DistinctAccumulator&& other) override;
  [[nodiscard]] std::uint64_t estimate() override {
    return static_cast<std::uint64_t>(sorted_view().size());
  }

  /// Sorted unique keys accumulated so far; the accumulator is left empty.
  /// (The shard layer serializes these into result files.)
  [[nodiscard]] std::vector<Hash128> take_sorted();

 private:
  [[nodiscard]] const std::vector<Hash128>& sorted_view();

  StreamingDistinct streaming_;
  std::vector<Hash128> run_;  // sorted unique, folded on demand
};

/// Approximate counting: one HyperLogLog sketch, register-wise max merge.
class HllDistinctAccumulator final : public DistinctAccumulator {
 public:
  explicit HllDistinctAccumulator(
      int precision = DistinctConfig::kDefaultHllPrecision)
      : sketch_(precision) {}
  explicit HllDistinctAccumulator(HyperLogLog sketch)
      : sketch_(std::move(sketch)) {}

  [[nodiscard]] DistinctConfig config() const override {
    return DistinctConfig::Hll(sketch_.precision());
  }
  void insert(const Hash128& key) override { sketch_.add(key); }
  void merge(DistinctAccumulator&& other) override;
  [[nodiscard]] std::uint64_t estimate() override {
    return sketch_.estimate();
  }

  [[nodiscard]] const HyperLogLog& sketch() const { return sketch_; }
  [[nodiscard]] HyperLogLog take_sketch() { return std::move(sketch_); }

 private:
  HyperLogLog sketch_;
};

/// Factory keyed by config — the one switch point every sweep goes through.
[[nodiscard]] std::unique_ptr<DistinctAccumulator> make_distinct_accumulator(
    const DistinctConfig& config);

}  // namespace wb
