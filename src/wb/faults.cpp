#include "src/wb/faults.h"

#include <algorithm>
#include <atomic>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <numeric>
#include <optional>
#include <utility>

#include "src/support/rng.h"
#include "src/wb/adversary.h"

namespace wb {

namespace {

std::vector<std::string> split_colon(const std::string& text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t colon = text.find(':', start);
    if (colon == std::string::npos) {
      out.push_back(text.substr(start));
      return out;
    }
    out.push_back(text.substr(start, colon - start));
    start = colon + 1;
  }
}

std::uint64_t parse_fault_u64(const std::string& field,
                              const std::string& what) {
  std::uint64_t value = 0;
  const char* begin = field.data();
  const char* end = begin + field.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  WB_REQUIRE_MSG(ec == std::errc() && ptr == end && !field.empty(),
                 "malformed " + what + ": '" + field + "'");
  return value;
}

std::pair<std::uint64_t, std::uint64_t> parse_fault_prob(
    const std::string& field) {
  const std::size_t slash = field.find('/');
  WB_REQUIRE_MSG(slash != std::string::npos,
                 "corrupt probability must be NUM/DEN: '" + field + "'");
  const std::uint64_t num =
      parse_fault_u64(field.substr(0, slash), "corrupt probability numerator");
  const std::uint64_t den = parse_fault_u64(field.substr(slash + 1),
                                            "corrupt probability denominator");
  WB_REQUIRE_MSG(den >= 1, "corrupt probability denominator must be >= 1: '" +
                               field + "'");
  WB_REQUIRE_MSG(num <= den,
                 "corrupt probability must be <= 1: '" + field + "'");
  return {num, den};
}

/// C(n, k), exact, throwing wb::LogicError on uint64 overflow. The running
/// value after step i is C(n - k + i, i), so the division is always exact.
std::uint64_t binomial_checked(std::uint64_t n, std::uint64_t k) {
  if (k > n) return 0;
  k = std::min(k, n - k);
  std::uint64_t r = 1;
  for (std::uint64_t i = 1; i <= k; ++i) {
    const std::uint64_t factor = n - k + i;
    WB_CHECK_MSG(r <= std::numeric_limits<std::uint64_t>::max() / factor,
                 "crash world count overflows uint64 — sample instead");
    r = r * factor / i;
  }
  return r;
}

}  // namespace

std::string_view fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kCorrupt:
      return "corrupt";
    case FaultKind::kAdaptive:
      return "adaptive";
  }
  return "?";
}

FaultSpec parse_fault_spec(const std::string& text) {
  const std::vector<std::string> fields = split_colon(text);
  const std::string& kind = fields[0];
  if (kind == "none") {
    WB_REQUIRE_MSG(fields.size() == 1,
                   "fault spec 'none' takes no parameters: '" + text + "'");
    return FaultSpec::None();
  }
  if (kind == "crash") {
    WB_REQUIRE_MSG(fields.size() == 2,
                   "crash fault spec is crash:F: '" + text + "'");
    const std::uint64_t f = parse_fault_u64(fields[1], "crash node count");
    WB_REQUIRE_MSG(f <= std::numeric_limits<std::uint32_t>::max(),
                   "crash node count out of range: '" + text + "'");
    return FaultSpec::Crash(static_cast<std::uint32_t>(f));
  }
  if (kind == "corrupt") {
    WB_REQUIRE_MSG(fields.size() == 2 || fields.size() == 3,
                   "corrupt fault spec is corrupt:NUM/DEN[:SEED]: '" + text +
                       "'");
    const auto [num, den] = parse_fault_prob(fields[1]);
    const std::uint64_t seed =
        fields.size() == 3 ? parse_fault_u64(fields[2], "corrupt seed") : 1;
    return FaultSpec::Corrupt(num, den, seed);
  }
  if (kind == "adaptive") {
    WB_REQUIRE_MSG(fields.size() == 2 || fields.size() == 3,
                   "adaptive fault spec is adaptive:SEED[:TRIALS]: '" + text +
                       "'");
    const std::uint64_t seed = parse_fault_u64(fields[1], "adaptive seed");
    const std::uint64_t trials =
        fields.size() == 3 ? parse_fault_u64(fields[2], "adaptive trial count")
                           : FaultSpec::kDefaultTrials;
    WB_REQUIRE_MSG(trials >= 1,
                   "adaptive trial count must be >= 1: '" + text + "'");
    return FaultSpec::Adaptive(seed, trials);
  }
  throw DataError("unknown fault kind '" + kind +
                  "' (expected none | crash:F | corrupt:NUM/DEN[:SEED] | "
                  "adaptive:SEED[:TRIALS])");
}

std::string fault_spec_to_string(const FaultSpec& spec) {
  switch (spec.kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kCrash:
      return "crash:" + std::to_string(spec.crash_f);
    case FaultKind::kCorrupt:
      return "corrupt:" + std::to_string(spec.prob_num) + "/" +
             std::to_string(spec.prob_den) + ":" + std::to_string(spec.seed);
    case FaultKind::kAdaptive:
      return "adaptive:" + std::to_string(spec.seed) + ":" +
             std::to_string(spec.trials);
  }
  return "?";
}

std::uint64_t crash_world_count(std::size_t n, std::uint32_t f) {
  const std::uint64_t kmax = std::min<std::uint64_t>(f, n);
  std::uint64_t total = 0;
  for (std::uint64_t k = 0; k <= kmax; ++k) {
    const std::uint64_t block = binomial_checked(n, k);
    WB_CHECK_MSG(total <= std::numeric_limits<std::uint64_t>::max() - block,
                 "crash world count overflows uint64 — sample instead");
    total += block;
  }
  return total;
}

std::vector<NodeId> crash_world(std::size_t n, std::uint32_t f,
                                std::uint64_t index) {
  const std::uint64_t kmax = std::min<std::uint64_t>(f, n);
  std::vector<NodeId> out;
  for (std::uint64_t k = 0; k <= kmax; ++k) {
    const std::uint64_t block = binomial_checked(n, k);
    if (index >= block) {
      index -= block;
      continue;
    }
    // Unrank `index` among the size-k subsets of {1..n} in lexicographic
    // order: at each slot, skip past the C(n - v, remaining - 1) subsets
    // that start with each candidate v in turn.
    out.reserve(static_cast<std::size_t>(k));
    std::uint64_t r = index;
    NodeId v = 1;
    for (std::uint64_t remaining = k; remaining > 0; --remaining) {
      while (true) {
        const std::uint64_t with_v = binomial_checked(n - v, remaining - 1);
        if (r < with_v) {
          out.push_back(v);
          ++v;
          break;
        }
        r -= with_v;
        ++v;
      }
    }
    return out;
  }
  WB_CHECK_MSG(false, "crash world index out of range");
  return out;
}

CrashStopAdapter::CrashStopAdapter(const Protocol& inner,
                                   std::vector<NodeId> crashed)
    : inner_(inner), crashed_(std::move(crashed)) {
  std::sort(crashed_.begin(), crashed_.end());
  crashed_.erase(std::unique(crashed_.begin(), crashed_.end()),
                 crashed_.end());
  WB_CHECK_MSG(crashed_.empty() || crashed_.front() != kNoNode,
               "crash set contains the null node id");
}

ModelClass CrashStopAdapter::model_class() const {
  const ModelClass inner = inner_.model_class();
  if (crashed_.empty()) return inner;
  // A crashed node never activates, which breaks exactly the simultaneity
  // the engine verifies in round 1 — run the same protocol under the
  // containing non-simultaneous class instead (ModelClass containment, §2).
  switch (inner) {
    case ModelClass::kSimAsync:
      return ModelClass::kAsync;
    case ModelClass::kSimSync:
      return ModelClass::kSync;
    case ModelClass::kAsync:
    case ModelClass::kSync:
      return inner;
  }
  return inner;
}

bool CrashStopAdapter::activate(const LocalView& view,
                                const Whiteboard& board) const {
  if (std::binary_search(crashed_.begin(), crashed_.end(), view.id())) {
    return false;
  }
  return inner_.activate(view, board);
}

std::string CrashStopAdapter::name() const {
  return inner_.name() + "+crash[" + std::to_string(crashed_.size()) + "]";
}

Bits flip_bit(const Bits& bits, std::size_t index) {
  WB_CHECK_MSG(index < bits.size(), "flip_bit index out of range");
  std::vector<std::uint64_t> words(bits.word_data(),
                                   bits.word_data() + bits.word_count());
  words[index / 64] ^= std::uint64_t{1} << (index % 64);
  return Bits(words.data(), bits.size());
}

Bits truncate_bits(const Bits& bits, std::size_t new_size) {
  WB_CHECK_MSG(new_size <= bits.size(), "truncate_bits size out of range");
  return Bits(bits.word_data(), new_size);
}

Bits CorruptionModel::apply(const Bits& message, std::uint64_t salt) const {
  if (num == 0 || message.size() == 0) return message;
  Hasher128 h;
  h.update(seed);
  h.update(salt);
  h.update(message.size());
  const std::uint64_t* words = message.word_data();
  for (std::size_t w = 0, e = message.word_count(); w < e; ++w) {
    h.update(words[w]);
  }
  const Hash128 d = h.digest();
  if (d.lo % den >= num) return message;
  const std::size_t pos = static_cast<std::size_t>((d.hi >> 1) % message.size());
  if ((d.hi & 1) == 0) return flip_bit(message, pos);
  return truncate_bits(message, pos);  // pos < size(): strictly shorter
}

std::string CorruptingAdapter::name() const {
  return inner_.name() + "+corrupt[" + std::to_string(model_.num) + "/" +
         std::to_string(model_.den) + "]";
}

Whiteboard CorruptingBoard::image(const Whiteboard& board) const {
  Whiteboard out;
  out.reserve(board.message_count());
  for (std::size_t i = 0, e = board.message_count(); i < e; ++i) {
    out.append(model_.apply(board.message(i), i));
  }
  return out;
}

void CorruptingBoard::append(Whiteboard& board, Bits message) const {
  board.append(model_.apply(message, board.message_count()));
}

std::string_view fault_verdict_name(FaultVerdict v) {
  switch (v) {
    case FaultVerdict::kCorrect:
      return "correct";
    case FaultVerdict::kWrongOutput:
      return "wrong-output";
    case FaultVerdict::kDeadlockOrFault:
      return "deadlock-or-fault";
  }
  return "?";
}

double VerdictAccumulator::failure_rate() const {
  if (trials_ == 0) return 0.0;
  return static_cast<double>(failures_) / static_cast<double>(trials_);
}

WilsonInterval VerdictAccumulator::wilson(double z) const {
  if (trials_ == 0) return {0.0, 1.0};
  const double n = static_cast<double>(trials_);
  const double phat = failure_rate();
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (phat + z2 / (2.0 * n)) / denom;
  const double half =
      (z / denom) *
      std::sqrt(phat * (1.0 - phat) / n + z2 / (4.0 * n * n));
  return {std::max(0.0, center - half), std::min(1.0, center + half)};
}

std::string verdict_summary(const VerdictAccumulator& v) {
  const WilsonInterval ci = v.wilson();
  char buf[96];
  std::snprintf(buf, sizeof buf, "rate %.4f, 95%% CI [%.4f, %.4f]",
                v.failure_rate(), ci.lo, ci.hi);
  return std::to_string(v.trials()) + " trials, " +
         std::to_string(v.failures()) + " failures, " + buf;
}

namespace {

/// The protocol a fault world runs: the inner protocol, possibly behind a
/// crash or corruption adapter. Owns the adapter so spans into it stay valid
/// for the whole world sweep.
struct WorldProtocol {
  const Protocol* inner = nullptr;
  std::optional<CrashStopAdapter> crash;
  std::optional<CorruptingAdapter> corrupt;

  [[nodiscard]] const Protocol& active() const {
    if (crash) return *crash;
    if (corrupt) return *corrupt;
    return *inner;
  }
  [[nodiscard]] std::span<const NodeId> crashed() const {
    return crash ? crash->crashed() : std::span<const NodeId>{};
  }
};

void make_world(WorldProtocol& out, const Graph& g, const Protocol& p,
                const FaultSpec& faults, std::uint64_t world) {
  out.inner = &p;
  out.crash.reset();
  out.corrupt.reset();
  switch (faults.kind) {
    case FaultKind::kNone:
      WB_CHECK_MSG(world == 0, "fault-free sweeps have exactly one world");
      break;
    case FaultKind::kCrash:
      out.crash.emplace(p, crash_world(g.node_count(), faults.crash_f, world));
      break;
    case FaultKind::kCorrupt:
      WB_CHECK_MSG(world == 0, "corruption sweeps have exactly one world");
      out.corrupt.emplace(
          p, CorruptionModel{faults.prob_num, faults.prob_den, faults.seed});
      break;
    case FaultKind::kAdaptive:
      WB_CHECK_MSG(false, "adaptive faults have no exhaustive worlds");
      break;
  }
}

std::uint64_t exhaustive_world_count(const Graph& g, const FaultSpec& faults) {
  return faults.kind == FaultKind::kCrash
             ? crash_world_count(g.node_count(), faults.crash_f)
             : 1;
}

}  // namespace

std::vector<FaultTask> partition_fault_tasks(const Graph& g, const Protocol& p,
                                             const FaultSpec& faults,
                                             const EngineOptions& eopts,
                                             std::size_t target_tasks) {
  WB_CHECK_MSG(faults.kind != FaultKind::kAdaptive,
               "adaptive faults sweep statistically — no exhaustive partition");
  const std::uint64_t worlds = exhaustive_world_count(g, faults);
  const std::size_t per_world = static_cast<std::size_t>(
      std::max<std::uint64_t>(1, target_tasks / worlds));
  std::vector<FaultTask> out;
  WorldProtocol wp;
  for (std::uint64_t w = 0; w < worlds; ++w) {
    make_world(wp, g, p, faults, w);
    for (const PrefixTask& t :
         partition_executions(g, wp.active(), eopts, per_world)) {
      out.push_back(FaultTask{w, t});
    }
  }
  return out;
}

namespace {

/// Shared core of sweep_fault_tasks / sweep_faulty_executions: sweep a list
/// of worlds, each with either a supplied prefix list or (when empty) the
/// thread-shaped partition, under one global execution budget.
FaultSweepTotals sweep_worlds(
    const Graph& g, const Protocol& p, const FaultSpec& faults,
    const std::map<std::uint64_t, std::vector<PrefixTask>>& world_prefixes,
    bool partition_per_world, const FaultClassifier& classify,
    const ExhaustiveOptions& opts) {
  WB_CHECK_MSG(faults.kind != FaultKind::kAdaptive,
               "adaptive faults sweep statistically — use "
               "run_statistical_verdict");
  FaultSweepTotals totals;
  totals.distinct = make_distinct_accumulator(opts.distinct);
  std::uint64_t remaining = opts.max_executions;
  std::atomic<std::uint64_t> engine_failures{0};
  std::atomic<std::uint64_t> wrong_outputs{0};
  WorldProtocol wp;
  std::vector<PrefixTask> scratch;
  for (const auto& [world, prefixes] : world_prefixes) {
    make_world(wp, g, p, faults, world);
    const std::span<const NodeId> crashed = wp.crashed();
    const std::vector<PrefixTask>* tasks = &prefixes;
    if (partition_per_world) {
      scratch =
          partition_for_threads(g, wp.active(), opts.engine, opts.threads);
      tasks = &scratch;
    }
    std::vector<std::unique_ptr<DistinctAccumulator>> acc;
    acc.reserve(tasks->size());
    for (std::size_t i = 0; i < tasks->size(); ++i) {
      acc.push_back(make_distinct_accumulator(opts.distinct));
    }
    ExhaustiveOptions wopts = opts;
    wopts.max_executions = remaining;
    std::uint64_t visited = 0;
    try {
      visited = for_each_execution_under(
          g, wp.active(), *tasks,
          [&](const ExecutionResult& r, std::size_t task_idx) {
            acc[task_idx]->insert(r.board.content_hash());
            switch (classify(r, crashed)) {
              case FaultVerdict::kCorrect:
                break;
              case FaultVerdict::kWrongOutput:
                wrong_outputs.fetch_add(1, std::memory_order_relaxed);
                break;
              case FaultVerdict::kDeadlockOrFault:
                engine_failures.fetch_add(1, std::memory_order_relaxed);
                break;
            }
            return true;
          },
          wopts);
    } catch (const BudgetExceededError&) {
      // Re-badge the per-world remainder as the caller's global budget.
      throw BudgetExceededError(opts.max_executions);
    }
    totals.executions += visited;
    remaining -= visited;
    for (auto& a : acc) totals.distinct->merge(std::move(*a));
    ++totals.worlds;
  }
  totals.engine_failures = engine_failures.load();
  totals.wrong_outputs = wrong_outputs.load();
  return totals;
}

}  // namespace

FaultSweepTotals sweep_fault_tasks(const Graph& g, const Protocol& p,
                                   const FaultSpec& faults,
                                   std::span<const FaultTask> tasks,
                                   const FaultClassifier& classify,
                                   const ExhaustiveOptions& opts) {
  std::map<std::uint64_t, std::vector<PrefixTask>> by_world;
  for (const FaultTask& t : tasks) {
    by_world[t.world].push_back(t.prefix);
  }
  return sweep_worlds(g, p, faults, by_world, /*partition_per_world=*/false,
                      classify, opts);
}

FaultSweepTotals sweep_faulty_executions(const Graph& g, const Protocol& p,
                                         const FaultSpec& faults,
                                         const FaultClassifier& classify,
                                         const ExhaustiveOptions& opts) {
  WB_CHECK_MSG(faults.kind != FaultKind::kAdaptive,
               "adaptive faults sweep statistically — use "
               "run_statistical_verdict");
  std::map<std::uint64_t, std::vector<PrefixTask>> worlds;
  const std::uint64_t count = exhaustive_world_count(g, faults);
  for (std::uint64_t w = 0; w < count; ++w) {
    worlds.emplace(w, std::vector<PrefixTask>{});
  }
  return sweep_worlds(g, p, faults, worlds, /*partition_per_world=*/true,
                      classify, opts);
}

namespace {

std::vector<NodeId> sample_crash_set(Rng& rng, std::size_t n,
                                     std::uint32_t f) {
  const std::size_t k = std::min<std::size_t>(f, n);
  std::vector<NodeId> ids(n);
  std::iota(ids.begin(), ids.end(), NodeId{1});
  for (std::size_t i = 0; i < k; ++i) {
    std::swap(ids[i], ids[i + static_cast<std::size_t>(rng.below(n - i))]);
  }
  ids.resize(k);
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace

StatisticalTotals run_statistical_verdict(const Graph& g, const Protocol& p,
                                          const FaultSpec& faults,
                                          const FaultClassifier& classify,
                                          const StatisticalOptions& opts) {
  WB_CHECK_MSG(opts.stride >= 1 && opts.offset < opts.stride,
               "statistical stride/offset out of range");
  const std::size_t n = g.node_count();
  std::optional<CorruptingAdapter> corrupt;
  if (faults.kind == FaultKind::kCorrupt) {
    corrupt.emplace(
        p, CorruptionModel{faults.prob_num, faults.prob_den, faults.seed});
  }
  std::vector<Trial> trials;
  std::vector<std::unique_ptr<CrashStopAdapter>> adapters;
  std::vector<std::vector<NodeId>> crash_sets;
  for (std::uint64_t idx = opts.offset; idx < opts.trials;
       idx += opts.stride) {
    // Everything this trial does — fault realization first, then the
    // schedule seed — is drawn from its absolute index, so a strided shard
    // split runs exactly the trials of the single stream it replaces.
    Rng rng(trial_seed(opts.seed, static_cast<std::size_t>(idx)));
    std::vector<NodeId> crashed;
    switch (faults.kind) {
      case FaultKind::kNone:
      case FaultKind::kCorrupt:
        break;
      case FaultKind::kCrash:
        crashed = sample_crash_set(rng, n, faults.crash_f);
        break;
      case FaultKind::kAdaptive:
        if (n > 0 && rng.chance(1, 2)) {
          crashed.push_back(static_cast<NodeId>(1 + rng.below(n)));
        }
        break;
    }
    const std::uint64_t schedule_seed = rng.next();
    Trial t;
    t.graph = &g;
    if (!crashed.empty()) {
      adapters.push_back(std::make_unique<CrashStopAdapter>(p, crashed));
      t.protocol = adapters.back().get();
    } else if (corrupt) {
      t.protocol = &*corrupt;
    } else {
      t.protocol = &p;
    }
    t.make_adversary = [schedule_seed](std::uint64_t) {
      return std::make_unique<RandomAdversary>(schedule_seed);
    };
    t.engine = opts.engine;
    trials.push_back(std::move(t));
    crash_sets.push_back(std::move(crashed));
  }
  BatchOptions bopts;
  bopts.threads = opts.threads;
  bopts.seed = opts.seed;
  const std::vector<ExecutionResult> results = run_batch(trials, bopts);
  StatisticalTotals totals;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const FaultVerdict v = classify(results[i], crash_sets[i]);
    totals.verdict.record(v);
    if (v == FaultVerdict::kWrongOutput) {
      ++totals.wrong_outputs;
    } else if (v == FaultVerdict::kDeadlockOrFault) {
      ++totals.engine_failures;
    }
  }
  return totals;
}

}  // namespace wb
