// The four communication models of the paper (Table 1).
//
// Two orthogonal axes:
//  - Simultaneity: in SIM* models every node becomes active in the first
//    round ("all nodes active after the first round"); in free models a node
//    may stay awake and decide later, based on the whiteboard, when to raise
//    its hand.
//  - Synchrony: in synchronous models an active node may recompute ("change
//    its mind about") the message stored in its local memory every round; in
//    asynchronous models the message is frozen at activation time and is
//    eventually written unchanged, whatever has been written in between.
#pragma once

#include <string_view>

namespace wb {

enum class ModelClass {
  kSimAsync,  // SIMASYNC[f(n)] — simultaneous, message frozen at activation
  kSimSync,   // SIMSYNC[f(n)]  — simultaneous, message recomputed each round
  kAsync,     // ASYNC[f(n)]    — free activation, message frozen
  kSync,      // SYNC[f(n)]     — free activation, message recomputed
};

/// All nodes are forced active in round one?
[[nodiscard]] constexpr bool is_simultaneous(ModelClass m) noexcept {
  return m == ModelClass::kSimAsync || m == ModelClass::kSimSync;
}

/// Message frozen at activation (asynchronous axis)?
[[nodiscard]] constexpr bool is_asynchronous(ModelClass m) noexcept {
  return m == ModelClass::kSimAsync || m == ModelClass::kAsync;
}

[[nodiscard]] constexpr std::string_view model_name(ModelClass m) noexcept {
  switch (m) {
    case ModelClass::kSimAsync: return "SIMASYNC";
    case ModelClass::kSimSync: return "SIMSYNC";
    case ModelClass::kAsync: return "ASYNC";
    case ModelClass::kSync: return "SYNC";
  }
  return "?";
}

/// The containment order of Lemma 4: SIMASYNC ⊆ SIMSYNC ⊆ ASYNC ⊆ SYNC
/// (a protocol of a smaller class is executable under any larger class's
/// engine semantics). Returns true when `inner` protocols run unchanged under
/// `outer` semantics.
[[nodiscard]] constexpr bool model_contained_in(ModelClass inner,
                                                ModelClass outer) noexcept {
  auto rank = [](ModelClass m) {
    switch (m) {
      case ModelClass::kSimAsync: return 0;
      case ModelClass::kSimSync: return 1;
      case ModelClass::kAsync: return 2;
      case ModelClass::kSync: return 3;
    }
    return 3;
  };
  return rank(inner) <= rank(outer);
}

/// Node lifecycle (§2): awake → active → terminated.
enum class NodeState { kAwake, kActive, kTerminated };

[[nodiscard]] constexpr std::string_view state_name(NodeState s) noexcept {
  switch (s) {
    case NodeState::kAwake: return "awake";
    case NodeState::kActive: return "active";
    case NodeState::kTerminated: return "terminated";
  }
  return "?";
}

}  // namespace wb
