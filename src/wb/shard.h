// Distributed sharding for the exhaustive explorer.
//
// The PR 3 subtree-prefix partition (src/wb/exhaustive.h) is shard-friendly:
// the top of the schedule tree is split into PrefixTask subtrees whose
// leaves tile the full execution set exactly once, and every aggregate the
// sweep produces (visit count, failure tallies, distinct-board accumulators)
// merges order-obliviously. This layer serializes that partition so the
// subtrees can be swept by different *processes* — on one machine or a
// fleet — and merged back into totals bit-identical to the single-process
// `threads=1` oracle:
//
//   plan:  partition_executions → K ShardSpec files (round-robin tasks)
//          + one ShardManifest (plan fingerprint + per-spec document hashes,
//          so a fleet controller can track completion and re-issue lost
//          shards)
//   run:   one ShardSpec → a ShardResult file (per-process, ThreadPool
//          parallel inside)
//   merge: K ShardResult files → MergedResult == the serial sweep's totals
//
// File formats are versioned, self-describing text ("wbshard-spec v2" /
// "wbshard-result v2" / "wbshard-manifest v2"); parsers also read the v1
// spec/result formats (which had no distinct-accumulator field — they parse
// as exact). Parsers reject malformed, truncated, or version-skewed input
// with a wb::DataError diagnostic, never undefined behavior, and
// serialize→parse→serialize is byte-identical (tests/wb/shard_test.cpp pins
// golden files under tests/wb/data/).
//
// Determinism contract (the reason merge order and shard→host assignment
// never matter):
//  - the prefix list is recorded in the specs, so equivalence never depends
//    on re-running the partition;
//  - counts are sums over disjoint subtree sets; distinct boards go through
//    a DistinctAccumulator (src/wb/distinct.h) whose merge — sorted-run set
//    union for exact, register-wise max for hll — is order-oblivious, so
//    the merged count (or estimate) is bit-identical for any grouping;
//  - the execution budget is global: a shard whose own sweep exceeds
//    max_executions records `budget_exceeded` (deterministically — its
//    tallies are cleared), and the merge throws BudgetExceededError exactly
//    when the combined count exceeds the budget, i.e. exactly when the
//    serial oracle would have thrown;
//  - results carry a fingerprint of (protocol, graph, budget, engine
//    options, distinct-accumulator config, shard count, full partition), so
//    merging results from different plans — including two different
//    partitions of the same instance, or an exact and an hll plan of the
//    same instance — is rejected loudly; the merge additionally checks the
//    accumulator kind field itself, so even hand-edited artifacts cannot
//    mix an estimate into an exact count.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/graph/graph.h"
#include "src/support/hash.h"
#include "src/support/hll.h"
#include "src/wb/distinct.h"
#include "src/wb/exhaustive.h"
#include "src/wb/faults.h"

namespace wb::shard {

/// Bumped on any change to the text formats below. v2 added the distinct
/// accumulator field (spec + result), the hll register block, and the
/// manifest format; v1 spec/result files still parse (as exact). The
/// failure-model fields (`faults`, `fprefix`, `verdict`) are *optional* v2
/// lines: fault-free documents serialize without them byte-for-byte as
/// before, and v2 documents without a fault field parse as fault-free.
inline constexpr int kFormatVersion = 2;

/// One shard of a planned exhaustive sweep: the instance (graph + opaque
/// protocol spec string + budget + engine options + distinct-accumulator
/// config), which shard of how many this is, and the exact subtree prefixes
/// this shard must sweep.
struct ShardSpec {
  /// Protocol factory string (src/cli/spec.h grammar). Opaque at this layer:
  /// carried, serialized, and fingerprinted, never parsed here.
  std::string protocol_spec;
  Graph graph{0};
  std::uint64_t max_executions = 2'000'000;
  /// Engine configuration the sweep must run under (serialized, so a worker
  /// process reproduces the oracle's engine behavior exactly).
  EngineOptions engine{};
  /// Distinct-board accumulator every shard of this plan must use.
  DistinctConfig distinct{};
  /// Fingerprint of the whole plan — instance, budget, engine options,
  /// distinct config, shard count, and the *complete* partition across all
  /// shards (not just this shard's slice). Stamped by plan_shards; results
  /// carry it forward, and merge refuses to combine results whose
  /// fingerprints differ, so shards of two different partitions of the same
  /// instance can never be mixed into silently wrong totals.
  Hash128 plan{};
  std::uint32_t shard_index = 0;
  std::uint32_t shard_count = 1;
  std::vector<PrefixTask> prefixes;
  /// Failure model every shard of this plan runs under (default: fault-free,
  /// which serializes without a `faults` line — fault-free documents are
  /// byte-identical to pre-fault v2 files). Covered by the plan fingerprint,
  /// so artifacts swept under different fault specs refuse to merge.
  FaultSpec faults{};
  /// Crash/corruption plans partition (world × prefix) pairs instead of bare
  /// prefixes; `prefixes` stays empty for them. Adaptive plans carry neither
  /// — trials are split by index stride across shards.
  std::vector<FaultTask> fault_tasks;
};

/// What one shard's sweep produced. All fields are bit-identical for any
/// worker thread count. Exactly one distinct-board payload is populated,
/// matching `distinct.kind`: `board_hashes` (sorted and unique, ready for
/// order-oblivious set union) in exact mode, `hll` (register-wise
/// max-mergeable sketch) in hll mode.
struct ShardResult {
  /// The spec's plan fingerprint, copied forward; merge refuses to combine
  /// results with different plans.
  Hash128 plan{};
  std::uint32_t shard_index = 0;
  std::uint32_t shard_count = 1;
  std::uint64_t max_executions = 0;
  std::uint64_t executions = 0;
  std::uint64_t engine_failures = 0;
  std::uint64_t wrong_outputs = 0;
  /// This shard alone exceeded the global budget. Its tallies and distinct
  /// payload are cleared (executions = max_executions), so the result file
  /// is deterministic; merge_shard_results turns the flag into the same
  /// BudgetExceededError the serial oracle throws.
  bool budget_exceeded = false;
  /// Which accumulator produced the distinct payload (copied from the spec;
  /// merge refuses kind mismatches even before the fingerprint check).
  DistinctConfig distinct{};
  std::vector<Hash128> board_hashes;  // exact mode: sorted, unique
  std::optional<HyperLogLog> hll;     // hll mode: the shard's sketch
  /// Failure model the shard ran under (copied from the spec; merge refuses
  /// fault-spec mismatches). Fault-free results serialize without it.
  FaultSpec faults{};
  /// Statistical verdict tally — populated (and serialized as a `verdict`
  /// line) iff faults.kind == kAdaptive. Merges by summation: shards split
  /// the trial index space by stride, so the union over shards is exactly
  /// the single-stream trial set.
  std::uint64_t verdict_trials = 0;
  std::uint64_t verdict_failures = 0;
};

/// The merged totals of a complete result set — field-for-field what the
/// single-process exhaustive sweep reports. `distinct_boards` is exact or a
/// HyperLogLog estimate according to `distinct` (the plan's config).
struct MergedResult {
  std::uint32_t shard_count = 0;
  std::uint64_t executions = 0;
  std::uint64_t engine_failures = 0;
  std::uint64_t wrong_outputs = 0;
  std::uint64_t distinct_boards = 0;
  DistinctConfig distinct{};
  /// Failure model of the plan, and (for adaptive plans) the summed
  /// statistical verdict — feed into a VerdictAccumulator for the rate and
  /// Wilson interval, bit-identical to the single-stream sweep.
  FaultSpec faults{};
  std::uint64_t verdict_trials = 0;
  std::uint64_t verdict_failures = 0;
};

struct PlanOptions {
  std::uint64_t max_executions = 2'000'000;
  /// Partition granularity: aim for at least this many prefix tasks per
  /// shard, so in-worker ThreadPool sweeps load-balance. The resulting
  /// prefixes are recorded verbatim in the specs — merge equivalence never
  /// depends on reproducing the partition.
  std::size_t tasks_per_shard = 4;
  /// Distinct-board accumulator for the whole plan (fingerprinted, so
  /// exact and hll artifacts of one instance can never cross-merge).
  DistinctConfig distinct{};
  EngineOptions engine;
  /// Failure model for the whole plan (fingerprinted). Crash/corruption
  /// plans fold the fault worlds into the partition; adaptive plans split
  /// the trial index space by stride across shards.
  FaultSpec faults{};
};

/// Partition the schedule tree of (g, p) and distribute the prefix tasks
/// round-robin over `shard_count` specs, each stamped with the plan
/// fingerprint. Deterministic: depends only on (g, p, shard_count, opts).
/// Shards may receive no tasks (more shards than subtrees); their sweeps
/// report zero executions and merge harmlessly.
[[nodiscard]] std::vector<ShardSpec> plan_shards(const Graph& g,
                                                 const Protocol& p,
                                                 const std::string& protocol_spec,
                                                 std::size_t shard_count,
                                                 const PlanOptions& opts = {});

/// Completion-tracking companion of a plan: the plan fingerprint, the shard
/// count, the distinct config, and the content hash of every spec document,
/// in shard order. A fleet controller holding only the manifest can tell
/// which shard results are present, missing, or foreign (wbsim
/// shard-status), and re-issue a lost shard's spec on another host.
struct ShardManifest {
  Hash128 plan{};
  std::uint32_t shard_count = 1;
  std::uint64_t max_executions = 0;
  DistinctConfig distinct{};
  /// Failure model of the plan (fault-free manifests serialize without it).
  FaultSpec faults{};
  std::vector<Hash128> spec_hashes;  // hash_document of each serialized spec
};

/// Content hash of a serialized document (what the manifest records per
/// spec file — re-hash a file to verify it is the planned one).
[[nodiscard]] Hash128 hash_document(const std::string& text);

/// Build the manifest of a complete plan (the full, ordered spec list that
/// plan_shards returned). Throws wb::DataError when the list is not exactly
/// one spec per shard of one plan, in index order.
[[nodiscard]] ShardManifest make_manifest(std::span<const ShardSpec> specs);

/// Canonical text forms. serialize(parse_*(text)) == text for any text the
/// serializers produced (golden-pinned).
[[nodiscard]] std::string serialize(const ShardSpec& spec);
[[nodiscard]] std::string serialize(const ShardResult& result);
[[nodiscard]] std::string serialize(const ShardManifest& manifest);

/// Parsers throw wb::DataError with a line-numbered diagnostic on malformed,
/// truncated, or version-skewed input. Spec and result parsers read v1 and
/// v2 documents (v1 has no distinct field and parses as exact); manifests
/// exist only since v2.
[[nodiscard]] ShardSpec parse_shard_spec(const std::string& text);
[[nodiscard]] ShardResult parse_shard_result(const std::string& text);
[[nodiscard]] ShardManifest parse_shard_manifest(const std::string& text);

/// Sweep one shard: every execution under spec.prefixes, run with
/// spec.engine, fanned out over the shared ThreadPool (`threads` as in
/// ExhaustiveOptions: 0 = one worker per hardware thread, 1 = serial). `p`
/// must be the protocol spec.protocol_spec denotes (the CLI layer
/// constructs it; library callers pass their own).
/// `accept` — may be empty — classifies each *successful* execution's
/// output; failures of the engine itself are tallied separately. A
/// worker-local budget overrun is caught and recorded as budget_exceeded
/// (see ShardResult); visitor exceptions propagate.
[[nodiscard]] ShardResult run_shard(
    const ShardSpec& spec, const Protocol& p,
    const std::function<bool(const ExecutionResult&)>& accept,
    std::size_t threads = 0);

/// Failure-model-aware shard sweep. Dispatches on spec.faults.kind:
/// fault-free specs sweep spec.prefixes exactly as the accept overload
/// (which delegates here with the canonical ok/accept classifier);
/// crash/corruption specs sweep spec.fault_tasks via sweep_fault_tasks;
/// adaptive specs run this shard's stride of the trial index space through
/// run_statistical_verdict and record the verdict tally. The classifier is
/// consulted for every execution; kWrongOutput tallies into wrong_outputs
/// and kDeadlockOrFault into engine_failures, so fault-free results are
/// field-for-field those of the accept overload.
[[nodiscard]] ShardResult run_shard(const ShardSpec& spec, const Protocol& p,
                                    const FaultClassifier& classify,
                                    std::size_t threads);

/// Merge a complete result set (any order) into the sweep's totals.
/// Throws wb::DataError when the set is not exactly one result per shard of
/// one plan — including when results disagree on the distinct-accumulator
/// kind (an exact count and an hll estimate must never be combined) — and
/// BudgetExceededError when the combined execution count exceeds the
/// recorded budget — the same observable behavior as the serial oracle at
/// any shard count and any assignment of shards to hosts.
[[nodiscard]] MergedResult merge_shard_results(
    std::span<const ShardResult> results);

}  // namespace wb::shard
