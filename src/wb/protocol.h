// Protocol interface (§2 of the paper).
//
// A protocol supplies the two per-node functions of the formal model,
//  - act: should this awake node become active, given the whiteboard?
//  - msg: the message an active node stores in its local memory,
// plus the output function evaluated on the final whiteboard, its declared
// model class, and its message-size bound f(n) (checked by the engine on
// every write).
//
// The engine enforces the class semantics mechanically:
//  - simultaneous classes: activate() must return true on the empty
//    whiteboard for every node (the engine verifies);
//  - asynchronous classes: compose() is called exactly once per node, at
//    activation time, and the result is frozen;
//  - synchronous classes: compose() is re-evaluated every round until the
//    adversary writes the node's current memory.
#pragma once

#include <memory>
#include <string>

#include "src/support/bitio.h"
#include "src/wb/model.h"
#include "src/wb/view.h"
#include "src/wb/whiteboard.h"

namespace wb {

/// A protocol's opt-in contract for the engine's frontier-aware rounds
/// (EngineOptions::frontier). Both flags describe *data dependence*, not a
/// different semantics — the engine uses them to skip re-evaluations that
/// provably cannot change, and the result must stay bit-identical to the
/// reference engine.
struct FrontierLocality {
  /// activate(view, board) is a pure function of (view, the subsequence of
  /// board messages authored by neighbors of view.id()). Since the board only
  /// grows, an awake node's activation verdict can then change only in a
  /// round after one of its neighbors wrote — everyone else keeps last
  /// round's (false) answer without being asked again.
  bool activate_neighbor_local = false;
  /// compose(view, board) is a pure function of (view, the subsequence of
  /// board messages authored by neighbors of view.id()). Synchronous classes
  /// then only need to recompose an active node when a neighbor wrote since
  /// its memory was last computed.
  bool compose_neighbor_local = false;
};

class Protocol {
 public:
  virtual ~Protocol() = default;

  /// The model class this protocol is designed for.
  [[nodiscard]] virtual ModelClass model_class() const = 0;

  /// Maximum message size in bits for n-node inputs — the f(n) in
  /// MODEL[f(n)]. The engine fails any run that writes a longer message.
  [[nodiscard]] virtual std::size_t message_bit_limit(std::size_t n) const = 0;

  /// act: decision of an awake node to become active. Must be a pure
  /// function of (view, whiteboard).
  [[nodiscard]] virtual bool activate(const LocalView& view,
                                      const Whiteboard& board) const = 0;

  /// msg: message an active node stores in local memory, as a pure function
  /// of (view, whiteboard). See the class-semantics notes above for when the
  /// engine calls this.
  [[nodiscard]] virtual Bits compose(const LocalView& view,
                                     const Whiteboard& board) const = 0;

  /// Scratch-writer overload — the one the engine actually calls. `scratch`
  /// arrives empty; implementations append their bits and `return
  /// scratch.take()`, so a message that fits Bits' inline buffer costs no
  /// heap allocation (the writer's capacity persists across the whole run).
  /// The default forwards to the allocating overload above, letting protocol
  /// subclasses migrate incrementally; semantics must be identical.
  [[nodiscard]] virtual Bits compose(const LocalView& view,
                                     const Whiteboard& board,
                                     BitWriter& scratch) const {
    (void)scratch;
    return compose(view, board);
  }

  /// Which frontier-engine shortcuts this protocol's functions admit. The
  /// default claims nothing, which makes frontier mode safe (if slower) for
  /// every protocol; claiming a flag the functions do not honor breaks the
  /// bit-identical guarantee, so it is pinned by the equivalence suites.
  [[nodiscard]] virtual FrontierLocality frontier_locality() const {
    return {};
  }

  [[nodiscard]] virtual std::string name() const = 0;
};

/// A protocol together with its typed output function out(W).
template <typename OutputT>
class ProtocolWithOutput : public Protocol {
 public:
  using Output = OutputT;

  /// Decode the final whiteboard into the problem's answer. Receives nothing
  /// but the whiteboard and n — the type system enforces the paper's "the
  /// output is computed from the final contents of the whiteboard".
  [[nodiscard]] virtual OutputT output(const Whiteboard& board,
                                       std::size_t n) const = 0;
};

/// Convenience base for SIMASYNC protocols: activation is unconditional and
/// the single message may depend only on local knowledge (the whiteboard is
/// still empty when every node composes).
template <typename OutputT>
class SimAsyncProtocol : public ProtocolWithOutput<OutputT> {
 public:
  [[nodiscard]] ModelClass model_class() const override {
    return ModelClass::kSimAsync;
  }
  [[nodiscard]] bool activate(const LocalView&, const Whiteboard&) const final {
    return true;
  }
  [[nodiscard]] Bits compose(const LocalView& view,
                             const Whiteboard& board) const final {
    WB_CHECK_MSG(board.empty(),
                 "SIMASYNC compose must only ever see the empty whiteboard");
    return compose_initial(view);
  }
  [[nodiscard]] Bits compose(const LocalView& view, const Whiteboard& board,
                             BitWriter& scratch) const final {
    WB_CHECK_MSG(board.empty(),
                 "SIMASYNC compose must only ever see the empty whiteboard");
    return compose_initial(view, scratch);
  }

  /// The one message of node `view.id()`, from local knowledge only.
  [[nodiscard]] virtual Bits compose_initial(const LocalView& view) const = 0;

  /// Scratch-writer variant; default forwards to the allocating one so
  /// subclasses migrate incrementally (mirrors Protocol::compose).
  [[nodiscard]] virtual Bits compose_initial(const LocalView& view,
                                             BitWriter& scratch) const {
    (void)scratch;
    return compose_initial(view);
  }
};

/// Convenience base for SIMSYNC protocols: activation unconditional, message
/// recomputed from the evolving whiteboard.
template <typename OutputT>
class SimSyncProtocol : public ProtocolWithOutput<OutputT> {
 public:
  [[nodiscard]] ModelClass model_class() const override {
    return ModelClass::kSimSync;
  }
  [[nodiscard]] bool activate(const LocalView&, const Whiteboard&) const final {
    return true;
  }
};

}  // namespace wb
