// The adversary (§2): at each round it chooses, among the active nodes whose
// message is not yet on the whiteboard, the one whose message gets written.
//
// A protocol solves a problem only if it succeeds against *every* adversary,
// so the test-suite runs each protocol under all of these strategies, and —
// for small n — under exhaustive exploration of every schedule
// (src/wb/exhaustive.h).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/graph/graph.h"
#include "src/support/rng.h"
#include "src/wb/whiteboard.h"

namespace wb {

class Adversary {
 public:
  virtual ~Adversary() = default;

  /// Pick the writer among `candidates` (sorted ascending node IDs; never
  /// empty). Returns an index into `candidates`.
  [[nodiscard]] virtual std::size_t choose(std::span<const NodeId> candidates,
                                           const Whiteboard& board,
                                           std::size_t round) = 0;

  /// Called once before each execution.
  virtual void reset() {}

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Always the smallest-ID candidate (the "natural" order).
class FirstAdversary final : public Adversary {
 public:
  std::size_t choose(std::span<const NodeId>, const Whiteboard&,
                     std::size_t) override {
    return 0;
  }
  std::string name() const override { return "first"; }
};

/// Always the largest-ID candidate (reverse order).
class LastAdversary final : public Adversary {
 public:
  std::size_t choose(std::span<const NodeId> candidates, const Whiteboard&,
                     std::size_t) override {
    return candidates.size() - 1;
  }
  std::string name() const override { return "last"; }
};

/// Uniformly random candidate, deterministic in the seed.
class RandomAdversary final : public Adversary {
 public:
  explicit RandomAdversary(std::uint64_t seed) : seed_(seed), rng_(seed) {}
  std::size_t choose(std::span<const NodeId> candidates, const Whiteboard&,
                     std::size_t) override {
    return static_cast<std::size_t>(rng_.below(candidates.size()));
  }
  void reset() override { rng_ = Rng(seed_); }
  std::string name() const override { return "random"; }

 private:
  std::uint64_t seed_;
  Rng rng_;
};

/// Rotates through candidate positions with a large stride, exercising
/// mid-list picks that first/last never produce.
class RotatingAdversary final : public Adversary {
 public:
  std::size_t choose(std::span<const NodeId> candidates, const Whiteboard&,
                     std::size_t round) override {
    return (round * 7919) % candidates.size();
  }
  std::string name() const override { return "rotating"; }
};

/// Prefers the candidate of maximum degree in the input graph (needs the
/// graph; the adversary may know everything).
class MaxDegreeAdversary final : public Adversary {
 public:
  explicit MaxDegreeAdversary(const Graph& g) : g_(&g) {}
  std::size_t choose(std::span<const NodeId> candidates, const Whiteboard&,
                     std::size_t) override {
    std::size_t best = 0;
    for (std::size_t i = 1; i < candidates.size(); ++i) {
      if (g_->degree(candidates[i]) > g_->degree(candidates[best])) best = i;
    }
    return best;
  }
  std::string name() const override { return "max-degree"; }

 private:
  const Graph* g_;
};

/// Prefers the candidate of minimum degree.
class MinDegreeAdversary final : public Adversary {
 public:
  explicit MinDegreeAdversary(const Graph& g) : g_(&g) {}
  std::size_t choose(std::span<const NodeId> candidates, const Whiteboard&,
                     std::size_t) override {
    std::size_t best = 0;
    for (std::size_t i = 1; i < candidates.size(); ++i) {
      if (g_->degree(candidates[i]) < g_->degree(candidates[best])) best = i;
    }
    return best;
  }
  std::string name() const override { return "min-degree"; }

 private:
  const Graph* g_;
};

/// Follows a scripted node order exactly; fails the run (throws LogicError)
/// if the scripted next writer is not currently a candidate. Used by the
/// reduction drivers, which know the activation pattern of the simulated
/// protocol (e.g. Thm 8's order v_2, ..., v_{2n-1}, v_1).
class ScriptedAdversary final : public Adversary {
 public:
  explicit ScriptedAdversary(std::vector<NodeId> order)
      : order_(std::move(order)) {}
  std::size_t choose(std::span<const NodeId> candidates, const Whiteboard&,
                     std::size_t) override;
  void reset() override { next_ = 0; }
  std::string name() const override { return "scripted"; }

 private:
  std::vector<NodeId> order_;
  std::size_t next_ = 0;
};

/// Scripted order, but nodes missing from the candidate set are skipped
/// gracefully (falls back to the first candidate when the script is
/// exhausted). Used to bias schedules without asserting feasibility.
class PreferenceAdversary final : public Adversary {
 public:
  explicit PreferenceAdversary(std::vector<NodeId> preference)
      : preference_(std::move(preference)) {}
  std::size_t choose(std::span<const NodeId> candidates, const Whiteboard&,
                     std::size_t) override;
  std::string name() const override { return "preference"; }

 private:
  std::vector<NodeId> preference_;
};

/// The standard battery of adversaries used by tests and benches.
/// MaxDegree/MinDegree are bound to `g`; `seed` feeds the random strategy.
[[nodiscard]] std::vector<std::unique_ptr<Adversary>> standard_adversaries(
    const Graph& g, std::uint64_t seed);

/// Number of strategies in the standard battery.
[[nodiscard]] std::size_t standard_adversary_count() noexcept;

/// Construct battery entry `index` alone (for per-trial factories that need
/// one strategy without building the whole battery). Same ordering as
/// standard_adversaries; index must be < standard_adversary_count().
[[nodiscard]] std::unique_ptr<Adversary> standard_adversary(const Graph& g,
                                                            std::uint64_t seed,
                                                            std::size_t index);

}  // namespace wb
