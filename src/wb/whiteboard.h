// The shared whiteboard: an append-only sequence of bit-string messages.
//
// Faithful to §2: nodes and the output function observe the *sequence of
// messages in write order* and nothing else. In particular the whiteboard
// does not reveal writer identities — every protocol in the paper embeds
// ID(v) in its own message when it needs to be identified.
//
// Memory model: the message storage is a shared, logically immutable prefix.
// A Whiteboard is a (storage, count) pair — copying one is O(1) (it shares
// the storage and remembers how much of it is "its" board), which is what
// snapshotting a board into an ExecutionResult costs. Appends extend the
// shared storage in place when that is safe (the new slot is past every
// sharer's count) and clone the live prefix only when a stale-prefix holder
// diverges. truncate() lets the engine's backtracking explorer unwind writes;
// it pops storage physically only when this board is the sole owner.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "src/support/bitio.h"
#include "src/support/hash.h"

namespace wb {

class Whiteboard {
 public:
  Whiteboard() = default;
  Whiteboard(const Whiteboard&) = default;
  Whiteboard& operator=(const Whiteboard&) = default;
  // User-defined moves: the logical size lives outside the shared storage
  // pointer, so a moved-from board must drop its count with the storage or
  // its accessors would index through null.
  Whiteboard(Whiteboard&& other) noexcept
      : entries_(std::move(other.entries_)),
        count_(std::exchange(other.count_, 0)),
        total_bits_(std::exchange(other.total_bits_, 0)),
        cache_(std::move(other.cache_)) {}
  Whiteboard& operator=(Whiteboard&& other) noexcept {
    if (this != &other) {
      entries_ = std::move(other.entries_);
      count_ = std::exchange(other.count_, 0);
      total_bits_ = std::exchange(other.total_bits_, 0);
      cache_ = std::move(other.cache_);
    }
    return *this;
  }

  /// Pre-size the storage. The engine reserves n slots up front so a whole
  /// run appends without a single reallocation (and without invalidating
  /// spans handed out by messages()).
  void reserve(std::size_t message_capacity) {
    own_tail();
    entries_->reserve(message_capacity);
  }

  void append(Bits message) {
    total_bits_ += message.size();
    own_tail();
    entries_->push_back(std::move(message));
    ++count_;
    cache_.reset();  // any append invalidates decoded views
  }

  /// Drop every message past the first `new_count`. O(messages dropped).
  /// Cached views of prefixes that survive stay valid (they are keyed by
  /// message count and the prefix is immutable).
  void truncate(std::size_t new_count) {
    WB_CHECK(new_count <= count_);
    for (std::size_t i = new_count; i < count_; ++i) {
      total_bits_ -= (*entries_)[i].size();
    }
    count_ = new_count;
    if (entries_ != nullptr && entries_.use_count() == 1) {
      entries_->resize(count_);  // sole owner: free the dead tail now
    }
  }

  [[nodiscard]] std::size_t message_count() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }

  [[nodiscard]] const Bits& message(std::size_t i) const {
    WB_CHECK(i < count_);
    return (*entries_)[i];
  }

  [[nodiscard]] std::span<const Bits> messages() const noexcept {
    return entries_ == nullptr
               ? std::span<const Bits>()
               : std::span<const Bits>(entries_->data(), count_);
  }

  /// Total bits currently on the whiteboard (the Lemma 3 budget).
  [[nodiscard]] std::size_t total_bits() const noexcept { return total_bits_; }

  /// Word-wise 128-bit hash of the board contents (message lengths and
  /// words, in write order). Two boards with equal contents hash equally;
  /// distinct boards collide with probability ~2^-128.
  [[nodiscard]] Hash128 content_hash() const noexcept {
    Hasher128 h;
    for (const Bits& m : messages()) {
      h.update(m.size());
      const std::uint64_t* words = m.word_data();
      for (std::size_t w = 0, e = m.word_count(); w < e; ++w) {
        h.update(words[w]);
      }
    }
    return h.digest();
  }

  /// Memoized decoded view of the board.
  ///
  /// Protocol callbacks are invoked O(n) times per round on the same
  /// whiteboard; parsing the full board in each call makes a run O(n³).
  /// Because the board is append-only and immutable between appends, a
  /// decoded view keyed by (view type, message count) stays valid until the
  /// next append — `append` drops it. Copying a Whiteboard shares the cache
  /// (both copies hold the same prefix), which is exactly what snapshotting
  /// a board mid-exploration needs. The slot is a single allocation; the
  /// view type is identified by a tagged static, not typeid.
  ///
  /// The factory must be a pure function of the board contents (same
  /// requirement §2 places on act/msg themselves).
  template <typename T, typename Factory>
  const T& cached_view(const Factory& factory) const {
    if (cache_ == nullptr || cache_->tag != type_tag<T>() ||
        cache_->count != count_) {
      auto slot = std::make_shared<CacheSlot<T>>();
      slot->tag = type_tag<T>();
      slot->count = count_;
      slot->value = factory(*this);
      const T& ref = slot->value;
      cache_ = std::move(slot);
      return ref;
    }
    return static_cast<const CacheSlot<T>*>(cache_.get())->value;
  }

 private:
  struct CacheBase {
    const void* tag = nullptr;
    std::size_t count = 0;
  };
  template <typename T>
  struct CacheSlot final : CacheBase {
    T value{};
  };

  /// Address-unique tag per view type (replaces typeid/type_index).
  /// Deliberately non-const: identical-COMDAT folding (e.g. MSVC /OPT:ICF)
  /// may merge read-only instantiations across T, mutable data never folds.
  template <typename T>
  static const void* type_tag() noexcept {
    static char tag = 0;
    return &tag;
  }

  /// Make entries_ safe to push_back into: allocate on first use, and clone
  /// the live prefix when this board is a stale-prefix holder of shared
  /// storage (appending in place would clobber an entry another holder can
  /// still read).
  void own_tail() {
    if (entries_ == nullptr) {
      entries_ = std::make_shared<std::vector<Bits>>();
    } else if (count_ < entries_->size()) {
      if (entries_.use_count() == 1) {
        entries_->resize(count_);
      } else {
        auto fresh = std::make_shared<std::vector<Bits>>();
        fresh->reserve(entries_->capacity());
        fresh->assign(entries_->begin(),
                      entries_->begin() + static_cast<std::ptrdiff_t>(count_));
        entries_ = std::move(fresh);
      }
    }
  }

  std::shared_ptr<std::vector<Bits>> entries_;
  std::size_t count_ = 0;
  std::size_t total_bits_ = 0;
  mutable std::shared_ptr<const CacheBase> cache_;
};

}  // namespace wb
