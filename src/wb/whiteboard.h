// The shared whiteboard: an append-only sequence of bit-string messages.
//
// Faithful to §2: nodes and the output function observe the *sequence of
// messages in write order* and nothing else. In particular the whiteboard
// does not reveal writer identities — every protocol in the paper embeds
// ID(v) in its own message when it needs to be identified.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <typeindex>
#include <vector>

#include "src/support/bitio.h"

namespace wb {

class Whiteboard {
 public:
  Whiteboard() = default;

  void append(Bits message) {
    total_bits_ += message.size();
    entries_.push_back(std::move(message));
    cache_.reset();  // any append invalidates decoded views
  }

  [[nodiscard]] std::size_t message_count() const noexcept {
    return entries_.size();
  }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }

  [[nodiscard]] const Bits& message(std::size_t i) const {
    WB_CHECK(i < entries_.size());
    return entries_[i];
  }

  [[nodiscard]] std::span<const Bits> messages() const noexcept {
    return entries_;
  }

  /// Total bits currently on the whiteboard (the Lemma 3 budget).
  [[nodiscard]] std::size_t total_bits() const noexcept { return total_bits_; }

  /// Memoized decoded view of the board.
  ///
  /// Protocol callbacks are invoked O(n) times per round on the same
  /// whiteboard; parsing the full board in each call makes a run O(n³).
  /// Because the board is append-only and immutable between appends, a
  /// decoded view keyed by (decoder type, message count) stays valid until
  /// the next append — `append` drops it. Copying a Whiteboard shares the
  /// cache (both copies hold the same prefix), which is exactly what the
  /// exhaustive explorer's branching needs.
  ///
  /// The factory must be a pure function of the board contents (same
  /// requirement §2 places on act/msg themselves).
  template <typename T, typename Factory>
  const T& cached_view(const Factory& factory) const {
    if (cache_ == nullptr || cache_->type != std::type_index(typeid(T)) ||
        cache_->count != entries_.size()) {
      auto holder = std::make_shared<CacheHolder>();
      holder->type = std::type_index(typeid(T));
      holder->count = entries_.size();
      holder->value = std::make_shared<T>(factory(*this));
      cache_ = std::move(holder);
    }
    return *static_cast<const T*>(cache_->value.get());
  }

 private:
  struct CacheHolder {
    std::type_index type = std::type_index(typeid(void));
    std::size_t count = 0;
    std::shared_ptr<void> value;
  };

  std::vector<Bits> entries_;
  std::size_t total_bits_ = 0;
  mutable std::shared_ptr<CacheHolder> cache_;
};

}  // namespace wb
