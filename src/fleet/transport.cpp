#include "src/fleet/transport.h"

#include <charconv>

#include "src/support/check.h"

#if WB_FLEET_HAS_PROCESSES
#include <cerrno>
#include <csignal>
#include <cstring>
#include <poll.h>
#include <unistd.h>
#endif

namespace wb::fleet {

namespace {

constexpr std::string_view kMagic = "wbframe";
constexpr std::string_view kVersion = "v1";

constexpr std::string_view kTypeNames[] = {
    "hello", "spec", "result", "heartbeat", "shutdown", "error", "ack",
};

constexpr std::string_view kHelloMagic = "wbhello";

}  // namespace

std::string_view to_string(FrameType type) {
  const auto index = static_cast<std::size_t>(type);
  WB_CHECK_MSG(index < std::size(kTypeNames), "invalid FrameType");
  return kTypeNames[index];
}

FrameType frame_type_from_string(std::string_view token) {
  for (std::size_t i = 0; i < std::size(kTypeNames); ++i) {
    if (token == kTypeNames[i]) return static_cast<FrameType>(i);
  }
  throw DataError("unknown frame type '" + std::string(token) +
                  "' — expected hello|spec|result|heartbeat|shutdown|error|"
                  "ack");
}

std::string HelloInfo::identity() const {
  if (version < 2 || host.empty()) return {};
  return host + "/" + std::to_string(pid);
}

std::string serialize_hello(const HelloInfo& info) {
  WB_CHECK_MSG(info.version == kHelloVersion,
               "serialize_hello emits v" << kHelloVersion << " only, got v"
                                         << info.version);
  WB_CHECK_MSG(!info.host.empty() && info.host.find('\n') == std::string::npos,
               "hello host must be a non-empty single line");
  std::string out;
  out.append(kHelloMagic);
  out.append(" v2\n");
  out.append("host ");
  out.append(info.host);
  out.append("\npid ");
  out.append(std::to_string(info.pid));
  out.append("\nthreads ");
  out.append(std::to_string(info.threads));
  out.append("\nheartbeat-ms ");
  out.append(std::to_string(info.heartbeat_ms));
  out.append("\n");
  return out;
}

HelloInfo parse_hello(std::string_view payload) {
  HelloInfo info;
  const std::size_t magic_len = kHelloMagic.size();
  if (payload.substr(0, magic_len) != kHelloMagic ||
      (payload.size() > magic_len && payload[magic_len] != ' ')) {
    return info;  // not a wbhello document: a v1 (anonymous) hello
  }
  const std::size_t first_newline = payload.find('\n');
  const std::string_view version_token = payload.substr(
      magic_len + 1, (first_newline == std::string_view::npos
                          ? payload.size()
                          : first_newline) -
                         magic_len - 1);
  WB_REQUIRE_MSG(version_token == "v2",
                 "unsupported hello version '"
                     << version_token << "' (this controller speaks v"
                     << kHelloVersion
                     << ") — refusing a version-skewed worker");
  info.version = 2;
  bool have_host = false;
  bool have_pid = false;
  std::string_view rest = first_newline == std::string_view::npos
                              ? std::string_view{}
                              : payload.substr(first_newline + 1);
  const auto parse_i64 = [](std::string_view text,
                            const char* what) -> std::int64_t {
    std::int64_t value = 0;
    const auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), value);
    WB_REQUIRE_MSG(!text.empty() && ec == std::errc{} &&
                       ptr == text.data() + text.size(),
                   "bad hello " << what << " '" << std::string(text) << "'");
    return value;
  };
  while (!rest.empty()) {
    const std::size_t newline = rest.find('\n');
    const std::string_view line = rest.substr(0, newline);
    rest = newline == std::string_view::npos ? std::string_view{}
                                             : rest.substr(newline + 1);
    if (line.empty()) continue;
    const std::size_t space = line.find(' ');
    const std::string_view key = line.substr(0, space);
    const std::string_view value =
        space == std::string_view::npos ? std::string_view{}
                                        : line.substr(space + 1);
    if (key == "host") {
      WB_REQUIRE_MSG(!value.empty(), "hello host line is empty");
      info.host = std::string(value);
      have_host = true;
    } else if (key == "pid") {
      info.pid = parse_i64(value, "pid");
      have_pid = true;
    } else if (key == "threads") {
      info.threads = static_cast<std::size_t>(parse_i64(value, "threads"));
    } else if (key == "heartbeat-ms") {
      info.heartbeat_ms = parse_i64(value, "heartbeat-ms");
    }
    // Unknown keys: ignored, so a later v2 can add fields.
  }
  WB_REQUIRE_MSG(have_host && have_pid,
                 "hello v2 document is missing its host or pid line");
  return info;
}

std::string encode_frame(const Frame& frame) {
  WB_CHECK_MSG(frame.payload.size() <= kMaxFramePayload,
               "frame payload of " << frame.payload.size()
                                   << " bytes exceeds the "
                                   << kMaxFramePayload << "-byte cap");
  std::string out;
  out.reserve(kMaxHeaderBytes + frame.payload.size());
  out.append(kMagic);
  out.append(" ");
  out.append(kVersion);
  out.append(" ");
  out.append(to_string(frame.type));
  out.append(" ");
  out.append(std::to_string(frame.payload.size()));
  out.append("\n");
  out.append(frame.payload);
  return out;
}

std::optional<Frame> FrameDecoder::next() {
  if (poisoned_) throw DataError(poison_reason_);
  const auto poison = [&](const std::string& why) -> DataError {
    poisoned_ = true;
    buffer_.clear();
    poison_reason_ = "malformed frame: " + why;
    return DataError(poison_reason_);
  };

  const std::size_t newline = buffer_.find('\n');
  if (newline == std::string::npos) {
    // No complete header yet. A conforming peer's header fits in
    // kMaxHeaderBytes, so anything longer can never become valid.
    if (buffer_.size() > kMaxHeaderBytes) {
      throw poison("header exceeds " + std::to_string(kMaxHeaderBytes) +
                   " bytes without a terminating newline");
    }
    return std::nullopt;
  }
  if (newline > kMaxHeaderBytes) {
    throw poison("header line of " + std::to_string(newline) +
                 " bytes exceeds the " + std::to_string(kMaxHeaderBytes) +
                 "-byte bound");
  }
  const std::string_view header(buffer_.data(), newline);

  // Tokenize "wbframe v1 <type> <length>".
  std::string_view rest = header;
  const auto take_token = [&]() -> std::string_view {
    const std::size_t space = rest.find(' ');
    std::string_view token = rest.substr(0, space);
    rest = space == std::string_view::npos ? std::string_view{}
                                           : rest.substr(space + 1);
    return token;
  };
  const std::string_view magic = take_token();
  if (magic != kMagic) {
    throw poison("bad magic '" + std::string(magic) + "' (expected '" +
                 std::string(kMagic) + "')");
  }
  const std::string_view version = take_token();
  if (version != kVersion) {
    throw poison("unsupported frame version '" + std::string(version) + "'");
  }
  const std::string_view type_token = take_token();
  FrameType type;
  try {
    type = frame_type_from_string(type_token);
  } catch (const DataError& e) {
    throw poison(e.what());
  }
  const std::string_view length_token = rest;
  std::uint64_t length = 0;
  const auto [ptr, ec] = std::from_chars(
      length_token.data(), length_token.data() + length_token.size(), length);
  if (length_token.empty() || ec != std::errc{} ||
      ptr != length_token.data() + length_token.size()) {
    throw poison("bad payload length '" + std::string(length_token) + "'");
  }
  if (length > kMaxFramePayload) {
    throw poison("payload length " + std::to_string(length) + " exceeds the " +
                 std::to_string(kMaxFramePayload) + "-byte cap");
  }

  const std::size_t frame_end = newline + 1 + static_cast<std::size_t>(length);
  if (buffer_.size() < frame_end) return std::nullopt;  // payload still coming
  Frame frame;
  frame.type = type;
  frame.payload = buffer_.substr(newline + 1, static_cast<std::size_t>(length));
  buffer_.erase(0, frame_end);
  return frame;
}

#if WB_FLEET_HAS_PROCESSES

void ignore_sigpipe() { std::signal(SIGPIPE, SIG_IGN); }

std::optional<Frame> read_frame(int fd, FrameDecoder& decoder) {
  if (std::optional<Frame> frame = decoder.next()) return frame;
  char chunk[64 * 1024];
  while (true) {
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        pollfd pfd{fd, POLLIN, 0};
        (void)::poll(&pfd, 1, -1);
        continue;
      }
      throw StreamError(std::string("frame read failed: ") +
                        std::strerror(errno));
    }
    if (n == 0) {
      if (!decoder.idle()) {
        throw StreamError("peer closed the stream mid-frame (" +
                          std::to_string(decoder.buffered_bytes()) +
                          " bytes buffered)");
      }
      return std::nullopt;
    }
    decoder.feed(chunk, static_cast<std::size_t>(n));
    if (std::optional<Frame> frame = decoder.next()) return frame;
  }
}

void write_frame(int fd, const Frame& frame) {
  const std::string wire = encode_frame(frame);
  std::size_t written = 0;
  while (written < wire.size()) {
    const ssize_t n = ::write(fd, wire.data() + written, wire.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Non-blocking fd with a full kernel buffer: wait for room, bounded
        // — a peer that stops reading this long is as good as severed.
        pollfd pfd{fd, POLLOUT, 0};
        const int ready = ::poll(&pfd, 1, kWriteStallTimeoutMs);
        if (ready > 0) continue;
        throw StreamError("frame write stalled for " +
                          std::to_string(kWriteStallTimeoutMs) +
                          "ms (peer stopped reading)");
      }
      throw StreamError(std::string("frame write failed: ") +
                        std::strerror(errno));
    }
    written += static_cast<std::size_t>(n);
  }
}

#endif  // WB_FLEET_HAS_PROCESSES

}  // namespace wb::fleet
