#include "src/fleet/transport.h"

#include <charconv>

#include "src/support/check.h"

#if WB_FLEET_HAS_PROCESSES
#include <cerrno>
#include <csignal>
#include <cstring>
#include <unistd.h>
#endif

namespace wb::fleet {

namespace {

constexpr std::string_view kMagic = "wbframe";
constexpr std::string_view kVersion = "v1";

constexpr std::string_view kTypeNames[] = {
    "hello", "spec", "result", "heartbeat", "shutdown", "error",
};

}  // namespace

std::string_view to_string(FrameType type) {
  const auto index = static_cast<std::size_t>(type);
  WB_CHECK_MSG(index < std::size(kTypeNames), "invalid FrameType");
  return kTypeNames[index];
}

FrameType frame_type_from_string(std::string_view token) {
  for (std::size_t i = 0; i < std::size(kTypeNames); ++i) {
    if (token == kTypeNames[i]) return static_cast<FrameType>(i);
  }
  throw DataError("unknown frame type '" + std::string(token) +
                  "' — expected hello|spec|result|heartbeat|shutdown|error");
}

std::string encode_frame(const Frame& frame) {
  WB_CHECK_MSG(frame.payload.size() <= kMaxFramePayload,
               "frame payload of " << frame.payload.size()
                                   << " bytes exceeds the "
                                   << kMaxFramePayload << "-byte cap");
  std::string out;
  out.reserve(kMaxHeaderBytes + frame.payload.size());
  out.append(kMagic);
  out.append(" ");
  out.append(kVersion);
  out.append(" ");
  out.append(to_string(frame.type));
  out.append(" ");
  out.append(std::to_string(frame.payload.size()));
  out.append("\n");
  out.append(frame.payload);
  return out;
}

std::optional<Frame> FrameDecoder::next() {
  if (poisoned_) throw DataError(poison_reason_);
  const auto poison = [&](const std::string& why) -> DataError {
    poisoned_ = true;
    buffer_.clear();
    poison_reason_ = "malformed frame: " + why;
    return DataError(poison_reason_);
  };

  const std::size_t newline = buffer_.find('\n');
  if (newline == std::string::npos) {
    // No complete header yet. A conforming peer's header fits in
    // kMaxHeaderBytes, so anything longer can never become valid.
    if (buffer_.size() > kMaxHeaderBytes) {
      throw poison("header exceeds " + std::to_string(kMaxHeaderBytes) +
                   " bytes without a terminating newline");
    }
    return std::nullopt;
  }
  if (newline > kMaxHeaderBytes) {
    throw poison("header line of " + std::to_string(newline) +
                 " bytes exceeds the " + std::to_string(kMaxHeaderBytes) +
                 "-byte bound");
  }
  const std::string_view header(buffer_.data(), newline);

  // Tokenize "wbframe v1 <type> <length>".
  std::string_view rest = header;
  const auto take_token = [&]() -> std::string_view {
    const std::size_t space = rest.find(' ');
    std::string_view token = rest.substr(0, space);
    rest = space == std::string_view::npos ? std::string_view{}
                                           : rest.substr(space + 1);
    return token;
  };
  const std::string_view magic = take_token();
  if (magic != kMagic) {
    throw poison("bad magic '" + std::string(magic) + "' (expected '" +
                 std::string(kMagic) + "')");
  }
  const std::string_view version = take_token();
  if (version != kVersion) {
    throw poison("unsupported frame version '" + std::string(version) + "'");
  }
  const std::string_view type_token = take_token();
  FrameType type;
  try {
    type = frame_type_from_string(type_token);
  } catch (const DataError& e) {
    throw poison(e.what());
  }
  const std::string_view length_token = rest;
  std::uint64_t length = 0;
  const auto [ptr, ec] = std::from_chars(
      length_token.data(), length_token.data() + length_token.size(), length);
  if (length_token.empty() || ec != std::errc{} ||
      ptr != length_token.data() + length_token.size()) {
    throw poison("bad payload length '" + std::string(length_token) + "'");
  }
  if (length > kMaxFramePayload) {
    throw poison("payload length " + std::to_string(length) + " exceeds the " +
                 std::to_string(kMaxFramePayload) + "-byte cap");
  }

  const std::size_t frame_end = newline + 1 + static_cast<std::size_t>(length);
  if (buffer_.size() < frame_end) return std::nullopt;  // payload still coming
  Frame frame;
  frame.type = type;
  frame.payload = buffer_.substr(newline + 1, static_cast<std::size_t>(length));
  buffer_.erase(0, frame_end);
  return frame;
}

#if WB_FLEET_HAS_PROCESSES

void ignore_sigpipe() { std::signal(SIGPIPE, SIG_IGN); }

std::optional<Frame> read_frame(int fd, FrameDecoder& decoder) {
  if (std::optional<Frame> frame = decoder.next()) return frame;
  char chunk[64 * 1024];
  while (true) {
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw DataError(std::string("frame read failed: ") +
                      std::strerror(errno));
    }
    if (n == 0) {
      WB_REQUIRE_MSG(decoder.idle(),
                     "peer closed the stream mid-frame ("
                         << decoder.buffered_bytes() << " bytes buffered)");
      return std::nullopt;
    }
    decoder.feed(chunk, static_cast<std::size_t>(n));
    if (std::optional<Frame> frame = decoder.next()) return frame;
  }
}

void write_frame(int fd, const Frame& frame) {
  const std::string wire = encode_frame(frame);
  std::size_t written = 0;
  while (written < wire.size()) {
    const ssize_t n = ::write(fd, wire.data() + written, wire.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw DataError(std::string("frame write failed: ") +
                      std::strerror(errno));
    }
    written += static_cast<std::size_t>(n);
  }
}

#endif  // WB_FLEET_HAS_PROCESSES

}  // namespace wb::fleet
