// The fleet controller: a fault-tolerant driver for long-running sharded
// sweeps (wbsim fleet run).
//
// PRs 4–5 built every ingredient of distributed exploration — versioned
// shard spec/result/manifest formats, fingerprint-guarded merges,
// present/missing/foreign classification — but a human still drove the
// plan → run → merge loop, and a lost worker meant a manually re-issued
// shard. This controller owns that loop end to end:
//
//   - it holds a queue of plans (each: a manifest + one spec document per
//     shard, exactly what `wbsim shard-plan` writes) and serves several
//     concurrently — workers are plan-agnostic, every spec document is
//     self-describing;
//   - it spawns K persistent worker processes through an injected launcher
//     and speaks the length-prefixed frame protocol (src/fleet/transport.h)
//     to them over pipes;
//   - it polls completion with per-dispatch deadlines and per-worker
//     heartbeat clocks, and re-issues timed-out or lost shards to another
//     worker under exponential backoff;
//   - it folds results in as they arrive under the plan-fingerprint guard
//     (a result whose fingerprint matches no live plan, or whose shard
//     already completed, is discarded as foreign/stale — never merged), and
//     produces each plan's totals with shard::merge_shard_results, so the
//     merged report obeys exactly the oracle-equivalence contract of
//     src/wb/shard.h.
//
// Failure semantics (the asynchrony-plus-crash model of Gafni–Losa's "Time
// is not a Healer": a silent worker and a slow worker are indistinguishable,
// so every suspicion must stay safe to be wrong about):
//
//   worker EOF / SIGKILL     -> worker is dead: reap it, re-queue its shard,
//                               respawn a replacement while budget remains
//   heartbeat silence        -> worker is *suspect*: its shard is re-issued
//                               elsewhere, but the link stays open — a
//                               late result is still accepted if the shard
//                               is not done (first valid result wins; both
//                               runs of one spec are bit-identical), and a
//                               worker that speaks again is rehabilitated
//   dispatch deadline passed -> worker is presumed wedged: killed like EOF
//   malformed frame          -> the link cannot be resynchronized: killed
//   error frame              -> the worker is healthy, the shard failed:
//                               re-queue with backoff until max_attempts
//
// PR 7 adds remote workers: a SocketListener handed to run_fleet turns
// accepted connections into endpoints on the same frame loop. Remote
// lifecycle differs from local in exactly the ways a network differs from a
// pipe:
//
//   accepted connection      -> *handshaking*, not dispatchable: nothing is
//                               sent until a hello validates (version skew
//                               and an untenable heartbeat interval are
//                               refused with an error frame, up front)
//   hello v2 identity        -> host/pid is stable across redials, so a
//                               reconnecting worker is recognized and
//                               re-admitted (its stale slot is superseded);
//                               its first frame may redeliver a result the
//                               partition swallowed — merged if the shard is
//                               open, discarded as stale if not, both safe
//   remote link loss         -> the *link* is dead, not provably the worker:
//                               its shard is re-queued after a drain grace
//                               (time for a redelivery to land first) and no
//                               respawn is spent — dial-ins are awaited, not
//                               forked; attrition shifts load to survivors
//   zero workers + listener  -> the fleet waits for dial-ins instead of
//                               failing: a full partition heals when the
//                               other side redials
//
// Because a shard's result is a deterministic function of its spec, every
// retry path above preserves the bit-identical-to-`exhaustive:1` guarantee;
// tests/fleet/controller_test.cpp injects each fault and pins that.
#pragma once

#include "src/fleet/transport.h"

#if WB_FLEET_HAS_PROCESSES

#include <sys/types.h>

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/wb/shard.h"

namespace wb::fleet {

/// One plan for the fleet to serve: its manifest plus the serialized spec
/// document of every shard, in shard order. run_fleet verifies each
/// document's hash against the manifest before dispatching anything, so a
/// swapped or corrupted spec file is caught up front, not after a sweep.
struct PlanInputs {
  std::string name;  // label for reports/observer lines
  shard::ShardManifest manifest;
  std::vector<std::string> spec_documents;
};

struct FleetOptions {
  /// Worker processes to launch up front.
  std::size_t workers = 4;
  /// A busy worker silent for longer than this is suspect: its shard is
  /// re-issued to another worker (the link stays open — see file comment).
  std::chrono::milliseconds heartbeat_timeout{2000};
  /// Hard per-dispatch bound: a worker still holding a shard this long
  /// after dispatch is killed and replaced.
  std::chrono::milliseconds shard_deadline{120000};
  /// Exponential backoff for re-issues of one shard: attempt k waits
  /// backoff_base * 2^(k-1), capped at backoff_max.
  std::chrono::milliseconds backoff_base{100};
  std::chrono::milliseconds backoff_max{5000};
  /// Dispatch attempts per shard before its plan is declared failed.
  int max_attempts = 5;
  /// Replacement workers the controller may spawn after losses. When the
  /// budget is exhausted the fleet degrades to the surviving workers; a
  /// plan fails only when no worker is left to run its pending shards.
  /// Remote dial-ins never spend this budget — they are awaited, not forked.
  std::size_t max_respawns = 8;
  /// After a remote link is lost, its in-flight shard waits this long before
  /// re-issue: a quickly-redialing worker redelivers the finished result in
  /// that window and the re-sweep never happens. Also bounds how long
  /// teardown waits for a remote to drain after its shutdown frame.
  std::chrono::milliseconds drain_grace{500};
};

/// A spawned worker process and the two pipe ends the controller owns — or,
/// for a remote worker, one socket fd in both slots (pid stays -1).
struct WorkerEndpoint {
  pid_t pid = -1;
  int to_worker_fd = -1;
  int from_worker_fd = -1;
  /// True for an accepted socket connection: no child to signal or reap, one
  /// fd to close, losses re-queue after drain_grace and spend no respawn.
  bool remote = false;
};

/// Launch worker number `index` (indices are never reused). Throwing
/// wb::DataError means the launch failed; the controller degrades.
using WorkerLauncher = std::function<WorkerEndpoint(std::size_t index)>;

/// Observation hooks for logging and fault-injection tests. Any callback
/// may be empty. They fire from the controller's (single) thread.
struct FleetObserver {
  std::function<void(std::size_t worker, pid_t pid)> on_spawn;
  std::function<void(std::size_t worker, const std::string& plan,
                     std::uint32_t shard, int attempt)>
      on_dispatch;
  std::function<void(std::size_t worker, const std::string& reason)>
      on_worker_lost;
  /// A shard re-queued after a loss, timeout, or error frame.
  std::function<void(const std::string& plan, std::uint32_t shard,
                     const std::string& reason)>
      on_requeue;
  std::function<void(const std::string& plan, std::uint32_t shard)> on_result;
  /// A result frame that was not merged: stale (shard already done),
  /// foreign (fingerprint matches no plan), or invalid.
  std::function<void(std::size_t worker, const std::string& reason)>
      on_discard;
  /// A connection was accepted from `peer` — not yet dispatchable.
  std::function<void(std::size_t worker, const std::string& peer)> on_accept;
  /// A remote connection's hello validated and the worker joined the fleet.
  /// `reconnected` means its host/pid identity was seen before — this is a
  /// known worker redialing after a partition, not a stranger.
  std::function<void(std::size_t worker, const HelloInfo& hello,
                     bool reconnected)>
      on_admit;
  /// Per-host accounting, fired once per host at teardown ("local" covers
  /// launcher-spawned workers). `admitted` counts admissions including
  /// re-admissions, `lost` counts losses, `results` counts merged results.
  std::function<void(const std::string& host, std::size_t admitted,
                     std::size_t lost, std::size_t results)>
      on_host_summary;
};

/// What became of one plan.
struct PlanOutcome {
  std::string name;
  bool completed = false;        // every shard merged
  bool budget_exceeded = false;  // the serial oracle would have thrown too
  /// Valid iff completed && !budget_exceeded.
  shard::MergedResult merged{};
  std::string error;        // non-empty when !completed
  std::size_t reissues = 0; // shards dispatched more than once
};

class SocketListener;

/// Serve every plan to completion (or failure) over a fleet of worker
/// processes. Blocks; returns one outcome per plan, in input order. Workers
/// receive shutdown frames and are reaped before returning. Throws
/// wb::DataError only for broken inputs (e.g. a spec document whose hash
/// contradicts its manifest) — worker failures never escape as exceptions.
///
/// With a `listener`, connections accepted on it join the fleet as remote
/// workers after their hello validates; the listener is closed before
/// teardown. options.workers may then be 0 (and `launcher` empty): an
/// all-dial-in fleet that waits for workers instead of failing when none are
/// connected.
[[nodiscard]] std::vector<PlanOutcome> run_fleet(
    const std::vector<PlanInputs>& plans, const FleetOptions& options,
    const WorkerLauncher& launcher, const FleetObserver& observer = {},
    SocketListener* listener = nullptr);

}  // namespace wb::fleet

#endif  // WB_FLEET_HAS_PROCESSES
