#include "src/fleet/worker.h"

#if WB_FLEET_HAS_PROCESSES

#include <unistd.h>

#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <thread>

#include "src/support/check.h"

namespace wb::fleet {

namespace {

/// All frame writes go through one mutex so a heartbeat from the sidecar
/// thread can never interleave into the middle of a result frame.
class FrameChannel {
 public:
  explicit FrameChannel(int fd) : fd_(fd) {}
  void send(const Frame& frame) {
    const std::lock_guard<std::mutex> lock(mu_);
    write_frame(fd_, frame);
  }

 private:
  int fd_;
  std::mutex mu_;
};

/// Emits heartbeat frames every `interval` until stopped. Write failures are
/// swallowed: the controller going away mid-sweep is detected by the main
/// loop's next send, and a heartbeat must never crash a sweep.
class HeartbeatPump {
 public:
  HeartbeatPump(FrameChannel& channel, std::chrono::milliseconds interval)
      : channel_(channel), interval_(interval) {
    if (interval_.count() <= 0) return;
    thread_ = std::thread([this] { run(); });
  }

  ~HeartbeatPump() {
    if (!thread_.joinable()) return;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  void run() {
    std::unique_lock<std::mutex> lock(mu_);
    while (!cv_.wait_for(lock, interval_, [this] { return stop_; })) {
      lock.unlock();
      try {
        channel_.send(Frame{FrameType::kHeartbeat, {}});
      } catch (const DataError&) {
        // Controller gone; the sweep's own result send will notice.
      }
      lock.lock();
    }
  }

  FrameChannel& channel_;
  std::chrono::milliseconds interval_;
  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace

int run_worker(int in_fd, int out_fd, const ShardRunner& runner,
               const WorkerOptions& options) {
  ignore_sigpipe();
  FrameChannel channel(out_fd);
  FrameDecoder decoder;
  bool first_spec = true;
  try {
    channel.send(Frame{FrameType::kHello,
                       "pid " + std::to_string(::getpid()) + "\n"});
    while (true) {
      const std::optional<Frame> frame = read_frame(in_fd, decoder);
      if (!frame.has_value()) return 0;  // EOF: controller is gone
      switch (frame->type) {
        case FrameType::kShutdown:
          return 0;
        case FrameType::kSpec: {
          // Heartbeats cover the whole service of the spec — parse, the
          // injected stall, and the sweep — so the controller's liveness
          // clock never depends on shard size.
          HeartbeatPump pump(channel, options.heartbeat_interval);
          if (first_spec && options.stall_first.count() > 0) {
            std::this_thread::sleep_for(options.stall_first);
          }
          first_spec = false;
          try {
            const shard::ShardSpec spec =
                shard::parse_shard_spec(frame->payload);
            const shard::ShardResult result = runner(spec, options.threads);
            channel.send(
                Frame{FrameType::kResult, shard::serialize(result)});
          } catch (const DataError& e) {
            channel.send(Frame{FrameType::kError, e.what()});
          } catch (const LogicError& e) {
            channel.send(Frame{FrameType::kError, e.what()});
          }
          break;
        }
        case FrameType::kHello:
        case FrameType::kHeartbeat:
          break;  // harmless from a controller; ignore
        case FrameType::kResult:
        case FrameType::kError:
          // A controller never sends these; a peer that does is confused
          // enough that continuing would serve garbage.
          std::fprintf(stderr,
                       "fleet worker: unexpected %s frame from controller\n",
                       std::string(to_string(frame->type)).c_str());
          return 2;
      }
    }
  } catch (const DataError& e) {
    std::fprintf(stderr, "fleet worker: %s\n", e.what());
    return 2;
  }
}

}  // namespace wb::fleet

#endif  // WB_FLEET_HAS_PROCESSES
