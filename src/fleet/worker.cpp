#include "src/fleet/worker.h"

#if WB_FLEET_HAS_PROCESSES

#include <sys/socket.h>
#include <unistd.h>

#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <thread>

#include "src/support/check.h"

namespace wb::fleet {

namespace {

/// All frame writes go through one mutex so a heartbeat from the sidecar
/// thread can never interleave into the middle of a result frame.
class FrameChannel {
 public:
  explicit FrameChannel(int fd) : fd_(fd) {}
  void send(const Frame& frame) {
    const std::lock_guard<std::mutex> lock(mu_);
    write_frame(fd_, frame);
  }

 private:
  int fd_;
  std::mutex mu_;
};

/// Emits heartbeat frames every `interval` until stopped. Write failures are
/// swallowed: the controller going away mid-sweep is detected by the main
/// loop's next send, and a heartbeat must never crash a sweep.
class HeartbeatPump {
 public:
  HeartbeatPump(FrameChannel& channel, std::chrono::milliseconds interval)
      : channel_(channel), interval_(interval) {
    if (interval_.count() <= 0) return;
    thread_ = std::thread([this] { run(); });
  }

  ~HeartbeatPump() {
    if (!thread_.joinable()) return;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  void run() {
    std::unique_lock<std::mutex> lock(mu_);
    while (!cv_.wait_for(lock, interval_, [this] { return stop_; })) {
      lock.unlock();
      try {
        channel_.send(Frame{FrameType::kHeartbeat, {}});
      } catch (const DataError&) {
        // Controller gone; the sweep's own result send will notice.
      }
      lock.lock();
    }
  }

  FrameChannel& channel_;
  std::chrono::milliseconds interval_;
  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Fault injection: hard-shutdown(2) `fd` after a delay unless stopped
/// first. Leaves the fd number alive (no close) so nothing double-closes —
/// only the link is dead, exactly like a severed cable.
class SeverTimer {
 public:
  SeverTimer(int fd, std::chrono::milliseconds after) : fd_(fd) {
    if (after.count() <= 0) return;
    thread_ = std::thread([this, after] {
      std::unique_lock<std::mutex> lock(mu_);
      if (!cv_.wait_for(lock, after, [this] { return stop_; })) {
        ::shutdown(fd_, SHUT_RDWR);
      }
    });
  }

  ~SeverTimer() {
    if (!thread_.joinable()) return;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  int fd_;
  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

std::string local_hostname() {
  char buffer[256] = {0};
  if (::gethostname(buffer, sizeof buffer - 1) != 0) return "unknown-host";
  return buffer;
}

}  // namespace

SessionResult serve_worker(int in_fd, int out_fd, const ShardRunner& runner,
                           const WorkerOptions& options,
                           std::string pending_result) {
  ignore_sigpipe();
  FrameChannel channel(out_fd);
  FrameDecoder decoder;
  SeverTimer sever(in_fd, options.sever_after);
  bool first_spec = true;
  std::string pending = std::move(pending_result);
  try {
    HelloInfo hello;
    hello.version = kHelloVersion;
    hello.host = options.hostname.empty() ? local_hostname() : options.hostname;
    hello.pid = ::getpid();
    hello.threads = options.threads;
    hello.heartbeat_ms = options.heartbeat_interval.count();
    channel.send(Frame{FrameType::kHello, serialize_hello(hello)});
    if (!pending.empty()) {
      // Redelivery of the previous session's unacknowledged result. If the
      // shard was merged in the meantime the controller discards it as
      // stale — both runs are bit-identical, so either way is correct.
      channel.send(Frame{FrameType::kResult, pending});
    }
    while (true) {
      const std::optional<Frame> frame = read_frame(in_fd, decoder);
      if (!frame.has_value()) {
        return {SessionEnd::kEof, std::move(pending)};
      }
      switch (frame->type) {
        case FrameType::kShutdown:
          return {SessionEnd::kShutdown, {}};
        case FrameType::kAck:
          pending.clear();
          break;
        case FrameType::kSpec: {
          // Heartbeats cover the whole service of the spec — parse, the
          // injected stall, and the sweep — so the controller's liveness
          // clock never depends on shard size.
          HeartbeatPump pump(channel, options.heartbeat_interval);
          if (first_spec && options.stall_first.count() > 0) {
            std::this_thread::sleep_for(options.stall_first);
          }
          first_spec = false;
          try {
            const shard::ShardSpec spec =
                shard::parse_shard_spec(frame->payload);
            const shard::ShardResult result = runner(spec, options.threads);
            // Held until the controller acks it: a link that dies between
            // this send and the ack leaves the result redeliverable.
            pending = shard::serialize(result);
            channel.send(Frame{FrameType::kResult, pending});
          } catch (const StreamError&) {
            throw;  // link loss mid-send: pending survives for redelivery
          } catch (const DataError& e) {
            channel.send(Frame{FrameType::kError, e.what()});
          } catch (const LogicError& e) {
            channel.send(Frame{FrameType::kError, e.what()});
          }
          break;
        }
        case FrameType::kHello:
        case FrameType::kHeartbeat:
          break;  // harmless from a controller; ignore
        case FrameType::kError:
          // The controller refused us — e.g. a heartbeat interval its
          // timeout cannot tolerate, announced at handshake. Redialing
          // would be refused again.
          std::fprintf(stderr, "fleet worker: refused by controller: %s\n",
                       frame->payload.c_str());
          return {SessionEnd::kProtocolError, std::move(pending)};
        case FrameType::kResult:
          // A controller never sends these; a peer that does is confused
          // enough that continuing would serve garbage.
          std::fprintf(stderr,
                       "fleet worker: unexpected %s frame from controller\n",
                       std::string(to_string(frame->type)).c_str());
          return {SessionEnd::kProtocolError, std::move(pending)};
      }
    }
  } catch (const StreamError&) {
    // Link loss, not malformed data: the session is over but the worker is
    // healthy — a dial-in worker redials with the pending result.
    return {SessionEnd::kEof, std::move(pending)};
  } catch (const DataError& e) {
    std::fprintf(stderr, "fleet worker: %s\n", e.what());
    return {SessionEnd::kProtocolError, std::move(pending)};
  }
}

int run_worker(int in_fd, int out_fd, const ShardRunner& runner,
               const WorkerOptions& options) {
  const SessionResult session = serve_worker(in_fd, out_fd, runner, options);
  return session.end == SessionEnd::kProtocolError ? 2 : 0;
}

}  // namespace wb::fleet

#endif  // WB_FLEET_HAS_PROCESSES
