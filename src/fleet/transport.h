// Length-prefixed framing for the fleet controller's worker links.
//
// The shard layer's v2 documents (wbshard-spec / wbshard-result, see
// src/wb/shard.h) are self-describing text — the ROADMAP's observation is
// that length-prefixing them is all it takes to move them over a byte
// stream. A frame is one ASCII header line followed by an exact payload:
//
//   wbframe v1 <type> <length>\n<length bytes of payload>
//
// where <type> is one of the tokens below and <length> is the decimal
// payload size. The header is bounded (kMaxHeaderBytes) and the payload is
// capped (kMaxFramePayload), so a garbage, truncated, or hostile length
// prefix is rejected with a wb::DataError diagnostic — never a hang, an
// unbounded allocation, or a crash (tests/fleet/transport_test.cpp pins the
// rejection cases next to the shard layer's v2 ones).
//
// FrameDecoder is incremental: feed() whatever bytes poll()+read() produced,
// next() pops complete frames. That is the controller's consumption shape —
// one decoder per worker pipe, fed nonblockingly. The blocking read_frame /
// write_frame helpers are the worker-process side, where stdin/stdout are a
// dedicated control channel and blocking is correct.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace wb::fleet {

/// Frame vocabulary of the controller<->worker protocol:
///   controller -> worker: kSpec (a serialized wbshard-spec to sweep),
///                         kShutdown (drain and exit)
///   worker -> controller: kHello (alive, ready for work), kHeartbeat
///                         (still sweeping), kResult (a serialized
///                         wbshard-result), kError (sweep failed; payload is
///                         the diagnostic)
enum class FrameType : std::uint8_t {
  kHello,
  kSpec,
  kResult,
  kHeartbeat,
  kShutdown,
  kError,
};

[[nodiscard]] std::string_view to_string(FrameType type);
/// Throws wb::DataError on a token that is not a frame type.
[[nodiscard]] FrameType frame_type_from_string(std::string_view token);

struct Frame {
  FrameType type = FrameType::kHello;
  std::string payload;
  friend bool operator==(const Frame&, const Frame&) = default;
};

/// Header line bound: "wbframe v1 heartbeat 268435456\n" is 31 bytes; 64
/// leaves headroom without letting a stream that never sends '\n' buffer
/// forever.
inline constexpr std::size_t kMaxHeaderBytes = 64;
/// Payload cap. The largest legitimate frame is an exact-mode result at the
/// default 2M-execution budget (~75 MiB of hash lines); 256 MiB bounds the
/// allocation a corrupt or hostile length prefix can demand.
inline constexpr std::size_t kMaxFramePayload = 256u << 20;

/// The canonical wire form: header line + payload, exactly as specified
/// above. Throws wb::LogicError if payload exceeds kMaxFramePayload (a
/// sender bug, not a data error).
[[nodiscard]] std::string encode_frame(const Frame& frame);

/// Incremental frame parser. feed() buffers bytes; next() pops the earliest
/// complete frame, or std::nullopt when more bytes are needed. Malformed
/// input — bad magic, unsupported version, unknown type, non-numeric or
/// oversized length, an unterminated header — throws wb::DataError from
/// next(); the decoder is then poisoned (every later call rethrows), because
/// a framing error leaves no way to resynchronize the stream.
class FrameDecoder {
 public:
  void feed(const char* data, std::size_t n) { buffer_.append(data, n); }
  void feed(std::string_view data) { buffer_.append(data); }

  [[nodiscard]] std::optional<Frame> next();

  /// True when no partial frame is buffered — EOF here is a clean close;
  /// EOF with idle() false means the peer died mid-frame.
  [[nodiscard]] bool idle() const { return buffer_.empty() && !poisoned_; }

  [[nodiscard]] std::size_t buffered_bytes() const { return buffer_.size(); }

 private:
  std::string buffer_;
  bool poisoned_ = false;
  std::string poison_reason_;
};

#if defined(__unix__) || defined(__APPLE__)
#define WB_FLEET_HAS_PROCESSES 1

/// Make writes to a closed pipe fail with EPIPE instead of killing the
/// process with SIGPIPE. Idempotent; call once per process before using the
/// fd helpers below.
void ignore_sigpipe();

/// Blocking read of the next frame from `fd` through `decoder`. Returns
/// std::nullopt on EOF at a frame boundary; throws wb::DataError on EOF
/// mid-frame or on malformed framing.
[[nodiscard]] std::optional<Frame> read_frame(int fd, FrameDecoder& decoder);

/// Write one frame to `fd`, retrying short writes. Throws wb::DataError when
/// the peer is gone (EPIPE) or the fd errors out.
void write_frame(int fd, const Frame& frame);

#else
#define WB_FLEET_HAS_PROCESSES 0
#endif

}  // namespace wb::fleet
