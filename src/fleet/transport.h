// Length-prefixed framing for the fleet controller's worker links.
//
// The shard layer's v2 documents (wbshard-spec / wbshard-result, see
// src/wb/shard.h) are self-describing text — the ROADMAP's observation is
// that length-prefixing them is all it takes to move them over a byte
// stream. A frame is one ASCII header line followed by an exact payload:
//
//   wbframe v1 <type> <length>\n<length bytes of payload>
//
// where <type> is one of the tokens below and <length> is the decimal
// payload size. The header is bounded (kMaxHeaderBytes) and the payload is
// capped (kMaxFramePayload), so a garbage, truncated, or hostile length
// prefix is rejected with a wb::DataError diagnostic — never a hang, an
// unbounded allocation, or a crash (tests/fleet/transport_test.cpp pins the
// rejection cases next to the shard layer's v2 ones).
//
// FrameDecoder is incremental: feed() whatever bytes poll()+read() produced,
// next() pops complete frames. That is the controller's consumption shape —
// one decoder per worker pipe, fed nonblockingly. The blocking read_frame /
// write_frame helpers are the worker-process side, where stdin/stdout are a
// dedicated control channel and blocking is correct.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "src/support/check.h"

namespace wb::fleet {

/// IO-level stream failure: EOF mid-frame, a dead peer, a read or write
/// error. Distinct from plain wb::DataError (malformed framing) because the
/// two demand different responses from a socket worker — a lost link is
/// redialed, a peer that sent garbage is abandoned. Callers that treat both
/// the same can keep catching DataError.
class StreamError : public DataError {
 public:
  explicit StreamError(const std::string& what) : DataError(what) {}
};

/// Frame vocabulary of the controller<->worker protocol:
///   controller -> worker: kSpec (a serialized wbshard-spec to sweep),
///                         kAck (the worker's last result was consumed —
///                         merged or deliberately discarded — so the worker
///                         may drop its redelivery copy), kShutdown (drain
///                         and exit)
///   worker -> controller: kHello (alive, ready for work; payload is a
///                         hello document, see HelloInfo), kHeartbeat
///                         (still sweeping), kResult (a serialized
///                         wbshard-result), kError (sweep failed; payload is
///                         the diagnostic)
enum class FrameType : std::uint8_t {
  kHello,
  kSpec,
  kResult,
  kHeartbeat,
  kShutdown,
  kError,
  kAck,
};

[[nodiscard]] std::string_view to_string(FrameType type);
/// Throws wb::DataError on a token that is not a frame type.
[[nodiscard]] FrameType frame_type_from_string(std::string_view token);

struct Frame {
  FrameType type = FrameType::kHello;
  std::string payload;
  friend bool operator==(const Frame&, const Frame&) = default;
};

/// Header line bound: "wbframe v1 heartbeat 268435456\n" is 31 bytes; 64
/// leaves headroom without letting a stream that never sends '\n' buffer
/// forever.
inline constexpr std::size_t kMaxHeaderBytes = 64;
/// Payload cap. The largest legitimate frame is an exact-mode result at the
/// default 2M-execution budget (~75 MiB of hash lines); 256 MiB bounds the
/// allocation a corrupt or hostile length prefix can demand.
inline constexpr std::size_t kMaxFramePayload = 256u << 20;

/// The canonical wire form: header line + payload, exactly as specified
/// above. Throws wb::LogicError if payload exceeds kMaxFramePayload (a
/// sender bug, not a data error).
[[nodiscard]] std::string encode_frame(const Frame& frame);

/// Incremental frame parser. feed() buffers bytes; next() pops the earliest
/// complete frame, or std::nullopt when more bytes are needed. Malformed
/// input — bad magic, unsupported version, unknown type, non-numeric or
/// oversized length, an unterminated header — throws wb::DataError from
/// next(); the decoder is then poisoned (every later call rethrows), because
/// a framing error leaves no way to resynchronize the stream.
class FrameDecoder {
 public:
  void feed(const char* data, std::size_t n) { buffer_.append(data, n); }
  void feed(std::string_view data) { buffer_.append(data); }

  [[nodiscard]] std::optional<Frame> next();

  /// True when no partial frame is buffered — EOF here is a clean close;
  /// EOF with idle() false means the peer died mid-frame.
  [[nodiscard]] bool idle() const { return buffer_.empty() && !poisoned_; }

  [[nodiscard]] std::size_t buffered_bytes() const { return buffer_.size(); }

 private:
  std::string buffer_;
  bool poisoned_ = false;
  std::string poison_reason_;
};

// --- the hello handshake document -------------------------------------------

/// What a worker announces about itself in its hello frame. Two payload
/// generations coexist on the wire:
///
///   v1 (PR 6 workers): freeform or empty payload — accepted as an
///      *anonymous local*: no identity, no handshake validation, never
///      recognized across reconnects.
///   v2: a structured document,
///
///        wbhello v2
///        host <hostname>
///        pid <pid>
///        threads <n>
///        heartbeat-ms <n>
///
///      carrying the worker's identity (host + pid — stable across redials
///      of one process, so a reconnecting worker is re-admitted instead of
///      treated as a stranger) and its heartbeat interval, which the
///      controller validates against its own --heartbeat-timeout-ms at
///      handshake time: a pair that would flap between suspect and
///      rehabilitated is refused up front.
///
/// A "wbhello" document of any *other* version is rejected (version skew —
/// an old controller must refuse a future worker loudly, not misparse it).
/// Unknown keys in a v2 document are ignored, so v2 can grow fields.
struct HelloInfo {
  int version = 1;
  std::string host;            // empty for v1/anonymous
  std::int64_t pid = -1;       // -1 for v1/anonymous
  std::size_t threads = 0;     // sweep threads the worker will use
  std::int64_t heartbeat_ms = -1;  // -1 unknown (v1), 0 disabled

  /// "host/pid" for v2, "" for v1 — the reconnect-recognition key.
  [[nodiscard]] std::string identity() const;

  friend bool operator==(const HelloInfo&, const HelloInfo&) = default;
};

inline constexpr int kHelloVersion = 2;

/// The v2 document above. WB_CHECKs version == kHelloVersion.
[[nodiscard]] std::string serialize_hello(const HelloInfo& info);

/// Parse a hello frame payload of either generation (see HelloInfo). Throws
/// wb::DataError on a "wbhello" document whose version is not v2 or whose
/// required fields are missing/garbled; any payload that is not a "wbhello"
/// document at all is a v1 hello (anonymous, never an error).
[[nodiscard]] HelloInfo parse_hello(std::string_view payload);

#if defined(__unix__) || defined(__APPLE__)
#define WB_FLEET_HAS_PROCESSES 1

/// Make writes to a closed pipe fail with EPIPE instead of killing the
/// process with SIGPIPE. Idempotent; call once per process before using the
/// fd helpers below.
void ignore_sigpipe();

/// Blocking read of the next frame from `fd` through `decoder`. Returns
/// std::nullopt on EOF at a frame boundary. Throws StreamError on EOF
/// mid-frame or a read error, plain wb::DataError on malformed framing.
/// EAGAIN on a non-blocking fd is waited out with poll(), so the helper is
/// safe on the controller's non-blocking socket fds too.
[[nodiscard]] std::optional<Frame> read_frame(int fd, FrameDecoder& decoder);

/// Write one frame to `fd`, retrying short writes. On a non-blocking fd a
/// full buffer is waited out with poll() up to kWriteStallTimeoutMs — a peer
/// that stops reading for longer is indistinguishable from a severed link
/// and fails the write. Throws StreamError when the peer is gone (EPIPE),
/// the fd errors out, or the stall timeout passes.
void write_frame(int fd, const Frame& frame);

/// How long write_frame tolerates a full kernel buffer on a non-blocking fd
/// before declaring the link dead.
inline constexpr int kWriteStallTimeoutMs = 10000;

#else
#define WB_FLEET_HAS_PROCESSES 0
#endif

}  // namespace wb::fleet
