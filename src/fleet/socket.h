// The fleet's TCP layer: the listener that turns accepted connections into
// WorkerEndpoints, and the dial-in side of `wbsim fleet worker --connect`.
//
// The controller was built transport-agnostic (PR 6): a worker is a pair of
// fds speaking wbframe v1, and an accepted socket is just another fd pair
// (the same fd twice). This file adds exactly the networking the ROADMAP's
// multi-host item asks for:
//
//   - SocketListener: bind/listen on HOST:PORT (port 0 picks an ephemeral
//     port; bound_address() reports the real one, which `wbsim fleet run
//     --listen` prints so scripts can dial it), accept with CLOEXEC +
//     non-blocking fds ready for the controller's poll loop;
//   - dial(): one blocking TCP connect for the worker side;
//   - run_worker_connect(): the long-running dial-in worker — cycle the
//     address list, serve a session (src/fleet/worker.h), and on link loss
//     redial with exponential backoff, carrying any unacknowledged result
//     across reconnects so a partition costs a redelivery, not a re-sweep.
//     The worker's identity (hello v2 host/pid) is stable across redials,
//     which is what lets the controller re-admit it instead of treating the
//     reconnection as a stranger.
#pragma once

#include "src/fleet/transport.h"

#if WB_FLEET_HAS_PROCESSES

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/fleet/worker.h"

namespace wb::fleet {

/// A HOST:PORT pair. Host may be a numeric address or a resolvable name.
struct SocketAddress {
  std::string host;
  std::uint16_t port = 0;

  friend bool operator==(const SocketAddress&, const SocketAddress&) = default;
};

[[nodiscard]] std::string to_string(const SocketAddress& address);

/// Parse "HOST:PORT". Throws wb::DataError on a missing/garbled port or an
/// empty host.
[[nodiscard]] SocketAddress parse_socket_address(std::string_view text);

/// Parse "HOST:PORT[,HOST:PORT...]" (the --connect grammar).
[[nodiscard]] std::vector<SocketAddress> parse_socket_address_list(
    std::string_view text);

/// A bound, listening TCP socket. Non-copyable; closes on destruction.
class SocketListener {
 public:
  /// Bind and listen. Port 0 asks the kernel for an ephemeral port. Throws
  /// wb::DataError when the address cannot be resolved or bound.
  explicit SocketListener(const SocketAddress& address);
  ~SocketListener();
  SocketListener(const SocketListener&) = delete;
  SocketListener& operator=(const SocketListener&) = delete;

  /// The listening fd, for the controller's poll set. -1 after close().
  [[nodiscard]] int fd() const { return fd_; }

  /// The actually-bound address (real port even when constructed with 0).
  [[nodiscard]] const SocketAddress& bound_address() const { return bound_; }

  /// Accept one pending connection: a non-blocking, CLOEXEC, TCP_NODELAY fd,
  /// or -1 when no connection is pending (call after poll says readable).
  /// `peer` (optional) receives the peer's address for logging. Throws
  /// wb::DataError on a broken listener.
  [[nodiscard]] int accept_connection(std::string* peer = nullptr);

  /// Stop accepting (idempotent). Existing connections are unaffected.
  void close();

 private:
  int fd_ = -1;
  SocketAddress bound_;
};

/// Blocking TCP connect (CLOEXEC, TCP_NODELAY). Throws wb::DataError when
/// the address cannot be resolved or no endpoint accepts.
[[nodiscard]] int dial(const SocketAddress& address);

struct ConnectOptions {
  /// Addresses to try, in order, cycling.
  std::vector<SocketAddress> addresses;
  /// Redial backoff: after a full pass over the address list fails, wait
  /// redial_base * 2^(failures-1), capped at redial_max.
  std::chrono::milliseconds redial_base{100};
  std::chrono::milliseconds redial_max{2000};
  /// Give up after this many consecutive full passes with no connection
  /// (exit code 1). 0 = redial forever (service semantics).
  std::size_t redial_limit = 0;
};

/// The dial-in worker loop: dial, serve a session, redial on link loss with
/// backoff (carrying any unacknowledged result for redelivery), until a
/// shutdown frame (exit 0), a protocol error from the controller — its
/// handshake refusal included — (exit 2), or redial_limit passes without a
/// connection (exit 1). options.stall_first and options.sever_after apply to
/// the first session only.
[[nodiscard]] int run_worker_connect(const ConnectOptions& connect,
                                     const ShardRunner& runner,
                                     const WorkerOptions& options = {});

}  // namespace wb::fleet

#endif  // WB_FLEET_HAS_PROCESSES
