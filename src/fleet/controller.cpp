#include "src/fleet/controller.h"

#if WB_FLEET_HAS_PROCESSES

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <map>
#include <optional>
#include <utility>

#include "src/fleet/socket.h"
#include "src/support/check.h"

namespace wb::fleet {

namespace {

using Clock = std::chrono::steady_clock;
using Millis = std::chrono::milliseconds;

enum class JobState : std::uint8_t { kPending, kInFlight, kDone, kFailed };

struct Job {
  JobState state = JobState::kPending;
  int attempts = 0;             // dispatches so far
  Clock::time_point not_before{};  // earliest re-dispatch (backoff)
  /// The most recent dispatchee — the only worker whose loss re-queues this
  /// job. Earlier (suspect) holders may still deliver a usable result, but
  /// their fate no longer gates progress.
  std::size_t current_worker = SIZE_MAX;
};

struct PlanState {
  const PlanInputs* inputs = nullptr;
  std::vector<Job> jobs;
  std::vector<shard::ShardResult> results;
  std::vector<bool> have_result;
  std::size_t done = 0;
  bool failed = false;
  std::string error;
  std::size_t reissues = 0;
};

/// kHandshaking is remote-only: an accepted connection is not dispatchable
/// until its hello validates. Launcher-spawned locals start kIdle — their
/// process exists the moment the launcher returns, so holding shards back
/// would only add latency (and the hello may have been consumed by the
/// launcher itself).
enum class WorkerHealth : std::uint8_t {
  kHandshaking,
  kIdle,
  kBusy,
  kSuspect,
  kDead,
};

struct Assignment {
  std::size_t plan = 0;
  std::uint32_t shard = 0;
};

struct WorkerState {
  WorkerEndpoint endpoint;
  FrameDecoder decoder;
  WorkerHealth health = WorkerHealth::kIdle;
  std::optional<Assignment> assigned;
  Clock::time_point dispatched_at{};
  Clock::time_point last_heard{};
  /// Accounting key: "local" for launcher-spawned workers, the peer address
  /// for a handshaking remote, the hello host once admitted.
  std::string host = "local";
  /// hello v2 host/pid; empty for locals and anonymous (v1) remotes.
  std::string identity;
};

struct HostStats {
  std::size_t admitted = 0;
  std::size_t lost = 0;
  std::size_t results = 0;
};

class Controller {
 public:
  Controller(const std::vector<PlanInputs>& plans, const FleetOptions& options,
             const WorkerLauncher& launcher, const FleetObserver& observer,
             SocketListener* listener)
      : options_(options),
        launcher_(launcher),
        observer_(observer),
        listener_(listener) {
    plans_.reserve(plans.size());
    for (const PlanInputs& inputs : plans) {
      PlanState state;
      state.inputs = &inputs;
      const std::uint32_t shards = inputs.manifest.shard_count;
      WB_REQUIRE_MSG(inputs.spec_documents.size() == shards,
                     "plan '" << inputs.name << "' carries "
                              << inputs.spec_documents.size()
                              << " spec documents for " << shards
                              << " shards");
      for (std::uint32_t k = 0; k < shards; ++k) {
        WB_REQUIRE_MSG(
            shard::hash_document(inputs.spec_documents[k]) ==
                inputs.manifest.spec_hashes[k],
            "plan '" << inputs.name << "' shard " << k
                     << ": spec document hash contradicts the manifest — "
                        "refusing to dispatch a swapped or corrupted spec");
      }
      state.jobs.resize(shards);
      state.results.resize(shards);
      state.have_result.assign(shards, false);
      plans_.push_back(std::move(state));
    }
    // Results are routed back to their plan by fingerprint, so two live
    // plans with the same fingerprint would be indistinguishable on the
    // wire — one would silently absorb the other's results.
    for (std::size_t i = 0; i < plans_.size(); ++i) {
      for (std::size_t j = i + 1; j < plans_.size(); ++j) {
        WB_REQUIRE_MSG(
            !(plans_[i].inputs->manifest.plan == plans_[j].inputs->manifest.plan),
            "plans '" << plans_[i].inputs->name << "' and '"
                      << plans_[j].inputs->name
                      << "' share a fingerprint — results could not be "
                         "attributed to one of them");
      }
    }
  }

  std::vector<PlanOutcome> run() {
    ignore_sigpipe();
    for (std::size_t i = 0; i < options_.workers; ++i) spawn_worker();
    while (!finished()) {
      if (alive_workers() == 0 && !try_respawn() && !listening()) {
        // With a listener the fleet never gives up on attrition alone: a
        // full partition is indistinguishable from slow redials, and the
        // worker that heals it may be carrying a finished result.
        fail_remaining("no workers left and the respawn budget is exhausted");
        break;
      }
      dispatch_ready_jobs();
      poll_workers();
      enforce_timeouts();
    }
    shutdown_workers();
    report_hosts();
    return collect_outcomes();
  }

 private:
  // --- plan/job bookkeeping ------------------------------------------------

  bool finished() const {
    return std::all_of(plans_.begin(), plans_.end(), [](const PlanState& p) {
      return p.failed || p.done == p.jobs.size();
    });
  }

  void fail_plan(PlanState& plan, const std::string& why) {
    if (plan.failed) return;
    plan.failed = true;
    plan.error = why;
    for (Job& job : plan.jobs) {
      if (job.state != JobState::kDone) job.state = JobState::kFailed;
    }
  }

  void fail_remaining(const std::string& why) {
    for (PlanState& plan : plans_) {
      if (!plan.failed && plan.done != plan.jobs.size()) fail_plan(plan, why);
    }
  }

  Millis backoff_for(int attempts) const {
    // attempt 1 -> base, doubling, capped. attempts counts past dispatches.
    Millis delay = options_.backoff_base;
    for (int i = 1; i < attempts && delay < options_.backoff_max; ++i) {
      delay *= 2;
    }
    return std::min(delay, options_.backoff_max);
  }

  /// `min_delay` floors the re-dispatch wait below the backoff schedule —
  /// the drain grace of a lost remote link, giving a redialing worker's
  /// redelivery a window to land before the shard is swept again.
  void requeue(std::size_t plan_index, std::uint32_t shard,
               const std::string& reason, Millis min_delay = Millis(0)) {
    PlanState& plan = plans_[plan_index];
    Job& job = plan.jobs[shard];
    if (job.state != JobState::kInFlight) return;
    if (job.attempts >= options_.max_attempts) {
      fail_plan(plan, "shard " + std::to_string(shard) + " failed after " +
                          std::to_string(job.attempts) +
                          " attempts (last: " + reason + ")");
      return;
    }
    job.state = JobState::kPending;
    job.not_before =
        Clock::now() + std::max(backoff_for(job.attempts), min_delay);
    job.current_worker = SIZE_MAX;
    if (observer_.on_requeue) {
      observer_.on_requeue(plan.inputs->name, shard, reason);
    }
  }

  // --- worker lifecycle ----------------------------------------------------

  bool listening() const { return listener_ != nullptr && listener_->fd() >= 0; }

  std::size_t alive_workers() const {
    std::size_t n = 0;
    for (const WorkerState& w : workers_) {
      if (w.health != WorkerHealth::kDead) ++n;
    }
    return n;
  }

  bool spawn_worker() {
    if (!launcher_) return false;  // all-dial-in fleet: nothing to fork
    WorkerState state;
    try {
      state.endpoint = launcher_(next_worker_index_);
    } catch (const DataError&) {
      return false;
    }
    ++next_worker_index_;
    state.last_heard = Clock::now();
    workers_.push_back(std::move(state));
    ++hosts_[workers_.back().host].admitted;
    if (observer_.on_spawn) {
      observer_.on_spawn(workers_.size() - 1, workers_.back().endpoint.pid);
    }
    return true;
  }

  bool try_respawn() {
    if (respawns_used_ >= options_.max_respawns) return false;
    if (!launcher_) return false;
    ++respawns_used_;
    return spawn_worker();
  }

  void close_endpoint(WorkerState& w) {
    if (w.endpoint.to_worker_fd >= 0) ::close(w.endpoint.to_worker_fd);
    if (!w.endpoint.remote && w.endpoint.from_worker_fd >= 0) {
      ::close(w.endpoint.from_worker_fd);  // remote: same fd, already closed
    }
    w.endpoint.to_worker_fd = -1;
    w.endpoint.from_worker_fd = -1;
  }

  /// The worker (local: the process; remote: the *link*) is gone. Kill and
  /// reap a local, close fds, re-queue its shard, and spend a respawn if
  /// local and the budget allows. A remote loss spends no respawn — the
  /// worker process may well be alive and redialing, so its shard waits out
  /// drain_grace before re-issue to give a redelivery the first shot.
  void lose_worker(std::size_t index, const std::string& reason) {
    WorkerState& w = workers_[index];
    if (w.health == WorkerHealth::kDead) return;
    const bool remote = w.endpoint.remote;
    if (!remote && w.endpoint.pid > 0) {
      ::kill(w.endpoint.pid, SIGKILL);
      ::waitpid(w.endpoint.pid, nullptr, 0);
    }
    close_endpoint(w);
    w.health = WorkerHealth::kDead;
    ++hosts_[w.host].lost;
    if (observer_.on_worker_lost) observer_.on_worker_lost(index, reason);
    if (w.assigned.has_value()) {
      const Assignment a = *w.assigned;
      w.assigned.reset();
      if (plans_[a.plan].jobs[a.shard].current_worker == index) {
        requeue(a.plan, a.shard, reason,
                remote ? options_.drain_grace : Millis(0));
      }
    }
    if (!remote) try_respawn();
  }

  // --- dispatch ------------------------------------------------------------

  void dispatch_ready_jobs() {
    const Clock::time_point now = Clock::now();
    for (std::size_t wi = 0; wi < workers_.size(); ++wi) {
      // Re-check health after every dispatch attempt: a failed dispatch
      // loses the worker (closing its fds, which a respawned replacement may
      // reuse), so writing to this slot again would hit the wrong process.
      for (std::size_t pi = 0;
           pi < plans_.size() && workers_[wi].health == WorkerHealth::kIdle;
           ++pi) {
        PlanState& plan = plans_[pi];
        if (plan.failed) continue;
        for (std::uint32_t k = 0; k < plan.jobs.size(); ++k) {
          Job& job = plan.jobs[k];
          if (job.state != JobState::kPending || job.not_before > now) {
            continue;
          }
          dispatch(wi, pi, k);
          break;
        }
      }
    }
  }

  bool dispatch(std::size_t worker_index, std::size_t plan_index,
                std::uint32_t shard) {
    WorkerState& w = workers_[worker_index];
    PlanState& plan = plans_[plan_index];
    Job& job = plan.jobs[shard];
    try {
      write_frame(w.endpoint.to_worker_fd,
                  Frame{FrameType::kSpec, plan.inputs->spec_documents[shard]});
    } catch (const DataError& e) {
      lose_worker(worker_index, std::string("dispatch write failed: ") +
                                    e.what());
      return false;
    }
    job.state = JobState::kInFlight;
    job.current_worker = worker_index;
    ++job.attempts;
    if (job.attempts > 1) ++plan.reissues;
    w.health = WorkerHealth::kBusy;
    w.assigned = Assignment{plan_index, shard};
    w.dispatched_at = Clock::now();
    w.last_heard = w.dispatched_at;
    if (observer_.on_dispatch) {
      observer_.on_dispatch(worker_index, plan.inputs->name, shard,
                            job.attempts);
    }
    return true;
  }

  // --- event loop ----------------------------------------------------------

  void poll_workers() {
    std::vector<pollfd> fds;
    std::vector<std::size_t> owners;  // SIZE_MAX marks the listener's slot
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      if (workers_[i].health == WorkerHealth::kDead) continue;
      fds.push_back(pollfd{workers_[i].endpoint.from_worker_fd, POLLIN, 0});
      owners.push_back(i);
    }
    if (listening()) {
      fds.push_back(pollfd{listener_->fd(), POLLIN, 0});
      owners.push_back(SIZE_MAX);
    }
    if (fds.empty()) return;
    const int timeout = static_cast<int>(
        std::clamp<std::int64_t>(next_wakeup_in_ms(), 1, 200));
    const int ready = ::poll(fds.data(), fds.size(), timeout);
    if (ready <= 0) return;
    for (std::size_t i = 0; i < fds.size(); ++i) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      if (owners[i] == SIZE_MAX) {
        accept_connections();
      } else {
        drain_worker(owners[i]);
      }
    }
  }

  void accept_connections() {
    while (true) {
      std::string peer;
      int fd = -1;
      try {
        fd = listener_->accept_connection(&peer);
      } catch (const DataError&) {
        return;  // broken listener: surviving workers carry on
      }
      if (fd < 0) return;
      WorkerState state;
      state.endpoint.remote = true;
      state.endpoint.to_worker_fd = fd;
      state.endpoint.from_worker_fd = fd;
      state.health = WorkerHealth::kHandshaking;
      state.host = peer;
      state.last_heard = Clock::now();
      workers_.push_back(std::move(state));
      if (observer_.on_accept) observer_.on_accept(workers_.size() - 1, peer);
    }
  }

  /// A handshaking remote's first frame must be a hello that validates;
  /// anything the controller cannot live with is refused with an error frame
  /// so the worker knows not to redial.
  void admit_remote(std::size_t index, const std::string& payload) {
    WorkerState& w = workers_[index];
    HelloInfo hello;
    try {
      hello = parse_hello(payload);
    } catch (const DataError& e) {
      refuse_remote(index, e.what());
      return;
    }
    if (hello.heartbeat_ms > 0 &&
        Millis(hello.heartbeat_ms) >= options_.heartbeat_timeout) {
      refuse_remote(index,
                    "worker heartbeat interval " +
                        std::to_string(hello.heartbeat_ms) +
                        "ms is not under the controller's heartbeat timeout " +
                        std::to_string(options_.heartbeat_timeout.count()) +
                        "ms — every sweep would be suspected; fix the "
                        "--heartbeat-ms/--heartbeat-timeout-ms pair");
      return;
    }
    bool reconnected = false;
    const std::string identity = hello.identity();
    if (!identity.empty()) {
      const auto it = identity_to_worker_.find(identity);
      if (it != identity_to_worker_.end() && it->second != index) {
        reconnected = true;
        WorkerState& old = workers_[it->second];
        if (old.health != WorkerHealth::kDead) {
          // The worker redialed before we noticed the old link die (e.g. a
          // half-open connection). The new link is the live one; the old
          // slot is a ghost.
          lose_worker(it->second, "superseded by a reconnect from " + identity);
        }
      }
      identity_to_worker_[identity] = index;
      w.identity = identity;
    }
    if (!hello.host.empty()) w.host = hello.host;
    w.health = WorkerHealth::kIdle;
    ++hosts_[w.host].admitted;
    if (observer_.on_admit) observer_.on_admit(index, hello, reconnected);
  }

  void refuse_remote(std::size_t index, const std::string& why) {
    WorkerState& w = workers_[index];
    try {
      write_frame(w.endpoint.to_worker_fd, Frame{FrameType::kError, why});
    } catch (const DataError&) {
      // It will find out from the close instead.
    }
    lose_worker(index, "handshake refused: " + why);
  }

  std::int64_t next_wakeup_in_ms() const {
    const Clock::time_point now = Clock::now();
    Clock::time_point wake = now + Millis(200);
    for (const WorkerState& w : workers_) {
      if (w.health == WorkerHealth::kBusy) {
        wake = std::min(wake, w.last_heard + options_.heartbeat_timeout);
      }
      if (w.health == WorkerHealth::kBusy ||
          w.health == WorkerHealth::kSuspect) {
        wake = std::min(wake, w.dispatched_at + options_.shard_deadline);
      }
    }
    for (const PlanState& plan : plans_) {
      if (plan.failed) continue;
      for (const Job& job : plan.jobs) {
        if (job.state == JobState::kPending) {
          wake = std::min(wake, job.not_before);
        }
      }
    }
    return std::chrono::duration_cast<Millis>(wake - now).count();
  }

  void drain_worker(std::size_t index) {
    WorkerState& w = workers_[index];
    char chunk[64 * 1024];
    const ssize_t n =
        ::read(w.endpoint.from_worker_fd, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) return;
      lose_worker(index, std::string("pipe read failed: ") +
                             std::strerror(errno));
      return;
    }
    if (n == 0) {
      lose_worker(index, w.decoder.idle()
                             ? "worker closed its pipe"
                             : "worker died mid-frame");
      return;
    }
    w.decoder.feed(chunk, static_cast<std::size_t>(n));
    while (true) {
      std::optional<Frame> frame;
      try {
        frame = w.decoder.next();
      } catch (const DataError& e) {
        // A framing error cannot be resynchronized; the worker is unusable.
        lose_worker(index, e.what());
        return;
      }
      if (!frame.has_value()) return;
      handle_frame(index, *frame);
      if (workers_[index].health == WorkerHealth::kDead) return;
    }
  }

  void handle_frame(std::size_t index, const Frame& frame) {
    WorkerState& w = workers_[index];
    w.last_heard = Clock::now();
    if (w.health == WorkerHealth::kHandshaking) {
      // Nothing but a valid hello admits a remote; any other opener is a
      // peer that does not speak our protocol.
      if (frame.type == FrameType::kHello) {
        admit_remote(index, frame.payload);
      } else {
        refuse_remote(index, "expected a hello frame, got " +
                                 std::string(to_string(frame.type)));
      }
      return;
    }
    switch (frame.type) {
      case FrameType::kHello:
      case FrameType::kHeartbeat:
        break;  // liveness only — last_heard already updated
      case FrameType::kResult:
        handle_result(index, frame.payload);
        break;
      case FrameType::kError: {
        // The worker is healthy — the shard's sweep failed. Re-queue it
        // (another worker, after backoff) and put this worker back to work.
        const std::optional<Assignment> a = std::exchange(w.assigned, {});
        w.health = WorkerHealth::kIdle;
        if (a.has_value() &&
            plans_[a->plan].jobs[a->shard].current_worker == index) {
          requeue(a->plan, a->shard, "worker error: " + frame.payload);
        }
        break;
      }
      case FrameType::kSpec:
      case FrameType::kShutdown:
      case FrameType::kAck:
        lose_worker(index, "worker sent a controller-only " +
                               std::string(to_string(frame.type)) + " frame");
        break;
    }
  }

  /// Tell the worker its last result frame was consumed (merged or
  /// classified and discarded — either way a redelivery would be pointless),
  /// so it can drop its redelivery copy.
  void ack_result(std::size_t index) {
    WorkerState& w = workers_[index];
    if (w.health == WorkerHealth::kDead) return;
    try {
      write_frame(w.endpoint.to_worker_fd, Frame{FrameType::kAck, {}});
    } catch (const DataError& e) {
      lose_worker(index, std::string("ack write failed: ") + e.what());
    }
  }

  void handle_result(std::size_t index, const std::string& payload) {
    WorkerState& w = workers_[index];
    const std::optional<Assignment> assigned = std::exchange(w.assigned, {});
    w.health = WorkerHealth::kIdle;

    shard::ShardResult result;
    try {
      result = shard::parse_shard_result(payload);
    } catch (const DataError& e) {
      // Well-framed but unparseable result: the worker's output cannot be
      // trusted, so treat it like a malformed stream.
      if (observer_.on_discard) {
        observer_.on_discard(index,
                             std::string("unparseable result: ") + e.what());
      }
      w.assigned = assigned;  // restore so lose_worker re-queues it
      lose_worker(index, "unparseable result payload");
      return;
    }

    // The plan-fingerprint guard: a result merges only into the live plan
    // whose manifest fingerprint it carries. Anything else is foreign —
    // another plan's artifact, a stale duplicate, or a corrupt file — and is
    // discarded, exactly like `wbsim shard-status` classifies on disk.
    PlanState* plan = nullptr;
    std::size_t plan_index = 0;
    for (std::size_t pi = 0; pi < plans_.size(); ++pi) {
      if (plans_[pi].inputs->manifest.plan == result.plan) {
        plan = &plans_[pi];
        plan_index = pi;
        break;
      }
    }
    const auto discard = [&](const std::string& why) {
      if (observer_.on_discard) observer_.on_discard(index, why);
      // The worker delivered *something*, but its assigned shard did not
      // complete — put that shard back in the queue if it still matters.
      if (assigned.has_value()) {
        Job& job = plans_[assigned->plan].jobs[assigned->shard];
        if (job.current_worker == index && job.state == JobState::kInFlight) {
          requeue(assigned->plan, assigned->shard, why);
        }
      }
      // Classified is consumed: a redelivery would be discarded again.
      ack_result(index);
    };
    if (plan == nullptr) {
      discard("foreign result (plan fingerprint matches no live plan)");
      return;
    }
    if (plan->failed) {
      discard("result for a failed plan");
      return;
    }
    if (result.shard_index >= plan->jobs.size() ||
        result.shard_count != plan->inputs->manifest.shard_count ||
        !(result.distinct == plan->inputs->manifest.distinct)) {
      discard("result contradicts its plan's manifest");
      return;
    }
    Job& job = plan->jobs[result.shard_index];
    if (job.state == JobState::kDone) {
      // A re-issued shard's original worker finally answered. Both runs are
      // bit-identical by the determinism contract, so dropping the late one
      // cannot change the merged totals.
      discard("stale result (shard " + std::to_string(result.shard_index) +
              " already merged)");
      return;
    }
    // First valid result wins — whether it came from the current dispatchee
    // or a suspect worker that turned out to be merely slow.
    const std::uint32_t merged_shard = result.shard_index;
    job.state = JobState::kDone;
    job.current_worker = SIZE_MAX;
    plan->results[merged_shard] = std::move(result);
    plan->have_result[merged_shard] = true;
    ++plan->done;
    ++hosts_[w.host].results;
    if (observer_.on_result) {
      observer_.on_result(plan->inputs->name, merged_shard);
    }
    ack_result(index);
    // If this worker delivered a different shard than its current
    // assignment (it was suspect, got rehabilitated by a late result for an
    // old assignment), re-queue whatever it was supposed to be doing.
    if (assigned.has_value() &&
        (assigned->plan != plan_index ||
         plans_[assigned->plan].jobs[assigned->shard].state ==
             JobState::kInFlight)) {
      Job& other = plans_[assigned->plan].jobs[assigned->shard];
      if (other.state == JobState::kInFlight &&
          other.current_worker == index) {
        requeue(assigned->plan, assigned->shard,
                "worker answered with a different shard");
      }
    }
  }

  void enforce_timeouts() {
    const Clock::time_point now = Clock::now();
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      WorkerState& w = workers_[i];
      if (w.health == WorkerHealth::kHandshaking &&
          now - w.last_heard > options_.heartbeat_timeout) {
        // A connection that never says hello holds no shard; just drop it.
        lose_worker(i, "no hello within " +
                           std::to_string(options_.heartbeat_timeout.count()) +
                           "ms of connecting");
        continue;
      }
      if (w.health == WorkerHealth::kBusy &&
          now - w.last_heard > options_.heartbeat_timeout) {
        // Silent too long: suspect. Re-issue the shard elsewhere but keep
        // the link open — a slow worker's late result is still bit-identical
        // and welcome (asynchrony means we cannot know it is dead).
        w.health = WorkerHealth::kSuspect;
        if (w.assigned.has_value()) {
          requeue(w.assigned->plan, w.assigned->shard,
                  "no heartbeat for " +
                      std::to_string(options_.heartbeat_timeout.count()) +
                      "ms");
        }
      }
      if ((w.health == WorkerHealth::kBusy ||
           w.health == WorkerHealth::kSuspect) &&
          now - w.dispatched_at > options_.shard_deadline) {
        lose_worker(i, "shard deadline of " +
                           std::to_string(options_.shard_deadline.count()) +
                           "ms exceeded");
      }
    }
  }

  // --- teardown and reporting ----------------------------------------------

  void shutdown_workers() {
    // Stop accepting first: a dial-in landing during teardown would never be
    // served, and redialing workers should see refusal, not a dead session.
    if (listener_ != nullptr) listener_->close();
    for (WorkerState& w : workers_) {
      if (w.health == WorkerHealth::kDead) continue;
      try {
        write_frame(w.endpoint.to_worker_fd, Frame{FrameType::kShutdown, {}});
      } catch (const DataError&) {
        // Already gone; the reap below handles it.
      }
      if (w.endpoint.remote) {
        // Half-close our write side; the worker answering the shutdown frame
        // with a clean close gives us EOF below.
        ::shutdown(w.endpoint.to_worker_fd, SHUT_WR);
      } else {
        ::close(w.endpoint.to_worker_fd);
        w.endpoint.to_worker_fd = -1;
      }
    }
    // Grace period for clean exits (a worker mid-sweep finishes its shard
    // first), then SIGKILL whatever is left — e.g. a wedged suspect. A
    // remote cannot be killed, only waited out (drain_grace) and closed.
    const Clock::time_point deadline = Clock::now() + Millis(2000);
    for (WorkerState& w : workers_) {
      if (w.health == WorkerHealth::kDead) continue;
      if (w.endpoint.remote) {
        drain_remote(w);
        close_endpoint(w);
        w.health = WorkerHealth::kDead;
        continue;
      }
      while (true) {
        const pid_t reaped = ::waitpid(w.endpoint.pid, nullptr, WNOHANG);
        if (reaped == w.endpoint.pid || reaped < 0) break;
        if (Clock::now() >= deadline) {
          ::kill(w.endpoint.pid, SIGKILL);
          ::waitpid(w.endpoint.pid, nullptr, 0);
          break;
        }
        ::usleep(10 * 1000);
      }
      ::close(w.endpoint.from_worker_fd);
      w.endpoint.from_worker_fd = -1;
      w.health = WorkerHealth::kDead;
    }
  }

  /// Wait (bounded by drain_grace) for a remote to acknowledge shutdown by
  /// closing its side, discarding whatever it still sends.
  void drain_remote(WorkerState& w) {
    const Clock::time_point deadline = Clock::now() + options_.drain_grace;
    char sink[4096];
    while (true) {
      const std::int64_t left = std::chrono::duration_cast<Millis>(
                                    deadline - Clock::now())
                                    .count();
      if (left <= 0) return;
      pollfd pfd{w.endpoint.from_worker_fd, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, static_cast<int>(std::min<std::int64_t>(
                                            left, 100)));
      if (ready < 0 && errno != EINTR) return;
      if (ready <= 0) continue;
      const ssize_t n = ::read(w.endpoint.from_worker_fd, sink, sizeof sink);
      if (n == 0) return;  // clean EOF: the worker drained and closed
      if (n < 0 && errno != EINTR && errno != EAGAIN) return;
    }
  }

  void report_hosts() {
    if (!observer_.on_host_summary) return;
    for (const auto& [host, stats] : hosts_) {
      observer_.on_host_summary(host, stats.admitted, stats.lost,
                                stats.results);
    }
  }

  std::vector<PlanOutcome> collect_outcomes() {
    std::vector<PlanOutcome> outcomes;
    outcomes.reserve(plans_.size());
    for (PlanState& plan : plans_) {
      PlanOutcome outcome;
      outcome.name = plan.inputs->name;
      outcome.reissues = plan.reissues;
      if (plan.failed) {
        outcome.error = plan.error;
      } else {
        outcome.completed = true;
        try {
          outcome.merged = shard::merge_shard_results(plan.results);
        } catch (const BudgetExceededError&) {
          outcome.budget_exceeded = true;
        }
      }
      outcomes.push_back(std::move(outcome));
    }
    return outcomes;
  }

  const FleetOptions options_;
  const WorkerLauncher& launcher_;
  const FleetObserver& observer_;
  SocketListener* listener_ = nullptr;
  std::vector<PlanState> plans_;
  std::vector<WorkerState> workers_;
  /// hello v2 host/pid -> latest worker slot claiming it. Entries outlive
  /// their slot's death so a redial is recognized as a reconnect.
  std::map<std::string, std::size_t> identity_to_worker_;
  std::map<std::string, HostStats> hosts_;
  std::size_t next_worker_index_ = 0;
  std::size_t respawns_used_ = 0;
};

}  // namespace

std::vector<PlanOutcome> run_fleet(const std::vector<PlanInputs>& plans,
                                   const FleetOptions& options,
                                   const WorkerLauncher& launcher,
                                   const FleetObserver& observer,
                                   SocketListener* listener) {
  WB_REQUIRE_MSG(!plans.empty(), "no plans to serve");
  WB_REQUIRE_MSG(options.workers >= 1 || listener != nullptr,
                 "a fleet needs at least one worker or a listener for "
                 "dial-ins");
  WB_REQUIRE_MSG(launcher != nullptr || options.workers == 0,
                 "cannot launch " << options.workers
                                  << " workers without a launcher");
  WB_REQUIRE_MSG(options.max_attempts >= 1, "max_attempts must be at least 1");
  Controller controller(plans, options, launcher, observer, listener);
  return controller.run();
}

}  // namespace wb::fleet

#endif  // WB_FLEET_HAS_PROCESSES
