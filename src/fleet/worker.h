// The persistent worker process of the fleet (wbsim fleet worker).
//
// A worker is a frame loop on a pair of fds (stdin/stdout when spawned by
// the controller): it announces itself with a hello frame, then serves spec
// frames — each payload is a serialized wbshard-spec (src/wb/shard.h) — by
// sweeping the shard through the injected ShardRunner and answering with a
// result frame carrying the serialized wbshard-result. While a sweep runs, a
// sidecar thread emits heartbeat frames so the controller can tell "still
// working on a big subtree" from "dead"; sweeps whose runner throws answer
// with an error frame instead of dying, so one poisoned shard does not cost
// the fleet a worker. A shutdown frame — or EOF, the controller vanishing —
// ends the loop.
//
// The runner is a callback (the CLI wires in
// wb::cli::run_protocol_spec_shard) so this layer depends only on the shard
// formats, not on the protocol registry.
#pragma once

#include "src/fleet/transport.h"

#if WB_FLEET_HAS_PROCESSES

#include <chrono>
#include <cstddef>
#include <functional>

#include "src/wb/shard.h"

namespace wb::fleet {

/// Sweep one parsed shard spec with `threads` workers and return its result.
/// Must be deterministic in the spec (the fleet's re-issue correctness —
/// a re-run of a lost shard anywhere must produce the same bytes).
using ShardRunner = std::function<shard::ShardResult(
    const shard::ShardSpec& spec, std::size_t threads)>;

struct WorkerOptions {
  /// Sweep threads per shard (as in ExhaustiveOptions: 0 = all cores, 1 =
  /// serial).
  std::size_t threads = 1;
  /// Heartbeat period while a sweep is running. 0 disables heartbeats —
  /// a worker that never heartbeats is indistinguishable from a lost one,
  /// which is exactly what the controller's timeout tests inject.
  std::chrono::milliseconds heartbeat_interval{200};
  /// Fault-injection aid: sleep this long before sweeping the FIRST spec
  /// (heartbeats keep flowing). Gives `kill -9` smoke tests a deterministic
  /// window in which every worker is provably mid-shard.
  std::chrono::milliseconds stall_first{0};
  /// Fault-injection aid: hard-shutdown(2) this session's link this long
  /// after it starts (0 = never) — the "sever a live worker's connection"
  /// scenario. The sweep keeps running; its result goes undelivered and a
  /// dial-in worker redelivers it after redialing. No-op on pipe fds.
  std::chrono::milliseconds sever_after{0};
  /// Hostname announced in the hello v2 frame (host+pid is the reconnect
  /// identity). Empty = gethostname(). Tests use overrides to simulate a
  /// multi-host fleet on one machine.
  std::string hostname;
};

/// Why a worker session ended.
enum class SessionEnd : std::uint8_t {
  kShutdown,       // controller sent a shutdown frame: drain and exit
  kEof,            // link lost (EOF, reset, write failure): redial-worthy
  kProtocolError,  // the controller's stream is malformed or it refused the
                   // handshake: abandon, do not redial
};

struct SessionResult {
  SessionEnd end = SessionEnd::kEof;
  /// The serialized result whose delivery was never acknowledged — redeliver
  /// it on the next session so a partition costs a redelivery, not a
  /// re-sweep. Empty when everything sent was acked.
  std::string undelivered_result;
};

/// Serve one session of frames on in_fd/out_fd: hello v2 first (then
/// `pending_result`, if any, as a redelivery), then specs/acks/shutdown.
/// The last result stays held until the controller's ack frame confirms it
/// was consumed. Diagnostics for kProtocolError go to stderr.
[[nodiscard]] SessionResult serve_worker(int in_fd, int out_fd,
                                         const ShardRunner& runner,
                                         const WorkerOptions& options = {},
                                         std::string pending_result = {});

/// One-shot wrapper (the stdio worker spawned over pipes): serve a single
/// session and map its end to a process exit code — 0 on shutdown/EOF, 2 on
/// a malformed controller stream.
int run_worker(int in_fd, int out_fd, const ShardRunner& runner,
               const WorkerOptions& options = {});

}  // namespace wb::fleet

#endif  // WB_FLEET_HAS_PROCESSES
