// The persistent worker process of the fleet (wbsim fleet worker).
//
// A worker is a frame loop on a pair of fds (stdin/stdout when spawned by
// the controller): it announces itself with a hello frame, then serves spec
// frames — each payload is a serialized wbshard-spec (src/wb/shard.h) — by
// sweeping the shard through the injected ShardRunner and answering with a
// result frame carrying the serialized wbshard-result. While a sweep runs, a
// sidecar thread emits heartbeat frames so the controller can tell "still
// working on a big subtree" from "dead"; sweeps whose runner throws answer
// with an error frame instead of dying, so one poisoned shard does not cost
// the fleet a worker. A shutdown frame — or EOF, the controller vanishing —
// ends the loop.
//
// The runner is a callback (the CLI wires in
// wb::cli::run_protocol_spec_shard) so this layer depends only on the shard
// formats, not on the protocol registry.
#pragma once

#include "src/fleet/transport.h"

#if WB_FLEET_HAS_PROCESSES

#include <chrono>
#include <cstddef>
#include <functional>

#include "src/wb/shard.h"

namespace wb::fleet {

/// Sweep one parsed shard spec with `threads` workers and return its result.
/// Must be deterministic in the spec (the fleet's re-issue correctness —
/// a re-run of a lost shard anywhere must produce the same bytes).
using ShardRunner = std::function<shard::ShardResult(
    const shard::ShardSpec& spec, std::size_t threads)>;

struct WorkerOptions {
  /// Sweep threads per shard (as in ExhaustiveOptions: 0 = all cores, 1 =
  /// serial).
  std::size_t threads = 1;
  /// Heartbeat period while a sweep is running. 0 disables heartbeats —
  /// a worker that never heartbeats is indistinguishable from a lost one,
  /// which is exactly what the controller's timeout tests inject.
  std::chrono::milliseconds heartbeat_interval{200};
  /// Fault-injection aid: sleep this long before sweeping the FIRST spec
  /// (heartbeats keep flowing). Gives `kill -9` smoke tests a deterministic
  /// window in which every worker is provably mid-shard.
  std::chrono::milliseconds stall_first{0};
};

/// Serve frames on in_fd/out_fd until shutdown or EOF. Returns the process
/// exit code: 0 on a clean shutdown/EOF, 2 when the controller's stream is
/// malformed (diagnostic on stderr).
int run_worker(int in_fd, int out_fd, const ShardRunner& runner,
               const WorkerOptions& options = {});

}  // namespace wb::fleet

#endif  // WB_FLEET_HAS_PROCESSES
