#include "src/fleet/socket.h"

#if WB_FLEET_HAS_PROCESSES

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstring>
#include <thread>

#include "src/support/check.h"

namespace wb::fleet {

namespace {

void set_cloexec(int fd) {
  WB_REQUIRE_MSG(::fcntl(fd, F_SETFD, FD_CLOEXEC) == 0,
                 "cannot set CLOEXEC on fd " << fd);
}

void set_nodelay(int fd) {
  // Frames are request/response; latency beats batching. Failure is not
  // fatal (e.g. a non-TCP test double).
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

/// getaddrinfo over the address, invoking `try_fd(fd, ai)` per candidate
/// until one returns true; throws `what`-flavored DataError when none does.
template <typename TryFd>
int with_resolved(const SocketAddress& address, bool passive,
                  const char* what, const TryFd& try_fd) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  if (passive) hints.ai_flags = AI_PASSIVE;
  const std::string port = std::to_string(address.port);
  addrinfo* list = nullptr;
  const int rc = ::getaddrinfo(address.host.c_str(), port.c_str(), &hints,
                               &list);
  WB_REQUIRE_MSG(rc == 0, "cannot resolve '" << to_string(address)
                                             << "': " << ::gai_strerror(rc));
  int last_errno = 0;
  for (const addrinfo* ai = list; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_errno = errno;
      continue;
    }
    if (try_fd(fd, *ai)) {
      ::freeaddrinfo(list);
      return fd;
    }
    last_errno = errno;
    ::close(fd);
  }
  ::freeaddrinfo(list);
  throw DataError(std::string(what) + " '" + to_string(address) +
                  "' failed: " + std::strerror(last_errno));
}

std::string peer_to_string(const sockaddr_storage& storage,
                           socklen_t length) {
  char host[NI_MAXHOST];
  char port[NI_MAXSERV];
  if (::getnameinfo(reinterpret_cast<const sockaddr*>(&storage), length, host,
                    sizeof host, port, sizeof port,
                    NI_NUMERICHOST | NI_NUMERICSERV) != 0) {
    return "unknown-peer";
  }
  return std::string(host) + ":" + port;
}

}  // namespace

std::string to_string(const SocketAddress& address) {
  return address.host + ":" + std::to_string(address.port);
}

SocketAddress parse_socket_address(std::string_view text) {
  const std::size_t colon = text.rfind(':');
  WB_REQUIRE_MSG(colon != std::string_view::npos && colon > 0,
                 "expected HOST:PORT, got '" << std::string(text) << "'");
  SocketAddress address;
  address.host = std::string(text.substr(0, colon));
  const std::string_view port_token = text.substr(colon + 1);
  std::uint32_t port = 0;
  const auto [ptr, ec] = std::from_chars(
      port_token.data(), port_token.data() + port_token.size(), port);
  WB_REQUIRE_MSG(!port_token.empty() && ec == std::errc{} &&
                     ptr == port_token.data() + port_token.size() &&
                     port <= 65535,
                 "bad port '" << std::string(port_token) << "' in '"
                              << std::string(text) << "'");
  address.port = static_cast<std::uint16_t>(port);
  return address;
}

std::vector<SocketAddress> parse_socket_address_list(std::string_view text) {
  std::vector<SocketAddress> addresses;
  while (true) {
    const std::size_t comma = text.find(',');
    addresses.push_back(parse_socket_address(text.substr(0, comma)));
    if (comma == std::string_view::npos) break;
    text = text.substr(comma + 1);
  }
  return addresses;
}

SocketListener::SocketListener(const SocketAddress& address) {
  fd_ = with_resolved(address, /*passive=*/true, "bind to",
                      [](int fd, const addrinfo& ai) {
                        const int one = 1;
                        (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one,
                                           sizeof one);
                        return ::bind(fd, ai.ai_addr, ai.ai_addrlen) == 0 &&
                               ::listen(fd, 64) == 0;
                      });
  set_cloexec(fd_);
  // Non-blocking: the controller drains *all* pending connections after one
  // poll wakeup, relying on accept() returning EAGAIN when the backlog is
  // empty rather than blocking the whole fleet.
  WB_REQUIRE_MSG(::fcntl(fd_, F_SETFL, O_NONBLOCK) == 0,
                 "cannot make the listener non-blocking");
  bound_ = address;
  sockaddr_storage storage{};
  socklen_t length = sizeof storage;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&storage), &length) ==
      0) {
    if (storage.ss_family == AF_INET) {
      bound_.port = ntohs(reinterpret_cast<sockaddr_in&>(storage).sin_port);
    } else if (storage.ss_family == AF_INET6) {
      bound_.port = ntohs(reinterpret_cast<sockaddr_in6&>(storage).sin6_port);
    }
  }
}

SocketListener::~SocketListener() { close(); }

int SocketListener::accept_connection(std::string* peer) {
  WB_REQUIRE_MSG(fd_ >= 0, "accept on a closed listener");
  sockaddr_storage storage{};
  socklen_t length = sizeof storage;
  while (true) {
    const int fd = ::accept(fd_, reinterpret_cast<sockaddr*>(&storage),
                            &length);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNABORTED) {
        return -1;
      }
      throw DataError(std::string("accept failed: ") + std::strerror(errno));
    }
    set_cloexec(fd);
    WB_REQUIRE_MSG(::fcntl(fd, F_SETFL, O_NONBLOCK) == 0,
                   "cannot make accepted fd non-blocking");
    set_nodelay(fd);
    if (peer != nullptr) *peer = peer_to_string(storage, length);
    return fd;
  }
}

void SocketListener::close() {
  if (fd_ < 0) return;
  ::close(fd_);
  fd_ = -1;
}

int dial(const SocketAddress& address) {
  const int fd = with_resolved(address, /*passive=*/false, "connect to",
                               [](int fd, const addrinfo& ai) {
                                 return ::connect(fd, ai.ai_addr,
                                                  ai.ai_addrlen) == 0;
                               });
  set_cloexec(fd);
  set_nodelay(fd);
  return fd;
}

int run_worker_connect(const ConnectOptions& connect, const ShardRunner& runner,
                       const WorkerOptions& options) {
  WB_REQUIRE_MSG(!connect.addresses.empty(), "no addresses to connect to");
  ignore_sigpipe();
  WorkerOptions session_options = options;
  std::string pending;
  std::chrono::milliseconds backoff = connect.redial_base;
  std::size_t failed_passes = 0;
  while (true) {
    int fd = -1;
    std::string last_error;
    for (const SocketAddress& address : connect.addresses) {
      try {
        fd = dial(address);
        break;
      } catch (const DataError& e) {
        last_error = e.what();
      }
    }
    if (fd < 0) {
      ++failed_passes;
      if (connect.redial_limit != 0 && failed_passes >= connect.redial_limit) {
        std::fprintf(stderr,
                     "fleet worker: giving up after %zu redial passes (%s)\n",
                     failed_passes, last_error.c_str());
        return 1;
      }
      std::this_thread::sleep_for(backoff);
      backoff = std::min(backoff * 2, connect.redial_max);
      continue;
    }
    failed_passes = 0;
    backoff = connect.redial_base;
    const SessionResult session =
        serve_worker(fd, fd, runner, session_options, std::move(pending));
    ::close(fd);
    switch (session.end) {
      case SessionEnd::kShutdown:
        return 0;
      case SessionEnd::kProtocolError:
        return 2;
      case SessionEnd::kEof:
        break;
    }
    // Link lost: carry the unacknowledged result into the next session so a
    // partition is healed by a redelivery, not a re-sweep. The
    // fault-injection knobs were spent on the first session.
    pending = session.undelivered_result;
    session_options.stall_first = std::chrono::milliseconds(0);
    session_options.sever_after = std::chrono::milliseconds(0);
    std::this_thread::sleep_for(backoff);
    backoff = std::min(backoff * 2, connect.redial_max);
  }
}

}  // namespace wb::fleet

#endif  // WB_FLEET_HAS_PROCESSES
