#include "src/graph/algorithms.h"

#include <algorithm>
#include <deque>
#include <limits>

namespace wb {

BfsResult bfs_from(const Graph& g, NodeId root) {
  const std::size_t n = g.node_count();
  BfsResult r{std::vector<int>(n, -1), std::vector<NodeId>(n, kNoNode)};
  std::deque<NodeId> queue;
  r.dist[root - 1] = 0;
  queue.push_back(root);
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    for (NodeId w : g.neighbors(v)) {
      if (r.dist[w - 1] == -1) {
        r.dist[w - 1] = r.dist[v - 1] + 1;
        r.parent[w - 1] = v;
        queue.push_back(w);
      }
    }
  }
  return r;
}

BfsForest bfs_forest(const Graph& g) {
  // One shared O(n + m) sweep. The per-component bfs_from + full merge scan
  // was O(components * n) — quadratic on generated graphs with many isolated
  // nodes (an RMAT instance is ~30% singletons). Queue discipline is the
  // same (FIFO, sorted neighbors), so layers and parents are unchanged.
  const std::size_t n = g.node_count();
  BfsForest f;
  f.layer.assign(n, -1);
  f.parent.assign(n, kNoNode);
  std::vector<NodeId> queue;
  queue.reserve(n);
  for (NodeId v = 1; v <= n; ++v) {
    if (f.layer[v - 1] != -1) continue;
    f.roots.push_back(v);
    f.layer[v - 1] = 0;
    queue.clear();
    queue.push_back(v);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const NodeId u = queue[head];
      for (const NodeId w : g.neighbors(u)) {
        if (f.layer[w - 1] == -1) {
          f.layer[w - 1] = f.layer[u - 1] + 1;
          f.parent[w - 1] = u;
          queue.push_back(w);
        }
      }
    }
  }
  return f;
}

bool is_valid_bfs_forest(const Graph& g, const std::vector<int>& layer,
                         const std::vector<NodeId>& parent) {
  const std::size_t n = g.node_count();
  if (layer.size() != n || parent.size() != n) return false;
  const BfsForest ref = bfs_forest(g);
  for (NodeId v = 1; v <= n; ++v) {
    if (layer[v - 1] != ref.layer[v - 1]) return false;  // true hop distance
    if (ref.layer[v - 1] == 0) {
      if (parent[v - 1] != kNoNode) return false;
    } else {
      const NodeId p = parent[v - 1];
      if (p == kNoNode || !g.has_edge(p, v)) return false;
      if (layer[p - 1] != layer[v - 1] - 1) return false;
    }
  }
  return true;
}

Components connected_components(const Graph& g) {
  const std::size_t n = g.node_count();
  Components c;
  c.component.assign(n, std::numeric_limits<std::size_t>::max());
  for (NodeId v = 1; v <= n; ++v) {
    if (c.component[v - 1] != std::numeric_limits<std::size_t>::max()) continue;
    const std::size_t idx = c.count++;
    std::deque<NodeId> queue{v};
    c.component[v - 1] = idx;
    while (!queue.empty()) {
      const NodeId u = queue.front();
      queue.pop_front();
      for (NodeId w : g.neighbors(u)) {
        if (c.component[w - 1] == std::numeric_limits<std::size_t>::max()) {
          c.component[w - 1] = idx;
          queue.push_back(w);
        }
      }
    }
  }
  return c;
}

bool is_connected(const Graph& g) {
  return g.node_count() <= 1 || connected_components(g).count == 1;
}

std::optional<std::vector<int>> bipartition(const Graph& g) {
  const std::size_t n = g.node_count();
  std::vector<int> color(n, -1);
  for (NodeId v = 1; v <= n; ++v) {
    if (color[v - 1] != -1) continue;
    color[v - 1] = 0;
    std::deque<NodeId> queue{v};
    while (!queue.empty()) {
      const NodeId u = queue.front();
      queue.pop_front();
      for (NodeId w : g.neighbors(u)) {
        if (color[w - 1] == -1) {
          color[w - 1] = 1 - color[u - 1];
          queue.push_back(w);
        } else if (color[w - 1] == color[u - 1]) {
          return std::nullopt;
        }
      }
    }
  }
  return color;
}

bool is_bipartite(const Graph& g) { return bipartition(g).has_value(); }

bool is_even_odd_bipartite(const Graph& g) {
  return std::all_of(g.edges().begin(), g.edges().end(), [](const Edge& e) {
    return (e.u % 2) != (e.v % 2);
  });
}

Degeneracy degeneracy_order(const Graph& g) {
  const std::size_t n = g.node_count();
  Degeneracy result;
  result.order.reserve(n);
  if (n == 0) return result;

  // Bucket queue keyed by current degree.
  std::vector<std::size_t> deg(n);
  std::size_t max_deg = 0;
  for (NodeId v = 1; v <= n; ++v) {
    deg[v - 1] = g.degree(v);
    max_deg = std::max(max_deg, deg[v - 1]);
  }
  std::vector<std::vector<NodeId>> bucket(max_deg + 1);
  for (NodeId v = 1; v <= n; ++v) bucket[deg[v - 1]].push_back(v);
  std::vector<bool> removed(n, false);

  std::size_t cursor = 0;  // lowest possibly non-empty bucket
  for (std::size_t step = 0; step < n; ++step) {
    while (cursor > 0 && !bucket[cursor - 1].empty()) --cursor;  // lazy decrease
    while (bucket[cursor].empty() ||
           removed[bucket[cursor].back() - 1] ||
           deg[bucket[cursor].back() - 1] != cursor) {
      if (bucket[cursor].empty()) {
        ++cursor;
      } else {
        bucket[cursor].pop_back();  // stale entry
      }
    }
    const NodeId v = bucket[cursor].back();
    bucket[cursor].pop_back();
    removed[v - 1] = true;
    result.order.push_back(v);
    result.k = std::max<int>(result.k, static_cast<int>(cursor));
    for (NodeId w : g.neighbors(v)) {
      if (!removed[w - 1]) {
        --deg[w - 1];
        bucket[deg[w - 1]].push_back(w);
        if (deg[w - 1] < cursor) cursor = deg[w - 1];
      }
    }
  }
  return result;
}

bool is_k_degenerate(const Graph& g, int k) {
  return degeneracy_order(g).k <= k;
}

std::optional<std::array<NodeId, 3>> find_triangle(const Graph& g) {
  // For each edge (u,v), intersect sorted neighbor lists.
  for (const Edge& e : g.edges()) {
    const auto nu = g.neighbors(e.u);
    const auto nv = g.neighbors(e.v);
    std::size_t i = 0, j = 0;
    while (i < nu.size() && j < nv.size()) {
      if (nu[i] == nv[j]) {
        std::array<NodeId, 3> t{e.u, e.v, nu[i]};
        std::sort(t.begin(), t.end());
        return t;
      }
      if (nu[i] < nv[j]) {
        ++i;
      } else {
        ++j;
      }
    }
  }
  return std::nullopt;
}

bool has_triangle(const Graph& g) { return find_triangle(g).has_value(); }

std::uint64_t count_triangles(const Graph& g) {
  std::uint64_t count = 0;
  for (const Edge& e : g.edges()) {
    const auto nu = g.neighbors(e.u);
    const auto nv = g.neighbors(e.v);
    std::size_t i = 0, j = 0;
    while (i < nu.size() && j < nv.size()) {
      if (nu[i] == nv[j]) {
        if (nu[i] > e.v) ++count;  // count each triangle once (u < v < w)
        ++i;
        ++j;
      } else if (nu[i] < nv[j]) {
        ++i;
      } else {
        ++j;
      }
    }
  }
  return count;
}

bool has_square(const Graph& g) {
  // Two nodes with >= 2 common neighbors form a C4 (possibly with chords).
  const std::size_t n = g.node_count();
  for (NodeId u = 1; u <= n; ++u) {
    for (NodeId v = u + 1; v <= n; ++v) {
      const auto nu = g.neighbors(u);
      const auto nv = g.neighbors(v);
      std::size_t i = 0, j = 0, common = 0;
      while (i < nu.size() && j < nv.size()) {
        if (nu[i] == nv[j]) {
          ++common;
          if (common >= 2) return true;
          ++i;
          ++j;
        } else if (nu[i] < nv[j]) {
          ++i;
        } else {
          ++j;
        }
      }
    }
  }
  return false;
}

int diameter(const Graph& g) {
  const std::size_t n = g.node_count();
  int diam = 0;
  for (NodeId v = 1; v <= n; ++v) {
    const BfsResult r = bfs_from(g, v);
    for (int d : r.dist) {
      if (d == -1) return -1;
      diam = std::max(diam, d);
    }
  }
  return diam;
}

bool is_independent_set(const Graph& g, const std::vector<NodeId>& s) {
  for (std::size_t i = 0; i < s.size(); ++i) {
    for (std::size_t j = i + 1; j < s.size(); ++j) {
      if (s[i] == s[j] || g.has_edge(s[i], s[j])) return false;
    }
  }
  return true;
}

bool is_maximal_independent_set(const Graph& g, const std::vector<NodeId>& s) {
  if (!is_independent_set(g, s)) return false;
  std::vector<bool> in_s(g.node_count() + 1, false);
  for (NodeId v : s) in_s[v] = true;
  for (NodeId v = 1; v <= g.node_count(); ++v) {
    if (in_s[v]) continue;
    bool dominated = false;
    for (NodeId w : g.neighbors(v)) {
      if (in_s[w]) {
        dominated = true;
        break;
      }
    }
    if (!dominated) return false;  // v could be added: not maximal
  }
  return true;
}

bool is_rooted_mis(const Graph& g, const std::vector<NodeId>& s, NodeId root) {
  return std::find(s.begin(), s.end(), root) != s.end() &&
         is_maximal_independent_set(g, s);
}

bool is_regular(const Graph& g, std::size_t d) {
  for (NodeId v = 1; v <= g.node_count(); ++v) {
    if (g.degree(v) != d) return false;
  }
  return true;
}

bool is_two_cliques(const Graph& g) {
  const std::size_t n2 = g.node_count();
  if (n2 == 0 || n2 % 2 != 0) return false;
  const std::size_t n = n2 / 2;
  const Components c = connected_components(g);
  if (c.count != 2) return false;
  std::size_t size[2] = {0, 0};
  for (std::size_t idx : c.component) ++size[idx];
  if (size[0] != n || size[1] != n) return false;
  // Each component must be complete: every node has degree n-1 within it.
  return is_regular(g, n - 1);
}

}  // namespace wb
