// Text serialization for graphs: compact edge-list format (round-trippable),
// a streaming loader/writer for Graph500-scale files, and Graphviz DOT output
// for the examples.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "src/graph/graph.h"

namespace wb {

/// "n m\nu1 v1\nu2 v2\n..." — canonical since Graph::edges() is sorted.
[[nodiscard]] std::string to_edge_list(const Graph& g);

/// Parse the to_edge_list format *strictly*: self-loops, duplicates, and
/// out-of-range endpoints are DataErrors. For large or messy external files
/// use read_edge_list below. Throws wb::DataError on malformed input.
[[nodiscard]] Graph from_edge_list(const std::string& text);

/// Hard admission bounds for external files (checked before any allocation,
/// so a hostile header cannot drive a giant resize).
struct EdgeListLimits {
  std::size_t max_nodes = std::size_t{1} << 31;
  std::size_t max_edges = std::size_t{1} << 35;
};

/// What the streaming loader did, for benches and diagnostics.
struct EdgeListLoadStats {
  std::size_t bytes_read = 0;    // input bytes consumed (per pass)
  bool two_pass = false;         // seekable input: CSR built with zero
                                 // intermediate edge buffer
  Graph::BuildStats build;       // peak bytes, dropped loops/duplicates
};

/// Streaming edge-list reader. Same "n m" + m pairs format, but tolerant the
/// way external Graph500-style files need: pairs may arrive unsorted, in
/// either orientation, duplicated, or as both (u,v) and (v,u) — all collapse
/// via streaming symmetrization; self-loops are dropped. Malformed tokens,
/// out-of-range endpoints, numeric overflow, and headers exceeding `limits`
/// are DataErrors. Seekable streams are read twice and build the CSR in
/// place (peak memory ~= the CSR itself); non-seekable streams fall back to
/// one buffered edge vector.
[[nodiscard]] Graph read_edge_list(std::istream& in,
                                   const EdgeListLimits& limits = {},
                                   EdgeListLoadStats* stats = nullptr);

/// Streaming writer for the same format: chunked, no whole-graph string.
void write_edge_list(const Graph& g, std::ostream& out);

/// Graphviz DOT (undirected). `highlight` nodes are drawn filled.
[[nodiscard]] std::string to_dot(const Graph& g,
                                 const std::vector<NodeId>& highlight = {});

}  // namespace wb
