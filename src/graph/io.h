// Text serialization for graphs: compact edge-list format (round-trippable)
// and Graphviz DOT output for the examples.
#pragma once

#include <string>

#include "src/graph/graph.h"

namespace wb {

/// "n m\nu1 v1\nu2 v2\n..." — canonical since Graph::edges() is sorted.
[[nodiscard]] std::string to_edge_list(const Graph& g);

/// Parse the to_edge_list format. Throws wb::DataError on malformed input.
[[nodiscard]] Graph from_edge_list(const std::string& text);

/// Graphviz DOT (undirected). `highlight` nodes are drawn filled.
[[nodiscard]] std::string to_dot(const Graph& g,
                                 const std::vector<NodeId>& highlight = {});

}  // namespace wb
