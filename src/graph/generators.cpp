#include "src/graph/generators.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>

#include "src/support/rng.h"

namespace wb {

Graph path_graph(std::size_t n) {
  WB_CHECK(n >= 1);
  GraphBuilder b(n);
  for (std::size_t i = 1; i + 1 <= n; ++i) {
    b.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(i + 1));
  }
  return b.build();
}

Graph cycle_graph(std::size_t n) {
  WB_CHECK(n >= 3);
  GraphBuilder b(n);
  for (std::size_t i = 1; i < n; ++i) {
    b.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(i + 1));
  }
  b.add_edge(static_cast<NodeId>(n), 1);
  return b.build();
}

Graph complete_graph(std::size_t n) {
  GraphBuilder b(n);
  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = i + 1; j <= n; ++j) {
      b.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(j));
    }
  }
  return b.build();
}

Graph star_graph(std::size_t n) {
  WB_CHECK(n >= 1);
  GraphBuilder b(n);
  for (std::size_t i = 2; i <= n; ++i) b.add_edge(1, static_cast<NodeId>(i));
  return b.build();
}

Graph empty_graph(std::size_t n) { return Graph(n); }

Graph grid_graph(std::size_t rows, std::size_t cols) {
  WB_CHECK(rows >= 1 && cols >= 1);
  GraphBuilder b(rows * cols);
  auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<NodeId>(r * cols + c + 1);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) b.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return b.build();
}

Graph complete_bipartite(std::size_t a, std::size_t b) {
  GraphBuilder g(a + b);
  for (std::size_t i = 1; i <= a; ++i) {
    for (std::size_t j = a + 1; j <= a + b; ++j) {
      g.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(j));
    }
  }
  return g.build();
}

Graph two_cliques(std::size_t n) {
  WB_CHECK(n >= 1);
  GraphBuilder b(2 * n);
  for (std::size_t base : {std::size_t{0}, n}) {
    for (std::size_t i = 1; i <= n; ++i) {
      for (std::size_t j = i + 1; j <= n; ++j) {
        b.add_edge(static_cast<NodeId>(base + i), static_cast<NodeId>(base + j));
      }
    }
  }
  return b.build();
}

Graph two_cliques_switched(std::size_t n) {
  WB_CHECK_MSG(n >= 3, "2-switch needs cliques of size >= 3");
  // Remove {1,2} from the first clique and {n+1,n+2} from the second; add the
  // crossing edges {1,n+1} and {2,n+2}. Every node keeps degree n-1 and the
  // graph becomes connected, hence not a union of two cliques.
  GraphBuilder b(2 * n);
  for (std::size_t base : {std::size_t{0}, n}) {
    for (std::size_t i = 1; i <= n; ++i) {
      for (std::size_t j = i + 1; j <= n; ++j) {
        const NodeId u = static_cast<NodeId>(base + i);
        const NodeId v = static_cast<NodeId>(base + j);
        if ((u == 1 && v == 2) ||
            (u == static_cast<NodeId>(n + 1) && v == static_cast<NodeId>(n + 2))) {
          continue;
        }
        b.add_edge(u, v);
      }
    }
  }
  b.add_edge(1, static_cast<NodeId>(n + 1));
  b.add_edge(2, static_cast<NodeId>(n + 2));
  return b.build();
}

Graph hypercube_graph(int dimension) {
  WB_CHECK(dimension >= 0 && dimension <= 20);
  const std::size_t n = std::size_t{1} << dimension;
  GraphBuilder b(n);
  for (std::size_t v = 0; v < n; ++v) {
    for (int bit = 0; bit < dimension; ++bit) {
      const std::size_t w = v ^ (std::size_t{1} << bit);
      if (v < w) {
        b.add_edge(static_cast<NodeId>(v + 1), static_cast<NodeId>(w + 1));
      }
    }
  }
  return b.build();
}

Graph wheel_graph(std::size_t n) {
  WB_CHECK_MSG(n >= 4, "a wheel needs a hub and a 3-cycle");
  GraphBuilder b(n);
  for (std::size_t i = 2; i <= n; ++i) {
    b.add_edge(1, static_cast<NodeId>(i));
    b.add_edge(static_cast<NodeId>(i),
               static_cast<NodeId>(i == n ? 2 : i + 1));
  }
  return b.build();
}

Graph barbell_graph(std::size_t k, std::size_t bridge) {
  WB_CHECK(k >= 2);
  const std::size_t n = 2 * k + bridge;
  GraphBuilder b(n);
  for (std::size_t base : {std::size_t{0}, k + bridge}) {
    for (std::size_t i = 1; i <= k; ++i) {
      for (std::size_t j = i + 1; j <= k; ++j) {
        b.add_edge(static_cast<NodeId>(base + i),
                   static_cast<NodeId>(base + j));
      }
    }
  }
  // Path k, k+1, ..., k+bridge+1 connecting the cliques.
  for (std::size_t i = k; i <= k + bridge; ++i) {
    b.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(i + 1));
  }
  return b.build();
}

Graph random_regular(std::size_t n, std::size_t d, std::uint64_t seed) {
  WB_CHECK_MSG(d < n && (n * d) % 2 == 0, "need d < n and n*d even");
  // Deterministic circulant base (always simple and d-regular), then a long
  // degree-preserving 2-switch walk for randomization. Unlike the pairing
  // model this never rejects, even at d close to n.
  GraphBuilder base(n);
  for (std::size_t j = 1; j <= d / 2; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      base.add_edge(static_cast<NodeId>(i + 1),
                    static_cast<NodeId>((i + j) % n + 1));
    }
  }
  if (d % 2 == 1) {  // n is even here (n*d even)
    for (std::size_t i = 0; i < n / 2; ++i) {
      base.add_edge(static_cast<NodeId>(i + 1),
                    static_cast<NodeId>(i + n / 2 + 1));
    }
  }

  Rng rng(seed);
  std::vector<Edge> edges = base.build().edge_vector();
  // Edge set keyed on the normalized endpoints for O(1) membership during
  // switches (with erase, so no rebuilds).
  const auto key = [](Edge e) {
    return (static_cast<std::uint64_t>(e.u) << 32) | e.v;
  };
  std::unordered_set<std::uint64_t> current;
  current.reserve(edges.size() * 2);
  for (const Edge& e : edges) current.insert(key(e));
  const std::size_t steps = 10 * n * d + 100;
  for (std::size_t step = 0; step < steps && edges.size() >= 2; ++step) {
    const auto i = static_cast<std::size_t>(rng.below(edges.size()));
    const auto j = static_cast<std::size_t>(rng.below(edges.size()));
    if (i == j) continue;
    Edge a = edges[i], c = edges[j];
    // Randomize orientation of the switch.
    if (rng.chance(1, 2)) std::swap(c.u, c.v);
    if (a.u == c.u || a.u == c.v || a.v == c.u || a.v == c.v) continue;
    if (current.contains(key(make_edge(a.u, c.v))) ||
        current.contains(key(make_edge(c.u, a.v)))) {
      continue;
    }
    // Apply: {a.u,a.v},{c.u,c.v} -> {a.u,c.v},{c.u,a.v}.
    current.erase(key(edges[i]));
    current.erase(key(edges[j]));
    edges[i] = make_edge(a.u, c.v);
    edges[j] = make_edge(c.u, a.v);
    current.insert(key(edges[i]));
    current.insert(key(edges[j]));
  }
  return Graph(n, edges);
}

Graph random_tree(std::size_t n, std::uint64_t seed) {
  WB_CHECK(n >= 1);
  if (n == 1) return Graph(1);
  if (n == 2) {
    const Edge e{1, 2};
    return Graph(2, std::span<const Edge>(&e, 1));
  }
  Rng rng(seed);
  // Prüfer decoding.
  std::vector<NodeId> prufer(n - 2);
  for (auto& p : prufer) p = static_cast<NodeId>(rng.range(1, n));
  std::vector<std::size_t> deg(n + 1, 1);
  for (NodeId p : prufer) ++deg[p];
  GraphBuilder b(n);
  // Min-heap free list via sorted iteration.
  std::vector<bool> used(n + 1, false);
  for (NodeId p : prufer) {
    NodeId leaf = 0;
    for (NodeId v = 1; v <= n; ++v) {
      if (deg[v] == 1 && !used[v]) {
        leaf = v;
        break;
      }
    }
    b.add_edge(leaf, p);
    used[leaf] = true;
    --deg[p];
  }
  NodeId u = 0, v = 0;
  for (NodeId w = 1; w <= n; ++w) {
    if (deg[w] == 1 && !used[w]) {
      if (u == 0) {
        u = w;
      } else {
        v = w;
      }
    }
  }
  b.add_edge(u, v);
  return b.build();
}

Graph random_forest(std::size_t n, int attach_pct, std::uint64_t seed) {
  WB_CHECK(n >= 1 && attach_pct >= 0 && attach_pct <= 100);
  Rng rng(seed);
  GraphBuilder b(n);
  for (std::size_t i = 2; i <= n; ++i) {
    if (rng.chance(static_cast<std::uint64_t>(attach_pct), 100)) {
      const NodeId parent = static_cast<NodeId>(rng.range(1, i - 1));
      b.add_edge(parent, static_cast<NodeId>(i));
    }
  }
  Graph g = b.build();
  return relabel(g, random_permutation(n, rng.next()));
}

Graph random_k_degenerate(std::size_t n, int k, int sparse_pct,
                          std::uint64_t seed) {
  WB_CHECK(n >= 1 && k >= 0 && sparse_pct >= 0 && sparse_pct <= 100);
  Rng rng(seed);
  GraphBuilder b(n);
  for (std::size_t i = 2; i <= n; ++i) {
    const std::size_t slots =
        std::min<std::size_t>(static_cast<std::size_t>(k), i - 1);
    // Sample `slots` distinct earlier nodes (skip each independently with the
    // sparseness probability).
    std::vector<NodeId> earlier(i - 1);
    std::iota(earlier.begin(), earlier.end(), NodeId{1});
    rng.shuffle(earlier);
    for (std::size_t s = 0; s < slots; ++s) {
      if (rng.chance(static_cast<std::uint64_t>(sparse_pct), 100)) continue;
      b.add_edge(earlier[s], static_cast<NodeId>(i));
    }
  }
  Graph g = b.build();
  return relabel(g, random_permutation(n, rng.next()));
}

Graph erdos_renyi(std::size_t n, std::uint64_t p_num, std::uint64_t p_den,
                  std::uint64_t seed) {
  Rng rng(seed);
  GraphBuilder b(n);
  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = i + 1; j <= n; ++j) {
      if (rng.chance(p_num, p_den)) {
        b.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(j));
      }
    }
  }
  return b.build();
}

Graph connected_gnp(std::size_t n, std::uint64_t p_num, std::uint64_t p_den,
                    std::uint64_t seed) {
  Rng rng(seed);
  Graph tree = random_tree(n, rng.next());
  GraphBuilder b(n);
  for (const Edge& e : tree.edges()) b.add_edge(e.u, e.v);
  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = i + 1; j <= n; ++j) {
      if (rng.chance(p_num, p_den)) {
        b.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(j));
      }
    }
  }
  return b.build();
}

Graph random_bipartite(std::size_t a, std::size_t b, std::uint64_t p_num,
                       std::uint64_t p_den, std::uint64_t seed) {
  Rng rng(seed);
  GraphBuilder g(a + b);
  for (std::size_t i = 1; i <= a; ++i) {
    for (std::size_t j = a + 1; j <= a + b; ++j) {
      if (rng.chance(p_num, p_den)) {
        g.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(j));
      }
    }
  }
  return g.build();
}

Graph random_even_odd_bipartite(std::size_t n, std::uint64_t p_num,
                                std::uint64_t p_den, std::uint64_t seed) {
  Rng rng(seed);
  GraphBuilder g(n);
  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = i + 1; j <= n; ++j) {
      if ((i % 2) == (j % 2)) continue;
      if (rng.chance(p_num, p_den)) {
        g.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(j));
      }
    }
  }
  return g.build();
}

Graph connected_even_odd_bipartite(std::size_t n, std::uint64_t p_num,
                                   std::uint64_t p_den, std::uint64_t seed) {
  WB_CHECK(n >= 2);
  Rng rng(seed);
  GraphBuilder g(n);
  // Alternating spanning tree: attach each node to a random earlier node of
  // the opposite parity (node 2 attaches to 1; parities 1,2 differ, and for
  // every i >= 2 an opposite-parity earlier node exists).
  for (std::size_t i = 2; i <= n; ++i) {
    while (true) {
      const NodeId cand = static_cast<NodeId>(rng.range(1, i - 1));
      if ((cand % 2) != (i % 2)) {
        g.add_edge(cand, static_cast<NodeId>(i));
        break;
      }
    }
  }
  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = i + 1; j <= n; ++j) {
      if ((i % 2) == (j % 2)) continue;
      if (rng.chance(p_num, p_den)) {
        g.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(j));
      }
    }
  }
  return g.build();
}

Graph planted_triangle(std::size_t n, std::uint64_t p_num, std::uint64_t p_den,
                       std::uint64_t seed, bool* planted) {
  Rng rng(seed);
  Graph base = random_even_odd_bipartite(n, p_num, p_den, rng.next());
  GraphBuilder g(n);
  for (const Edge& e : base.edges()) g.add_edge(e.u, e.v);
  // Find a path u - w - v and close it with edge {u,v} (same parity, so it is
  // absent from the bipartite base).
  bool done = false;
  for (NodeId w = 1; w <= n && !done; ++w) {
    const auto nb = base.neighbors(w);
    if (nb.size() >= 2) {
      g.add_edge(nb[0], nb[1]);
      done = true;
    }
  }
  if (planted != nullptr) *planted = done;
  return g.build();
}

std::vector<NodeId> random_permutation(std::size_t n, std::uint64_t seed) {
  std::vector<NodeId> perm(n);
  std::iota(perm.begin(), perm.end(), NodeId{1});
  Rng rng(seed);
  rng.shuffle(perm);
  return perm;
}

namespace {

/// Per-sample RNG stream: splitmix64-style derivation from (seed, index), so
/// sample i is reproducible in isolation — the property the two-pass CSR
/// build and any parallel generation both rely on.
Rng stream_rng(std::uint64_t base, std::size_t i) {
  return Rng(base + static_cast<std::uint64_t>(i) * 0x9e3779b97f4a7c15ULL);
}

}  // namespace

Graph rmat_graph(int scale, std::size_t edge_factor, std::uint64_t seed,
                 Graph::BuildStats* stats) {
  WB_CHECK_MSG(scale >= 1 && scale <= 28, "rmat scale out of range 1..28");
  WB_CHECK_MSG(edge_factor >= 1, "rmat edge factor must be >= 1");
  const std::size_t n = std::size_t{1} << scale;
  const std::size_t samples = n * edge_factor;
  const std::uint64_t base = mix64(seed);
  const auto replay = [=](const Graph::PairSink& sink) {
    for (std::size_t i = 0; i < samples; ++i) {
      Rng r = stream_rng(base, i);
      std::uint64_t u = 0, v = 0;
      for (int level = 0; level < scale; ++level) {
        // Graph500 defaults: A=0.57, B=0.19, C=0.19, D=0.05 — quadrant
        // (row, col) bits per recursion level.
        const std::uint64_t q = r.below(100);
        const std::uint64_t ubit = q >= 76 ? 1 : 0;            // C or D
        const std::uint64_t vbit =
            (q >= 57 && q < 76) || q >= 95 ? 1 : 0;            // B or D
        u = (u << 1) | ubit;
        v = (v << 1) | vbit;
      }
      sink(static_cast<NodeId>(u + 1), static_cast<NodeId>(v + 1));
    }
  };
  return Graph::from_pair_stream(n, replay, stats);
}

Graph random_power_law(std::size_t n, std::size_t edge_factor, double exponent,
                       std::uint64_t seed, Graph::BuildStats* stats) {
  WB_CHECK_MSG(n >= 1, "power-law graph needs at least one node");
  WB_CHECK_MSG(edge_factor >= 1, "power-law edge factor must be >= 1");
  WB_CHECK_MSG(exponent > 1.0, "power-law exponent must exceed 1");
  // Chung–Lu weights w_i = i^(-1/(exponent-1)); endpoints sampled by binary
  // search on the cumulative weights.
  std::vector<double> cum(n + 1, 0.0);
  const double alpha = -1.0 / (exponent - 1.0);
  for (std::size_t i = 1; i <= n; ++i) {
    cum[i] = cum[i - 1] + std::pow(static_cast<double>(i), alpha);
  }
  const double total = cum[n];
  const std::size_t samples = n * edge_factor;
  const std::uint64_t base = mix64(seed ^ 0xc2b2ae3d27d4eb4fULL);
  const auto pick = [&](Rng& r) {
    const double x =
        static_cast<double>(r.next() >> 11) * (1.0 / 9007199254740992.0) *
        total;
    const auto it = std::upper_bound(cum.begin() + 1, cum.end(), x);
    const auto idx = static_cast<std::size_t>(it - cum.begin());
    return static_cast<NodeId>(std::min(idx, n));
  };
  const auto replay = [&](const Graph::PairSink& sink) {
    for (std::size_t i = 0; i < samples; ++i) {
      Rng r = stream_rng(base, i);
      const NodeId a = pick(r);
      const NodeId b = pick(r);
      sink(a, b);
    }
  };
  return Graph::from_pair_stream(n, replay, stats);
}

}  // namespace wb
