#include "src/graph/io.h"

#include <algorithm>
#include <sstream>

namespace wb {

std::string to_edge_list(const Graph& g) {
  std::ostringstream os;
  os << g.node_count() << " " << g.edge_count() << "\n";
  for (const Edge& e : g.edges()) os << e.u << " " << e.v << "\n";
  return os.str();
}

Graph from_edge_list(const std::string& text) {
  std::istringstream is(text);
  std::size_t n = 0, m = 0;
  WB_REQUIRE_MSG(static_cast<bool>(is >> n >> m), "missing graph header");
  std::vector<Edge> edges;
  edges.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    NodeId u = 0, v = 0;
    WB_REQUIRE_MSG(static_cast<bool>(is >> u >> v), "truncated edge list");
    WB_REQUIRE_MSG(u != v && u >= 1 && v >= 1 && u <= n && v <= n,
                   "bad edge {" << u << "," << v << "}");
    edges.push_back(make_edge(u, v));
  }
  return Graph(n, edges);
}

std::string to_dot(const Graph& g, const std::vector<NodeId>& highlight) {
  std::ostringstream os;
  os << "graph G {\n";
  for (NodeId v : highlight) {
    os << "  " << v << " [style=filled, fillcolor=lightblue];\n";
  }
  for (NodeId v = 1; v <= g.node_count(); ++v) {
    if (g.degree(v) == 0 &&
        std::find(highlight.begin(), highlight.end(), v) == highlight.end()) {
      os << "  " << v << ";\n";
    }
  }
  for (const Edge& e : g.edges()) {
    os << "  " << e.u << " -- " << e.v << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace wb
