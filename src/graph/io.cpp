#include "src/graph/io.h"

#include <algorithm>
#include <charconv>
#include <cstdint>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

namespace wb {

namespace {

/// Chunked whitespace-separated u64 tokenizer over an istream: fixed 64 KiB
/// buffer, tokens may span refills, overflow detected digit by digit.
class TokenStream {
 public:
  explicit TokenStream(std::istream& in) : in_(in) {}

  /// Next unsigned integer token. Returns false at clean EOF (only
  /// whitespace remained); throws DataError on junk or overflow.
  bool next_u64(std::uint64_t& out) {
    int c = get();
    while (c >= 0 && is_space(c)) c = get();
    if (c < 0) return false;
    WB_REQUIRE_MSG(c >= '0' && c <= '9', "unexpected character '"
                                             << static_cast<char>(c)
                                             << "' in edge list");
    std::uint64_t value = 0;
    constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
    while (c >= '0' && c <= '9') {
      const auto d = static_cast<std::uint64_t>(c - '0');
      WB_REQUIRE_MSG(value <= (kMax - d) / 10, "integer overflow in edge list");
      value = value * 10 + d;
      c = get();
    }
    WB_REQUIRE_MSG(c < 0 || is_space(c), "unexpected character '"
                                             << static_cast<char>(c)
                                             << "' in edge list");
    out = value;
    return true;
  }

  [[nodiscard]] std::size_t bytes() const noexcept { return bytes_; }

 private:
  static bool is_space(int c) {
    return c == ' ' || c == '\n' || c == '\t' || c == '\r' || c == '\v' ||
           c == '\f';
  }
  int get() {
    if (pos_ == len_) {
      in_.read(buf_, sizeof buf_);
      len_ = static_cast<std::size_t>(in_.gcount());
      pos_ = 0;
      if (len_ == 0) return -1;
      bytes_ += len_;
    }
    return static_cast<unsigned char>(buf_[pos_++]);
  }

  std::istream& in_;
  char buf_[1 << 16];
  std::size_t pos_ = 0;
  std::size_t len_ = 0;
  std::size_t bytes_ = 0;
};

void check_limits(std::uint64_t n, std::uint64_t m,
                  const EdgeListLimits& limits) {
  WB_REQUIRE_MSG(n <= limits.max_nodes,
                 "node count " << n << " exceeds limit " << limits.max_nodes);
  WB_REQUIRE_MSG(m <= limits.max_edges,
                 "edge count " << m << " exceeds limit " << limits.max_edges);
  WB_REQUIRE_MSG(n < std::numeric_limits<NodeId>::max(),
                 "node count " << n << " does not fit 32-bit node ids");
}

struct ParsedHeader {
  std::uint64_t n = 0;
  std::uint64_t m = 0;
  std::size_t bytes = 0;
};

/// Parse the "n m" header and then hand each of the m validated endpoint
/// pairs to `sink`. The stream must already be positioned at the header.
template <typename Sink>
ParsedHeader parse_pairs(std::istream& in, const EdgeListLimits& limits,
                         const Sink& sink) {
  TokenStream ts(in);
  ParsedHeader h;
  WB_REQUIRE_MSG(ts.next_u64(h.n) && ts.next_u64(h.m), "missing graph header");
  check_limits(h.n, h.m, limits);
  for (std::uint64_t i = 0; i < h.m; ++i) {
    std::uint64_t u = 0, v = 0;
    WB_REQUIRE_MSG(ts.next_u64(u) && ts.next_u64(v), "truncated edge list");
    WB_REQUIRE_MSG(u >= 1 && v >= 1 && u <= h.n && v <= h.n,
                   "bad edge {" << u << "," << v << "}");
    sink(static_cast<NodeId>(u), static_cast<NodeId>(v));
  }
  h.bytes = ts.bytes();
  return h;
}

}  // namespace

std::string to_edge_list(const Graph& g) {
  std::ostringstream os;
  write_edge_list(g, os);
  return os.str();
}

Graph from_edge_list(const std::string& text) {
  std::istringstream is(text);
  std::size_t n = 0, m = 0;
  WB_REQUIRE_MSG(static_cast<bool>(is >> n >> m), "missing graph header");
  std::vector<Edge> edges;
  edges.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    NodeId u = 0, v = 0;
    WB_REQUIRE_MSG(static_cast<bool>(is >> u >> v), "truncated edge list");
    WB_REQUIRE_MSG(u != v && u >= 1 && v >= 1 && u <= n && v <= n,
                   "bad edge {" << u << "," << v << "}");
    edges.push_back(make_edge(u, v));
  }
  return Graph(n, edges);
}

Graph read_edge_list(std::istream& in, const EdgeListLimits& limits,
                     EdgeListLoadStats* stats) {
  EdgeListLoadStats local;
  const std::istream::pos_type start = in.tellg();
  const bool seekable = start != std::istream::pos_type(-1) && !in.fail();

  if (seekable) {
    // Pre-parse the header alone for n (from_pair_stream needs it up front);
    // each replay pass then re-seeks and re-parses from the top.
    std::uint64_t n = 0, m = 0;
    {
      TokenStream ts(in);
      WB_REQUIRE_MSG(ts.next_u64(n) && ts.next_u64(m), "missing graph header");
      check_limits(n, m, limits);
    }
    const auto replay = [&](const Graph::PairSink& sink) {
      in.clear();
      in.seekg(start);
      WB_REQUIRE_MSG(!in.fail(), "seek failed while replaying edge list");
      local.bytes_read = parse_pairs(in, limits, sink).bytes;
    };
    Graph g = Graph::from_pair_stream(static_cast<std::size_t>(n), replay,
                                      &local.build);
    local.two_pass = true;
    if (stats != nullptr) *stats = local;
    return g;
  }

  // Non-seekable (pipe-like) input: buffer normalized pairs once.
  std::vector<Edge> edges;
  const ParsedHeader h = parse_pairs(in, limits, [&](NodeId u, NodeId v) {
    ++local.build.pairs;
    if (u == v) {
      ++local.build.self_loops_dropped;
      return;
    }
    edges.push_back(u < v ? Edge{u, v} : Edge{v, u});
  });
  local.bytes_read = h.bytes;
  const std::size_t kept = edges.size();
  const std::size_t buffer_bytes = edges.capacity() * sizeof(Edge);
  Graph g =
      Graph::from_unsorted_edges(static_cast<std::size_t>(h.n), std::move(edges));
  local.build.duplicates_dropped = kept - g.edge_count();
  local.build.peak_bytes = buffer_bytes + g.memory_bytes();
  if (stats != nullptr) *stats = local;
  return g;
}

void write_edge_list(const Graph& g, std::ostream& out) {
  // Manual chunked formatter: ostream operator<< per number is the bottleneck
  // at tens of millions of edges.
  char buf[1 << 16];
  std::size_t len = 0;
  const auto flush = [&] {
    out.write(buf, static_cast<std::streamsize>(len));
    len = 0;
  };
  const auto put_u64 = [&](std::uint64_t value, char sep) {
    if (len + 24 > sizeof buf) flush();
    const auto r = std::to_chars(buf + len, buf + sizeof buf - 1, value);
    len = static_cast<std::size_t>(r.ptr - buf);
    buf[len++] = sep;
  };
  put_u64(g.node_count(), ' ');
  put_u64(g.edge_count(), '\n');
  for (const Edge e : g.edges()) {
    put_u64(e.u, ' ');
    put_u64(e.v, '\n');
  }
  flush();
}

std::string to_dot(const Graph& g, const std::vector<NodeId>& highlight) {
  std::ostringstream os;
  os << "graph G {\n";
  for (NodeId v : highlight) {
    os << "  " << v << " [style=filled, fillcolor=lightblue];\n";
  }
  for (NodeId v = 1; v <= g.node_count(); ++v) {
    if (g.degree(v) == 0 &&
        std::find(highlight.begin(), highlight.end(), v) == highlight.end()) {
      os << "  " << v << ";\n";
    }
  }
  for (const Edge e : g.edges()) {
    os << "  " << e.u << " -- " << e.v << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace wb
