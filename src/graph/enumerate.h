// Exhaustive enumeration of labeled graphs and exact counting of the graph
// families in Lemma 3 / Theorems 3, 6, 8, 9.
//
// Enumeration drives the "for every graph and every adversarial schedule"
// validation of Table 2's yes-cells, and exact family counts drive the
// counting-bound tables. Counts that exceed 64 bits are reported as log2.
#pragma once

#include <cstdint>
#include <functional>

#include "src/graph/graph.h"

namespace wb {

/// Invoke fn on every labeled simple graph on n nodes (2^{C(n,2)} graphs).
/// Intended for n ≤ 6; guarded against n > 8.
void for_each_labeled_graph(std::size_t n,
                            const std::function<void(const Graph&)>& fn);

/// Invoke fn on every *connected* labeled graph on n nodes.
void for_each_connected_graph(std::size_t n,
                              const std::function<void(const Graph&)>& fn);

/// Invoke fn on every even-odd-bipartite labeled graph on n nodes
/// (2^{⌈n/2⌉·⌊n/2⌋} graphs).
void for_each_even_odd_bipartite_graph(
    std::size_t n, const std::function<void(const Graph&)>& fn);

/// Invoke fn on every labeled forest on n nodes.
void for_each_labeled_forest(std::size_t n,
                             const std::function<void(const Graph&)>& fn);

// --- Exact family counts (log2 where noted) ---------------------------------

/// log2 of the number of labeled graphs on n nodes = C(n,2).
[[nodiscard]] double log2_count_all_graphs(std::size_t n);

/// log2 #bipartite graphs with *fixed* parts {1..n/2}, {n/2+1..n} = (n/2)^2
/// (the Thm 3 family; n even).
[[nodiscard]] double log2_count_bipartite_fixed_parts(std::size_t n);

/// log2 #even-odd-bipartite graphs on n nodes = ⌈n/2⌉·⌊n/2⌋ (Thm 8 family).
[[nodiscard]] double log2_count_even_odd_bipartite(std::size_t n);

/// log2 #labeled forests on n nodes (exact via the component recurrence for
/// n ≤ 1000 using log-domain arithmetic; exceeds 64-bit counts quickly).
[[nodiscard]] double log2_count_labeled_forests(std::size_t n);

/// Exact number of labeled forests for small n (n ≤ 18 fits in 64 bits).
[[nodiscard]] std::uint64_t count_labeled_forests_exact(std::size_t n);

/// log2 #graphs in the Thm 9 family: graphs on n nodes where only
/// {v_1..v_f} may carry edges (isolated tail), = C(f,2) plus ordering info.
[[nodiscard]] double log2_count_subgraph_family(std::size_t n, std::size_t f);

/// Lower bound on log2 #labeled k-degenerate graphs on n nodes (constructive:
/// each node beyond the first k picks one of C(i-1, k) neighbor sets; an
/// undercount but enough to exhibit the Ω(kn log n) growth).
[[nodiscard]] double log2_count_k_degenerate_lower(std::size_t n, int k);

}  // namespace wb
