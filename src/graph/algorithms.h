// Reference (centralized) graph algorithms.
//
// These are the ground truth every protocol's whiteboard output is checked
// against: BFS layers/forests (Thm 7/10), connectivity and components (§6),
// bipartiteness (§5.2), degeneracy orders (§3), triangle detection (Thm 3),
// and independent-set validation (Thm 5/6).
#pragma once

#include <array>
#include <optional>
#include <vector>

#include "src/graph/graph.h"

namespace wb {

/// BFS from a single root. dist[v-1] = hop distance or -1 if unreachable;
/// parent[v-1] = BFS parent (kNoNode for the root / unreachable nodes).
/// Neighbors are explored in increasing ID order, which makes `parent` the
/// minimum-ID parent in the previous layer — the same tie-break the paper's
/// protocols use (p(v) = min-ID already-written neighbor).
struct BfsResult {
  std::vector<int> dist;
  std::vector<NodeId> parent;
};
[[nodiscard]] BfsResult bfs_from(const Graph& g, NodeId root);

/// BFS forest per the paper's convention (§5.2, §6): the root of each
/// connected component is the smallest ID in that component.
struct BfsForest {
  std::vector<int> layer;       // per node, 0 at roots
  std::vector<NodeId> parent;   // kNoNode at roots
  std::vector<NodeId> roots;    // in increasing ID order
};
[[nodiscard]] BfsForest bfs_forest(const Graph& g);

/// Valid BFS forest check: `parent`/`layer` agree with true hop distances
/// from the component-minimum roots and every non-root's parent is an
/// adjacent node one layer above. Any valid BFS tree is accepted (parent
/// choice within the previous layer is free).
[[nodiscard]] bool is_valid_bfs_forest(const Graph& g,
                                       const std::vector<int>& layer,
                                       const std::vector<NodeId>& parent);

/// Component index (0-based, in order of smallest member ID) per node.
struct Components {
  std::vector<std::size_t> component;
  std::size_t count = 0;
};
[[nodiscard]] Components connected_components(const Graph& g);
[[nodiscard]] bool is_connected(const Graph& g);

/// Proper 2-coloring if bipartite (colors 0/1, color of each component's
/// minimum node is 0), std::nullopt otherwise.
[[nodiscard]] std::optional<std::vector<int>> bipartition(const Graph& g);
[[nodiscard]] bool is_bipartite(const Graph& g);

/// §5.2: no edge joins two nodes whose IDs have the same parity.
[[nodiscard]] bool is_even_odd_bipartite(const Graph& g);

/// Degeneracy and a witnessing elimination order (r_1,...,r_n per Def. 1):
/// each r_i has degree ≤ k among the not-yet-removed nodes. O(n + m).
struct Degeneracy {
  int k = 0;
  std::vector<NodeId> order;
};
[[nodiscard]] Degeneracy degeneracy_order(const Graph& g);
[[nodiscard]] bool is_k_degenerate(const Graph& g, int k);

/// Triangle utilities (Thm 3). find_triangle returns IDs sorted ascending.
[[nodiscard]] bool has_triangle(const Graph& g);
[[nodiscard]] std::optional<std::array<NodeId, 3>> find_triangle(const Graph& g);
[[nodiscard]] std::uint64_t count_triangles(const Graph& g);

/// C4 detection ("Does G contain a square?", §1).
[[nodiscard]] bool has_square(const Graph& g);

/// Eccentricity-based diameter; -1 when disconnected ("diameter ≤ 3", §1).
[[nodiscard]] int diameter(const Graph& g);

/// Independent-set validation for Thm 5: S independent, contains `root`, and
/// inclusion-maximal.
[[nodiscard]] bool is_independent_set(const Graph& g,
                                      const std::vector<NodeId>& s);
[[nodiscard]] bool is_maximal_independent_set(const Graph& g,
                                              const std::vector<NodeId>& s);
[[nodiscard]] bool is_rooted_mis(const Graph& g, const std::vector<NodeId>& s,
                                 NodeId root);

/// §5.1: is g the disjoint union of two complete graphs of equal size?
[[nodiscard]] bool is_two_cliques(const Graph& g);
/// Is every node of degree exactly d?
[[nodiscard]] bool is_regular(const Graph& g, std::size_t d);

}  // namespace wb
