// Labeled simple undirected graphs, the input objects of every protocol.
//
// Following §2 of the paper, a graph on n nodes has unique identifiers 1..n;
// node v_i knows n, its own ID i, and the set N(i) of neighbor IDs. The Graph
// type is immutable after construction (CSR layout, sorted adjacency) so a
// protocol's LocalView can hand out std::span views safely.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "src/support/check.h"

namespace wb {

/// Node identifier, 1-based as in the paper. 0 is reserved as "none"
/// (e.g. the parent of a BFS root).
using NodeId = std::uint32_t;
inline constexpr NodeId kNoNode = 0;

/// Undirected edge with endpoints normalized so that u < v.
struct Edge {
  NodeId u = 0;
  NodeId v = 0;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

[[nodiscard]] constexpr Edge make_edge(NodeId a, NodeId b) {
  WB_CHECK(a != b && a != kNoNode && b != kNoNode);
  return (a < b) ? Edge{a, b} : Edge{b, a};
}

class Graph {
 public:
  /// Empty graph on n nodes.
  explicit Graph(std::size_t n);

  /// Graph from an edge list (duplicates rejected, self-loops rejected,
  /// endpoints must be in 1..n).
  Graph(std::size_t n, std::span<const Edge> edges);

  [[nodiscard]] std::size_t node_count() const noexcept { return n_; }
  [[nodiscard]] std::size_t edge_count() const noexcept { return m_; }

  [[nodiscard]] std::size_t degree(NodeId v) const {
    check_id(v);
    return offsets_[v] - offsets_[v - 1];
  }

  /// Sorted neighbor IDs of v.
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId v) const {
    check_id(v);
    return std::span<const NodeId>(adjacency_)
        .subspan(offsets_[v - 1], offsets_[v] - offsets_[v - 1]);
  }

  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const;

  /// All edges, sorted by (u, v) with u < v.
  [[nodiscard]] const std::vector<Edge>& edges() const noexcept {
    return edges_;
  }

  friend bool operator==(const Graph& a, const Graph& b) {
    return a.n_ == b.n_ && a.edges_ == b.edges_;
  }

 private:
  void check_id(NodeId v) const {
    WB_CHECK_MSG(v >= 1 && v <= n_, "node id " << v << " out of range 1.." << n_);
  }

  std::size_t n_ = 0;
  std::size_t m_ = 0;
  std::vector<std::size_t> offsets_;  // offsets_[v] = end of v's block; [0]=0
  std::vector<NodeId> adjacency_;
  std::vector<Edge> edges_;
};

/// Incremental edge-set builder with deduplication.
class GraphBuilder {
 public:
  explicit GraphBuilder(std::size_t n) : n_(n) {}

  /// Add edge {a,b}; returns false if it was already present.
  bool add_edge(NodeId a, NodeId b);

  [[nodiscard]] bool has_edge(NodeId a, NodeId b) const;
  [[nodiscard]] std::size_t node_count() const noexcept { return n_; }
  [[nodiscard]] std::size_t edge_count() const noexcept { return edges_.size(); }

  [[nodiscard]] Graph build() const;

 private:
  std::size_t n_;
  std::vector<Edge> edges_;  // kept sorted for O(log m) dedup
};

/// The graph with node labels permuted: node v of `g` becomes perm[v-1] (a
/// permutation of 1..n). Used to decouple structural families from the ID
/// assignments protocols key on.
[[nodiscard]] Graph relabel(const Graph& g, std::span<const NodeId> perm);

}  // namespace wb
