// Labeled simple undirected graphs, the input objects of every protocol.
//
// Following §2 of the paper, a graph on n nodes has unique identifiers 1..n;
// node v_i knows n, its own ID i, and the set N(i) of neighbor IDs. The Graph
// type is immutable after construction (CSR layout, sorted adjacency) so a
// protocol's LocalView can hand out std::span views safely.
//
// The representation is a single packed CSR: one offsets array (uint64, one
// entry per node) and one adjacency array (uint32 per directed arc). There is
// no secondary edge vector — edges() is a lazy adapter that walks the upper
// half of the CSR, so a graph costs 8(n+1) + 8m bytes and nothing else.
// Million-node instances come in through the bulk builders below
// (from_unsorted_edges / from_pair_stream), which symmetrize and deduplicate
// in flat buffers without any per-edge container mutation.
#pragma once

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <iterator>
#include <span>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/support/check.h"

namespace wb {

/// Node identifier, 1-based as in the paper. 0 is reserved as "none"
/// (e.g. the parent of a BFS root).
using NodeId = std::uint32_t;
inline constexpr NodeId kNoNode = 0;

/// Undirected edge with endpoints normalized so that u < v.
struct Edge {
  NodeId u = 0;
  NodeId v = 0;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

[[nodiscard]] constexpr Edge make_edge(NodeId a, NodeId b) {
  WB_CHECK(a != b && a != kNoNode && b != kNoNode);
  return (a < b) ? Edge{a, b} : Edge{b, a};
}

class Graph {
 public:
  /// Empty graph on n nodes.
  explicit Graph(std::size_t n);

  /// Graph from an edge list (duplicates rejected, self-loops rejected,
  /// endpoints must be in 1..n with u < v).
  Graph(std::size_t n, std::span<const Edge> edges);

  /// Braced-list convenience: Graph(4, {{1, 2}, {2, 3}}).
  Graph(std::size_t n, std::initializer_list<Edge> edges)
      : Graph(n, std::span<const Edge>(edges.begin(), edges.size())) {}

  /// Bulk path for generators and loaders: takes ownership of a possibly
  /// unsorted, possibly duplicate-carrying edge buffer, normalizes endpoints,
  /// and builds the CSR with one sort + unique over the flat buffer
  /// (O(m log m), no per-edge container mutation). Duplicates collapse
  /// silently; self-loops and out-of-range endpoints are a caller bug.
  [[nodiscard]] static Graph from_unsorted_edges(std::size_t n,
                                                 std::vector<Edge>&& edges);

  /// Receives one endpoint pair per call; order and orientation are free,
  /// duplicates and both-direction pairs collapse, self-loops are dropped.
  using PairSink = std::function<void(NodeId, NodeId)>;
  /// A replayable pair producer: invoked with a sink, emits every pair.
  /// Must emit the identical sequence on every invocation.
  using PairReplay = std::function<void(const PairSink&)>;

  struct BuildStats {
    std::size_t pairs = 0;               // pairs emitted (per pass)
    std::size_t self_loops_dropped = 0;  // per pass
    std::size_t duplicates_dropped = 0;  // duplicate undirected edges removed
    std::size_t peak_bytes = 0;          // high-water graph memory during build
  };

  /// Two-pass streaming CSR assembly: replays `emit_all` once to count
  /// degrees, once to scatter, then deduplicates per block in place. Peak
  /// memory is the pre-dedup CSR itself (offsets + one arc per surviving
  /// emitted pair direction) — no intermediate edge vector, which is what
  /// keeps Graph500-scale loads within ~1.1x of the final footprint.
  [[nodiscard]] static Graph from_pair_stream(std::size_t n,
                                              const PairReplay& emit_all,
                                              BuildStats* stats = nullptr);

  [[nodiscard]] std::size_t node_count() const noexcept { return n_; }
  [[nodiscard]] std::size_t edge_count() const noexcept { return m_; }

  [[nodiscard]] std::size_t degree(NodeId v) const {
    check_id(v);
    return static_cast<std::size_t>(offsets_[v] - offsets_[v - 1]);
  }

  /// Sorted neighbor IDs of v.
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId v) const {
    check_id(v);
    return std::span<const NodeId>(adjacency_)
        .subspan(static_cast<std::size_t>(offsets_[v - 1]),
                 static_cast<std::size_t>(offsets_[v] - offsets_[v - 1]));
  }

  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const;

  /// Lazy view of all edges, sorted by (u, v) with u < v: walks the upper
  /// half of the CSR without materializing anything. Iterators yield Edge by
  /// value; the range is sized (size() == edge_count()).
  class EdgeRange {
   public:
    class iterator {
     public:
      using value_type = Edge;
      using reference = Edge;
      using pointer = void;
      using difference_type = std::ptrdiff_t;
      using iterator_category = std::input_iterator_tag;
      using iterator_concept = std::forward_iterator_tag;

      iterator() = default;
      [[nodiscard]] Edge operator*() const {
        return Edge{u_, g_->adjacency_[pos_]};
      }
      iterator& operator++() {
        ++pos_;
        settle();
        return *this;
      }
      iterator operator++(int) {
        iterator old = *this;
        ++*this;
        return old;
      }
      friend bool operator==(const iterator& a, const iterator& b) {
        return a.pos_ == b.pos_;
      }

     private:
      friend class EdgeRange;
      iterator(const Graph* g, NodeId u, std::size_t pos)
          : g_(g), u_(u), pos_(pos) {
        settle();
      }
      /// Advance to the next adjacency slot holding the upper endpoint of an
      /// edge (w > u), crossing block boundaries as needed.
      void settle() {
        const auto n = static_cast<NodeId>(g_->n_);
        while (u_ <= n) {
          const auto end = static_cast<std::size_t>(g_->offsets_[u_]);
          while (pos_ < end && g_->adjacency_[pos_] < u_) ++pos_;
          if (pos_ < end) return;
          ++u_;  // pos_ now sits at the start of u_'s block
        }
      }
      const Graph* g_ = nullptr;
      NodeId u_ = 0;
      std::size_t pos_ = 0;
    };

    [[nodiscard]] iterator begin() const { return iterator(g_, 1, 0); }
    [[nodiscard]] iterator end() const {
      return iterator(g_, static_cast<NodeId>(g_->n_) + 1,
                      g_->adjacency_.size());
    }
    [[nodiscard]] std::size_t size() const noexcept { return g_->m_; }
    [[nodiscard]] bool empty() const noexcept { return g_->m_ == 0; }

   private:
    friend class Graph;
    explicit EdgeRange(const Graph* g) : g_(g) {}
    const Graph* g_;
  };

  [[nodiscard]] EdgeRange edges() const noexcept { return EdgeRange(this); }

  /// Materialized sorted edge list, for callers that need random access or a
  /// container (reductions, golden comparisons). O(m) allocation.
  [[nodiscard]] std::vector<Edge> edge_vector() const;

  /// Bytes held by the CSR arrays (capacity, not size — what the process
  /// actually pays). The benches assert build peaks against this.
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return offsets_.capacity() * sizeof(std::uint64_t) +
           adjacency_.capacity() * sizeof(NodeId);
  }

  friend bool operator==(const Graph& a, const Graph& b) {
    // CSR is canonical (blocks sorted), so array equality is graph equality.
    return a.n_ == b.n_ && a.offsets_ == b.offsets_ &&
           a.adjacency_ == b.adjacency_;
  }

 private:
  Graph() = default;

  void check_id(NodeId v) const {
    WB_CHECK_MSG(v >= 1 && v <= n_, "node id " << v << " out of range 1.." << n_);
  }

  /// Sort each CSR block, drop duplicate arcs in place, and re-pack offsets.
  /// Returns the number of duplicate undirected edges removed.
  std::size_t dedup_blocks();

  std::size_t n_ = 0;
  std::size_t m_ = 0;
  std::vector<std::uint64_t> offsets_;  // offsets_[v] = end of v's block; [0]=0
  std::vector<NodeId> adjacency_;
};

/// Incremental edge-set builder with O(1) deduplication: edges append to a
/// flat buffer and a hash set answers membership; build() hands the buffer to
/// Graph::from_unsorted_edges for the one-shot sort.
class GraphBuilder {
 public:
  explicit GraphBuilder(std::size_t n) : n_(n) {}

  /// Add edge {a,b}; returns false if it was already present.
  bool add_edge(NodeId a, NodeId b);

  [[nodiscard]] bool has_edge(NodeId a, NodeId b) const;
  [[nodiscard]] std::size_t node_count() const noexcept { return n_; }
  [[nodiscard]] std::size_t edge_count() const noexcept { return edges_.size(); }

  [[nodiscard]] Graph build() const;

 private:
  static std::uint64_t key(Edge e) {
    return (static_cast<std::uint64_t>(e.u) << 32) | e.v;
  }

  std::size_t n_;
  std::vector<Edge> edges_;  // append order; sorted once in build()
  std::unordered_set<std::uint64_t> present_;
};

/// The graph with node labels permuted: node v of `g` becomes perm[v-1] (a
/// permutation of 1..n). Used to decouple structural families from the ID
/// assignments protocols key on.
[[nodiscard]] Graph relabel(const Graph& g, std::span<const NodeId> perm);

}  // namespace wb
