#include "src/graph/graph.h"

#include <algorithm>

namespace wb {

Graph::Graph(std::size_t n) : Graph(n, {}) {}

Graph::Graph(std::size_t n, std::span<const Edge> edges) : n_(n) {
  edges_.assign(edges.begin(), edges.end());
  std::sort(edges_.begin(), edges_.end());
  WB_CHECK_MSG(
      std::adjacent_find(edges_.begin(), edges_.end()) == edges_.end(),
      "duplicate edge in edge list");
  m_ = edges_.size();

  std::vector<std::size_t> deg(n_ + 1, 0);
  for (const Edge& e : edges_) {
    WB_CHECK_MSG(e.u >= 1 && e.v <= n_ && e.u < e.v,
                 "edge {" << e.u << "," << e.v << "} invalid for n=" << n_);
    ++deg[e.u];
    ++deg[e.v];
  }
  offsets_.assign(n_ + 1, 0);
  for (std::size_t v = 1; v <= n_; ++v) offsets_[v] = offsets_[v - 1] + deg[v];
  adjacency_.resize(2 * m_);
  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const Edge& e : edges_) {
    adjacency_[cursor[e.u - 1]++] = e.v;
    adjacency_[cursor[e.v - 1]++] = e.u;
  }
  // Edge list was sorted, but per-node blocks interleave u- and v-sides;
  // sort each block so neighbors() is ordered and has_edge can bisect.
  for (std::size_t v = 1; v <= n_; ++v) {
    std::sort(adjacency_.begin() + static_cast<std::ptrdiff_t>(offsets_[v - 1]),
              adjacency_.begin() + static_cast<std::ptrdiff_t>(offsets_[v]));
  }
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  check_id(u);
  check_id(v);
  if (u == v) return false;
  const auto nb = neighbors(u);
  return std::binary_search(nb.begin(), nb.end(), v);
}

bool GraphBuilder::add_edge(NodeId a, NodeId b) {
  WB_CHECK_MSG(a != b, "self-loop at node " << a);
  WB_CHECK_MSG(a >= 1 && a <= n_ && b >= 1 && b <= n_,
               "edge {" << a << "," << b << "} out of range 1.." << n_);
  const Edge e = make_edge(a, b);
  const auto it = std::lower_bound(edges_.begin(), edges_.end(), e);
  if (it != edges_.end() && *it == e) return false;
  edges_.insert(it, e);
  return true;
}

bool GraphBuilder::has_edge(NodeId a, NodeId b) const {
  if (a == b) return false;
  const Edge e = make_edge(a, b);
  return std::binary_search(edges_.begin(), edges_.end(), e);
}

Graph GraphBuilder::build() const { return Graph(n_, edges_); }

Graph relabel(const Graph& g, std::span<const NodeId> perm) {
  WB_CHECK(perm.size() == g.node_count());
  std::vector<bool> seen(g.node_count() + 1, false);
  for (NodeId p : perm) {
    WB_CHECK_MSG(p >= 1 && p <= g.node_count() && !seen[p],
                 "not a permutation of 1..n");
    seen[p] = true;
  }
  std::vector<Edge> edges;
  edges.reserve(g.edge_count());
  for (const Edge& e : g.edges()) {
    edges.push_back(make_edge(perm[e.u - 1], perm[e.v - 1]));
  }
  return Graph(g.node_count(), edges);
}

}  // namespace wb
