#include "src/graph/graph.h"

#include <algorithm>

namespace wb {

namespace {

/// After scattering with offsets_[v-1] as the per-node write cursor,
/// offsets[v-1] holds end-of-v; shift right to restore the canonical
/// "offsets[v] = end of v's block" convention.
void restore_offsets(std::vector<std::uint64_t>& offsets, std::size_t n) {
  for (std::size_t v = n; v >= 1; --v) offsets[v] = offsets[v - 1];
  offsets[0] = 0;
}

}  // namespace

Graph::Graph(std::size_t n) : Graph(n, {}) {}

Graph::Graph(std::size_t n, std::span<const Edge> edges) {
  n_ = n;
  m_ = edges.size();
  offsets_.assign(n_ + 1, 0);
  for (const Edge& e : edges) {
    WB_CHECK_MSG(e.u >= 1 && e.v <= n_ && e.u < e.v,
                 "edge {" << e.u << "," << e.v << "} invalid for n=" << n_);
    ++offsets_[e.u];
    ++offsets_[e.v];
  }
  for (std::size_t v = 1; v <= n_; ++v) offsets_[v] += offsets_[v - 1];
  adjacency_.resize(2 * m_);
  for (const Edge& e : edges) {
    adjacency_[static_cast<std::size_t>(offsets_[e.u - 1]++)] = e.v;
    adjacency_[static_cast<std::size_t>(offsets_[e.v - 1]++)] = e.u;
  }
  restore_offsets(offsets_, n_);
  // Blocks interleave u- and v-sides; sort each so neighbors() is ordered and
  // has_edge can bisect. Sorted blocks also make duplicates adjacent.
  for (std::size_t v = 1; v <= n_; ++v) {
    const auto first =
        adjacency_.begin() + static_cast<std::ptrdiff_t>(offsets_[v - 1]);
    const auto last =
        adjacency_.begin() + static_cast<std::ptrdiff_t>(offsets_[v]);
    std::sort(first, last);
    WB_CHECK_MSG(std::adjacent_find(first, last) == last,
                 "duplicate edge in edge list");
  }
}

Graph Graph::from_unsorted_edges(std::size_t n, std::vector<Edge>&& edges) {
  for (Edge& e : edges) {
    if (e.u > e.v) std::swap(e.u, e.v);
    WB_CHECK_MSG(e.u >= 1 && e.v <= n && e.u != e.v,
                 "edge {" << e.u << "," << e.v << "} invalid for n=" << n);
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  Graph g(n, edges);
  edges.clear();
  edges.shrink_to_fit();
  return g;
}

Graph Graph::from_pair_stream(std::size_t n, const PairReplay& emit_all,
                              BuildStats* stats) {
  Graph g;
  g.n_ = n;
  g.offsets_.assign(n + 1, 0);
  BuildStats local;

  // Pass 1: count degrees (validating endpoints, dropping self-loops).
  emit_all([&](NodeId a, NodeId b) {
    WB_CHECK_MSG(a >= 1 && a <= n && b >= 1 && b <= n,
                 "pair {" << a << "," << b << "} out of range 1.." << n);
    ++local.pairs;
    if (a == b) {
      ++local.self_loops_dropped;
      return;
    }
    ++g.offsets_[a];
    ++g.offsets_[b];
  });
  for (std::size_t v = 1; v <= n; ++v) g.offsets_[v] += g.offsets_[v - 1];
  const std::size_t total = n == 0 ? 0 : static_cast<std::size_t>(g.offsets_[n]);
  g.adjacency_.resize(total);
  local.peak_bytes = g.offsets_.capacity() * sizeof(std::uint64_t) +
                     g.adjacency_.capacity() * sizeof(NodeId);

  // Pass 2: scatter both arc directions, offsets_[v-1] as write cursor.
  std::size_t replayed = 0;
  emit_all([&](NodeId a, NodeId b) {
    ++replayed;
    if (a == b) return;
    g.adjacency_[static_cast<std::size_t>(g.offsets_[a - 1]++)] = b;
    g.adjacency_[static_cast<std::size_t>(g.offsets_[b - 1]++)] = a;
  });
  WB_CHECK_MSG(replayed == local.pairs,
               "pair stream replayed " << replayed << " pairs, expected "
                                       << local.pairs);
  restore_offsets(g.offsets_, n);

  const std::size_t cap_before = g.adjacency_.capacity();
  local.duplicates_dropped = g.dedup_blocks();
  if (g.adjacency_.capacity() != cap_before) {
    // shrink_to_fit holds old + new buffers while copying.
    local.peak_bytes =
        std::max(local.peak_bytes,
                 g.offsets_.capacity() * sizeof(std::uint64_t) +
                     (cap_before + g.adjacency_.capacity()) * sizeof(NodeId));
  }
  if (stats != nullptr) *stats = local;
  return g;
}

std::size_t Graph::dedup_blocks() {
  std::size_t w = 0;
  std::size_t dropped = 0;
  std::uint64_t prev_end = 0;
  for (std::size_t v = 1; v <= n_; ++v) {
    const auto start = static_cast<std::size_t>(prev_end);
    const auto end = static_cast<std::size_t>(offsets_[v]);
    prev_end = offsets_[v];
    std::sort(adjacency_.begin() + static_cast<std::ptrdiff_t>(start),
              adjacency_.begin() + static_cast<std::ptrdiff_t>(end));
    for (std::size_t i = start; i < end; ++i) {
      if (i > start && adjacency_[i] == adjacency_[i - 1]) {
        ++dropped;
        continue;
      }
      adjacency_[w++] = adjacency_[i];
    }
    offsets_[v] = w;
  }
  WB_CHECK(w % 2 == 0);  // symmetric input: every arc has its mate
  m_ = w / 2;
  adjacency_.resize(w);
  // Only realloc when the dedup slack is worth paying the copy for (the copy
  // itself transiently holds both buffers).
  if (adjacency_.capacity() > w + w / 8) adjacency_.shrink_to_fit();
  WB_CHECK(dropped % 2 == 0);  // duplicates arrive as whole arc pairs too
  return dropped / 2;  // duplicate *edges*, matching BuildStats

}

bool Graph::has_edge(NodeId u, NodeId v) const {
  check_id(u);
  check_id(v);
  if (u == v) return false;
  const auto nb = neighbors(u);
  return std::binary_search(nb.begin(), nb.end(), v);
}

std::vector<Edge> Graph::edge_vector() const {
  std::vector<Edge> out;
  out.reserve(m_);
  for (const Edge e : edges()) out.push_back(e);
  return out;
}

bool GraphBuilder::add_edge(NodeId a, NodeId b) {
  WB_CHECK_MSG(a != b, "self-loop at node " << a);
  WB_CHECK_MSG(a >= 1 && a <= n_ && b >= 1 && b <= n_,
               "edge {" << a << "," << b << "} out of range 1.." << n_);
  const Edge e = make_edge(a, b);
  if (!present_.insert(key(e)).second) return false;
  edges_.push_back(e);
  return true;
}

bool GraphBuilder::has_edge(NodeId a, NodeId b) const {
  if (a == b) return false;
  return present_.contains(key(make_edge(a, b)));
}

Graph GraphBuilder::build() const {
  return Graph::from_unsorted_edges(n_, std::vector<Edge>(edges_));
}

Graph relabel(const Graph& g, std::span<const NodeId> perm) {
  WB_CHECK(perm.size() == g.node_count());
  std::vector<bool> seen(g.node_count() + 1, false);
  for (NodeId p : perm) {
    WB_CHECK_MSG(p >= 1 && p <= g.node_count() && !seen[p],
                 "not a permutation of 1..n");
    seen[p] = true;
  }
  std::vector<Edge> edges;
  edges.reserve(g.edge_count());
  for (const Edge e : g.edges()) {
    edges.push_back(make_edge(perm[e.u - 1], perm[e.v - 1]));
  }
  return Graph(g.node_count(), edges);
}

}  // namespace wb
