// Workload generators for every graph family the paper's results range over.
//
// Each generator is deterministic in its seed. Families map to paper sections:
//  - forests / k-degenerate graphs           → §3 (BUILD)
//  - even-odd-bipartite graphs               → §5.2, Thm 7/8 (EOB-BFS)
//  - bipartite graphs with fixed parts       → Thm 3 (triangle reduction)
//  - two cliques / (n-1)-regular 2n-node     → §5.1 (2-CLIQUES, connectivity)
//  - arbitrary / connected graphs            → Thm 10 (BFS in SYNC)
#pragma once

#include <cstdint>

#include "src/graph/graph.h"

namespace wb {

// --- Deterministic structured families -------------------------------------

[[nodiscard]] Graph path_graph(std::size_t n);
[[nodiscard]] Graph cycle_graph(std::size_t n);
[[nodiscard]] Graph complete_graph(std::size_t n);
[[nodiscard]] Graph star_graph(std::size_t n);  // center is node 1
[[nodiscard]] Graph empty_graph(std::size_t n);
[[nodiscard]] Graph grid_graph(std::size_t rows, std::size_t cols);
[[nodiscard]] Graph complete_bipartite(std::size_t a, std::size_t b);

/// Disjoint union of two complete graphs on n nodes each: {1..n}, {n+1..2n}
/// (the YES instances of 2-CLIQUES, §5.1).
[[nodiscard]] Graph two_cliques(std::size_t n);

/// An (n-1)-regular connected 2n-node graph that is NOT two disjoint cliques:
/// two cliques with a 2-switch applied (remove {a,b},{c,d}; add {a,c},{b,d}).
/// The NO instances of 2-CLIQUES.
[[nodiscard]] Graph two_cliques_switched(std::size_t n);

/// d-dimensional hypercube on 2^d nodes (node v-1's bits are coordinates).
[[nodiscard]] Graph hypercube_graph(int dimension);

/// Wheel: cycle on nodes 2..n plus hub node 1 adjacent to all of it (n ≥ 4).
[[nodiscard]] Graph wheel_graph(std::size_t n);

/// Barbell: two k-cliques joined by a path of `bridge` extra nodes.
[[nodiscard]] Graph barbell_graph(std::size_t k, std::size_t bridge);

// --- Randomized families ----------------------------------------------------

/// Uniform labeled tree on n nodes via a random Prüfer sequence.
[[nodiscard]] Graph random_tree(std::size_t n, std::uint64_t seed);

/// Random labeled forest: each node i ≥ 2 attaches to a uniform earlier node
/// with probability attach_pct/100, else starts a new component; labels then
/// shuffled. Degeneracy ≤ 1 by construction.
[[nodiscard]] Graph random_forest(std::size_t n, int attach_pct,
                                  std::uint64_t seed);

/// Random graph of degeneracy ≤ k: in a random order, node i picks
/// min(k, #earlier) earlier neighbors uniformly (or fewer when sparse_pct of
/// slots are skipped); labels shuffled. Every planar-like / bounded-treewidth
/// workload in the benches is drawn from this family (§3.2).
[[nodiscard]] Graph random_k_degenerate(std::size_t n, int k, int sparse_pct,
                                        std::uint64_t seed);

/// Erdős–Rényi G(n, p) with p = p_num/p_den.
[[nodiscard]] Graph erdos_renyi(std::size_t n, std::uint64_t p_num,
                                std::uint64_t p_den, std::uint64_t seed);

/// Connected: random tree plus ER(p) edges on top.
[[nodiscard]] Graph connected_gnp(std::size_t n, std::uint64_t p_num,
                                  std::uint64_t p_den, std::uint64_t seed);

/// Bipartite with the paper's fixed parts {v_1..v_a} and {v_{a+1}..v_{a+b}}
/// (Thm 3 reduction family).
[[nodiscard]] Graph random_bipartite(std::size_t a, std::size_t b,
                                     std::uint64_t p_num, std::uint64_t p_den,
                                     std::uint64_t seed);

/// Even-odd-bipartite: edges only between odd and even IDs (§5.2).
[[nodiscard]] Graph random_even_odd_bipartite(std::size_t n,
                                              std::uint64_t p_num,
                                              std::uint64_t p_den,
                                              std::uint64_t seed);

/// Even-odd-bipartite and connected (random alternating tree + extra edges).
[[nodiscard]] Graph connected_even_odd_bipartite(std::size_t n,
                                                 std::uint64_t p_num,
                                                 std::uint64_t p_den,
                                                 std::uint64_t seed);

/// A graph whose only triangle is planted: a random even-odd-bipartite base
/// (triangle-free) plus one edge closing exactly one triangle where possible.
/// Returns the graph; `planted` reports whether a triangle was actually
/// closed (it is when the base has any path of length 2).
[[nodiscard]] Graph planted_triangle(std::size_t n, std::uint64_t p_num,
                                     std::uint64_t p_den, std::uint64_t seed,
                                     bool* planted);

/// Random d-regular graph on n nodes (n·d even, d < n) via repeated
/// pairing-model attempts; further randomized by degree-preserving 2-switch
/// walks. Supplies the (n-1)-regular no-instances of 2-CLIQUES beyond the
/// single 2-switch construction.
[[nodiscard]] Graph random_regular(std::size_t n, std::size_t d,
                                   std::uint64_t seed);

/// Uniformly random permutation of 1..n.
[[nodiscard]] std::vector<NodeId> random_permutation(std::size_t n,
                                                     std::uint64_t seed);

// --- Scale-N families (million-node substrate) ------------------------------

/// Deterministic R-MAT / Graph500-style generator: n = 2^scale nodes,
/// edge_factor·n sampled directed pairs with the Graph500 partition
/// probabilities (A,B,C,D) = (0.57, 0.19, 0.19, 0.05); self-loops are
/// dropped and duplicate/reverse pairs collapse during CSR assembly. Every
/// pair derives its own RNG stream from (seed, index), so the output is a
/// pure function of (scale, edge_factor, seed) — independent of thread count
/// and evaluation order, and replayable for the two-pass CSR build.
[[nodiscard]] Graph rmat_graph(int scale, std::size_t edge_factor,
                               std::uint64_t seed,
                               Graph::BuildStats* stats = nullptr);

/// Chung–Lu-style power-law sibling: endpoints drawn with probability
/// proportional to i^(-1/(exponent-1)) (node 1 is the heaviest hub), with
/// edge_factor·n sampled pairs and the same per-index stream derivation as
/// rmat_graph. exponent must exceed 1; 2.5 is the classic web-graph value.
[[nodiscard]] Graph random_power_law(std::size_t n, std::size_t edge_factor,
                                     double exponent, std::uint64_t seed,
                                     Graph::BuildStats* stats = nullptr);

}  // namespace wb
