#include "src/graph/enumerate.h"

#include <cmath>
#include <vector>

#include "src/graph/algorithms.h"

namespace wb {

namespace {

std::vector<Edge> all_pairs(std::size_t n) {
  std::vector<Edge> pairs;
  for (NodeId u = 1; u <= n; ++u) {
    for (NodeId v = u + 1; v <= n; ++v) pairs.push_back(Edge{u, v});
  }
  return pairs;
}

void for_each_graph_over_pairs(std::size_t n, const std::vector<Edge>& pairs,
                               const std::function<void(const Graph&)>& fn) {
  WB_CHECK_MSG(pairs.size() <= 28, "enumeration too large: 2^" << pairs.size());
  const std::uint64_t total = std::uint64_t{1} << pairs.size();
  std::vector<Edge> edges;
  edges.reserve(pairs.size());
  for (std::uint64_t mask = 0; mask < total; ++mask) {
    edges.clear();
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      if ((mask >> i) & 1u) edges.push_back(pairs[i]);
    }
    fn(Graph(n, edges));
  }
}

}  // namespace

void for_each_labeled_graph(std::size_t n,
                            const std::function<void(const Graph&)>& fn) {
  WB_CHECK_MSG(n <= 8, "n too large for full enumeration");
  for_each_graph_over_pairs(n, all_pairs(n), fn);
}

void for_each_connected_graph(std::size_t n,
                              const std::function<void(const Graph&)>& fn) {
  for_each_labeled_graph(n, [&](const Graph& g) {
    if (is_connected(g)) fn(g);
  });
}

void for_each_even_odd_bipartite_graph(
    std::size_t n, const std::function<void(const Graph&)>& fn) {
  WB_CHECK_MSG(n <= 10, "n too large for even-odd enumeration");
  std::vector<Edge> pairs;
  for (NodeId u = 1; u <= n; ++u) {
    for (NodeId v = u + 1; v <= n; ++v) {
      if ((u % 2) != (v % 2)) pairs.push_back(Edge{u, v});
    }
  }
  for_each_graph_over_pairs(n, pairs, fn);
}

void for_each_labeled_forest(std::size_t n,
                             const std::function<void(const Graph&)>& fn) {
  for_each_labeled_graph(n, [&](const Graph& g) {
    if (is_k_degenerate(g, 1)) fn(g);  // forests = 1-degenerate graphs
  });
}

double log2_count_all_graphs(std::size_t n) {
  return static_cast<double>(n * (n - 1) / 2);
}

double log2_count_bipartite_fixed_parts(std::size_t n) {
  WB_CHECK(n % 2 == 0);
  const double h = static_cast<double>(n) / 2.0;
  return h * h;
}

double log2_count_even_odd_bipartite(std::size_t n) {
  const double odd = static_cast<double>((n + 1) / 2);
  const double even = static_cast<double>(n / 2);
  return odd * even;
}

std::uint64_t count_labeled_forests_exact(std::size_t n) {
  WB_CHECK_MSG(n <= 18, "exact forest count overflows past n=18");
  // F(n) = sum over the size j of the component containing node n:
  //   C(n-1, j-1) * T(j) * F(n-j),  T(j) = j^{j-2} labeled trees.
  std::vector<std::uint64_t> F(n + 1, 0);
  F[0] = 1;
  auto trees = [](std::size_t j) -> std::uint64_t {
    if (j <= 2) return 1;
    std::uint64_t t = 1;
    for (std::size_t i = 0; i + 2 < j; ++i) t *= j;
    return t;
  };
  auto binom = [](std::size_t a, std::size_t b) -> std::uint64_t {
    if (b > a) return 0;
    std::uint64_t r = 1;
    for (std::size_t i = 1; i <= b; ++i) r = r * (a - b + i) / i;
    return r;
  };
  for (std::size_t m = 1; m <= n; ++m) {
    std::uint64_t acc = 0;
    for (std::size_t j = 1; j <= m; ++j) {
      acc += binom(m - 1, j - 1) * trees(j) * F[m - j];
    }
    F[m] = acc;
  }
  return F[n];
}

double log2_count_labeled_forests(std::size_t n) {
  WB_CHECK(n >= 1);
  if (n <= 18) {
    return std::log2(static_cast<double>(count_labeled_forests_exact(n)));
  }
  // Log-domain version of the same recurrence, using log-sum-exp.
  std::vector<double> logF(n + 1, 0.0);  // log2 F(m); F(0)=1 -> 0
  auto log2_trees = [](std::size_t j) -> double {
    if (j <= 2) return 0.0;
    return static_cast<double>(j - 2) * std::log2(static_cast<double>(j));
  };
  // log2 C(a, b) via lgamma.
  auto log2_binom = [](std::size_t a, std::size_t b) -> double {
    if (b > a) return -1e300;
    return (std::lgamma(static_cast<double>(a) + 1) -
            std::lgamma(static_cast<double>(b) + 1) -
            std::lgamma(static_cast<double>(a - b) + 1)) /
           std::log(2.0);
  };
  for (std::size_t m = 1; m <= n; ++m) {
    double best = -1e300;
    std::vector<double> terms;
    terms.reserve(m);
    for (std::size_t j = 1; j <= m; ++j) {
      const double t = log2_binom(m - 1, j - 1) + log2_trees(j) + logF[m - j];
      terms.push_back(t);
      best = std::max(best, t);
    }
    double sum = 0.0;
    for (double t : terms) sum += std::exp2(t - best);
    logF[m] = best + std::log2(sum);
  }
  return logF[n];
}

double log2_count_subgraph_family(std::size_t n, std::size_t f) {
  WB_CHECK(f <= n);
  // Graphs where all edges live inside {v_1..v_f}: 2^{C(f,2)} of them.
  return static_cast<double>(f * (f - 1) / 2);
}

double log2_count_k_degenerate_lower(std::size_t n, int k) {
  WB_CHECK(k >= 1);
  // Constructive lower bound: in the fixed ID order, node i chooses any
  // k-subset of its predecessors as back-neighbors. The map is injective —
  // the graph determines each node's back-neighborhood N(i) ∩ {1..i-1}
  // uniquely — and every such graph has degeneracy ≤ k. Hence the count is
  // at least Π_{i>k} C(i-1, k), i.e. Ω(k·n·log n) bits.
  double bits = 0.0;
  for (std::size_t i = static_cast<std::size_t>(k) + 1; i <= n; ++i) {
    bits += (std::lgamma(static_cast<double>(i)) -
             std::lgamma(static_cast<double>(k) + 1) -
             std::lgamma(static_cast<double>(i - static_cast<std::size_t>(k)))) /
            std::log(2.0);
  }
  return bits;
}

}  // namespace wb
