#include "src/protocols/randomized.h"

#include <algorithm>
#include <map>
#include <vector>

#include "src/protocols/codec.h"
#include "src/support/powersum.h"
#include "src/support/rng.h"

namespace wb {

namespace {

// Mersenne prime 2^61 - 1: multiplication fits in 128 bits, reduction is two
// shifts. Fingerprints are 61-bit field elements.
constexpr std::uint64_t kPrime = (std::uint64_t{1} << 61) - 1;
constexpr int kFingerprintBits = 61;

std::uint64_t mod_mul(std::uint64_t a, std::uint64_t b) {
  const u128 wide = static_cast<u128>(a) * b;
  const std::uint64_t lo = static_cast<std::uint64_t>(wide & kPrime);
  const std::uint64_t hi = static_cast<std::uint64_t>(wide >> 61);
  std::uint64_t s = lo + hi;          // < 2^62: fold once more, then reduce
  s = (s & kPrime) + (s >> 61);
  if (s >= kPrime) s -= kPrime;
  return s;
}

}  // namespace

RandomizedTwoCliquesProtocol::RandomizedTwoCliquesProtocol(
    std::uint64_t shared_seed) {
  Rng rng(shared_seed);
  point_ = rng.below(kPrime - 1) + 1;  // uniform in [1, p-1]
}

std::uint64_t RandomizedTwoCliquesProtocol::fingerprint(
    std::span<const NodeId> closed_neighborhood, std::uint64_t point) {
  std::uint64_t acc = 1;
  for (NodeId w : closed_neighborhood) {
    std::uint64_t term = point + w;
    if (term >= kPrime) term -= kPrime;
    acc = mod_mul(acc, term);
  }
  return acc;
}

std::size_t RandomizedTwoCliquesProtocol::message_bit_limit(
    std::size_t n) const {
  return static_cast<std::size_t>(codec::id_bits(n)) + kFingerprintBits;
}

Bits RandomizedTwoCliquesProtocol::compose_initial(
    const LocalView& view) const {
  BitWriter w;
  return compose_initial(view, w);
}

Bits RandomizedTwoCliquesProtocol::compose_initial(const LocalView& view,
                                                   BitWriter& scratch) const {
  const std::size_t n = view.n();
  std::vector<NodeId> closed(view.neighbors().begin(),
                             view.neighbors().end());
  closed.push_back(view.id());
  std::sort(closed.begin(), closed.end());
  codec::write_id(scratch, view.id(), n);
  scratch.write_uint(fingerprint(closed, point_), kFingerprintBits);
  return scratch.take();
}

TwoCliquesOutput RandomizedTwoCliquesProtocol::output(const Whiteboard& board,
                                                      std::size_t n) const {
  WB_REQUIRE_MSG(board.message_count() == n,
                 "expected " << n << " messages, got " << board.message_count());
  TwoCliquesOutput out;
  std::map<std::uint64_t, std::vector<NodeId>> classes;
  for (const Bits& m : board.messages()) {
    BitReader r(m);
    const NodeId id = codec::read_id(r, n);
    const std::uint64_t fp = r.read_uint(kFingerprintBits);
    WB_REQUIRE_MSG(r.exhausted(), "trailing bits in message of node " << id);
    classes[fp].push_back(id);
  }
  if (n % 2 != 0 || classes.size() != 2) return out;
  const auto& first = classes.begin()->second;
  const auto& second = std::next(classes.begin())->second;
  if (first.size() != n / 2 || second.size() != n / 2) return out;
  out.yes = true;
  out.side.assign(n, 1);
  for (NodeId v : first) out.side[v - 1] = 0;
  return out;
}

}  // namespace wb
