// Konrad–Robinson–Zamaraev robust ε-error workload (PAPERS.md: "Robust
// lower bounds for graph problems in the blackboard model").
//
// KRZ study one-write blackboard protocols that may err with probability ε
// and prove lower bounds that are *robust* to such error. This workload
// reproduces one instance executable by our statistical engine: one-sided
// ε-error triangle detection by shared-randomness edge sampling.
//
// Every node knows the protocol seed (shared randomness). Each edge {u, v}
// is included in the sample iff a seeded hash coin with success probability
// num/den comes up heads — both endpoints compute the same decision, so the
// sampled subgraph is globally consistent without communication. A node's
// one message lists its sampled edges to *larger* neighbors; the output
// reconstructs the sampled subgraph and answers "triangle?" on it.
//
//  - Soundness (one-sided): every announced edge is a real edge, so a YES is
//    always correct.
//  - ε-error: a triangle survives sampling with probability q^3 (q =
//    num/den), so on a one-triangle instance the protocol misses with
//    probability exactly 1 - q^3 — the analytic failure rate
//    tests/wb/faults_test.cpp pins inside the Wilson interval produced by
//    the statistical verdict engine.
//  - Robust decoding: duplicate writers, out-of-range IDs, or truncated
//    messages raise wb::DataError, which the engine's fault firewall and the
//    fault classifiers turn into a clean terminal verdict.
#pragma once

#include "src/wb/protocol.h"

namespace wb {

class KrzTriangleProtocol final : public SimAsyncProtocol<bool> {
 public:
  /// Sample each edge with probability num/den (0 <= num <= den, den >= 1),
  /// decided by a hash of (seed, edge) — the shared random string.
  KrzTriangleProtocol(std::uint64_t num, std::uint64_t den,
                      std::uint64_t seed);

  [[nodiscard]] std::size_t message_bit_limit(std::size_t n) const override;
  [[nodiscard]] Bits compose_initial(const LocalView& view) const override;
  [[nodiscard]] Bits compose_initial(const LocalView& view,
                                     BitWriter& scratch) const override;
  [[nodiscard]] bool output(const Whiteboard& board,
                            std::size_t n) const override;
  [[nodiscard]] std::string name() const override;

  /// The shared-randomness coin for edge {u, v} (order-insensitive).
  [[nodiscard]] bool edge_sampled(NodeId u, NodeId v) const;

 private:
  std::uint64_t num_;
  std::uint64_t den_;
  std::uint64_t seed_;
};

}  // namespace wb
