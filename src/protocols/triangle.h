// TRIANGLE protocols.
//
// Table 2 of the paper classifies TRIANGLE as unsolvable in SIMASYNC[o(n)]
// (Theorem 3, via the reduction in src/reductions/triangle_reduction.h) but
// solvable in SIMSYNC. Two implementations live here:
//
//  - TriangleOracleProtocol (SIMASYNC[n + log n]): each node writes its full
//    adjacency row; the output reconstructs G and tests for a triangle.
//    Correct but with Θ(n)-bit messages — the unbounded-size oracle that the
//    executable Theorem 3 reduction is driven with, and the baseline showing
//    *where* the o(n) boundary bites.
//
//  - TrianglePairChaseProtocol (SIMSYNC[O(log n)]): the journal text asserts
//    the SIMSYNC yes-cell but omits the protocol (see DESIGN.md §3), so this
//    is our reconstruction. When node v is selected it parses all previously
//    *decodable* neighborhood announcements (nodes that wrote with back-
//    degree ≤ 3 reveal their exact back-neighborhood via §3-style power
//    sums); if some announced edge {x,y} has x,y ∈ N(v), v writes the
//    triangle certificate (v,x,y) — sound by construction. Otherwise v
//    announces (ID, back-degree, p1, p2, p3 of its written neighbors).
//    The output function answers YES on a certificate; with
//    `csp_limit ≥ n` it additionally enumerates every graph consistent with
//    the whiteboard (the adversary's order is replayable because messages
//    are deterministic in the board prefix) and answers NO/YES when all
//    consistent graphs agree, kUnknown otherwise. The benches measure how
//    often each answer occurs over exhaustive schedules.
#pragma once

#include "src/protocols/outputs.h"
#include "src/wb/protocol.h"

namespace wb {

class TriangleOracleProtocol final : public SimAsyncProtocol<bool> {
 public:
  [[nodiscard]] std::size_t message_bit_limit(std::size_t n) const override;
  [[nodiscard]] Bits compose_initial(const LocalView& view) const override;
  [[nodiscard]] Bits compose_initial(const LocalView& view,
                                     BitWriter& scratch) const override;
  [[nodiscard]] bool output(const Whiteboard& board,
                            std::size_t n) const override;
  [[nodiscard]] std::string name() const override { return "triangle-oracle"; }
};

class TrianglePairChaseProtocol final
    : public SimSyncProtocol<TriangleVerdict> {
 public:
  /// csp_limit: enable the consistent-graph analysis for n ≤ csp_limit
  /// (exponential in C(n,2); keep ≤ 6).
  explicit TrianglePairChaseProtocol(std::size_t csp_limit = 0)
      : csp_limit_(csp_limit) {
    WB_CHECK_MSG(csp_limit <= 6, "consistent-graph analysis is 2^C(n,2)");
  }

  [[nodiscard]] std::size_t message_bit_limit(std::size_t n) const override;
  [[nodiscard]] Bits compose(const LocalView& view,
                             const Whiteboard& board) const override;
  [[nodiscard]] Bits compose(const LocalView& view, const Whiteboard& board,
                             BitWriter& scratch) const override;
  [[nodiscard]] TriangleVerdict output(const Whiteboard& board,
                                       std::size_t n) const override;
  [[nodiscard]] std::string name() const override {
    return "triangle-pair-chase";
  }

 private:
  std::size_t csp_limit_;
};

}  // namespace wb
