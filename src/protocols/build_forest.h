// BUILD for forests in SIMASYNC[log n] (paper §3.1).
//
// Every node simultaneously writes the triple
//     (ID(v), d_T(v), Σ_{w ∈ N_T(v)} ID(w))
// — under 4·log n bits. The output function repeatedly "prunes a leaf": a
// node of degree ≤ 1 is removed; if its degree is exactly 1 the stored sum
// *is* its unique neighbor's ID, so the edge is recovered and the neighbor's
// (degree, sum) pair is updated as if the leaf were deleted from T. By
// induction this rebuilds the whole forest, or proves the input contains a
// cycle (output std::nullopt — the recognition variant of Theorem 2).
#pragma once

#include "src/protocols/outputs.h"
#include "src/wb/protocol.h"

namespace wb {

class BuildForestProtocol final : public SimAsyncProtocol<BuildOutput> {
 public:
  [[nodiscard]] std::size_t message_bit_limit(std::size_t n) const override;
  [[nodiscard]] Bits compose_initial(const LocalView& view) const override;
  [[nodiscard]] Bits compose_initial(const LocalView& view,
                                     BitWriter& scratch) const override;
  [[nodiscard]] BuildOutput output(const Whiteboard& board,
                                   std::size_t n) const override;
  [[nodiscard]] std::string name() const override { return "build-forest"; }
};

}  // namespace wb
