// The trivial O(n)-bit upper baseline from §1: "if every node communicates
// its whole neighborhood (which can be done with O(n) bits), the whole graph
// is described on the whiteboard; therefore, any question can be easily
// answered."
//
// Each node writes (ID, adjacency row); the output function rebuilds G after
// verifying row symmetry. This protocol doubles as the unbounded-message
// oracle the executable reductions (Thm 3/6) are run against.
#pragma once

#include "src/protocols/outputs.h"
#include "src/wb/protocol.h"

namespace wb {

class BuildFullProtocol final : public SimAsyncProtocol<Graph> {
 public:
  [[nodiscard]] std::size_t message_bit_limit(std::size_t n) const override;
  [[nodiscard]] Bits compose_initial(const LocalView& view) const override;
  [[nodiscard]] Bits compose_initial(const LocalView& view,
                                     BitWriter& scratch) const override;
  [[nodiscard]] Graph output(const Whiteboard& board,
                             std::size_t n) const override;
  [[nodiscard]] std::string name() const override { return "build-full"; }
};

}  // namespace wb
