#include "src/protocols/mis.h"

#include <vector>

#include "src/protocols/codec.h"

namespace wb {

namespace {

struct MisMessage {
  NodeId id;
  bool in;
};

MisMessage parse(const Bits& m, std::size_t n) {
  BitReader r(m);
  const NodeId id = codec::read_id(r, n);
  const bool in = r.read_bit();
  WB_REQUIRE_MSG(r.exhausted(), "trailing bits in MIS message of node " << id);
  return {id, in};
}

}  // namespace

std::size_t RootedMisProtocol::message_bit_limit(std::size_t n) const {
  return static_cast<std::size_t>(codec::id_bits(n)) + 1;
}

Bits RootedMisProtocol::compose(const LocalView& view,
                                const Whiteboard& board) const {
  BitWriter w;
  return compose(view, board, w);
}

Bits RootedMisProtocol::compose(const LocalView& view, const Whiteboard& board,
                                BitWriter& scratch) const {
  const std::size_t n = view.n();
  bool in;
  if (view.id() == root_) {
    in = true;
  } else if (view.has_neighbor(root_)) {
    in = false;
  } else {
    // Enter unless some neighbor is already in the set.
    in = true;
    for (const Bits& m : board.messages()) {
      const MisMessage msg = parse(m, n);
      if (msg.in && view.has_neighbor(msg.id)) {
        in = false;
        break;
      }
    }
  }
  codec::write_id(scratch, view.id(), n);
  scratch.write_bit(in);
  return scratch.take();
}

MisOutput RootedMisProtocol::output(const Whiteboard& board,
                                    std::size_t n) const {
  MisOutput set;
  for (const Bits& m : board.messages()) {
    const MisMessage msg = parse(m, n);
    if (msg.in) set.push_back(msg.id);
  }
  return set;
}

std::size_t MisOracleProtocol::message_bit_limit(std::size_t n) const {
  return static_cast<std::size_t>(codec::id_bits(n)) + n;
}

Bits MisOracleProtocol::compose_initial(const LocalView& view) const {
  const std::size_t n = view.n();
  BitWriter w;
  codec::write_id(w, view.id(), n);
  for (NodeId u = 1; u <= n; ++u) w.write_bit(view.has_neighbor(u));
  return w.take();
}

MisOutput MisOracleProtocol::output(const Whiteboard& board,
                                    std::size_t n) const {
  WB_REQUIRE_MSG(board.message_count() == n,
                 "expected " << n << " messages, got " << board.message_count());
  std::vector<std::vector<bool>> row(n + 1);
  std::vector<bool> seen(n + 1, false);
  for (const Bits& m : board.messages()) {
    BitReader r(m);
    const NodeId id = codec::read_id(r, n);
    WB_REQUIRE_MSG(!seen[id], "node " << id << " wrote twice");
    seen[id] = true;
    row[id].resize(n + 1);
    for (NodeId u = 1; u <= n; ++u) row[id][u] = r.read_bit();
  }
  WB_REQUIRE_MSG(root_ <= n, "oracle root " << root_ << " exceeds n");
  // Deterministic greedy: root first, then ascending IDs.
  MisOutput set{root_};
  for (NodeId v = 1; v <= n; ++v) {
    if (v == root_) continue;
    bool independent = true;
    for (NodeId u : set) {
      if (row[v][u]) {
        independent = false;
        break;
      }
    }
    if (independent) set.push_back(v);
  }
  std::sort(set.begin(), set.end());
  return set;
}

}  // namespace wb
