#include "src/protocols/build_degenerate.h"

#include <memory>
#include <vector>

#include "src/protocols/codec.h"
#include "src/support/powersum.h"

namespace wb {

BuildDegenerateProtocol::BuildDegenerateProtocol(int k,
                                                 DegenerateDecoder decoder)
    : k_(k), decoder_(decoder) {
  WB_CHECK_MSG(k >= 1 && k <= 5, "supported degeneracy range is 1..5");
}

std::string BuildDegenerateProtocol::name() const {
  return "build-degenerate-k" + std::to_string(k_) +
         (decoder_ == DegenerateDecoder::kNewton ? "" : "-table");
}

std::size_t BuildDegenerateProtocol::message_bit_limit(std::size_t n) const {
  std::size_t bits = static_cast<std::size_t>(codec::id_bits(n)) +
                     static_cast<std::size_t>(codec::count_bits(n));
  for (int p = 1; p <= k_; ++p) {
    bits += static_cast<std::size_t>(codec::power_sum_bits(n, p));
  }
  return bits;
}

Bits BuildDegenerateProtocol::compose_initial(const LocalView& view) const {
  BitWriter w;
  return compose_initial(view, w);
}

Bits BuildDegenerateProtocol::compose_initial(const LocalView& view,
                                              BitWriter& w) const {
  const std::size_t n = view.n();
  codec::write_id(w, view.id(), n);
  codec::write_count(w, view.degree(), n);
  std::vector<std::uint32_t> ids(view.neighbors().begin(),
                                 view.neighbors().end());
  const std::vector<i128> p = power_sums(ids, k_);
  for (int j = 1; j <= k_; ++j) {
    codec::write_power_sum(w, p[static_cast<std::size_t>(j - 1)], n, j);
  }
  return w.take();
}

BuildOutput BuildDegenerateProtocol::output(const Whiteboard& board,
                                            std::size_t n) const {
  WB_REQUIRE_MSG(board.message_count() == n,
                 "expected " << n << " messages, got " << board.message_count());
  std::vector<std::size_t> deg(n + 1, 0);
  std::vector<std::vector<i128>> psum(n + 1);
  std::vector<bool> seen(n + 1, false);
  for (const Bits& m : board.messages()) {
    BitReader r(m);
    const NodeId id = codec::read_id(r, n);
    WB_REQUIRE_MSG(!seen[id], "node " << id << " wrote twice");
    seen[id] = true;
    deg[id] = codec::read_count(r, n);
    psum[id].resize(static_cast<std::size_t>(k_));
    for (int j = 1; j <= k_; ++j) {
      psum[id][static_cast<std::size_t>(j - 1)] = codec::read_power_sum(r, n, j);
    }
    WB_REQUIRE_MSG(r.exhausted(), "trailing bits in message of node " << id);
  }

  // Lemma 2 table decoder is built once per output evaluation; the Newton
  // decoder needs no preprocessing.
  std::unique_ptr<SubsetTable> table;
  if (decoder_ == DegenerateDecoder::kTable) {
    WB_REQUIRE_MSG(n <= 64 || k_ <= 2,
                   "lookup-table decoder is limited to small n^k");
    table = std::make_unique<SubsetTable>(static_cast<std::uint32_t>(n), k_);
  }
  auto decode = [&](std::span<const i128> p,
                    int d) -> std::optional<std::vector<std::uint32_t>> {
    if (table != nullptr) return table->lookup(p, d);
    return decode_subset(p, d, static_cast<std::uint32_t>(n));
  };

  // Algorithm 1: iterated pruning of residual-degree ≤ k nodes.
  GraphBuilder builder(n);
  std::vector<bool> alive(n + 1, true);
  std::vector<NodeId> ready;
  for (NodeId v = 1; v <= n; ++v) {
    if (deg[v] <= static_cast<std::size_t>(k_)) ready.push_back(v);
  }
  std::size_t pruned = 0;
  while (!ready.empty()) {
    const NodeId v = ready.back();
    ready.pop_back();
    if (!alive[v] || deg[v] > static_cast<std::size_t>(k_)) continue;
    alive[v] = false;
    ++pruned;
    const auto neighborhood = decode(psum[v], static_cast<int>(deg[v]));
    WB_REQUIRE_MSG(neighborhood.has_value(),
                   "power sums of node " << v << " decode to no ≤k-subset");
    for (std::uint32_t wid : *neighborhood) {
      const NodeId u = static_cast<NodeId>(wid);
      WB_REQUIRE_MSG(u != v && alive[u] && deg[u] >= 1,
                     "node " << v << " decodes dead/invalid neighbor " << u);
      builder.add_edge(v, u);
      --deg[u];
      power_sums_subtract(psum[u], v);
      if (deg[u] <= static_cast<std::size_t>(k_)) ready.push_back(u);
    }
  }
  if (pruned != n) return std::nullopt;  // stranded core: degeneracy > k
  return builder.build();
}

}  // namespace wb
