#include "src/protocols/subgraph.h"

#include <vector>

#include "src/protocols/codec.h"

namespace wb {

std::size_t SubgraphProtocol::message_bit_limit(std::size_t n) const {
  // Prefix nodes write their ID plus f adjacency bits; the rest just their ID.
  return static_cast<std::size_t>(codec::id_bits(n)) + std::min(f_, n);
}

Bits SubgraphProtocol::compose_initial(const LocalView& view) const {
  BitWriter w;
  return compose_initial(view, w);
}

Bits SubgraphProtocol::compose_initial(const LocalView& view,
                                       BitWriter& w) const {
  const std::size_t n = view.n();
  const std::size_t f = std::min(f_, n);
  codec::write_id(w, view.id(), n);
  if (view.id() <= f) {
    for (NodeId u = 1; u <= f; ++u) w.write_bit(view.has_neighbor(u));
  }
  return w.take();
}

Graph SubgraphProtocol::output(const Whiteboard& board, std::size_t n) const {
  WB_REQUIRE_MSG(board.message_count() == n,
                 "expected " << n << " messages, got " << board.message_count());
  const std::size_t f = std::min(f_, n);
  std::vector<std::vector<bool>> row(f + 1);
  std::vector<bool> seen(n + 1, false);
  for (const Bits& m : board.messages()) {
    BitReader r(m);
    const NodeId id = codec::read_id(r, n);
    WB_REQUIRE_MSG(!seen[id], "node " << id << " wrote twice");
    seen[id] = true;
    if (id <= f) {
      row[id].resize(f + 1);
      for (NodeId u = 1; u <= f; ++u) row[id][u] = r.read_bit();
      WB_REQUIRE_MSG(!row[id][id], "self-loop bit set at node " << id);
    }
    WB_REQUIRE_MSG(r.exhausted(), "trailing bits in message of node " << id);
  }
  GraphBuilder builder(n);
  for (NodeId u = 1; u <= f; ++u) {
    for (NodeId v = u + 1; v <= f; ++v) {
      WB_REQUIRE_MSG(row[u][v] == row[v][u],
                     "asymmetric adjacency bits for {" << u << "," << v << "}");
      if (row[u][v]) builder.add_edge(u, v);
    }
  }
  return builder.build();
}

}  // namespace wb
