#include "src/protocols/two_cliques.h"

#include <vector>

#include "src/protocols/codec.h"

namespace wb {

namespace {

// Message code values.
constexpr std::uint64_t kSide0 = 0;
constexpr std::uint64_t kSide1 = 1;
constexpr std::uint64_t kConflict = 2;

struct CliqueMessage {
  NodeId id;
  std::uint64_t code;
};

CliqueMessage parse(const Bits& m, std::size_t n) {
  BitReader r(m);
  const NodeId id = codec::read_id(r, n);
  const std::uint64_t code = r.read_uint(2);
  WB_REQUIRE_MSG(code <= kConflict, "bad 2-CLIQUES code " << code);
  WB_REQUIRE_MSG(r.exhausted(), "trailing bits in message of node " << id);
  return {id, code};
}

}  // namespace

std::size_t TwoCliquesProtocol::message_bit_limit(std::size_t n) const {
  return static_cast<std::size_t>(codec::id_bits(n)) + 2;
}

Bits TwoCliquesProtocol::compose(const LocalView& view,
                                 const Whiteboard& board) const {
  BitWriter w;
  return compose(view, board, w);
}

Bits TwoCliquesProtocol::compose(const LocalView& view,
                                 const Whiteboard& board,
                                 BitWriter& scratch) const {
  const std::size_t n = view.n();
  std::uint64_t code;
  if (board.empty()) {
    code = kSide0;  // "I am the first" — valid exactly when chosen first
  } else {
    bool saw0 = false, saw1 = false, saw_any_neighbor = false;
    for (const Bits& m : board.messages()) {
      const CliqueMessage msg = parse(m, n);
      if (!view.has_neighbor(msg.id)) continue;
      saw_any_neighbor = true;
      if (msg.code == kSide0) saw0 = true;
      if (msg.code == kSide1) saw1 = true;
    }
    if (!saw_any_neighbor) {
      code = kSide1;
    } else if (saw0 && saw1) {
      code = kConflict;
    } else if (saw1) {
      code = kSide1;
    } else {
      code = kSide0;
    }
  }
  codec::write_id(scratch, view.id(), n);
  scratch.write_uint(code, 2);
  return scratch.take();
}

TwoCliquesOutput TwoCliquesProtocol::output(const Whiteboard& board,
                                            std::size_t n) const {
  TwoCliquesOutput out;
  std::vector<int> side(n, -1);
  std::size_t count[2] = {0, 0};
  for (const Bits& m : board.messages()) {
    const CliqueMessage msg = parse(m, n);
    if (msg.code == kConflict) return out;  // yes = false
    side[msg.id - 1] = static_cast<int>(msg.code);
    ++count[msg.code];
  }
  if (n % 2 != 0 || count[0] != n / 2 || count[1] != n / 2) return out;
  out.yes = true;
  out.side = std::move(side);
  return out;
}

}  // namespace wb
