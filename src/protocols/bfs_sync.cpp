#include "src/protocols/bfs_sync.h"

#include <algorithm>
#include <vector>

#include "src/protocols/codec.h"

namespace wb {

namespace {

struct Entry {
  NodeId id = kNoNode;
  int layer = -1;
  NodeId parent = kNoNode;
  std::size_t dminus = 0;
  std::size_t d0 = 0;
  std::size_t dplus = 0;
};

struct ParsedBoard {
  std::vector<Entry> entries;
  std::vector<int> layer_of;              // by id; -1 unwritten
  std::vector<bool> written;              // by id
  std::vector<std::uint64_t> sum_dminus;  // by layer
  std::vector<std::uint64_t> sum_d0;      // by layer
  std::vector<std::uint64_t> sum_dplus;   // by layer
};

Entry parse_message(const Bits& m, std::size_t n) {
  BitReader r(m);
  Entry e;
  e.id = codec::read_id(r, n);
  e.layer = static_cast<int>(codec::read_count(r, n));
  e.parent = codec::read_parent(r, n);
  e.dminus = codec::read_count(r, n);
  e.d0 = codec::read_count(r, n);
  e.dplus = codec::read_count(r, n);
  WB_REQUIRE_MSG(r.exhausted(), "trailing bits in BFS message of node " << e.id);
  return e;
}

ParsedBoard parse_board(const Whiteboard& board, std::size_t n) {
  ParsedBoard p;
  p.layer_of.assign(n + 1, -1);
  p.written.assign(n + 1, false);
  p.sum_dminus.assign(n + 2, 0);
  p.sum_d0.assign(n + 2, 0);
  p.sum_dplus.assign(n + 2, 0);
  for (const Bits& m : board.messages()) {
    Entry e = parse_message(m, n);
    WB_REQUIRE_MSG(!p.written[e.id], "node " << e.id << " wrote twice");
    p.written[e.id] = true;
    WB_REQUIRE_MSG(e.layer >= 0 && static_cast<std::size_t>(e.layer) < n,
                   "layer out of range");
    p.layer_of[e.id] = e.layer;
    const auto l = static_cast<std::size_t>(e.layer);
    p.sum_dminus[l] += e.dminus;
    p.sum_d0[l] += e.d0;
    p.sum_dplus[l] += e.dplus;
    p.entries.push_back(std::move(e));
  }
  return p;
}

/// Edges promised from layer ℓ to layer ℓ+1: Σ d+1 − 2·Σ d0 over L_ℓ.
std::uint64_t promised_forward(const ParsedBoard& p, std::size_t layer) {
  const std::uint64_t raw = p.sum_dplus[layer];
  const std::uint64_t twice_d0 = 2 * p.sum_d0[layer];
  WB_REQUIRE_MSG(raw >= twice_d0, "inconsistent d0/d+1 sums at layer " << layer);
  return raw - twice_d0;
}

bool layer_certificate(const ParsedBoard& p, std::size_t layer) {
  if (layer == 0) return true;
  return p.sum_dminus[layer] == promised_forward(p, layer - 1);
}

bool no_pending_edges(const ParsedBoard& p, std::size_t layer) {
  return promised_forward(p, layer) == p.sum_dminus[layer + 1];
}

int min_written_neighbor_layer(const LocalView& view, const ParsedBoard& p) {
  int best = -1;
  for (NodeId w : view.neighbors()) {
    const int l = p.layer_of[w];
    if (l >= 0 && (best == -1 || l < best)) best = l;
  }
  return best;
}

bool is_min_unwritten(const LocalView& view, const ParsedBoard& p) {
  for (NodeId u = 1; u < view.id(); ++u) {
    if (!p.written[u]) return false;
  }
  return !p.written[view.id()];
}

}  // namespace

std::size_t SyncBfsProtocol::message_bit_limit(std::size_t n) const {
  return static_cast<std::size_t>(codec::id_bits(n)) +
         4 * static_cast<std::size_t>(codec::count_bits(n)) +
         static_cast<std::size_t>(codec::parent_bits(n));
}

bool SyncBfsProtocol::activate(const LocalView& view,
                               const Whiteboard& board) const {
  const std::size_t n = view.n();
  const ParsedBoard& p = board.cached_view<ParsedBoard>(
      [n](const Whiteboard& b) { return parse_board(b, n); });
  if (p.entries.empty()) return view.id() == 1;

  // Conditions (a)+(b): some neighbor wrote and its layer is complete.
  const int lstar = min_written_neighbor_layer(view, p);
  if (lstar >= 0) {
    return layer_certificate(p, static_cast<std::size_t>(lstar));
  }

  // Condition (c): component switch.
  const Entry& last = p.entries.back();
  if (view.has_neighbor(last.id)) return false;
  const auto lw = static_cast<std::size_t>(last.layer);
  return layer_certificate(p, lw) && no_pending_edges(p, lw) &&
         is_min_unwritten(view, p);
}

Bits SyncBfsProtocol::compose(const LocalView& view,
                              const Whiteboard& board) const {
  BitWriter w;
  return compose(view, board, w);
}

Bits SyncBfsProtocol::compose(const LocalView& view, const Whiteboard& board,
                              BitWriter& scratch) const {
  const std::size_t n = view.n();
  const ParsedBoard& p = board.cached_view<ParsedBoard>(
      [n](const Whiteboard& b) { return parse_board(b, n); });

  int min_layer = -1;
  for (NodeId u : view.neighbors()) {
    const int l = p.layer_of[u];
    if (l >= 0 && (min_layer == -1 || l < min_layer)) min_layer = l;
  }
  const int layer = (min_layer == -1) ? 0 : min_layer + 1;

  NodeId parent = kNoNode;
  std::size_t dminus = 0, d0 = 0;
  for (NodeId u : view.neighbors()) {
    const int l = p.layer_of[u];
    if (l < 0) continue;
    if (l == layer - 1) {
      ++dminus;
      if (parent == kNoNode || u < parent) parent = u;
    } else if (l == layer) {
      ++d0;  // grows while v waits to be scheduled (synchronous recompose)
    }
  }
  const std::size_t dplus = view.degree() - dminus;

  codec::write_id(scratch, view.id(), n);
  codec::write_count(scratch, static_cast<std::size_t>(layer), n);
  codec::write_parent(scratch, parent, n);
  codec::write_count(scratch, dminus, n);
  codec::write_count(scratch, d0, n);
  codec::write_count(scratch, dplus, n);
  return scratch.take();
}

BfsProtocolOutput SyncBfsProtocol::output(const Whiteboard& board,
                                          std::size_t n) const {
  const ParsedBoard& p = board.cached_view<ParsedBoard>(
      [n](const Whiteboard& b) { return parse_board(b, n); });
  WB_REQUIRE_MSG(p.entries.size() == n,
                 "expected " << n << " messages, got " << p.entries.size());
  BfsProtocolOutput out;
  out.layer.assign(n, -1);
  out.parent.assign(n, kNoNode);
  for (const Entry& e : p.entries) {
    out.layer[e.id - 1] = e.layer;
    out.parent[e.id - 1] = e.parent;
    if (e.parent == kNoNode) out.roots.push_back(e.id);
  }
  std::sort(out.roots.begin(), out.roots.end());
  return out;
}

}  // namespace wb
