#include "src/protocols/anon_frontier.h"

#include <algorithm>

#include "src/protocols/codec.h"

namespace wb {

std::size_t AnonDegreeProtocol::message_bit_limit(std::size_t n) const {
  // Degrees range over 0..n-1: exactly the id field width.
  return static_cast<std::size_t>(codec::id_bits(n));
}

Bits AnonDegreeProtocol::compose(const LocalView& view,
                                 const Whiteboard& board) const {
  BitWriter w;
  return compose(view, board, w);
}

Bits AnonDegreeProtocol::compose(const LocalView& view, const Whiteboard&,
                                 BitWriter& scratch) const {
  scratch.write_uint(view.degree(), codec::id_bits(view.n()));
  return scratch.take();
}

AnonDegreeOutput AnonDegreeProtocol::output(const Whiteboard& board,
                                            std::size_t n) const {
  AnonDegreeOutput degrees;
  degrees.reserve(board.message_count());
  for (const Bits& m : board.messages()) {
    BitReader r(m);
    const std::uint64_t d = r.read_uint(codec::id_bits(n));
    WB_REQUIRE_MSG(d < n, "degree " << d << " out of range for n=" << n);
    WB_REQUIRE_MSG(r.exhausted(), "trailing bits in anonymous degree message");
    degrees.push_back(static_cast<std::size_t>(d));
  }
  std::sort(degrees.begin(), degrees.end());
  return degrees;
}

}  // namespace wb
