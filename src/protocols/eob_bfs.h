// BFS forests of even-odd-bipartite graphs in ASYNC[log n] (paper Thm 7)
// and of arbitrary bipartite graphs (paper Cor 4).
//
// The protocol activates nodes layer by layer. A node's message is
//     (ID(v), l(v), p(v), d-1(v), d+1(v))
// where l(v) = 1 + min layer among already-written neighbors, p(v) is the
// minimum-ID written neighbor (ROOT when none), d-1(v) = #written neighbors
// and d+1(v) = deg(v) − d-1(v). Activation is gated by an edge-counting
// certificate: layer ℓ is complete exactly when
//     Σ_{u ∈ L_ℓ} d-1(u)  =  Σ_{u ∈ L_{ℓ-1}} d+1(u)
// over written nodes — every layer-ℓ node has d-1 ≥ 1, so the left side
// reaches the (fixed) right side only when the whole layer has written.
//
// Component switching: when the finished layer promises no further edges,
// the minimum-ID unwritten node activates as a new root. We generalize the
// paper's condition Σ_{u∈L_{l(w)}} d+1(u) = 0 to
//     Σ_{u∈L_ℓ} d+1(u) − Σ_{u∈L_{ℓ+1}} d-1(u) = 0
// ("all promised next-layer edges are consumed"): the paper's literal form
// only balances for the first two components — with three or more, earlier
// components' roots keep nonzero d+1 forever. Both forms agree on ≤ 2
// components; the tests exercise ≥ 3.
//
// Mode kEvenOdd (Thm 7): a node with a same-parity neighbor immediately
// writes an "invalid" message, everyone else echoes it, and the output is
// valid = false. Mode kBipartiteNoCheck (Cor 4): the parity test is dropped;
// the protocol computes BFS forests of arbitrary bipartite graphs and can
// deadlock on non-bipartite inputs (the run ends in a corrupted
// configuration, which the engine reports).
#pragma once

#include "src/protocols/outputs.h"
#include "src/wb/protocol.h"

namespace wb {

enum class EobMode { kEvenOdd, kBipartiteNoCheck };

class EobBfsProtocol final : public ProtocolWithOutput<BfsProtocolOutput> {
 public:
  explicit EobBfsProtocol(EobMode mode = EobMode::kEvenOdd) : mode_(mode) {}

  [[nodiscard]] ModelClass model_class() const override {
    return ModelClass::kAsync;
  }
  [[nodiscard]] std::size_t message_bit_limit(std::size_t n) const override;
  [[nodiscard]] bool activate(const LocalView& view,
                              const Whiteboard& board) const override;
  [[nodiscard]] Bits compose(const LocalView& view,
                             const Whiteboard& board) const override;
  [[nodiscard]] Bits compose(const LocalView& view, const Whiteboard& board,
                             BitWriter& scratch) const override;
  [[nodiscard]] BfsProtocolOutput output(const Whiteboard& board,
                                         std::size_t n) const override;
  [[nodiscard]] std::string name() const override {
    return mode_ == EobMode::kEvenOdd ? "eob-bfs" : "bipartite-bfs";
  }

 private:
  EobMode mode_;
};

}  // namespace wb
