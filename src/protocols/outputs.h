// Output value types shared by the protocol implementations.
#pragma once

#include <optional>
#include <vector>

#include "src/graph/graph.h"

namespace wb {

/// Output of the BUILD protocols: the reconstructed graph, or std::nullopt
/// when the input is (detectably) outside the protocol's promised class
/// (e.g. a cycle handed to the forest builder). Corrupted whiteboards raise
/// wb::DataError instead.
using BuildOutput = std::optional<Graph>;

/// Output of rooted MIS (Thm 5): the independent set, root included.
using MisOutput = std::vector<NodeId>;

/// Output of the BFS protocols (Thm 7/10): a BFS forest, or valid == false
/// when the protocol reported the input outside its promise (EOB-BFS on a
/// non-even-odd-bipartite graph).
struct BfsProtocolOutput {
  bool valid = true;
  std::vector<int> layer;      // per node; -1 never happens on success
  std::vector<NodeId> parent;  // kNoNode at roots
  std::vector<NodeId> roots;   // ascending
};

/// Output of 2-CLIQUES (§5.1).
struct TwoCliquesOutput {
  bool yes = false;
  /// Side assignment (0/1 per node) when yes; empty otherwise.
  std::vector<int> side;
};

/// Output of the SIMSYNC triangle candidate (DESIGN.md §3 note 2).
enum class TriangleVerdict {
  kYes,      // certificate found (sound: implies a real triangle)
  kNo,       // no certificate; consistent-graph analysis (if enabled) agrees
  kUnknown,  // consistent graphs disagree — candidate protocol inconclusive
};

}  // namespace wb
