// BUILD for graphs of degeneracy ≤ k in SIMASYNC[O(k² log n)] (paper
// §3.2–3.4, Theorem 2, Algorithm 1).
//
// Every node simultaneously writes
//     (ID(x), d_G(x), b(x))   with   b(x) = A(k,n)·x,
// i.e. the power sums Σ_{w∈N(x)} ID(w)^p for p = 1..k — O(k² log n) bits
// (Lemma 1). Theorem 1 (Wright) makes b(x) a perfect fingerprint of any
// neighborhood of size ≤ k, so the output function runs Algorithm 1: while a
// message with residual degree ≤ k exists, decode that node's residual
// neighborhood, add the edges, and subtract the node from its neighbors'
// fingerprints. If the process strands only nodes of residual degree > k the
// input was not k-degenerate and the protocol rejects (recognition variant).
//
// Two interchangeable decoders:
//  - kNewton: Newton's identities → monic polynomial → integer root
//    extraction over {1..n}; O(n·k) per node, O(n²k) total.
//  - kTable: the Lemma 2 lookup table over all ≤k-subsets (O(n^k) space);
//    reference implementation for the decoder ablation bench.
#pragma once

#include "src/protocols/outputs.h"
#include "src/wb/protocol.h"

namespace wb {

enum class DegenerateDecoder { kNewton, kTable };

class BuildDegenerateProtocol final : public SimAsyncProtocol<BuildOutput> {
 public:
  explicit BuildDegenerateProtocol(
      int k, DegenerateDecoder decoder = DegenerateDecoder::kNewton);

  [[nodiscard]] std::size_t message_bit_limit(std::size_t n) const override;
  [[nodiscard]] Bits compose_initial(const LocalView& view) const override;
  [[nodiscard]] Bits compose_initial(const LocalView& view,
                                     BitWriter& scratch) const override;
  [[nodiscard]] BuildOutput output(const Whiteboard& board,
                                   std::size_t n) const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] int k() const noexcept { return k_; }

 private:
  int k_;
  DegenerateDecoder decoder_;
};

}  // namespace wb
