// Rooted maximal independent set in SIMSYNC[log n] (paper Theorem 5).
//
// The greedy protocol: when the adversary selects node v, the message is
//  - ID(v) with the IN flag, if v = x (the root), or if v ∉ N(x) and no
//    neighbor of v has an IN message on the whiteboard yet;
//  - "no" (the OUT flag) otherwise.
// The set of IN IDs on the final whiteboard is an inclusion-maximal
// independent set containing x, whatever order the adversary forces —
// SIMSYNC's per-round recomposition is what lets a node withdraw after a
// neighbor enters the set.
//
// Theorem 6 proves the same problem needs Ω(n)-bit messages in SIMASYNC; the
// executable form of that separation lives in src/reductions/mis_reduction.h.
#pragma once

#include "src/protocols/outputs.h"
#include "src/wb/protocol.h"

namespace wb {

class RootedMisProtocol final : public SimSyncProtocol<MisOutput> {
 public:
  explicit RootedMisProtocol(NodeId root) : root_(root) {
    WB_CHECK(root >= 1);
  }

  [[nodiscard]] std::size_t message_bit_limit(std::size_t n) const override;
  [[nodiscard]] Bits compose(const LocalView& view,
                             const Whiteboard& board) const override;
  [[nodiscard]] Bits compose(const LocalView& view, const Whiteboard& board,
                             BitWriter& scratch) const override;
  [[nodiscard]] MisOutput output(const Whiteboard& board,
                                 std::size_t n) const override;
  /// compose skips every message whose author is not a neighbor (the root
  /// special-cases read only the local view), so recomposition is needed
  /// only after a neighbor writes.
  [[nodiscard]] FrontierLocality frontier_locality() const override {
    return {.activate_neighbor_local = false, .compose_neighbor_local = true};
  }
  [[nodiscard]] std::string name() const override { return "rooted-mis"; }

  [[nodiscard]] NodeId root() const noexcept { return root_; }

 private:
  NodeId root_;
};

/// Unbounded-message SIMASYNC baseline for rooted MIS: every node writes its
/// full adjacency row, and the output function computes the deterministic
/// greedy MIS containing the root (root first, then ascending IDs). This is
/// the oracle the executable Theorem 6 reduction is driven with; its
/// Θ(n)-bit messages are exactly what the theorem says cannot be avoided.
class MisOracleProtocol final : public SimAsyncProtocol<MisOutput> {
 public:
  explicit MisOracleProtocol(NodeId root) : root_(root) { WB_CHECK(root >= 1); }

  [[nodiscard]] std::size_t message_bit_limit(std::size_t n) const override;
  [[nodiscard]] Bits compose_initial(const LocalView& view) const override;
  [[nodiscard]] MisOutput output(const Whiteboard& board,
                                 std::size_t n) const override;
  [[nodiscard]] std::string name() const override { return "mis-oracle"; }

  [[nodiscard]] NodeId root() const noexcept { return root_; }

 private:
  NodeId root_;
};

}  // namespace wb
