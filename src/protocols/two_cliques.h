// 2-CLIQUES in SIMSYNC[log n] (paper §5.1).
//
// Input promise: G is (n-1)-regular on 2n nodes; decide whether G is the
// disjoint union of two n-cliques. The greedy "which clique do I believe I'm
// in" protocol:
//  - the first selected node writes side 0;
//  - a later node whose already-written neighbors all wrote side c writes c;
//  - a later node with no written neighbor writes side 1;
//  - a node seeing both sides among written neighbors writes "no".
// Output: YES iff no "no" was written and both sides have exactly n nodes.
// (The side-count check rejects executions on a connected regular graph
// where a single side floods everything — see the analysis in
// tests/protocols/two_cliques_test.cpp.)
#pragma once

#include "src/protocols/outputs.h"
#include "src/wb/protocol.h"

namespace wb {

class TwoCliquesProtocol final : public SimSyncProtocol<TwoCliquesOutput> {
 public:
  [[nodiscard]] std::size_t message_bit_limit(std::size_t n) const override;
  [[nodiscard]] Bits compose(const LocalView& view,
                             const Whiteboard& board) const override;
  [[nodiscard]] Bits compose(const LocalView& view, const Whiteboard& board,
                             BitWriter& scratch) const override;
  [[nodiscard]] TwoCliquesOutput output(const Whiteboard& board,
                                        std::size_t n) const override;
  [[nodiscard]] std::string name() const override { return "two-cliques"; }
};

}  // namespace wb
