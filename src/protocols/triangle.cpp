#include "src/protocols/triangle.h"

#include <algorithm>
#include <vector>

#include "src/graph/algorithms.h"
#include "src/graph/enumerate.h"
#include "src/protocols/codec.h"
#include "src/support/powersum.h"

namespace wb {

// --- Oracle ------------------------------------------------------------------

std::size_t TriangleOracleProtocol::message_bit_limit(std::size_t n) const {
  return static_cast<std::size_t>(codec::id_bits(n)) + n;
}

Bits TriangleOracleProtocol::compose_initial(const LocalView& view) const {
  BitWriter w;
  return compose_initial(view, w);
}

Bits TriangleOracleProtocol::compose_initial(const LocalView& view,
                                             BitWriter& w) const {
  const std::size_t n = view.n();
  codec::write_id(w, view.id(), n);
  for (NodeId u = 1; u <= n; ++u) w.write_bit(view.has_neighbor(u));
  return w.take();
}

bool TriangleOracleProtocol::output(const Whiteboard& board,
                                    std::size_t n) const {
  WB_REQUIRE_MSG(board.message_count() == n,
                 "expected " << n << " messages, got " << board.message_count());
  GraphBuilder builder(n);
  std::vector<bool> seen(n + 1, false);
  for (const Bits& m : board.messages()) {
    BitReader r(m);
    const NodeId id = codec::read_id(r, n);
    WB_REQUIRE_MSG(!seen[id], "node " << id << " wrote twice");
    seen[id] = true;
    for (NodeId u = 1; u <= n; ++u) {
      if (r.read_bit() && u != id && !builder.has_edge(id, u)) {
        builder.add_edge(id, u);
      }
    }
  }
  return has_triangle(builder.build());
}

// --- Pair chase --------------------------------------------------------------

namespace {

constexpr int kKindAnnounce = 0;
constexpr int kKindCert = 1;
constexpr int kPower = 3;  // power sums p1..p3: back-degrees ≤ 3 decodable

struct ChaseMessage {
  int kind = kKindAnnounce;
  NodeId id = kNoNode;
  // certificate payload
  NodeId x = kNoNode, y = kNoNode;
  // announce payload
  std::size_t back_degree = 0;
  std::vector<i128> psums;
};

ChaseMessage parse(const Bits& m, std::size_t n) {
  BitReader r(m);
  ChaseMessage msg;
  msg.kind = static_cast<int>(r.read_uint(1));
  msg.id = codec::read_id(r, n);
  if (msg.kind == kKindCert) {
    msg.x = codec::read_id(r, n);
    msg.y = codec::read_id(r, n);
  } else {
    msg.back_degree = codec::read_count(r, n);
    msg.psums.resize(kPower);
    for (int p = 1; p <= kPower; ++p) {
      msg.psums[static_cast<std::size_t>(p - 1)] =
          codec::read_power_sum(r, n, p);
    }
  }
  WB_REQUIRE_MSG(r.exhausted(), "trailing bits in message of node " << msg.id);
  return msg;
}

/// Every edge revealed on the board so far: decodable announcements reveal
/// {writer, back-neighbor} edges; certificates reveal their three edges.
std::vector<Edge> revealed_edges(const Whiteboard& board, std::size_t n) {
  std::vector<Edge> edges;
  for (const Bits& m : board.messages()) {
    const ChaseMessage msg = parse(m, n);
    if (msg.kind == kKindCert) {
      edges.push_back(make_edge(msg.id, msg.x));
      edges.push_back(make_edge(msg.id, msg.y));
      edges.push_back(make_edge(msg.x, msg.y));
      continue;
    }
    if (msg.back_degree > kPower) continue;  // not decodable
    const auto subset =
        decode_subset(msg.psums, static_cast<int>(msg.back_degree),
                      static_cast<std::uint32_t>(n));
    WB_REQUIRE_MSG(subset.has_value(),
                   "announcement of node " << msg.id << " fails to decode");
    for (std::uint32_t u : *subset) {
      edges.push_back(make_edge(msg.id, static_cast<NodeId>(u)));
    }
  }
  return edges;
}

/// IDs of nodes that have written so far.
std::vector<bool> written_ids(const Whiteboard& board, std::size_t n) {
  std::vector<bool> w(n + 1, false);
  for (const Bits& m : board.messages()) w[parse(m, n).id] = true;
  return w;
}

}  // namespace

std::size_t TrianglePairChaseProtocol::message_bit_limit(std::size_t n) const {
  std::size_t bits = 1 + static_cast<std::size_t>(codec::id_bits(n));
  // A certificate carries two more IDs; an announcement a count plus three
  // power sums. The limit is the max of both shapes.
  const std::size_t cert =
      bits + 2 * static_cast<std::size_t>(codec::id_bits(n));
  std::size_t announce = bits + static_cast<std::size_t>(codec::count_bits(n));
  for (int p = 1; p <= kPower; ++p) {
    announce += static_cast<std::size_t>(codec::power_sum_bits(n, p));
  }
  return std::max(cert, announce);
}

Bits TrianglePairChaseProtocol::compose(const LocalView& view,
                                        const Whiteboard& board) const {
  BitWriter w;
  return compose(view, board, w);
}

Bits TrianglePairChaseProtocol::compose(const LocalView& view,
                                        const Whiteboard& board,
                                        BitWriter& w) const {
  const std::size_t n = view.n();

  // Does some revealed edge close a triangle through us?
  for (const Edge& e : revealed_edges(board, n)) {
    if (view.has_neighbor(e.u) && view.has_neighbor(e.v)) {
      w.write_uint(kKindCert, 1);
      codec::write_id(w, view.id(), n);
      codec::write_id(w, e.u, n);
      codec::write_id(w, e.v, n);
      return w.take();
    }
  }

  // Otherwise announce our back-neighborhood fingerprint.
  const std::vector<bool> written = written_ids(board, n);
  std::vector<std::uint32_t> back;
  for (NodeId u : view.neighbors()) {
    if (written[u]) back.push_back(u);
  }
  const std::vector<i128> p = power_sums(back, kPower);
  w.write_uint(kKindAnnounce, 1);
  codec::write_id(w, view.id(), n);
  codec::write_count(w, back.size(), n);
  for (int j = 1; j <= kPower; ++j) {
    codec::write_power_sum(w, p[static_cast<std::size_t>(j - 1)], n, j);
  }
  return w.take();
}

TriangleVerdict TrianglePairChaseProtocol::output(const Whiteboard& board,
                                                  std::size_t n) const {
  for (const Bits& m : board.messages()) {
    if (parse(m, n).kind == kKindCert) return TriangleVerdict::kYes;
  }
  if (n > csp_limit_) return TriangleVerdict::kNo;

  // Consistent-graph analysis: replay the deterministic compose() of every
  // writer against every candidate graph; keep the graphs that reproduce the
  // recorded board exactly, and answer only if they agree about triangles.
  std::vector<NodeId> order;
  for (const Bits& m : board.messages()) order.push_back(parse(m, n).id);

  bool any_yes = false, any_no = false, any_consistent = false;
  for_each_labeled_graph(n, [&](const Graph& h) {
    Whiteboard prefix;
    for (std::size_t t = 0; t < order.size(); ++t) {
      const NodeId v = order[t];
      const LocalView hview(v, h.neighbors(v), n);
      if (!(compose(hview, prefix) == board.message(t))) return;
      prefix.append(board.message(t));
    }
    any_consistent = true;
    (has_triangle(h) ? any_yes : any_no) = true;
  });
  WB_REQUIRE_MSG(any_consistent, "no graph is consistent with this board");
  if (any_yes && any_no) return TriangleVerdict::kUnknown;
  return any_yes ? TriangleVerdict::kYes : TriangleVerdict::kNo;
}

}  // namespace wb
