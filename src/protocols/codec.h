// Shared field codecs for protocol messages.
//
// All protocols encode node IDs, degrees/counters, layers and power sums with
// the exact field widths counted here, so the engine's bit accounting matches
// the paper's O(·) claims with explicit constants.
#pragma once

#include <cstdint>

#include "src/support/bitio.h"
#include "src/support/bits.h"
#include "src/support/powersum.h"
#include "src/graph/graph.h"

namespace wb::codec {

/// Width of a node-ID field for n-node graphs (IDs 1..n stored as id-1).
[[nodiscard]] inline int id_bits(std::size_t n) {
  return bits_for_id(static_cast<std::uint64_t>(n));
}

inline void write_id(BitWriter& w, NodeId id, std::size_t n) {
  WB_CHECK(id >= 1 && id <= n);
  w.write_uint(id - 1, id_bits(n));
}

[[nodiscard]] inline NodeId read_id(BitReader& r, std::size_t n) {
  const auto raw = r.read_uint(id_bits(n)) + 1;
  WB_REQUIRE_MSG(raw <= n, "decoded node id " << raw << " out of range");
  return static_cast<NodeId>(raw);
}

/// Width of a counter in [0, n] (degrees, layer indices, edge counts per
/// node).
[[nodiscard]] inline int count_bits(std::size_t n) {
  return bits_for_range(static_cast<std::uint64_t>(n));
}

inline void write_count(BitWriter& w, std::size_t value, std::size_t n) {
  WB_CHECK(value <= n);
  w.write_uint(value, count_bits(n));
}

[[nodiscard]] inline std::size_t read_count(BitReader& r, std::size_t n) {
  const auto v = r.read_uint(count_bits(n));
  WB_REQUIRE_MSG(v <= n, "decoded counter " << v << " out of range 0.." << n);
  return static_cast<std::size_t>(v);
}

/// Parent field: 0 encodes ROOT, otherwise a node ID.
[[nodiscard]] inline int parent_bits(std::size_t n) {
  return bits_for_range(static_cast<std::uint64_t>(n));
}

inline void write_parent(BitWriter& w, NodeId parent, std::size_t n) {
  WB_CHECK(parent <= n);
  w.write_uint(parent, parent_bits(n));
}

[[nodiscard]] inline NodeId read_parent(BitReader& r, std::size_t n) {
  const auto v = r.read_uint(parent_bits(n));
  WB_REQUIRE_MSG(v <= n, "decoded parent " << v << " out of range");
  return static_cast<NodeId>(v);
}

/// Width of the p-th power sum of at most n-1 IDs from {1..n}:
/// value ≤ (n-1)·n^p < n^{p+1}, i.e. (p+1)·id-field widths plus change.
[[nodiscard]] inline int power_sum_bits(std::size_t n, int p) {
  // ceil(log2(n^{p+1})) = ceil((p+1)·log2 n); compute exactly on integers.
  const int per = ceil_log2(static_cast<std::uint64_t>(n) + 1);
  return (p + 1) * per;
}

/// Power sums can exceed 64 bits (width up to ~6·log2 n); split into two
/// machine words on the wire.
inline void write_power_sum(BitWriter& w, i128 value, std::size_t n, int p) {
  WB_CHECK(value >= 0);
  const int width = power_sum_bits(n, p);
  const auto lo =
      static_cast<std::uint64_t>(static_cast<u128>(value) & ~std::uint64_t{0});
  const auto hi = static_cast<std::uint64_t>(static_cast<u128>(value) >> 64);
  if (width <= 64) {
    WB_CHECK_MSG(hi == 0, "power sum exceeds declared field width");
    w.write_uint(lo, width);
  } else {
    w.write_uint(lo, 64);
    w.write_uint(hi, width - 64);
  }
}

[[nodiscard]] inline i128 read_power_sum(BitReader& r, std::size_t n, int p) {
  const int width = power_sum_bits(n, p);
  if (width <= 64) {
    return static_cast<i128>(r.read_uint(width));
  }
  const std::uint64_t lo = r.read_uint(64);
  const std::uint64_t hi = r.read_uint(width - 64);
  return static_cast<i128>((static_cast<u128>(hi) << 64) | lo);
}

}  // namespace wb::codec
