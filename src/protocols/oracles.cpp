#include "src/protocols/oracles.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "src/graph/algorithms.h"
#include "src/protocols/codec.h"

namespace wb {

PropertyOracleProtocol::PropertyOracleProtocol(std::string name,
                                               Predicate predicate)
    : name_(std::move(name)), predicate_(std::move(predicate)) {
  WB_CHECK(predicate_ != nullptr);
}

std::size_t PropertyOracleProtocol::message_bit_limit(std::size_t n) const {
  return static_cast<std::size_t>(codec::id_bits(n)) + n;
}

Bits PropertyOracleProtocol::compose_initial(const LocalView& view) const {
  BitWriter w;
  return compose_initial(view, w);
}

Bits PropertyOracleProtocol::compose_initial(const LocalView& view,
                                             BitWriter& scratch) const {
  const std::size_t n = view.n();
  codec::write_id(scratch, view.id(), n);
  for (NodeId u = 1; u <= n; ++u) scratch.write_bit(view.has_neighbor(u));
  return scratch.take();
}

bool PropertyOracleProtocol::output(const Whiteboard& board,
                                    std::size_t n) const {
  WB_REQUIRE_MSG(board.message_count() == n,
                 "expected " << n << " messages, got " << board.message_count());
  std::vector<std::vector<bool>> row(n + 1);
  std::vector<bool> seen(n + 1, false);
  for (const Bits& m : board.messages()) {
    BitReader r(m);
    const NodeId id = codec::read_id(r, n);
    WB_REQUIRE_MSG(!seen[id], "node " << id << " wrote twice");
    seen[id] = true;
    row[id].resize(n + 1);
    for (NodeId u = 1; u <= n; ++u) row[id][u] = r.read_bit();
  }
  GraphBuilder builder(n);
  for (NodeId u = 1; u <= n; ++u) {
    for (NodeId v = u + 1; v <= n; ++v) {
      WB_REQUIRE_MSG(row[u][v] == row[v][u],
                     "asymmetric adjacency bits for {" << u << "," << v << "}");
      if (row[u][v]) builder.add_edge(u, v);
    }
  }
  return predicate_(builder.build());
}

PropertyOracleProtocol square_oracle() {
  return PropertyOracleProtocol("square-oracle",
                                [](const Graph& g) { return has_square(g); });
}

PropertyOracleProtocol diameter_at_most_oracle(int d) {
  return PropertyOracleProtocol(
      "diameter<=" + std::to_string(d) + "-oracle", [d](const Graph& g) {
        const int diam = diameter(g);
        return diam >= 0 && diam <= d;
      });
}

PropertyOracleProtocol connectivity_oracle() {
  return PropertyOracleProtocol(
      "connectivity-oracle", [](const Graph& g) { return is_connected(g); });
}

SpanningForestOutput SpanningForestProtocol::output(const Whiteboard& board,
                                                    std::size_t n) const {
  const BfsProtocolOutput forest = bfs_.output(board, n);
  WB_REQUIRE_MSG(forest.valid, "BFS whiteboard marked invalid");
  SpanningForestOutput out;
  for (NodeId v = 1; v <= n; ++v) {
    const NodeId p = forest.parent[v - 1];
    if (p != kNoNode) out.edges.push_back(make_edge(p, v));
  }
  std::sort(out.edges.begin(), out.edges.end());
  out.components = forest.roots.size();
  out.connected = out.components <= 1;
  return out;
}

bool is_spanning_forest_of(const Graph& g, const SpanningForestOutput& out) {
  const std::size_t n = g.node_count();
  // Every forest edge must be a graph edge.
  for (const Edge& e : out.edges) {
    if (!g.has_edge(e.u, e.v)) return false;
  }
  // Union-find over the forest edges: acyclicity + component count.
  std::vector<std::size_t> parent(n + 1);
  std::iota(parent.begin(), parent.end(), std::size_t{0});
  std::function<std::size_t(std::size_t)> find = [&](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const Edge& e : out.edges) {
    const std::size_t a = find(e.u), b = find(e.v);
    if (a == b) return false;  // cycle
    parent[a] = b;
  }
  // The forest's components must coincide with the graph's.
  const Components ref = connected_components(g);
  if (out.components != ref.count) return false;
  for (NodeId u = 1; u <= n; ++u) {
    for (NodeId v = u + 1; v <= n; ++v) {
      const bool same_forest = find(u) == find(v);
      const bool same_graph = ref.component[u - 1] == ref.component[v - 1];
      if (same_forest != same_graph) return false;
    }
  }
  return out.connected == (ref.count <= 1);
}

}  // namespace wb
