// Anonymous degree parade — a SIMSYNC[log n] protocol whose messages carry
// no identity.
//
// Every other protocol in the zoo signs its message with write_id, which
// makes the final whiteboard a faithful log of the adversary's schedule:
// distinct schedules always produce distinct boards. This protocol writes
// only deg(v) in id_bits(n) anonymous bits, so schedules that write
// same-degree nodes in swapped order *converge* to the same engine state.
// That convergence is what the paper's one-write model makes interesting
// (§1: with few bits the board no longer describes the graph — here it only
// carries the degree sequence) and what two subsystems exercise directly:
//
//  - the memoized enumerator (ExhaustiveOptions::memoize) shares converged
//    subtrees, visiting far fewer states than schedules;
//  - the symbolic backend counts its distinct boards as permutations of a
//    multiset (n! / prod(multiplicity!)) without enumerating schedules.
//
// The output is the sorted written degree list; it is correct iff it equals
// the graph's degree sequence, which every schedule achieves — the protocol
// is trivially correct, and exists for its state-space shape.
#pragma once

#include <cstddef>
#include <vector>

#include "src/wb/protocol.h"

namespace wb {

/// Sorted (ascending) degrees read off the final whiteboard.
using AnonDegreeOutput = std::vector<std::size_t>;

class AnonDegreeProtocol final : public SimSyncProtocol<AnonDegreeOutput> {
 public:
  [[nodiscard]] std::size_t message_bit_limit(std::size_t n) const override;
  [[nodiscard]] Bits compose(const LocalView& view,
                             const Whiteboard& board) const override;
  [[nodiscard]] Bits compose(const LocalView& view, const Whiteboard& board,
                             BitWriter& scratch) const override;
  [[nodiscard]] AnonDegreeOutput output(const Whiteboard& board,
                                        std::size_t n) const override;
  /// The message is a function of the local view alone; no recomposition is
  /// ever needed after a neighbor writes.
  [[nodiscard]] FrontierLocality frontier_locality() const override {
    return {.activate_neighbor_local = false, .compose_neighbor_local = true};
  }
  [[nodiscard]] std::string name() const override { return "anon-degree"; }
};

}  // namespace wb
