// Full-information decision oracles and derived problems.
//
// §1 of the paper: with O(n)-bit messages "the whole graph is described on
// the whiteboard; therefore, any question can be easily answered", and at
// o(n) bits questions like "Does G contain a square?" or "Is the diameter
// of G at most 3?" become unsolvable. PropertyOracleProtocol is the
// executable form of the first half: a SIMASYNC[n + log n] protocol whose
// output evaluates an arbitrary graph predicate on the reconstructed input.
// It doubles as the oracle for counting comparisons (the o(n) impossibility
// side lives in the Lemma 3 ledger, bench_lemma3_counting).
//
// SpanningForestProtocol addresses Open Problem 2 ("Is it possible to solve
// SPANNING-TREE or even CONNECTIVITY in the ASYNC[f(n)] model?") from the
// constructive side: both problems are solvable in SYNC[log n] by reading a
// spanning forest off the Theorem 10 BFS whiteboard. Whether ASYNC suffices
// remains open; bench_connectivity measures how the ASYNC bipartite
// protocol's deadlock behaviour blocks the obvious approach.
#pragma once

#include <functional>
#include <string>

#include "src/protocols/bfs_sync.h"
#include "src/protocols/outputs.h"
#include "src/wb/protocol.h"

namespace wb {

/// SIMASYNC[n + log n]: every node writes its full adjacency row; the output
/// evaluates `predicate` on the reconstructed graph.
class PropertyOracleProtocol final : public SimAsyncProtocol<bool> {
 public:
  using Predicate = std::function<bool(const Graph&)>;

  PropertyOracleProtocol(std::string name, Predicate predicate);

  [[nodiscard]] std::size_t message_bit_limit(std::size_t n) const override;
  [[nodiscard]] Bits compose_initial(const LocalView& view) const override;
  [[nodiscard]] Bits compose_initial(const LocalView& view,
                                     BitWriter& scratch) const override;
  [[nodiscard]] bool output(const Whiteboard& board,
                            std::size_t n) const override;
  [[nodiscard]] std::string name() const override { return name_; }

 private:
  std::string name_;
  Predicate predicate_;
};

/// "Does G contain a square (C4)?" — §1.
[[nodiscard]] PropertyOracleProtocol square_oracle();
/// "Is the diameter of G at most d?" — §1 uses d = 3.
[[nodiscard]] PropertyOracleProtocol diameter_at_most_oracle(int d);
/// "Is G connected?" — §6 / Open Problem 2.
[[nodiscard]] PropertyOracleProtocol connectivity_oracle();

/// Output of SPANNING-TREE / CONNECTIVITY read off a BFS whiteboard.
struct SpanningForestOutput {
  std::vector<Edge> edges;   // parent links, sorted
  std::size_t components = 0;
  bool connected = false;
};

/// SYNC[log n]: Theorem 10's protocol with a spanning-forest output function
/// (the positive half of Open Problem 2 — SYNC suffices; ASYNC is open).
class SpanningForestProtocol final
    : public ProtocolWithOutput<SpanningForestOutput> {
 public:
  [[nodiscard]] ModelClass model_class() const override {
    return ModelClass::kSync;
  }
  [[nodiscard]] std::size_t message_bit_limit(std::size_t n) const override {
    return bfs_.message_bit_limit(n);
  }
  [[nodiscard]] bool activate(const LocalView& view,
                              const Whiteboard& board) const override {
    return bfs_.activate(view, board);
  }
  [[nodiscard]] Bits compose(const LocalView& view,
                             const Whiteboard& board) const override {
    return bfs_.compose(view, board);
  }
  [[nodiscard]] Bits compose(const LocalView& view, const Whiteboard& board,
                             BitWriter& scratch) const override {
    return bfs_.compose(view, board, scratch);
  }
  [[nodiscard]] SpanningForestOutput output(const Whiteboard& board,
                                            std::size_t n) const override;
  /// Inherited from the embedded SYNC-BFS protocol (compose delegates to it
  /// verbatim).
  [[nodiscard]] FrontierLocality frontier_locality() const override {
    return bfs_.frontier_locality();
  }
  [[nodiscard]] std::string name() const override { return "spanning-forest"; }

 private:
  SyncBfsProtocol bfs_;
};

/// Validation: `edges` is a spanning forest of g (acyclic, within-component
/// spanning, edge count = n - #components).
[[nodiscard]] bool is_spanning_forest_of(const Graph& g,
                                         const SpanningForestOutput& out);

}  // namespace wb
