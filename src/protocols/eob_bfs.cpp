#include "src/protocols/eob_bfs.h"

#include <algorithm>
#include <vector>

#include "src/protocols/codec.h"

namespace wb {

namespace {

constexpr int kKindNormal = 0;
constexpr int kKindInvalid = 1;

struct Entry {
  NodeId id = kNoNode;
  int kind = kKindNormal;
  int layer = -1;
  NodeId parent = kNoNode;
  std::size_t dminus = 0;
  std::size_t dplus = 0;
};

struct ParsedBoard {
  bool invalid_seen = false;
  std::vector<Entry> entries;              // in write order
  std::vector<int> layer_of;               // by id; -1 if unwritten/invalid
  std::vector<bool> written;               // by id (any kind)
  std::vector<std::uint64_t> sum_dminus;   // by layer
  std::vector<std::uint64_t> sum_dplus;    // by layer
};

Entry parse_message(const Bits& m, std::size_t n) {
  BitReader r(m);
  Entry e;
  e.kind = static_cast<int>(r.read_uint(1));
  e.id = codec::read_id(r, n);
  if (e.kind == kKindNormal) {
    e.layer = static_cast<int>(codec::read_count(r, n));
    e.parent = codec::read_parent(r, n);
    e.dminus = codec::read_count(r, n);
    e.dplus = codec::read_count(r, n);
  }
  WB_REQUIRE_MSG(r.exhausted(), "trailing bits in BFS message of node " << e.id);
  return e;
}

ParsedBoard parse_board(const Whiteboard& board, std::size_t n) {
  ParsedBoard p;
  p.layer_of.assign(n + 1, -1);
  p.written.assign(n + 1, false);
  p.sum_dminus.assign(n + 2, 0);
  p.sum_dplus.assign(n + 2, 0);
  for (const Bits& m : board.messages()) {
    Entry e = parse_message(m, n);
    WB_REQUIRE_MSG(!p.written[e.id], "node " << e.id << " wrote twice");
    p.written[e.id] = true;
    if (e.kind == kKindInvalid) {
      p.invalid_seen = true;
    } else {
      WB_REQUIRE_MSG(e.layer >= 0 && static_cast<std::size_t>(e.layer) < n,
                     "layer out of range");
      p.layer_of[e.id] = e.layer;
      p.sum_dminus[static_cast<std::size_t>(e.layer)] += e.dminus;
      p.sum_dplus[static_cast<std::size_t>(e.layer)] += e.dplus;
    }
    p.entries.push_back(std::move(e));
  }
  return p;
}

/// Layer ℓ complete: all its nodes' back-edges account for every edge the
/// (complete) layer ℓ-1 promised forward.
bool layer_certificate(const ParsedBoard& p, std::size_t layer) {
  if (layer == 0) return true;  // roots have no back edges to account for
  return p.sum_dminus[layer] == p.sum_dplus[layer - 1];
}

/// No promised edge out of layer ℓ is still unconsumed (component drained).
bool no_pending_edges(const ParsedBoard& p, std::size_t layer) {
  return p.sum_dplus[layer] == p.sum_dminus[layer + 1];
}

bool has_same_parity_neighbor(const LocalView& view) {
  const auto parity = view.id() % 2;
  for (NodeId w : view.neighbors()) {
    if (w % 2 == parity) return true;
  }
  return false;
}

/// Minimum layer among written neighbors, or -1 when none.
int min_written_neighbor_layer(const LocalView& view, const ParsedBoard& p) {
  int best = -1;
  for (NodeId w : view.neighbors()) {
    const int l = p.layer_of[w];
    if (l >= 0 && (best == -1 || l < best)) best = l;
  }
  return best;
}

bool is_min_unwritten(const LocalView& view, const ParsedBoard& p) {
  for (NodeId u = 1; u < view.id(); ++u) {
    if (!p.written[u]) return false;
  }
  return !p.written[view.id()];
}

}  // namespace

std::size_t EobBfsProtocol::message_bit_limit(std::size_t n) const {
  return 1 + static_cast<std::size_t>(codec::id_bits(n)) +
         3 * static_cast<std::size_t>(codec::count_bits(n)) +
         static_cast<std::size_t>(codec::parent_bits(n));
}

bool EobBfsProtocol::activate(const LocalView& view,
                              const Whiteboard& board) const {
  if (mode_ == EobMode::kEvenOdd && has_same_parity_neighbor(view)) {
    return true;  // report the invalid input immediately
  }
  const std::size_t n = view.n();
  const ParsedBoard& p = board.cached_view<ParsedBoard>(
      [n](const Whiteboard& b) { return parse_board(b, n); });
  if (p.invalid_seen) return true;  // echo so the system drains

  if (p.entries.empty()) return view.id() == 1;  // v_1 starts

  // Rule A: previous layer complete.
  const int lstar = min_written_neighbor_layer(view, p);
  if (lstar >= 0) {
    return layer_certificate(p, static_cast<std::size_t>(lstar));
  }

  // Rule B: component switch. Last writer must be a (necessarily
  // non-neighbor) node of a drained component, and v the min-ID unwritten.
  const Entry& last = p.entries.back();
  if (last.kind != kKindNormal) return false;
  if (view.has_neighbor(last.id)) return false;
  const auto lw = static_cast<std::size_t>(last.layer);
  return layer_certificate(p, lw) && no_pending_edges(p, lw) &&
         is_min_unwritten(view, p);
}

Bits EobBfsProtocol::compose(const LocalView& view,
                             const Whiteboard& board) const {
  BitWriter scratch;
  return compose(view, board, scratch);
}

Bits EobBfsProtocol::compose(const LocalView& view, const Whiteboard& board,
                             BitWriter& w) const {
  const std::size_t n = view.n();
  if (mode_ == EobMode::kEvenOdd && has_same_parity_neighbor(view)) {
    w.write_uint(kKindInvalid, 1);
    codec::write_id(w, view.id(), n);
    return w.take();
  }
  const ParsedBoard& p = board.cached_view<ParsedBoard>(
      [n](const Whiteboard& b) { return parse_board(b, n); });
  if (p.invalid_seen) {
    w.write_uint(kKindInvalid, 1);
    codec::write_id(w, view.id(), n);
    return w.take();
  }

  // N*_v: written neighbors (all in layer l(v)-1 — the graph is bipartite
  // and later layers cannot have written yet).
  std::size_t written_neighbors = 0;
  int min_layer = -1;
  NodeId parent = kNoNode;
  for (NodeId u : view.neighbors()) {
    if (p.layer_of[u] < 0) continue;
    ++written_neighbors;
    if (min_layer == -1 || p.layer_of[u] < min_layer) min_layer = p.layer_of[u];
    if (parent == kNoNode || u < parent) parent = u;
  }
  const int layer = (written_neighbors == 0) ? 0 : min_layer + 1;
  const std::size_t dminus = written_neighbors;
  const std::size_t dplus = view.degree() - written_neighbors;

  w.write_uint(kKindNormal, 1);
  codec::write_id(w, view.id(), n);
  codec::write_count(w, static_cast<std::size_t>(layer), n);
  codec::write_parent(w, parent, n);
  codec::write_count(w, dminus, n);
  codec::write_count(w, dplus, n);
  return w.take();
}

BfsProtocolOutput EobBfsProtocol::output(const Whiteboard& board,
                                         std::size_t n) const {
  const ParsedBoard& p = board.cached_view<ParsedBoard>(
      [n](const Whiteboard& b) { return parse_board(b, n); });
  BfsProtocolOutput out;
  if (p.invalid_seen) {
    out.valid = false;
    return out;
  }
  WB_REQUIRE_MSG(p.entries.size() == n,
                 "expected " << n << " messages, got " << p.entries.size());
  out.layer.assign(n, -1);
  out.parent.assign(n, kNoNode);
  for (const Entry& e : p.entries) {
    out.layer[e.id - 1] = e.layer;
    out.parent[e.id - 1] = e.parent;
    if (e.parent == kNoNode) out.roots.push_back(e.id);
  }
  std::sort(out.roots.begin(), out.roots.end());
  return out;
}

}  // namespace wb
