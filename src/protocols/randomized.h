// Randomized whiteboard protocols (paper §7).
//
// The conclusion states: "It can be shown that 2-CLIQUES admits a randomized
// protocol for these models", and Open Problem 4 asks which problems admit
// randomized SIMASYNC[log n] protocols. We implement the natural public-coin
// formalization: a randomized protocol is a deterministic protocol
// parameterized by a shared random seed (the common random string is drawn
// before the execution; the adversary still chooses the schedule but not the
// coins). Correctness is then "for every graph and every schedule, the
// answer is right with high probability over the seed" — which the tests and
// benches measure empirically over many seeds.
//
// RandomizedTwoCliquesProtocol — 2-CLIQUES in *SIMASYNC*[O(log n)], i.e. in
// the weakest model, where the deterministic Table 2 status is open
// (Open Problem 1):
//   each node v writes (ID(v), F_r(N[v])) where N[v] is its closed
//   neighborhood and F_r is a degree-≤|S| polynomial fingerprint over a
//   64-bit field evaluated at the shared random point r:
//       F_r(S) = Π_{w ∈ S} (r + w)   mod 2^61-1.
//   Output: YES iff the fingerprints take exactly two values, each on
//   exactly n of the 2n nodes.
//
// Why it works: in a union of two n-cliques every node of a clique has the
// same closed neighborhood (the clique itself), so each side fingerprints
// identically — two values, n nodes each, always. Conversely, if some value
// class A of size n had members with *different* closed neighborhoods, the
// polynomial identity test separates them with probability ≥ 1 - n/p; and
// when all of A shares one closed neighborhood S, then A ⊆ S (closed),
// |S| = n (the input promise is (n-1)-regular) gives S = A: A is a clique
// split off from the rest. So NO-instances are rejected except with
// probability O(n/2^61) per pair — one-sided error.
#pragma once

#include <cstdint>

#include "src/protocols/outputs.h"
#include "src/wb/protocol.h"

namespace wb {

class RandomizedTwoCliquesProtocol final
    : public SimAsyncProtocol<TwoCliquesOutput> {
 public:
  /// `shared_seed` is the public random string (drawn once per execution,
  /// visible to every node, hidden from nobody).
  explicit RandomizedTwoCliquesProtocol(std::uint64_t shared_seed);

  [[nodiscard]] std::size_t message_bit_limit(std::size_t n) const override;
  [[nodiscard]] Bits compose_initial(const LocalView& view) const override;
  [[nodiscard]] Bits compose_initial(const LocalView& view,
                                     BitWriter& scratch) const override;
  [[nodiscard]] TwoCliquesOutput output(const Whiteboard& board,
                                        std::size_t n) const override;
  [[nodiscard]] std::string name() const override {
    return "randomized-two-cliques";
  }

  /// The fingerprint function itself (exposed for the collision bench):
  /// Π (r + w) mod 2^61-1 over the sorted set.
  [[nodiscard]] static std::uint64_t fingerprint(
      std::span<const NodeId> closed_neighborhood, std::uint64_t point);

 private:
  std::uint64_t point_;  // evaluation point derived from the shared seed
};

}  // namespace wb
