// BFS forests of arbitrary graphs in SYNC[log n] (paper Thm 10).
//
// Extends the EOB protocol with intra-layer bookkeeping. The message is
//     (ID(v), l(v), p(v), d-1(v), d0(v), d+1(v))
// with d-1(v) = #written neighbors one layer up, d0(v) = #written neighbors
// in the same layer *at the moment v's message is finally written* — this is
// where the synchronous "change its mind" power is essential: d0 grows while
// v waits to be scheduled, and the engine recomposes every round — and
// d+1(v) = deg(v) − d-1(v) (intra-layer edges are charged to d+1 and
// corrected by the certificates below).
//
// Layer-ℓ completion certificate (paper condition (b)):
//     Σ_{L_ℓ} d-1  =  Σ_{L_{ℓ-1}} d+1 − 2·Σ_{L_{ℓ-1}} d0
// — the right side is exactly the number of edges from layer ℓ-1 to layer ℓ
// (each intra-layer edge was double counted in d+1 and appears exactly once
// in the later endpoint's d0).
//
// Component switch (paper condition (c), with the same ≥3-component
// generalization as eob_bfs.h):
//     Σ_{L_ℓ} d+1 − 2·Σ_{L_ℓ} d0 − Σ_{L_{ℓ+1}} d-1 = 0.
//
// Deviation from the paper's text: we take p(v) = the minimum-ID written
// neighbor *in layer l(v)-1*. The paper says "minimum-ID node of N*_v",
// which under synchronous recomposition could select a same-layer neighbor
// that wrote early and would not be a valid BFS parent; restricting to the
// previous layer matches the obvious intent (and the EOB case, where the two
// definitions coincide).
#pragma once

#include "src/protocols/outputs.h"
#include "src/wb/protocol.h"

namespace wb {

class SyncBfsProtocol final : public ProtocolWithOutput<BfsProtocolOutput> {
 public:
  [[nodiscard]] ModelClass model_class() const override {
    return ModelClass::kSync;
  }
  [[nodiscard]] std::size_t message_bit_limit(std::size_t n) const override;
  [[nodiscard]] bool activate(const LocalView& view,
                              const Whiteboard& board) const override;
  [[nodiscard]] Bits compose(const LocalView& view,
                             const Whiteboard& board) const override;
  [[nodiscard]] Bits compose(const LocalView& view, const Whiteboard& board,
                             BitWriter& scratch) const override;
  [[nodiscard]] BfsProtocolOutput output(const Whiteboard& board,
                                         std::size_t n) const override;
  /// compose reads only the layers of written *neighbors* (plus the local
  /// view), so the frontier engine may skip recomposing nodes whose
  /// neighborhood did not write. activate is global — the layer certificates
  /// sum over whole layers and condition (c) inspects all smaller IDs — so
  /// it stays unclaimed.
  [[nodiscard]] FrontierLocality frontier_locality() const override {
    return {.activate_neighbor_local = false, .compose_neighbor_local = true};
  }
  [[nodiscard]] std::string name() const override { return "sync-bfs"; }
};

}  // namespace wb
