#include "src/protocols/build_forest.h"

#include <vector>

#include "src/protocols/codec.h"

namespace wb {

namespace {

/// Width of the neighbor-ID sum: at most Σ_{i=1..n} i = n(n+1)/2.
int sum_bits(std::size_t n) {
  const auto max_sum =
      static_cast<std::uint64_t>(n) * (static_cast<std::uint64_t>(n) + 1) / 2;
  return bits_for_range(max_sum);
}

}  // namespace

std::size_t BuildForestProtocol::message_bit_limit(std::size_t n) const {
  return static_cast<std::size_t>(codec::id_bits(n) + codec::count_bits(n) +
                                  sum_bits(n));
}

Bits BuildForestProtocol::compose_initial(const LocalView& view) const {
  BitWriter w;
  return compose_initial(view, w);
}

Bits BuildForestProtocol::compose_initial(const LocalView& view,
                                          BitWriter& w) const {
  const std::size_t n = view.n();
  codec::write_id(w, view.id(), n);
  codec::write_count(w, view.degree(), n);
  std::uint64_t sum = 0;
  for (NodeId nb : view.neighbors()) sum += nb;
  w.write_uint(sum, sum_bits(n));
  return w.take();
}

BuildOutput BuildForestProtocol::output(const Whiteboard& board,
                                        std::size_t n) const {
  WB_REQUIRE_MSG(board.message_count() == n,
                 "expected " << n << " messages, got " << board.message_count());
  std::vector<std::size_t> deg(n + 1, 0);
  std::vector<std::uint64_t> sum(n + 1, 0);
  std::vector<bool> seen(n + 1, false);
  for (const Bits& m : board.messages()) {
    BitReader r(m);
    const NodeId id = codec::read_id(r, n);
    WB_REQUIRE_MSG(!seen[id], "node " << id << " wrote twice");
    seen[id] = true;
    deg[id] = codec::read_count(r, n);
    sum[id] = r.read_uint(sum_bits(n));
    WB_REQUIRE_MSG(r.exhausted(), "trailing bits in message of node " << id);
  }

  // Leaf pruning. `ready` holds candidate nodes of residual degree ≤ 1.
  GraphBuilder builder(n);
  std::vector<bool> alive(n + 1, true);
  std::vector<NodeId> ready;
  for (NodeId v = 1; v <= n; ++v) {
    if (deg[v] <= 1) ready.push_back(v);
  }
  std::size_t pruned = 0;
  while (!ready.empty()) {
    const NodeId v = ready.back();
    ready.pop_back();
    if (!alive[v] || deg[v] > 1) continue;  // stale candidate
    alive[v] = false;
    ++pruned;
    if (deg[v] == 1) {
      const std::uint64_t w = sum[v];
      WB_REQUIRE_MSG(w >= 1 && w <= n && w != v && alive[static_cast<NodeId>(w)] &&
                         deg[static_cast<NodeId>(w)] >= 1,
                     "inconsistent leaf message at node " << v);
      const NodeId u = static_cast<NodeId>(w);
      builder.add_edge(v, u);
      // Delete v from the residual forest as seen by u.
      --deg[u];
      sum[u] -= v;
      if (deg[u] <= 1) ready.push_back(u);
    } else {
      WB_REQUIRE_MSG(sum[v] == 0, "isolated node " << v << " with nonzero sum");
    }
  }
  if (pruned != n) return std::nullopt;  // a cycle survived: not a forest
  return builder.build();
}

}  // namespace wb
