#include "src/protocols/krz.h"

#include <algorithm>
#include <vector>

#include "src/graph/algorithms.h"
#include "src/protocols/codec.h"
#include "src/support/hash.h"

namespace wb {

KrzTriangleProtocol::KrzTriangleProtocol(std::uint64_t num, std::uint64_t den,
                                         std::uint64_t seed)
    : num_(num), den_(den), seed_(seed) {
  WB_CHECK_MSG(den >= 1, "sampling probability denominator must be >= 1");
  WB_CHECK_MSG(num <= den, "sampling probability must be <= 1");
}

bool KrzTriangleProtocol::edge_sampled(NodeId u, NodeId v) const {
  if (u > v) std::swap(u, v);
  Hasher128 h;
  h.update(seed_);
  h.update(u);
  h.update(v);
  return h.digest().lo % den_ < num_;
}

std::size_t KrzTriangleProtocol::message_bit_limit(std::size_t n) const {
  // id + sampled-edge count + at most n-1 endpoint ids.
  return static_cast<std::size_t>(codec::id_bits(n)) +
         static_cast<std::size_t>(codec::count_bits(n)) +
         (n - 1) * static_cast<std::size_t>(codec::id_bits(n));
}

Bits KrzTriangleProtocol::compose_initial(const LocalView& view) const {
  BitWriter w;
  return compose_initial(view, w);
}

Bits KrzTriangleProtocol::compose_initial(const LocalView& view,
                                          BitWriter& w) const {
  const std::size_t n = view.n();
  codec::write_id(w, view.id(), n);
  std::size_t sampled = 0;
  for (NodeId u : view.neighbors()) {
    if (u > view.id() && edge_sampled(view.id(), u)) ++sampled;
  }
  codec::write_count(w, sampled, n);
  for (NodeId u : view.neighbors()) {
    if (u > view.id() && edge_sampled(view.id(), u)) codec::write_id(w, u, n);
  }
  return w.take();
}

bool KrzTriangleProtocol::output(const Whiteboard& board,
                                 std::size_t n) const {
  // Robust decode: judge whatever messages made it to the board (a crashed
  // node's sampled edges are simply absent), but reject structurally invalid
  // boards — duplicate writers, non-larger endpoints, out-of-range fields —
  // with DataError.
  GraphBuilder sampled(n);
  std::vector<bool> seen(n + 1, false);
  for (const Bits& m : board.messages()) {
    BitReader r(m);
    const NodeId id = codec::read_id(r, n);
    WB_REQUIRE_MSG(!seen[id], "node " << id << " wrote twice");
    seen[id] = true;
    const std::size_t k = codec::read_count(r, n);
    for (std::size_t i = 0; i < k; ++i) {
      const NodeId u = codec::read_id(r, n);
      WB_REQUIRE_MSG(u > id, "sampled edge endpoint " << u
                                 << " is not larger than writer " << id);
      if (!sampled.has_edge(id, u)) sampled.add_edge(id, u);
    }
  }
  return has_triangle(sampled.build());
}

std::string KrzTriangleProtocol::name() const {
  return "krz-triangle[" + std::to_string(num_) + "/" + std::to_string(den_) +
         ":" + std::to_string(seed_) + "]";
}

}  // namespace wb
