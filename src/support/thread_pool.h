// Reusable worker pool behind every parallel sweep in the library.
//
// Both parallel workloads — the batch engine's trial matrix (src/wb/batch.h)
// and the exhaustive explorer's subtree sweep (src/wb/exhaustive.h) — have
// the same shape: N independent index-addressed tasks, claimed dynamically,
// joined before the call returns. ThreadPool::parallel_for is that shape,
// factored out so the two engines share one set of long-lived workers
// instead of spawning threads per call.
//
// Guarantees:
//  - tasks are identified by index only; nothing about the result may depend
//    on which worker ran a task or in what order tasks were claimed — this
//    is what lets run_batch promise bit-identical results at any thread
//    count;
//  - every task runs exactly once, even when another task throws: the pool
//    drains the whole index range and then rethrows the exception of the
//    *smallest-index* failing task, so failure reporting is as deterministic
//    as the results;
//  - a parallel_for issued from inside a pool worker runs inline (serially)
//    on that worker instead of deadlocking on the pool's own capacity.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wb {

class ThreadPool {
 public:
  /// Invoked once per task index, possibly concurrently with other indices.
  using IndexFn = std::function<void(std::size_t)>;

  /// Spawn `threads` workers (0 = one per hardware thread). Workers sleep on
  /// a condition variable between jobs.
  explicit ThreadPool(std::size_t threads = 0);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

  /// Run fn(0) .. fn(count-1) to completion and return. At most
  /// `max_workers` workers participate (0 = every pool worker); with an
  /// effective concurrency of 1 — or when called from inside a pool worker —
  /// the tasks run inline on the calling thread, in index order.
  /// Exception policy: every task still runs; afterwards the exception of
  /// the smallest failing index is rethrown (identical in the inline and
  /// pooled paths).
  void parallel_for(std::size_t count, const IndexFn& fn,
                    std::size_t max_workers = 0);

  /// The process-wide default pool. Sized at max(hardware threads, 8) so
  /// that explicitly requested thread counts up to 8 — the determinism
  /// suites run {1,2,4,8} — are genuinely concurrent even on small hosts;
  /// the surplus workers cost only a sleeping thread each.
  [[nodiscard]] static ThreadPool& shared();

 private:
  struct Job {
    std::size_t count = 0;
    std::size_t max_workers = 0;
    const IndexFn* fn = nullptr;
    std::atomic<std::size_t> next{0};      // task claim cursor
    std::atomic<std::size_t> finished{0};  // completed tasks
    std::atomic<std::size_t> tickets{0};   // participation cap
    std::size_t refs = 0;                  // adopters still touching the job
    std::mutex error_mutex;
    std::size_t error_index = 0;
    std::exception_ptr error;
  };

  void worker_loop();
  void run_tasks(Job& job);
  static void record_error(Job& job, std::size_t index);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable wake_cv_;  // workers: a new job was posted
  std::condition_variable done_cv_;  // submitter: the job drained
  Job* job_ = nullptr;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  /// One job at a time; concurrent submitters queue here.
  std::mutex submit_mutex_;
};

}  // namespace wb
