#include "src/support/powersum.h"

#include <algorithm>

namespace wb {

namespace {

// Guard rails keeping all intermediates comfortably inside signed 128 bits:
// with x ≤ 2^20, k ≤ 8 we have x^k ≤ 2^160... which would overflow, so the
// real constraint is x^k ≤ 2^126: x ≤ 2^20 allows k ≤ 6; the library only
// exercises k ≤ 5. ipow checks multiplicative overflow explicitly, so these
// constants are an early, readable failure rather than the enforcement.
constexpr std::uint32_t kMaxValue = 1u << 20;
constexpr int kMaxPower = 8;

constexpr i128 kI128Max = (static_cast<i128>(1) << 126);

}  // namespace

std::string i128_to_string(i128 v) {
  if (v == 0) return "0";
  const bool neg = v < 0;
  u128 u = neg ? static_cast<u128>(-(v + 1)) + 1 : static_cast<u128>(v);
  std::string digits;
  while (u > 0) {
    digits.push_back(static_cast<char>('0' + static_cast<int>(u % 10)));
    u /= 10;
  }
  if (neg) digits.push_back('-');
  std::reverse(digits.begin(), digits.end());
  return digits;
}

i128 ipow(std::uint32_t x, int p) {
  WB_CHECK(x >= 1 && x <= kMaxValue);
  WB_CHECK(p >= 0 && p <= kMaxPower);
  i128 r = 1;
  for (int i = 0; i < p; ++i) {
    WB_CHECK_MSG(r <= kI128Max / static_cast<i128>(x),
                 "power-sum overflow: " << x << "^" << p);
    r *= static_cast<i128>(x);
  }
  return r;
}

std::vector<i128> power_sums(std::span<const std::uint32_t> xs, int k) {
  WB_CHECK(k >= 1 && k <= kMaxPower);
  std::vector<i128> p(static_cast<std::size_t>(k), 0);
  for (std::uint32_t x : xs) {
    i128 xp = 1;
    for (int j = 0; j < k; ++j) {
      xp *= static_cast<i128>(x);
      p[static_cast<std::size_t>(j)] += xp;
    }
  }
  return p;
}

void power_sums_subtract(std::span<i128> p, std::uint32_t x) {
  i128 xp = 1;
  for (std::size_t j = 0; j < p.size(); ++j) {
    xp *= static_cast<i128>(x);
    p[j] -= xp;
  }
}

std::optional<std::vector<i128>> newton_identities(std::span<const i128> p,
                                                   int d) {
  WB_CHECK(d >= 0 && static_cast<std::size_t>(d) <= p.size());
  // e[0] = e_0 = 1, e[j] = e_j.
  std::vector<i128> e(static_cast<std::size_t>(d) + 1, 0);
  e[0] = 1;
  for (int j = 1; j <= d; ++j) {
    i128 acc = 0;
    i128 sign = 1;
    for (int i = 1; i <= j; ++i) {
      acc += sign * e[static_cast<std::size_t>(j - i)] *
             p[static_cast<std::size_t>(i - 1)];
      sign = -sign;
    }
    if (acc % j != 0) return std::nullopt;  // not power sums of any multiset
    e[static_cast<std::size_t>(j)] = acc / j;
  }
  e.erase(e.begin());  // drop e_0; result is e_1..e_d
  return e;
}

std::optional<std::vector<std::uint32_t>> decode_subset(
    std::span<const i128> p, int d, std::uint32_t max_value) {
  WB_CHECK(max_value >= 1 && max_value <= kMaxValue);
  WB_CHECK(d >= 0 && static_cast<std::size_t>(d) <= p.size());
  if (d == 0) {
    for (i128 v : p) {
      if (v != 0) return std::nullopt;
    }
    return std::vector<std::uint32_t>{};
  }

  auto e_opt = newton_identities(p, d);
  if (!e_opt) return std::nullopt;
  const std::vector<i128>& e = *e_opt;

  // Monic polynomial with roots S: z^d - e1 z^{d-1} + e2 z^{d-2} - ...
  // coeff[i] multiplies z^{d-i}; coeff[0] = 1.
  std::vector<i128> coeff(static_cast<std::size_t>(d) + 1);
  coeff[0] = 1;
  i128 sign = -1;
  for (int i = 1; i <= d; ++i) {
    coeff[static_cast<std::size_t>(i)] = sign * e[static_cast<std::size_t>(i - 1)];
    sign = -sign;
  }

  // Extract integer roots over candidates {1..max_value} by synthetic
  // division. Roots are distinct IDs, so each candidate divides at most once.
  std::vector<std::uint32_t> roots;
  std::vector<i128> cur = coeff;
  for (std::uint32_t c = 1; c <= max_value && roots.size() < static_cast<std::size_t>(d); ++c) {
    // Horner evaluation, simultaneously producing the quotient.
    std::vector<i128> quot(cur.size() - 1);
    i128 acc = cur[0];
    for (std::size_t i = 1; i < cur.size(); ++i) {
      quot[i - 1] = acc;
      acc = acc * static_cast<i128>(c) + cur[i];
    }
    if (acc == 0) {
      roots.push_back(c);
      cur = std::move(quot);
    }
  }
  if (roots.size() != static_cast<std::size_t>(d)) return std::nullopt;

  // Verify against *all* provided power sums (paranoia beyond the first d).
  std::vector<i128> check = power_sums(roots, static_cast<int>(p.size()));
  for (std::size_t j = 0; j < p.size(); ++j) {
    if (check[j] != p[j]) return std::nullopt;
  }
  return roots;
}

SubsetTable::SubsetTable(std::uint32_t n, int k) : n_(n), k_(k) {
  WB_CHECK(n >= 1 && k >= 0 && k <= kMaxPower);
  // Enumerate subsets of each size 0..k via lexicographic combinations.
  for (int d = 0; d <= k; ++d) {
    if (static_cast<std::uint32_t>(d) > n) break;
    std::vector<std::uint32_t> combo(static_cast<std::size_t>(d));
    for (int i = 0; i < d; ++i) combo[static_cast<std::size_t>(i)] = static_cast<std::uint32_t>(i + 1);
    while (true) {
      entries_.push_back(Entry{power_sums(combo, std::max(1, d)), combo});
      if (d == 0) break;
      // Advance lexicographically.
      int i = d - 1;
      while (i >= 0 &&
             combo[static_cast<std::size_t>(i)] == n - static_cast<std::uint32_t>(d - 1 - i)) {
        --i;
      }
      if (i < 0) break;
      ++combo[static_cast<std::size_t>(i)];
      for (int j = i + 1; j < d; ++j) {
        combo[static_cast<std::size_t>(j)] = combo[static_cast<std::size_t>(j - 1)] + 1;
      }
    }
  }
  std::sort(entries_.begin(), entries_.end(),
            [](const Entry& a, const Entry& b) {
              if (a.subset.size() != b.subset.size()) {
                return a.subset.size() < b.subset.size();
              }
              return a.key < b.key;
            });
}

std::optional<std::vector<std::uint32_t>> SubsetTable::lookup(
    std::span<const i128> p, int d) const {
  WB_CHECK(d >= 0 && d <= k_);
  std::vector<i128> key(p.begin(), p.end());
  key.resize(static_cast<std::size_t>(std::max(1, d)));
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), std::pair(d, &key),
      [](const Entry& a, const std::pair<int, const std::vector<i128>*>& q) {
        if (a.subset.size() != static_cast<std::size_t>(q.first)) {
          return a.subset.size() < static_cast<std::size_t>(q.first);
        }
        return a.key < *q.second;
      });
  if (it == entries_.end() || it->subset.size() != static_cast<std::size_t>(d) ||
      it->key != key) {
    return std::nullopt;
  }
  return it->subset;
}

}  // namespace wb
