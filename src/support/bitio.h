// Exact bit-level message encoding.
//
// Every whiteboard message in this library is a bit string produced by a
// BitWriter and consumed by a BitReader. The engine accounts message sizes in
// bits, which is the currency of all bounds in the paper (O(log n), o(n), ...).
//
// Supported primitives:
//  - fixed-width unsigned fields (width known to both sides),
//  - Elias gamma codes for positive integers of unknown magnitude,
//  - raw bit runs (adjacency rows for SUBGRAPH_f / BuildFull).
//
// Memory model: Bits stores messages of up to kInlineBits bits (two 64-bit
// words — every O(log n) message at any realistic n) inline, with no heap
// allocation; longer messages own a heap word array. Unused bits of the last
// word are always zero ("masked tail"), so equality and hashing are word-wise
// regardless of how the bit string was produced.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/support/check.h"

namespace wb {

/// An immutable bit string with an exact length in bits.
class Bits {
 public:
  /// Messages of at most kInlineBits bits live inside the object.
  static constexpr std::size_t kInlineWords = 2;
  static constexpr std::size_t kInlineBits = kInlineWords * 64;

  Bits() noexcept = default;

  /// From raw LSB-first packed words: copies word_count() words and masks the
  /// tail, so two bit-equal strings compare equal even if the source buffers
  /// carried garbage beyond bit n_bits.
  Bits(const std::uint64_t* words, std::size_t n_bits) : n_bits_(n_bits) {
    std::uint64_t* dst = init_storage();
    std::copy_n(words, word_count(), dst);
    mask_tail(dst);
  }

  Bits(const std::vector<std::uint64_t>& words, std::size_t n_bits)
      : n_bits_(n_bits) {
    WB_CHECK(words.size() * 64 >= n_bits);
    std::uint64_t* dst = init_storage();
    std::copy_n(words.data(), word_count(), dst);
    mask_tail(dst);
  }

  Bits(const Bits& other) : n_bits_(other.n_bits_) {
    std::copy_n(other.word_data(), word_count(), init_storage());
  }
  Bits(Bits&& other) noexcept : n_bits_(other.n_bits_), rep_(other.rep_) {
    other.n_bits_ = 0;  // heap ownership (if any) moved here
  }
  Bits& operator=(Bits other) noexcept {
    swap(other);
    return *this;
  }
  ~Bits() {
    if (!is_inline()) delete[] rep_.heap;
  }

  void swap(Bits& other) noexcept {
    std::swap(n_bits_, other.n_bits_);
    std::swap(rep_, other.rep_);
  }

  [[nodiscard]] std::size_t size() const noexcept { return n_bits_; }
  [[nodiscard]] bool empty() const noexcept { return n_bits_ == 0; }

  [[nodiscard]] bool bit(std::size_t i) const {
    WB_CHECK(i < n_bits_);
    return (word_data()[i / 64] >> (i % 64)) & 1u;
  }

  /// Number of 64-bit words backing this string: ceil(size / 64).
  [[nodiscard]] std::size_t word_count() const noexcept {
    return (n_bits_ + 63) / 64;
  }

  /// LSB-first packed words; bits past size() in the last word are zero.
  [[nodiscard]] const std::uint64_t* word_data() const noexcept {
    return is_inline() ? rep_.inline_words : rep_.heap;
  }

  [[nodiscard]] std::uint64_t word(std::size_t i) const {
    WB_CHECK(i < word_count());
    return word_data()[i];
  }

  /// Word-wise comparison — valid because tail words are masked on
  /// construction.
  friend bool operator==(const Bits& a, const Bits& b) noexcept {
    return a.n_bits_ == b.n_bits_ &&
           std::equal(a.word_data(), a.word_data() + a.word_count(),
                      b.word_data());
  }

 private:
  [[nodiscard]] bool is_inline() const noexcept {
    return n_bits_ <= kInlineBits;
  }

  /// Prepare storage for word_count() words (n_bits_ already set) and return
  /// the writable word array.
  std::uint64_t* init_storage() {
    if (is_inline()) {
      rep_.inline_words[0] = 0;
      rep_.inline_words[1] = 0;
      return rep_.inline_words;
    }
    rep_.heap = new std::uint64_t[word_count()];
    return rep_.heap;
  }

  void mask_tail(std::uint64_t* words) const noexcept {
    const std::size_t rem = n_bits_ % 64;
    if (n_bits_ != 0 && rem != 0) {
      words[word_count() - 1] &= ~std::uint64_t{0} >> (64 - rem);
    }
  }

  std::size_t n_bits_ = 0;
  union Rep {
    std::uint64_t inline_words[kInlineWords];
    std::uint64_t* heap;
  } rep_{};
};

/// Append-only bit sink. take() hands out the accumulated string and leaves
/// the writer empty but with its buffer capacity retained, so one writer can
/// serve a whole run's worth of messages without reallocating.
class BitWriter {
 public:
  /// Append the low `width` bits of `value` (LSB first). width in [0, 64];
  /// value must fit in `width` bits.
  void write_uint(std::uint64_t value, int width);

  /// Append one bit.
  void write_bit(bool b) { write_uint(b ? 1 : 0, 1); }

  /// Elias gamma code for v >= 1: floor(log2 v) zeros, then v's bits from MSB.
  /// Encodes arbitrary positive integers self-delimitingly in 2*floor(log2 v)+1
  /// bits.
  void write_gamma(std::uint64_t v);

  /// Gamma code shifted to accept zero (encodes v+1).
  void write_gamma0(std::uint64_t v) { write_gamma(v + 1); }

  /// Number of bits written so far.
  [[nodiscard]] std::size_t bit_count() const noexcept { return n_bits_; }

  /// Finish and return the accumulated bit string. The writer is reset and
  /// may be reused; its internal buffer keeps its capacity.
  [[nodiscard]] Bits take();

  /// Discard any pending bits (capacity retained).
  void reset() noexcept;

 private:
  std::vector<std::uint64_t> words_;
  std::size_t n_bits_ = 0;
};

/// Sequential reader over a Bits value. Throws wb::DataError on overrun, so a
/// decoder reading a corrupted whiteboard fails loudly instead of reading
/// garbage.
class BitReader {
 public:
  explicit BitReader(const Bits& bits) : bits_(&bits) {}

  [[nodiscard]] std::uint64_t read_uint(int width);
  [[nodiscard]] bool read_bit() { return read_uint(1) != 0; }
  [[nodiscard]] std::uint64_t read_gamma();
  [[nodiscard]] std::uint64_t read_gamma0() { return read_gamma() - 1; }

  [[nodiscard]] std::size_t position() const noexcept { return pos_; }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return bits_->size() - pos_;
  }
  [[nodiscard]] bool exhausted() const noexcept { return remaining() == 0; }

 private:
  const Bits* bits_;
  std::size_t pos_ = 0;
};

}  // namespace wb
