// Exact bit-level message encoding.
//
// Every whiteboard message in this library is a bit string produced by a
// BitWriter and consumed by a BitReader. The engine accounts message sizes in
// bits, which is the currency of all bounds in the paper (O(log n), o(n), ...).
//
// Supported primitives:
//  - fixed-width unsigned fields (width known to both sides),
//  - Elias gamma codes for positive integers of unknown magnitude,
//  - raw bit runs (adjacency rows for SUBGRAPH_f / BuildFull).
#pragma once

#include <cstdint>
#include <vector>

#include "src/support/check.h"

namespace wb {

/// An immutable bit string with an exact length in bits.
class Bits {
 public:
  Bits() = default;
  Bits(std::vector<std::uint64_t> words, std::size_t n_bits)
      : words_(std::move(words)), n_bits_(n_bits) {
    WB_CHECK(words_.size() * 64 >= n_bits_);
  }

  [[nodiscard]] std::size_t size() const noexcept { return n_bits_; }
  [[nodiscard]] bool empty() const noexcept { return n_bits_ == 0; }

  [[nodiscard]] bool bit(std::size_t i) const {
    WB_CHECK(i < n_bits_);
    return (words_[i / 64] >> (i % 64)) & 1u;
  }

  [[nodiscard]] const std::vector<std::uint64_t>& words() const noexcept {
    return words_;
  }

  friend bool operator==(const Bits& a, const Bits& b) {
    if (a.n_bits_ != b.n_bits_) return false;
    for (std::size_t i = 0; i < a.n_bits_; i += 64) {
      if (a.words_[i / 64] != b.words_[i / 64]) return false;
    }
    return true;
  }

 private:
  std::vector<std::uint64_t> words_;
  std::size_t n_bits_ = 0;
};

/// Append-only bit sink.
class BitWriter {
 public:
  /// Append the low `width` bits of `value` (LSB first). width in [0, 64];
  /// value must fit in `width` bits.
  void write_uint(std::uint64_t value, int width);

  /// Append one bit.
  void write_bit(bool b) { write_uint(b ? 1 : 0, 1); }

  /// Elias gamma code for v >= 1: floor(log2 v) zeros, then v's bits from MSB.
  /// Encodes arbitrary positive integers self-delimitingly in 2*floor(log2 v)+1
  /// bits.
  void write_gamma(std::uint64_t v);

  /// Gamma code shifted to accept zero (encodes v+1).
  void write_gamma0(std::uint64_t v) { write_gamma(v + 1); }

  /// Number of bits written so far.
  [[nodiscard]] std::size_t bit_count() const noexcept { return n_bits_; }

  /// Finish and return the accumulated bit string.
  [[nodiscard]] Bits take();

 private:
  std::vector<std::uint64_t> words_;
  std::size_t n_bits_ = 0;
};

/// Sequential reader over a Bits value. Throws wb::DataError on overrun, so a
/// decoder reading a corrupted whiteboard fails loudly instead of reading
/// garbage.
class BitReader {
 public:
  explicit BitReader(const Bits& bits) : bits_(&bits) {}

  [[nodiscard]] std::uint64_t read_uint(int width);
  [[nodiscard]] bool read_bit() { return read_uint(1) != 0; }
  [[nodiscard]] std::uint64_t read_gamma();
  [[nodiscard]] std::uint64_t read_gamma0() { return read_gamma() - 1; }

  [[nodiscard]] std::size_t position() const noexcept { return pos_; }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return bits_->size() - pos_;
  }
  [[nodiscard]] bool exhausted() const noexcept { return remaining() == 0; }

 private:
  const Bits* bits_;
  std::size_t pos_ = 0;
};

}  // namespace wb
