// Runtime checks and error reporting used throughout the library.
//
// The library distinguishes two failure categories:
//  - WB_CHECK: violated preconditions / internal invariants. These indicate a
//    bug in the caller or in the library and throw wb::LogicError.
//  - WB_REQUIRE: data-dependent failures (corrupted whiteboard, input graph
//    outside a protocol's promised class, ...). These throw wb::DataError so
//    callers can catch them and treat them as a protocol-level rejection.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace wb {

/// Thrown on violated preconditions and internal invariants (bugs).
class LogicError : public std::logic_error {
 public:
  explicit LogicError(const std::string& what) : std::logic_error(what) {}
};

/// Thrown on malformed or out-of-contract input data (not a bug).
class DataError : public std::runtime_error {
 public:
  explicit DataError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_logic(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw LogicError(os.str());
}

[[noreturn]] inline void throw_data(const char* expr, const char* file,
                                    int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": requirement failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw DataError(os.str());
}

}  // namespace detail
}  // namespace wb

#define WB_CHECK(expr)                                                   \
  do {                                                                   \
    if (!(expr)) ::wb::detail::throw_logic(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define WB_CHECK_MSG(expr, msg)                                        \
  do {                                                                 \
    if (!(expr)) {                                                     \
      std::ostringstream wb_os_;                                       \
      wb_os_ << msg;                                                   \
      ::wb::detail::throw_logic(#expr, __FILE__, __LINE__, wb_os_.str()); \
    }                                                                  \
  } while (false)

#define WB_REQUIRE(expr)                                                  \
  do {                                                                    \
    if (!(expr)) ::wb::detail::throw_data(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define WB_REQUIRE_MSG(expr, msg)                                       \
  do {                                                                  \
    if (!(expr)) {                                                      \
      std::ostringstream wb_os_;                                        \
      wb_os_ << msg;                                                    \
      ::wb::detail::throw_data(#expr, __FILE__, __LINE__, wb_os_.str()); \
    }                                                                   \
  } while (false)
