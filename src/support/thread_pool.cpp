#include "src/support/thread_pool.h"

#include <algorithm>

namespace wb {

namespace {

/// Set while a thread is executing tasks for a pool, so a nested
/// parallel_for on the same pool runs inline instead of waiting on workers
/// that cannot make progress until the outer job (this thread) finishes.
thread_local const ThreadPool* t_current_pool = nullptr;

/// The inline path: same exception policy as the pooled path — run every
/// task, rethrow the smallest failing index.
void run_serial(std::size_t count, const ThreadPool::IndexFn& fn) {
  std::size_t error_index = count;
  std::exception_ptr error;
  for (std::size_t i = 0; i < count; ++i) {
    try {
      fn(i);
    } catch (...) {
      if (i < error_index) {
        error_index = i;
        error = std::current_exception();
      }
    }
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::record_error(Job& job, std::size_t index) {
  const std::lock_guard<std::mutex> lock(job.error_mutex);
  if (job.error == nullptr || index < job.error_index) {
    job.error_index = index;
    job.error = std::current_exception();
  }
}

void ThreadPool::run_tasks(Job& job) {
  if (job.tickets.fetch_add(1, std::memory_order_relaxed) >= job.max_workers) {
    return;  // concurrency cap reached; leave the job to the ticket holders
  }
  while (true) {
    const std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.count) return;
    try {
      (*job.fn)(i);
    } catch (...) {
      record_error(job, i);
    }
    if (job.finished.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        job.count) {
      const std::lock_guard<std::mutex> lock(mutex_);
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::worker_loop() {
  t_current_pool = this;
  std::uint64_t seen_generation = 0;
  while (true) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_cv_.wait(lock, [&] {
        return stop_ || generation_ != seen_generation;
      });
      if (stop_) return;
      seen_generation = generation_;
      job = job_;  // may be null: the job drained before this worker woke
      if (job != nullptr) ++job->refs;
    }
    if (job == nullptr) continue;
    run_tasks(*job);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --job->refs;
    }
    done_cv_.notify_all();
  }
}

void ThreadPool::parallel_for(std::size_t count, const IndexFn& fn,
                              std::size_t max_workers) {
  if (count == 0) return;
  std::size_t effective = max_workers == 0 ? workers_.size() : max_workers;
  effective = std::min({effective, workers_.size(), count});
  if (effective <= 1 || t_current_pool == this) {
    run_serial(count, fn);
    return;
  }

  const std::lock_guard<std::mutex> submit(submit_mutex_);
  Job job;
  job.count = count;
  job.max_workers = effective;
  job.fn = &fn;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    job_ = &job;
    ++generation_;
  }
  wake_cv_.notify_all();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    // The job is off the stack only when every task completed AND every
    // adopter dropped its reference — a worker may still hold a Job* after
    // the last task finishes.
    done_cv_.wait(lock, [&] {
      return job.finished.load(std::memory_order_acquire) == count &&
             job.refs == 0;
    });
    job_ = nullptr;
  }
  if (job.error) std::rethrow_exception(job.error);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(
      std::max<std::size_t>(8, std::thread::hardware_concurrency()));
  return pool;
}

}  // namespace wb
