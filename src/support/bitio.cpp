#include "src/support/bitio.h"

#include "src/support/bits.h"

namespace wb {

void BitWriter::write_uint(std::uint64_t value, int width) {
  WB_CHECK(width >= 0 && width <= 64);
  if (width == 0) {
    WB_CHECK(value == 0);
    return;
  }
  if (width < 64) {
    WB_CHECK_MSG(value < (std::uint64_t{1} << width),
                 "value " << value << " does not fit in " << width << " bits");
  }
  const std::size_t word = n_bits_ / 64;
  const int offset = static_cast<int>(n_bits_ % 64);
  if (words_.size() <= word + 1) words_.resize(word + 2, 0);
  words_[word] |= value << offset;
  if (offset + width > 64) {
    words_[word + 1] |= value >> (64 - offset);
  }
  n_bits_ += static_cast<std::size_t>(width);
}

void BitWriter::write_gamma(std::uint64_t v) {
  WB_CHECK(v >= 1);
  const int len = floor_log2(v);
  write_uint(0, len);                       // len zeros
  write_uint(1, 1);                         // stop bit = MSB of v
  if (len > 0) {
    // Remaining len bits of v below the MSB, emitted LSB-first; the reader
    // reconstructs symmetrically.
    write_uint(v & ((std::uint64_t{1} << len) - 1), len);
  }
}

Bits BitWriter::take() {
  Bits out(words_.data(), n_bits_);
  reset();
  return out;
}

void BitWriter::reset() noexcept {
  // write_uint only ORs into words covered by n_bits_, so zeroing that prefix
  // restores the all-zero invariant the OR-accumulation relies on.
  std::fill_n(words_.begin(),
              std::min(words_.size(), (n_bits_ + 63) / 64), std::uint64_t{0});
  n_bits_ = 0;
}

std::uint64_t BitReader::read_uint(int width) {
  WB_CHECK(width >= 0 && width <= 64);
  if (width == 0) return 0;
  WB_REQUIRE_MSG(pos_ + static_cast<std::size_t>(width) <= bits_->size(),
                 "bit stream overrun: need " << width << " bits at position "
                                             << pos_ << " of "
                                             << bits_->size());
  const std::uint64_t* words = bits_->word_data();
  const std::size_t word = pos_ / 64;
  const int offset = static_cast<int>(pos_ % 64);
  std::uint64_t value = words[word] >> offset;
  if (offset + width > 64) {
    value |= words[word + 1] << (64 - offset);
  }
  if (width < 64) value &= (std::uint64_t{1} << width) - 1;
  pos_ += static_cast<std::size_t>(width);
  return value;
}

std::uint64_t BitReader::read_gamma() {
  int len = 0;
  while (!read_bit()) {
    ++len;
    WB_REQUIRE_MSG(len <= 64, "malformed gamma code: too many leading zeros");
  }
  std::uint64_t low = (len > 0) ? read_uint(len) : 0;
  return (std::uint64_t{1} << len) | low;
}

}  // namespace wb
