#include "src/support/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "src/support/check.h"

namespace wb {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  WB_CHECK(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> row) {
  WB_CHECK_MSG(row.size() == header_.size(),
               "row arity " << row.size() << " != header arity "
                            << header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c];
      os << std::string(width[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  emit_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << (c == 0 ? "|-" : "-|-") << std::string(width[c], '-');
  }
  os << "-|\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace wb
