// Small bit-arithmetic helpers shared by the encoding layer and the engine's
// message-size accounting. All message-size bounds in the paper are stated in
// bits, so these helpers are the single source of truth for "how many bits
// does a value of this range take".
#pragma once

#include <bit>
#include <cstdint>

#include "src/support/check.h"

namespace wb {

/// Number of bits needed to represent x (0 needs 1 bit by convention).
[[nodiscard]] constexpr int bit_width_u64(std::uint64_t x) noexcept {
  return x == 0 ? 1 : std::bit_width(x);
}

/// ceil(log2(x)) for x >= 1; ceil_log2(1) == 0.
[[nodiscard]] constexpr int ceil_log2(std::uint64_t x) {
  WB_CHECK(x >= 1);
  return (x == 1) ? 0 : std::bit_width(x - 1);
}

/// floor(log2(x)) for x >= 1.
[[nodiscard]] constexpr int floor_log2(std::uint64_t x) {
  WB_CHECK(x >= 1);
  return std::bit_width(x) - 1;
}

/// Bits needed for a value in the closed range [0, max_value].
[[nodiscard]] constexpr int bits_for_range(std::uint64_t max_value) noexcept {
  return bit_width_u64(max_value);
}

/// Bits needed to encode a node identifier in {1..n} (we encode id-1).
[[nodiscard]] constexpr int bits_for_id(std::uint64_t n) {
  WB_CHECK(n >= 1);
  return bits_for_range(n - 1);
}

}  // namespace wb
