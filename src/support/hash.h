// Word-wise 128-bit content hashing.
//
// The exhaustive explorer keys final whiteboards by this hash instead of a
// byte-per-bit string: hashing consumes the board word-by-word (valid because
// Bits masks its tail words) and the key is 16 bytes regardless of board
// size. The construction runs two independently keyed lanes of the splitmix64
// finalizer — statistically strong for distinctness counting, not
// cryptographic. tests/wb/exhaustive_test.cpp pins the counts against a
// byte-per-bit string-key reference.
#pragma once

#include <compare>
#include <cstdint>

namespace wb {

struct Hash128 {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  friend bool operator==(const Hash128&, const Hash128&) noexcept = default;
  friend auto operator<=>(const Hash128&, const Hash128&) noexcept = default;
};

/// splitmix64 finalizer: a fast 64-bit permutation with full avalanche.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Streaming hasher over a sequence of 64-bit words. Order-sensitive; callers
/// hashing variable-length pieces must feed the lengths too (the whiteboard
/// hash feeds each message's bit length before its words).
class Hasher128 {
 public:
  constexpr void update(std::uint64_t w) noexcept {
    a_ = mix64(a_ ^ w);
    b_ = mix64(b_ + w + 0x9e3779b97f4a7c15ULL);
  }

  [[nodiscard]] constexpr Hash128 digest() const noexcept {
    const std::uint64_t lo = mix64(a_ ^ 0xff51afd7ed558ccdULL);
    const std::uint64_t hi = mix64(b_ + lo + 0xc4ceb9fe1a85ec53ULL);
    return Hash128{lo, hi};
  }

 private:
  // Arbitrary distinct non-zero keys (first digits of pi).
  std::uint64_t a_ = 0x243f6a8885a308d3ULL;
  std::uint64_t b_ = 0x13198a2e03707344ULL;
};

}  // namespace wb
