// Minimal fixed-width ASCII table printer used by the benchmark harnesses to
// render paper tables (Table 1, Table 2, the Lemma 3 counting table, ...) in a
// shape directly comparable to the paper.
#pragma once

#include <string>
#include <vector>

namespace wb {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append a data row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Render with column alignment and a header separator.
  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Convenience: fixed-precision double rendering.
[[nodiscard]] std::string fmt_double(double v, int precision = 2);

}  // namespace wb
