// Power-sum neighborhood fingerprints (paper §3.2–3.4).
//
// A node x of degree ≤ k encodes its neighborhood S ⊆ {1..n} as the vector
// b(x) = (Σ_{w∈S} ID(w)^p)_{p=1..k}. Theorem 1 (Wright, "Equal sums of like
// powers") guarantees the map S ↦ b(x) is injective over subsets of size ≤ k,
// so the output function can recover S exactly.
//
// Two decoders are provided:
//  - decode_subset: Newton's identities turn the first d power sums into the
//    elementary symmetric polynomials of S, i.e. into the coefficients of the
//    monic polynomial whose roots are exactly the IDs in S; integer roots are
//    then extracted by synthetic division over the candidate range {1..n}.
//    O(n·k) per decode — this is the practical decoder used by Algorithm 1.
//  - SubsetTable: the Lemma 2 lookup table that pre-enumerates all ≤k-subsets
//    (O(n^k) space); kept as a reference implementation and for the decoder
//    ablation benchmark.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/support/check.h"

namespace wb {

// __extension__ silences -Wpedantic for the non-standard 128-bit types; all
// other code refers to them only through these aliases.
__extension__ typedef __int128 i128;
__extension__ typedef unsigned __int128 u128;

/// Decimal rendering of a 128-bit integer (for diagnostics).
[[nodiscard]] std::string i128_to_string(i128 v);

/// Power sums p[j-1] = Σ_{x∈S} x^j for j = 1..k of a multiset of values.
/// Values must be ≥ 1. Overflow-checked for value ≤ 2^20, k ≤ 8, |S| ≤ 2^20.
[[nodiscard]] std::vector<i128> power_sums(std::span<const std::uint32_t> xs,
                                           int k);

/// x^p as i128 with the same guard rails as power_sums.
[[nodiscard]] i128 ipow(std::uint32_t x, int p);

/// Remove one member's contribution from a power-sum vector in place
/// (the "pruning" update of Algorithm 1).
void power_sums_subtract(std::span<i128> p, std::uint32_t x);

/// Decode the unique subset S ⊆ {1..max_value} with |S| = d whose first d
/// power sums equal p[0..d-1]. Requires d ≤ p.size(). Returns std::nullopt if
/// no such subset of *distinct* in-range integers exists (e.g. a corrupted
/// whiteboard). The returned IDs are sorted ascending.
[[nodiscard]] std::optional<std::vector<std::uint32_t>> decode_subset(
    std::span<const i128> p, int d, std::uint32_t max_value);

/// Lemma 2 lookup table: all subsets of {1..n} of size ≤ k keyed by their
/// power-sum vector, sorted for binary search.
class SubsetTable {
 public:
  /// Enumerates C(n,0)+...+C(n,k) subsets; intended for small n (≤ 64) and
  /// k ≤ 3, mirroring the O(n^k) preprocessing of the paper.
  SubsetTable(std::uint32_t n, int k);

  /// Look up the subset with the given power sums p[0..d-1] (d = subset size).
  [[nodiscard]] std::optional<std::vector<std::uint32_t>> lookup(
      std::span<const i128> p, int d) const;

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] int k() const noexcept { return k_; }
  [[nodiscard]] std::uint32_t n() const noexcept { return n_; }

 private:
  struct Entry {
    std::vector<i128> key;              // power sums p_1..p_{|subset|}
    std::vector<std::uint32_t> subset;  // sorted ascending
  };
  std::uint32_t n_;
  int k_;
  std::vector<Entry> entries_;  // sorted by (subset size, key)
};

/// Elementary symmetric polynomials e_1..e_d from power sums p_1..p_d via
/// Newton's identities: j·e_j = Σ_{i=1}^{j} (-1)^{i-1} e_{j-i} p_i.
/// Returns std::nullopt when the identities do not divide evenly (impossible
/// for genuine power sums of an integer multiset; signals corruption).
[[nodiscard]] std::optional<std::vector<i128>> newton_identities(
    std::span<const i128> p, int d);

}  // namespace wb
