#include "src/support/hll.h"

#include <bit>
#include <cmath>
#include <limits>

#include "src/support/check.h"

namespace wb {

namespace {

/// sigma(x) = x + sum_{k>=1} x^(2^k) * 2^(k-1), the low-range half of Ertl's
/// estimator (x = fraction of registers still zero). Diverges at x = 1, which
/// the caller maps to "no key ever inserted" and short-circuits.
double ertl_sigma(double x) {
  double y = 1.0;
  double z = x;
  while (true) {
    x = x * x;
    const double z_prev = z;
    z += x * y;
    y += y;
    if (z == z_prev) return z;
  }
}

/// tau(x) = (1/3) * (1 - x - sum_{k>=1} (1 - x^(2^-k))^2 * 2^-k), the
/// high-range half (x = fraction of registers below saturation).
double ertl_tau(double x) {
  if (x == 0.0 || x == 1.0) return 0.0;
  double y = 1.0;
  double z = 1.0 - x;
  while (true) {
    x = std::sqrt(x);
    const double z_prev = z;
    y *= 0.5;
    const double d = 1.0 - x;
    z -= d * d * y;
    if (z == z_prev) return z / 3.0;
  }
}

}  // namespace

HyperLogLog::HyperLogLog(int precision) : precision_(precision) {
  WB_REQUIRE_MSG(
      precision >= kMinPrecision && precision <= kMaxPrecision,
      "hll precision " << precision << " outside [" << kMinPrecision << ", "
                       << kMaxPrecision << "]");
  registers_.assign(std::size_t{1} << precision, 0);
}

void HyperLogLog::add(const Hash128& key) {
  const int p = precision_;
  const std::size_t index =
      static_cast<std::size_t>(key.hi >> (64 - p));
  // rho over the remaining 64 - p bits; an all-zero tail saturates at the
  // maximum value 64 - p + 1 (countl_zero of the shifted word returns 64).
  const std::uint64_t tail = key.hi << p;
  const int rho =
      tail == 0 ? 64 - p + 1 : std::countl_zero(tail) + 1;
  if (registers_[index] < rho) {
    registers_[index] = static_cast<std::uint8_t>(rho);
  }
}

void HyperLogLog::merge(const HyperLogLog& other) {
  WB_REQUIRE_MSG(precision_ == other.precision_,
                 "cannot merge hll sketches of precision "
                     << precision_ << " and " << other.precision_);
  for (std::size_t i = 0; i < registers_.size(); ++i) {
    if (registers_[i] < other.registers_[i]) {
      registers_[i] = other.registers_[i];
    }
  }
}

std::uint64_t HyperLogLog::estimate() const {
  const int q = 64 - precision_;  // register values range over 0 .. q + 1
  const double m = static_cast<double>(registers_.size());
  // Histogram of register values.
  std::vector<std::uint64_t> count(static_cast<std::size_t>(q) + 2, 0);
  for (const std::uint8_t r : registers_) ++count[r];
  if (count[0] == registers_.size()) return 0;  // nothing ever inserted

  double z = m * ertl_tau(1.0 -
                          static_cast<double>(count[static_cast<std::size_t>(q) + 1]) / m);
  for (int k = q; k >= 1; --k) {
    z = 0.5 * (z + static_cast<double>(count[static_cast<std::size_t>(k)]));
  }
  z += m * ertl_sigma(static_cast<double>(count[0]) / m);
  constexpr double kAlphaInf = 0.5 / 0.693147180559945309417232121458;  // 1/(2 ln 2)
  // A (near-)saturated sketch — every register at or close to q+1, which no
  // real key stream reaches but a format-valid crafted register block can —
  // drives z toward 0 and the raw estimate toward infinity. Clamp before
  // llround: feeding it infinity (or anything past LLONG_MAX) is undefined
  // behavior, and "more distinct keys than uint64 can count" is the honest
  // answer for such a block.
  constexpr double kMaxEstimate = 9.2233720368547748e18;  // just under 2^63
  if (z <= 0.0) return std::numeric_limits<std::uint64_t>::max();
  const double estimate = kAlphaInf * m * m / z;
  if (!(estimate < kMaxEstimate)) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  return static_cast<std::uint64_t>(std::llround(estimate));
}

HyperLogLog HyperLogLog::from_registers(
    int precision, std::span<const std::uint8_t> registers) {
  HyperLogLog sketch(precision);
  WB_REQUIRE_MSG(registers.size() == sketch.registers_.size(),
                 "hll register block of " << registers.size()
                                          << " bytes does not match precision "
                                          << precision << " (want "
                                          << sketch.registers_.size() << ")");
  const int max_rho = 64 - precision + 1;
  for (std::size_t i = 0; i < registers.size(); ++i) {
    WB_REQUIRE_MSG(registers[i] <= max_rho,
                   "hll register " << i << " holds " << int{registers[i]}
                                   << ", above the maximum rho " << max_rho
                                   << " at precision " << precision);
    sketch.registers_[i] = registers[i];
  }
  return sketch;
}

double HyperLogLog::relative_standard_error(int precision) {
  return 1.04 / std::sqrt(static_cast<double>(std::size_t{1} << precision));
}

}  // namespace wb
