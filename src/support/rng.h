// Deterministic pseudo-random generation for reproducible experiments.
//
// All randomized components (graph generators, random adversaries, shuffles)
// take an explicit 64-bit seed and evolve through this generator only, so any
// reported run can be replayed bit-for-bit.
#pragma once

#include <cstdint>
#include <vector>

#include "src/support/check.h"
#include "src/support/hash.h"

namespace wb {

/// xoshiro256** seeded via splitmix64. Small, fast, and good enough for
/// workload generation (not cryptographic).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept {
    std::uint64_t x = seed;
    for (auto& s : s_) {
      // splitmix64 step (increment, then the shared finalizer)
      x += 0x9e3779b97f4a7c15ULL;
      s = mix64(x);
    }
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound) via Lemire-style rejection; bound >= 1.
  std::uint64_t below(std::uint64_t bound) {
    WB_CHECK(bound >= 1);
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    while (true) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform in the closed range [lo, hi].
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    WB_CHECK(lo <= hi);
    return lo + below(hi - lo + 1);
  }

  /// Bernoulli(p) with p expressed as numer/denom.
  bool chance(std::uint64_t numer, std::uint64_t denom) {
    WB_CHECK(denom >= 1 && numer <= denom);
    return below(denom) < numer;
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// A derived, independent stream (for splitting one seed across components).
  [[nodiscard]] Rng split() noexcept { return Rng(next() ^ 0xd1b54a32d192ed03ULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace wb
