// HyperLogLog cardinality sketch over 128-bit content hashes.
//
// The exhaustive explorer's exact distinct-board count keeps one 16-byte key
// per distinct board — O(distinct) peak memory, which past ~10^9 distinct
// boards is the scaling wall (ROADMAP). A HyperLogLog sketch answers the same
// "how many distinct final boards" question in 2^p bytes total (p = 14 →
// 16 KiB) with a relative standard error of 1.04/sqrt(2^p) (~0.8% at p = 14),
// independent of the cardinality.
//
// Why it slots into the sharded explorer unchanged: a register holds the
// maximum rho-value over the keys routed to it, so the sketch depends only on
// the SET of inserted keys — insertion order, thread count, and any grouping
// into sub-sketches merged by register-wise max all produce bit-identical
// registers. That is exactly the order-oblivious-merge contract the sorted-run
// union already satisfies (src/wb/distinct.h), so the PR 4 determinism
// guarantees (same result at any K, merge order, worker thread count) carry
// over verbatim.
//
// The estimator is Ertl's improved raw estimator ("New cardinality estimation
// algorithms for HyperLogLog sketches", 2017, Algorithm 6): unbiased over the
// full cardinality range from a closed form over the register histogram — no
// empirical bias tables, no hard switchover between linear counting and the
// raw estimate — and deterministic, which is what lets tests pin estimates
// exactly.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/support/hash.h"

namespace wb {

class HyperLogLog {
 public:
  /// Supported precision range. 2^p registers of one byte each: p = 4 is
  /// 16 bytes (±26% error), p = 18 is 256 KiB (±0.2%).
  static constexpr int kMinPrecision = 4;
  static constexpr int kMaxPrecision = 18;

  /// All-zero sketch (cardinality 0) with 2^precision registers. Throws
  /// wb::DataError when precision is outside [kMinPrecision, kMaxPrecision]
  /// — the precision often arrives from CLI specs and shard files.
  explicit HyperLogLog(int precision);

  /// Route `key` to register (top p bits of key.hi) and keep the maximum
  /// rho = 1 + leading-zero-count of the remaining bits. Idempotent;
  /// insertion order never matters.
  void add(const Hash128& key);

  /// Register-wise max. After merging, the sketch equals the one a single
  /// pass over the union of both key sets would have produced — the
  /// order-oblivious merge the shard layer relies on. Throws wb::DataError
  /// on a precision mismatch.
  void merge(const HyperLogLog& other);

  /// Cardinality estimate (Ertl's improved raw estimator), rounded to the
  /// nearest integer. Deterministic for a given register state.
  [[nodiscard]] std::uint64_t estimate() const;

  [[nodiscard]] int precision() const noexcept { return precision_; }
  [[nodiscard]] std::size_t register_count() const noexcept {
    return registers_.size();
  }
  [[nodiscard]] std::span<const std::uint8_t> registers() const noexcept {
    return registers_;
  }

  /// Rebuild a sketch from a serialized register block (shard results).
  /// Throws wb::DataError when the block size is not 2^precision or a
  /// register value exceeds the maximum rho (64 - precision + 1).
  [[nodiscard]] static HyperLogLog from_registers(
      int precision, std::span<const std::uint8_t> registers);

  /// The sketch's relative standard error, 1.04/sqrt(2^p).
  [[nodiscard]] static double relative_standard_error(int precision);

  friend bool operator==(const HyperLogLog&, const HyperLogLog&) = default;

 private:
  int precision_;
  std::vector<std::uint8_t> registers_;
};

}  // namespace wb
