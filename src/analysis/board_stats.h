// Whiteboard content statistics — the Lemma 3 side of a run, measured.
//
// Everything the output function can ever know is on the board; these
// statistics quantify how much of the bit budget a protocol actually uses
// and how much the adversary can reshuffle it (distinct boards under
// reordering = order-sensitivity, the resource SIMASYNC lacks).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "src/wb/whiteboard.h"

namespace wb {

struct BoardStats {
  std::size_t messages = 0;
  std::size_t total_bits = 0;
  std::size_t min_message_bits = 0;
  std::size_t max_message_bits = 0;
  double mean_message_bits = 0.0;

  /// Message-length histogram (bits -> count).
  std::map<std::size_t, std::size_t> length_histogram;

  /// Number of distinct message contents (== messages for ID-carrying
  /// protocols; can collapse for anonymous ones).
  std::size_t distinct_messages = 0;

  /// Shannon entropy (bits) of the empirical distribution of message
  /// contents: 0 when all messages identical, log2(messages) when all
  /// distinct.
  double content_entropy_bits = 0.0;
};

[[nodiscard]] BoardStats analyze_board(const Whiteboard& board);

/// Fraction of the declared budget (n · limit) the run actually consumed.
[[nodiscard]] double budget_utilization(const BoardStats& stats,
                                        std::size_t n,
                                        std::size_t per_node_limit);

}  // namespace wb
