// Post-hoc analysis of protocol executions.
//
// The paper's activation disciplines leave fingerprints in a run: layered
// protocols activate in waves (one per BFS layer), simultaneous protocols in
// a single wave, sequential adapters in n waves of size one. Write latency
// (rounds between raising one's hand and being scheduled) measures how much
// re-ordering freedom the adversary actually had. These statistics feed the
// benches' characterization tables and make regressions in activation logic
// visible beyond pass/fail.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "src/wb/engine.h"

namespace wb {

struct ScheduleStats {
  std::size_t rounds = 0;
  std::size_t writes = 0;

  /// activations_per_round[r] = nodes that became active in round r+1.
  std::vector<std::size_t> activations_per_round;
  /// Number of rounds with at least one activation ("waves").
  std::size_t activation_waves = 0;
  /// Size of the largest wave.
  std::size_t max_wave = 0;

  /// Write latency = write_round - activation_round, per node.
  std::vector<std::size_t> latency;
  double mean_latency = 0.0;
  std::size_t max_latency = 0;

  /// Latency histogram (latency value -> node count).
  std::map<std::size_t, std::size_t> latency_histogram;
};

/// Compute schedule statistics from a finished execution. Requires a
/// successful or deadlocked result (uses activation/write rounds from
/// RunStats; nodes that never activated/wrote are skipped).
[[nodiscard]] ScheduleStats analyze_schedule(const ExecutionResult& result);

}  // namespace wb
