#include "src/analysis/schedule_stats.h"

#include <algorithm>

namespace wb {

ScheduleStats analyze_schedule(const ExecutionResult& result) {
  ScheduleStats s;
  s.rounds = result.stats.rounds;
  s.writes = result.stats.writes;
  s.activations_per_round.assign(s.rounds + 1, 0);

  const auto& activation = result.stats.activation_round;
  const auto& write = result.stats.write_round;
  for (std::size_t i = 0; i < activation.size(); ++i) {
    if (activation[i] == 0) continue;  // never activated (deadlocked run)
    if (activation[i] <= s.rounds) {
      ++s.activations_per_round[activation[i]];
    }
    if (write[i] >= activation[i] && write[i] != 0) {
      const std::size_t lat = write[i] - activation[i];
      s.latency.push_back(lat);
      ++s.latency_histogram[lat];
      s.max_latency = std::max(s.max_latency, lat);
    }
  }
  for (std::size_t c : s.activations_per_round) {
    if (c > 0) {
      ++s.activation_waves;
      s.max_wave = std::max(s.max_wave, c);
    }
  }
  if (!s.latency.empty()) {
    std::size_t total = 0;
    for (std::size_t l : s.latency) total += l;
    s.mean_latency =
        static_cast<double>(total) / static_cast<double>(s.latency.size());
  }
  return s;
}

}  // namespace wb
