#include "src/analysis/board_stats.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <string>

namespace wb {

namespace {

std::string key_of(const Bits& b) {
  std::string key;
  key.reserve(b.size());
  for (std::size_t i = 0; i < b.size(); ++i) {
    key.push_back(b.bit(i) ? '1' : '0');
  }
  return key;
}

}  // namespace

BoardStats analyze_board(const Whiteboard& board) {
  BoardStats s;
  s.messages = board.message_count();
  s.total_bits = board.total_bits();
  if (s.messages == 0) return s;

  std::map<std::string, std::size_t> contents;
  s.min_message_bits = board.message(0).size();
  for (const Bits& m : board.messages()) {
    s.min_message_bits = std::min(s.min_message_bits, m.size());
    s.max_message_bits = std::max(s.max_message_bits, m.size());
    ++s.length_histogram[m.size()];
    ++contents[key_of(m)];
  }
  s.mean_message_bits =
      static_cast<double>(s.total_bits) / static_cast<double>(s.messages);
  s.distinct_messages = contents.size();

  double entropy = 0.0;
  for (const auto& [content, count] : contents) {
    const double p =
        static_cast<double>(count) / static_cast<double>(s.messages);
    entropy -= p * std::log2(p);
  }
  s.content_entropy_bits = entropy;
  return s;
}

double budget_utilization(const BoardStats& stats, std::size_t n,
                          std::size_t per_node_limit) {
  const double budget =
      static_cast<double>(n) * static_cast<double>(per_node_limit);
  if (budget == 0) return 0.0;
  return static_cast<double>(stats.total_bits) / budget;
}

}  // namespace wb
