// Executable Theorem 6: rooted MIS ∉ PSIMASYNC[o(n)].
//
// From any SIMASYNC protocol A for rooted MIS one builds a SIMASYNC protocol
// A' solving BUILD on *arbitrary* graphs: in the auxiliary graph G^(x)_{i,j}
// (G plus an apex x = v_{n+1} adjacent to every node except v_i and v_j),
// the only inclusion-maximal independent set containing x is {x, v_i, v_j}
// iff {v_i, v_j} ∉ E. Every node sends the pair of A-messages for its two
// possible neighborhoods (apex adjacent / not), and the output function
// synthesizes A's whiteboard for each pair (i,j) and inspects A's output.
// BUILD on all graphs needs Ω(n²) whiteboard bits (Lemma 3), so A's messages
// must be Ω(n) bits.
#pragma once

#include "src/protocols/outputs.h"
#include "src/wb/protocol.h"

namespace wb {

/// Theorem 6 gadget: G plus apex n+1 adjacent to all nodes except v_i, v_j.
[[nodiscard]] Graph mis_gadget(const Graph& g, NodeId i, NodeId j);

class MisToBuildReduction {
 public:
  /// `mis` must be a SIMASYNC rooted-MIS protocol whose root is the apex
  /// node n+1 of the gadgets (n = node count of the graphs passed to run).
  explicit MisToBuildReduction(const ProtocolWithOutput<MisOutput>& mis);

  struct Result {
    Graph reconstructed;
    std::size_t aprime_max_message_bits = 0;
    std::size_t oracle_message_bits = 0;
    std::size_t pairs_tested = 0;

    Result() : reconstructed(0) {}
  };

  /// Reconstruct an arbitrary graph `g` from A-messages alone.
  [[nodiscard]] Result run(const Graph& g) const;

 private:
  const ProtocolWithOutput<MisOutput>* mis_;
};

}  // namespace wb
