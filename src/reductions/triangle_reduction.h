// Executable Theorem 3 (and Figure 1): TRIANGLE ∉ PSIMASYNC[o(n)].
//
// The proof is a reduction: from any SIMASYNC triangle protocol A one builds
// a SIMASYNC protocol A' that reconstructs an arbitrary bipartite graph G
// with parts {v_1..v_{n/2}}, {v_{n/2+1}..v_n}. Node v_i's A'-message is the
// pair (m'_i, m''_i) of A-messages v_i would send in the auxiliary graph
// G'_{s,t} (Figure 1: G plus an apex v_{n+1} adjacent to v_s and v_t) when
// it is not / is adjacent to the apex. The output function then *simulates*
// A's whiteboard for every pair (s,t) — synthesizing the apex's message
// itself — and reads the answer: G'_{s,t} has a triangle iff {v_s,v_t} ∈ E.
// Since there are 2^{Ω(n²/4)} such graphs, Lemma 3 forces A's messages to
// Ω(n) bits.
//
// We make every step executable: the gadget builder, the A'-message pairing
// (with exact bit accounting 2·f(n+1) + log n), the whiteboard synthesis and
// the pairwise queries, driven by any SIMASYNC protocol with boolean output
// (in practice TriangleOracleProtocol, whose f(n) = n + log n — the blowup
// the bench reports).
#pragma once

#include "src/protocols/outputs.h"
#include "src/wb/protocol.h"

namespace wb {

/// Figure 1 gadget: G plus apex node n+1 adjacent to exactly v_s and v_t.
[[nodiscard]] Graph fig1_gadget(const Graph& g, NodeId s, NodeId t);

/// Theorem 3 reduction driver.
class TriangleToBuildReduction {
 public:
  /// `triangle` must be a SIMASYNC protocol deciding TRIANGLE.
  explicit TriangleToBuildReduction(const ProtocolWithOutput<bool>& triangle);

  struct Result {
    Graph reconstructed;
    /// Maximum A'-message size over all nodes: 2·f(n+1) + O(log n) bits.
    std::size_t aprime_max_message_bits = 0;
    /// f(n+1) for the wrapped protocol (per-query message size of A).
    std::size_t oracle_message_bits = 0;
    std::size_t pairs_tested = 0;

    Result() : reconstructed(0) {}
  };

  /// Reconstruct a triangle-free `g` (the paper uses bipartite graphs with
  /// fixed parts; any triangle-free graph satisfies the gadget equivalence)
  /// from A-messages alone.
  [[nodiscard]] Result run(const Graph& g) const;

 private:
  const ProtocolWithOutput<bool>* triangle_;
};

}  // namespace wb
