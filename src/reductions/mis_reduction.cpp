#include "src/reductions/mis_reduction.h"

#include <algorithm>
#include <vector>

#include "src/support/bits.h"

namespace wb {

Graph mis_gadget(const Graph& g, NodeId i, NodeId j) {
  const std::size_t n = g.node_count();
  WB_CHECK(i >= 1 && j >= 1 && i < j && j <= n);
  std::vector<Edge> edges = g.edge_vector();
  const NodeId apex = static_cast<NodeId>(n + 1);
  for (NodeId v = 1; v <= n; ++v) {
    if (v != i && v != j) edges.push_back(make_edge(v, apex));
  }
  return Graph(n + 1, edges);
}

MisToBuildReduction::MisToBuildReduction(
    const ProtocolWithOutput<MisOutput>& mis)
    : mis_(&mis) {
  WB_CHECK_MSG(mis.model_class() == ModelClass::kSimAsync,
               "Theorem 6 reduces from SIMASYNC MIS protocols");
}

MisToBuildReduction::Result MisToBuildReduction::run(const Graph& g) const {
  const std::size_t n = g.node_count();
  const std::size_t big = n + 1;
  const NodeId apex = static_cast<NodeId>(big);
  const Whiteboard empty;

  Result result;
  result.oracle_message_bits = mis_->message_bit_limit(big);

  // m_k / m'_k of the proof: v_k's A-message when the apex is absent from /
  // present in its neighborhood (k ∈ {i,j} vs k ∉ {i,j}).
  std::vector<Bits> m_without(n), m_with(n);
  for (NodeId k = 1; k <= n; ++k) {
    const auto nb = g.neighbors(k);
    const LocalView without(k, nb, big);
    m_without[k - 1] = mis_->compose(without, empty);

    std::vector<NodeId> with_apex(nb.begin(), nb.end());
    with_apex.push_back(apex);
    const LocalView with(k, with_apex, big);
    m_with[k - 1] = mis_->compose(with, empty);

    const std::size_t id_bits =
        static_cast<std::size_t>(bits_for_id(static_cast<std::uint64_t>(n)));
    result.aprime_max_message_bits =
        std::max(result.aprime_max_message_bits,
                 id_bits + m_without[k - 1].size() + m_with[k - 1].size());
  }

  // Apex view in every gadget G^(x)_{i,j}: adjacent to all but v_i, v_j.
  GraphBuilder builder(n);
  // One board serves all O(n²) gadget runs: truncate rewinds it to empty
  // while the reserved message storage is reused across pairs.
  Whiteboard board;
  board.reserve(big);
  std::vector<NodeId> apex_nb;
  apex_nb.reserve(n);
  for (NodeId i = 1; i <= n; ++i) {
    for (NodeId j = i + 1; j <= n; ++j) {
      board.truncate(0);
      for (NodeId k = 1; k <= n; ++k) {
        board.append((k == i || k == j) ? m_without[k - 1] : m_with[k - 1]);
      }
      apex_nb.clear();
      for (NodeId v = 1; v <= n; ++v) {
        if (v != i && v != j) apex_nb.push_back(v);
      }
      const LocalView apex_view(apex, apex_nb, big);
      board.append(mis_->compose(apex_view, empty));

      ++result.pairs_tested;
      MisOutput out = mis_->output(board, big);
      std::sort(out.begin(), out.end());
      const MisOutput only_possible = {i, j, apex};
      // {v_i, v_j} ∉ E  ⟺  the unique rooted MIS is {x, v_i, v_j}.
      if (out != only_possible) builder.add_edge(i, j);
    }
  }
  result.reconstructed = builder.build();
  return result;
}

}  // namespace wb
