// Executable Theorem 8 (and Figure 2): EOB-BFS ∉ PSIMSYNC[o(n)].
//
// The gadget G_i (n odd; the even-odd-bipartite graph G lives on nodes
// {v_2..v_n}, node v_1 is reserved): add fresh nodes {v_{n+1}..v_{2n-1}} and
// the edges
//     {v_1, v_{i+n-2}},
//     {v_j, v_{j+n-2}} for every odd  j ∈ [3, n],
//     {v_j, v_{j+n}}   for every even j ∈ [2, n-1].
// G_i stays even-odd-bipartite, and a BFS from v_1 walks
// v_1 → v_{i+n-2} → v_i, so its third layer is exactly N_G(v_i): reading one
// BFS forest of G_i recovers all edges at v_i, and sweeping the odd i
// recovers all of G (every EOB edge has an odd endpoint ≥ 3).
//
// The paper runs this against a hypothetical SIMSYNC protocol to contradict
// Lemma 3 (2^{Ω(n²)} even-odd-bipartite graphs). Our executable version
// drives it with the real ASYNC protocol of Theorem 7, demonstrating the
// gadget equivalence and the Θ(n) protocol runs the reduction spends.
#pragma once

#include "src/protocols/eob_bfs.h"
#include "src/protocols/outputs.h"
#include "src/wb/protocol.h"

namespace wb {

/// Figure 2 gadget. `g` must have an isolated node 1, an even-odd-bipartite
/// graph on {2..n}, and odd n ≥ 3; `i` must be an odd ID in [3, n].
[[nodiscard]] Graph fig2_gadget(const Graph& g, NodeId i);

/// Component root of `v` in a BFS-forest output (follows parents).
[[nodiscard]] NodeId forest_root_of(const BfsProtocolOutput& forest, NodeId v);

class EobBfsToBuildReduction {
 public:
  explicit EobBfsToBuildReduction(
      const ProtocolWithOutput<BfsProtocolOutput>& bfs);

  struct Result {
    Graph reconstructed;
    std::size_t gadget_runs = 0;
    std::size_t total_whiteboard_bits = 0;  // across all gadget runs

    Result() : reconstructed(0) {}
  };

  /// Reconstruct `g` (shape as required by fig2_gadget) by running the BFS
  /// protocol on each gadget and reading layer-3 membership under root v_1.
  [[nodiscard]] Result run(const Graph& g) const;

 private:
  const ProtocolWithOutput<BfsProtocolOutput>* bfs_;
};

}  // namespace wb
