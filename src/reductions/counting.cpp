#include "src/reductions/counting.h"

#include <cmath>

#include "src/support/bits.h"

namespace wb {

namespace {

double budget(std::size_t n, double f_bits) {
  return static_cast<double>(n) * f_bits;
}

CountingRow make_row(std::string family, std::size_t n, double log2_count) {
  CountingRow row;
  row.family = std::move(family);
  row.n = n;
  row.log2_family_size = log2_count;
  row.budget_logn =
      budget(n, static_cast<double>(ceil_log2(static_cast<std::uint64_t>(n)) + 1));
  row.budget_sqrt = budget(n, std::ceil(std::sqrt(static_cast<double>(n))));
  row.budget_linear = budget(n, static_cast<double>(n));
  return row;
}

}  // namespace

std::vector<CountingRow> lemma3_table(const std::vector<std::size_t>& ns) {
  std::vector<CountingRow> rows;
  for (std::size_t n : ns) {
    rows.push_back(make_row("all graphs", n, log2_count_all_graphs(n)));
    if (n % 2 == 0) {
      rows.push_back(make_row("bipartite fixed parts (Thm 3)", n,
                              log2_count_bipartite_fixed_parts(n)));
    }
    rows.push_back(make_row("even-odd-bipartite (Thm 8)", n,
                            log2_count_even_odd_bipartite(n)));
    rows.push_back(make_row("labeled forests (§3.1)", n,
                            log2_count_labeled_forests(n)));
    rows.push_back(make_row("3-degenerate lower bnd (§3.2)", n,
                            log2_count_k_degenerate_lower(n, 3)));
  }
  return rows;
}

std::vector<SubgraphRow> theorem9_table(const std::vector<std::size_t>& ns) {
  std::vector<SubgraphRow> rows;
  for (std::size_t n : ns) {
    SubgraphRow row;
    row.n = n;
    row.f = std::max<std::size_t>(1, n / 4);
    row.log2_family_size = log2_count_subgraph_family(n, row.f);
    row.budget_f = budget(n, static_cast<double>(row.f));
    row.min_g_bits = row.log2_family_size / static_cast<double>(n);
    row.budget_logn = budget(n, std::log2(static_cast<double>(n)));
    rows.push_back(row);
  }
  return rows;
}

}  // namespace wb
