// Lemma 3 made numeric: BUILD restricted to a family G of g(n) graphs needs
// log₂ g(n) = O(n·f(n)) whiteboard bits, in any of the four models.
//
// These helpers produce the exact information-theoretic ledger for the
// families the paper's separations quantify over, so the benches can print
// "bits the whiteboard can carry" against "bits the family requires" and
// show exactly where each impossibility bites (Thm 3, 6, 8, 9).
#pragma once

#include <string>
#include <vector>

#include "src/graph/enumerate.h"

namespace wb {

struct CountingRow {
  std::string family;
  std::size_t n = 0;
  double log2_family_size = 0.0;  // bits required to name a member
  double budget_logn = 0.0;       // n · ceil(log2 n)   (f = log n)
  double budget_sqrt = 0.0;       // n · ceil(sqrt n)   (f = √n)
  double budget_linear = 0.0;     // n · n              (f = n, always enough)

  [[nodiscard]] bool feasible_logn() const {
    return log2_family_size <= budget_logn;
  }
  [[nodiscard]] bool feasible_sqrt() const {
    return log2_family_size <= budget_sqrt;
  }
};

/// One row per (family, n). Families: all graphs, bipartite with fixed
/// parts (Thm 3), even-odd-bipartite (Thm 8), labeled forests (§3.1),
/// k-degenerate lower bound (§3.2, k = 3).
[[nodiscard]] std::vector<CountingRow> lemma3_table(
    const std::vector<std::size_t>& ns);

/// The Theorem 9 ledger with f(n) = n/4 (the regime where the counting
/// argument bites): the family "edges only inside {v_1..v_f}" has 2^{C(f,2)}
/// members, so any model needs per-node messages of at least C(f,2)/n bits
/// — Θ(n) — while the SIMASYNC protocol with f-bit messages suffices.
/// Hence PSIMASYNC[f] ⊄ PSYNC[g] for g = o(f): message size is orthogonal
/// to synchronization power.
struct SubgraphRow {
  std::size_t n = 0;
  std::size_t f = 0;             // n/4
  double log2_family_size = 0.0; // C(f,2)
  double budget_f = 0.0;         // n · f   (the protocol's own budget)
  double min_g_bits = 0.0;       // C(f,2)/n: counting-forced message size
  double budget_logn = 0.0;      // n · log2 n (hopeless)
};
[[nodiscard]] std::vector<SubgraphRow> theorem9_table(
    const std::vector<std::size_t>& ns);

}  // namespace wb
