#include "src/reductions/triangle_reduction.h"

#include <vector>

#include "src/graph/algorithms.h"
#include "src/support/bits.h"

namespace wb {

Graph fig1_gadget(const Graph& g, NodeId s, NodeId t) {
  const std::size_t n = g.node_count();
  WB_CHECK(s >= 1 && t >= 1 && s < t && t <= n);
  std::vector<Edge> edges = g.edge_vector();
  const NodeId apex = static_cast<NodeId>(n + 1);
  edges.push_back(make_edge(s, apex));
  edges.push_back(make_edge(t, apex));
  return Graph(n + 1, edges);
}

TriangleToBuildReduction::TriangleToBuildReduction(
    const ProtocolWithOutput<bool>& triangle)
    : triangle_(&triangle) {
  WB_CHECK_MSG(triangle.model_class() == ModelClass::kSimAsync,
               "Theorem 3 reduces from SIMASYNC triangle protocols");
}

TriangleToBuildReduction::Result TriangleToBuildReduction::run(
    const Graph& g) const {
  WB_CHECK_MSG(!has_triangle(g),
               "gadget equivalence needs a triangle-free input");
  const std::size_t n = g.node_count();
  const std::size_t big = n + 1;
  const Whiteboard empty;

  Result result;
  result.oracle_message_bits = triangle_->message_bit_limit(big);

  // A' messages: for each node, A's message when the apex is absent from /
  // present in its neighborhood. (The A'-wire format would carry the ID and
  // both blobs; we account its size explicitly below.)
  std::vector<Bits> m_plain(n), m_apex(n);
  for (NodeId i = 1; i <= n; ++i) {
    const auto nb = g.neighbors(i);
    const LocalView plain(i, nb, big);
    m_plain[i - 1] = triangle_->compose(plain, empty);

    std::vector<NodeId> with_apex(nb.begin(), nb.end());
    with_apex.push_back(static_cast<NodeId>(big));
    const LocalView apex_view(i, with_apex, big);
    m_apex[i - 1] = triangle_->compose(apex_view, empty);

    const std::size_t id_bits =
        static_cast<std::size_t>(bits_for_id(static_cast<std::uint64_t>(n)));
    result.aprime_max_message_bits =
        std::max(result.aprime_max_message_bits,
                 id_bits + m_plain[i - 1].size() + m_apex[i - 1].size());
  }

  // Decode: simulate A's final whiteboard on G'_{s,t} for every pair.
  GraphBuilder builder(n);
  for (NodeId s = 1; s <= n; ++s) {
    for (NodeId t = s + 1; t <= n; ++t) {
      Whiteboard board;
      for (NodeId i = 1; i <= n; ++i) {
        board.append((i == s || i == t) ? m_apex[i - 1] : m_plain[i - 1]);
      }
      // The apex's view is known to the output function: it is adjacent to
      // exactly v_s and v_t.
      const std::vector<NodeId> apex_nb = {s, t};
      const LocalView apex_view(static_cast<NodeId>(big), apex_nb, big);
      board.append(triangle_->compose(apex_view, empty));

      ++result.pairs_tested;
      if (triangle_->output(board, big)) builder.add_edge(s, t);
    }
  }
  result.reconstructed = builder.build();
  return result;
}

}  // namespace wb
