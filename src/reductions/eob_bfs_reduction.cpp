#include "src/reductions/eob_bfs_reduction.h"

#include "src/graph/algorithms.h"
#include "src/wb/engine.h"

namespace wb {

Graph fig2_gadget(const Graph& g, NodeId i) {
  const std::size_t n = g.node_count();
  WB_CHECK_MSG(n >= 3 && n % 2 == 1, "gadget needs odd n >= 3");
  WB_CHECK_MSG(g.degree(1) == 0, "node 1 must be isolated in the input");
  WB_CHECK_MSG(is_even_odd_bipartite(g), "input must be even-odd-bipartite");
  WB_CHECK_MSG(i >= 3 && i <= n && i % 2 == 1, "i must be an odd ID in [3,n]");

  std::vector<Edge> edges = g.edge_vector();
  edges.push_back(make_edge(1, static_cast<NodeId>(i + n - 2)));
  for (NodeId j = 3; j <= n; j += 2) {
    edges.push_back(make_edge(j, static_cast<NodeId>(j + n - 2)));
  }
  for (NodeId j = 2; j + 1 <= n; j += 2) {
    edges.push_back(make_edge(j, static_cast<NodeId>(j + n)));
  }
  return Graph(2 * n - 1, edges);
}

NodeId forest_root_of(const BfsProtocolOutput& forest, NodeId v) {
  NodeId cur = v;
  // layer[v] parent hops are exact; bounded walk guards corrupt forests.
  for (std::size_t hops = 0; hops <= forest.parent.size(); ++hops) {
    const NodeId p = forest.parent[cur - 1];
    if (p == kNoNode) return cur;
    cur = p;
  }
  WB_REQUIRE_MSG(false, "parent pointers contain a cycle at node " << v);
  return kNoNode;
}

EobBfsToBuildReduction::EobBfsToBuildReduction(
    const ProtocolWithOutput<BfsProtocolOutput>& bfs)
    : bfs_(&bfs) {}

EobBfsToBuildReduction::Result EobBfsToBuildReduction::run(
    const Graph& g) const {
  const std::size_t n = g.node_count();
  Result result;
  GraphBuilder builder(n);
  for (NodeId i = 3; i <= n; i += 2) {
    const Graph gadget = fig2_gadget(g, i);
    const ExecutionResult run = run_protocol(gadget, *bfs_);
    WB_REQUIRE_MSG(run.ok(), "BFS protocol failed on gadget G_" << i << ": "
                                                                << run.error);
    const BfsProtocolOutput forest =
        bfs_->output(run.board, gadget.node_count());
    WB_REQUIRE_MSG(forest.valid, "gadget G_" << i << " rejected as invalid");
    ++result.gadget_runs;
    result.total_whiteboard_bits += run.stats.total_bits;
    for (NodeId j = 2; j <= n; ++j) {
      if (j == i) continue;
      if (forest.layer[j - 1] == 3 && forest_root_of(forest, j) == 1) {
        if (!builder.has_edge(i, j)) builder.add_edge(i, j);
      }
    }
  }
  result.reconstructed = builder.build();
  return result;
}

}  // namespace wb
