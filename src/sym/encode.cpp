#include "src/sym/encode.h"

#include <algorithm>

#include "src/graph/algorithms.h"
#include "src/protocols/anon_frontier.h"
#include "src/protocols/codec.h"
#include "src/protocols/mis.h"
#include "src/protocols/two_cliques.h"

namespace wb::sym {

std::string to_string(VarOrder order) {
  return order == VarOrder::kInterleave ? "interleave" : "grouped";
}

std::string to_string(SymEngine engine) {
  switch (engine) {
    case SymEngine::kAuto: return "auto";
    case SymEngine::kCircuit: return "circuit";
    case SymEngine::kFrontier: return "frontier";
  }
  return "?";
}

BoardLayout::BoardLayout(std::size_t n, std::size_t id_bits,
                         std::size_t msg_bits, VarOrder order)
    : n_(n), id_bits_(id_bits), msg_bits_(msg_bits), order_(order) {
  WB_CHECK_MSG(n >= 1, "BoardLayout needs at least one node");
}

std::uint32_t BoardLayout::order_bit(std::size_t slot, std::size_t b) const {
  WB_CHECK(slot < n_ && b < id_bits_);
  const std::size_t v = order_ == VarOrder::kInterleave
                            ? slot * (id_bits_ + msg_bits_) + b
                            : slot * id_bits_ + b;
  return static_cast<std::uint32_t>(v);
}

std::uint32_t BoardLayout::msg_bit(std::size_t slot, std::size_t b) const {
  WB_CHECK(slot < n_ && b < msg_bits_);
  const std::size_t v = order_ == VarOrder::kInterleave
                            ? slot * (id_bits_ + msg_bits_) + id_bits_ + b
                            : n_ * id_bits_ + slot * msg_bits_ + b;
  return static_cast<std::uint32_t>(v);
}

std::uint32_t BoardLayout::wrote_bit(NodeId v) const {
  WB_CHECK(v >= 1 && v <= n_);
  return static_cast<std::uint32_t>(n_ * (id_bits_ + msg_bits_) + (v - 1));
}

std::vector<std::uint32_t> BoardLayout::full_universe() const {
  std::vector<std::uint32_t> vars(var_count());
  for (std::size_t i = 0; i < vars.size(); ++i) {
    vars[i] = static_cast<std::uint32_t>(i);
  }
  return vars;
}

std::vector<std::uint32_t> BoardLayout::msg_universe() const {
  std::vector<std::uint32_t> vars;
  vars.reserve(n_ * msg_bits_);
  for (std::size_t slot = 0; slot < n_; ++slot) {
    for (std::size_t b = 0; b < msg_bits_; ++b) {
      vars.push_back(msg_bit(slot, b));
    }
  }
  std::sort(vars.begin(), vars.end());
  return vars;
}

std::vector<std::uint32_t> BoardLayout::non_msg_universe() const {
  std::vector<std::uint32_t> vars;
  vars.reserve(n_ * id_bits_ + n_);
  for (std::size_t slot = 0; slot < n_; ++slot) {
    for (std::size_t b = 0; b < id_bits_; ++b) {
      vars.push_back(order_bit(slot, b));
    }
  }
  for (NodeId v = 1; v <= n_; ++v) vars.push_back(wrote_bit(v));
  std::sort(vars.begin(), vars.end());
  return vars;
}

namespace {

/// Cube over `width` consecutive field bits (bit b at var_of(b), ascending
/// in b): the field equals `value`, LSB-first like BitWriter::write_uint.
template <typename VarOf>
[[nodiscard]] BddRef field_equals(BddManager& m, std::size_t width,
                                  std::uint64_t value, const VarOf& var_of) {
  std::vector<BddLiteral> lits;
  lits.reserve(width);
  for (std::size_t b = 0; b < width; ++b) {
    lits.push_back({var_of(b), ((value >> b) & 1u) != 0});
  }
  std::sort(lits.begin(), lits.end());
  return m.cube(lits);
}

/// Exactly `target` of the `indicators` hold (layered counting DP).
[[nodiscard]] BddRef exactly(BddManager& m,
                             const std::vector<BddRef>& indicators,
                             std::size_t target) {
  if (target > indicators.size()) return kBddFalse;
  // ways[k] = "exactly k of the indicators processed so far hold".
  std::vector<BddRef> ways{kBddTrue};
  for (const BddRef ind : indicators) {
    std::vector<BddRef> next(std::min(ways.size() + 1, target + 1), kBddFalse);
    for (std::size_t k = 0; k < ways.size() && k <= target; ++k) {
      next[k] = m.bdd_or(next[k], m.bdd_and(ways[k], m.bdd_not(ind)));
      if (k + 1 <= target) {
        next[k + 1] = m.bdd_or(next[k + 1], m.bdd_and(ways[k], ind));
      }
    }
    ways = std::move(next);
  }
  return target < ways.size() ? ways[target] : kBddFalse;
}

[[nodiscard]] BddRef constant(bool b) { return b ? kBddTrue : kBddFalse; }

/// §5.1 TWO-CLIQUES (src/protocols/two_cliques.cpp) as a circuit. Message:
/// id field then a 2-bit side code; the code circuit replays compose's
/// saw0/saw1/saw-any-neighbor scan over the earlier slots.
class TwoCliquesCircuit final : public CircuitModel {
 public:
  explicit TwoCliquesCircuit(const Graph& g)
      : g_(&g), truth_(is_two_cliques(g)) {}

  [[nodiscard]] std::size_t message_bits() const override {
    return static_cast<std::size_t>(codec::id_bits(g_->node_count())) + 2;
  }

  [[nodiscard]] BddRef message_bit(BddManager& m, const BoardLayout& layout,
                                   NodeId v, std::size_t slot,
                                   std::size_t bit) const override {
    const std::size_t idb = layout.id_bits();
    if (bit < idb) return constant(((v - 1) >> bit) & 1u);
    if (slot == 0) return kBddFalse;  // first writer: code 0 (side 0)
    BddRef saw_any = kBddFalse, saw0 = kBddFalse, saw1 = kBddFalse;
    for (std::size_t i = 0; i < slot; ++i) {
      BddRef by_neighbor = kBddFalse;
      for (const NodeId u : g_->neighbors(v)) {
        by_neighbor = m.bdd_or(by_neighbor, layout.slot_message_id_is(m, i, u));
      }
      const BddRef b0 = m.var(layout.msg_bit(i, idb));
      const BddRef b1 = m.var(layout.msg_bit(i, idb + 1));
      const BddRef code0 = m.bdd_and(m.bdd_not(b0), m.bdd_not(b1));
      const BddRef code1 = m.bdd_and(b0, m.bdd_not(b1));
      saw_any = m.bdd_or(saw_any, by_neighbor);
      saw0 = m.bdd_or(saw0, m.bdd_and(by_neighbor, code0));
      saw1 = m.bdd_or(saw1, m.bdd_and(by_neighbor, code1));
    }
    if (bit == idb) {
      // code & 1: no neighbor seen (side 1), or side 1 seen without side 0.
      return m.bdd_or(m.bdd_not(saw_any), m.bdd_and(saw1, m.bdd_not(saw0)));
    }
    // code >> 1: conflict — both sides already written by neighbors.
    return m.bdd_and(saw0, saw1);
  }

  [[nodiscard]] BddRef wrong_outputs(BddManager& m,
                                     const BoardLayout& layout) const override {
    const std::size_t n = layout.n();
    const std::size_t idb = layout.id_bits();
    BddRef yes;
    if (n % 2 != 0) {
      yes = kBddFalse;
    } else {
      BddRef no_conflict = kBddTrue;
      std::vector<BddRef> side0, side1;
      for (std::size_t i = 0; i < n; ++i) {
        const BddRef b0 = m.var(layout.msg_bit(i, idb));
        const BddRef b1 = m.var(layout.msg_bit(i, idb + 1));
        no_conflict =
            m.bdd_and(no_conflict, m.bdd_not(m.bdd_and(m.bdd_not(b0), b1)));
        side0.push_back(m.bdd_and(m.bdd_not(b0), m.bdd_not(b1)));
        side1.push_back(m.bdd_and(b0, m.bdd_not(b1)));
      }
      yes = m.bdd_and(no_conflict, m.bdd_and(exactly(m, side0, n / 2),
                                             exactly(m, side1, n / 2)));
    }
    return truth_ ? m.bdd_not(yes) : yes;
  }

 private:
  const Graph* g_;
  bool truth_;
};

/// Theorem 5 rooted MIS (src/protocols/mis.cpp) as a circuit. Message: id
/// field then the IN flag; validation is is_rooted_mis (root present,
/// independent, inclusion-maximal).
class RootedMisCircuit final : public CircuitModel {
 public:
  RootedMisCircuit(const Graph& g, NodeId root) : g_(&g), root_(root) {}

  [[nodiscard]] std::size_t message_bits() const override {
    return static_cast<std::size_t>(codec::id_bits(g_->node_count())) + 1;
  }

  [[nodiscard]] BddRef message_bit(BddManager& m, const BoardLayout& layout,
                                   NodeId v, std::size_t slot,
                                   std::size_t bit) const override {
    const std::size_t idb = layout.id_bits();
    if (bit < idb) return constant(((v - 1) >> bit) & 1u);
    if (v == root_) return kBddTrue;
    if (g_->has_edge(v, root_)) return kBddFalse;
    // IN unless some earlier slot carries a neighbor's IN message.
    BddRef neighbor_in = kBddFalse;
    for (std::size_t i = 0; i < slot; ++i) {
      const BddRef in_flag = m.var(layout.msg_bit(i, idb));
      for (const NodeId u : g_->neighbors(v)) {
        neighbor_in = m.bdd_or(
            neighbor_in,
            m.bdd_and(layout.slot_message_id_is(m, i, u), in_flag));
      }
    }
    return m.bdd_not(neighbor_in);
  }

  [[nodiscard]] BddRef wrong_outputs(BddManager& m,
                                     const BoardLayout& layout) const override {
    const std::size_t n = layout.n();
    const std::size_t idb = layout.id_bits();
    // in[v] = some slot carries v's message with the IN flag.
    std::vector<BddRef> in(n + 1, kBddFalse);
    for (NodeId v = 1; v <= n; ++v) {
      for (std::size_t i = 0; i < n; ++i) {
        in[v] = m.bdd_or(in[v],
                         m.bdd_and(layout.slot_message_id_is(m, i, v),
                                   m.var(layout.msg_bit(i, idb))));
      }
    }
    BddRef valid = in[root_];
    for (const Edge& e : g_->edges()) {
      valid = m.bdd_and(valid, m.bdd_not(m.bdd_and(in[e.u], in[e.v])));
    }
    for (NodeId v = 1; v <= n; ++v) {
      BddRef covered = in[v];
      for (const NodeId u : g_->neighbors(v)) {
        covered = m.bdd_or(covered, in[u]);
      }
      valid = m.bdd_and(valid, covered);
    }
    return m.bdd_not(valid);
  }

 private:
  const Graph* g_;
  NodeId root_;
};

/// Anonymous degree parade (src/protocols/anon_frontier.h) as a circuit:
/// the message is the constant deg(v), and a final board is correct iff the
/// fields form the graph's degree multiset.
class AnonDegreeCircuit final : public CircuitModel {
 public:
  explicit AnonDegreeCircuit(const Graph& g) : g_(&g) {}

  [[nodiscard]] std::size_t message_bits() const override {
    return static_cast<std::size_t>(codec::id_bits(g_->node_count()));
  }

  [[nodiscard]] BddRef message_bit(BddManager&, const BoardLayout&, NodeId v,
                                   std::size_t, std::size_t bit) const override {
    return constant((g_->degree(v) >> bit) & 1u);
  }

  [[nodiscard]] BddRef wrong_outputs(BddManager& m,
                                     const BoardLayout& layout) const override {
    const std::size_t n = layout.n();
    // multiplicity[d] = how many nodes have degree d.
    std::vector<std::size_t> multiplicity(n, 0);
    for (NodeId v = 1; v <= n; ++v) ++multiplicity[g_->degree(v)];
    BddRef valid = kBddTrue;
    for (std::size_t d = 0; d < n; ++d) {
      if (multiplicity[d] == 0) continue;
      std::vector<BddRef> holds_d;
      holds_d.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        holds_d.push_back(field_equals(
            m, layout.msg_bits(), d,
            [&](std::size_t b) { return layout.msg_bit(i, b); }));
      }
      valid = m.bdd_and(valid, exactly(m, holds_d, multiplicity[d]));
    }
    return m.bdd_not(valid);
  }

 private:
  const Graph* g_;
};

}  // namespace

BddRef BoardLayout::slot_written_by(BddManager& m, std::size_t slot,
                                    NodeId v) const {
  WB_CHECK(v >= 1 && v <= n_);
  return field_equals(m, id_bits_, v - 1,
                      [&](std::size_t b) { return order_bit(slot, b); });
}

BddRef BoardLayout::slot_message_id_is(BddManager& m, std::size_t slot,
                                       NodeId id) const {
  WB_CHECK(id >= 1 && id <= n_);
  return field_equals(m, id_bits_, id - 1,
                      [&](std::size_t b) { return msg_bit(slot, b); });
}

std::unique_ptr<CircuitModel> make_circuit_model(const Protocol& p,
                                                 const Graph& g) {
  if (dynamic_cast<const TwoCliquesProtocol*>(&p) != nullptr) {
    return std::make_unique<TwoCliquesCircuit>(g);
  }
  if (const auto* mis = dynamic_cast<const RootedMisProtocol*>(&p)) {
    return std::make_unique<RootedMisCircuit>(g, mis->root());
  }
  if (dynamic_cast<const AnonDegreeProtocol*>(&p) != nullptr) {
    return std::make_unique<AnonDegreeCircuit>(g);
  }
  return nullptr;
}

}  // namespace wb::sym
