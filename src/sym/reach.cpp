#include "src/sym/reach.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/protocols/codec.h"
#include "src/support/hash.h"
#include "src/wb/model.h"

namespace wb::sym {

namespace {

[[nodiscard]] std::uint64_t add_checked(std::uint64_t a, std::uint64_t b) {
  WB_REQUIRE_MSG(a <= ~std::uint64_t{0} - b, "execution count overflow");
  return a + b;
}

struct Hash128Hasher {
  std::size_t operator()(const Hash128& h) const noexcept {
    return static_cast<std::size_t>(h.lo ^ h.hi);
  }
};

/// The circuit engine: layered image fixpoint (see reach.h).
[[nodiscard]] SymbolicTotals run_circuit(const Graph& g, const Protocol& p,
                                         const CircuitModel& model,
                                         const SymbolicOptions& opts) {
  const std::size_t n = g.node_count();
  WB_CHECK_MSG(is_simultaneous(p.model_class()),
               "circuit models require a simultaneous class");
  WB_CHECK_MSG(model.message_bits() == p.message_bit_limit(n),
               "circuit message width disagrees with message_bit_limit");
  const std::size_t idb = static_cast<std::size_t>(codec::id_bits(n));
  const BoardLayout layout(n, idb, model.message_bits(), opts.order);
  BddManager m(layout.var_count());

  // F_0: the empty board — every variable zero.
  std::vector<BddLiteral> zeros;
  zeros.reserve(layout.var_count());
  for (std::uint32_t v = 0; v < layout.var_count(); ++v) {
    zeros.push_back({v, false});
  }
  BddRef frontier = m.cube(zeros);

  for (std::size_t r = 0; r < n; ++r) {
    // The variables slot r and the writer's wrote-bit will be (re)assigned;
    // in F_r they are constrained to zero, so ∃ just drops the constraint.
    std::vector<std::uint32_t> slot_vars;
    slot_vars.reserve(idb + model.message_bits() + 1);
    for (std::size_t b = 0; b < idb; ++b) {
      slot_vars.push_back(layout.order_bit(r, b));
    }
    for (std::size_t b = 0; b < model.message_bits(); ++b) {
      slot_vars.push_back(layout.msg_bit(r, b));
    }
    BddRef next = kBddFalse;
    for (NodeId v = 1; v <= n; ++v) {
      // Simultaneous classes: every unwritten node is a candidate.
      BddRef part = m.bdd_and(frontier, m.nvar(layout.wrote_bit(v)));
      if (part == kBddFalse) continue;
      std::vector<std::uint32_t> reassigned = slot_vars;
      reassigned.push_back(layout.wrote_bit(v));
      std::sort(reassigned.begin(), reassigned.end());
      part = m.exists(part, reassigned);
      part = m.bdd_and(part, layout.slot_written_by(m, r, v));
      for (std::size_t b = 0; b < model.message_bits(); ++b) {
        const BddRef circuit = model.message_bit(m, layout, v, r, b);
        part = m.bdd_and(part,
                         m.bdd_iff(m.var(layout.msg_bit(r, b)), circuit));
      }
      part = m.bdd_and(part, m.var(layout.wrote_bit(v)));
      next = m.bdd_or(next, part);
    }
    frontier = next;
  }

  SymbolicTotals totals;
  totals.engine = SymEngine::kCircuit;
  totals.vars = layout.var_count();
  totals.layers = n;
  const std::vector<std::uint32_t> full = layout.full_universe();
  totals.executions = m.sat_count(frontier, full);
  totals.engine_failures = 0;  // simultaneous + exact-width: no deadlocks,
                               // overflows, or decode faults are reachable
  totals.wrong_outputs =
      m.sat_count(m.bdd_and(frontier, model.wrong_outputs(m, layout)), full);
  totals.distinct = m.sat_count(m.exists(frontier, layout.non_msg_universe()),
                                layout.msg_universe());
  totals.bdd = m.stats();
  return totals;
}

/// The explicit-frontier engine: distinct engine states with order-history
/// BDDs (see reach.h).
[[nodiscard]] SymbolicTotals run_frontier(
    const Graph& g, const Protocol& p,
    const std::function<bool(const ExecutionResult&)>& judge) {
  const std::size_t n = g.node_count();
  const std::size_t idb = static_cast<std::size_t>(codec::id_bits(n));
  BddManager m(n * idb);

  SymbolicTotals totals;
  totals.engine = SymEngine::kFrontier;
  totals.vars = n * idb;

  const auto order_cube = [&](std::size_t slot, NodeId v) -> BddRef {
    std::vector<BddLiteral> lits;
    lits.reserve(idb);
    for (std::size_t b = 0; b < idb; ++b) {
      lits.push_back({static_cast<std::uint32_t>(slot * idb + b),
                      (((v - 1) >> b) & 1u) != 0});
    }
    return m.cube(lits);
  };

  std::unordered_set<Hash128, Hash128Hasher> distinct_boards;
  ExecutionResult scratch;
  // universe of schedules with k writes: the order fields of slots 0..k-1.
  std::vector<std::uint32_t> universe;
  const auto accumulate_terminal = [&](const EngineState& state,
                                       BddRef orders) {
    ++totals.states;
    state.finish_into(scratch);
    const std::uint64_t count = m.sat_count(orders, universe);
    totals.executions = add_checked(totals.executions, count);
    if (!scratch.ok()) {
      totals.engine_failures = add_checked(totals.engine_failures, count);
    } else if (!judge(scratch)) {
      totals.wrong_outputs = add_checked(totals.wrong_outputs, count);
    }
    distinct_boards.insert(scratch.board.content_hash());
  };

  struct Entry {
    EngineState state;
    BddRef orders;
  };
  std::unordered_map<Hash128, Entry, Hash128Hasher> frontier;

  EngineState root(g, p);
  root.begin_round();
  if (root.terminal()) {
    accumulate_terminal(root, kBddTrue);
  } else {
    const Hash128 root_key = root.memo_key();  // before the move below
    frontier.emplace(root_key, Entry{std::move(root), kBddTrue});
  }

  for (std::size_t k = 0; !frontier.empty(); ++k) {
    ++totals.layers;
    // Terminal states after this generation carry k + 1 writes.
    for (std::size_t b = 0; b < idb; ++b) {
      universe.push_back(static_cast<std::uint32_t>(k * idb + b));
    }
    std::unordered_map<Hash128, Entry, Hash128Hasher> next;
    for (auto& [key, entry] : frontier) {
      ++totals.states;
      for (const NodeId v : entry.state.candidates()) {
        EngineState child = entry.state;  // O(n): the board is shared CoW
        child.write_node(v);
        child.begin_round();
        const BddRef orders = m.bdd_and(entry.orders, order_cube(k, v));
        if (child.terminal()) {
          accumulate_terminal(child, orders);
          continue;
        }
        const Hash128 child_key = child.memo_key();
        const auto it = next.find(child_key);
        if (it == next.end()) {
          next.emplace(child_key, Entry{std::move(child), orders});
        } else {
          // Converging schedules: same board + written set means the same
          // engine state in the synchronous classes — merge the histories.
          it->second.orders = m.bdd_or(it->second.orders, orders);
        }
      }
    }
    frontier = std::move(next);
  }

  totals.distinct = distinct_boards.size();
  totals.bdd = m.stats();
  return totals;
}

}  // namespace

SymbolicTotals symbolic_sweep(
    const Graph& g, const Protocol& p,
    const std::function<bool(const ExecutionResult&)>& judge,
    const SymbolicOptions& opts) {
  const std::size_t n = g.node_count();
  WB_REQUIRE_MSG(n >= 1, "symbolic sweep needs a non-empty graph");
  if (is_asynchronous(p.model_class())) {
    throw SymUnsupportedError(
        std::string("model class ") + std::string(model_name(p.model_class())) +
        " — messages frozen at activation have no per-round transition "
        "relation; only the synchronous classes (SIMSYNC/SYNC) are answered");
  }
  const std::size_t idb = static_cast<std::size_t>(codec::id_bits(n));

  std::unique_ptr<CircuitModel> model;
  if (opts.engine != SymEngine::kFrontier) {
    model = make_circuit_model(p, g);
  }
  if (opts.engine == SymEngine::kCircuit && model == nullptr) {
    throw SymUnsupportedError("no symbolic circuit for protocol '" + p.name() +
                              "' — run engine=frontier (or auto)");
  }

  const auto require_vars = [&](std::size_t vars, const char* engine) {
    if (vars > opts.max_vars) {
      throw SymUnsupportedError(
          "the " + std::string(engine) + " encoding needs " +
          std::to_string(vars) + " boolean variables (cap " +
          std::to_string(opts.max_vars) +
          ") — width or node count is not statically bounded enough");
    }
  };

  if (model != nullptr) {
    const std::size_t circuit_vars =
        n * (idb + model->message_bits()) + n;
    if (opts.engine == SymEngine::kCircuit || circuit_vars <= opts.max_vars) {
      require_vars(circuit_vars, "circuit");
      return run_circuit(g, p, *model, opts);
    }
    // kAuto with an oversized circuit: fall through to the frontier engine.
  }
  require_vars(n * idb, "frontier");
  return run_frontier(g, p, judge);
}

}  // namespace wb::sym
