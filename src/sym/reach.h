// Symbolic reachability over whiteboard executions: the answer the
// exhaustive enumerator computes by visiting every schedule, computed here
// without enumerating any.
//
// Two engines share one totals contract (pinned bit-equal to
// `exhaustive:1` by tests/sym/ and the CI symbolic-smoke job):
//
//  - circuit: for protocols with a CircuitModel (src/sym/encode.h), a
//    layered image fixpoint. F_r is the BDD of all boards with exactly r
//    messages; one step disjoins, per writer v, "v was an unwritten
//    candidate" ∧ slot r's order field = v ∧ slot r's message bits = v's
//    compose circuit ∧ w_v — a disjunctively-partitioned transition
//    relation applied functionally (writes touch only slot r and w_v, so no
//    primed variables are needed). The supported models are simultaneous
//    (everyone is a candidate from round one), which the engine's
//    referee semantics make deadlock-, overflow- and fault-free: the finals
//    are exactly F_n, executions = sat_count(F_n) over all variables (the
//    order fields make schedule → assignment injective), distinct boards =
//    sat_count of the message-field projection, and wrong outputs =
//    sat_count(F_n ∧ the model's decoded-incorrect set).
//
//  - frontier: for any synchronous-class protocol, an explicit frontier of
//    distinct engine states (board content + written set — which determine
//    memories, activations and candidates in the SYNC classes), each
//    carrying a BDD over the slot order fields of the schedules that reach
//    it. Converging schedules merge; Protocol::compose runs once per
//    distinct state; executions are counted by sat_count on the order
//    history, never by enumeration. This is the engine that answers for
//    sync-bfs / spanning-forest (real activation predicates, deadlocks,
//    variable-width messages) and the cross-oracle for the circuit engine.
//
// Everything else refuses with the typed SymUnsupportedError:
// asynchronous model classes, encodings past the variable cap, forced
// circuit runs without a model. Fault specs are refused at the spec layer
// (src/cli/spec.h).
#pragma once

#include <cstdint>
#include <functional>

#include "src/graph/graph.h"
#include "src/sym/bdd.h"
#include "src/sym/encode.h"
#include "src/wb/engine.h"
#include "src/wb/protocol.h"

namespace wb::sym {

struct SymbolicOptions {
  VarOrder order = VarOrder::kInterleave;
  SymEngine engine = SymEngine::kAuto;
  /// Refusal cap on the BDD variable count (the "statically bounded width"
  /// contract made concrete).
  std::size_t max_vars = 4096;
};

struct SymbolicTotals {
  std::uint64_t executions = 0;
  std::uint64_t engine_failures = 0;  // deadlock/overflow/protocol-error/fault
  std::uint64_t wrong_outputs = 0;
  std::uint64_t distinct = 0;         // exact distinct final boards
  /// Which engine answered (kCircuit or kFrontier, never kAuto).
  SymEngine engine = SymEngine::kCircuit;
  std::size_t vars = 0;    // BDD variables in the encoding
  std::size_t layers = 0;  // image steps / frontier generations
  /// Frontier engine: distinct engine states expanded (compose calls scale
  /// with this, not with executions). 0 for the circuit engine.
  std::uint64_t states = 0;
  BddStats bdd;
};

/// Sweep every adversary schedule of `p` on `g` symbolically. `judge` is
/// the runner's validation for one successful execution's output; the
/// frontier engine calls it once per distinct final state (the circuit
/// engine's models carry their own decoded-incorrect sets and never call
/// it). Throws SymUnsupportedError for what the backend does not answer.
[[nodiscard]] SymbolicTotals symbolic_sweep(
    const Graph& g, const Protocol& p,
    const std::function<bool(const ExecutionResult&)>& judge,
    const SymbolicOptions& opts = {});

}  // namespace wb::sym
