// Self-contained hash-consed BDD package (no external CUDD dependency —
// the repo builds offline).
//
// Reduced ordered BDDs with canonical negation: both terminal nodes exist
// (kBddFalse / kBddTrue) and every function has exactly one node index, so
// semantic equality is pointer equality (`a == b` on BddRef). Variables are
// identified by their *order rank*: variable 0 is the topmost decision in
// every BDD. The symbolic engine maps engine state bits to ranks through a
// BoardLayout (src/sym/encode.h), so "reordering" is a relabelling choice
// made before any node is built.
//
// Operations: ITE with a computed cache (AND/OR/XOR/NOT/IFF are ITE
// spellings and share it), existential quantification over a variable set,
// variable-pair substitution (order-preserving renames), cube construction,
// and sat_count model counting over an explicit variable universe.
//
// Memory model: nodes are append-only and live for the manager's lifetime
// (no garbage collection — whiteboard image fixpoints are short-lived and
// bounded; stats() exposes the growth so callers can see the cost). All
// BddRefs from one manager stay valid until the manager is destroyed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "src/support/check.h"

namespace wb::sym {

/// Handle to a BDD node. Refs are only meaningful with the manager that
/// produced them; equal refs = equal boolean functions (canonicity).
using BddRef = std::uint32_t;

inline constexpr BddRef kBddFalse = 0;
inline constexpr BddRef kBddTrue = 1;

struct BddStats {
  std::size_t vars = 0;
  std::size_t nodes = 0;           // live nodes, terminals included
  std::uint64_t unique_hits = 0;   // make_node served from the unique table
  std::uint64_t unique_misses = 0; // fresh nodes allocated
  std::uint64_t cache_hits = 0;    // computed-cache hits (ITE)
  std::uint64_t cache_lookups = 0;
  std::uint64_t ite_calls = 0;     // recursive ITE invocations
};

/// One positive or negative literal of a cube: (variable rank, phase).
using BddLiteral = std::pair<std::uint32_t, bool>;

class BddManager {
 public:
  /// A manager over variables 0..var_count-1 in that (fixed) order.
  explicit BddManager(std::size_t var_count);

  [[nodiscard]] std::size_t var_count() const noexcept { return var_count_; }

  /// The single-variable function x_v (and its negation).
  [[nodiscard]] BddRef var(std::uint32_t v);
  [[nodiscard]] BddRef nvar(std::uint32_t v);

  /// if-then-else: f ? g : h. The one connective everything else reduces to.
  [[nodiscard]] BddRef ite(BddRef f, BddRef g, BddRef h);

  [[nodiscard]] BddRef bdd_not(BddRef f) { return ite(f, kBddFalse, kBddTrue); }
  [[nodiscard]] BddRef bdd_and(BddRef a, BddRef b) { return ite(a, b, kBddFalse); }
  [[nodiscard]] BddRef bdd_or(BddRef a, BddRef b) { return ite(a, kBddTrue, b); }
  [[nodiscard]] BddRef bdd_xor(BddRef a, BddRef b) {
    return ite(a, bdd_not(b), b);
  }
  [[nodiscard]] BddRef bdd_iff(BddRef a, BddRef b) {
    return ite(a, b, bdd_not(b));
  }

  /// Conjunction of literals. `lits` must be sorted by variable rank,
  /// strictly ascending.
  [[nodiscard]] BddRef cube(std::span<const BddLiteral> lits);

  /// ∃ vars. f — `vars` sorted ascending, duplicates allowed but useless.
  [[nodiscard]] BddRef exists(BddRef f, std::span<const std::uint32_t> vars);

  /// Simultaneous variable rename: every node labelled `from` becomes
  /// `to` per `pairs` (sorted by `from`, strictly ascending). The rename
  /// must preserve relative order against the untouched variables in f's
  /// support — make_node checks and throws LogicError otherwise.
  [[nodiscard]] BddRef substitute(
      BddRef f, std::span<const std::pair<std::uint32_t, std::uint32_t>> pairs);

  /// Exact model count of f over `universe` (sorted ascending). Every
  /// variable in f's support must be in the universe (LogicError otherwise);
  /// universe variables outside the support double the count. Throws
  /// DataError if the count exceeds 2^64 - 1.
  [[nodiscard]] std::uint64_t sat_count(
      BddRef f, std::span<const std::uint32_t> universe) const;

  /// Evaluate under a full assignment (assignment[v] = value of variable v).
  [[nodiscard]] bool eval(BddRef f, const std::vector<bool>& assignment) const;

  [[nodiscard]] const BddStats& stats() const noexcept { return stats_; }

 private:
  struct Node {
    std::uint32_t var;  // order rank; kTerminalVar on terminals
    BddRef lo;          // var = 0 branch
    BddRef hi;          // var = 1 branch
  };
  static constexpr std::uint32_t kTerminalVar = 0xffffffffu;

  struct CacheEntry {
    BddRef f = 0, g = 0, h = 0;
    BddRef result = kInvalid;
  };
  static constexpr BddRef kInvalid = 0xffffffffu;

  [[nodiscard]] BddRef make_node(std::uint32_t var, BddRef lo, BddRef hi);
  [[nodiscard]] std::uint32_t rank(BddRef f) const noexcept {
    return nodes_[f].var;  // kTerminalVar sorts after every real variable
  }
  void grow_unique_table();
  [[nodiscard]] std::size_t unique_slot(std::uint32_t var, BddRef lo,
                                        BddRef hi) const noexcept;

  std::size_t var_count_;
  std::vector<Node> nodes_;
  /// Open-addressed unique table of node indexes + 1 (0 = empty slot).
  std::vector<std::uint32_t> unique_;
  std::size_t unique_mask_ = 0;
  std::vector<CacheEntry> cache_;
  std::size_t cache_mask_ = 0;
  mutable BddStats stats_;
};

}  // namespace wb::sym
