// Symbolic encoding of the whiteboard engine (src/wb/engine.h) as boolean
// variables over a hash-consed BDD manager (src/sym/bdd.h).
//
// A board after r writes is encoded with fixed-width slots: slot i < r holds
// the i-th message. Per slot there are two fields —
//   order field  (id_bits wide): the writer's id - 1, the engine-side
//                "who wrote slot i" coordinate that makes the encoding
//                injective on schedules (sat_count over it = executions);
//   message field (msg_bits wide): the message's bits, LSB-first, exactly
//                the BitWriter layout the concrete engine produces;
// plus one wrote-bit per node (w_v = "v's message is on the board").
// Activation variables collapse to the constant TRUE for the simultaneous
// classes the circuit path supports (everyone activates in round one); the
// general SYNC activation predicate is handled by the explicit-frontier
// engine in src/sym/reach.h, which never needs activation variables either.
// Unfilled slots are constrained all-zero.
//
// The `order=` knob of the symbolic sweep spec picks the variable order:
//   interleave (default)  slot 0 [order|message], slot 1 [order|message],
//                         ..., then the wrote-bits;
//   grouped               all order fields, then all message fields, then
//                         the wrote-bits.
//
// A CircuitModel is a per-protocol boolean-circuit form of
// Protocol::compose/output: message_bit builds the bit a writer puts into a
// slot as a function of *earlier* slots (one disjunctive partition of the
// round's transition relation per writer), wrong_outputs builds the set of
// final boards whose decoded output fails the reference validation. Models
// exist for the statically-bounded-width simultaneous protocols
// (two-cliques, rooted-mis, anon-degree); everything else falls back to the
// explicit-frontier engine or a typed refusal.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/graph/graph.h"
#include "src/support/check.h"
#include "src/sym/bdd.h"
#include "src/wb/protocol.h"

namespace wb::sym {

/// Variable-order knob of the `symbolic[:order=...]` sweep spec.
enum class VarOrder { kInterleave, kGrouped };

/// Engine-selection knob (`engine=` token): the circuit image fixpoint, the
/// explicit-frontier engine, or pick automatically (circuit when a model
/// exists).
enum class SymEngine { kAuto, kCircuit, kFrontier };

[[nodiscard]] std::string to_string(VarOrder order);
[[nodiscard]] std::string to_string(SymEngine engine);

/// Typed refusal for everything the symbolic backend does not answer
/// (asynchronous model classes, fault specs, encodings past the variable
/// cap, forced-circuit requests without a circuit model). Derives from
/// DataError so the CLI maps it to the usage exit code (2).
class SymUnsupportedError : public DataError {
 public:
  explicit SymUnsupportedError(const std::string& what)
      : DataError("symbolic backend unsupported: " + what) {}
};

/// Variable layout for one (n, message width, order) instance.
class BoardLayout {
 public:
  BoardLayout(std::size_t n, std::size_t id_bits, std::size_t msg_bits,
              VarOrder order);

  [[nodiscard]] std::size_t n() const noexcept { return n_; }
  [[nodiscard]] std::size_t id_bits() const noexcept { return id_bits_; }
  [[nodiscard]] std::size_t msg_bits() const noexcept { return msg_bits_; }
  [[nodiscard]] std::size_t var_count() const noexcept {
    return n_ * (id_bits_ + msg_bits_) + n_;
  }

  /// Bit b of slot `slot`'s order field (the writer's id - 1, LSB-first).
  [[nodiscard]] std::uint32_t order_bit(std::size_t slot, std::size_t b) const;
  /// Bit b of slot `slot`'s message field (LSB-first, BitWriter layout).
  [[nodiscard]] std::uint32_t msg_bit(std::size_t slot, std::size_t b) const;
  /// Wrote-bit of node v (1-based NodeId).
  [[nodiscard]] std::uint32_t wrote_bit(NodeId v) const;

  /// All variables, ascending — the execution-counting universe.
  [[nodiscard]] std::vector<std::uint32_t> full_universe() const;
  /// All message-field variables, ascending — the distinct-board universe.
  [[nodiscard]] std::vector<std::uint32_t> msg_universe() const;
  /// All order-field and wrote-bit variables, ascending — what a distinct-
  /// board projection quantifies away.
  [[nodiscard]] std::vector<std::uint32_t> non_msg_universe() const;

  // --- circuit-building helpers ---

  /// Cube: slot's order field equals v - 1 ("slot was written by v").
  [[nodiscard]] BddRef slot_written_by(BddManager& m, std::size_t slot,
                                       NodeId v) const;
  /// Cube: the id_bits-wide prefix of slot's message field equals id - 1
  /// (write_id layout — "the message in `slot` is signed by `id`").
  [[nodiscard]] BddRef slot_message_id_is(BddManager& m, std::size_t slot,
                                          NodeId id) const;

 private:
  std::size_t n_, id_bits_, msg_bits_;
  VarOrder order_;
};

class CircuitModel {
 public:
  virtual ~CircuitModel() = default;

  /// Exact per-message width; every message this protocol composes is this
  /// wide (= message_bit_limit(n)).
  [[nodiscard]] virtual std::size_t message_bits() const = 0;

  /// Bit `bit` of the message node v composes for slot `slot`, as a BDD
  /// over the order/message variables of slots < `slot`. Mirrors
  /// Protocol::compose on every board the engine can reach with slots
  /// 0..slot-1 filled.
  [[nodiscard]] virtual BddRef message_bit(BddManager& m,
                                           const BoardLayout& layout, NodeId v,
                                           std::size_t slot,
                                           std::size_t bit) const = 0;

  /// Predicate over the n filled message fields: the decoded output FAILS
  /// the reference validation the CLI runner applies. Mirrors
  /// Protocol::output + the runner's check callback.
  [[nodiscard]] virtual BddRef wrong_outputs(BddManager& m,
                                             const BoardLayout& layout)
      const = 0;
};

/// The circuit registry: a model for the protocols with one (two-cliques,
/// rooted-mis, anon-degree), nullptr otherwise. The returned model borrows
/// `g` and must not outlive it.
[[nodiscard]] std::unique_ptr<CircuitModel> make_circuit_model(
    const Protocol& p, const Graph& g);

}  // namespace wb::sym
