#include "src/sym/bdd.h"

#include <algorithm>

#include "src/support/hash.h"

namespace wb::sym {

namespace {

constexpr std::size_t kInitialUniqueSlots = 1u << 12;
constexpr std::size_t kInitialCacheSlots = 1u << 12;

[[nodiscard]] std::uint64_t node_hash(std::uint32_t var, std::uint32_t lo,
                                      std::uint32_t hi) noexcept {
  std::uint64_t h = (static_cast<std::uint64_t>(var) << 40) ^
                    (static_cast<std::uint64_t>(lo) << 20) ^
                    static_cast<std::uint64_t>(hi);
  return mix64(h);
}

}  // namespace

BddManager::BddManager(std::size_t var_count) : var_count_(var_count) {
  WB_REQUIRE_MSG(var_count < kTerminalVar, "too many BDD variables");
  nodes_.reserve(1u << 12);
  nodes_.push_back(Node{kTerminalVar, kBddFalse, kBddFalse});  // kBddFalse
  nodes_.push_back(Node{kTerminalVar, kBddTrue, kBddTrue});    // kBddTrue
  unique_.assign(kInitialUniqueSlots, 0);
  unique_mask_ = kInitialUniqueSlots - 1;
  cache_.assign(kInitialCacheSlots, CacheEntry{});
  cache_mask_ = kInitialCacheSlots - 1;
  stats_.vars = var_count;
  stats_.nodes = nodes_.size();
}

std::size_t BddManager::unique_slot(std::uint32_t var, BddRef lo,
                                    BddRef hi) const noexcept {
  return static_cast<std::size_t>(node_hash(var, lo, hi)) & unique_mask_;
}

void BddManager::grow_unique_table() {
  const std::size_t new_size = unique_.size() * 2;
  std::vector<std::uint32_t> fresh(new_size, 0);
  unique_mask_ = new_size - 1;
  for (const std::uint32_t slot_value : unique_) {
    if (slot_value == 0) continue;
    const Node& node = nodes_[slot_value - 1];
    std::size_t s = unique_slot(node.var, node.lo, node.hi);
    while (fresh[s] != 0) s = (s + 1) & unique_mask_;
    fresh[s] = slot_value;
  }
  unique_ = std::move(fresh);
}

BddRef BddManager::make_node(std::uint32_t var, BddRef lo, BddRef hi) {
  if (lo == hi) return lo;
  WB_CHECK_MSG(var < rank(lo) && var < rank(hi),
               "BDD variable order violated at variable " << var);
  std::size_t s = unique_slot(var, lo, hi);
  while (unique_[s] != 0) {
    const Node& node = nodes_[unique_[s] - 1];
    if (node.var == var && node.lo == lo && node.hi == hi) {
      ++stats_.unique_hits;
      return unique_[s] - 1;
    }
    s = (s + 1) & unique_mask_;
  }
  ++stats_.unique_misses;
  const BddRef ref = static_cast<BddRef>(nodes_.size());
  WB_REQUIRE_MSG(ref != kInvalid, "BDD node space exhausted");
  nodes_.push_back(Node{var, lo, hi});
  unique_[s] = ref + 1;
  stats_.nodes = nodes_.size();
  // Keep load factor under 2/3 so probe chains stay short.
  if (nodes_.size() * 3 > unique_.size() * 2) grow_unique_table();
  // Scale the computed cache with the node table: a cache much smaller than
  // the function being built thrashes; reallocating clears it, which is
  // sound (it is only a cache).
  if (nodes_.size() > cache_.size()) {
    cache_.assign(cache_.size() * 4, CacheEntry{});
    cache_mask_ = cache_.size() - 1;
  }
  return ref;
}

BddRef BddManager::var(std::uint32_t v) {
  WB_REQUIRE_MSG(v < var_count_, "BDD variable " << v << " out of range");
  return make_node(v, kBddFalse, kBddTrue);
}

BddRef BddManager::nvar(std::uint32_t v) {
  WB_REQUIRE_MSG(v < var_count_, "BDD variable " << v << " out of range");
  return make_node(v, kBddTrue, kBddFalse);
}

BddRef BddManager::ite(BddRef f, BddRef g, BddRef h) {
  ++stats_.ite_calls;
  // Terminal shortcuts (all the standard identities that need no recursion).
  if (f == kBddTrue) return g;
  if (f == kBddFalse) return h;
  if (g == h) return g;
  if (g == kBddTrue && h == kBddFalse) return f;
  if (f == g) g = kBddTrue;       // ite(f, f, h) = ite(f, 1, h)
  else if (f == h) h = kBddFalse; // ite(f, g, f) = ite(f, g, 0)

  ++stats_.cache_lookups;
  const std::uint64_t key = mix64((static_cast<std::uint64_t>(f) << 42) ^
                                  (static_cast<std::uint64_t>(g) << 21) ^
                                  static_cast<std::uint64_t>(h));
  CacheEntry& entry = cache_[static_cast<std::size_t>(key) & cache_mask_];
  if (entry.result != kInvalid && entry.f == f && entry.g == g &&
      entry.h == h) {
    ++stats_.cache_hits;
    return entry.result;
  }

  const std::uint32_t top =
      std::min(rank(f), std::min(rank(g), rank(h)));
  const auto cofactor = [&](BddRef x, bool high) -> BddRef {
    const Node& node = nodes_[x];
    if (node.var != top) return x;
    return high ? node.hi : node.lo;
  };
  const BddRef lo = ite(cofactor(f, false), cofactor(g, false),
                        cofactor(h, false));
  const BddRef hi = ite(cofactor(f, true), cofactor(g, true),
                        cofactor(h, true));
  const BddRef result = make_node(top, lo, hi);
  // The recursion may have reallocated (and cleared) the cache; re-resolve
  // the slot before storing.
  CacheEntry& store = cache_[static_cast<std::size_t>(key) & cache_mask_];
  store = CacheEntry{f, g, h, result};
  return result;
}

BddRef BddManager::cube(std::span<const BddLiteral> lits) {
  BddRef acc = kBddTrue;
  for (std::size_t i = lits.size(); i-- > 0;) {
    const auto [v, phase] = lits[i];
    WB_REQUIRE_MSG(v < var_count_, "BDD variable " << v << " out of range");
    WB_CHECK_MSG(acc == kBddTrue || v < rank(acc),
                 "cube literals must be sorted ascending");
    acc = phase ? make_node(v, kBddFalse, acc) : make_node(v, acc, kBddFalse);
  }
  return acc;
}

BddRef BddManager::exists(BddRef f, std::span<const std::uint32_t> vars) {
  if (vars.empty() || f == kBddFalse || f == kBddTrue) return f;
  std::vector<std::uint8_t> quantified(var_count_, 0);
  std::uint32_t last_var = 0;
  for (std::size_t i = 0; i < vars.size(); ++i) {
    WB_REQUIRE_MSG(vars[i] < var_count_,
                   "BDD variable " << vars[i] << " out of range");
    WB_CHECK_MSG(i == 0 || vars[i] >= last_var,
                 "exists variable set must be sorted ascending");
    last_var = vars[i];
    quantified[vars[i]] = 1;
  }
  std::vector<BddRef> memo(nodes_.size(), kInvalid);
  const auto recurse = [&](auto&& self, BddRef x) -> BddRef {
    if (x == kBddFalse || x == kBddTrue) return x;
    if (memo[x] != kInvalid) return memo[x];
    const Node node = nodes_[x];  // copy: recursion may reallocate nodes_
    const BddRef lo = self(self, node.lo);
    const BddRef hi = self(self, node.hi);
    const BddRef r = quantified[node.var] ? bdd_or(lo, hi)
                                          : make_node(node.var, lo, hi);
    memo[x] = r;
    return r;
  };
  return recurse(recurse, f);
}

BddRef BddManager::substitute(
    BddRef f, std::span<const std::pair<std::uint32_t, std::uint32_t>> pairs) {
  if (pairs.empty() || f == kBddFalse || f == kBddTrue) return f;
  std::vector<std::uint32_t> target(var_count_);
  for (std::uint32_t v = 0; v < var_count_; ++v) target[v] = v;
  std::uint32_t last_from = 0;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const auto [from, to] = pairs[i];
    WB_REQUIRE_MSG(from < var_count_ && to < var_count_,
                   "substitute pair (" << from << "," << to
                                       << ") out of range");
    WB_CHECK_MSG(i == 0 || from > last_from,
                 "substitute pairs must be sorted by source variable");
    last_from = from;
    target[from] = to;
  }
  std::vector<BddRef> memo(nodes_.size(), kInvalid);
  const auto recurse = [&](auto&& self, BddRef x) -> BddRef {
    if (x == kBddFalse || x == kBddTrue) return x;
    if (memo[x] != kInvalid) return memo[x];
    const Node node = nodes_[x];
    const BddRef lo = self(self, node.lo);
    const BddRef hi = self(self, node.hi);
    // make_node rejects order-breaking renames via its ordering check.
    const BddRef r = make_node(target[node.var], lo, hi);
    memo[x] = r;
    return r;
  };
  return recurse(recurse, f);
}

std::uint64_t BddManager::sat_count(
    BddRef f, std::span<const std::uint32_t> universe) const {
  // position[v] = index of v in the universe; kMissing if absent.
  constexpr std::uint32_t kMissing = 0xffffffffu;
  std::vector<std::uint32_t> position(var_count_, kMissing);
  for (std::size_t i = 0; i < universe.size(); ++i) {
    WB_REQUIRE_MSG(universe[i] < var_count_,
                   "universe variable " << universe[i] << " out of range");
    WB_CHECK_MSG(i == 0 || universe[i] > universe[i - 1],
                 "sat_count universe must be strictly ascending");
    position[universe[i]] = static_cast<std::uint32_t>(i);
  }
  const std::uint32_t depth_end = static_cast<std::uint32_t>(universe.size());
  const auto pos_of = [&](BddRef x) -> std::uint32_t {
    if (x == kBddFalse || x == kBddTrue) return depth_end;
    const std::uint32_t p = position[nodes_[x].var];
    WB_CHECK_MSG(p != kMissing, "sat_count universe misses support variable "
                                    << nodes_[x].var);
    return p;
  };
  using U128 = unsigned __int128;
  const auto scale = [](U128 c, std::uint32_t gap) -> U128 {
    if (c == 0) return 0;
    WB_REQUIRE_MSG(gap < 64, "sat_count overflow (more than 2^64 models)");
    const U128 scaled = c << gap;
    WB_REQUIRE_MSG((scaled >> gap) == c,
                   "sat_count overflow (more than 2^64 models)");
    return scaled;
  };
  std::vector<U128> memo(nodes_.size(), ~U128{0});
  // sc(x) = #models of x over the universe suffix starting at pos_of(x).
  // Any node's count lower-bounds the root count (every node is reached by
  // at least one positive-weight path), so clamping per node to 2^64 - 1
  // throws exactly when the final count would, and keeps every __int128
  // intermediate well inside range.
  const auto recurse = [&](auto&& self, BddRef x) -> U128 {
    if (x == kBddFalse) return 0;
    if (x == kBddTrue) return 1;
    if (memo[x] != ~U128{0}) return memo[x];
    const Node& node = nodes_[x];
    const std::uint32_t p = pos_of(x);
    const U128 lo = scale(self(self, node.lo), pos_of(node.lo) - p - 1);
    const U128 hi = scale(self(self, node.hi), pos_of(node.hi) - p - 1);
    const U128 total = lo + hi;
    WB_REQUIRE_MSG(total <= U128{0xffffffffffffffffull},
                   "sat_count overflow (more than 2^64 models)");
    memo[x] = total;
    return total;
  };
  const U128 total = scale(recurse(recurse, f), pos_of(f));
  WB_REQUIRE_MSG(total <= U128{0xffffffffffffffffull},
                 "sat_count overflow (more than 2^64 models)");
  return static_cast<std::uint64_t>(total);
}

bool BddManager::eval(BddRef f, const std::vector<bool>& assignment) const {
  WB_REQUIRE_MSG(assignment.size() >= var_count_,
                 "eval assignment smaller than the variable count");
  while (f != kBddFalse && f != kBddTrue) {
    const Node& node = nodes_[f];
    f = assignment[node.var] ? node.hi : node.lo;
  }
  return f == kBddTrue;
}

}  // namespace wb::sym
