#include "src/cli/spec.h"

#include <charconv>
#include <fstream>
#include <string_view>

#include "src/graph/generators.h"
#include "src/graph/io.h"
#include "src/support/check.h"

namespace wb::cli {

std::vector<std::string> split_spec(const std::string& spec) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = spec.find(':', start);
    if (pos == std::string::npos) {
      parts.push_back(spec.substr(start));
      return parts;
    }
    parts.push_back(spec.substr(start, pos - start));
    start = pos + 1;
  }
}

std::uint64_t parse_u64(const std::string& field, const std::string& what) {
  std::uint64_t value = 0;
  const auto* begin = field.data();
  const auto* end = begin + field.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  WB_REQUIRE_MSG(ec == std::errc{} && ptr == end,
                 "bad " << what << ": '" << field << "'");
  return value;
}

std::pair<std::uint64_t, std::uint64_t> parse_prob(const std::string& field) {
  const std::size_t slash = field.find('/');
  WB_REQUIRE_MSG(slash != std::string::npos,
                 "probability must be NUM/DEN, got '" << field << "'");
  const std::uint64_t num = parse_u64(field.substr(0, slash), "numerator");
  const std::uint64_t den = parse_u64(field.substr(slash + 1), "denominator");
  WB_REQUIRE_MSG(den > 0 && num <= den, "probability out of range: " << field);
  return {num, den};
}

namespace {

void expect_arity(const std::vector<std::string>& parts, std::size_t arity,
                  const char* usage) {
  WB_REQUIRE_MSG(parts.size() == arity, "expected spec " << usage);
}

}  // namespace

Graph graph_from_spec(const std::string& spec) {
  const auto parts = split_spec(spec);
  const std::string& kind = parts[0];
  if (kind == "file") {
    // The path may itself contain colons: take everything after "file:".
    WB_REQUIRE_MSG(spec.size() > 5, "file spec must be file:PATH");
    const std::string path = spec.substr(5);
    std::ifstream in(path, std::ios::binary);
    WB_REQUIRE_MSG(in.is_open(), "cannot open edge-list file '" << path << "'");
    return read_edge_list(in);
  }
  if (kind == "rmat") {
    expect_arity(parts, 4, "rmat:SCALE:EF:SEED");
    return rmat_graph(static_cast<int>(parse_u64(parts[1], "scale")),
                      parse_u64(parts[2], "edge factor"),
                      parse_u64(parts[3], "seed"));
  }
  if (kind == "powerlaw") {
    expect_arity(parts, 4, "powerlaw:N:EF:SEED");
    return random_power_law(parse_u64(parts[1], "N"),
                            parse_u64(parts[2], "edge factor"),
                            /*exponent=*/2.5, parse_u64(parts[3], "seed"));
  }
  if (kind == "path") {
    expect_arity(parts, 2, "path:N");
    return path_graph(parse_u64(parts[1], "N"));
  }
  if (kind == "cycle") {
    expect_arity(parts, 2, "cycle:N");
    return cycle_graph(parse_u64(parts[1], "N"));
  }
  if (kind == "complete") {
    expect_arity(parts, 2, "complete:N");
    return complete_graph(parse_u64(parts[1], "N"));
  }
  if (kind == "star") {
    expect_arity(parts, 2, "star:N");
    return star_graph(parse_u64(parts[1], "N"));
  }
  if (kind == "grid") {
    expect_arity(parts, 2, "grid:RxC");
    const std::size_t x = parts[1].find('x');
    WB_REQUIRE_MSG(x != std::string::npos, "grid spec must be grid:RxC");
    return grid_graph(parse_u64(parts[1].substr(0, x), "rows"),
                      parse_u64(parts[1].substr(x + 1), "cols"));
  }
  if (kind == "twocliques") {
    expect_arity(parts, 2, "twocliques:N");
    return two_cliques(parse_u64(parts[1], "N"));
  }
  if (kind == "switched") {
    expect_arity(parts, 2, "switched:N");
    return two_cliques_switched(parse_u64(parts[1], "N"));
  }
  if (kind == "tree") {
    expect_arity(parts, 3, "tree:N:SEED");
    return random_tree(parse_u64(parts[1], "N"), parse_u64(parts[2], "seed"));
  }
  if (kind == "forest") {
    expect_arity(parts, 4, "forest:N:PCT:SEED");
    return random_forest(parse_u64(parts[1], "N"),
                         static_cast<int>(parse_u64(parts[2], "percent")),
                         parse_u64(parts[3], "seed"));
  }
  if (kind == "kdeg") {
    expect_arity(parts, 5, "kdeg:N:K:PCT:SEED");
    return random_k_degenerate(parse_u64(parts[1], "N"),
                               static_cast<int>(parse_u64(parts[2], "K")),
                               static_cast<int>(parse_u64(parts[3], "percent")),
                               parse_u64(parts[4], "seed"));
  }
  if (kind == "gnp" || kind == "cgnp" || kind == "eob" || kind == "ceob") {
    expect_arity(parts, 4, "gnp:N:NUM/DEN:SEED");
    const std::uint64_t n = parse_u64(parts[1], "N");
    const auto [num, den] = parse_prob(parts[2]);
    const std::uint64_t seed = parse_u64(parts[3], "seed");
    if (kind == "gnp") return erdos_renyi(n, num, den, seed);
    if (kind == "cgnp") return connected_gnp(n, num, den, seed);
    if (kind == "eob") return random_even_odd_bipartite(n, num, den, seed);
    return connected_even_odd_bipartite(n, num, den, seed);
  }
  if (kind == "bipartite") {
    expect_arity(parts, 5, "bipartite:A:B:NUM/DEN:SEED");
    const auto [num, den] = parse_prob(parts[3]);
    return random_bipartite(parse_u64(parts[1], "A"), parse_u64(parts[2], "B"),
                            num, den, parse_u64(parts[4], "seed"));
  }
  WB_REQUIRE_MSG(false, "unknown graph kind '" << kind << "'\n"
                                               << graph_spec_help());
  return Graph(0);  // unreachable
}

std::unique_ptr<Adversary> adversary_from_spec(const std::string& spec,
                                               const Graph& g) {
  const auto parts = split_spec(spec);
  const std::string& kind = parts[0];
  if (kind == "first") return std::make_unique<FirstAdversary>();
  if (kind == "last") return std::make_unique<LastAdversary>();
  if (kind == "rotating") return std::make_unique<RotatingAdversary>();
  if (kind == "maxdeg") return std::make_unique<MaxDegreeAdversary>(g);
  if (kind == "mindeg") return std::make_unique<MinDegreeAdversary>(g);
  if (kind == "random") {
    expect_arity(parts, 2, "random:SEED");
    return std::make_unique<RandomAdversary>(parse_u64(parts[1], "seed"));
  }
  WB_REQUIRE_MSG(false, "unknown adversary '" << kind << "'\n"
                                              << adversary_spec_help());
  return nullptr;  // unreachable
}

bool is_exhaustive_spec(const std::string& spec) {
  return split_spec(spec)[0] == "exhaustive";
}

SweepSpec sweep_from_spec(const std::string& spec) {
  SweepSpec out;
  // The hll config itself contains a colon (hll:14), so `distinct=` is
  // defined as the final option: everything after it is the config text.
  std::string head = spec;
  constexpr std::string_view kDistinctKey = ":distinct=";
  const std::size_t distinct_pos = spec.find(kDistinctKey);
  if (distinct_pos != std::string::npos) {
    out.distinct =
        parse_distinct_config(spec.substr(distinct_pos + kDistinctKey.size()));
    head = spec.substr(0, distinct_pos);
  }
  // Fault specs contain colons too (crash:1, adaptive:SEED:TRIALS), so
  // `faults=` is the last option before distinct=: everything after it in
  // the remaining head is the fault spec text.
  constexpr std::string_view kFaultsKey = ":faults=";
  const std::size_t faults_pos = head.find(kFaultsKey);
  if (faults_pos != std::string::npos) {
    out.faults =
        parse_fault_spec(head.substr(faults_pos + kFaultsKey.size()));
    head = head.substr(0, faults_pos);
  }
  const auto parts = split_spec(head);
  WB_REQUIRE_MSG(parts[0] == "exhaustive",
                 "not an exhaustive spec: '" << spec << "'");
  constexpr std::string_view kShardsKey = "shards=";
  constexpr std::string_view kBudgetKey = "budget=";
  bool seen_threads = false;
  bool seen_shards = false;
  bool seen_budget = false;
  const auto reject_duplicate = [&](bool seen, const char* what) {
    WB_REQUIRE_MSG(!seen, "duplicate " << what << " in sweep spec '" << spec
                                       << "'");
  };
  for (std::size_t i = 1; i < parts.size(); ++i) {
    const std::string& token = parts[i];
    if (token == "memoize") {
      reject_duplicate(out.memoize, "memoize option");
      out.memoize = true;
      continue;
    }
    if (token.starts_with(kShardsKey)) {
      reject_duplicate(seen_shards, "shards= option");
      seen_shards = true;
      out.shards = static_cast<std::size_t>(
          parse_u64(token.substr(kShardsKey.size()), "shard count"));
      WB_REQUIRE_MSG(out.shards >= 1, "shard count must be at least 1");
      continue;
    }
    if (token.starts_with(kBudgetKey)) {
      reject_duplicate(seen_budget, "budget= option");
      seen_budget = true;
      out.max_executions =
          parse_u64(token.substr(kBudgetKey.size()), "budget");
      WB_REQUIRE_MSG(out.max_executions >= 1, "budget must be at least 1");
      continue;
    }
    // A bare number is the thread count; canonically it comes first, but
    // the legacy `exhaustive:shards=K:T` order is still accepted.
    reject_duplicate(seen_threads, "thread count");
    seen_threads = true;
    WB_REQUIRE_MSG(
        !token.empty() && token.find_first_not_of("0123456789") ==
                              std::string::npos,
        "expected exhaustive[:THREADS][:shards=K][:budget=N][:faults=F]"
        "[:distinct=exact|hll[:P]], got '"
            << spec << "'");
    out.threads = static_cast<std::size_t>(parse_u64(token, "threads"));
  }
  if (out.memoize) {
    // The memo table is a serial in-process structure, and its soundness
    // argument (board + written set determine the future) is fault-free.
    WB_REQUIRE_MSG(out.threads <= 1,
                   "memoized sweeps are serial — drop the thread count in '"
                       << spec << "'");
    WB_REQUIRE_MSG(out.shards == 0,
                   "memoize does not combine with shards= in '" << spec << "'");
    WB_REQUIRE_MSG(out.faults.kind == FaultKind::kNone,
                   "memoize does not combine with faults= in '" << spec << "'");
  }
  return out;
}

std::string format_sweep_spec(const SweepSpec& spec) {
  std::string out = "exhaustive";
  if (spec.threads != 0) out += ":" + std::to_string(spec.threads);
  if (spec.memoize) out += ":memoize";
  if (spec.shards != 0) out += ":shards=" + std::to_string(spec.shards);
  if (spec.max_executions != kDefaultSweepBudget) {
    out += ":budget=" + std::to_string(spec.max_executions);
  }
  if (spec.faults.kind != FaultKind::kNone) {
    out += ":faults=" + fault_spec_to_string(spec.faults);
  }
  if (!(spec.distinct == DistinctConfig{})) {
    out += ":distinct=" + to_string(spec.distinct);
  }
  return out;
}

bool is_symbolic_spec(const std::string& spec) {
  return split_spec(spec)[0] == "symbolic";
}

SymbolicSpec symbolic_from_spec(const std::string& spec) {
  SymbolicSpec out;
  const auto parts = split_spec(spec);
  WB_REQUIRE_MSG(parts[0] == "symbolic",
                 "not a symbolic spec: '" << spec << "'");
  constexpr std::string_view kOrderKey = "order=";
  constexpr std::string_view kEngineKey = "engine=";
  bool seen_order = false;
  bool seen_engine = false;
  for (std::size_t i = 1; i < parts.size(); ++i) {
    const std::string& token = parts[i];
    if (token.starts_with(kOrderKey)) {
      WB_REQUIRE_MSG(!seen_order,
                     "duplicate order= option in symbolic spec '" << spec
                                                                  << "'");
      seen_order = true;
      const std::string value = token.substr(kOrderKey.size());
      if (value == "interleave") {
        out.order = sym::VarOrder::kInterleave;
      } else if (value == "grouped") {
        out.order = sym::VarOrder::kGrouped;
      } else {
        WB_REQUIRE_MSG(false, "order= must be interleave or grouped, got '"
                                  << value << "'");
      }
      continue;
    }
    if (token.starts_with(kEngineKey)) {
      WB_REQUIRE_MSG(!seen_engine,
                     "duplicate engine= option in symbolic spec '" << spec
                                                                   << "'");
      seen_engine = true;
      const std::string value = token.substr(kEngineKey.size());
      if (value == "auto") {
        out.engine = sym::SymEngine::kAuto;
      } else if (value == "circuit") {
        out.engine = sym::SymEngine::kCircuit;
      } else if (value == "frontier") {
        out.engine = sym::SymEngine::kFrontier;
      } else {
        WB_REQUIRE_MSG(false, "engine= must be auto, circuit or frontier, "
                              "got '"
                                  << value << "'");
      }
      continue;
    }
    // Enumerator options get the typed refusal so callers (and exit codes)
    // can tell "the backend does not do this" from "you typo'd the spec".
    if (token.starts_with("faults=")) {
      throw sym::SymUnsupportedError(
          "fault models — the BDD transition relation is fault-free; use "
          "exhaustive:faults=...");
    }
    if (token.starts_with("distinct=")) {
      throw sym::SymUnsupportedError(
          "distinct= accumulators — the symbolic distinct count is exact by "
          "construction");
    }
    if (token.starts_with("budget=")) {
      throw sym::SymUnsupportedError(
          "budget= — no schedules are enumerated, so there is no execution "
          "budget to bound");
    }
    if (token.starts_with("shards=")) {
      throw sym::SymUnsupportedError(
          "shards= — the symbolic sweep is one in-process fixpoint");
    }
    if (!token.empty() &&
        token.find_first_not_of("0123456789") == std::string::npos) {
      throw sym::SymUnsupportedError(
          "thread counts — the symbolic sweep is one in-process fixpoint");
    }
    WB_REQUIRE_MSG(false,
                   "expected symbolic[:order=interleave|grouped]"
                   "[:engine=auto|circuit|frontier], got '"
                       << spec << "'");
  }
  return out;
}

std::string format_symbolic_spec(const SymbolicSpec& spec) {
  std::string out = "symbolic";
  if (spec.order != sym::VarOrder::kInterleave) {
    out += ":order=" + sym::to_string(spec.order);
  }
  if (spec.engine != sym::SymEngine::kAuto) {
    out += ":engine=" + sym::to_string(spec.engine);
  }
  return out;
}

std::string graph_spec_help() {
  return "graphs: path:N cycle:N complete:N star:N grid:RxC twocliques:N\n"
         "        switched:N tree:N:SEED forest:N:PCT:SEED kdeg:N:K:PCT:SEED\n"
         "        gnp:N:NUM/DEN:SEED cgnp:N:NUM/DEN:SEED eob:N:NUM/DEN:SEED\n"
         "        ceob:N:NUM/DEN:SEED bipartite:A:B:NUM/DEN:SEED\n"
         "        rmat:SCALE:EF:SEED powerlaw:N:EF:SEED file:PATH";
}

std::string adversary_spec_help() {
  return "adversaries: first last rotating maxdeg mindeg random:SEED";
}

}  // namespace wb::cli
