// Protocol runner registry for wbsim: constructs a protocol from its spec,
// runs it on a graph under an adversary, validates the output against the
// centralized reference algorithms, and renders a one-screen report.
#pragma once

#include <string>

#include "src/graph/graph.h"
#include "src/wb/adversary.h"

namespace wb::cli {

struct RunReport {
  bool executed = false;  // run reached a terminal engine state
  bool correct = false;   // output validated against the reference
  std::string status;     // engine status string
  std::string summary;    // multi-line human-readable report
};

/// Run `protocol_spec` on `g` under `adversary`. Throws wb::DataError for
/// unknown protocol specs.
[[nodiscard]] RunReport run_protocol_spec(const std::string& protocol_spec,
                                          const Graph& g, Adversary& adversary);

/// List of known protocol specs for --help.
[[nodiscard]] std::string protocol_spec_help();

}  // namespace wb::cli
