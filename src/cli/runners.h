// Protocol runner registry for wbsim: constructs a protocol from its spec,
// runs it on a graph under an adversary (or the whole standard battery, in
// parallel), validates the output against the centralized reference
// algorithms, and renders a one-screen report.
//
// All execution — single runs included — goes through the batch engine
// (src/wb/batch.h), so the CLI exercises the same code path the parallel
// sweeps use. The exhaustive and sharded entry points below drive the
// explorer (src/wb/exhaustive.h) and its distributed layer (src/wb/shard.h)
// with the same per-protocol validation callbacks.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/graph/graph.h"
#include "src/sym/encode.h"
#include "src/wb/adversary.h"
#include "src/wb/batch.h"
#include "src/wb/shard.h"

namespace wb::cli {

struct RunReport {
  bool executed = false;   // run reached a terminal engine state
  bool correct = false;    // output validated against the reference
  std::string adversary;   // strategy the run was scheduled by
  std::string status;      // engine status string
  std::string summary;     // multi-line human-readable report
  /// Exhaustive runs with counterexample tracking: the smallest-prefix
  /// failing schedule as a space-separated write order ("" = none found or
  /// not requested).
  std::string counterexample;
  /// Numeric totals of exhaustive and fault sweeps (0/false elsewhere) —
  /// what the verdict-matrix generator consumes without re-parsing the
  /// human-readable summary.
  std::uint64_t executions = 0;
  std::uint64_t engine_failures = 0;
  std::uint64_t wrong_outputs = 0;
  std::uint64_t fault_worlds = 0;
  /// Statistical (adaptive-adversary) sweeps: sampled trials instead of an
  /// exhaustive visit set, with the verdict tally for Wilson intervals.
  bool statistical = false;
  std::uint64_t verdict_trials = 0;
  std::uint64_t verdict_failures = 0;
};

/// Run `protocol_spec` on `g` under `adversary`. Throws wb::DataError for
/// unknown protocol specs.
[[nodiscard]] RunReport run_protocol_spec(const std::string& protocol_spec,
                                          const Graph& g, Adversary& adversary);

/// Run `protocol_spec` on `g` under every strategy of the standard adversary
/// battery (seeded with `seed`), fanned out across the batch engine's thread
/// pool. Reports are in battery order and deterministic for any thread count.
[[nodiscard]] std::vector<RunReport> run_protocol_spec_battery(
    const std::string& protocol_spec, const Graph& g, std::uint64_t seed,
    const BatchOptions& opts = {});

struct ExhaustiveRunOptions {
  /// Sweep workers: 0 = one per hardware thread, 1 = the serial oracle.
  std::size_t threads = 0;
  std::uint64_t max_executions = 2'000'000;
  /// Track the smallest-prefix failing schedule (lexicographically smallest
  /// failing write order) and report it. Deterministic at any thread count:
  /// the serial sweep stops at its first failure — which DFS order makes the
  /// minimum — while parallel sweeps keep the running minimum over every
  /// failure they visit.
  bool counterexample = false;
  /// Hash-consed state memoization (wb::sweep_memoized): serial, fault-free,
  /// no counterexample tracking; the report's schedules/verdict lines are
  /// byte-identical to the unmemoized serial sweep's.
  bool memoize = false;
  /// Distinct-board accumulator (src/wb/distinct.h): exact sorted-run dedup
  /// (default) or a HyperLogLog estimate with flat memory.
  DistinctConfig distinct{};
  /// Failure model (src/wb/faults.h). Fault-free sweeps are byte-identical
  /// to the pre-fault runner; crash/corruption models sweep every fault
  /// world exhaustively; the adaptive model samples seeded trials and
  /// reports a statistical verdict with a Wilson confidence interval.
  FaultSpec faults{};
  /// Nonzero = sample this many seeded trials of the configured failure
  /// model instead of sweeping exhaustively (any fault kind, fault-free
  /// included). This is how the verdict matrix (src/cli/verdicts.h) falls
  /// back to a statistical verdict when a cell's schedule space exceeds the
  /// budget. Adaptive specs are always statistical and ignore this knob in
  /// favor of their own trial count.
  std::uint64_t statistical_trials = 0;
};

/// Exhaustively validate `protocol_spec` on `g`: visit *every* adversary
/// schedule (the paper's correctness quantifier), fanned out across the
/// shared worker pool, and validate each execution's output against the
/// reference algorithms. The report is deterministic at any thread count.
/// Throws wb::BudgetExceededError when the schedule space exceeds
/// opts.max_executions.
[[nodiscard]] RunReport run_protocol_spec_exhaustive(
    const std::string& protocol_spec, const Graph& g,
    const ExhaustiveRunOptions& opts);

/// Convenience overload matching the historical signature.
[[nodiscard]] RunReport run_protocol_spec_exhaustive(
    const std::string& protocol_spec, const Graph& g, std::size_t threads = 0,
    std::uint64_t max_executions = 2'000'000);

struct SymbolicRunOptions {
  sym::VarOrder order = sym::VarOrder::kInterleave;
  sym::SymEngine engine = sym::SymEngine::kAuto;
};

/// Validate `protocol_spec` on `g` with the symbolic (BDD) backend
/// (src/sym/reach.h): the same exact schedules/distinct/verdict accounting
/// as run_protocol_spec_exhaustive with threads=1, computed without
/// enumerating any schedule. Throws wb::sym::SymUnsupportedError for model
/// classes and options the backend refuses (CLI exit 2).
[[nodiscard]] RunReport run_protocol_spec_symbolic(
    const std::string& protocol_spec, const Graph& g,
    const SymbolicRunOptions& opts = {});

/// Plan a sharded exhaustive sweep: construct the protocol named by
/// `protocol_spec`, partition its schedule tree on `g`, and distribute the
/// subtree prefixes round-robin over `shard_count` self-describing specs
/// (serialize with wb::shard::serialize, run anywhere, merge with
/// merge_shard_results).
[[nodiscard]] std::vector<shard::ShardSpec> plan_protocol_spec_shards(
    const std::string& protocol_spec, const Graph& g, std::size_t shard_count,
    const shard::PlanOptions& opts = {});

/// Run one shard of a planned sweep: constructs the protocol from the spec
/// embedded in `spec` and validates every successful execution's output
/// against the reference algorithms (exactly the checks the exhaustive
/// runner applies, so merged tallies are bit-identical to its report).
[[nodiscard]] shard::ShardResult run_protocol_spec_shard(
    const shard::ShardSpec& spec, std::size_t threads = 0);

/// The "schedules ... / verdict ..." report lines shared by the exhaustive
/// runner and the shard-merge CLI — byte-identical formatting is what lets
/// CI diff a merged sharded sweep against the `exhaustive:1` oracle. The
/// exact-mode lines are unchanged since PR 4; an hll sweep marks its
/// distinct count as the estimate it is ("~N distinct final boards
/// (hll:P)"), identically in both the in-process and the merged report.
[[nodiscard]] std::string exhaustive_summary_lines(
    std::uint64_t executions, std::uint64_t engine_failures,
    std::uint64_t wrong_outputs, std::uint64_t distinct_boards,
    const DistinctConfig& distinct = {});

/// List of known protocol specs for --help.
[[nodiscard]] std::string protocol_spec_help();

}  // namespace wb::cli
