// Protocol runner registry for wbsim: constructs a protocol from its spec,
// runs it on a graph under an adversary (or the whole standard battery, in
// parallel), validates the output against the centralized reference
// algorithms, and renders a one-screen report.
//
// All execution — single runs included — goes through the batch engine
// (src/wb/batch.h), so the CLI exercises the same code path the parallel
// sweeps use.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/graph/graph.h"
#include "src/wb/adversary.h"
#include "src/wb/batch.h"

namespace wb::cli {

struct RunReport {
  bool executed = false;   // run reached a terminal engine state
  bool correct = false;    // output validated against the reference
  std::string adversary;   // strategy the run was scheduled by
  std::string status;      // engine status string
  std::string summary;     // multi-line human-readable report
};

/// Run `protocol_spec` on `g` under `adversary`. Throws wb::DataError for
/// unknown protocol specs.
[[nodiscard]] RunReport run_protocol_spec(const std::string& protocol_spec,
                                          const Graph& g, Adversary& adversary);

/// Run `protocol_spec` on `g` under every strategy of the standard adversary
/// battery (seeded with `seed`), fanned out across the batch engine's thread
/// pool. Reports are in battery order and deterministic for any thread count.
[[nodiscard]] std::vector<RunReport> run_protocol_spec_battery(
    const std::string& protocol_spec, const Graph& g, std::uint64_t seed,
    const BatchOptions& opts = {});

/// Exhaustively validate `protocol_spec` on `g`: visit *every* adversary
/// schedule (the paper's correctness quantifier), fanned out across the
/// shared worker pool (`threads`: 0 = one worker per hardware thread, 1 =
/// serial), and validate each execution's output against the reference
/// algorithms. The report is deterministic at any thread count. Throws
/// wb::LogicError when the schedule space exceeds `max_executions`.
[[nodiscard]] RunReport run_protocol_spec_exhaustive(
    const std::string& protocol_spec, const Graph& g, std::size_t threads = 0,
    std::uint64_t max_executions = 2'000'000);

/// List of known protocol specs for --help.
[[nodiscard]] std::string protocol_spec_help();

}  // namespace wb::cli
