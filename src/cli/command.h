// The wbsim command registry.
//
// PR 6 replaced the tool's ad-hoc `if (command == ...)` dispatch with a
// declarative table: each subcommand registers its name, a one-line summary,
// and its usage text, and `wbsim help [CMD]` is *generated* from that table,
// so a command cannot exist without appearing in the help. The registry also
// centralizes the exit-code conventions every wbsim invocation obeys:
//
//   0  the run completed and every verdict was PASS
//   1  the run completed but something FAILed (wrong output, missing shard)
//   2  bad input — malformed spec/file/flags (wb::DataError)
//   3  a bug in wbsim itself (wb::LogicError)
//
// Handlers signal 2/3 by throwing; CommandRegistry::main catches at the top
// and maps to the exit code, so no handler hand-rolls error printing.
#pragma once

#include <functional>
#include <string>
#include <vector>

namespace wb::cli {

/// Shared exit-code conventions (see file comment).
inline constexpr int kExitPass = 0;
inline constexpr int kExitFail = 1;
inline constexpr int kExitUsage = 2;
inline constexpr int kExitBug = 3;

struct Command {
  /// Subcommand token ("shard-plan"). Must be unique in a registry.
  std::string name;
  /// One line for the `wbsim help` table.
  std::string summary;
  /// Full usage text for `wbsim help <name>`: synopsis line(s) first, then
  /// any option/format paragraphs.
  std::string usage;
  /// Arguments after the command token. Throws wb::DataError for bad
  /// invocations; returns an exit code otherwise.
  std::function<int(const std::vector<std::string>& args)> run;
};

class CommandRegistry {
 public:
  /// `program` is the name printed in generated help ("wbsim").
  explicit CommandRegistry(std::string program);

  /// Register a subcommand. Duplicate names are a bug (WB_CHECK).
  void add(Command command);

  /// The commandless invocation (`wbsim <graph> <protocol> ...`). Its usage
  /// text leads the overview; its handler receives every argument.
  void set_default(Command command);

  /// The generated `help` output: default synopsis, then one aligned
  /// `name  summary` row per registered command.
  [[nodiscard]] std::string overview() const;

  /// The generated `help <name>` output. Throws wb::DataError for an
  /// unknown name (listing the known ones).
  [[nodiscard]] std::string help_for(const std::string& name) const;

  /// Route one invocation: `help [CMD]` and `--help`/`-h` answer from the
  /// table; a registered name runs its handler with the remaining
  /// arguments; anything else falls through to the default command.
  /// Exceptions escape to main() below.
  [[nodiscard]] int dispatch(const std::vector<std::string>& args) const;

  /// dispatch() plus the top-level exception mapping: DataError prints
  /// `error: ...` and returns kExitUsage, LogicError prints
  /// `internal error: ...` and returns kExitBug.
  [[nodiscard]] int main(int argc, char** argv) const;

 private:
  std::string program_;
  std::vector<Command> commands_;
  Command default_command_;
};

}  // namespace wb::cli
