#include "src/cli/verdicts.h"

#include <cstdio>

#include "src/cli/spec.h"
#include "src/support/check.h"
#include "src/wb/faults.h"

namespace wb::cli {
namespace {

/// The zoo: one small instance per protocol runner, sized so the fault-free
/// and crash/corrupt sweeps stay exhaustive within kVerdictCellBudget — plus
/// one deliberately oversized instance (build-forest on 9 nodes, 9! = 362880
/// schedules) that exercises the statistical fallback, and one deliberately
/// broken
/// protocol (broken-first plants a first-writer "prediction" the adversary
/// falsifies) so the matrix pins nonzero failure tallies too.
struct ZooEntry {
  const char* protocol;
  const char* graph;
};

constexpr ZooEntry kZoo[] = {
    {"build-forest", "path:4"},
    {"build-degenerate:2", "cycle:4"},
    {"build-full", "path:3"},
    {"mis:1", "path:4"},
    {"two-cliques", "twocliques:2"},
    {"rand-two-cliques:11", "twocliques:2"},
    {"eob-bfs", "ceob:4:1/2:2"},
    {"bipartite-bfs", "cycle:4"},
    {"sync-bfs", "path:4"},
    {"build-forest", "path:9"},
    {"subgraph:2", "gnp:4:1/2:1"},
    {"triangle-oracle", "complete:3"},
    {"pair-chase", "complete:4"},
    {"spanning-forest", "path:4"},
    {"square-oracle", "cycle:4"},
    {"diameter-oracle:2", "star:4"},
    {"connectivity-oracle", "twocliques:2"},
    {"krz-triangle:1/2:2", "complete:3"},
    {"broken-first:1", "path:3"},
};

/// The failure-model columns. crash:1 sweeps every <=1-crash world;
/// corrupt flips/truncates posted messages with p=1/8; adaptive samples
/// 256 seeded trials of the randomized schedule+crash policy.
const FaultSpec kColumns[] = {
    FaultSpec::None(),
    FaultSpec::Crash(1),
    FaultSpec::Corrupt(1, 8, 1),
    FaultSpec::Adaptive(7, 256),
};

std::string format_fixed4(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.4f", value);
  return buffer;
}

VerdictCell cell_from_report(const std::string& protocol_spec,
                             const std::string& graph_spec,
                             const FaultSpec& faults, const RunReport& report) {
  VerdictCell cell;
  cell.protocol_spec = protocol_spec;
  cell.graph_spec = graph_spec;
  cell.faults = faults;
  cell.statistical = report.statistical;
  // The fault-free sweep is the one-world special case of the fault sweep.
  cell.worlds = report.fault_worlds > 0 ? report.fault_worlds : 1;
  cell.executions = report.executions;
  cell.engine_failures = report.engine_failures;
  cell.wrong_outputs = report.wrong_outputs;
  cell.verdict_trials = report.verdict_trials;
  cell.verdict_failures = report.verdict_failures;
  return cell;
}

}  // namespace

VerdictCell run_verdict_cell(const std::string& protocol_spec,
                             const std::string& graph_spec,
                             const FaultSpec& faults, std::size_t threads) {
  const Graph g = graph_from_spec(graph_spec);
  ExhaustiveRunOptions opts;
  opts.threads = threads;
  opts.max_executions = kVerdictCellBudget;
  opts.faults = faults;
  try {
    return cell_from_report(protocol_spec, graph_spec, faults,
                            run_protocol_spec_exhaustive(protocol_spec, g,
                                                         opts));
  } catch (const BudgetExceededError&) {
    // The exhaustive space doesn't fit the budget: sample the same failure
    // model instead and report a statistical verdict.
    opts.statistical_trials = kFallbackTrials;
    return cell_from_report(protocol_spec, graph_spec, faults,
                            run_protocol_spec_exhaustive(protocol_spec, g,
                                                         opts));
  }
}

std::string format_verdict_cell(const VerdictCell& cell) {
  std::string line = "cell " + cell.protocol_spec + " " + cell.graph_spec +
                     " " + fault_spec_to_string(cell.faults);
  if (cell.statistical) {
    const VerdictAccumulator verdict(cell.verdict_trials,
                                     cell.verdict_failures);
    const WilsonInterval ci = verdict.wilson();
    line += " mode=statistical trials=" + std::to_string(verdict.trials()) +
            " failures=" + std::to_string(verdict.failures()) +
            " rate=" + format_fixed4(verdict.failure_rate()) +
            " ci=" + format_fixed4(ci.lo) + ".." + format_fixed4(ci.hi);
  } else {
    line += " mode=exhaustive worlds=" + std::to_string(cell.worlds) +
            " executions=" + std::to_string(cell.executions) +
            " failures=" + std::to_string(cell.engine_failures) +
            " wrong=" + std::to_string(cell.wrong_outputs);
  }
  return line + "\n";
}

std::string generate_verdict_matrix(const std::string& filter,
                                    std::size_t threads) {
  std::string out = "wb-verdicts v1\n";
  std::size_t rows = 0;
  for (const ZooEntry& entry : kZoo) {
    if (!filter.empty() &&
        std::string(entry.protocol).find(filter) == std::string::npos) {
      continue;
    }
    ++rows;
    for (const FaultSpec& faults : kColumns) {
      out += format_verdict_cell(
          run_verdict_cell(entry.protocol, entry.graph, faults, threads));
    }
  }
  WB_REQUIRE_MSG(rows > 0, "no zoo protocol matches filter '" << filter
                                                              << "'");
  out += "end\n";
  return out;
}

}  // namespace wb::cli
