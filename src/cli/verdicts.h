// The verdict matrix: every protocol of the zoo crossed with every failure
// model (src/wb/faults.h), swept exhaustively where the schedule/world space
// fits a budget and statistically (sampled trials with a Wilson confidence
// interval) where it does not.
//
// The matrix is a deterministic text artifact (`wb-verdicts v1`) committed at
// tests/wb/data/verdicts.golden: `wbsim verdicts` regenerates it and CI diffs
// the bytes, so any change to engine semantics, fault injection, classifier
// verdicts, or protocol decoders shows up as a reviewable golden diff.
#pragma once

#include <cstdint>
#include <string>

#include "src/cli/runners.h"

namespace wb::cli {

/// One (protocol, graph, failure model) cell.
struct VerdictCell {
  std::string protocol_spec;
  std::string graph_spec;
  FaultSpec faults{};
  /// False: every fault world swept exhaustively (worlds/executions below
  /// are exact totals). True: sampled trials with a verdict tally — either
  /// an adaptive spec (always statistical) or the budget fallback.
  bool statistical = false;
  std::uint64_t worlds = 0;
  std::uint64_t executions = 0;
  std::uint64_t engine_failures = 0;
  std::uint64_t wrong_outputs = 0;
  std::uint64_t verdict_trials = 0;
  std::uint64_t verdict_failures = 0;
};

/// Execution budget per cell: a cell whose exhaustive space exceeds this
/// falls back to a statistical verdict over kFallbackTrials sampled trials
/// of the same failure model.
inline constexpr std::uint64_t kVerdictCellBudget = 100'000;
inline constexpr std::uint64_t kFallbackTrials = 512;

/// Run one cell. Exhaustive first (except adaptive specs, which are
/// statistical by definition); on BudgetExceededError, rerun statistically.
[[nodiscard]] VerdictCell run_verdict_cell(const std::string& protocol_spec,
                                           const std::string& graph_spec,
                                           const FaultSpec& faults,
                                           std::size_t threads = 0);

/// One serialized `cell ...` line (no trailing context, "\n"-terminated).
[[nodiscard]] std::string format_verdict_cell(const VerdictCell& cell);

/// The full matrix: the protocol zoo x {none, crash:1, corrupt, adaptive},
/// serialized as the `wb-verdicts v1` artifact. `filter` (substring of the
/// protocol spec) restricts to matching rows — the filtered output is the
/// corresponding subset of the full matrix's cell lines.
[[nodiscard]] std::string generate_verdict_matrix(const std::string& filter,
                                                  std::size_t threads = 0);

}  // namespace wb::cli
