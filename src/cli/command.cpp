#include "src/cli/command.h"

#include <algorithm>
#include <cstdio>

#include "src/support/check.h"

namespace wb::cli {

CommandRegistry::CommandRegistry(std::string program)
    : program_(std::move(program)) {}

void CommandRegistry::add(Command command) {
  WB_CHECK_MSG(!command.name.empty(), "a subcommand needs a name");
  WB_CHECK_MSG(command.run != nullptr,
               "command '" << command.name << "' has no handler");
  const bool duplicate =
      std::any_of(commands_.begin(), commands_.end(),
                  [&](const Command& c) { return c.name == command.name; });
  WB_CHECK_MSG(!duplicate,
               "command '" << command.name << "' registered twice");
  commands_.push_back(std::move(command));
}

void CommandRegistry::set_default(Command command) {
  WB_CHECK_MSG(command.run != nullptr, "the default command needs a handler");
  default_command_ = std::move(command);
}

std::string CommandRegistry::overview() const {
  std::string out;
  if (!default_command_.usage.empty()) {
    out += "usage: " + default_command_.usage + "\n";
    out += "       " + program_ + " <command> [args...]\n\n";
  }
  out += "commands:\n";
  std::size_t width = 4;  // "help"
  for (const Command& c : commands_) width = std::max(width, c.name.size());
  for (const Command& c : commands_) {
    out += "  " + c.name + std::string(width - c.name.size() + 2, ' ') +
           c.summary + "\n";
  }
  out += "  help" + std::string(width - 4 + 2, ' ') +
         "this overview, or `" + program_ + " help <command>` for details\n";
  if (!default_command_.summary.empty()) {
    out += "\n" + default_command_.summary + "\n";
  }
  return out;
}

std::string CommandRegistry::help_for(const std::string& name) const {
  for (const Command& c : commands_) {
    if (c.name == name) {
      return "usage: " + c.usage + "\n\n" + c.summary + "\n";
    }
  }
  std::string known;
  for (const Command& c : commands_) {
    if (!known.empty()) known += ", ";
    known += c.name;
  }
  throw DataError("unknown command '" + name + "' — known commands: " + known);
}

int CommandRegistry::dispatch(const std::vector<std::string>& args) const {
  if (args.empty()) {
    std::printf("%s", overview().c_str());
    return kExitUsage;
  }
  if (args[0] == "help" || args[0] == "--help" || args[0] == "-h") {
    if (args.size() >= 2 && args[0] == "help") {
      std::printf("%s", help_for(args[1]).c_str());
    } else {
      std::printf("%s", overview().c_str());
    }
    return kExitPass;
  }
  for (const Command& c : commands_) {
    if (c.name == args[0]) {
      return c.run(std::vector<std::string>(args.begin() + 1, args.end()));
    }
  }
  WB_CHECK_MSG(default_command_.run != nullptr,
               "no default command registered");
  return default_command_.run(args);
}

int CommandRegistry::main(int argc, char** argv) const {
  try {
    return dispatch(std::vector<std::string>(argv + 1, argv + argc));
  } catch (const DataError& e) {
    std::printf("error: %s\n", e.what());
    return kExitUsage;
  } catch (const LogicError& e) {
    std::printf("internal error: %s\n", e.what());
    return kExitBug;
  }
}

}  // namespace wb::cli
