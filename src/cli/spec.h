// Text specs for the wbsim command-line driver (and for scripting tests).
//
// Colon-separated factory strings:
//
//   graphs:      path:N            cycle:N          complete:N     star:N
//                grid:RxC          twocliques:N     switched:N
//                tree:N:SEED       forest:N:PCT:SEED
//                kdeg:N:K:PCT:SEED gnp:N:NUM/DEN:SEED
//                cgnp:N:NUM/DEN:SEED    eob:N:NUM/DEN:SEED
//                ceob:N:NUM/DEN:SEED    bipartite:A:B:NUM/DEN:SEED
//
//   adversaries: first | last | rotating | maxdeg | mindeg | random:SEED
//
//   protocols (see runners.h): build-forest | build-degenerate:K |
//                build-full | mis:ROOT | two-cliques | eob-bfs |
//                bipartite-bfs | sync-bfs | subgraph:F | triangle-oracle |
//                pair-chase | spanning-forest | rand-two-cliques:SEED |
//                square-oracle | diameter-oracle:D | connectivity-oracle
//
// Parsers throw wb::DataError with a usable message on malformed specs.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/graph/graph.h"
#include "src/wb/adversary.h"
#include "src/wb/distinct.h"

namespace wb::cli {

/// Split "a:b:c" into {"a","b","c"} (no empty-segment collapsing).
[[nodiscard]] std::vector<std::string> split_spec(const std::string& spec);

/// Parse helpers used across the factories.
[[nodiscard]] std::uint64_t parse_u64(const std::string& field,
                                      const std::string& what);
/// "NUM/DEN" probability field.
[[nodiscard]] std::pair<std::uint64_t, std::uint64_t> parse_prob(
    const std::string& field);

/// Build a graph from a spec string.
[[nodiscard]] Graph graph_from_spec(const std::string& spec);

/// Build an adversary from a spec string (graph needed for degree-based
/// strategies).
[[nodiscard]] std::unique_ptr<Adversary> adversary_from_spec(
    const std::string& spec, const Graph& g);

/// The wbsim pseudo-adversary `exhaustive`, parsed:
///
///   exhaustive                 every schedule, all cores, in-process
///   exhaustive:T               T worker threads (1 = the serial oracle)
///   exhaustive:shards=K        K local worker *processes*, merged
///   exhaustive:shards=K:T      K worker processes with T threads each
///
/// Any form may end with `:distinct=exact|hll[:P]` selecting the
/// distinct-board accumulator (src/wb/distinct.h); because the hll form
/// itself contains a colon, the `distinct=` option must come last:
///
///   exhaustive:distinct=hll:14
///   exhaustive:1:distinct=hll:12
///   exhaustive:shards=4:distinct=exact
struct ExhaustiveSpec {
  /// Worker threads. In-process mode: 0 = one per hardware thread, 1 =
  /// serial. In shard mode this is each worker process's thread count, and
  /// 0 (or omitting it) splits the machine between the workers
  /// (hardware threads / K, at least 1).
  std::size_t threads = 0;
  /// Worker processes: 0 = in-process sweep, K >= 1 = plan/run/merge K
  /// local shard-runner processes.
  std::size_t shards = 0;
  /// Distinct-board accumulator: exact (default) or HyperLogLog.
  DistinctConfig distinct{};
};

[[nodiscard]] bool is_exhaustive_spec(const std::string& spec);
/// Parse an `exhaustive...` spec. Throws wb::DataError on malformed input.
[[nodiscard]] ExhaustiveSpec exhaustive_from_spec(const std::string& spec);

/// Human-readable lists for --help.
[[nodiscard]] std::string graph_spec_help();
[[nodiscard]] std::string adversary_spec_help();

}  // namespace wb::cli
