// Text specs for the wbsim command-line driver (and for scripting tests).
//
// Colon-separated factory strings:
//
//   graphs:      path:N            cycle:N          complete:N     star:N
//                grid:RxC          twocliques:N     switched:N
//                tree:N:SEED       forest:N:PCT:SEED
//                kdeg:N:K:PCT:SEED gnp:N:NUM/DEN:SEED
//                cgnp:N:NUM/DEN:SEED    eob:N:NUM/DEN:SEED
//                ceob:N:NUM/DEN:SEED    bipartite:A:B:NUM/DEN:SEED
//                rmat:SCALE:EF:SEED     powerlaw:N:EF:SEED
//                file:PATH  (streaming edge-list loader)
//
//   adversaries: first | last | rotating | maxdeg | mindeg | random:SEED
//
//   protocols (see runners.h): build-forest | build-degenerate:K |
//                build-full | mis:ROOT | two-cliques | eob-bfs |
//                bipartite-bfs | sync-bfs | subgraph:F | triangle-oracle |
//                pair-chase | spanning-forest | rand-two-cliques:SEED |
//                square-oracle | diameter-oracle:D | connectivity-oracle
//
// Parsers throw wb::DataError with a usable message on malformed specs.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/graph/graph.h"
#include "src/sym/encode.h"
#include "src/wb/adversary.h"
#include "src/wb/distinct.h"
#include "src/wb/faults.h"

namespace wb::cli {

/// Split "a:b:c" into {"a","b","c"} (no empty-segment collapsing).
[[nodiscard]] std::vector<std::string> split_spec(const std::string& spec);

/// Parse helpers used across the factories.
[[nodiscard]] std::uint64_t parse_u64(const std::string& field,
                                      const std::string& what);
/// "NUM/DEN" probability field.
[[nodiscard]] std::pair<std::uint64_t, std::uint64_t> parse_prob(
    const std::string& field);

/// Build a graph from a spec string.
[[nodiscard]] Graph graph_from_spec(const std::string& spec);

/// Build an adversary from a spec string (graph needed for degree-based
/// strategies).
[[nodiscard]] std::unique_ptr<Adversary> adversary_from_spec(
    const std::string& spec, const Graph& g);

/// Execution budget every sweep entry point defaults to (the
/// ExhaustiveRunOptions / shard::PlanOptions default, shared here so the
/// spec grammar can omit it).
inline constexpr std::uint64_t kDefaultSweepBudget = 2'000'000;

/// The one grammar for configuring an exhaustive sweep — the wbsim
/// pseudo-adversary, `wbsim shard-plan`, and the fleet controller all parse
/// and print exactly this (PR 6 consolidated the previously per-command
/// option handling):
///
///   exhaustive[:THREADS][:memoize][:shards=K][:budget=N][:faults=F]
///             [:distinct=exact|hll[:P]]
///
///   exhaustive                 every schedule, all cores, in-process
///   exhaustive:1               the serial oracle
///   exhaustive:memoize         serial sweep with hash-consed state memo
///   exhaustive:shards=4        4 worker processes (fleet), merged
///   exhaustive:2:shards=4      4 workers, 2 sweep threads each
///   exhaustive:budget=100000   stop (loudly) after 100000 executions
///   exhaustive:faults=crash:1  sweep every 1-crash world exhaustively
///   exhaustive:faults=corrupt:1/8:3   corrupt posted messages (p=1/8)
///   exhaustive:faults=adaptive:7:1024 statistical verdict, 1024 trials
///   exhaustive:distinct=hll:14 HyperLogLog distinct-board estimate
///
/// Because the hll config itself contains a colon, `distinct=` must be the
/// final option; and because fault specs contain colons too (see
/// src/wb/faults.h), `faults=` must be the last option before it. The
/// legacy PR 4 order `exhaustive:shards=K:T` still parses;
/// format_sweep_spec always prints the canonical order above, and
/// parse(format(s)) == s for every SweepSpec (round-trip pinned in
/// tests/cli/spec_test.cpp).
struct SweepSpec {
  /// Worker threads. In-process mode: 0 = one per hardware thread, 1 =
  /// serial. In shard mode this is each worker process's thread count, and
  /// 0 (or omitting it) splits the machine between the workers
  /// (hardware threads / K, at least 1).
  std::size_t threads = 0;
  /// Worker processes: 0 = in-process sweep, K >= 1 = a K-worker fleet.
  std::size_t shards = 0;
  /// Execution budget (max-executions); exceeding it is a loud failure.
  std::uint64_t max_executions = kDefaultSweepBudget;
  /// Distinct-board accumulator: exact (default) or HyperLogLog.
  DistinctConfig distinct{};
  /// Failure model: fault-free (default), crash:F, corrupt:NUM/DEN[:SEED],
  /// or adaptive:SEED[:TRIALS] (statistical verdict).
  FaultSpec faults{};
  /// Hash-consed state memoization (wb::sweep_memoized): totals are
  /// bit-identical to the unmemoized serial sweep. Serial in-process only —
  /// the parser rejects it with threads > 1, shards, or faults.
  bool memoize = false;

  friend bool operator==(const SweepSpec& a, const SweepSpec& b) {
    return a.threads == b.threads && a.shards == b.shards &&
           a.max_executions == b.max_executions && a.distinct == b.distinct &&
           a.faults == b.faults && a.memoize == b.memoize;
  }
};

[[nodiscard]] bool is_exhaustive_spec(const std::string& spec);
/// Parse an `exhaustive...` spec. Throws wb::DataError on malformed input.
[[nodiscard]] SweepSpec sweep_from_spec(const std::string& spec);
/// Canonical text of a SweepSpec: defaulted fields are omitted, options
/// appear in the grammar order. parse ∘ format is the identity.
[[nodiscard]] std::string format_sweep_spec(const SweepSpec& spec);

/// The grammar for the symbolic (BDD) sweep backend (src/sym/reach.h):
///
///   symbolic[:order=interleave|grouped][:engine=auto|circuit|frontier]
///
///   symbolic                   auto engine, interleaved variable order
///   symbolic:order=grouped     order fields first, then message fields
///   symbolic:engine=frontier   force the explicit-frontier engine
///
/// The backend answers exactly what the serial enumerator answers
/// (schedules / distinct / verdict) — so the enumerator-only options are
/// refused with a typed wb::sym::SymUnsupportedError (CLI exit 2):
/// thread counts, shards=, budget= (nothing is enumerated, no budget to
/// exceed), faults=, and distinct= (the count is exact by construction).
/// Unknown tokens are plain DataErrors, as everywhere in the grammar.
struct SymbolicSpec {
  sym::VarOrder order = sym::VarOrder::kInterleave;
  sym::SymEngine engine = sym::SymEngine::kAuto;

  friend bool operator==(const SymbolicSpec&, const SymbolicSpec&) = default;
};

[[nodiscard]] bool is_symbolic_spec(const std::string& spec);
/// Parse a `symbolic...` spec. Throws SymUnsupportedError for enumerator
/// options the backend refuses, wb::DataError on malformed input.
[[nodiscard]] SymbolicSpec symbolic_from_spec(const std::string& spec);
/// Canonical text; defaulted fields are omitted. parse ∘ format = identity.
[[nodiscard]] std::string format_symbolic_spec(const SymbolicSpec& spec);

/// Human-readable lists for --help.
[[nodiscard]] std::string graph_spec_help();
[[nodiscard]] std::string adversary_spec_help();

}  // namespace wb::cli
