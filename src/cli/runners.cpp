#include "src/cli/runners.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <sstream>
#include <utility>
#include <vector>

#include "src/analysis/board_stats.h"
#include "src/analysis/schedule_stats.h"
#include "src/cli/spec.h"
#include "src/graph/algorithms.h"
#include "src/protocols/anon_frontier.h"
#include "src/protocols/bfs_sync.h"
#include "src/protocols/codec.h"
#include "src/protocols/build_degenerate.h"
#include "src/protocols/build_forest.h"
#include "src/protocols/build_full.h"
#include "src/protocols/eob_bfs.h"
#include "src/protocols/krz.h"
#include "src/protocols/mis.h"
#include "src/protocols/oracles.h"
#include "src/protocols/randomized.h"
#include "src/protocols/subgraph.h"
#include "src/protocols/triangle.h"
#include "src/protocols/two_cliques.h"
#include "src/support/hash.h"
#include "src/sym/reach.h"
#include "src/wb/batch.h"
#include "src/wb/engine.h"
#include "src/wb/exhaustive.h"
#include "src/wb/faults.h"

namespace wb::cli {

namespace {

/// One shard of a planned sweep to execute (see src/wb/shard.h): the parsed
/// spec, the worker thread count, and where to deposit the result — the
/// dispatch machinery returns RunReports, so the ShardResult travels by
/// out-pointer.
struct ShardRunRequest {
  const shard::ShardSpec* spec = nullptr;
  std::size_t threads = 0;
  shard::ShardResult* out = nullptr;
};

/// A sharding plan to produce instead of running anything.
struct ShardPlanRequest {
  std::size_t shard_count = 1;
  shard::PlanOptions options;
  std::string protocol_spec;  // recorded verbatim in every spec
  std::vector<shard::ShardSpec>* out = nullptr;
};

/// How a spec dispatch schedules its runs: one borrowed adversary, the
/// seeded standard battery fanned out through the batch engine, the
/// exhaustive sweep over every schedule (parallel subtree partition), one
/// shard of such a sweep, or just the sharding plan.
struct RunPlan {
  Adversary* single = nullptr;  // set: exactly this strategy
  std::uint64_t seed = 0;       // else: standard_adversaries(g, seed)
  BatchOptions batch;
  const ExhaustiveRunOptions* exhaustive = nullptr;  // set: sweep every schedule
  const SymbolicRunOptions* symbolic = nullptr;  // set: BDD sweep, no schedules
  const ShardRunRequest* shard_run = nullptr;    // set: run one shard
  const ShardPlanRequest* shard_plan = nullptr;  // set: emit the plan only
};

void describe_run(std::ostringstream& os, const Graph& g, const Protocol& p,
                  const std::string& adversary, const ExecutionResult& r) {
  os << "protocol   " << p.name() << " (" << model_name(p.model_class())
     << "[" << p.message_bit_limit(g.node_count()) << " bits])\n";
  os << "graph      n=" << g.node_count() << " m=" << g.edge_count() << "\n";
  os << "adversary  " << adversary << "\n";
  os << "status     " << status_name(r.status);
  if (!r.error.empty()) os << " — " << r.error;
  os << "\n";
  const ScheduleStats sched = analyze_schedule(r);
  const BoardStats board = analyze_board(r.board);
  os << "schedule   rounds=" << sched.rounds << " writes=" << sched.writes
     << " activation-waves=" << sched.activation_waves
     << " mean-latency=" << sched.mean_latency << "\n";
  os << "board      bits=" << board.total_bits << " max-msg="
     << board.max_message_bits << " distinct=" << board.distinct_messages
     << " utilization="
     << budget_utilization(board, g.node_count(),
                           p.message_bit_limit(g.node_count()))
     << "\n";
}

/// Running minimum over failing schedules: the counterexample a
/// `--counterexample` sweep reports. Lexicographic order on the write order
/// — exactly the serial DFS visit order, so the minimum is the
/// "smallest-prefix" failing schedule and is thread-count independent.
struct CounterexampleTracker {
  std::mutex mu;
  bool found = false;
  std::vector<NodeId> write_order;
  std::string status;

  /// Returns true the first time a failure is recorded.
  bool record(const ExecutionResult& r, const char* why) {
    const std::lock_guard<std::mutex> lock(mu);
    const bool first = !found;
    if (!found || r.write_order < write_order) {
      found = true;
      write_order = r.write_order;
      status = why;
    }
    return first;
  }

  [[nodiscard]] std::string order_text() const {
    std::string text;
    for (const NodeId v : write_order) {
      if (!text.empty()) text += " ";
      text += std::to_string(v);
    }
    return text;
  }
};

/// The typed fault classifier every fault-aware sweep path shares. Verdict
/// rules:
///  - a successful execution is judged by the protocol's own check;
///  - a crash execution's natural deadlock (crashed nodes never write) is
///    judged on the partial board — crash-tolerant protocols still answer,
///    and a wrong answer is kWrongOutput, not an engine failure;
///  - every other engine failure, and a DataError from a robust decoder
///    rejecting a corrupted/truncated board, is kDeadlockOrFault.
template <typename P, typename Check>
FaultClassifier make_fault_classifier(const P& protocol, const Graph& g,
                                      const Check& check) {
  const std::size_t n = g.node_count();
  return [&protocol, n, check](const ExecutionResult& r,
                               std::span<const NodeId> crashed) {
    const bool judge_partial =
        r.status == RunStatus::kDeadlock && !crashed.empty();
    if (!r.ok() && !judge_partial) return FaultVerdict::kDeadlockOrFault;
    thread_local std::ostringstream sink;
    sink.seekp(0);
    try {
      return check(protocol.output(r.board, n), sink)
                 ? FaultVerdict::kCorrect
                 : FaultVerdict::kWrongOutput;
    } catch (const DataError&) {
      return FaultVerdict::kDeadlockOrFault;
    }
  };
}

/// Fault-model sweep: crash/corruption worlds exhaustively, the adaptive
/// adversary statistically. Shares report shape (and the `schedules` /
/// `verdict` line prefixes CI diffs) with the fault-free exhaustive runner.
template <typename P, typename Check>
std::vector<RunReport> run_exhaustive_faulty(const P& protocol, const Graph& g,
                                             const ExhaustiveRunOptions& ropts,
                                             const Check& check) {
  const FaultClassifier classify = make_fault_classifier(protocol, g, check);
  RunReport report;
  report.executed = true;
  std::ostringstream os;
  os << "protocol   " << protocol.name() << " ("
     << model_name(protocol.model_class()) << "["
     << protocol.message_bit_limit(g.node_count()) << " bits])\n";
  os << "graph      n=" << g.node_count() << " m=" << g.edge_count() << "\n";

  const bool adaptive = ropts.faults.kind == FaultKind::kAdaptive;
  if (adaptive || ropts.statistical_trials > 0) {
    StatisticalOptions sopts;
    sopts.trials = adaptive ? ropts.faults.trials : ropts.statistical_trials;
    sopts.seed = ropts.faults.seed;
    sopts.threads = ropts.threads;
    const StatisticalTotals totals =
        run_statistical_verdict(g, protocol, ropts.faults, classify, sopts);
    report.statistical = true;
    report.executions = totals.verdict.trials();
    report.engine_failures = totals.engine_failures;
    report.wrong_outputs = totals.wrong_outputs;
    report.verdict_trials = totals.verdict.trials();
    report.verdict_failures = totals.verdict.failures();
    report.adversary = std::string(adaptive ? "adaptive" : "statistical") +
                       "(threads=" + std::to_string(ropts.threads) +
                       ", faults=" + fault_spec_to_string(ropts.faults) + ")";
    report.correct = totals.verdict.failures() == 0;
    report.status = report.correct ? "success" : "mixed";
    os << "adversary  " << report.adversary << "\n";
    os << "schedules  " << totals.verdict.trials()
       << " sampled trials (statistical sweep)\n";
    os << "verdict    " << verdict_summary(totals.verdict) << "\n";
  } else {
    ExhaustiveOptions opts;
    opts.threads = ropts.threads;
    opts.max_executions = ropts.max_executions;
    opts.distinct = ropts.distinct;
    const FaultSweepTotals totals =
        sweep_faulty_executions(g, protocol, ropts.faults, classify, opts);
    report.executions = totals.executions;
    report.engine_failures = totals.engine_failures;
    report.wrong_outputs = totals.wrong_outputs;
    report.fault_worlds = totals.worlds;
    report.adversary = "exhaustive(threads=" + std::to_string(ropts.threads) +
                       ", faults=" + fault_spec_to_string(ropts.faults) + ")";
    const std::uint64_t failures = totals.engine_failures + totals.wrong_outputs;
    report.correct = failures == 0;
    report.status = totals.engine_failures == 0 ? "success" : "mixed";
    os << "adversary  " << report.adversary << " — " << totals.worlds
       << " fault worlds\n";
    const std::uint64_t distinct =
        totals.distinct != nullptr ? totals.distinct->estimate() : 0;
    os << exhaustive_summary_lines(totals.executions, totals.engine_failures,
                                   totals.wrong_outputs, distinct,
                                   ropts.distinct);
  }
  report.summary = os.str();
  return {std::move(report)};
}

/// Symbolic plan (src/sym/reach.h): the serial enumerator's exact
/// schedules/distinct/verdict accounting from a BDD fixpoint, enumerating
/// zero schedules. The per-protocol check is wrapped into the judge the
/// frontier engine calls once per distinct final state; the circuit engine
/// carries its own decoded-incorrect set and never calls it — equivalence
/// of the two is pinned by tests/sym/sym_equiv_test.cpp.
template <typename P, typename Check>
std::vector<RunReport> run_symbolic(const P& protocol, const Graph& g,
                                    const SymbolicRunOptions& ropts,
                                    const Check& check) {
  sym::SymbolicOptions opts;
  opts.order = ropts.order;
  opts.engine = ropts.engine;
  const auto judge = [&](const ExecutionResult& r) {
    thread_local std::ostringstream sink;
    sink.seekp(0);
    return check(protocol.output(r.board, g.node_count()), sink);
  };
  const sym::SymbolicTotals totals =
      sym::symbolic_sweep(g, protocol, judge, opts);

  RunReport report;
  report.executed = true;
  report.adversary = "symbolic(order=" + sym::to_string(ropts.order) +
                     ", engine=" + sym::to_string(totals.engine) + ")";
  report.executions = totals.executions;
  report.engine_failures = totals.engine_failures;
  report.wrong_outputs = totals.wrong_outputs;
  const std::uint64_t failures = totals.engine_failures + totals.wrong_outputs;
  report.correct = failures == 0;
  report.status = totals.engine_failures == 0 ? "success" : "mixed";
  std::ostringstream os;
  os << "protocol   " << protocol.name() << " ("
     << model_name(protocol.model_class()) << "["
     << protocol.message_bit_limit(g.node_count()) << " bits])\n";
  os << "graph      n=" << g.node_count() << " m=" << g.edge_count() << "\n";
  os << "adversary  " << report.adversary << " — " << totals.vars << " vars, "
     << totals.layers << " layers, 0 schedules enumerated\n";
  // DistinctConfig{} (exact): the symbolic distinct count is exact by
  // construction, and the default config keeps these lines byte-identical
  // to the `exhaustive:1` oracle's — what the CI smoke diffs.
  os << exhaustive_summary_lines(totals.executions, totals.engine_failures,
                                 totals.wrong_outputs, totals.distinct,
                                 DistinctConfig{});
  os << "bdd        " << totals.bdd.nodes << " nodes, " << totals.bdd.cache_hits
     << "/" << totals.bdd.cache_lookups << " cache hits";
  if (totals.engine == sym::SymEngine::kFrontier) {
    os << ", " << totals.states << " frontier states";
  }
  os << "\n";
  report.summary = os.str();
  return {std::move(report)};
}

/// Memoized exhaustive plan (wb::sweep_memoized): serial sweep answering
/// repeated engine states from a memo table. The schedules/verdict lines
/// are byte-identical to the unmemoized serial sweep's; the adversary line
/// reports the collapse.
template <typename P, typename Check>
std::vector<RunReport> run_exhaustive_memoized(const P& protocol,
                                               const Graph& g,
                                               const ExhaustiveRunOptions& ropts,
                                               const Check& check) {
  WB_REQUIRE_MSG(!ropts.counterexample,
                 "memoize does not track counterexamples (memo-hit subtrees "
                 "are never re-visited)");
  WB_REQUIRE_MSG(ropts.faults.kind == FaultKind::kNone &&
                     ropts.statistical_trials == 0,
                 "memoize is fault-free only");
  WB_REQUIRE_MSG(ropts.threads <= 1, "memoized sweeps are serial");
  ExhaustiveOptions opts;
  opts.threads = 1;
  opts.max_executions = ropts.max_executions;
  opts.distinct = ropts.distinct;
  opts.memoize = true;
  const MemoizedTotals totals = sweep_memoized(
      g, protocol,
      [&](const ExecutionResult& r) {
        thread_local std::ostringstream sink;
        sink.seekp(0);
        return check(protocol.output(r.board, g.node_count()), sink);
      },
      opts);

  RunReport report;
  report.executed = true;
  report.adversary = "exhaustive(threads=1, memoize)";
  report.executions = totals.executions;
  report.engine_failures = totals.engine_failures;
  report.wrong_outputs = totals.wrong_outputs;
  const std::uint64_t failures = totals.engine_failures + totals.wrong_outputs;
  report.correct = failures == 0;
  report.status = totals.engine_failures == 0 ? "success" : "mixed";
  std::ostringstream os;
  os << "protocol   " << protocol.name() << " ("
     << model_name(protocol.model_class()) << "["
     << protocol.message_bit_limit(g.node_count()) << " bits])\n";
  os << "graph      n=" << g.node_count() << " m=" << g.edge_count() << "\n";
  os << "adversary  " << report.adversary << " — " << totals.states_explored
     << " states, " << totals.memo_hits << " memo hits, "
     << totals.terminals_visited << " terminals visited\n";
  os << exhaustive_summary_lines(totals.executions, totals.engine_failures,
                                 totals.wrong_outputs, totals.distinct,
                                 ropts.distinct);
  report.summary = os.str();
  return {std::move(report)};
}

/// Exhaustive plan: one report aggregating every adversary schedule, from a
/// SINGLE sweep — output validation and the distinct-board tally share one
/// visitor instead of exploring the n! tree twice. The check callback is
/// invoked concurrently from pool workers — it only reads the (const)
/// graph/protocol and writes to per-worker sinks and per-task accumulators,
/// so the shared state is the atomic tallies (and the counterexample
/// tracker's mutex, touched only on failures). Distinct boards stream
/// through one DistinctAccumulator per subtree task (exact sorted-run dedup
/// or an hll sketch, per ropts.distinct) folded by the accumulator's
/// order-oblivious merge — the same aggregation shape shard::run_shard uses.
template <typename P, typename Check>
std::vector<RunReport> run_exhaustive(const P& protocol, const Graph& g,
                                      const ExhaustiveRunOptions& ropts,
                                      const Check& check) {
  if (ropts.memoize) {
    // First, so memoize+faults misuse hits the memoized runner's loud
    // rejection instead of silently dropping the flag.
    return run_exhaustive_memoized(protocol, g, ropts, check);
  }
  if (ropts.faults.kind != FaultKind::kNone || ropts.statistical_trials > 0) {
    return run_exhaustive_faulty(protocol, g, ropts, check);
  }
  ExhaustiveOptions opts;
  opts.threads = ropts.threads;
  opts.max_executions = ropts.max_executions;
  opts.distinct = ropts.distinct;
  const std::vector<PrefixTask> tasks =
      partition_for_threads(g, protocol, opts.engine, opts.threads);
  std::atomic<std::uint64_t> engine_failures{0};
  std::atomic<std::uint64_t> wrong_outputs{0};
  std::vector<std::unique_ptr<DistinctAccumulator>> accumulators;
  accumulators.reserve(tasks.size());
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    accumulators.push_back(make_distinct_accumulator(ropts.distinct));
  }
  CounterexampleTracker cx;
  // The serial DFS visits schedules in lexicographic write-order, so its
  // first failure IS the minimum and the sweep may stop there; parallel
  // sweeps must keep going and take the minimum over every failure.
  const bool stop_at_first_failure = ropts.counterexample && opts.threads == 1;
  const std::uint64_t executions = for_each_execution_under(
      g, protocol, tasks,
      [&](const ExecutionResult& r, std::size_t task) {
        accumulators[task]->insert(r.board.content_hash());
        if (!r.ok()) {
          engine_failures.fetch_add(1, std::memory_order_relaxed);
          if (ropts.counterexample) {
            cx.record(r, status_name(r.status).data());
            return !stop_at_first_failure;
          }
          return true;
        }
        // The verdict text is discarded; seekp(0) reuses the worker's buffer
        // so the hot loop stays allocation-free after warmup.
        thread_local std::ostringstream sink;
        sink.seekp(0);
        if (!check(protocol.output(r.board, g.node_count()), sink)) {
          wrong_outputs.fetch_add(1, std::memory_order_relaxed);
          if (ropts.counterexample) {
            cx.record(r, "wrong-output");
            return !stop_at_first_failure;
          }
        }
        return true;
      },
      opts);
  std::uint64_t distinct = 0;
  if (!accumulators.empty()) {
    std::unique_ptr<DistinctAccumulator> total =
        std::move(accumulators.front());
    for (std::size_t t = 1; t < accumulators.size(); ++t) {
      total->merge(std::move(*accumulators[t]));
    }
    distinct = total->estimate();
  }

  RunReport report;
  report.executed = true;
  report.adversary =
      "exhaustive(threads=" + std::to_string(opts.threads) + ")";
  report.executions = executions;
  report.engine_failures = engine_failures.load();
  report.wrong_outputs = wrong_outputs.load();
  const std::uint64_t failures = engine_failures.load() + wrong_outputs.load();
  report.correct = failures == 0;
  report.status = engine_failures.load() == 0 ? "success" : "mixed";
  std::ostringstream os;
  os << "protocol   " << protocol.name() << " ("
     << model_name(protocol.model_class()) << "["
     << protocol.message_bit_limit(g.node_count()) << " bits])\n";
  os << "graph      n=" << g.node_count() << " m=" << g.edge_count() << "\n";
  os << "adversary  " << report.adversary << "\n";
  os << exhaustive_summary_lines(executions, engine_failures.load(),
                                 wrong_outputs.load(), distinct,
                                 ropts.distinct);
  if (ropts.counterexample) {
    if (cx.found) {
      report.counterexample = cx.order_text();
      os << "counterexample " << report.counterexample << " (" << cx.status
         << ")\n";
      if (stop_at_first_failure) {
        os << "counterexample sweep stopped at the first (smallest-prefix) "
              "failing schedule\n";
      }
    } else {
      os << "counterexample none\n";
    }
  }
  report.summary = os.str();
  return {std::move(report)};
}

/// Sharded plan, run phase: sweep exactly the spec's subtree prefixes with
/// the same validation callback the exhaustive runner uses, depositing the
/// ShardResult through the request's out-pointer.
template <typename P, typename Check>
std::vector<RunReport> run_shard_typed(const P& protocol, const Graph& g,
                                       const ShardRunRequest& req,
                                       const Check& check) {
  const std::size_t n = g.node_count();
  *req.out = shard::run_shard(*req.spec, protocol,
                              make_fault_classifier(protocol, g, check),
                              req.threads);
  const shard::ShardResult& result = *req.out;

  RunReport report;
  report.executed = true;
  report.adversary = "shard(" + std::to_string(result.shard_index) + "/" +
                     std::to_string(result.shard_count) + ")";
  report.correct = !result.budget_exceeded && result.engine_failures == 0 &&
                   result.wrong_outputs == 0;
  report.status = result.budget_exceeded ? "budget-exceeded" : "success";
  std::ostringstream os;
  os << "protocol   " << protocol.name() << " ("
     << model_name(protocol.model_class()) << "["
     << protocol.message_bit_limit(n) << " bits])\n";
  os << "graph      n=" << n << " m=" << g.edge_count() << "\n";
  os << "adversary  " << report.adversary << " — ";
  if (result.faults.kind == FaultKind::kAdaptive) {
    os << "statistical stride " << result.shard_index << "/"
       << result.shard_count << " of " << result.faults.trials << " trials\n";
  } else if (result.faults.kind != FaultKind::kNone) {
    os << req.spec->fault_tasks.size() << " fault subtree prefixes\n";
  } else {
    os << req.spec->prefixes.size() << " subtree prefixes\n";
  }
  if (result.budget_exceeded) {
    os << "schedules  budget of " << result.max_executions
       << " executions exceeded by this shard alone\n";
  } else if (result.faults.kind == FaultKind::kAdaptive) {
    os << "schedules  " << result.executions
       << " sampled trials (statistical sweep)\n";
    const VerdictAccumulator verdict(result.verdict_trials,
                                     result.verdict_failures);
    os << "verdict    " << verdict_summary(verdict) << "\n";
  } else {
    const std::uint64_t distinct =
        result.distinct.kind == DistinctKind::kExact
            ? result.board_hashes.size()
            : (result.hll.has_value() ? result.hll->estimate() : 0);
    os << exhaustive_summary_lines(result.executions, result.engine_failures,
                                   result.wrong_outputs, distinct,
                                   result.distinct);
  }
  report.summary = os.str();
  return {std::move(report)};
}

/// Run a typed protocol under every strategy of `plan` (all execution goes
/// through the batch engine) and validate each run with `check(output)`.
template <typename P, typename Check>
std::vector<RunReport> run_typed(const P& protocol, const Graph& g,
                                 const RunPlan& plan, const Check& check) {
  if (plan.shard_plan != nullptr) {
    *plan.shard_plan->out =
        shard::plan_shards(g, protocol, plan.shard_plan->protocol_spec,
                           plan.shard_plan->shard_count,
                           plan.shard_plan->options);
    return {};
  }
  if (plan.shard_run != nullptr) {
    return run_shard_typed(protocol, g, *plan.shard_run, check);
  }
  if (plan.exhaustive != nullptr) {
    return run_exhaustive(protocol, g, *plan.exhaustive, check);
  }
  if (plan.symbolic != nullptr) {
    return run_symbolic(protocol, g, *plan.symbolic, check);
  }
  std::vector<BatteryRun> runs;
  if (plan.single != nullptr) {
    Trial t;
    t.graph = &g;
    t.protocol = &protocol;
    t.adversary = plan.single;
    runs.push_back(BatteryRun{
        plan.single->name(),
        std::move(run_batch(std::span<const Trial>(&t, 1), plan.batch)
                      .front())});
  } else {
    runs = run_standard_battery(g, protocol, plan.seed, plan.batch);
  }

  std::vector<RunReport> reports;
  reports.reserve(runs.size());
  for (const BatteryRun& run : runs) {
    const ExecutionResult& r = run.result;
    RunReport report;
    report.adversary = run.adversary;
    std::ostringstream os;
    describe_run(os, g, protocol, run.adversary, r);
    report.executed = true;
    report.status = std::string(status_name(r.status));
    if (r.ok()) {
      const auto out = protocol.output(r.board, g.node_count());
      report.correct = check(out, os);
    } else {
      os << "verdict    (no output: run not successful)\n";
    }
    report.summary = os.str();
    reports.push_back(std::move(report));
  }
  return reports;
}

std::vector<RunReport> run_build(const Graph& g, const RunPlan& plan,
                                 const ProtocolWithOutput<BuildOutput>& p) {
  return run_typed(p, g, plan, [&](const BuildOutput& out, std::ostringstream& os) {
    if (!out.has_value()) {
      os << "verdict    rejected (input outside promised class)\n";
      // Rejection is the *correct* answer when the input is truly outside.
      return true;
    }
    const bool exact = *out == g;
    os << "verdict    reconstructed " << out->edge_count() << " edges — "
       << (exact ? "exact" : "WRONG") << "\n";
    return exact;
  });
}

std::vector<RunReport> run_bfs(const Graph& g, const RunPlan& plan,
                               const ProtocolWithOutput<BfsProtocolOutput>& p) {
  // Computed once, not per run: the exhaustive plan invokes the check for
  // every schedule, and the reference forest only depends on g.
  const BfsForest ref = bfs_forest(g);
  const bool eob = is_even_odd_bipartite(g);
  return run_typed(p, g, plan,
                   [&g, ref, eob](const BfsProtocolOutput& out,
                                  std::ostringstream& os) {
                     if (!out.valid) {
                       os << "verdict    input reported invalid\n";
                       return !eob;
                     }
                     const bool ok = out.layer == ref.layer &&
                                     is_valid_bfs_forest(g, out.layer,
                                                         out.parent);
                     os << "verdict    BFS forest with " << out.roots.size()
                        << " roots — " << (ok ? "valid" : "WRONG") << "\n";
                     return ok;
                   });
}

/// Deliberately-broken negative-testing fixture (spec `broken-first:V`):
/// every node writes its ID, the output is the *first* writer's ID, and
/// validation expects node V — wrong on exactly the schedules where some
/// other node writes first. The lexicographically-smallest failing schedule
/// is known in closed form, which is what pins `--counterexample`.
class FirstWriterProtocol final : public SimAsyncProtocol<NodeId> {
 public:
  [[nodiscard]] std::size_t message_bit_limit(std::size_t n) const override {
    return static_cast<std::size_t>(codec::id_bits(n));
  }
  [[nodiscard]] Bits compose_initial(const LocalView& view) const override {
    BitWriter w;
    return compose_initial(view, w);
  }
  [[nodiscard]] Bits compose_initial(const LocalView& view,
                                     BitWriter& w) const override {
    codec::write_id(w, view.id(), view.n());
    return w.take();
  }
  [[nodiscard]] NodeId output(const Whiteboard& board,
                              std::size_t n) const override {
    WB_REQUIRE_MSG(board.message_count() >= 1, "empty whiteboard");
    BitReader r(board.message(0));
    return codec::read_id(r, n);
  }
  [[nodiscard]] std::string name() const override { return "broken-first"; }
};

std::vector<RunReport> dispatch_spec(const std::string& spec, const Graph& g,
                                     const RunPlan& plan) {
  const auto parts = split_spec(spec);
  const std::string& kind = parts[0];
  const std::size_t n = g.node_count();

  if (kind == "build-forest") {
    return run_build(g, plan, BuildForestProtocol{});
  }
  if (kind == "build-degenerate") {
    WB_REQUIRE_MSG(parts.size() == 2, "expected build-degenerate:K");
    const int k = static_cast<int>(parse_u64(parts[1], "K"));
    return run_build(g, plan, BuildDegenerateProtocol{k});
  }
  if (kind == "build-full") {
    const BuildFullProtocol p;
    return run_typed(p, g, plan,
                     [&](const Graph& out, std::ostringstream& os) {
                       const bool exact = out == g;
                       os << "verdict    reconstructed " << out.edge_count()
                          << " edges — " << (exact ? "exact" : "WRONG") << "\n";
                       return exact;
                     });
  }
  if (kind == "mis") {
    WB_REQUIRE_MSG(parts.size() == 2, "expected mis:ROOT");
    const NodeId root = static_cast<NodeId>(parse_u64(parts[1], "root"));
    WB_REQUIRE_MSG(root >= 1 && root <= n, "root out of range");
    const RootedMisProtocol p(root);
    return run_typed(p, g, plan,
                     [&](const MisOutput& out, std::ostringstream& os) {
                       const bool ok = is_rooted_mis(g, out, root);
                       os << "verdict    |MIS| = " << out.size() << " — "
                          << (ok ? "valid rooted MIS" : "WRONG") << "\n";
                       return ok;
                     });
  }
  if (kind == "two-cliques" || kind == "rand-two-cliques") {
    const bool truth = is_two_cliques(g);  // once, not per schedule
    auto check = [truth](const TwoCliquesOutput& out, std::ostringstream& os) {
      os << "verdict    " << (out.yes ? "YES" : "NO") << " (truth: "
         << (truth ? "YES" : "NO") << ")\n";
      return out.yes == truth;
    };
    if (kind == "two-cliques") {
      return run_typed(TwoCliquesProtocol{}, g, plan, check);
    }
    WB_REQUIRE_MSG(parts.size() == 2, "expected rand-two-cliques:SEED");
    return run_typed(
        RandomizedTwoCliquesProtocol{parse_u64(parts[1], "seed")}, g, plan,
        check);
  }
  if (kind == "eob-bfs") {
    return run_bfs(g, plan, EobBfsProtocol{});
  }
  if (kind == "bipartite-bfs") {
    return run_bfs(g, plan, EobBfsProtocol{EobMode::kBipartiteNoCheck});
  }
  if (kind == "sync-bfs") {
    return run_bfs(g, plan, SyncBfsProtocol{});
  }
  if (kind == "subgraph") {
    WB_REQUIRE_MSG(parts.size() == 2, "expected subgraph:F");
    const std::size_t f = parse_u64(parts[1], "F");
    const SubgraphProtocol p(f);
    GraphBuilder expect_builder(n);  // reference subgraph: once, not per run
    for (const Edge& e : g.edges()) {
      if (e.u <= f && e.v <= f) expect_builder.add_edge(e.u, e.v);
    }
    const Graph expect = expect_builder.build();
    return run_typed(p, g, plan,
                     [&expect](const Graph& out, std::ostringstream& os) {
                       const bool ok = out == expect;
                       os << "verdict    prefix subgraph with "
                          << out.edge_count() << " edges — "
                          << (ok ? "exact" : "WRONG") << "\n";
                       return ok;
                     });
  }
  if (kind == "krz-triangle") {
    WB_REQUIRE_MSG(parts.size() == 3, "expected krz-triangle:NUM/DEN:SEED");
    const auto [num, den] = parse_prob(parts[1]);
    const KrzTriangleProtocol p(num, den, parse_u64(parts[2], "seed"));
    // The sampled subgraph is fixed by (graph, seed): compute the sampled
    // truth once — a triangle whose edges all survive sampling. The check
    // is exact agreement with *that*; the ε-error behavior (missing the
    // real triangle with probability 1 - q^3) shows up when the seed is
    // varied across statistical trials (tests/wb/faults_test.cpp).
    GraphBuilder sampled_builder(n);
    for (const Edge& e : g.edges()) {
      if (p.edge_sampled(e.u, e.v)) sampled_builder.add_edge(e.u, e.v);
    }
    const bool truth = has_triangle(sampled_builder.build());
    return run_typed(p, g, plan, [&, truth](bool out, std::ostringstream& os) {
      os << "verdict    " << (out ? "TRIANGLE" : "none")
         << " (sampled truth: " << (truth ? "TRIANGLE" : "none") << ")\n";
      return out == truth;
    });
  }
  if (kind == "triangle-oracle" || kind == "pair-chase") {
    const bool truth = has_triangle(g);
    if (kind == "triangle-oracle") {
      const TriangleOracleProtocol p;
      return run_typed(p, g, plan,
                       [&](bool out, std::ostringstream& os) {
                         os << "verdict    " << (out ? "TRIANGLE" : "none")
                            << " (truth: " << (truth ? "TRIANGLE" : "none")
                            << ")\n";
                         return out == truth;
                       });
    }
    const TrianglePairChaseProtocol p(0);
    return run_typed(p, g, plan,
                     [&](TriangleVerdict v, std::ostringstream& os) {
                       const char* verdict =
                           v == TriangleVerdict::kYes
                               ? "TRIANGLE"
                               : (v == TriangleVerdict::kNo ? "none"
                                                            : "unknown");
                       os << "verdict    " << verdict << " (truth: "
                          << (truth ? "TRIANGLE" : "none") << ")\n";
                       // Soundness requirement only: kYes must imply truth.
                       return v != TriangleVerdict::kYes || truth;
                     });
  }
  if (kind == "broken-first") {
    WB_REQUIRE_MSG(parts.size() == 2, "expected broken-first:V");
    const NodeId want = static_cast<NodeId>(parse_u64(parts[1], "V"));
    WB_REQUIRE_MSG(want >= 1 && want <= n, "V out of range");
    const FirstWriterProtocol p;
    return run_typed(p, g, plan,
                     [want](NodeId out, std::ostringstream& os) {
                       const bool ok = out == want;
                       os << "verdict    first writer " << out << " (want "
                          << want << ") — " << (ok ? "as planted" : "WRONG")
                          << "\n";
                       return ok;
                     });
  }
  if (kind == "anon-degree") {
    const AnonDegreeProtocol p;
    AnonDegreeOutput expect;  // sorted degree multiset: once, not per run
    expect.reserve(n);
    for (NodeId v = 1; v <= n; ++v) expect.push_back(g.degree(v));
    std::sort(expect.begin(), expect.end());
    return run_typed(p, g, plan,
                     [expect = std::move(expect)](const AnonDegreeOutput& out,
                                                  std::ostringstream& os) {
                       const bool ok = out == expect;
                       os << "verdict    " << out.size()
                          << " anonymous degrees — "
                          << (ok ? "exact multiset" : "WRONG") << "\n";
                       return ok;
                     });
  }
  if (kind == "spanning-forest") {
    const SpanningForestProtocol p;
    return run_typed(p, g, plan,
                     [&](const SpanningForestOutput& out,
                         std::ostringstream& os) {
                       const bool ok = is_spanning_forest_of(g, out);
                       os << "verdict    " << out.edges.size() << " tree edges, "
                          << out.components << " components, connected="
                          << (out.connected ? "yes" : "no") << " — "
                          << (ok ? "valid" : "WRONG") << "\n";
                       return ok;
                     });
  }
  if (kind == "square-oracle" || kind == "connectivity-oracle" ||
      kind == "diameter-oracle") {
    PropertyOracleProtocol p =
        kind == "square-oracle"
            ? square_oracle()
            : (kind == "connectivity-oracle"
                   ? connectivity_oracle()
                   : diameter_at_most_oracle(static_cast<int>(
                         parse_u64(parts.size() == 2 ? parts[1] : "3", "D"))));
    const bool truth =
        kind == "square-oracle"
            ? has_square(g)
            : (kind == "connectivity-oracle"
                   ? is_connected(g)
                   : (diameter(g) >= 0 &&
                      diameter(g) <= static_cast<int>(parse_u64(
                                         parts.size() == 2 ? parts[1] : "3",
                                         "D"))));
    return run_typed(p, g, plan, [&](bool out, std::ostringstream& os) {
      os << "verdict    " << (out ? "YES" : "NO") << " (truth: "
         << (truth ? "YES" : "NO") << ")\n";
      return out == truth;
    });
  }
  WB_REQUIRE_MSG(false,
                 "unknown protocol '" << kind << "'\n" << protocol_spec_help());
  return {};  // unreachable
}

}  // namespace

RunReport run_protocol_spec(const std::string& spec, const Graph& g,
                            Adversary& adversary) {
  RunPlan plan;
  plan.single = &adversary;
  return std::move(dispatch_spec(spec, g, plan).front());
}

std::vector<RunReport> run_protocol_spec_battery(const std::string& spec,
                                                 const Graph& g,
                                                 std::uint64_t seed,
                                                 const BatchOptions& opts) {
  RunPlan plan;
  plan.seed = seed;
  plan.batch = opts;
  return dispatch_spec(spec, g, plan);
}

RunReport run_protocol_spec_exhaustive(const std::string& spec, const Graph& g,
                                       const ExhaustiveRunOptions& opts) {
  RunPlan plan;
  plan.exhaustive = &opts;
  return std::move(dispatch_spec(spec, g, plan).front());
}

RunReport run_protocol_spec_exhaustive(const std::string& spec, const Graph& g,
                                       std::size_t threads,
                                       std::uint64_t max_executions) {
  ExhaustiveRunOptions opts;
  opts.threads = threads;
  opts.max_executions = max_executions;
  return run_protocol_spec_exhaustive(spec, g, opts);
}

RunReport run_protocol_spec_symbolic(const std::string& spec, const Graph& g,
                                     const SymbolicRunOptions& opts) {
  RunPlan plan;
  plan.symbolic = &opts;
  return std::move(dispatch_spec(spec, g, plan).front());
}

std::vector<shard::ShardSpec> plan_protocol_spec_shards(
    const std::string& protocol_spec, const Graph& g, std::size_t shard_count,
    const shard::PlanOptions& opts) {
  std::vector<shard::ShardSpec> specs;
  ShardPlanRequest request;
  request.shard_count = shard_count;
  request.options = opts;
  request.protocol_spec = protocol_spec;
  request.out = &specs;
  RunPlan plan;
  plan.shard_plan = &request;
  (void)dispatch_spec(protocol_spec, g, plan);
  return specs;
}

shard::ShardResult run_protocol_spec_shard(const shard::ShardSpec& spec,
                                           std::size_t threads) {
  shard::ShardResult result;
  ShardRunRequest request;
  request.spec = &spec;
  request.threads = threads;
  request.out = &result;
  RunPlan plan;
  plan.shard_run = &request;
  (void)dispatch_spec(spec.protocol_spec, spec.graph, plan);
  return result;
}

std::string exhaustive_summary_lines(std::uint64_t executions,
                                     std::uint64_t engine_failures,
                                     std::uint64_t wrong_outputs,
                                     std::uint64_t distinct_boards,
                                     const DistinctConfig& distinct) {
  const std::uint64_t failures = engine_failures + wrong_outputs;
  std::ostringstream os;
  if (distinct.kind == DistinctKind::kExact) {
    os << "schedules  " << executions << " executions, " << distinct_boards
       << " distinct final boards\n";
  } else {
    os << "schedules  " << executions << " executions, ~" << distinct_boards
       << " distinct final boards (" << to_string(distinct) << ")\n";
  }
  os << "verdict    " << (executions - failures) << "/" << executions
     << " executions successful and correct\n";
  return os.str();
}

std::string protocol_spec_help() {
  return "protocols: build-forest build-degenerate:K build-full mis:ROOT\n"
         "           two-cliques rand-two-cliques:SEED eob-bfs bipartite-bfs\n"
         "           sync-bfs subgraph:F triangle-oracle pair-chase\n"
         "           spanning-forest anon-degree square-oracle\n"
         "           diameter-oracle:D connectivity-oracle\n"
         "           krz-triangle:NUM/DEN:SEED\n"
         "           broken-first:V (negative-testing fixture: correct iff\n"
         "           node V writes first — for --counterexample)";
}

}  // namespace wb::cli
