#include "src/cli/runners.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <sstream>
#include <utility>
#include <vector>

#include "src/analysis/board_stats.h"
#include "src/analysis/schedule_stats.h"
#include "src/cli/spec.h"
#include "src/graph/algorithms.h"
#include "src/protocols/bfs_sync.h"
#include "src/protocols/build_degenerate.h"
#include "src/protocols/build_forest.h"
#include "src/protocols/build_full.h"
#include "src/protocols/eob_bfs.h"
#include "src/protocols/mis.h"
#include "src/protocols/oracles.h"
#include "src/protocols/randomized.h"
#include "src/protocols/subgraph.h"
#include "src/protocols/triangle.h"
#include "src/protocols/two_cliques.h"
#include "src/support/hash.h"
#include "src/wb/batch.h"
#include "src/wb/engine.h"
#include "src/wb/exhaustive.h"

namespace wb::cli {

namespace {

/// How a spec dispatch schedules its runs: one borrowed adversary, the
/// seeded standard battery fanned out through the batch engine, or the
/// exhaustive sweep over every schedule (parallel subtree partition).
struct RunPlan {
  Adversary* single = nullptr;  // set: exactly this strategy
  std::uint64_t seed = 0;       // else: standard_adversaries(g, seed)
  BatchOptions batch;
  const ExhaustiveOptions* exhaustive = nullptr;  // set: sweep every schedule
};

void describe_run(std::ostringstream& os, const Graph& g, const Protocol& p,
                  const std::string& adversary, const ExecutionResult& r) {
  os << "protocol   " << p.name() << " (" << model_name(p.model_class())
     << "[" << p.message_bit_limit(g.node_count()) << " bits])\n";
  os << "graph      n=" << g.node_count() << " m=" << g.edge_count() << "\n";
  os << "adversary  " << adversary << "\n";
  os << "status     " << status_name(r.status);
  if (!r.error.empty()) os << " — " << r.error;
  os << "\n";
  const ScheduleStats sched = analyze_schedule(r);
  const BoardStats board = analyze_board(r.board);
  os << "schedule   rounds=" << sched.rounds << " writes=" << sched.writes
     << " activation-waves=" << sched.activation_waves
     << " mean-latency=" << sched.mean_latency << "\n";
  os << "board      bits=" << board.total_bits << " max-msg="
     << board.max_message_bits << " distinct=" << board.distinct_messages
     << " utilization="
     << budget_utilization(board, g.node_count(),
                           p.message_bit_limit(g.node_count()))
     << "\n";
}

/// Exhaustive plan: one report aggregating every adversary schedule, from a
/// SINGLE sweep — output validation and the distinct-board tally share one
/// visitor instead of exploring the n! tree twice. The check callback is
/// invoked concurrently from pool workers — it only reads the (const)
/// graph/protocol and writes to a per-worker sink, so the shared state is
/// the atomic tallies and the mutexed hash buffer (bounded by
/// opts.max_executions, 16 bytes each).
template <typename P, typename Check>
std::vector<RunReport> run_exhaustive(const P& protocol, const Graph& g,
                                      const ExhaustiveOptions& opts,
                                      const Check& check) {
  std::atomic<std::uint64_t> engine_failures{0};
  std::atomic<std::uint64_t> wrong_outputs{0};
  std::mutex hashes_mutex;
  std::vector<Hash128> board_hashes;
  const std::uint64_t executions = for_each_execution(
      g, protocol,
      [&](const ExecutionResult& r) {
        {
          const std::lock_guard<std::mutex> lock(hashes_mutex);
          board_hashes.push_back(r.board.content_hash());
        }
        if (!r.ok()) {
          engine_failures.fetch_add(1, std::memory_order_relaxed);
          return true;
        }
        // The verdict text is discarded; seekp(0) reuses the worker's buffer
        // so the hot loop stays allocation-free after warmup.
        thread_local std::ostringstream sink;
        sink.seekp(0);
        if (!check(protocol.output(r.board, g.node_count()), sink)) {
          wrong_outputs.fetch_add(1, std::memory_order_relaxed);
        }
        return true;
      },
      opts);
  std::sort(board_hashes.begin(), board_hashes.end());
  board_hashes.erase(std::unique(board_hashes.begin(), board_hashes.end()),
                     board_hashes.end());
  const std::uint64_t distinct = board_hashes.size();

  RunReport report;
  report.executed = true;
  report.adversary =
      "exhaustive(threads=" + std::to_string(opts.threads) + ")";
  const std::uint64_t failures = engine_failures.load() + wrong_outputs.load();
  report.correct = failures == 0;
  report.status = engine_failures.load() == 0 ? "success" : "mixed";
  std::ostringstream os;
  os << "protocol   " << protocol.name() << " ("
     << model_name(protocol.model_class()) << "["
     << protocol.message_bit_limit(g.node_count()) << " bits])\n";
  os << "graph      n=" << g.node_count() << " m=" << g.edge_count() << "\n";
  os << "adversary  " << report.adversary << "\n";
  os << "schedules  " << executions << " executions, " << distinct
     << " distinct final boards\n";
  os << "verdict    " << (executions - failures) << "/" << executions
     << " executions successful and correct\n";
  report.summary = os.str();
  return {std::move(report)};
}

/// Run a typed protocol under every strategy of `plan` (all execution goes
/// through the batch engine) and validate each run with `check(output)`.
template <typename P, typename Check>
std::vector<RunReport> run_typed(const P& protocol, const Graph& g,
                                 const RunPlan& plan, const Check& check) {
  if (plan.exhaustive != nullptr) {
    return run_exhaustive(protocol, g, *plan.exhaustive, check);
  }
  std::vector<BatteryRun> runs;
  if (plan.single != nullptr) {
    Trial t;
    t.graph = &g;
    t.protocol = &protocol;
    t.adversary = plan.single;
    runs.push_back(BatteryRun{
        plan.single->name(),
        std::move(run_batch(std::span<const Trial>(&t, 1), plan.batch)
                      .front())});
  } else {
    runs = run_standard_battery(g, protocol, plan.seed, plan.batch);
  }

  std::vector<RunReport> reports;
  reports.reserve(runs.size());
  for (const BatteryRun& run : runs) {
    const ExecutionResult& r = run.result;
    RunReport report;
    report.adversary = run.adversary;
    std::ostringstream os;
    describe_run(os, g, protocol, run.adversary, r);
    report.executed = true;
    report.status = std::string(status_name(r.status));
    if (r.ok()) {
      const auto out = protocol.output(r.board, g.node_count());
      report.correct = check(out, os);
    } else {
      os << "verdict    (no output: run not successful)\n";
    }
    report.summary = os.str();
    reports.push_back(std::move(report));
  }
  return reports;
}

std::vector<RunReport> run_build(const Graph& g, const RunPlan& plan,
                                 const ProtocolWithOutput<BuildOutput>& p) {
  return run_typed(p, g, plan, [&](const BuildOutput& out, std::ostringstream& os) {
    if (!out.has_value()) {
      os << "verdict    rejected (input outside promised class)\n";
      // Rejection is the *correct* answer when the input is truly outside.
      return true;
    }
    const bool exact = *out == g;
    os << "verdict    reconstructed " << out->edge_count() << " edges — "
       << (exact ? "exact" : "WRONG") << "\n";
    return exact;
  });
}

std::vector<RunReport> run_bfs(const Graph& g, const RunPlan& plan,
                               const ProtocolWithOutput<BfsProtocolOutput>& p) {
  // Computed once, not per run: the exhaustive plan invokes the check for
  // every schedule, and the reference forest only depends on g.
  const BfsForest ref = bfs_forest(g);
  const bool eob = is_even_odd_bipartite(g);
  return run_typed(p, g, plan,
                   [&g, ref, eob](const BfsProtocolOutput& out,
                                  std::ostringstream& os) {
                     if (!out.valid) {
                       os << "verdict    input reported invalid\n";
                       return !eob;
                     }
                     const bool ok = out.layer == ref.layer &&
                                     is_valid_bfs_forest(g, out.layer,
                                                         out.parent);
                     os << "verdict    BFS forest with " << out.roots.size()
                        << " roots — " << (ok ? "valid" : "WRONG") << "\n";
                     return ok;
                   });
}

std::vector<RunReport> dispatch_spec(const std::string& spec, const Graph& g,
                                     const RunPlan& plan) {
  const auto parts = split_spec(spec);
  const std::string& kind = parts[0];
  const std::size_t n = g.node_count();

  if (kind == "build-forest") {
    return run_build(g, plan, BuildForestProtocol{});
  }
  if (kind == "build-degenerate") {
    WB_REQUIRE_MSG(parts.size() == 2, "expected build-degenerate:K");
    const int k = static_cast<int>(parse_u64(parts[1], "K"));
    return run_build(g, plan, BuildDegenerateProtocol{k});
  }
  if (kind == "build-full") {
    const BuildFullProtocol p;
    return run_typed(p, g, plan,
                     [&](const Graph& out, std::ostringstream& os) {
                       const bool exact = out == g;
                       os << "verdict    reconstructed " << out.edge_count()
                          << " edges — " << (exact ? "exact" : "WRONG") << "\n";
                       return exact;
                     });
  }
  if (kind == "mis") {
    WB_REQUIRE_MSG(parts.size() == 2, "expected mis:ROOT");
    const NodeId root = static_cast<NodeId>(parse_u64(parts[1], "root"));
    WB_REQUIRE_MSG(root >= 1 && root <= n, "root out of range");
    const RootedMisProtocol p(root);
    return run_typed(p, g, plan,
                     [&](const MisOutput& out, std::ostringstream& os) {
                       const bool ok = is_rooted_mis(g, out, root);
                       os << "verdict    |MIS| = " << out.size() << " — "
                          << (ok ? "valid rooted MIS" : "WRONG") << "\n";
                       return ok;
                     });
  }
  if (kind == "two-cliques" || kind == "rand-two-cliques") {
    const bool truth = is_two_cliques(g);  // once, not per schedule
    auto check = [truth](const TwoCliquesOutput& out, std::ostringstream& os) {
      os << "verdict    " << (out.yes ? "YES" : "NO") << " (truth: "
         << (truth ? "YES" : "NO") << ")\n";
      return out.yes == truth;
    };
    if (kind == "two-cliques") {
      return run_typed(TwoCliquesProtocol{}, g, plan, check);
    }
    WB_REQUIRE_MSG(parts.size() == 2, "expected rand-two-cliques:SEED");
    return run_typed(
        RandomizedTwoCliquesProtocol{parse_u64(parts[1], "seed")}, g, plan,
        check);
  }
  if (kind == "eob-bfs") {
    return run_bfs(g, plan, EobBfsProtocol{});
  }
  if (kind == "bipartite-bfs") {
    return run_bfs(g, plan, EobBfsProtocol{EobMode::kBipartiteNoCheck});
  }
  if (kind == "sync-bfs") {
    return run_bfs(g, plan, SyncBfsProtocol{});
  }
  if (kind == "subgraph") {
    WB_REQUIRE_MSG(parts.size() == 2, "expected subgraph:F");
    const std::size_t f = parse_u64(parts[1], "F");
    const SubgraphProtocol p(f);
    GraphBuilder expect_builder(n);  // reference subgraph: once, not per run
    for (const Edge& e : g.edges()) {
      if (e.u <= f && e.v <= f) expect_builder.add_edge(e.u, e.v);
    }
    const Graph expect = expect_builder.build();
    return run_typed(p, g, plan,
                     [&expect](const Graph& out, std::ostringstream& os) {
                       const bool ok = out == expect;
                       os << "verdict    prefix subgraph with "
                          << out.edge_count() << " edges — "
                          << (ok ? "exact" : "WRONG") << "\n";
                       return ok;
                     });
  }
  if (kind == "triangle-oracle" || kind == "pair-chase") {
    const bool truth = has_triangle(g);
    if (kind == "triangle-oracle") {
      const TriangleOracleProtocol p;
      return run_typed(p, g, plan,
                       [&](bool out, std::ostringstream& os) {
                         os << "verdict    " << (out ? "TRIANGLE" : "none")
                            << " (truth: " << (truth ? "TRIANGLE" : "none")
                            << ")\n";
                         return out == truth;
                       });
    }
    const TrianglePairChaseProtocol p(0);
    return run_typed(p, g, plan,
                     [&](TriangleVerdict v, std::ostringstream& os) {
                       const char* verdict =
                           v == TriangleVerdict::kYes
                               ? "TRIANGLE"
                               : (v == TriangleVerdict::kNo ? "none"
                                                            : "unknown");
                       os << "verdict    " << verdict << " (truth: "
                          << (truth ? "TRIANGLE" : "none") << ")\n";
                       // Soundness requirement only: kYes must imply truth.
                       return v != TriangleVerdict::kYes || truth;
                     });
  }
  if (kind == "spanning-forest") {
    const SpanningForestProtocol p;
    return run_typed(p, g, plan,
                     [&](const SpanningForestOutput& out,
                         std::ostringstream& os) {
                       const bool ok = is_spanning_forest_of(g, out);
                       os << "verdict    " << out.edges.size() << " tree edges, "
                          << out.components << " components, connected="
                          << (out.connected ? "yes" : "no") << " — "
                          << (ok ? "valid" : "WRONG") << "\n";
                       return ok;
                     });
  }
  if (kind == "square-oracle" || kind == "connectivity-oracle" ||
      kind == "diameter-oracle") {
    PropertyOracleProtocol p =
        kind == "square-oracle"
            ? square_oracle()
            : (kind == "connectivity-oracle"
                   ? connectivity_oracle()
                   : diameter_at_most_oracle(static_cast<int>(
                         parse_u64(parts.size() == 2 ? parts[1] : "3", "D"))));
    const bool truth =
        kind == "square-oracle"
            ? has_square(g)
            : (kind == "connectivity-oracle"
                   ? is_connected(g)
                   : (diameter(g) >= 0 &&
                      diameter(g) <= static_cast<int>(parse_u64(
                                         parts.size() == 2 ? parts[1] : "3",
                                         "D"))));
    return run_typed(p, g, plan, [&](bool out, std::ostringstream& os) {
      os << "verdict    " << (out ? "YES" : "NO") << " (truth: "
         << (truth ? "YES" : "NO") << ")\n";
      return out == truth;
    });
  }
  WB_REQUIRE_MSG(false,
                 "unknown protocol '" << kind << "'\n" << protocol_spec_help());
  return {};  // unreachable
}

}  // namespace

RunReport run_protocol_spec(const std::string& spec, const Graph& g,
                            Adversary& adversary) {
  RunPlan plan;
  plan.single = &adversary;
  return std::move(dispatch_spec(spec, g, plan).front());
}

std::vector<RunReport> run_protocol_spec_battery(const std::string& spec,
                                                 const Graph& g,
                                                 std::uint64_t seed,
                                                 const BatchOptions& opts) {
  RunPlan plan;
  plan.seed = seed;
  plan.batch = opts;
  return dispatch_spec(spec, g, plan);
}

RunReport run_protocol_spec_exhaustive(const std::string& spec, const Graph& g,
                                       std::size_t threads,
                                       std::uint64_t max_executions) {
  ExhaustiveOptions opts;
  opts.threads = threads;
  opts.max_executions = max_executions;
  RunPlan plan;
  plan.exhaustive = &opts;
  return std::move(dispatch_spec(spec, g, plan).front());
}

std::string protocol_spec_help() {
  return "protocols: build-forest build-degenerate:K build-full mis:ROOT\n"
         "           two-cliques rand-two-cliques:SEED eob-bfs bipartite-bfs\n"
         "           sync-bfs subgraph:F triangle-oracle pair-chase\n"
         "           spanning-forest square-oracle diameter-oracle:D\n"
         "           connectivity-oracle";
}

}  // namespace wb::cli
