#include "src/reductions/mis_reduction.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/graph/algorithms.h"
#include "src/graph/enumerate.h"
#include "src/graph/generators.h"
#include "src/protocols/mis.h"

namespace wb {
namespace {

/// Brute force: all inclusion-maximal independent sets containing `root`.
std::vector<std::vector<NodeId>> all_rooted_mis(const Graph& g, NodeId root) {
  const std::size_t n = g.node_count();
  std::vector<std::vector<NodeId>> result;
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    if (!((mask >> (root - 1)) & 1u)) continue;
    std::vector<NodeId> s;
    for (NodeId v = 1; v <= n; ++v) {
      if ((mask >> (v - 1)) & 1u) s.push_back(v);
    }
    if (is_maximal_independent_set(g, s)) result.push_back(s);
  }
  return result;
}

TEST(MisGadget, UniqueRootedMisIffNonEdge) {
  // The key property behind Theorem 6, checked by brute force on all 5-node
  // graphs and all pairs.
  for_each_labeled_graph(5, [&](const Graph& g) {
    for (NodeId i = 1; i <= 5; ++i) {
      for (NodeId j = i + 1; j <= 5; ++j) {
        const Graph gadget = mis_gadget(g, i, j);
        const auto sets = all_rooted_mis(gadget, 6);
        if (g.has_edge(i, j)) {
          // Two rooted MIS: {x, v_i} and {x, v_j}.
          EXPECT_EQ(sets.size(), 2u);
        } else {
          ASSERT_EQ(sets.size(), 1u);
          EXPECT_EQ(sets[0], (std::vector<NodeId>{i, j, 6}));
        }
      }
    }
  });
}

TEST(MisGadget, ApexDegree) {
  const Graph g = path_graph(6);
  const Graph gadget = mis_gadget(g, 2, 5);
  EXPECT_EQ(gadget.node_count(), 7u);
  EXPECT_EQ(gadget.degree(7), 4u);
  EXPECT_FALSE(gadget.has_edge(7, 2));
  EXPECT_FALSE(gadget.has_edge(7, 5));
}

TEST(Theorem6Reduction, ReconstructsArbitraryGraphsViaOracle) {
  for (std::uint64_t seed : {4u, 11u, 99u}) {
    const Graph g = erdos_renyi(9, 1, 2, seed);
    const MisOracleProtocol oracle(static_cast<NodeId>(10));  // apex root
    const MisToBuildReduction reduction(oracle);
    const auto result = reduction.run(g);
    EXPECT_EQ(result.reconstructed, g);
    EXPECT_EQ(result.pairs_tested, 36u);
  }
}

TEST(Theorem6Reduction, ExhaustiveSmallGraphs) {
  const MisOracleProtocol oracle(static_cast<NodeId>(5));
  const MisToBuildReduction reduction(oracle);
  for_each_labeled_graph(4, [&](const Graph& g) {
    EXPECT_EQ(reduction.run(g).reconstructed, g);
  });
}

TEST(Theorem6Reduction, DenseAndSparseExtremes) {
  const MisOracleProtocol oracle(static_cast<NodeId>(8));
  const MisToBuildReduction reduction(oracle);
  EXPECT_EQ(reduction.run(complete_graph(7)).reconstructed, complete_graph(7));
  EXPECT_EQ(reduction.run(empty_graph(7)).reconstructed, empty_graph(7));
}

}  // namespace
}  // namespace wb
