#include "src/reductions/triangle_reduction.h"

#include <gtest/gtest.h>

#include "src/graph/algorithms.h"
#include "src/graph/enumerate.h"
#include "src/graph/generators.h"
#include "src/protocols/triangle.h"

namespace wb {
namespace {

TEST(Fig1Gadget, TriangleIffEdgeExhaustiveBipartite) {
  // Figure 1's equivalence over every even-odd-bipartite graph on 6 nodes
  // (triangle-free) and every pair (s,t).
  for_each_even_odd_bipartite_graph(6, [&](const Graph& g) {
    for (NodeId s = 1; s <= 6; ++s) {
      for (NodeId t = s + 1; t <= 6; ++t) {
        const Graph gadget = fig1_gadget(g, s, t);
        EXPECT_EQ(gadget.node_count(), 7u);
        EXPECT_EQ(has_triangle(gadget), g.has_edge(s, t));
      }
    }
  });
}

TEST(Fig1Gadget, PaperExampleShape) {
  // The figure: a 7-node graph, apex node 8 attached to 2 and 7.
  const Graph g = random_bipartite(3, 4, 1, 2, 8);
  const Graph gadget = fig1_gadget(g, 2, 7);
  EXPECT_EQ(gadget.node_count(), 8u);
  EXPECT_EQ(gadget.degree(8), 2u);
  EXPECT_TRUE(gadget.has_edge(8, 2));
  EXPECT_TRUE(gadget.has_edge(8, 7));
}

TEST(Theorem3Reduction, ReconstructsBipartiteGraphsViaOracle) {
  const TriangleOracleProtocol oracle;
  const TriangleToBuildReduction reduction(oracle);
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const Graph g = random_bipartite(5, 5, 1, 2, seed);
    const auto result = reduction.run(g);
    EXPECT_EQ(result.reconstructed, g);
    EXPECT_EQ(result.pairs_tested, 45u);
    // A'-message = id + m' + m'': at least twice the oracle's f(n+1).
    EXPECT_GE(result.aprime_max_message_bits, 2 * (g.node_count() + 1));
  }
}

TEST(Theorem3Reduction, ExhaustiveSmallBipartite) {
  const TriangleOracleProtocol oracle;
  const TriangleToBuildReduction reduction(oracle);
  for_each_even_odd_bipartite_graph(5, [&](const Graph& g) {
    EXPECT_EQ(reduction.run(g).reconstructed, g);
  });
}

TEST(Theorem3Reduction, WorksOnAnyTriangleFreeGraph) {
  const Graph g = cycle_graph(9);  // odd cycle: triangle-free, not bipartite
  const TriangleOracleProtocol oracle;
  const TriangleToBuildReduction reduction(oracle);
  EXPECT_EQ(reduction.run(g).reconstructed, g);
}

TEST(Theorem3Reduction, RejectsTriangleInputs) {
  const TriangleOracleProtocol oracle;
  const TriangleToBuildReduction reduction(oracle);
  EXPECT_THROW((void)reduction.run(complete_graph(3)), LogicError);
}

TEST(Theorem3Reduction, MessageBlowupIsThetaN) {
  // The executable reduction makes Lemma 3's pressure visible: with the
  // Θ(n)-bit oracle, A' messages are ≥ 2n bits — consistent with the theorem
  // that o(n) is impossible.
  const TriangleOracleProtocol oracle;
  const TriangleToBuildReduction reduction(oracle);
  const Graph g = random_bipartite(8, 8, 1, 2, 5);
  const auto result = reduction.run(g);
  EXPECT_GE(result.aprime_max_message_bits, 2u * 16u);
  EXPECT_EQ(result.oracle_message_bits, 17u + 5u);  // n+1 bits row + id
}

}  // namespace
}  // namespace wb
