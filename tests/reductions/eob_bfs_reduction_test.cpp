#include "src/reductions/eob_bfs_reduction.h"

#include <gtest/gtest.h>

#include "src/graph/algorithms.h"
#include "src/graph/generators.h"
#include "src/support/rng.h"

namespace wb {
namespace {

/// Inputs for the Theorem 8 reduction: odd n, node 1 isolated, an
/// even-odd-bipartite graph on {2..n}.
Graph make_input(std::size_t n, std::uint64_t p_num, std::uint64_t p_den,
                 std::uint64_t seed) {
  GraphBuilder b(n);
  Rng rng(seed);
  for (NodeId u = 2; u <= n; ++u) {
    for (NodeId v = u + 1; v <= n; ++v) {
      if ((u % 2) == (v % 2)) continue;
      if (rng.chance(p_num, p_den)) b.add_edge(u, v);
    }
  }
  return b.build();
}

TEST(Fig2Gadget, PaperExampleN7I5) {
  // Figure 2 verbatim: n = 7, i = 5 adds edges 1-10, 3-8, 5-10, 7-12,
  // 2-9, 4-11, 6-13 on top of G.
  GraphBuilder b(7);
  b.add_edge(2, 5);
  b.add_edge(4, 5);
  b.add_edge(3, 6);
  const Graph g = b.build();
  const Graph gadget = fig2_gadget(g, 5);
  EXPECT_EQ(gadget.node_count(), 13u);
  EXPECT_TRUE(gadget.has_edge(1, 10));
  EXPECT_TRUE(gadget.has_edge(3, 8));
  EXPECT_TRUE(gadget.has_edge(5, 10));
  EXPECT_TRUE(gadget.has_edge(7, 12));
  EXPECT_TRUE(gadget.has_edge(2, 9));
  EXPECT_TRUE(gadget.has_edge(4, 11));
  EXPECT_TRUE(gadget.has_edge(6, 13));
  EXPECT_TRUE(is_even_odd_bipartite(gadget));
}

TEST(Fig2Gadget, LayerThreeEqualsNeighborhoodOfVi) {
  // The caption's claim, against reference BFS, over random instances and
  // every odd i.
  for (std::uint64_t seed : {1u, 5u, 31u}) {
    for (std::size_t n : {5u, 7u, 9u, 11u}) {
      const Graph g = make_input(n, 1, 2, seed);
      for (NodeId i = 3; i <= n; i += 2) {
        const Graph gadget = fig2_gadget(g, i);
        const BfsResult bfs = bfs_from(gadget, 1);
        for (NodeId j = 2; j <= n; ++j) {
          if (j == i) continue;
          EXPECT_EQ(bfs.dist[j - 1] == 3, g.has_edge(i, j))
              << "n=" << n << " i=" << i << " j=" << j;
        }
      }
    }
  }
}

TEST(Fig2Gadget, ValidatesInputShape) {
  EXPECT_THROW((void)fig2_gadget(path_graph(6), 3), LogicError);  // even n
  GraphBuilder b(5);
  b.add_edge(1, 2);  // node 1 not isolated
  EXPECT_THROW((void)fig2_gadget(b.build(), 3), LogicError);
  const Graph ok = make_input(5, 1, 2, 3);
  EXPECT_THROW((void)fig2_gadget(ok, 4), LogicError);  // even i
}

TEST(Theorem8Reduction, ReconstructsViaTheAsyncProtocol) {
  const EobBfsProtocol bfs;
  const EobBfsToBuildReduction reduction(bfs);
  for (std::uint64_t seed : {2u, 13u}) {
    for (std::size_t n : {5u, 9u, 13u}) {
      const Graph g = make_input(n, 1, 2, seed);
      const auto result = reduction.run(g);
      EXPECT_EQ(result.reconstructed, g) << "n=" << n << " seed=" << seed;
      EXPECT_EQ(result.gadget_runs, (n - 1) / 2);
      EXPECT_GT(result.total_whiteboard_bits, 0u);
    }
  }
}

TEST(Theorem8Reduction, EmptyAndDenseInputs) {
  const EobBfsProtocol bfs;
  const EobBfsToBuildReduction reduction(bfs);
  const Graph empty = make_input(9, 0, 1, 1);
  EXPECT_EQ(reduction.run(empty).reconstructed, empty);
  const Graph dense = make_input(9, 1, 1, 1);
  EXPECT_EQ(reduction.run(dense).reconstructed, dense);
}

TEST(ForestRootOf, WalksParents) {
  BfsProtocolOutput out;
  out.layer = {0, 1, 2, 0};
  out.parent = {kNoNode, 1, 2, kNoNode};
  EXPECT_EQ(forest_root_of(out, 3), 1u);
  EXPECT_EQ(forest_root_of(out, 1), 1u);
  EXPECT_EQ(forest_root_of(out, 4), 4u);
  BfsProtocolOutput cyclic;
  cyclic.layer = {0, 0};
  cyclic.parent = {2, 1};
  EXPECT_THROW((void)forest_root_of(cyclic, 1), DataError);
}

}  // namespace
}  // namespace wb
