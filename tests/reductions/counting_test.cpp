#include "src/reductions/counting.h"

#include <gtest/gtest.h>

#include <cmath>

namespace wb {
namespace {

TEST(Lemma3Table, RowsCoverFamiliesPerN) {
  const auto rows = lemma3_table({10, 20});
  // 5 families at even n (bipartite included), so 10 rows.
  EXPECT_EQ(rows.size(), 10u);
  for (const auto& row : rows) {
    EXPECT_GT(row.log2_family_size, 0.0) << row.family;
    EXPECT_GT(row.budget_linear, row.budget_logn) << row.family;
  }
}

TEST(Lemma3Table, ForestsAreLogNFeasibleDenseFamiliesAreNot) {
  const auto rows = lemma3_table({64, 256, 1024});
  for (const auto& row : rows) {
    if (row.family.find("forests") != std::string::npos) {
      // log2 F(n) ≈ n log n: within the n·O(log n) budget (Thm 2 exists!).
      EXPECT_TRUE(row.feasible_logn()) << row.family << " n=" << row.n;
    }
    if (row.family.find("all graphs") != std::string::npos) {
      // C(n,2) bits >> n log n: BUILD on all graphs is infeasible (Lemma 3).
      EXPECT_FALSE(row.feasible_logn()) << row.n;
      EXPECT_FALSE(row.feasible_sqrt()) << row.n;
    }
    if (row.family.find("Thm 3") != std::string::npos ||
        row.family.find("Thm 8") != std::string::npos) {
      // n²/4-ish: the families witnessing the MIS/EOB-BFS separations.
      EXPECT_FALSE(row.feasible_logn()) << row.family << " n=" << row.n;
    }
  }
}

TEST(Lemma3Table, SmallNCanBeFeasibleEverywhere) {
  // At tiny n even C(n,2) fits in n·log n — the bounds only bite
  // asymptotically, which the table makes visible.
  const auto rows = lemma3_table({4});
  for (const auto& row : rows) {
    EXPECT_TRUE(row.feasible_logn()) << row.family;
  }
}

TEST(Theorem9Table, FeasibleAtFCountingForcesLinearMessages) {
  // n = 256 is the borderline (C(64,2) = 2016 vs 256·8 = 2048); the gap is
  // decisive from n = 512 on and widens linearly.
  const auto rows = theorem9_table({512, 1024, 4096});
  double prev_min_g = 0.0;
  for (const auto& row : rows) {
    EXPECT_EQ(row.f, row.n / 4);
    // Feasible at the protocol's own budget n·f.
    EXPECT_LE(row.log2_family_size, row.budget_f) << row.n;
    // Counting forces per-node messages of ≈ (f-1)/8 = Θ(n) bits: any
    // g = o(n) — in particular log n — fails even in SYNC.
    EXPECT_GT(row.min_g_bits, std::log2(static_cast<double>(row.n))) << row.n;
    EXPECT_GT(row.log2_family_size, row.budget_logn) << row.n;
    // Linear growth of the forced message size.
    EXPECT_GT(row.min_g_bits, prev_min_g);
    prev_min_g = row.min_g_bits;
  }
}

}  // namespace
}  // namespace wb
