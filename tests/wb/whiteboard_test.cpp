#include "src/wb/whiteboard.h"

#include <gtest/gtest.h>

#include "src/graph/algorithms.h"
#include "src/graph/generators.h"
#include "src/protocols/bfs_sync.h"
#include "src/wb/engine.h"
#include "src/wb/exhaustive.h"

namespace wb {
namespace {

Bits bits_of(std::uint64_t value, int width) {
  BitWriter w;
  w.write_uint(value, width);
  return w.take();
}

TEST(Whiteboard, AppendAndAccess) {
  Whiteboard board;
  EXPECT_TRUE(board.empty());
  board.append(bits_of(3, 4));
  board.append(bits_of(9, 8));
  EXPECT_EQ(board.message_count(), 2u);
  EXPECT_EQ(board.total_bits(), 12u);
  EXPECT_TRUE(board.message(0) == bits_of(3, 4));
  EXPECT_THROW((void)board.message(2), LogicError);
}

struct CountView {
  std::size_t messages = 0;
};
struct SumView {
  std::size_t bits = 0;
};

TEST(WhiteboardCache, BuildsOncePerBoardState) {
  Whiteboard board;
  board.append(bits_of(1, 2));
  int builds = 0;
  auto factory = [&builds](const Whiteboard& b) {
    ++builds;
    return CountView{b.message_count()};
  };
  EXPECT_EQ(board.cached_view<CountView>(factory).messages, 1u);
  EXPECT_EQ(board.cached_view<CountView>(factory).messages, 1u);
  EXPECT_EQ(builds, 1);
}

TEST(WhiteboardCache, AppendInvalidates) {
  Whiteboard board;
  int builds = 0;
  auto factory = [&builds](const Whiteboard& b) {
    ++builds;
    return CountView{b.message_count()};
  };
  (void)board.cached_view<CountView>(factory);
  board.append(bits_of(1, 2));
  EXPECT_EQ(board.cached_view<CountView>(factory).messages, 1u);
  EXPECT_EQ(builds, 2);
}

TEST(WhiteboardCache, DistinctViewTypesDoNotMix) {
  Whiteboard board;
  board.append(bits_of(7, 8));
  auto count_factory = [](const Whiteboard& b) {
    return CountView{b.message_count()};
  };
  auto sum_factory = [](const Whiteboard& b) {
    return SumView{b.total_bits()};
  };
  EXPECT_EQ(board.cached_view<CountView>(count_factory).messages, 1u);
  EXPECT_EQ(board.cached_view<SumView>(sum_factory).bits, 8u);
  EXPECT_EQ(board.cached_view<CountView>(count_factory).messages, 1u);
}

TEST(WhiteboardCache, CopiesShareThePrefixSafely) {
  // The exhaustive explorer copies boards at branch points; a copy's append
  // must not disturb the original's cached view.
  Whiteboard original;
  original.append(bits_of(1, 4));
  int builds = 0;
  auto factory = [&builds](const Whiteboard& b) {
    ++builds;
    return CountView{b.message_count()};
  };
  (void)original.cached_view<CountView>(factory);

  Whiteboard copy = original;
  copy.append(bits_of(2, 4));
  EXPECT_EQ(copy.cached_view<CountView>(factory).messages, 2u);
  EXPECT_EQ(original.cached_view<CountView>(factory).messages, 1u);
  EXPECT_EQ(builds, 2);  // original's view survived the copy's append
}

TEST(WhiteboardCache, ExhaustiveExplorationStaysCorrectWithCaching) {
  // End-to-end guard: the cached parses inside SyncBfs must not leak across
  // explorer branches (every schedule still yields the reference layers).
  const Graph g = complete_bipartite(2, 3);
  const SyncBfsProtocol p;
  const BfsForest ref = bfs_forest(g);
  EXPECT_TRUE(all_executions_ok(g, p, [&](const ExecutionResult& r) {
    return p.output(r.board, 5).layer == ref.layer;
  }));
}

}  // namespace
}  // namespace wb
