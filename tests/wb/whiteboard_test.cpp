#include "src/wb/whiteboard.h"

#include <gtest/gtest.h>

#include "src/graph/algorithms.h"
#include "src/graph/generators.h"
#include "src/protocols/bfs_sync.h"
#include "src/wb/engine.h"
#include "src/wb/exhaustive.h"

namespace wb {
namespace {

Bits bits_of(std::uint64_t value, int width) {
  BitWriter w;
  w.write_uint(value, width);
  return w.take();
}

TEST(Whiteboard, AppendAndAccess) {
  Whiteboard board;
  EXPECT_TRUE(board.empty());
  board.append(bits_of(3, 4));
  board.append(bits_of(9, 8));
  EXPECT_EQ(board.message_count(), 2u);
  EXPECT_EQ(board.total_bits(), 12u);
  EXPECT_TRUE(board.message(0) == bits_of(3, 4));
  EXPECT_THROW((void)board.message(2), LogicError);
}

struct CountView {
  std::size_t messages = 0;
};
struct SumView {
  std::size_t bits = 0;
};

TEST(WhiteboardCache, BuildsOncePerBoardState) {
  Whiteboard board;
  board.append(bits_of(1, 2));
  int builds = 0;
  auto factory = [&builds](const Whiteboard& b) {
    ++builds;
    return CountView{b.message_count()};
  };
  EXPECT_EQ(board.cached_view<CountView>(factory).messages, 1u);
  EXPECT_EQ(board.cached_view<CountView>(factory).messages, 1u);
  EXPECT_EQ(builds, 1);
}

TEST(WhiteboardCache, AppendInvalidates) {
  Whiteboard board;
  int builds = 0;
  auto factory = [&builds](const Whiteboard& b) {
    ++builds;
    return CountView{b.message_count()};
  };
  (void)board.cached_view<CountView>(factory);
  board.append(bits_of(1, 2));
  EXPECT_EQ(board.cached_view<CountView>(factory).messages, 1u);
  EXPECT_EQ(builds, 2);
}

TEST(WhiteboardCache, DistinctViewTypesDoNotMix) {
  Whiteboard board;
  board.append(bits_of(7, 8));
  auto count_factory = [](const Whiteboard& b) {
    return CountView{b.message_count()};
  };
  auto sum_factory = [](const Whiteboard& b) {
    return SumView{b.total_bits()};
  };
  EXPECT_EQ(board.cached_view<CountView>(count_factory).messages, 1u);
  EXPECT_EQ(board.cached_view<SumView>(sum_factory).bits, 8u);
  EXPECT_EQ(board.cached_view<CountView>(count_factory).messages, 1u);
}

TEST(WhiteboardCache, CopiesShareThePrefixSafely) {
  // The exhaustive explorer copies boards at branch points; a copy's append
  // must not disturb the original's cached view.
  Whiteboard original;
  original.append(bits_of(1, 4));
  int builds = 0;
  auto factory = [&builds](const Whiteboard& b) {
    ++builds;
    return CountView{b.message_count()};
  };
  (void)original.cached_view<CountView>(factory);

  Whiteboard copy = original;
  copy.append(bits_of(2, 4));
  EXPECT_EQ(copy.cached_view<CountView>(factory).messages, 2u);
  EXPECT_EQ(original.cached_view<CountView>(factory).messages, 1u);
  EXPECT_EQ(builds, 2);  // original's view survived the copy's append
}

TEST(Whiteboard, TruncateUnwindsAppends) {
  Whiteboard board;
  board.append(bits_of(1, 4));
  board.append(bits_of(2, 8));
  board.append(bits_of(3, 16));
  ASSERT_EQ(board.total_bits(), 28u);
  board.truncate(1);
  EXPECT_EQ(board.message_count(), 1u);
  EXPECT_EQ(board.total_bits(), 4u);
  EXPECT_TRUE(board.message(0) == bits_of(1, 4));
  // Re-append after truncation: the board behaves like a fresh prefix.
  board.append(bits_of(9, 8));
  EXPECT_EQ(board.message_count(), 2u);
  EXPECT_EQ(board.total_bits(), 12u);
  EXPECT_TRUE(board.message(1) == bits_of(9, 8));
  board.truncate(0);
  EXPECT_TRUE(board.empty());
  EXPECT_EQ(board.total_bits(), 0u);
}

TEST(Whiteboard, CopyIsStructuralSharingAndCopiesDivergeSafely) {
  // The engine snapshots a board into every ExecutionResult; the snapshot
  // must stay intact while the original backtracks (truncates) and explores
  // a different branch.
  Whiteboard original;
  original.append(bits_of(1, 4));
  original.append(bits_of(2, 4));
  original.append(bits_of(3, 4));
  const Whiteboard snapshot = original;  // O(1) copy

  original.truncate(1);
  original.append(bits_of(7, 4));
  original.append(bits_of(8, 4));

  ASSERT_EQ(snapshot.message_count(), 3u);
  EXPECT_TRUE(snapshot.message(0) == bits_of(1, 4));
  EXPECT_TRUE(snapshot.message(1) == bits_of(2, 4));
  EXPECT_TRUE(snapshot.message(2) == bits_of(3, 4));
  EXPECT_EQ(snapshot.total_bits(), 12u);

  ASSERT_EQ(original.message_count(), 3u);
  EXPECT_TRUE(original.message(0) == bits_of(1, 4));
  EXPECT_TRUE(original.message(1) == bits_of(7, 4));
  EXPECT_TRUE(original.message(2) == bits_of(8, 4));
}

TEST(Whiteboard, BothForksOfACopyCanAppend) {
  Whiteboard a;
  a.append(bits_of(5, 4));
  Whiteboard b = a;
  a.append(bits_of(6, 4));
  b.append(bits_of(7, 4));
  ASSERT_EQ(a.message_count(), 2u);
  ASSERT_EQ(b.message_count(), 2u);
  EXPECT_TRUE(a.message(1) == bits_of(6, 4));
  EXPECT_TRUE(b.message(1) == bits_of(7, 4));
  EXPECT_TRUE(a.message(0) == b.message(0));
}

TEST(Whiteboard, MovedFromBoardIsEmptyAndReusable) {
  // finish() && moves the engine's board out; the moved-from board must
  // report empty (not a stale count over null storage) and accept appends.
  Whiteboard a;
  a.append(bits_of(5, 4));
  a.append(bits_of(6, 4));
  const Whiteboard b = std::move(a);
  EXPECT_TRUE(a.empty());                  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(a.message_count(), 0u);
  EXPECT_EQ(a.total_bits(), 0u);
  EXPECT_THROW((void)a.message(0), LogicError);
  ASSERT_EQ(b.message_count(), 2u);
  EXPECT_TRUE(b.message(1) == bits_of(6, 4));

  a.append(bits_of(9, 8));
  EXPECT_EQ(a.message_count(), 1u);
  EXPECT_EQ(a.total_bits(), 8u);

  Whiteboard c;
  c = std::move(a);  // move-assignment path
  EXPECT_TRUE(a.empty());                  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(c.message_count(), 1u);
  EXPECT_TRUE(c.message(0) == bits_of(9, 8));
}

TEST(Whiteboard, ContentHashMatchesContentEquality) {
  Whiteboard a, b;
  a.append(bits_of(3, 4));
  a.append(bits_of(250, 8));
  b.append(bits_of(3, 4));
  b.append(bits_of(250, 8));
  EXPECT_EQ(a.content_hash(), b.content_hash());

  // Same totals, different message boundaries: 4+8 bits vs 8+4 bits.
  Whiteboard c;
  c.append(bits_of(3, 8));
  c.append(bits_of(250 & 0xf, 4));
  EXPECT_NE(a.content_hash(), c.content_hash());

  // Same messages, different order.
  Whiteboard d;
  d.append(bits_of(250, 8));
  d.append(bits_of(3, 4));
  EXPECT_NE(a.content_hash(), d.content_hash());

  // Dirty construction tails must not leak into the hash (word-wise hashing
  // relies on masked tails).
  Whiteboard clean, dirty;
  clean.append(Bits(std::vector<std::uint64_t>{0b1011}, 4));
  dirty.append(Bits(std::vector<std::uint64_t>{0xffffffffffffff0bULL}, 4));
  EXPECT_EQ(clean.content_hash(), dirty.content_hash());

  // Empty boards hash consistently too.
  EXPECT_EQ(Whiteboard().content_hash(), Whiteboard().content_hash());
  EXPECT_NE(Whiteboard().content_hash(), a.content_hash());
}

TEST(WhiteboardCache, SurvivesTruncateBackToTheCachedPrefix) {
  // truncate() keeps a cached view of a still-live prefix: the explorer
  // rewinds to a checkpoint and must not re-parse the unchanged board.
  Whiteboard board;
  board.append(bits_of(1, 2));
  int builds = 0;
  auto factory = [&builds](const Whiteboard& b) {
    ++builds;
    return CountView{b.message_count()};
  };
  EXPECT_EQ(board.cached_view<CountView>(factory).messages, 1u);
  board.append(bits_of(2, 2));
  EXPECT_EQ(board.cached_view<CountView>(factory).messages, 2u);
  board.truncate(2);  // no-op truncate keeps the count-2 view
  EXPECT_EQ(board.cached_view<CountView>(factory).messages, 2u);
  EXPECT_EQ(builds, 2);
  board.truncate(1);
  board.append(bits_of(3, 2));  // count back to 2, but different content
  EXPECT_EQ(board.cached_view<CountView>(factory).messages, 2u);
  EXPECT_EQ(builds, 3);  // append invalidated the stale count-2 view
}

TEST(WhiteboardCache, ExhaustiveExplorationStaysCorrectWithCaching) {
  // End-to-end guard: the cached parses inside SyncBfs must not leak across
  // explorer branches (every schedule still yields the reference layers).
  const Graph g = complete_bipartite(2, 3);
  const SyncBfsProtocol p;
  const BfsForest ref = bfs_forest(g);
  EXPECT_TRUE(all_executions_ok(g, p, [&](const ExecutionResult& r) {
    return p.output(r.board, 5).layer == ref.layer;
  }));
}

}  // namespace
}  // namespace wb
