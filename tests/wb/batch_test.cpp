#include "src/wb/batch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "src/graph/generators.h"
#include "src/protocols/build_forest.h"
#include "src/protocols/mis.h"
#include "tests/wb/test_protocols.h"

namespace wb {
namespace {

void expect_identical(const ExecutionResult& a, const ExecutionResult& b,
                      std::size_t trial) {
  EXPECT_EQ(a.status, b.status) << "trial " << trial;
  EXPECT_EQ(a.error, b.error) << "trial " << trial;
  EXPECT_EQ(a.write_order, b.write_order) << "trial " << trial;
  ASSERT_EQ(a.board.message_count(), b.board.message_count())
      << "trial " << trial;
  for (std::size_t i = 0; i < a.board.message_count(); ++i) {
    EXPECT_TRUE(a.board.message(i) == b.board.message(i))
        << "trial " << trial << " message " << i;
  }
  EXPECT_EQ(a.stats.rounds, b.stats.rounds) << "trial " << trial;
  EXPECT_EQ(a.stats.writes, b.stats.writes) << "trial " << trial;
  EXPECT_EQ(a.stats.max_message_bits, b.stats.max_message_bits)
      << "trial " << trial;
  EXPECT_EQ(a.stats.total_bits, b.stats.total_bits) << "trial " << trial;
  EXPECT_EQ(a.stats.activation_round, b.stats.activation_round)
      << "trial " << trial;
  EXPECT_EQ(a.stats.write_round, b.stats.write_round) << "trial " << trial;
}

/// A mixed trial matrix: several graph families × protocols × seeded random
/// adversaries, enough work that scheduling differences would surface.
struct Matrix {
  std::vector<Graph> graphs;
  std::vector<std::unique_ptr<Protocol>> protocols;  // parallel to graphs
  std::vector<Trial> trials;

  Matrix() {
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      graphs.push_back(random_forest(30, 75, seed));
      protocols.push_back(std::make_unique<BuildForestProtocol>());
      graphs.push_back(connected_gnp(24, 1, 4, seed));
      protocols.push_back(std::make_unique<RootedMisProtocol>(
          static_cast<NodeId>(1 + seed % 24)));
      graphs.push_back(erdos_renyi(20, 1, 3, seed));
      protocols.push_back(std::make_unique<testing::BoardSizeProtocol>());
    }
    trials.resize(graphs.size());
    for (std::size_t i = 0; i < trials.size(); ++i) {
      trials[i].graph = &graphs[i];
      trials[i].protocol = protocols[i].get();
      trials[i].make_adversary = [](std::uint64_t trial_seed) {
        return std::make_unique<RandomAdversary>(trial_seed);
      };
    }
  }
};

TEST(Batch, SameSeedIdenticalResultsAtAnyThreadCount) {
  const Matrix m;
  const BatchOptions base{.threads = 1, .seed = 42};
  const std::vector<ExecutionResult> reference = run_batch(m.trials, base);
  ASSERT_EQ(reference.size(), m.trials.size());

  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  for (const std::size_t threads : {std::size_t{4}, hw}) {
    const std::vector<ExecutionResult> parallel =
        run_batch(m.trials, BatchOptions{.threads = threads, .seed = 42});
    ASSERT_EQ(parallel.size(), reference.size()) << threads << " threads";
    for (std::size_t i = 0; i < reference.size(); ++i) {
      expect_identical(reference[i], parallel[i], i);
    }
  }
}

TEST(Batch, DifferentSeedsDifferentSchedules) {
  const Matrix m;
  const auto a = run_batch(m.trials, BatchOptions{.threads = 4, .seed = 1});
  const auto b = run_batch(m.trials, BatchOptions{.threads = 4, .seed = 2});
  // The random adversaries are seeded per trial, so at least one of the
  // write orders must differ between base seeds.
  bool any_difference = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].write_order != b[i].write_order) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

TEST(Batch, TrialSeedIsPureInBaseAndIndex) {
  EXPECT_EQ(trial_seed(7, 0), trial_seed(7, 0));
  EXPECT_NE(trial_seed(7, 0), trial_seed(7, 1));
  EXPECT_NE(trial_seed(7, 0), trial_seed(8, 0));
  // Consecutive indices must not collide over a realistic batch size.
  std::vector<std::uint64_t> seeds;
  for (std::size_t i = 0; i < 4096; ++i) seeds.push_back(trial_seed(3, i));
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()), seeds.end());
}

TEST(Batch, StandardBatteryMatchesSerialLoop) {
  const Graph g = random_forest(40, 70, 9);
  const BuildForestProtocol p;
  const std::vector<BatteryRun> batch = run_standard_battery(g, p, 9);

  auto battery = standard_adversaries(g, 9);
  ASSERT_EQ(batch.size(), battery.size());
  for (std::size_t i = 0; i < battery.size(); ++i) {
    EXPECT_EQ(batch[i].adversary, battery[i]->name());
    const ExecutionResult serial = run_protocol(g, p, *battery[i]);
    expect_identical(serial, batch[i].result, i);
  }
}

TEST(Batch, BorrowedAdversaryIsResetAndUsed) {
  const Graph g = path_graph(12);
  const testing::EchoIdProtocol p;
  LastAdversary adv;
  Trial t;
  t.graph = &g;
  t.protocol = &p;
  t.adversary = &adv;
  const auto results = run_batch(std::span<const Trial>(&t, 1));
  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].ok());
  // LastAdversary writes in descending candidate order.
  EXPECT_EQ(results[0].write_order.front(), NodeId{12});
}

TEST(Batch, SmallestIndexExceptionWinsDeterministically) {
  const Graph g = path_graph(6);
  const testing::EchoIdProtocol p;
  std::vector<Trial> trials(6);
  for (auto& t : trials) {
    t.graph = &g;
    t.protocol = &p;
  }
  trials[1].make_adversary = [](std::uint64_t) -> std::unique_ptr<Adversary> {
    throw DataError("boom at index 1");
  };
  trials[4].make_adversary = [](std::uint64_t) -> std::unique_ptr<Adversary> {
    throw LogicError("boom at index 4");
  };
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    EXPECT_THROW((void)run_batch(trials, BatchOptions{.threads = threads}),
                 DataError)
        << threads << " threads";
  }
}

}  // namespace
}  // namespace wb
