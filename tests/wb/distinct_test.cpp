// The DistinctAccumulator surface: config grammar, factory dispatch, the
// exact accumulator's bit-identity with the raw sorted-run machinery it
// wraps, and the cross-kind merge guard.
#include "src/wb/distinct.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <random>
#include <vector>

#include "src/support/check.h"

namespace wb {
namespace {

Hash128 key_of(std::uint64_t i) {
  const std::uint64_t lo = mix64(i + 1);
  return Hash128{lo, mix64(lo)};
}

TEST(DistinctConfig, ParsesAndFormatsCanonically) {
  EXPECT_EQ(parse_distinct_config("exact"), DistinctConfig::Exact());
  EXPECT_EQ(parse_distinct_config("hll"), DistinctConfig::Hll());
  EXPECT_EQ(parse_distinct_config("hll:8"), DistinctConfig::Hll(8));
  EXPECT_EQ(parse_distinct_config("hll:18"), DistinctConfig::Hll(18));

  EXPECT_EQ(to_string(DistinctConfig::Exact()), "exact");
  EXPECT_EQ(to_string(DistinctConfig::Hll(14)), "hll:14");
  for (const char* text : {"exact", "hll:4", "hll:14", "hll:18"}) {
    EXPECT_EQ(to_string(parse_distinct_config(text)), text) << text;
  }
  // The bare "hll" normalizes to the default precision.
  EXPECT_EQ(to_string(parse_distinct_config("hll")),
            "hll:" + std::to_string(DistinctConfig::kDefaultHllPrecision));
}

TEST(DistinctConfig, ExactEqualityIgnoresTheMeaninglessPrecisionField) {
  // Precision is hll-only; two exact configs must compare equal no matter
  // what the field holds (a round-trip through text resets it to the
  // default, and merge validation compares configs).
  const DistinctConfig a{DistinctKind::kExact, 12};
  EXPECT_EQ(a, DistinctConfig::Exact());
  EXPECT_EQ(parse_distinct_config(to_string(a)), a);
  EXPECT_NE(DistinctConfig::Hll(12), DistinctConfig::Hll(14));
  EXPECT_NE(DistinctConfig::Exact(), DistinctConfig::Hll());
}

TEST(DistinctConfig, RejectsMalformedSpecs) {
  for (const char* text :
       {"", "Exact", "exactly", "hhl", "hll:", "hll:x", "hll:3", "hll:19",
        "hll:014", "hll:140", "hll:14:2", "exact:4"}) {
    EXPECT_THROW((void)parse_distinct_config(text), DataError) << text;
  }
}

TEST(DistinctAccumulator, FactoryDispatchesOnKind) {
  const auto exact = make_distinct_accumulator(DistinctConfig::Exact());
  EXPECT_EQ(exact->config(), DistinctConfig::Exact());
  const auto hll = make_distinct_accumulator(DistinctConfig::Hll(9));
  EXPECT_EQ(hll->config(), DistinctConfig::Hll(9));
}

TEST(DistinctAccumulator, ExactMatchesTheRawSortedRunMachinery) {
  // The accumulator is the old StreamingDistinct + union_sorted_runs path
  // behind an interface; counts and the key set itself must be identical.
  std::vector<Hash128> keys;
  for (std::uint64_t i = 0; i < 5'000; ++i) {
    keys.push_back(key_of(i % 1'700));  // duplicates on purpose
  }
  StreamingDistinct reference;
  ExactDistinctAccumulator acc;
  for (const Hash128& k : keys) {
    reference.add(k);
    acc.insert(k);
  }
  EXPECT_EQ(acc.estimate(), 1'700u);
  EXPECT_EQ(acc.take_sorted(), reference.take_sorted());
}

TEST(DistinctAccumulator, ExactMergeIsOrderObliviousAndExact) {
  constexpr std::size_t kParts = 5;
  std::vector<std::unique_ptr<DistinctAccumulator>> parts;
  for (std::size_t k = 0; k < kParts; ++k) {
    parts.push_back(make_distinct_accumulator(DistinctConfig::Exact()));
  }
  ExactDistinctAccumulator whole;
  for (std::uint64_t i = 0; i < 10'000; ++i) {
    const Hash128 k = key_of(i % 4'096);
    whole.insert(k);
    parts[i % kParts]->insert(k);
  }
  std::mt19937 rng(0xABBA);
  std::shuffle(parts.begin(), parts.end(), rng);
  std::unique_ptr<DistinctAccumulator> total = std::move(parts.front());
  for (std::size_t k = 1; k < kParts; ++k) {
    total->merge(std::move(*parts[k]));
  }
  EXPECT_EQ(total->estimate(), 4'096u);
  EXPECT_EQ(static_cast<ExactDistinctAccumulator&>(*total).take_sorted(),
            whole.take_sorted());
}

TEST(DistinctAccumulator, HllMergeMatchesSingleStream) {
  auto whole = make_distinct_accumulator(DistinctConfig::Hll(12));
  auto left = make_distinct_accumulator(DistinctConfig::Hll(12));
  auto right = make_distinct_accumulator(DistinctConfig::Hll(12));
  for (std::uint64_t i = 0; i < 20'000; ++i) {
    const Hash128 k = key_of(i);
    whole->insert(k);
    (i % 2 == 0 ? left : right)->insert(k);
  }
  left->merge(std::move(*right));
  EXPECT_EQ(left->estimate(), whole->estimate());
  EXPECT_EQ(static_cast<HllDistinctAccumulator&>(*left).sketch(),
            static_cast<HllDistinctAccumulator&>(*whole).sketch());
}

TEST(DistinctAccumulator, MixedKindMergeIsALogicError) {
  auto exact = make_distinct_accumulator(DistinctConfig::Exact());
  auto hll = make_distinct_accumulator(DistinctConfig::Hll());
  EXPECT_THROW(exact->merge(std::move(*hll)), LogicError);
  auto hll2 = make_distinct_accumulator(DistinctConfig::Hll());
  auto exact2 = make_distinct_accumulator(DistinctConfig::Exact());
  EXPECT_THROW(hll2->merge(std::move(*exact2)), LogicError);
  // Same kind, different precision: also refused.
  auto p12 = make_distinct_accumulator(DistinctConfig::Hll(12));
  auto p14 = make_distinct_accumulator(DistinctConfig::Hll(14));
  EXPECT_THROW(p12->merge(std::move(*p14)), LogicError);
}

TEST(DistinctAccumulator, FromSortedAdoptsARunWithoutRecounting) {
  std::vector<Hash128> run = {key_of(1), key_of(2), key_of(3)};
  std::sort(run.begin(), run.end());
  ExactDistinctAccumulator acc = ExactDistinctAccumulator::from_sorted(run);
  EXPECT_EQ(acc.estimate(), 3u);
  acc.insert(run.front());  // duplicate: no change
  EXPECT_EQ(acc.estimate(), 3u);
  acc.insert(key_of(99));
  EXPECT_EQ(acc.estimate(), 4u);
}

}  // namespace
}  // namespace wb
