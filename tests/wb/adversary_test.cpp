#include "src/wb/adversary.h"

#include <gtest/gtest.h>

#include <set>

#include "src/graph/generators.h"
#include "src/wb/engine.h"
#include "tests/wb/test_protocols.h"

namespace wb {
namespace {

std::vector<NodeId> ids(std::initializer_list<NodeId> v) { return v; }

TEST(Adversaries, FirstAndLastPickExtremes) {
  FirstAdversary first;
  LastAdversary last;
  const auto cands = ids({2, 5, 9});
  const Whiteboard board;
  EXPECT_EQ(first.choose(cands, board, 1), 0u);
  EXPECT_EQ(last.choose(cands, board, 1), 2u);
}

TEST(Adversaries, RandomIsDeterministicPerSeedAndResets) {
  RandomAdversary a(5), b(5);
  const auto cands = ids({1, 2, 3, 4, 5, 6, 7});
  const Whiteboard board;
  std::vector<std::size_t> seq_a, seq_b;
  for (std::size_t r = 0; r < 20; ++r) {
    seq_a.push_back(a.choose(cands, board, r));
    seq_b.push_back(b.choose(cands, board, r));
  }
  EXPECT_EQ(seq_a, seq_b);
  a.reset();
  std::vector<std::size_t> seq_c;
  for (std::size_t r = 0; r < 20; ++r) seq_c.push_back(a.choose(cands, board, r));
  EXPECT_EQ(seq_a, seq_c);
}

TEST(Adversaries, RotatingCoversInterior) {
  RotatingAdversary rot;
  const auto cands = ids({1, 2, 3, 4, 5});
  const Whiteboard board;
  std::set<std::size_t> picks;
  for (std::size_t r = 0; r < 10; ++r) picks.insert(rot.choose(cands, board, r));
  EXPECT_GT(picks.size(), 1u);
}

TEST(Adversaries, DegreeBasedPickByDegree) {
  const Graph g = star_graph(5);  // node 1 has degree 4, leaves degree 1
  MaxDegreeAdversary maxd(g);
  MinDegreeAdversary mind(g);
  const auto cands = ids({1, 2, 3});
  const Whiteboard board;
  EXPECT_EQ(cands[maxd.choose(cands, board, 1)], 1u);
  EXPECT_NE(cands[mind.choose(cands, board, 1)], 1u);
}

TEST(Adversaries, ScriptedFollowsAndValidates) {
  ScriptedAdversary adv({3, 1, 2});
  const Whiteboard board;
  EXPECT_EQ(adv.choose(ids({1, 2, 3}), board, 1), 2u);  // 3
  EXPECT_EQ(adv.choose(ids({1, 2}), board, 2), 0u);     // 1
  EXPECT_THROW((void)adv.choose(ids({4}), board, 3), LogicError);  // wants 2
}

TEST(Adversaries, ScriptedExhaustionThrows) {
  ScriptedAdversary adv({1});
  const Whiteboard board;
  (void)adv.choose(ids({1}), board, 1);
  EXPECT_THROW((void)adv.choose(ids({2}), board, 2), LogicError);
}

TEST(Adversaries, PreferenceSkipsMissingEntries) {
  PreferenceAdversary adv({9, 4, 2});
  const Whiteboard board;
  EXPECT_EQ(adv.choose(ids({2, 4}), board, 1), 1u);   // 9 absent → 4
  EXPECT_EQ(adv.choose(ids({2, 7}), board, 2), 0u);   // 9,4 absent → 2
  EXPECT_EQ(adv.choose(ids({5, 7}), board, 3), 0u);   // script exhausted → first
}

TEST(Adversaries, ScriptedDrivesEngineInExactOrder) {
  const Graph g = complete_graph(4);
  const testing::EchoIdProtocol p;
  ScriptedAdversary adv({4, 2, 1, 3});
  const ExecutionResult r = run_protocol(g, p, adv);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.write_order, (std::vector<NodeId>{4, 2, 1, 3}));
}

TEST(Adversaries, StandardBatteryIsDiverse) {
  const Graph g = path_graph(5);
  auto battery = standard_adversaries(g, 7);
  EXPECT_GE(battery.size(), 6u);
  std::set<std::string> names;
  for (auto& adv : battery) names.insert(adv->name());
  EXPECT_GE(names.size(), 6u);
}

}  // namespace
}  // namespace wb
