// Frontier-engine equivalence: EngineOptions::frontier must be a pure
// optimization. Every suite here runs the frontier engine in lockstep with
// the reference engine — same graph, same protocol, same adversary choices —
// and requires bit-identical observables at every round: candidate sets,
// whiteboard contents, terminal status, error strings, stats, write order,
// and trace. The exhaustive suites branch over *every* adversary schedule on
// small instances, so a locality claim a protocol does not honor (or a
// frontier bookkeeping bug) cannot hide behind one lucky ordering.
#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "src/graph/generators.h"
#include "src/protocols/bfs_sync.h"
#include "src/protocols/eob_bfs.h"
#include "src/protocols/mis.h"
#include "src/protocols/oracles.h"
#include "src/protocols/two_cliques.h"
#include "src/support/check.h"
#include "src/wb/engine.h"
#include "tests/wb/test_protocols.h"

namespace wb {
namespace {

void ExpectSameResult(const ExecutionResult& ref, const ExecutionResult& fro) {
  EXPECT_EQ(ref.status, fro.status);
  EXPECT_EQ(ref.error, fro.error);
  ASSERT_EQ(ref.board.message_count(), fro.board.message_count());
  EXPECT_EQ(ref.board.content_hash(), fro.board.content_hash());
  EXPECT_EQ(ref.write_order, fro.write_order);
  EXPECT_EQ(ref.stats.rounds, fro.stats.rounds);
  EXPECT_EQ(ref.stats.writes, fro.stats.writes);
  EXPECT_EQ(ref.stats.max_message_bits, fro.stats.max_message_bits);
  EXPECT_EQ(ref.stats.total_bits, fro.stats.total_bits);
  EXPECT_EQ(ref.stats.activation_round, fro.stats.activation_round);
  EXPECT_EQ(ref.stats.write_round, fro.stats.write_round);
  ASSERT_EQ(ref.trace.size(), fro.trace.size());
  for (std::size_t i = 0; i < ref.trace.size(); ++i) {
    EXPECT_EQ(ref.trace[i].round, fro.trace[i].round) << "trace event " << i;
    EXPECT_EQ(ref.trace[i].kind, fro.trace[i].kind) << "trace event " << i;
    EXPECT_EQ(ref.trace[i].node, fro.trace[i].node) << "trace event " << i;
  }
}

/// Explores every adversary schedule, advancing a reference state and a
/// frontier state in lockstep and comparing all observables at each round.
/// Branching copies both states (EngineState copies are cheap; the frontier
/// engine does not support journaling, by design).
class LockstepExplorer {
 public:
  LockstepExplorer(const Graph& g, const Protocol& p) : graph_(g) {
    EngineOptions ref_opts{.record_trace = true};
    EngineOptions fro_opts{.record_trace = true, .frontier = true};
    Explore(EngineState(g, p, ref_opts), EngineState(g, p, fro_opts));
  }

  [[nodiscard]] std::size_t executions() const { return executions_; }

 private:
  void Explore(EngineState ref, EngineState fro) {
    while (true) {
      ref.begin_round();
      fro.begin_round();
      ASSERT_EQ(ref.terminal(), fro.terminal())
          << "round " << ref.round() << " on n=" << graph_.node_count();
      ASSERT_EQ(ref.round(), fro.round());
      if (ref.terminal()) {
        ExpectSameResult(std::move(ref).finish(), std::move(fro).finish());
        ++executions_;
        return;
      }
      const std::vector<NodeId> cands(ref.candidates().begin(),
                                      ref.candidates().end());
      const std::vector<NodeId> fro_cands(fro.candidates().begin(),
                                          fro.candidates().end());
      ASSERT_EQ(cands, fro_cands) << "round " << ref.round();
      if (cands.size() == 1) {
        ref.write(0);
        fro.write(0);
        continue;
      }
      for (std::size_t i = 0; i < cands.size(); ++i) {
        EngineState ref_branch = ref;
        EngineState fro_branch = fro;
        ref_branch.write(i);
        fro_branch.write(i);
        Explore(std::move(ref_branch), std::move(fro_branch));
        if (::testing::Test::HasFatalFailure()) return;
      }
      return;
    }
  }

  const Graph& graph_;
  std::size_t executions_ = 0;
};

std::vector<Graph> SmallGraphZoo() {
  std::vector<Graph> zoo;
  zoo.push_back(path_graph(4));
  zoo.push_back(cycle_graph(5));
  zoo.push_back(star_graph(5));
  zoo.push_back(complete_graph(4));
  zoo.push_back(two_cliques(2));
  zoo.push_back(grid_graph(2, 2));
  zoo.push_back(empty_graph(3));
  zoo.push_back(random_tree(5, 7));
  return zoo;
}

void ExhaustiveEquivalence(const Protocol& p) {
  for (const Graph& g : SmallGraphZoo()) {
    LockstepExplorer explorer(g, p);
    if (::testing::Test::HasFatalFailure()) {
      FAIL() << p.name() << " diverged on n=" << g.node_count()
             << " m=" << g.edge_count();
    }
    EXPECT_GT(explorer.executions(), 0u);
  }
}

// --- Exhaustive lockstep across the protocol zoo ---
// Locality-claiming protocols (the shortcut paths must stay bit-identical):

TEST(FrontierEquivalence, SyncBfsExhaustive) {
  ExhaustiveEquivalence(SyncBfsProtocol{});
}

TEST(FrontierEquivalence, SpanningForestExhaustive) {
  ExhaustiveEquivalence(SpanningForestProtocol{});
}

TEST(FrontierEquivalence, RootedMisExhaustive) {
  ExhaustiveEquivalence(RootedMisProtocol(1));
  ExhaustiveEquivalence(RootedMisProtocol(3));
}

TEST(FrontierEquivalence, RumorExhaustive) {
  ExhaustiveEquivalence(testing::RumorProtocol{});
}

TEST(FrontierEquivalence, GossipCountExhaustive) {
  ExhaustiveEquivalence(testing::GossipCountProtocol{});
}

// Protocols with no locality claim (frontier mode must fall back to full
// rescans and still match), including async, deadlocking, overflowing, and
// class-violating specimens:

TEST(FrontierEquivalence, TwoCliquesExhaustive) {
  TwoCliquesProtocol p;
  for (std::size_t k : {1u, 2u}) {
    LockstepExplorer explorer(two_cliques(k), p);
    ASSERT_FALSE(::testing::Test::HasFatalFailure());
    EXPECT_GT(explorer.executions(), 0u);
  }
}

TEST(FrontierEquivalence, EobBfsExhaustive) {
  EobBfsProtocol p;
  for (const Graph& g : {path_graph(4),
                         connected_even_odd_bipartite(6, 1, 2, 11),
                         cycle_graph(4)}) {
    LockstepExplorer explorer(g, p);
    ASSERT_FALSE(::testing::Test::HasFatalFailure());
    EXPECT_GT(explorer.executions(), 0u);
  }
}

TEST(FrontierEquivalence, EchoIdExhaustive) {
  ExhaustiveEquivalence(testing::EchoIdProtocol{});
}

TEST(FrontierEquivalence, BoardSizeExhaustive) {
  ExhaustiveEquivalence(testing::BoardSizeProtocol{});
}

TEST(FrontierEquivalence, FrozenBoardSizeExhaustive) {
  ExhaustiveEquivalence(testing::FrozenBoardSizeProtocol{});
}

TEST(FrontierEquivalence, OnlyFirstNodeDeadlockExhaustive) {
  ExhaustiveEquivalence(testing::OnlyFirstNodeProtocol{});
}

TEST(FrontierEquivalence, OversizeOverflowExhaustive) {
  ExhaustiveEquivalence(testing::OversizeProtocol{});
}

TEST(FrontierEquivalence, LazySimSyncProtocolErrorExhaustive) {
  ExhaustiveEquivalence(testing::LazySimSyncProtocol{});
}

// --- Deep single-schedule runs on larger instances ---

void DeepEquivalence(const Graph& g, const Protocol& p, Adversary& adv) {
  adv.reset();
  ExecutionResult ref =
      run_protocol(g, p, adv, EngineOptions{.record_trace = true});
  adv.reset();
  ExecutionResult fro = run_protocol(
      g, p, adv, EngineOptions{.record_trace = true, .frontier = true});
  ExpectSameResult(ref, fro);
}

TEST(FrontierDeep, SyncBfsLargerGraphs) {
  SyncBfsProtocol p;
  FirstAdversary first;
  LastAdversary last;
  RandomAdversary random(12345);
  RotatingAdversary rotating;
  for (const Graph& g :
       {star_graph(64), path_graph(40), grid_graph(5, 8),
        erdos_renyi(30, 1, 5, 99), random_forest(32, 60, 5)}) {
    DeepEquivalence(g, p, first);
    DeepEquivalence(g, p, last);
    DeepEquivalence(g, p, random);
    DeepEquivalence(g, p, rotating);
  }
}

TEST(FrontierDeep, RootedMisLargerGraphs) {
  RootedMisProtocol p(1);
  RandomAdversary random(777);
  RotatingAdversary rotating;
  for (const Graph& g : {star_graph(50), cycle_graph(33), complete_graph(12),
                         erdos_renyi(24, 1, 3, 4321)}) {
    DeepEquivalence(g, p, random);
    DeepEquivalence(g, p, rotating);
  }
}

TEST(FrontierDeep, RumorFloodLargerGraphs) {
  testing::RumorProtocol p;
  FirstAdversary first;
  RandomAdversary random(31337);
  // Star: hub degree >> awake-set size exercises the bottom-up activation
  // scan; path: degree 2 << awake-set size exercises top-down.
  for (const Graph& g : {star_graph(80), path_graph(60), grid_graph(6, 6)}) {
    DeepEquivalence(g, p, first);
    DeepEquivalence(g, p, random);
  }
}

TEST(FrontierDeep, GossipCountLargerGraphs) {
  testing::GossipCountProtocol p;
  RandomAdversary random(2024);
  for (const Graph& g :
       {star_graph(48), path_graph(48), complete_bipartite(6, 9)}) {
    DeepEquivalence(g, p, random);
  }
}

// --- Frontier-specific engine semantics ---

TEST(FrontierEngine, JournalingIsRejected) {
  const Graph g = path_graph(3);
  SyncBfsProtocol p;
  EngineState s(g, p, EngineOptions{.frontier = true});
  EXPECT_THROW(s.set_journaling(true), LogicError);
}

TEST(FrontierEngine, SucceedsOnStar) {
  const Graph g = star_graph(32);
  SyncBfsProtocol p;
  ExecutionResult r = run_protocol(g, p, EngineOptions{.frontier = true});
  EXPECT_EQ(r.status, RunStatus::kSuccess);
  EXPECT_EQ(r.stats.writes, g.node_count());
  const BfsProtocolOutput out = p.output(r.board, g.node_count());
  ASSERT_TRUE(out.valid);
  ASSERT_EQ(out.layer.size(), g.node_count());
  EXPECT_EQ(out.layer[0], 0);  // center (node 1)
  for (std::size_t i = 1; i < out.layer.size(); ++i) {
    EXPECT_EQ(out.layer[i], 1);
  }
}

TEST(FrontierEngine, WriteNodeKeepsCandidatesInvariant) {
  // write_node must erase exactly the written node from the (sorted)
  // candidate buffer in frontier mode, so a caller-driven schedule works.
  const Graph g = complete_graph(4);
  testing::EchoIdProtocol p;
  EngineState s(g, p, EngineOptions{.frontier = true});
  s.begin_round();
  ASSERT_EQ(s.candidates().size(), 4u);
  s.write_node(3);
  const std::vector<NodeId> expect{1, 2, 4};
  EXPECT_TRUE(std::equal(s.candidates().begin(), s.candidates().end(),
                         expect.begin(), expect.end()));
  s.begin_round();
  s.write_node(1);
  s.begin_round();
  s.write_node(4);
  s.begin_round();
  s.write_node(2);
  s.begin_round();
  EXPECT_TRUE(s.terminal());
  EXPECT_EQ(std::move(s).finish().status, RunStatus::kSuccess);
}

}  // namespace
}  // namespace wb
