// The failure-model layer (ISSUE 9 tentpole contract): crash-stop worlds
// enumerated canonically and swept exhaustively, seed-deterministic message
// corruption, and adaptive randomized adversaries with statistical verdicts.
//
// The oracle-equivalence half mirrors tests/wb/shard_test.cpp: a fault-FREE
// adapter (crash:0, corrupt:0) must reproduce the unadapted serial explorer's
// execution count, failure tallies, and distinct-board count bit-identically
// at any thread count and any shard split. The statistical half pins the
// VerdictAccumulator contract (order-oblivious merge == single stream, the
// distinct_test.cpp battery shape) and checks fixtures with analytically
// known failure probabilities — including the Konrad–Robinson–Zamaraev
// robust-triangle instance, whose 1 - q^3 miss rate the sampled verdict must
// bracket with its Wilson interval.
//
// Shard documents with fault fields are pinned by goldens under
// tests/wb/data/ (faults_crash.*, faults_adaptive.*); every bad_faults_* /
// bad_fprefix_* / *verdict* fixture must be rejected with a wb::DataError
// diagnostic, never undefined behavior.
#include "src/wb/faults.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <random>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/graph/algorithms.h"
#include "src/graph/generators.h"
#include "src/protocols/krz.h"
#include "src/wb/exhaustive.h"
#include "src/wb/shard.h"
#include "tests/wb/test_protocols.h"

namespace wb {
namespace {

std::string data_file(const std::string& name) {
  const std::string path = std::string(WB_TEST_DATA_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// The run_shard accept-wrapper semantics: engine failure -> kDeadlockOrFault,
/// everything else correct. Fault-free sweeps under this classifier tally
/// exactly like the pre-fault explorer.
FaultVerdict accept_all(const ExecutionResult& r, std::span<const NodeId>) {
  return r.ok() ? FaultVerdict::kCorrect : FaultVerdict::kDeadlockOrFault;
}

/// Crash-tolerant judge: a deadlock is expected (not a failure) whenever
/// nodes crashed.
FaultVerdict crash_tolerant(const ExecutionResult& r,
                            std::span<const NodeId> crashed) {
  if (r.ok()) return FaultVerdict::kCorrect;
  if (r.status == RunStatus::kDeadlock && !crashed.empty()) {
    return FaultVerdict::kCorrect;
  }
  return FaultVerdict::kDeadlockOrFault;
}

/// Serial fault-free oracle, straight off the unadapted explorer.
struct Oracle {
  std::uint64_t executions = 0;
  std::uint64_t engine_failures = 0;
  std::uint64_t distinct = 0;
};

Oracle serial_oracle(const Graph& g, const Protocol& p) {
  Oracle o;
  o.executions = for_each_execution(g, p, [&](const ExecutionResult& r) {
    if (!r.ok()) ++o.engine_failures;
    return true;
  });
  o.distinct = count_distinct_final_boards(g, p);
  return o;
}

// ---------------------------------------------------------------------------
// Fault spec grammar.

TEST(FaultSpec, ParsesAndPrintsCanonically) {
  EXPECT_EQ(parse_fault_spec("none"), FaultSpec::None());
  EXPECT_EQ(parse_fault_spec("crash:2"), FaultSpec::Crash(2));
  EXPECT_EQ(parse_fault_spec("corrupt:1/8"), FaultSpec::Corrupt(1, 8, 1));
  EXPECT_EQ(parse_fault_spec("corrupt:3/7:9"), FaultSpec::Corrupt(3, 7, 9));
  EXPECT_EQ(parse_fault_spec("adaptive:5"),
            FaultSpec::Adaptive(5, FaultSpec::kDefaultTrials));
  EXPECT_EQ(parse_fault_spec("adaptive:5:128"), FaultSpec::Adaptive(5, 128));

  // to_string prints the full canonical form; parse(to_string) round-trips.
  EXPECT_EQ(fault_spec_to_string(FaultSpec::None()), "none");
  EXPECT_EQ(fault_spec_to_string(FaultSpec::Crash(2)), "crash:2");
  EXPECT_EQ(fault_spec_to_string(FaultSpec::Corrupt(1, 8, 1)),
            "corrupt:1/8:1");
  EXPECT_EQ(fault_spec_to_string(FaultSpec::Adaptive(5, 128)),
            "adaptive:5:128");
  for (const FaultSpec& spec :
       {FaultSpec::None(), FaultSpec::Crash(0), FaultSpec::Crash(3),
        FaultSpec::Corrupt(1, 2, 4), FaultSpec::Adaptive(11)}) {
    EXPECT_EQ(parse_fault_spec(fault_spec_to_string(spec)), spec);
  }
}

TEST(FaultSpec, FaultFreePredicate) {
  EXPECT_TRUE(FaultSpec::None().fault_free());
  EXPECT_TRUE(FaultSpec::Crash(0).fault_free());
  EXPECT_TRUE(FaultSpec::Corrupt(0, 4).fault_free());
  EXPECT_FALSE(FaultSpec::Crash(1).fault_free());
  EXPECT_FALSE(FaultSpec::Corrupt(1, 8).fault_free());
  EXPECT_FALSE(FaultSpec::Adaptive(1).fault_free());
}

TEST(FaultSpec, RejectsMalformedSpecs) {
  const char* bad[] = {
      "",           "bogus",       "bogus:1",      "none:1",
      "crash",      "crash:",      "crash:x",      "crash:1:2",
      "crash:-1",   "corrupt",     "corrupt:1",    "corrupt:1/0",
      "corrupt:9/8", "corrupt:x/y", "corrupt:1/8:z", "corrupt:1/8:1:2",
      "adaptive",   "adaptive:x",  "adaptive:1:0", "adaptive:1:x",
      "adaptive:1:2:3",
  };
  for (const char* spec : bad) {
    EXPECT_THROW((void)parse_fault_spec(spec), DataError) << "'" << spec
                                                          << "'";
  }
}

// ---------------------------------------------------------------------------
// Crash-world enumeration.

TEST(CrashWorlds, CanonicalOrderCountsAndContents) {
  // C(4,0) + C(4,1) = 5; + C(4,2) = 11.
  EXPECT_EQ(crash_world_count(4, 0), 1u);
  EXPECT_EQ(crash_world_count(4, 1), 5u);
  EXPECT_EQ(crash_world_count(4, 2), 11u);
  // World 0 is always the fault-free world.
  EXPECT_TRUE(crash_world(4, 2, 0).empty());
  // Then all size-1 sets ascending, then size-2 lexicographic.
  EXPECT_EQ(crash_world(4, 2, 1), (std::vector<NodeId>{1}));
  EXPECT_EQ(crash_world(4, 2, 4), (std::vector<NodeId>{4}));
  EXPECT_EQ(crash_world(4, 2, 5), (std::vector<NodeId>{1, 2}));
  EXPECT_EQ(crash_world(4, 2, 10), (std::vector<NodeId>{3, 4}));
  // Every world distinct, every set sorted.
  std::set<std::vector<NodeId>> seen;
  for (std::uint64_t w = 0; w < crash_world_count(4, 2); ++w) {
    const std::vector<NodeId> world = crash_world(4, 2, w);
    EXPECT_TRUE(std::is_sorted(world.begin(), world.end()));
    EXPECT_TRUE(seen.insert(world).second) << "duplicate world " << w;
  }
  EXPECT_THROW((void)crash_world(4, 2, 11), LogicError);
}

// ---------------------------------------------------------------------------
// Oracle equivalence (satellite a): fault-free adapters are bit-identical to
// the unadapted serial explorer at any thread count and any shard split.

TEST(FaultFreeOracle, SweepMatchesUnadaptedExplorerAcrossClassesAndThreads) {
  const Graph path4 = path_graph(4);
  const Graph star4 = star_graph(4);
  const testing::EchoIdProtocol echo;             // SIMASYNC
  const testing::BoardSizeProtocol board_size;    // SIMSYNC
  const testing::RumorProtocol rumor;             // ASYNC
  const testing::GossipCountProtocol gossip;      // SYNC
  const std::pair<const Graph*, const Protocol*> cases[] = {
      {&path4, &echo}, {&star4, &echo},       {&path4, &board_size},
      {&path4, &rumor}, {&path4, &gossip},
  };
  for (const auto& [g, p] : cases) {
    const Oracle oracle = serial_oracle(*g, *p);
    for (const FaultSpec& faults :
         {FaultSpec::Crash(0), FaultSpec::Corrupt(0, 4)}) {
      for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
        ExhaustiveOptions opts;
        opts.threads = threads;
        const FaultSweepTotals totals =
            sweep_faulty_executions(*g, *p, faults, accept_all, opts);
        EXPECT_EQ(totals.worlds, 1u);
        EXPECT_EQ(totals.executions, oracle.executions)
            << p->name() << " " << fault_spec_to_string(faults) << " threads="
            << threads;
        EXPECT_EQ(totals.engine_failures, oracle.engine_failures);
        EXPECT_EQ(totals.wrong_outputs, 0u);
        ASSERT_NE(totals.distinct, nullptr);
        EXPECT_EQ(totals.distinct->estimate(), oracle.distinct);
      }
    }
  }
}

TEST(FaultFreeOracle, ShardedFaultFreeSweepMergesToTheSerialOracle) {
  const Graph g = path_graph(4);
  const testing::EchoIdProtocol p;
  const Oracle oracle = serial_oracle(g, p);
  for (const FaultSpec& faults :
       {FaultSpec::Crash(0), FaultSpec::Corrupt(0, 4)}) {
    for (const std::size_t shards : {1u, 2u, 4u}) {
      shard::PlanOptions popts;
      popts.faults = faults;
      const auto specs = shard::plan_shards(g, p, "echo-id", shards, popts);
      ASSERT_EQ(specs.size(), shards);
      std::vector<shard::ShardResult> results;
      for (const shard::ShardSpec& spec : specs) {
        // Round-trip every artifact through its text format.
        const shard::ShardSpec parsed =
            shard::parse_shard_spec(shard::serialize(spec));
        EXPECT_EQ(shard::serialize(parsed), shard::serialize(spec));
        const shard::ShardResult run =
            shard::run_shard(parsed, p, accept_all, 2);
        results.push_back(
            shard::parse_shard_result(shard::serialize(run)));
      }
      std::reverse(results.begin(), results.end());  // order-oblivious
      const shard::MergedResult merged = shard::merge_shard_results(results);
      EXPECT_EQ(merged.executions, oracle.executions);
      EXPECT_EQ(merged.engine_failures, oracle.engine_failures);
      EXPECT_EQ(merged.wrong_outputs, 0u);
      EXPECT_EQ(merged.distinct_boards, oracle.distinct);
      EXPECT_EQ(merged.faults, faults);
    }
  }
}

// ---------------------------------------------------------------------------
// Crash-stop sweeps.

TEST(CrashSweep, EnumeratesEveryWorldAndCountsItsSchedules) {
  // path:4 under <=1 crash: world 0 runs the full 4! tree; each of the 4
  // crashed worlds runs the 3! tree of the survivors and deadlocks.
  const Graph g = path_graph(4);
  const testing::EchoIdProtocol p;
  const FaultSweepTotals tolerant = sweep_faulty_executions(
      g, p, FaultSpec::Crash(1), crash_tolerant, {});
  EXPECT_EQ(tolerant.worlds, 5u);
  EXPECT_EQ(tolerant.executions, 24u + 4 * 6u);
  EXPECT_EQ(tolerant.engine_failures, 0u);  // deadlock-with-crash is expected

  // Under the strict accept-all classifier every crashed-world execution is
  // a deadlock failure.
  const FaultSweepTotals strict =
      sweep_faulty_executions(g, p, FaultSpec::Crash(1), accept_all, {});
  EXPECT_EQ(strict.engine_failures, 4 * 6u);
}

TEST(CrashSweep, TotalsAreThreadCountInvariant) {
  const Graph g = path_graph(4);
  const testing::EchoIdProtocol p;
  ExhaustiveOptions serial;
  serial.threads = 1;
  const FaultSweepTotals oracle = sweep_faulty_executions(
      g, p, FaultSpec::Crash(2), crash_tolerant, serial);
  for (const std::size_t threads : {2u, 4u, 8u}) {
    ExhaustiveOptions opts;
    opts.threads = threads;
    const FaultSweepTotals totals = sweep_faulty_executions(
        g, p, FaultSpec::Crash(2), crash_tolerant, opts);
    EXPECT_EQ(totals.worlds, oracle.worlds);
    EXPECT_EQ(totals.executions, oracle.executions);
    EXPECT_EQ(totals.engine_failures, oracle.engine_failures);
    EXPECT_EQ(totals.wrong_outputs, oracle.wrong_outputs);
    EXPECT_EQ(totals.distinct->estimate(), oracle.distinct->estimate());
  }
}

TEST(CrashSweep, ShardedCrashSweepMergesBitIdentically) {
  const Graph g = path_graph(4);
  const testing::EchoIdProtocol p;
  const FaultSpec faults = FaultSpec::Crash(1);
  const FaultSweepTotals serial =
      sweep_faulty_executions(g, p, faults, accept_all, {});
  for (const std::size_t shards : {1u, 2u, 4u}) {
    shard::PlanOptions popts;
    popts.faults = faults;
    const auto specs = shard::plan_shards(g, p, "echo-id", shards, popts);
    std::vector<shard::ShardResult> results;
    for (const shard::ShardSpec& spec : specs) {
      const shard::ShardSpec parsed =
          shard::parse_shard_spec(shard::serialize(spec));
      const shard::ShardResult run = shard::run_shard(parsed, p, accept_all, 2);
      const std::string text = shard::serialize(run);
      results.push_back(shard::parse_shard_result(text));
      EXPECT_EQ(shard::serialize(results.back()), text);
    }
    std::mt19937 rng(0xFA017);
    std::shuffle(results.begin(), results.end(), rng);
    const shard::MergedResult merged = shard::merge_shard_results(results);
    EXPECT_EQ(merged.executions, serial.executions);
    EXPECT_EQ(merged.engine_failures, serial.engine_failures);
    EXPECT_EQ(merged.wrong_outputs, serial.wrong_outputs);
    EXPECT_EQ(merged.distinct_boards, serial.distinct->estimate());
  }
}

TEST(CrashSweep, BudgetIsGlobalAcrossWorlds) {
  const Graph g = path_graph(4);
  const testing::EchoIdProtocol p;
  ExhaustiveOptions opts;
  opts.max_executions = 30;  // world 0 alone has 24; total is 48
  EXPECT_THROW((void)sweep_faulty_executions(g, p, FaultSpec::Crash(1),
                                             crash_tolerant, opts),
               BudgetExceededError);
}

// ---------------------------------------------------------------------------
// Corruption model.

TEST(Corruption, BitSurgeryHelpers) {
  BitWriter w;
  for (const bool bit : {true, false, true, true}) w.write_bit(bit);
  const Bits m = w.take();
  const Bits flipped = flip_bit(m, 1);
  EXPECT_EQ(flipped.size(), m.size());
  EXPECT_TRUE(flipped.bit(1));
  EXPECT_EQ(flipped.bit(0), m.bit(0));
  const Bits cut = truncate_bits(m, 2);
  EXPECT_EQ(cut.size(), 2u);
  EXPECT_EQ(cut.bit(0), m.bit(0));
  EXPECT_EQ(cut.bit(1), m.bit(1));
}

TEST(Corruption, ModelIsSeedDeterministicAndRespectsProbability) {
  BitWriter w;
  for (int i = 0; i < 16; ++i) w.write_bit(i % 3 == 0);
  const Bits m = w.take();
  const CorruptionModel never{0, 4, 7};
  EXPECT_EQ(never.apply(m, 1).size(), m.size());
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_EQ(never.apply(m, 1).bit(i), m.bit(i));
  }
  const CorruptionModel always{1, 1, 7};
  const Bits mutated = always.apply(m, 1);
  // p=1 must perturb a non-empty message (flip or truncate).
  const bool same_size = mutated.size() == m.size();
  bool differs = !same_size;
  for (std::size_t i = 0; same_size && i < m.size(); ++i) {
    differs = differs || mutated.bit(i) != m.bit(i);
  }
  EXPECT_TRUE(differs);
  // Determinism: same (message, salt, seed) -> same image; different salt
  // is an independent draw.
  const Bits again = always.apply(m, 1);
  EXPECT_EQ(again.size(), mutated.size());
  for (std::size_t i = 0; i < mutated.size(); ++i) {
    EXPECT_EQ(again.bit(i), mutated.bit(i));
  }
}

// ---------------------------------------------------------------------------
// Engine fault firewall: a decoder that throws DataError mid-engine becomes
// a clean kFault execution, never an escaped exception.

class ThrowingComposeProtocol final : public ProtocolWithOutput<int> {
 public:
  ModelClass model_class() const override { return ModelClass::kSimSync; }
  std::size_t message_bit_limit(std::size_t) const override { return 8; }
  std::string name() const override { return "throwing-compose"; }
  bool activate(const LocalView&, const Whiteboard&) const override {
    return true;
  }
  Bits compose(const LocalView& view,
               const Whiteboard& board) const override {
    WB_REQUIRE_MSG(board.message_count() == 0,
                   "refusing to read a non-empty board");
    BitWriter w;
    w.write_uint(view.id(), 8);
    return w.take();
  }
  int output(const Whiteboard&, std::size_t) const override { return 0; }
};

TEST(FaultFirewall, DataErrorInComposeBecomesAFaultStatus) {
  const Graph g = path_graph(3);
  const ThrowingComposeProtocol p;
  const ExecutionResult r = run_protocol(g, p);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status, RunStatus::kFault);

  // And a fault sweep tallies it as an engine failure instead of dying.
  const FaultSweepTotals totals =
      sweep_faulty_executions(g, p, FaultSpec::Crash(0), accept_all, {});
  EXPECT_EQ(totals.engine_failures, totals.executions);
}

// ---------------------------------------------------------------------------
// VerdictAccumulator contract battery (the distinct_test.cpp shape).

TEST(VerdictAccumulator, EmptyAccumulatorHasVacuousBounds) {
  const VerdictAccumulator v;
  EXPECT_EQ(v.trials(), 0u);
  EXPECT_EQ(v.failures(), 0u);
  EXPECT_EQ(v.failure_rate(), 0.0);
  const WilsonInterval ci = v.wilson();
  EXPECT_EQ(ci.lo, 0.0);
  EXPECT_EQ(ci.hi, 1.0);
}

TEST(VerdictAccumulator, RecordsVerdictsAndRates) {
  VerdictAccumulator v;
  v.record(FaultVerdict::kCorrect);
  v.record(FaultVerdict::kWrongOutput);
  v.record(FaultVerdict::kDeadlockOrFault);
  v.record(FaultVerdict::kCorrect);
  EXPECT_EQ(v.trials(), 4u);
  EXPECT_EQ(v.failures(), 2u);
  EXPECT_DOUBLE_EQ(v.failure_rate(), 0.5);
  const WilsonInterval ci = v.wilson();
  EXPECT_LT(ci.lo, 0.5);
  EXPECT_GT(ci.hi, 0.5);
  EXPECT_GT(ci.lo, 0.0);
  EXPECT_LT(ci.hi, 1.0);
}

TEST(VerdictAccumulator, MergeIsOrderObliviousAndEqualsSingleStream) {
  std::mt19937 rng(0xBEEF);
  std::vector<bool> outcomes;
  for (int i = 0; i < 500; ++i) outcomes.push_back(rng() % 3 == 0);

  VerdictAccumulator single;
  for (const bool failed : outcomes) single.record_failure(failed);

  for (const std::size_t parts : {2u, 4u, 7u}) {
    std::vector<VerdictAccumulator> split(parts);
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      split[i % parts].record_failure(outcomes[i]);
    }
    std::shuffle(split.begin(), split.end(), rng);
    VerdictAccumulator merged;
    for (const VerdictAccumulator& part : split) merged.merge(part);
    EXPECT_EQ(merged, single) << parts << " parts";
    EXPECT_EQ(merged.wilson().lo, single.wilson().lo);
    EXPECT_EQ(merged.wilson().hi, single.wilson().hi);
  }
}

TEST(VerdictAccumulator, RehydratesFromSerializedTotals) {
  VerdictAccumulator v;
  for (int i = 0; i < 10; ++i) v.record_failure(i < 3);
  EXPECT_EQ(VerdictAccumulator(10, 3), v);
  EXPECT_THROW(VerdictAccumulator(1, 2), LogicError);
}

TEST(VerdictAccumulator, WilsonIntervalNarrowsWithSampleSize) {
  // Same 25% rate at growing sample sizes: the interval must bracket the
  // rate and shrink.
  double last_width = 1.0;
  for (const std::uint64_t trials : {16u, 64u, 256u, 1024u}) {
    const VerdictAccumulator v(trials, trials / 4);
    const WilsonInterval ci = v.wilson();
    EXPECT_LT(ci.lo, 0.25);
    EXPECT_GT(ci.hi, 0.25);
    const double width = ci.hi - ci.lo;
    EXPECT_LT(width, last_width) << trials;
    last_width = width;
  }
  EXPECT_EQ(verdict_summary(VerdictAccumulator(100, 25)),
            "100 trials, 25 failures, rate 0.2500, 95% CI [0.1755, 0.3430]");
}

// ---------------------------------------------------------------------------
// Statistical verdicts (satellite b): analytically known failure rates.

TEST(StatisticalVerdict, AdaptiveCrashCoinMatchesItsAnalyticRate) {
  // The adaptive policy crashes one node with probability exactly 1/2 per
  // trial. A classifier that fails iff anything crashed therefore has true
  // failure probability 1/2 — the Wilson interval must bracket it at every
  // sample size.
  const Graph g = path_graph(3);
  const testing::EchoIdProtocol p;
  const FaultClassifier crashed_means_failure =
      [](const ExecutionResult&, std::span<const NodeId> crashed) {
        return crashed.empty() ? FaultVerdict::kCorrect
                               : FaultVerdict::kWrongOutput;
      };
  for (const std::uint64_t trials : {128u, 1024u, 4096u}) {
    StatisticalOptions opts;
    opts.trials = trials;
    opts.seed = 9;
    const StatisticalTotals totals = run_statistical_verdict(
        g, p, FaultSpec::Adaptive(9, trials), crashed_means_failure, opts);
    EXPECT_EQ(totals.verdict.trials(), trials);
    const WilsonInterval ci = totals.verdict.wilson();
    EXPECT_LE(ci.lo, 0.5) << trials << " trials: " << verdict_summary(
        totals.verdict);
    EXPECT_GE(ci.hi, 0.5) << trials << " trials";
  }
}

TEST(StatisticalVerdict, TotalsAreThreadCountInvariant) {
  const Graph g = path_graph(4);
  const testing::EchoIdProtocol p;
  const FaultSpec faults = FaultSpec::Adaptive(3, 512);
  StatisticalOptions serial;
  serial.trials = 512;
  serial.seed = 3;
  serial.threads = 1;
  const StatisticalTotals oracle =
      run_statistical_verdict(g, p, faults, crash_tolerant, serial);
  for (const std::size_t threads : {2u, 8u}) {
    StatisticalOptions opts = serial;
    opts.threads = threads;
    const StatisticalTotals totals =
        run_statistical_verdict(g, p, faults, crash_tolerant, opts);
    EXPECT_EQ(totals.verdict, oracle.verdict);
    EXPECT_EQ(totals.engine_failures, oracle.engine_failures);
    EXPECT_EQ(totals.wrong_outputs, oracle.wrong_outputs);
  }
}

TEST(StatisticalVerdict, StridedShardSplitMergesToTheSingleStream) {
  // Trials are keyed by absolute index, so running offsets 0..K-1 with
  // stride K and merging the verdicts must equal the single stream — the
  // adaptive analogue of the shard oracle-equivalence contract.
  const Graph g = path_graph(3);
  const testing::EchoIdProtocol p;
  const FaultSpec faults = FaultSpec::Adaptive(17, 300);
  StatisticalOptions single;
  single.trials = 300;
  single.seed = 17;
  const StatisticalTotals oracle =
      run_statistical_verdict(g, p, faults, crash_tolerant, single);
  for (const std::uint64_t stride : {2u, 3u, 5u}) {
    VerdictAccumulator merged;
    std::uint64_t engine_failures = 0;
    for (std::uint64_t offset = 0; offset < stride; ++offset) {
      StatisticalOptions opts = single;
      opts.stride = stride;
      opts.offset = offset;
      const StatisticalTotals shard =
          run_statistical_verdict(g, p, faults, crash_tolerant, opts);
      merged.merge(shard.verdict);
      engine_failures += shard.engine_failures;
    }
    EXPECT_EQ(merged, oracle.verdict) << "stride " << stride;
    EXPECT_EQ(engine_failures, oracle.engine_failures);
  }
}

TEST(StatisticalVerdict, AdaptiveShardDocumentsMergeToTheSingleStream) {
  const Graph g = path_graph(3);
  const testing::EchoIdProtocol p;
  const FaultSpec faults = FaultSpec::Adaptive(17, 300);
  StatisticalOptions single;
  single.trials = 300;
  single.seed = 17;
  const StatisticalTotals oracle =
      run_statistical_verdict(g, p, faults, crash_tolerant, single);

  shard::PlanOptions popts;
  popts.faults = faults;
  const auto specs = shard::plan_shards(g, p, "echo-id", 3, popts);
  std::vector<shard::ShardResult> results;
  for (const shard::ShardSpec& spec : specs) {
    const shard::ShardSpec parsed =
        shard::parse_shard_spec(shard::serialize(spec));
    EXPECT_EQ(parsed.faults, faults);
    const shard::ShardResult run = shard::run_shard(
        parsed, p,
        [](const ExecutionResult& r, std::span<const NodeId> crashed) {
          return crash_tolerant(r, crashed);
        },
        2);
    const std::string text = shard::serialize(run);
    results.push_back(shard::parse_shard_result(text));
    EXPECT_EQ(shard::serialize(results.back()), text) << "round trip";
  }
  std::reverse(results.begin(), results.end());
  const shard::MergedResult merged = shard::merge_shard_results(results);
  EXPECT_EQ(merged.verdict_trials, oracle.verdict.trials());
  EXPECT_EQ(merged.verdict_failures, oracle.verdict.failures());
  EXPECT_EQ(merged.faults, faults);
}

// ---------------------------------------------------------------------------
// The Konrad–Robinson–Zamaraev robust lower-bound instance: shared-randomness
// edge sampling keeps each edge with probability q, so the planted triangle
// of K3 survives with probability q^3 and the one-sided detector's miss rate
// is exactly 1 - q^3 over the seed distribution.

TEST(KrzTriangle, DecodesExactlyTheSampledSubgraph) {
  const Graph g = complete_graph(3);
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    const KrzTriangleProtocol p(1, 2, seed);
    GraphBuilder sampled(3);
    for (const Edge& e : g.edges()) {
      if (p.edge_sampled(e.u, e.v)) sampled.add_edge(e.u, e.v);
    }
    const bool truth = has_triangle(sampled.build());
    const ExecutionResult r = run_protocol(g, p);
    ASSERT_TRUE(r.ok()) << "seed " << seed;
    EXPECT_EQ(p.output(r.board, 3), truth) << "seed " << seed;
  }
}

TEST(KrzTriangle, EpsilonErrorMatchesOneMinusQCubed) {
  const Graph g = complete_graph(3);
  const double true_miss_rate = 1.0 - 1.0 / 8.0;  // q = 1/2, 1 - q^3
  for (const std::uint64_t trials : {64u, 256u, 1024u}) {
    VerdictAccumulator verdict;
    for (std::uint64_t seed = 0; seed < trials; ++seed) {
      const KrzTriangleProtocol p(1, 2, seed);
      FirstAdversary adv;
      const ExecutionResult r = run_protocol(g, p, adv);
      ASSERT_TRUE(r.ok());
      // Failure = the detector misses the planted triangle of K3.
      verdict.record_failure(!p.output(r.board, 3));
    }
    const WilsonInterval ci = verdict.wilson();
    EXPECT_LE(ci.lo, true_miss_rate)
        << trials << " trials: " << verdict_summary(verdict);
    EXPECT_GE(ci.hi, true_miss_rate) << trials << " trials";
  }
}

// ---------------------------------------------------------------------------
// Shard documents (satellite c): fault goldens round-trip byte-identically,
// fault-free v2 files parse fault-free, malformed fixtures are rejected.

TEST(FaultDocuments, CrashGoldenSpecAndResultRoundTripByteIdentically) {
  const std::string spec_text = data_file("faults_crash.0.shard");
  const shard::ShardSpec spec = shard::parse_shard_spec(spec_text);
  EXPECT_EQ(spec.faults, FaultSpec::Crash(1));
  EXPECT_FALSE(spec.fault_tasks.empty());
  EXPECT_EQ(shard::serialize(spec), spec_text);

  const std::string result_text = data_file("faults_crash.0.result");
  const shard::ShardResult result = shard::parse_shard_result(result_text);
  EXPECT_EQ(result.faults, FaultSpec::Crash(1));
  EXPECT_EQ(shard::serialize(result), result_text);
}

TEST(FaultDocuments, AdaptiveGoldenSpecAndResultRoundTripByteIdentically) {
  const std::string spec_text = data_file("faults_adaptive.0.shard");
  const shard::ShardSpec spec = shard::parse_shard_spec(spec_text);
  EXPECT_EQ(spec.faults.kind, FaultKind::kAdaptive);
  EXPECT_TRUE(spec.fault_tasks.empty());  // statistical: no partition
  EXPECT_EQ(shard::serialize(spec), spec_text);

  const std::string result_text = data_file("faults_adaptive.0.result");
  const shard::ShardResult result = shard::parse_shard_result(result_text);
  EXPECT_EQ(result.faults.kind, FaultKind::kAdaptive);
  EXPECT_LE(result.verdict_failures, result.verdict_trials);
  EXPECT_EQ(shard::serialize(result), result_text);
}

TEST(FaultDocuments, FaultFreeV2FilesParseFaultFreeAndUnchanged) {
  // Pre-fault v2 documents carry no fault lines; they must parse as
  // fault-free and re-serialize byte-identically (the format extension is
  // invisible until a fault spec is present).
  const std::string spec_text = data_file("path3_echo_v2.0.shard");
  const shard::ShardSpec spec = shard::parse_shard_spec(spec_text);
  EXPECT_TRUE(spec.faults.fault_free());
  EXPECT_EQ(spec.faults.kind, FaultKind::kNone);
  EXPECT_EQ(shard::serialize(spec), spec_text);

  const std::string result_text = data_file("path3_echo_v2.0.result");
  const shard::ShardResult result = shard::parse_shard_result(result_text);
  EXPECT_TRUE(result.faults.fault_free());
  EXPECT_EQ(shard::serialize(result), result_text);
}

TEST(FaultDocuments, CommittedMalformedFaultFixturesAreRejected) {
  const char* bad_specs[] = {
      "bad_faults_kind.shard",        "bad_faults_crash_arity.shard",
      "bad_faults_crash_f.shard",     "bad_faults_corrupt_prob.shard",
      "bad_faults_adaptive_trials.shard", "bad_faults_duplicate.shard",
      "bad_fprefix_arity.shard",      "bad_fprefix_world.shard",
      "bad_fprefix_count.shard",      "bad_fprefix_without_crash.shard",
  };
  for (const char* name : bad_specs) {
    const std::string text = data_file(name);
    EXPECT_THROW((void)shard::parse_shard_spec(text), DataError) << name;
  }
  const char* bad_results[] = {
      "bad_verdict_arity.result",
      "bad_verdict_overflow.result",
      "bad_verdict_without_adaptive.result",
      "missing_verdict.result",
  };
  for (const char* name : bad_results) {
    const std::string text = data_file(name);
    EXPECT_THROW((void)shard::parse_shard_result(text), DataError) << name;
  }
}

TEST(FaultDocuments, MergeRefusesMismatchedFaultSpecs) {
  const Graph g = path_graph(3);
  const testing::EchoIdProtocol p;
  shard::PlanOptions popts;
  popts.faults = FaultSpec::Crash(1);
  const auto specs = shard::plan_shards(g, p, "echo-id", 2, popts);
  std::vector<shard::ShardResult> results;
  for (const shard::ShardSpec& spec : specs) {
    results.push_back(shard::run_shard(spec, p, accept_all, 1));
  }
  results[1].faults = FaultSpec::Corrupt(1, 8, 1);
  try {
    (void)shard::merge_shard_results(results);
    FAIL() << "mismatched fault specs must refuse to merge";
  } catch (const DataError& e) {
    EXPECT_NE(std::string(e.what()).find("refusing to merge"),
              std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace wb
