// Miniature protocols used only by the engine/explorer tests: well-behaved,
// deliberately misbehaving, and class-violating specimens.
#pragma once

#include "src/protocols/codec.h"
#include "src/wb/protocol.h"

namespace wb::testing {

/// Minimal healthy SIMASYNC protocol: everyone writes its own ID.
class EchoIdProtocol final : public SimAsyncProtocol<std::size_t> {
 public:
  std::size_t message_bit_limit(std::size_t n) const override {
    return static_cast<std::size_t>(codec::id_bits(n));
  }
  Bits compose_initial(const LocalView& view) const override {
    BitWriter w;
    return compose_initial(view, w);
  }
  Bits compose_initial(const LocalView& view, BitWriter& w) const override {
    codec::write_id(w, view.id(), view.n());
    return w.take();
  }
  /// Output: number of messages (sanity only).
  std::size_t output(const Whiteboard& board, std::size_t) const override {
    return board.message_count();
  }
  std::string name() const override { return "echo-id"; }
};

/// Declares SIMSYNC but refuses to activate: a model-class violation the
/// engine must flag as a protocol error.
class LazySimSyncProtocol final : public ProtocolWithOutput<int> {
 public:
  ModelClass model_class() const override { return ModelClass::kSimSync; }
  std::size_t message_bit_limit(std::size_t) const override { return 8; }
  bool activate(const LocalView&, const Whiteboard&) const override {
    return false;  // violates "all nodes active after the first round"
  }
  Bits compose(const LocalView&, const Whiteboard&) const override {
    return Bits{};
  }
  int output(const Whiteboard&, std::size_t) const override { return 0; }
  std::string name() const override { return "lazy-simsync"; }
};

/// Writes more bits than its declared bound.
class OversizeProtocol final : public SimAsyncProtocol<int> {
 public:
  std::size_t message_bit_limit(std::size_t) const override { return 4; }
  Bits compose_initial(const LocalView&) const override {
    BitWriter w;
    w.write_uint(0, 16);
    return w.take();
  }
  int output(const Whiteboard&, std::size_t) const override { return 0; }
  std::string name() const override { return "oversize"; }
};

/// Free-activation protocol in which only node 1 ever activates: on graphs
/// with n ≥ 2 the run must end in a corrupted configuration (deadlock).
class OnlyFirstNodeProtocol final : public ProtocolWithOutput<int> {
 public:
  ModelClass model_class() const override { return ModelClass::kAsync; }
  std::size_t message_bit_limit(std::size_t n) const override {
    return static_cast<std::size_t>(codec::id_bits(n));
  }
  bool activate(const LocalView& view, const Whiteboard&) const override {
    return view.id() == 1;
  }
  Bits compose(const LocalView& view, const Whiteboard&) const override {
    BitWriter w;
    codec::write_id(w, view.id(), view.n());
    return w.take();
  }
  int output(const Whiteboard&, std::size_t) const override { return 0; }
  std::string name() const override { return "only-first"; }
};

/// SYNC protocol whose message is the current whiteboard size — exercises
/// per-round recomposition ("changing one's mind"): the written value must
/// equal the number of messages present just before the node's own write.
class BoardSizeProtocol final : public ProtocolWithOutput<int> {
 public:
  ModelClass model_class() const override { return ModelClass::kSimSync; }
  std::size_t message_bit_limit(std::size_t n) const override {
    return static_cast<std::size_t>(codec::count_bits(n));
  }
  bool activate(const LocalView&, const Whiteboard&) const override {
    return true;
  }
  Bits compose(const LocalView& view, const Whiteboard& board) const override {
    BitWriter w;
    return compose(view, board, w);
  }
  Bits compose(const LocalView& view, const Whiteboard& board,
               BitWriter& w) const override {
    codec::write_count(w, board.message_count(), view.n());
    return w.take();
  }
  /// Output: true (1) iff message t carries value t for all t.
  int output(const Whiteboard& board, std::size_t n) const override {
    for (std::size_t t = 0; t < board.message_count(); ++t) {
      BitReader r(board.message(t));
      if (codec::read_count(r, n) != t) return 0;
    }
    return 1;
  }
  std::string name() const override { return "board-size"; }
};

/// ASYNC variant of BoardSizeProtocol: everyone activates immediately, the
/// message is frozen at activation, so every node writes the activation-time
/// board size (0), not the write-time size.
class FrozenBoardSizeProtocol final : public ProtocolWithOutput<int> {
 public:
  ModelClass model_class() const override { return ModelClass::kSimAsync; }
  std::size_t message_bit_limit(std::size_t n) const override {
    return static_cast<std::size_t>(codec::count_bits(n));
  }
  bool activate(const LocalView&, const Whiteboard&) const override {
    return true;
  }
  Bits compose(const LocalView& view, const Whiteboard& board) const override {
    BitWriter w;
    codec::write_count(w, board.message_count(), view.n());
    return w.take();
  }
  /// Output: count of messages that carry 0.
  int output(const Whiteboard& board, std::size_t n) const override {
    int zeros = 0;
    for (const Bits& m : board.messages()) {
      BitReader r(m);
      if (codec::read_count(r, n) == 0) ++zeros;
    }
    return zeros;
  }
  std::string name() const override { return "frozen-board-size"; }
};

/// ASYNC rumor flood exercising the frontier engine's *activation* locality:
/// node 1 activates on the empty board; everyone else activates once a
/// neighbor's message (an echoed ID) is on the board. Both the activation
/// verdict and the (frozen) message depend only on neighbor-authored
/// messages, so the protocol honestly claims both locality flags.
class RumorProtocol final : public ProtocolWithOutput<int> {
 public:
  ModelClass model_class() const override { return ModelClass::kAsync; }
  std::size_t message_bit_limit(std::size_t n) const override {
    return static_cast<std::size_t>(codec::id_bits(n));
  }
  bool activate(const LocalView& view, const Whiteboard& board) const override {
    if (view.id() == 1) return true;
    for (const Bits& m : board.messages()) {
      BitReader r(m);
      if (view.has_neighbor(codec::read_id(r, view.n()))) return true;
    }
    return false;
  }
  Bits compose(const LocalView& view, const Whiteboard&) const override {
    BitWriter w;
    codec::write_id(w, view.id(), view.n());
    return w.take();
  }
  FrontierLocality frontier_locality() const override {
    return {.activate_neighbor_local = true, .compose_neighbor_local = true};
  }
  /// Output: number of messages (the rumor's reach).
  int output(const Whiteboard& board, std::size_t) const override {
    return static_cast<int>(board.message_count());
  }
  std::string name() const override { return "rumor"; }
};

/// SYNC cousin of RumorProtocol: same neighbor-triggered activation, but the
/// message is (own ID, #neighbor messages currently on the board) and is
/// recomposed every round — exercising the frontier engine's *recompose*
/// locality paths (top-down and bottom-up) together with local activation.
class GossipCountProtocol final : public ProtocolWithOutput<int> {
 public:
  ModelClass model_class() const override { return ModelClass::kSync; }
  std::size_t message_bit_limit(std::size_t n) const override {
    return static_cast<std::size_t>(codec::id_bits(n) + codec::count_bits(n));
  }
  bool activate(const LocalView& view, const Whiteboard& board) const override {
    if (view.id() == 1) return true;
    for (const Bits& m : board.messages()) {
      BitReader r(m);
      if (view.has_neighbor(codec::read_id(r, view.n()))) return true;
    }
    return false;
  }
  Bits compose(const LocalView& view, const Whiteboard& board) const override {
    std::size_t from_neighbors = 0;
    for (const Bits& m : board.messages()) {
      BitReader r(m);
      if (view.has_neighbor(codec::read_id(r, view.n()))) ++from_neighbors;
    }
    BitWriter w;
    codec::write_id(w, view.id(), view.n());
    codec::write_count(w, from_neighbors, view.n());
    return w.take();
  }
  FrontierLocality frontier_locality() const override {
    return {.activate_neighbor_local = true, .compose_neighbor_local = true};
  }
  /// Output: sum of the written neighbor counts.
  int output(const Whiteboard& board, std::size_t n) const override {
    int sum = 0;
    for (const Bits& m : board.messages()) {
      BitReader r(m);
      codec::read_id(r, n);
      sum += static_cast<int>(codec::read_count(r, n));
    }
    return sum;
  }
  std::string name() const override { return "gossip-count"; }
};

}  // namespace wb::testing
