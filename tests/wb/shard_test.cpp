// The distributed-sharding equivalence harness (ISSUE 4 tentpole contract,
// extended by ISSUE 5 to pluggable distinct counting): for any shard count K
// and any merge order, plan → serialize → parse → run → serialize → parse →
// merge must reproduce the threads=1 serial oracle's execution count,
// failure tallies, verdict, budget-guard behavior, and distinct-board count
// (exact) or estimate (hll) bit-identically. Every shard spec and result
// crosses the text format in both directions inside the sweep, so the whole
// process-boundary pipeline is under test, not just the in-memory merge.
//
// Golden files under tests/wb/data/ pin the text formats byte-for-byte: the
// v2 set is what the serializers write today (exact, hll, and manifest); the
// v1 set is frozen input the parsers must keep reading (as exact).
// Malformed/truncated/version-skewed inputs must be rejected with a
// wb::DataError diagnostic, never undefined behavior.
#include "src/wb/shard.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <fstream>
#include <random>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/graph/generators.h"
#include "src/protocols/bfs_sync.h"
#include "src/protocols/two_cliques.h"
#include "src/wb/distinct.h"
#include "src/wb/exhaustive.h"
#include "tests/wb/test_protocols.h"

namespace wb {
namespace {

using shard::MergedResult;
using shard::ShardResult;
using shard::ShardSpec;

using Accept = std::function<bool(const ExecutionResult&)>;

/// A typed empty accept callback: run_shard is overloaded on the classifier
/// type (Accept vs FaultClassifier), so a bare nullptr is ambiguous.
const Accept kNoAccept = nullptr;

std::string data_file(const std::string& name) {
  const std::string path = std::string(WB_TEST_DATA_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing golden file " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Everything the serial threads=1 sweep reports — the oracle every sharded
/// configuration must reproduce bit-identically.
struct Oracle {
  std::uint64_t executions = 0;
  std::uint64_t engine_failures = 0;
  std::uint64_t wrong_outputs = 0;
  std::uint64_t distinct = 0;
};

Oracle serial_oracle(const Graph& g, const Protocol& p, const Accept& accept) {
  Oracle o;
  o.executions = for_each_execution(g, p, [&](const ExecutionResult& r) {
    if (!r.ok()) {
      ++o.engine_failures;
    } else if (accept != nullptr && !accept(r)) {
      ++o.wrong_outputs;
    }
    return true;
  });
  o.distinct = count_distinct_final_boards(g, p);
  return o;
}

enum class MergeOrder { kForward, kReverse, kShuffled };

/// The full distributed pipeline, every artifact round-tripped through its
/// text format: plan K shards, run each from a *parsed* spec, merge *parsed*
/// results in the requested order.
MergedResult run_sharded(const Graph& g, const Protocol& p,
                         const Accept& accept, std::size_t shards,
                         std::size_t threads, MergeOrder order,
                         const shard::PlanOptions& opts = {}) {
  const std::vector<ShardSpec> specs =
      shard::plan_shards(g, p, "test-protocol", shards, opts);
  EXPECT_EQ(specs.size(), shards);
  std::vector<ShardResult> results;
  results.reserve(shards);
  for (const ShardSpec& spec : specs) {
    const std::string spec_text = shard::serialize(spec);
    const ShardSpec parsed = shard::parse_shard_spec(spec_text);
    EXPECT_EQ(shard::serialize(parsed), spec_text) << "spec round trip";
    const ShardResult run = shard::run_shard(parsed, p, accept, threads);
    const std::string result_text = shard::serialize(run);
    results.push_back(shard::parse_shard_result(result_text));
    EXPECT_EQ(shard::serialize(results.back()), result_text)
        << "result round trip";
  }
  switch (order) {
    case MergeOrder::kForward:
      break;
    case MergeOrder::kReverse:
      std::reverse(results.begin(), results.end());
      break;
    case MergeOrder::kShuffled: {
      std::mt19937 rng(0xC0FFEE);  // fixed seed: deterministic test
      std::shuffle(results.begin(), results.end(), rng);
      break;
    }
  }
  return shard::merge_shard_results(results);
}

bool first_writer_is_node1(const ExecutionResult& r) {
  return !r.write_order.empty() && r.write_order.front() == 1;
}

// ---------------------------------------------------------------------------
// Oracle equivalence: K in {1, 2, 4, 7} x merge orders x protocol classes.

TEST(ShardOracle, MergedTotalsBitIdenticalToSerialOracle) {
  const Graph path4 = path_graph(4);
  const Graph star4 = star_graph(4);
  const Graph kb22 = complete_bipartite(2, 2);

  const testing::EchoIdProtocol echo;               // SIMASYNC
  const testing::FrozenBoardSizeProtocol frozen;    // SIMASYNC, equal messages
  const testing::BoardSizeProtocol board_size;      // SIMSYNC
  const SyncBfsProtocol bfs;                        // SYNC, gated activations
  const testing::OnlyFirstNodeProtocol deadlocker;  // ASYNC, deadlocks

  struct Case {
    const Protocol* protocol;
    Accept accept;
  };
  const Case cases[] = {
      {&echo, nullptr},
      {&echo, first_writer_is_node1},  // schedule-dependent wrong outputs
      {&frozen, nullptr},
      {&board_size, nullptr},
      {&bfs, nullptr},
      {&deadlocker, nullptr},  // every execution is an engine failure
  };
  const std::size_t shard_counts[] = {1, 2, 4, 7};
  const MergeOrder orders[] = {MergeOrder::kForward, MergeOrder::kReverse,
                               MergeOrder::kShuffled};
  for (const Graph* g : {&path4, &star4, &kb22}) {
    for (const Case& c : cases) {
      const Oracle oracle = serial_oracle(*g, *c.protocol, c.accept);
      const bool oracle_verdict = all_executions_ok(
          *g, *c.protocol, [&](const ExecutionResult& r) {
            return c.accept == nullptr || c.accept(r);
          });
      for (const std::size_t shards : shard_counts) {
        for (const MergeOrder order : orders) {
          const MergedResult merged = run_sharded(
              *g, *c.protocol, c.accept, shards, /*threads=*/2, order);
          const std::string label =
              c.protocol->name() + " on n=" +
              std::to_string(g->node_count()) + " K=" +
              std::to_string(shards) + " order=" +
              std::to_string(static_cast<int>(order));
          EXPECT_EQ(merged.executions, oracle.executions) << label;
          EXPECT_EQ(merged.engine_failures, oracle.engine_failures) << label;
          EXPECT_EQ(merged.wrong_outputs, oracle.wrong_outputs) << label;
          EXPECT_EQ(merged.distinct_boards, oracle.distinct) << label;
          EXPECT_EQ(merged.engine_failures + merged.wrong_outputs == 0,
                    oracle_verdict)
              << label;
        }
      }
    }
  }
}

TEST(ShardOracle, WorkerThreadCountNeverChangesAResult) {
  // A shard's result file must be bit-identical no matter how many threads
  // the worker used (that is what makes heterogeneous fleets mergeable).
  const Graph g = path_graph(4);
  const testing::BoardSizeProtocol p;
  const std::vector<ShardSpec> specs =
      shard::plan_shards(g, p, "test-protocol", 3);
  for (const ShardSpec& spec : specs) {
    const std::string reference =
        shard::serialize(shard::run_shard(spec, p, kNoAccept, 1));
    for (const std::size_t threads : {std::size_t{2}, std::size_t{4},
                                      std::size_t{8}, std::size_t{0}}) {
      EXPECT_EQ(shard::serialize(shard::run_shard(spec, p, kNoAccept, threads)),
                reference)
          << "shard " << spec.shard_index << " threads=" << threads;
    }
  }
}

TEST(ShardOracle, ReRunningAShardIsByteIdenticalSoReissuesAreSafe) {
  // The fleet controller's whole retry story rests on this: a shard spec
  // re-swept anywhere — after a crash, a timeout, on a different worker with
  // a different thread count — produces the same result *bytes*, so a
  // re-issued shard's result can replace (or arrive after) the original
  // without changing the merged totals.
  const Graph g = two_cliques(3);
  const TwoCliquesProtocol p;
  shard::PlanOptions opts;
  for (const DistinctConfig distinct :
       {DistinctConfig::Exact(), DistinctConfig::Hll(12)}) {
    opts.distinct = distinct;
    const std::vector<ShardSpec> specs =
        shard::plan_shards(g, p, "two-cliques", 3, opts);
    std::vector<ShardResult> first_runs;
    for (const ShardSpec& spec : specs) {
      // Round-trip the spec (the bytes a controller would re-send), then
      // run it twice at different thread counts.
      const ShardSpec resent =
          shard::parse_shard_spec(shard::serialize(spec));
      first_runs.push_back(shard::run_shard(resent, p, kNoAccept, 1));
      const ShardResult rerun = shard::run_shard(resent, p, kNoAccept, 2);
      EXPECT_EQ(shard::serialize(rerun), shard::serialize(first_runs.back()))
          << "shard " << spec.shard_index;
    }
    // Substituting a re-run for the original in the merge changes nothing.
    const MergedResult original = shard::merge_shard_results(first_runs);
    std::vector<ShardResult> with_rerun = first_runs;
    with_rerun[0] = shard::parse_shard_result(
        shard::serialize(shard::run_shard(specs[0], p, kNoAccept, 0)));
    const MergedResult substituted = shard::merge_shard_results(with_rerun);
    EXPECT_EQ(substituted.executions, original.executions);
    EXPECT_EQ(substituted.engine_failures, original.engine_failures);
    EXPECT_EQ(substituted.wrong_outputs, original.wrong_outputs);
    EXPECT_EQ(substituted.distinct_boards, original.distinct_boards);
  }
}

TEST(ShardOracle, PlanIsDeterministicAndTilesTheScheduleTree) {
  const Graph g = star_graph(4);
  const testing::EchoIdProtocol p;
  const auto once = shard::plan_shards(g, p, "echo", 4);
  const auto twice = shard::plan_shards(g, p, "echo", 4);
  ASSERT_EQ(once.size(), twice.size());
  for (std::size_t k = 0; k < once.size(); ++k) {
    EXPECT_EQ(shard::serialize(once[k]), shard::serialize(twice[k]));
  }
  // The shards' prefixes are exactly the partition, distributed round-robin.
  const std::vector<PrefixTask> tasks =
      partition_executions(g, p, EngineOptions{}, 4 * 4);
  std::size_t total = 0;
  for (const auto& spec : once) total += spec.prefixes.size();
  EXPECT_EQ(total, tasks.size());
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    EXPECT_EQ(once[t % 4].prefixes[t / 4], tasks[t]) << "task " << t;
  }
}

TEST(ShardOracle, MoreShardsThanSubtreesYieldsEmptyButMergeableShards) {
  // A single-execution schedule tree (n = 1) planned across 3 shards: two
  // shards sweep nothing, and the merge still reproduces the serial totals.
  const Graph g = path_graph(1);
  const testing::EchoIdProtocol p;
  const Oracle oracle = serial_oracle(g, p, nullptr);
  EXPECT_EQ(oracle.executions, 1u);
  const MergedResult merged = run_sharded(g, p, nullptr, 3, /*threads=*/1,
                                          MergeOrder::kReverse);
  EXPECT_EQ(merged.executions, oracle.executions);
  EXPECT_EQ(merged.distinct_boards, oracle.distinct);
}

// ---------------------------------------------------------------------------
// HyperLogLog distinct counting through the sharded pipeline: the estimate
// must be bit-identical to the in-process sweep's at any K, merge order, or
// worker thread count — the ISSUE 4 determinism contract carries over to
// approximate counting verbatim because registers max-merge obliviously.

TEST(ShardHll, MergedEstimateBitIdenticalToInProcessSweep) {
  const Graph path4 = path_graph(4);
  const Graph star4 = star_graph(4);
  const testing::EchoIdProtocol echo;
  const testing::BoardSizeProtocol board_size;
  const DistinctConfig config = DistinctConfig::Hll(12);

  struct Case {
    const Graph* graph;
    const Protocol* protocol;
  };
  const Case cases[] = {{&path4, &echo}, {&star4, &echo},
                        {&path4, &board_size}};
  for (const Case& c : cases) {
    ExhaustiveOptions opts;
    opts.distinct = config;
    const std::uint64_t oracle =
        count_distinct_final_boards(*c.graph, *c.protocol, opts);
    // The estimate itself is deterministic across thread counts...
    for (const std::size_t threads : {std::size_t{2}, std::size_t{4},
                                      std::size_t{8}}) {
      opts.threads = threads;
      EXPECT_EQ(count_distinct_final_boards(*c.graph, *c.protocol, opts),
                oracle)
          << c.protocol->name() << " threads=" << threads;
    }
    // ...and across every sharding of the same plan, in any merge order.
    shard::PlanOptions plan;
    plan.distinct = config;
    for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                     std::size_t{4}, std::size_t{7}}) {
      for (const MergeOrder order : {MergeOrder::kForward,
                                     MergeOrder::kShuffled}) {
        const MergedResult merged = run_sharded(
            *c.graph, *c.protocol, nullptr, shards, /*threads=*/2, order,
            plan);
        EXPECT_EQ(merged.distinct_boards, oracle)
            << c.protocol->name() << " K=" << shards;
        EXPECT_EQ(merged.distinct, config);
      }
    }
  }
}

TEST(ShardHll, ResultFilesAreWorkerThreadCountInvariant) {
  const Graph g = path_graph(4);
  const testing::EchoIdProtocol p;
  shard::PlanOptions plan;
  plan.distinct = DistinctConfig::Hll(8);
  const auto specs = shard::plan_shards(g, p, "echo", 3, plan);
  for (const ShardSpec& spec : specs) {
    const std::string reference =
        shard::serialize(shard::run_shard(spec, p, kNoAccept, 1));
    EXPECT_NE(reference.find("distinct-kind hll:8"), std::string::npos);
    for (const std::size_t threads : {std::size_t{2}, std::size_t{8},
                                      std::size_t{0}}) {
      EXPECT_EQ(shard::serialize(shard::run_shard(spec, p, kNoAccept, threads)),
                reference)
          << "shard " << spec.shard_index << " threads=" << threads;
    }
  }
}

// ISSUE 5 acceptance: on the two_cliques(4) sweep (8 nodes, 8! = 40320
// executions, 40320 distinct final boards) the hll:14 estimate must sit
// within 1% of the exact count and be bit-identical across thread counts
// {1,2,4,8} and shard counts {1,2,4,7} in any merge order — while the exact
// mode keeps reproducing the old numbers byte-for-byte (covered by the
// golden and oracle suites above).
TEST(ShardHll, TwoCliques4EstimateWithinOnePercentAndDeterministic) {
  const Graph g = two_cliques(4);
  const TwoCliquesProtocol p;
  const std::uint64_t exact = count_distinct_final_boards(g, p);

  ExhaustiveOptions opts;
  opts.distinct = DistinctConfig::Hll(14);
  opts.threads = 1;
  const std::uint64_t estimate = count_distinct_final_boards(g, p, opts);
  const double relative_error =
      std::abs(static_cast<double>(estimate) - static_cast<double>(exact)) /
      static_cast<double>(exact);
  EXPECT_LE(relative_error, 0.01)
      << "exact=" << exact << " hll:14=" << estimate;

  for (const std::size_t threads : {std::size_t{2}, std::size_t{4},
                                    std::size_t{8}}) {
    opts.threads = threads;
    EXPECT_EQ(count_distinct_final_boards(g, p, opts), estimate)
        << "threads=" << threads;
  }
  shard::PlanOptions plan;
  plan.distinct = DistinctConfig::Hll(14);
  for (const std::size_t shards : {std::size_t{2}, std::size_t{7}}) {
    for (const MergeOrder order : {MergeOrder::kReverse,
                                   MergeOrder::kShuffled}) {
      const MergedResult merged =
          run_sharded(g, p, nullptr, shards, /*threads=*/4, order, plan);
      EXPECT_EQ(merged.distinct_boards, estimate) << "K=" << shards;
    }
  }
}

TEST(ShardHll, HllResultWithoutARegisterBlockIsRejectedAtMergeTime) {
  // The struct is public API: a programmatically built hll result that
  // forgot its sketch must fail loudly, not silently contribute nothing.
  const Graph g = path_graph(3);
  const testing::EchoIdProtocol p;
  shard::PlanOptions plan;
  plan.distinct = DistinctConfig::Hll(8);
  const auto specs = shard::plan_shards(g, p, "echo", 2, plan);
  std::vector<ShardResult> results;
  for (const ShardSpec& spec : specs) {
    results.push_back(shard::run_shard(spec, p, kNoAccept, 1));
  }
  results[1].hll.reset();
  EXPECT_THROW((void)shard::merge_shard_results(results), DataError);
}

TEST(ShardHll, MixingExactAndHllArtifactsIsRejectedWithADiagnostic) {
  const Graph g = path_graph(4);
  const testing::EchoIdProtocol p;
  shard::PlanOptions exact_plan;
  shard::PlanOptions hll_plan;
  hll_plan.distinct = DistinctConfig::Hll(14);
  const auto exact_specs = shard::plan_shards(g, p, "echo", 2, exact_plan);
  const auto hll_specs = shard::plan_shards(g, p, "echo", 2, hll_plan);
  // The distinct choice is fingerprinted: same instance, different plans.
  ASSERT_NE(exact_specs[0].plan, hll_specs[0].plan);

  std::vector<ShardResult> mixed = {
      shard::run_shard(exact_specs[0], p, kNoAccept, 1),
      shard::run_shard(hll_specs[1], p, kNoAccept, 1)};
  try {
    (void)shard::merge_shard_results(mixed);
    FAIL() << "mixed exact/hll merge was not rejected";
  } catch (const DataError& e) {
    EXPECT_NE(std::string(e.what()).find("refusing to merge"),
              std::string::npos)
        << e.what();
  }
}

// ---------------------------------------------------------------------------
// Budget guard: the sharded sweep throws exactly when the serial oracle
// throws — whether one shard overruns alone or only the merged total does.

TEST(ShardOracle, BudgetGuardBitIdenticalToSerialOracle) {
  const Graph g = path_graph(5);  // 120 executions
  const testing::EchoIdProtocol p;

  // Serial oracle behavior at the three budget regimes.
  for (const std::uint64_t budget : {std::uint64_t{10}, std::uint64_t{50}}) {
    ExhaustiveOptions opts;
    opts.max_executions = budget;
    EXPECT_THROW(for_each_execution(
                     g, p, [](const ExecutionResult&) { return true; }, opts),
                 BudgetExceededError)
        << "budget " << budget;
  }

  shard::PlanOptions plan;
  // budget 10 < any shard's subtree share: the worker itself overruns and
  // records the deterministic budget_exceeded result; merge throws.
  plan.max_executions = 10;
  EXPECT_THROW((void)run_sharded(g, p, nullptr, 4, 2, MergeOrder::kForward,
                                 plan),
               BudgetExceededError);

  // budget 50: every shard (~30 executions) finishes under budget on its
  // own; only the merged total exceeds it — merge must still throw.
  plan.max_executions = 50;
  EXPECT_THROW((void)run_sharded(g, p, nullptr, 4, 2, MergeOrder::kShuffled,
                                 plan),
               BudgetExceededError);

  // A budget that exactly fits never throws, at any shard count.
  plan.max_executions = 120;
  for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
    const MergedResult merged =
        run_sharded(g, p, nullptr, shards, 2, MergeOrder::kForward, plan);
    EXPECT_EQ(merged.executions, 120u) << "K=" << shards;
  }
}

TEST(ShardOracle, WorkerBudgetOverrunProducesDeterministicResultFile) {
  const Graph g = path_graph(5);
  const testing::EchoIdProtocol p;
  shard::PlanOptions plan;
  plan.max_executions = 5;  // every shard overruns its share
  const auto specs = shard::plan_shards(g, p, "echo", 2, plan);
  const std::string reference =
      shard::serialize(shard::run_shard(specs[0], p, kNoAccept, 1));
  EXPECT_NE(reference.find("budget-exceeded 1"), std::string::npos);
  EXPECT_NE(reference.find("distinct 0"), std::string::npos);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    EXPECT_EQ(shard::serialize(shard::run_shard(specs[0], p, kNoAccept, threads)),
              reference)
        << "threads=" << threads;
  }
}

TEST(ShardOracle, HllWorkerBudgetOverrunClearsTheSketchDeterministically) {
  const Graph g = path_graph(5);
  const testing::EchoIdProtocol p;
  shard::PlanOptions plan;
  plan.max_executions = 5;
  plan.distinct = DistinctConfig::Hll(8);
  const auto specs = shard::plan_shards(g, p, "echo", 2, plan);
  const ShardResult overrun = shard::run_shard(specs[0], p, kNoAccept, 4);
  EXPECT_TRUE(overrun.budget_exceeded);
  ASSERT_TRUE(overrun.hll.has_value());
  EXPECT_EQ(overrun.hll->estimate(), 0u);  // cleared, like the exact hashes
  const std::string reference = shard::serialize(overrun);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    EXPECT_EQ(shard::serialize(shard::run_shard(specs[0], p, kNoAccept, threads)),
              reference)
        << "threads=" << threads;
  }
}

// ---------------------------------------------------------------------------
// Early stop and exception propagation through the prefix-subtree sweep.

TEST(ShardOracle, EarlyStopUnderPrefixTasksCountsExactlyTheVisits) {
  const Graph g = path_graph(5);  // 120 executions
  const testing::EchoIdProtocol p;
  const std::vector<PrefixTask> tasks =
      partition_executions(g, p, EngineOptions{}, 16);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    std::atomic<std::uint64_t> invocations{0};
    ExhaustiveOptions opts;
    opts.threads = threads;
    const std::uint64_t visited = for_each_execution_under(
        g, p, tasks,
        [&](const ExecutionResult&, std::size_t) {
          return invocations.fetch_add(1, std::memory_order_relaxed) + 1 < 5;
        },
        opts);
    EXPECT_EQ(visited, invocations.load()) << "threads=" << threads;
    EXPECT_GE(visited, 5u) << "threads=" << threads;
    EXPECT_LT(visited, 120u) << "early stop did not prune, threads=" << threads;
  }
}

TEST(ShardOracle, FullPrefixTaskSetMatchesClassicSweep) {
  const Graph g = path_graph(4);
  const testing::BoardSizeProtocol p;
  const std::uint64_t reference = for_each_execution(
      g, p, [](const ExecutionResult&) { return true; });
  for (const std::size_t target : {std::size_t{1}, std::size_t{3},
                                   std::size_t{100}}) {
    const std::vector<PrefixTask> tasks =
        partition_executions(g, p, EngineOptions{}, target);
    const std::uint64_t visited = for_each_execution_under(
        g, p, tasks,
        [](const ExecutionResult&, std::size_t) { return true; });
    EXPECT_EQ(visited, reference) << "target=" << target;
  }
}

TEST(ShardOracle, AcceptExceptionPropagatesOutOfRunShard) {
  const Graph g = path_graph(4);
  const testing::EchoIdProtocol p;
  const auto specs = shard::plan_shards(g, p, "echo", 1);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    std::atomic<std::uint64_t> invocations{0};
    EXPECT_THROW(
        (void)shard::run_shard(
            specs[0], p,
            [&](const ExecutionResult&) -> bool {
              if (invocations.fetch_add(1, std::memory_order_relaxed) + 1 ==
                  3) {
                throw std::runtime_error("accept bailed");
              }
              return true;
            },
            threads),
        std::runtime_error)
        << "threads=" << threads;
    EXPECT_LT(invocations.load(), 24u)
        << "exception did not cancel the sweep, threads=" << threads;
  }
}

// ---------------------------------------------------------------------------
// Golden files: the v2 text formats byte-for-byte, and the frozen v1 inputs
// the parsers must keep reading.

TEST(ShardGolden, V2SpecFileRoundTripsByteIdentically) {
  const std::string text = data_file("path3_echo_v2.0.shard");
  const ShardSpec spec = shard::parse_shard_spec(text);
  EXPECT_EQ(spec.distinct, DistinctConfig::Exact());
  EXPECT_EQ(shard::serialize(spec), text);
  // The planner still regenerates the committed bytes exactly: format *and*
  // partition/distribution are pinned.
  const testing::EchoIdProtocol p;
  const auto specs = shard::plan_shards(path_graph(3), p, "echo-id", 2);
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(shard::serialize(specs[0]), text);
}

TEST(ShardGolden, V2ResultFileRoundTripsByteIdentically) {
  const std::string text = data_file("path3_echo_v2.0.result");
  const ShardResult result = shard::parse_shard_result(text);
  EXPECT_EQ(shard::serialize(result), text);
  // Re-running the committed spec regenerates the committed result bytes:
  // board hashing, dedup, and serialization are all pinned.
  const testing::EchoIdProtocol p;
  const ShardSpec spec =
      shard::parse_shard_spec(data_file("path3_echo_v2.0.shard"));
  EXPECT_EQ(shard::serialize(shard::run_shard(spec, p, kNoAccept, 1)), text);
}

TEST(ShardGolden, V2HllSpecAndResultRoundTripByteIdentically) {
  const std::string spec_text = data_file("path3_echo_hll8.0.shard");
  const ShardSpec spec = shard::parse_shard_spec(spec_text);
  EXPECT_EQ(spec.distinct, DistinctConfig::Hll(8));
  EXPECT_EQ(shard::serialize(spec), spec_text);
  const testing::EchoIdProtocol p;
  shard::PlanOptions plan;
  plan.distinct = DistinctConfig::Hll(8);
  const auto specs = shard::plan_shards(path_graph(3), p, "echo-id", 2, plan);
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(shard::serialize(specs[0]), spec_text);

  const std::string result_text = data_file("path3_echo_hll8.0.result");
  const ShardResult result = shard::parse_shard_result(result_text);
  EXPECT_EQ(result.distinct, DistinctConfig::Hll(8));
  ASSERT_TRUE(result.hll.has_value());
  EXPECT_EQ(shard::serialize(result), result_text);
  EXPECT_EQ(shard::serialize(shard::run_shard(spec, p, kNoAccept, 1)),
            result_text);
}

TEST(ShardGolden, V2ManifestRoundTripsByteIdentically) {
  const std::string text = data_file("path3_echo_v2.manifest");
  const shard::ShardManifest manifest = shard::parse_shard_manifest(text);
  EXPECT_EQ(shard::serialize(manifest), text);
  // make_manifest over the regenerated plan reproduces the committed bytes:
  // the per-spec document hashes are pinned transitively.
  const testing::EchoIdProtocol p;
  const auto specs = shard::plan_shards(path_graph(3), p, "echo-id", 2);
  EXPECT_EQ(shard::serialize(shard::make_manifest(specs)), text);
  ASSERT_EQ(manifest.spec_hashes.size(), 2u);
  EXPECT_EQ(manifest.spec_hashes[0],
            shard::hash_document(data_file("path3_echo_v2.0.shard")));
}

TEST(ShardGolden, FrozenV1FilesStillParseAsExact) {
  // The v1 formats predate the distinct-accumulator field; committed v1
  // artifacts must keep parsing (as exact) so fleets can read old results.
  const std::string spec_text = data_file("path3_echo.0.shard");
  const ShardSpec spec = shard::parse_shard_spec(spec_text);
  EXPECT_EQ(spec.distinct, DistinctConfig::Exact());
  EXPECT_EQ(spec.protocol_spec, "echo-id");
  EXPECT_EQ(spec.prefixes.size(), 3u);

  const std::string result_text = data_file("path3_echo.0.result");
  const ShardResult result = shard::parse_shard_result(result_text);
  EXPECT_EQ(result.distinct, DistinctConfig::Exact());
  EXPECT_EQ(result.executions, 3u);
  EXPECT_EQ(result.board_hashes.size(), 3u);

  // Re-serialization upgrades a v1 document to v2 with only the version
  // bump and the (default) distinct field added — every other byte is
  // preserved, including the recorded v1 plan fingerprint.
  std::string upgraded_spec = spec_text;
  upgraded_spec.replace(upgraded_spec.find("wbshard-spec v1"),
                        15, "wbshard-spec v2");
  upgraded_spec.insert(upgraded_spec.find("plan "), "distinct exact\n");
  EXPECT_EQ(shard::serialize(spec), upgraded_spec);

  std::string upgraded_result = result_text;
  upgraded_result.replace(upgraded_result.find("wbshard-result v1"),
                          17, "wbshard-result v2");
  upgraded_result.insert(upgraded_result.find("distinct "),
                         "distinct-kind exact\n");
  EXPECT_EQ(shard::serialize(result), upgraded_result);

  // Results of one (old) plan still merge with each other.
  std::vector<ShardResult> halves = {result, result};
  halves[1].shard_index = 1;
  const MergedResult merged = shard::merge_shard_results(halves);
  EXPECT_EQ(merged.executions, 6u);
}

TEST(ShardGolden, CommittedMalformedFixturesAreRejected) {
  for (const char* name :
       {"bad_magic.shard", "version_skew.shard", "bad_distinct.shard"}) {
    EXPECT_THROW((void)shard::parse_shard_spec(data_file(name)), DataError)
        << name;
  }
  for (const char* name :
       {"truncated.result", "unsorted_hashes.result",
        "registers_mismatch.result", "register_overflow.result"}) {
    EXPECT_THROW((void)shard::parse_shard_result(data_file(name)), DataError)
        << name;
  }
  EXPECT_THROW((void)shard::parse_shard_manifest(
                   data_file("version_skew.manifest")),
               DataError);
}

// ---------------------------------------------------------------------------
// Malformed input rejection (inline mutations of a valid document).

std::string valid_spec_text() {
  const testing::EchoIdProtocol p;
  return shard::serialize(shard::plan_shards(path_graph(3), p, "echo-id", 2)[0]);
}

std::string replace_first(std::string text, const std::string& from,
                          const std::string& to) {
  const std::size_t pos = text.find(from);
  EXPECT_NE(pos, std::string::npos) << "fixture lost the '" << from
                                    << "' marker";
  return text.replace(pos, from.size(), to);
}

TEST(ShardFormats, MalformedSpecsAreRejectedWithDiagnostics) {
  const std::string valid = valid_spec_text();
  (void)shard::parse_shard_spec(valid);  // sanity: the base document parses

  const struct {
    const char* what;
    std::string text;
  } cases[] = {
      {"empty input", ""},
      {"wrong magic", replace_first(valid, "wbshard-spec", "wbshard-spek")},
      {"version skew", replace_first(valid, "wbshard-spec v2",
                                     "wbshard-spec v9")},
      {"two-digit version", replace_first(valid, "wbshard-spec v2",
                                          "wbshard-spec v22")},
      {"bad distinct config", replace_first(valid, "distinct exact",
                                            "distinct approximately")},
      {"hll precision out of range", replace_first(valid, "distinct exact",
                                                   "distinct hll:25")},
      {"missing protocol", replace_first(valid, "protocol ", "protokol ")},
      {"edge out of range", replace_first(valid, "edge 1 2", "edge 1 9")},
      {"self-loop edge", replace_first(valid, "edge 1 2", "edge 2 2")},
      {"shard index out of range", replace_first(valid, "shard 0 2",
                                                 "shard 2 2")},
      {"prefix depth too large", replace_first(valid, "prefix 2 1 2",
                                               "prefix 3 1 2 3")},
      {"prefix node out of range", replace_first(valid, "prefix 2 1 2",
                                                 "prefix 2 1 7")},
      {"prefix arity mismatch", replace_first(valid, "prefix 2 1 2",
                                              "prefix 2 1")},
      {"truncated before end", valid.substr(0, valid.size() - 4)},
      {"trailing content", valid + "extra\n"},
      {"missing final newline", valid.substr(0, valid.size() - 1)},
      {"non-numeric count", replace_first(valid, "max-executions 2000000",
                                          "max-executions lots")},
      {"engine flag out of range", replace_first(valid, "engine 0 0",
                                                 "engine 0 2")},
      {"bad plan hash width", replace_first(valid, "plan ", "plan f ")},
      // A lying giant count must produce the parse error, not a giant
      // allocation (reserve is clamped to the document size).
      {"astronomical prefix count",
       replace_first(valid, "prefixes 3", "prefixes 9999999999999999")},
      {"astronomical edge count",
       replace_first(valid, "graph 3 2", "graph 3 9999999999999999")},
  };
  for (const auto& c : cases) {
    EXPECT_THROW((void)shard::parse_shard_spec(c.text), DataError) << c.what;
  }
}

std::string valid_result_text() {
  const testing::EchoIdProtocol p;
  const auto specs = shard::plan_shards(path_graph(3), p, "echo-id", 2);
  return shard::serialize(shard::run_shard(specs[0], p, kNoAccept, 1));
}

TEST(ShardFormats, MalformedResultsAreRejectedWithDiagnostics) {
  const std::string valid = valid_result_text();
  const ShardResult parsed = shard::parse_shard_result(valid);  // sanity
  ASSERT_GE(parsed.board_hashes.size(), 2u)
      << "fixture too small to exercise hash ordering";

  std::string swapped = valid;
  {
    // Swap the first two hash lines: now not strictly increasing.
    const std::size_t h1 = swapped.find("hash ");
    const std::size_t h2 = swapped.find("hash ", h1 + 1);
    const std::size_t h2_end = swapped.find('\n', h2);
    const std::string line1 = swapped.substr(h1, swapped.find('\n', h1) - h1);
    const std::string line2 = swapped.substr(h2, h2_end - h2);
    swapped = swapped.replace(h2, line2.size(), line1);
    swapped = swapped.replace(h1, line1.size(), line2);
  }
  const struct {
    const char* what;
    std::string text;
  } cases[] = {
      {"wrong magic", replace_first(valid, "wbshard-result", "wbshard-spec")},
      {"version skew", replace_first(valid, "wbshard-result v2",
                                     "wbshard-result v0")},
      {"bad distinct kind", replace_first(valid, "distinct-kind exact",
                                          "distinct-kind fuzzy")},
      {"bad plan hash width", replace_first(valid, "plan ", "plan f ")},
      {"budget flag out of range",
       replace_first(valid, "budget-exceeded 0", "budget-exceeded 2")},
      {"hash count mismatch",
       replace_first(valid, "distinct " +
                                std::to_string(parsed.board_hashes.size()),
                     "distinct " +
                         std::to_string(parsed.board_hashes.size() + 1))},
      {"unsorted hashes", swapped},
      {"truncated before end", valid.substr(0, valid.size() - 4)},
      {"trailing content", valid + "junk\n"},
      {"astronomical distinct count",
       replace_first(valid,
                     "distinct " + std::to_string(parsed.board_hashes.size()),
                     "distinct 9999999999999999")},
  };
  for (const auto& c : cases) {
    EXPECT_THROW((void)shard::parse_shard_result(c.text), DataError) << c.what;
  }
}

TEST(ShardFormats, MalformedHllResultsAreRejectedWithDiagnostics) {
  const testing::EchoIdProtocol p;
  shard::PlanOptions plan;
  plan.distinct = DistinctConfig::Hll(4);  // 16 registers: one reg line
  const auto specs = shard::plan_shards(path_graph(3), p, "echo-id", 1, plan);
  const std::string valid =
      shard::serialize(shard::run_shard(specs[0], p, kNoAccept, 1));
  const ShardResult parsed = shard::parse_shard_result(valid);  // sanity
  ASSERT_TRUE(parsed.hll.has_value());

  // Overwrite the first register's two hex digits in place (their value
  // depends on the board hashes, so a literal search-and-replace can't name
  // them).
  const std::size_t first_byte = valid.find("reg ") + 4;
  ASSERT_NE(valid.find("reg "), std::string::npos);
  std::string bad_hex = valid;
  bad_hex[first_byte] = 'z';
  std::string overflow = valid;  // p = 4: max rho = 61 = 0x3d; 0x3e is a lie
  overflow[first_byte] = '3';
  overflow[first_byte + 1] = 'e';

  const struct {
    const char* what;
    std::string text;
  } cases[] = {
      {"register count does not match precision",
       replace_first(valid, "registers 16", "registers 32")},
      {"astronomical register count",
       replace_first(valid, "registers 16", "registers 9999999999999999")},
      {"short register line", replace_first(valid, "reg ", "reg 00")},
      {"bad hex digit", bad_hex},
      {"register value above max rho", overflow},
      {"truncated before end", valid.substr(0, valid.size() - 4)},
      {"kind/payload mismatch: exact hash lines after an hll kind",
       replace_first(valid, "registers 16", "distinct 0")},
  };
  for (const auto& c : cases) {
    EXPECT_THROW((void)shard::parse_shard_result(c.text), DataError) << c.what;
  }
}

TEST(ShardFormats, MalformedManifestsAreRejectedWithDiagnostics) {
  const testing::EchoIdProtocol p;
  const auto specs = shard::plan_shards(path_graph(3), p, "echo-id", 2);
  const std::string valid = shard::serialize(shard::make_manifest(specs));
  (void)shard::parse_shard_manifest(valid);  // sanity

  const struct {
    const char* what;
    std::string text;
  } cases[] = {
      {"empty input", ""},
      {"wrong magic",
       replace_first(valid, "wbshard-manifest", "wbshard-result")},
      {"v1 never existed for manifests",
       replace_first(valid, "wbshard-manifest v2", "wbshard-manifest v1")},
      {"zero shards", replace_first(valid, "shards 2", "shards 0")},
      {"missing spec hash", replace_first(valid, "spec ", "spek ")},
      {"bad spec hash width", replace_first(valid, "spec ", "spec f ")},
      {"bad distinct", replace_first(valid, "distinct exact",
                                     "distinct nope")},
      {"truncated before end", valid.substr(0, valid.size() - 4)},
      {"trailing content", valid + "extra\n"},
  };
  for (const auto& c : cases) {
    EXPECT_THROW((void)shard::parse_shard_manifest(c.text), DataError)
        << c.what;
  }
}

TEST(ShardManifestApi, MakeManifestValidatesThePlanSet) {
  const testing::EchoIdProtocol p;
  const auto specs = shard::plan_shards(path_graph(4), p, "echo", 3);
  const shard::ShardManifest manifest = shard::make_manifest(specs);
  EXPECT_EQ(manifest.shard_count, 3u);
  EXPECT_EQ(manifest.plan, specs[0].plan);
  EXPECT_EQ(manifest.distinct, DistinctConfig::Exact());
  ASSERT_EQ(manifest.spec_hashes.size(), 3u);
  for (std::size_t k = 0; k < specs.size(); ++k) {
    EXPECT_EQ(manifest.spec_hashes[k],
              shard::hash_document(shard::serialize(specs[k])));
  }

  // An incomplete or out-of-order spec list is refused.
  std::vector<ShardSpec> partial = {specs[0], specs[2]};
  EXPECT_THROW((void)shard::make_manifest(partial), DataError);
  std::vector<ShardSpec> swapped = {specs[1], specs[0], specs[2]};
  EXPECT_THROW((void)shard::make_manifest(swapped), DataError);
  // A spec from another plan is refused even in the right slot.
  auto foreign = shard::plan_shards(path_graph(4), p, "other", 3);
  std::vector<ShardSpec> mixed = {specs[0], foreign[1], specs[2]};
  EXPECT_THROW((void)shard::make_manifest(mixed), DataError);
}

// ---------------------------------------------------------------------------
// Merge-time validation of the result set itself.

TEST(ShardMerge, RejectsIncompleteOrInconsistentResultSets) {
  const Graph g = path_graph(4);
  const testing::EchoIdProtocol p;
  const auto specs = shard::plan_shards(g, p, "echo", 3);
  std::vector<ShardResult> results;
  for (const ShardSpec& spec : specs) {
    results.push_back(shard::run_shard(spec, p, kNoAccept, 1));
  }

  EXPECT_THROW((void)shard::merge_shard_results({}), DataError);

  std::vector<ShardResult> missing = {results[0], results[2]};
  EXPECT_THROW((void)shard::merge_shard_results(missing), DataError);

  std::vector<ShardResult> duplicated = {results[0], results[1], results[1]};
  EXPECT_THROW((void)shard::merge_shard_results(duplicated), DataError);

  // A result from a different plan (other protocol string → other
  // fingerprint) must be refused even if its shard index fits.
  const auto other = shard::plan_shards(g, p, "echo-variant", 3);
  std::vector<ShardResult> mixed = {results[0], results[1],
                                    shard::run_shard(other[2], p, kNoAccept, 1)};
  EXPECT_THROW((void)shard::merge_shard_results(mixed), DataError);

  // Same instance, same K, but a *different partition* (coarser
  // tasks_per_shard): its subtrees overlap the original plan's differently,
  // so the fingerprint must differ and the mix must be refused.
  shard::PlanOptions coarse;
  coarse.tasks_per_shard = 1;
  const auto repartitioned = shard::plan_shards(g, p, "echo", 3, coarse);
  ASSERT_NE(shard::serialize(repartitioned[2]), shard::serialize(specs[2]));
  std::vector<ShardResult> cross_partition = {
      results[0], results[1], shard::run_shard(repartitioned[2], p, kNoAccept, 1)};
  EXPECT_THROW((void)shard::merge_shard_results(cross_partition), DataError);

  // The intact set merges fine (and in any order).
  std::vector<ShardResult> reversed = {results[2], results[1], results[0]};
  const MergedResult merged = shard::merge_shard_results(reversed);
  EXPECT_EQ(merged.executions, 24u);
}

}  // namespace
}  // namespace wb
