#include "src/wb/exhaustive.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/graph/generators.h"
#include "src/protocols/bfs_sync.h"
#include "tests/wb/test_protocols.h"

namespace wb {
namespace {

TEST(Exhaustive, SimultaneousProtocolExploresAllPermutations) {
  // In a simultaneous class every unwritten node is always a candidate, so
  // the schedules are exactly the n! write orders.
  const Graph g = path_graph(4);
  const testing::EchoIdProtocol p;
  std::set<std::vector<NodeId>> orders;
  const std::uint64_t visited = for_each_execution(
      g, p,
      [&](const ExecutionResult& r) {
        EXPECT_TRUE(r.ok());
        orders.insert(r.write_order);
        return true;
      });
  EXPECT_EQ(visited, 24u);
  EXPECT_EQ(orders.size(), 24u);
}

TEST(Exhaustive, SequentialProtocolHasSingleExecution) {
  const Graph g = path_graph(5);
  const testing::OnlyFirstNodeProtocol p;  // deadlocks after one write
  std::uint64_t visited = for_each_execution(g, p, [&](const ExecutionResult& r) {
    EXPECT_EQ(r.status, RunStatus::kDeadlock);
    return true;
  });
  EXPECT_EQ(visited, 1u);
}

TEST(Exhaustive, EarlyStopOnVisitorFalse) {
  const Graph g = path_graph(4);
  const testing::EchoIdProtocol p;
  std::uint64_t seen = 0;
  const std::uint64_t visited = for_each_execution(g, p, [&](const ExecutionResult&) {
    ++seen;
    return seen < 5;
  });
  EXPECT_EQ(visited, 5u);
}

TEST(Exhaustive, BudgetGuardThrows) {
  const Graph g = path_graph(5);
  const testing::EchoIdProtocol p;
  ExhaustiveOptions opts;
  opts.max_executions = 10;  // 5! = 120 > 10
  EXPECT_THROW(
      for_each_execution(g, p, [](const ExecutionResult&) { return true; },
                         opts),
      LogicError);
}

TEST(Exhaustive, AllExecutionsOkAggregates) {
  const Graph g = path_graph(4);
  const testing::EchoIdProtocol echo;
  EXPECT_TRUE(all_executions_ok(
      g, echo, [](const ExecutionResult& r) { return r.ok(); }));
  const testing::OnlyFirstNodeProtocol deadlocker;
  EXPECT_FALSE(all_executions_ok(
      g, deadlocker, [](const ExecutionResult&) { return true; }));
}

// Everything observable about one execution, for equivalence checking.
struct Signature {
  RunStatus status = RunStatus::kProtocolError;
  std::vector<NodeId> write_order;
  std::vector<std::string> board;  // byte-per-bit message strings
  std::vector<std::size_t> activation_round;
  std::vector<std::size_t> write_round;
  std::size_t rounds = 0;

  friend bool operator==(const Signature&, const Signature&) = default;
};

Signature signature_of(const ExecutionResult& r) {
  Signature s;
  s.status = r.status;
  s.write_order = r.write_order;
  for (const Bits& m : r.board.messages()) {
    std::string bits;
    for (std::size_t i = 0; i < m.size(); ++i) {
      bits.push_back(m.bit(i) ? '1' : '0');
    }
    s.board.push_back(std::move(bits));
  }
  s.activation_round = r.stats.activation_round;
  s.write_round = r.stats.write_round;
  s.rounds = r.stats.rounds;
  return s;
}

// The pre-backtracking explorer: depth-first with a full EngineState copy at
// every branch. Kept here as the reference semantics the production explorer
// must reproduce execution-for-execution, in order.
void reference_explore(EngineState s, std::vector<Signature>& out) {
  s.begin_round();
  if (s.terminal()) {
    out.push_back(signature_of(s.finish()));
    return;
  }
  const std::size_t n_cands = s.candidates().size();
  if (n_cands == 1) {
    s.write(0);
    reference_explore(std::move(s), out);
    return;
  }
  for (std::size_t i = 0; i < n_cands; ++i) {
    EngineState branch = s;
    branch.write(i);
    reference_explore(std::move(branch), out);
  }
}

void expect_same_execution_sequence(const Graph& g, const Protocol& p) {
  std::vector<Signature> reference;
  reference_explore(EngineState(g, p), reference);

  std::vector<Signature> actual;
  const std::uint64_t visited =
      for_each_execution(g, p, [&](const ExecutionResult& r) {
        actual.push_back(signature_of(r));
        return true;
      });

  ASSERT_EQ(visited, reference.size()) << p.name();
  ASSERT_EQ(actual.size(), reference.size()) << p.name();
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(actual[i], reference[i]) << p.name() << " execution " << i;
  }
}

TEST(ExhaustiveEquivalence, BacktrackerMatchesCopyBasedDfs) {
  const Graph path4 = path_graph(4);
  const Graph star4 = star_graph(4);
  const Graph kb22 = complete_bipartite(2, 2);

  // Asynchronous classes (messages frozen at activation).
  const testing::EchoIdProtocol echo;           // SIMASYNC
  const testing::FrozenBoardSizeProtocol frozen;  // SIMASYNC, equal messages
  const testing::OnlyFirstNodeProtocol deadlocker;  // ASYNC, deadlocks
  for (const Graph* g : {&path4, &star4, &kb22}) {
    expect_same_execution_sequence(*g, echo);
    expect_same_execution_sequence(*g, frozen);
    expect_same_execution_sequence(*g, deadlocker);
  }

  // Synchronous classes (memories recomposed every round — stresses the
  // rewind of per-round recompositions).
  const testing::BoardSizeProtocol board_size;  // SIMSYNC
  const SyncBfsProtocol bfs;                    // SYNC, gated activations
  for (const Graph* g : {&path4, &star4, &kb22}) {
    expect_same_execution_sequence(*g, board_size);
    expect_same_execution_sequence(*g, bfs);
  }
}

// Reference implementation of distinct-final-board counting with
// byte-per-bit string keys (the pre-hash data structure).
std::uint64_t count_distinct_boards_by_string(const Graph& g,
                                              const Protocol& p) {
  std::set<std::string> boards;
  for_each_execution(g, p, [&](const ExecutionResult& r) {
    std::string key;
    for (const Bits& b : r.board.messages()) {
      key.push_back('|');
      for (std::size_t i = 0; i < b.size(); ++i) {
        key.push_back(b.bit(i) ? '1' : '0');
      }
    }
    boards.insert(std::move(key));
    return true;
  });
  return static_cast<std::uint64_t>(boards.size());
}

TEST(Exhaustive, HashKeyedDistinctBoardsMatchesStringKeys) {
  const testing::EchoIdProtocol echo;
  const testing::FrozenBoardSizeProtocol frozen;
  const testing::BoardSizeProtocol board_size;
  const SyncBfsProtocol bfs;
  const std::vector<const Protocol*> protocols = {&echo, &frozen, &board_size,
                                                  &bfs};
  const std::vector<Graph> graphs = {path_graph(4), star_graph(4),
                                     complete_bipartite(2, 2), cycle_graph(4)};
  for (const Protocol* p : protocols) {
    for (const Graph& g : graphs) {
      EXPECT_EQ(count_distinct_final_boards(g, *p),
                count_distinct_boards_by_string(g, *p))
          << p->name() << " on n=" << g.node_count();
    }
  }
}

TEST(Exhaustive, RetainedBoardSnapshotsSurviveBacktracking) {
  // A visitor may keep the O(1) board snapshot beyond the visit; the
  // explorer then backtracks the shared storage underneath it. Copy-on-write
  // must keep every retained snapshot bit-exact.
  const Graph g = path_graph(4);
  const testing::EchoIdProtocol p;
  std::vector<Whiteboard> boards;
  std::vector<std::vector<NodeId>> orders;
  for_each_execution(g, p, [&](const ExecutionResult& r) {
    boards.push_back(r.board);
    orders.push_back(r.write_order);
    return true;
  });
  ASSERT_EQ(boards.size(), 24u);
  for (std::size_t e = 0; e < boards.size(); ++e) {
    ASSERT_EQ(boards[e].message_count(), 4u) << "execution " << e;
    for (std::size_t i = 0; i < 4; ++i) {
      BitReader r(boards[e].message(i));
      EXPECT_EQ(codec::read_id(r, 4), orders[e][i])
          << "execution " << e << " message " << i;
    }
  }
}

TEST(Exhaustive, DistinctBoardsCountsOrderSensitivity) {
  // EchoId messages differ per node, so each of the 3! orders yields a
  // distinct board.
  const Graph g = path_graph(3);
  const testing::EchoIdProtocol p;
  EXPECT_EQ(count_distinct_final_boards(g, p), 6u);
  // FrozenBoardSize writes six identical "0" messages: one distinct board.
  const testing::FrozenBoardSizeProtocol frozen;
  EXPECT_EQ(count_distinct_final_boards(g, frozen), 1u);
}

}  // namespace
}  // namespace wb
