#include "src/wb/exhaustive.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "src/graph/generators.h"
#include "src/protocols/bfs_sync.h"
#include "tests/wb/test_protocols.h"

namespace wb {
namespace {

TEST(Exhaustive, SimultaneousProtocolExploresAllPermutations) {
  // In a simultaneous class every unwritten node is always a candidate, so
  // the schedules are exactly the n! write orders.
  const Graph g = path_graph(4);
  const testing::EchoIdProtocol p;
  std::set<std::vector<NodeId>> orders;
  const std::uint64_t visited = for_each_execution(
      g, p,
      [&](const ExecutionResult& r) {
        EXPECT_TRUE(r.ok());
        orders.insert(r.write_order);
        return true;
      });
  EXPECT_EQ(visited, 24u);
  EXPECT_EQ(orders.size(), 24u);
}

TEST(Exhaustive, SequentialProtocolHasSingleExecution) {
  const Graph g = path_graph(5);
  const testing::OnlyFirstNodeProtocol p;  // deadlocks after one write
  std::uint64_t visited = for_each_execution(g, p, [&](const ExecutionResult& r) {
    EXPECT_EQ(r.status, RunStatus::kDeadlock);
    return true;
  });
  EXPECT_EQ(visited, 1u);
}

TEST(Exhaustive, EarlyStopOnVisitorFalse) {
  const Graph g = path_graph(4);
  const testing::EchoIdProtocol p;
  std::uint64_t seen = 0;
  const std::uint64_t visited = for_each_execution(g, p, [&](const ExecutionResult&) {
    ++seen;
    return seen < 5;
  });
  EXPECT_EQ(visited, 5u);
}

TEST(Exhaustive, EarlyStopMidSubtreeCountsExactlyTheVisitedExecutions) {
  // Serial contract: stopping after the k-th visit returns exactly k, for
  // every stopping point — including mid-subtree, where pruned siblings must
  // not be counted.
  const Graph g = path_graph(4);  // 24 executions total
  const testing::EchoIdProtocol p;
  for (std::uint64_t k = 1; k <= 24; ++k) {
    std::uint64_t seen = 0;
    const std::uint64_t visited =
        for_each_execution(g, p, [&](const ExecutionResult&) {
          ++seen;
          return seen < k;
        });
    EXPECT_EQ(visited, k) << "stop after visit " << k;
    EXPECT_EQ(seen, k);
  }
}

TEST(Exhaustive, BudgetGuardThrows) {
  const Graph g = path_graph(5);
  const testing::EchoIdProtocol p;
  ExhaustiveOptions opts;
  opts.max_executions = 10;  // 5! = 120 > 10
  EXPECT_THROW(
      for_each_execution(g, p, [](const ExecutionResult&) { return true; },
                         opts),
      LogicError);
}

TEST(Exhaustive, AllExecutionsOkAggregates) {
  const Graph g = path_graph(4);
  const testing::EchoIdProtocol echo;
  EXPECT_TRUE(all_executions_ok(
      g, echo, [](const ExecutionResult& r) { return r.ok(); }));
  const testing::OnlyFirstNodeProtocol deadlocker;
  EXPECT_FALSE(all_executions_ok(
      g, deadlocker, [](const ExecutionResult&) { return true; }));
}

// Everything observable about one execution, for equivalence checking.
struct Signature {
  RunStatus status = RunStatus::kProtocolError;
  std::vector<NodeId> write_order;
  std::vector<std::string> board;  // byte-per-bit message strings
  std::vector<std::size_t> activation_round;
  std::vector<std::size_t> write_round;
  std::size_t rounds = 0;

  friend bool operator==(const Signature&, const Signature&) = default;
};

Signature signature_of(const ExecutionResult& r) {
  Signature s;
  s.status = r.status;
  s.write_order = r.write_order;
  for (const Bits& m : r.board.messages()) {
    std::string bits;
    for (std::size_t i = 0; i < m.size(); ++i) {
      bits.push_back(m.bit(i) ? '1' : '0');
    }
    s.board.push_back(std::move(bits));
  }
  s.activation_round = r.stats.activation_round;
  s.write_round = r.stats.write_round;
  s.rounds = r.stats.rounds;
  return s;
}

// The pre-backtracking explorer: depth-first with a full EngineState copy at
// every branch. Kept here as the reference semantics the production explorer
// must reproduce execution-for-execution, in order.
void reference_explore(EngineState s, std::vector<Signature>& out) {
  s.begin_round();
  if (s.terminal()) {
    out.push_back(signature_of(s.finish()));
    return;
  }
  const std::size_t n_cands = s.candidates().size();
  if (n_cands == 1) {
    s.write(0);
    reference_explore(std::move(s), out);
    return;
  }
  for (std::size_t i = 0; i < n_cands; ++i) {
    EngineState branch = s;
    branch.write(i);
    reference_explore(std::move(branch), out);
  }
}

void expect_same_execution_sequence(const Graph& g, const Protocol& p) {
  std::vector<Signature> reference;
  reference_explore(EngineState(g, p), reference);

  std::vector<Signature> actual;
  const std::uint64_t visited =
      for_each_execution(g, p, [&](const ExecutionResult& r) {
        actual.push_back(signature_of(r));
        return true;
      });

  ASSERT_EQ(visited, reference.size()) << p.name();
  ASSERT_EQ(actual.size(), reference.size()) << p.name();
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(actual[i], reference[i]) << p.name() << " execution " << i;
  }
}

TEST(ExhaustiveEquivalence, BacktrackerMatchesCopyBasedDfs) {
  const Graph path4 = path_graph(4);
  const Graph star4 = star_graph(4);
  const Graph kb22 = complete_bipartite(2, 2);

  // Asynchronous classes (messages frozen at activation).
  const testing::EchoIdProtocol echo;           // SIMASYNC
  const testing::FrozenBoardSizeProtocol frozen;  // SIMASYNC, equal messages
  const testing::OnlyFirstNodeProtocol deadlocker;  // ASYNC, deadlocks
  for (const Graph* g : {&path4, &star4, &kb22}) {
    expect_same_execution_sequence(*g, echo);
    expect_same_execution_sequence(*g, frozen);
    expect_same_execution_sequence(*g, deadlocker);
  }

  // Synchronous classes (memories recomposed every round — stresses the
  // rewind of per-round recompositions).
  const testing::BoardSizeProtocol board_size;  // SIMSYNC
  const SyncBfsProtocol bfs;                    // SYNC, gated activations
  for (const Graph* g : {&path4, &star4, &kb22}) {
    expect_same_execution_sequence(*g, board_size);
    expect_same_execution_sequence(*g, bfs);
  }
}

// Reference implementation of distinct-final-board counting with
// byte-per-bit string keys (the pre-hash data structure).
std::uint64_t count_distinct_boards_by_string(const Graph& g,
                                              const Protocol& p) {
  std::set<std::string> boards;
  for_each_execution(g, p, [&](const ExecutionResult& r) {
    std::string key;
    for (const Bits& b : r.board.messages()) {
      key.push_back('|');
      for (std::size_t i = 0; i < b.size(); ++i) {
        key.push_back(b.bit(i) ? '1' : '0');
      }
    }
    boards.insert(std::move(key));
    return true;
  });
  return static_cast<std::uint64_t>(boards.size());
}

TEST(Exhaustive, HashKeyedDistinctBoardsMatchesStringKeys) {
  const testing::EchoIdProtocol echo;
  const testing::FrozenBoardSizeProtocol frozen;
  const testing::BoardSizeProtocol board_size;
  const SyncBfsProtocol bfs;
  const std::vector<const Protocol*> protocols = {&echo, &frozen, &board_size,
                                                  &bfs};
  const std::vector<Graph> graphs = {path_graph(4), star_graph(4),
                                     complete_bipartite(2, 2), cycle_graph(4)};
  for (const Protocol* p : protocols) {
    for (const Graph& g : graphs) {
      EXPECT_EQ(count_distinct_final_boards(g, *p),
                count_distinct_boards_by_string(g, *p))
          << p->name() << " on n=" << g.node_count();
    }
  }
}

TEST(Exhaustive, RetainedBoardSnapshotsSurviveBacktracking) {
  // A visitor may keep the O(1) board snapshot beyond the visit; the
  // explorer then backtracks the shared storage underneath it. Copy-on-write
  // must keep every retained snapshot bit-exact.
  const Graph g = path_graph(4);
  const testing::EchoIdProtocol p;
  std::vector<Whiteboard> boards;
  std::vector<std::vector<NodeId>> orders;
  for_each_execution(g, p, [&](const ExecutionResult& r) {
    boards.push_back(r.board);
    orders.push_back(r.write_order);
    return true;
  });
  ASSERT_EQ(boards.size(), 24u);
  for (std::size_t e = 0; e < boards.size(); ++e) {
    ASSERT_EQ(boards[e].message_count(), 4u) << "execution " << e;
    for (std::size_t i = 0; i < 4; ++i) {
      BitReader r(boards[e].message(i));
      EXPECT_EQ(codec::read_id(r, 4), orders[e][i])
          << "execution " << e << " message " << i;
    }
  }
}

TEST(Exhaustive, DistinctBoardsCountsOrderSensitivity) {
  // EchoId messages differ per node, so each of the 3! orders yields a
  // distinct board.
  const Graph g = path_graph(3);
  const testing::EchoIdProtocol p;
  EXPECT_EQ(count_distinct_final_boards(g, p), 6u);
  // FrozenBoardSize writes six identical "0" messages: one distinct board.
  const testing::FrozenBoardSizeProtocol frozen;
  EXPECT_EQ(count_distinct_final_boards(g, frozen), 1u);
}

// ---------------------------------------------------------------------------
// Parallel exploration: the threads=1 run above is the reference oracle;
// every other thread count must visit the same execution *set* with a
// bit-identical total, agree on every aggregate, and propagate early exits
// and exceptions.

constexpr std::size_t kThreadCounts[] = {1, 2, 4, 8};

ExhaustiveOptions with_threads(std::size_t threads) {
  ExhaustiveOptions opts;
  opts.threads = threads;
  return opts;
}

// Canonical (sorted) multiset of execution signatures.
std::vector<std::string> sorted_signature_keys(const Graph& g,
                                               const Protocol& p,
                                               const ExhaustiveOptions& opts) {
  std::mutex mu;
  std::vector<std::string> keys;
  for_each_execution(
      g, p,
      [&](const ExecutionResult& r) {
        const Signature s = signature_of(r);
        std::string key;
        key += std::to_string(static_cast<int>(s.status));
        for (const NodeId v : s.write_order) key += "," + std::to_string(v);
        key += "|";
        for (const std::string& m : s.board) key += m + "/";
        key += "|" + std::to_string(s.rounds);
        for (const std::size_t a : s.activation_round) {
          key += ";" + std::to_string(a);
        }
        const std::lock_guard<std::mutex> lock(mu);
        keys.push_back(std::move(key));
        return true;
      },
      opts);
  std::sort(keys.begin(), keys.end());
  return keys;
}

TEST(ExhaustiveParallel, VisitSetAndCountMatchSerialOracleAtEveryThreadCount) {
  const Graph path4 = path_graph(4);
  const Graph star4 = star_graph(4);
  const Graph kb22 = complete_bipartite(2, 2);

  const testing::EchoIdProtocol echo;              // SIMASYNC
  const testing::FrozenBoardSizeProtocol frozen;   // SIMASYNC, equal messages
  const testing::OnlyFirstNodeProtocol deadlocker; // ASYNC, deadlocks
  const testing::BoardSizeProtocol board_size;     // SIMSYNC
  const SyncBfsProtocol bfs;                       // SYNC, gated activations
  const std::vector<const Protocol*> protocols = {&echo, &frozen, &deadlocker,
                                                  &board_size, &bfs};
  for (const Graph* g : {&path4, &star4, &kb22}) {
    for (const Protocol* p : protocols) {
      const std::vector<std::string> reference =
          sorted_signature_keys(*g, *p, with_threads(1));
      for (const std::size_t threads : kThreadCounts) {
        const std::vector<std::string> actual =
            sorted_signature_keys(*g, *p, with_threads(threads));
        EXPECT_EQ(actual, reference)
            << p->name() << " on n=" << g->node_count() << " threads="
            << threads;
      }
    }
  }
}

TEST(ExhaustiveParallel, DistinctBoardCountsBitIdenticalAtEveryThreadCount) {
  const testing::EchoIdProtocol echo;
  const testing::BoardSizeProtocol board_size;
  const SyncBfsProtocol bfs;
  const std::vector<const Protocol*> protocols = {&echo, &board_size, &bfs};
  const std::vector<Graph> graphs = {path_graph(5), star_graph(4),
                                     complete_bipartite(2, 2), cycle_graph(4)};
  for (const Protocol* p : protocols) {
    for (const Graph& g : graphs) {
      const std::uint64_t reference =
          count_distinct_final_boards(g, *p, with_threads(1));
      for (const std::size_t threads : kThreadCounts) {
        EXPECT_EQ(count_distinct_final_boards(g, *p, with_threads(threads)),
                  reference)
            << p->name() << " on n=" << g.node_count() << " threads="
            << threads;
      }
    }
  }
}

TEST(ExhaustiveParallel, HllDistinctCountsBitIdenticalAtEveryThreadCount) {
  // The approximate accumulator rides the same per-task/merge shape as the
  // exact one, so its estimate must be just as thread-count independent —
  // and, with far fewer distinct boards than registers, essentially exact.
  const testing::EchoIdProtocol echo;
  const testing::BoardSizeProtocol board_size;
  const std::vector<const Protocol*> protocols = {&echo, &board_size};
  const std::vector<Graph> graphs = {path_graph(5), star_graph(4)};
  for (const Protocol* p : protocols) {
    for (const Graph& g : graphs) {
      const std::uint64_t exact =
          count_distinct_final_boards(g, *p, with_threads(1));
      ExhaustiveOptions opts = with_threads(1);
      opts.distinct = DistinctConfig::Hll(14);
      const std::uint64_t reference = count_distinct_final_boards(g, *p, opts);
      // n! distinct boards at n <= 5 sit deep in the sketch's
      // linear-counting regime: the estimate should not be off by more than
      // a rounding step.
      EXPECT_NEAR(static_cast<double>(reference), static_cast<double>(exact),
                  std::max(1.0, 0.01 * static_cast<double>(exact)))
          << p->name() << " on n=" << g.node_count();
      for (const std::size_t threads : kThreadCounts) {
        opts = with_threads(threads);
        opts.distinct = DistinctConfig::Hll(14);
        EXPECT_EQ(count_distinct_final_boards(g, *p, opts), reference)
            << p->name() << " on n=" << g.node_count() << " threads="
            << threads;
      }
    }
  }
}

TEST(ExhaustiveParallel, AllExecutionsOkVerdictDeterministic) {
  const Graph g = path_graph(5);
  const testing::EchoIdProtocol echo;
  const testing::OnlyFirstNodeProtocol deadlocker;
  for (const std::size_t threads : kThreadCounts) {
    EXPECT_TRUE(all_executions_ok(
        g, echo, [](const ExecutionResult& r) { return r.ok(); },
        with_threads(threads)))
        << "threads=" << threads;
    EXPECT_FALSE(all_executions_ok(
        g, deadlocker, [](const ExecutionResult&) { return true; },
        with_threads(threads)))
        << "threads=" << threads;
  }
}

TEST(ExhaustiveParallel, EarlyStopCountEqualsVisitorInvocationsExactly) {
  // Parallel early-stop contract: the return value is *exactly* the number
  // of visitor invocations (workers already mid-visit finish and are
  // counted), and the stop flag prunes the remainder of the sweep.
  const Graph g = path_graph(5);  // 120 executions
  const testing::EchoIdProtocol p;
  for (const std::size_t threads : kThreadCounts) {
    std::atomic<std::uint64_t> invocations{0};
    const std::uint64_t visited = for_each_execution(
        g, p,
        [&](const ExecutionResult&) {
          return invocations.fetch_add(1, std::memory_order_relaxed) + 1 < 5;
        },
        with_threads(threads));
    EXPECT_EQ(visited, invocations.load()) << "threads=" << threads;
    EXPECT_GE(visited, 5u) << "threads=" << threads;
    EXPECT_LT(visited, 120u) << "early stop did not prune, threads="
                             << threads;
  }
}

TEST(ExhaustiveParallel, BudgetGuardThrowsAtEveryThreadCount) {
  const Graph g = path_graph(5);  // 120 > 10
  const testing::EchoIdProtocol p;
  for (const std::size_t threads : kThreadCounts) {
    ExhaustiveOptions opts = with_threads(threads);
    opts.max_executions = 10;
    EXPECT_THROW(
        for_each_execution(g, p, [](const ExecutionResult&) { return true; },
                           opts),
        LogicError)
        << "threads=" << threads;
    // And a budget that exactly fits must never throw.
    opts.max_executions = 120;
    EXPECT_EQ(for_each_execution(
                  g, p, [](const ExecutionResult&) { return true; }, opts),
              120u)
        << "threads=" << threads;
  }
}

TEST(ExhaustiveParallel, VisitorExceptionPropagatesAndCancelsSiblings) {
  const Graph g = path_graph(5);
  const testing::EchoIdProtocol p;
  for (const std::size_t threads : kThreadCounts) {
    std::atomic<std::uint64_t> invocations{0};
    EXPECT_THROW(
        for_each_execution(
            g, p,
            [&](const ExecutionResult&) -> bool {
              const std::uint64_t n =
                  invocations.fetch_add(1, std::memory_order_relaxed) + 1;
              if (n == 3) throw std::runtime_error("visitor bailed");
              return n < 3;  // racing visits also halt their own subtree
            },
            with_threads(threads)),
        std::runtime_error)
        << "threads=" << threads;
    EXPECT_LT(invocations.load(), 120u)
        << "exception did not cancel siblings, threads=" << threads;
  }
}

TEST(ExhaustiveParallel, RetainedBoardSnapshotsSurviveParallelBacktracking) {
  // The copy-on-write guarantee of the serial explorer must survive the
  // parallel one: snapshots retained by a (thread-safe) visitor stay
  // bit-exact while per-worker engines backtrack underneath them.
  const Graph g = path_graph(4);
  const testing::EchoIdProtocol p;
  std::mutex mu;
  std::vector<Whiteboard> boards;
  std::vector<std::vector<NodeId>> orders;
  const std::uint64_t visited = for_each_execution(
      g, p,
      [&](const ExecutionResult& r) {
        const std::lock_guard<std::mutex> lock(mu);
        boards.push_back(r.board);
        orders.push_back(r.write_order);
        return true;
      },
      with_threads(4));
  ASSERT_EQ(visited, 24u);
  ASSERT_EQ(boards.size(), 24u);
  for (std::size_t e = 0; e < boards.size(); ++e) {
    ASSERT_EQ(boards[e].message_count(), 4u) << "execution " << e;
    for (std::size_t i = 0; i < 4; ++i) {
      BitReader r(boards[e].message(i));
      EXPECT_EQ(codec::read_id(r, 4), orders[e][i])
          << "execution " << e << " message " << i;
    }
  }
}

}  // namespace
}  // namespace wb
