#include "src/wb/exhaustive.h"

#include <gtest/gtest.h>

#include <set>

#include "src/graph/generators.h"
#include "tests/wb/test_protocols.h"

namespace wb {
namespace {

TEST(Exhaustive, SimultaneousProtocolExploresAllPermutations) {
  // In a simultaneous class every unwritten node is always a candidate, so
  // the schedules are exactly the n! write orders.
  const Graph g = path_graph(4);
  const testing::EchoIdProtocol p;
  std::set<std::vector<NodeId>> orders;
  const std::uint64_t visited = for_each_execution(
      g, p,
      [&](const ExecutionResult& r) {
        EXPECT_TRUE(r.ok());
        orders.insert(r.write_order);
        return true;
      });
  EXPECT_EQ(visited, 24u);
  EXPECT_EQ(orders.size(), 24u);
}

TEST(Exhaustive, SequentialProtocolHasSingleExecution) {
  const Graph g = path_graph(5);
  const testing::OnlyFirstNodeProtocol p;  // deadlocks after one write
  std::uint64_t visited = for_each_execution(g, p, [&](const ExecutionResult& r) {
    EXPECT_EQ(r.status, RunStatus::kDeadlock);
    return true;
  });
  EXPECT_EQ(visited, 1u);
}

TEST(Exhaustive, EarlyStopOnVisitorFalse) {
  const Graph g = path_graph(4);
  const testing::EchoIdProtocol p;
  std::uint64_t seen = 0;
  const std::uint64_t visited = for_each_execution(g, p, [&](const ExecutionResult&) {
    ++seen;
    return seen < 5;
  });
  EXPECT_EQ(visited, 5u);
}

TEST(Exhaustive, BudgetGuardThrows) {
  const Graph g = path_graph(5);
  const testing::EchoIdProtocol p;
  ExhaustiveOptions opts;
  opts.max_executions = 10;  // 5! = 120 > 10
  EXPECT_THROW(
      for_each_execution(g, p, [](const ExecutionResult&) { return true; },
                         opts),
      LogicError);
}

TEST(Exhaustive, AllExecutionsOkAggregates) {
  const Graph g = path_graph(4);
  const testing::EchoIdProtocol echo;
  EXPECT_TRUE(all_executions_ok(
      g, echo, [](const ExecutionResult& r) { return r.ok(); }));
  const testing::OnlyFirstNodeProtocol deadlocker;
  EXPECT_FALSE(all_executions_ok(
      g, deadlocker, [](const ExecutionResult&) { return true; }));
}

TEST(Exhaustive, DistinctBoardsCountsOrderSensitivity) {
  // EchoId messages differ per node, so each of the 3! orders yields a
  // distinct board.
  const Graph g = path_graph(3);
  const testing::EchoIdProtocol p;
  EXPECT_EQ(count_distinct_final_boards(g, p), 6u);
  // FrozenBoardSize writes six identical "0" messages: one distinct board.
  const testing::FrozenBoardSizeProtocol frozen;
  EXPECT_EQ(count_distinct_final_boards(g, frozen), 1u);
}

}  // namespace
}  // namespace wb
