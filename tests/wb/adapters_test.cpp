// Executable Lemma 4: protocols of a smaller class, run through the adapters
// under a larger class's engine semantics, keep solving their problem.
#include "src/wb/adapters.h"

#include <gtest/gtest.h>

#include "src/graph/algorithms.h"
#include "src/graph/generators.h"
#include "src/protocols/build_degenerate.h"
#include "src/protocols/build_forest.h"
#include "src/protocols/eob_bfs.h"
#include "src/protocols/mis.h"
#include "src/wb/engine.h"
#include "src/wb/exhaustive.h"

namespace wb {
namespace {

TEST(Adapters, SimAsyncBuildRunsUnderSimSync) {
  const Graph g = random_forest(14, 80, 3);
  const BuildForestProtocol inner;
  const SimAsyncInSimSync<BuildOutput> wrapped(inner);
  EXPECT_EQ(wrapped.model_class(), ModelClass::kSimSync);
  for (auto& adv : standard_adversaries(g, 5)) {
    const ExecutionResult r = run_protocol(g, wrapped, *adv);
    ASSERT_TRUE(r.ok()) << adv->name();
    const BuildOutput out = wrapped.output(r.board, 14);
    ASSERT_TRUE(out.has_value()) << adv->name();
    EXPECT_EQ(*out, g) << adv->name();
  }
}

TEST(Adapters, SimAsyncBuildRebadgedToAsync) {
  const Graph g = random_k_degenerate(12, 2, 25, 7);
  const BuildDegenerateProtocol inner(2);
  const Rebadge<BuildOutput> wrapped(inner, ModelClass::kAsync);
  EXPECT_EQ(wrapped.model_class(), ModelClass::kAsync);
  const ExecutionResult r = run_protocol(g, wrapped);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*wrapped.output(r.board, 12), g);
}

TEST(Adapters, RebadgeRejectsInvalidMoves) {
  const BuildForestProtocol simasync;
  EXPECT_THROW(Rebadge<BuildOutput>(simasync, ModelClass::kSimSync),
               LogicError);
  const RootedMisProtocol simsync(1);
  EXPECT_THROW(Rebadge<MisOutput>(simsync, ModelClass::kAsync), LogicError);
}

TEST(Adapters, SimSyncMisRunsUnderAsyncInForcedOrder) {
  const Graph g = connected_gnp(10, 1, 3, 11);
  const RootedMisProtocol inner(4);
  const SimSyncInAsync<MisOutput> wrapped(inner);
  EXPECT_EQ(wrapped.model_class(), ModelClass::kAsync);
  for (auto& adv : standard_adversaries(g, 3)) {
    const ExecutionResult r = run_protocol(g, wrapped, *adv);
    ASSERT_TRUE(r.ok()) << adv->name();
    // The sequential-activation construction forces write order v_1..v_n —
    // the adversary never has more than one candidate.
    std::vector<NodeId> expect(10);
    for (NodeId v = 1; v <= 10; ++v) expect[v - 1] = v;
    EXPECT_EQ(r.write_order, expect) << adv->name();
    EXPECT_TRUE(is_rooted_mis(g, wrapped.output(r.board, 10), 4))
        << adv->name();
  }
}

TEST(Adapters, AsyncEobBfsRunsUnderSync) {
  const Graph g = connected_even_odd_bipartite(11, 1, 4, 9);
  const EobBfsProtocol inner;
  const AsyncInSync<BfsProtocolOutput> wrapped(inner);
  EXPECT_EQ(wrapped.model_class(), ModelClass::kSync);
  for (auto& adv : standard_adversaries(g, 13)) {
    const ExecutionResult r = run_protocol(g, wrapped, *adv);
    ASSERT_TRUE(r.ok()) << adv->name();
    const BfsProtocolOutput out = wrapped.output(r.board, 11);
    ASSERT_TRUE(out.valid) << adv->name();
    EXPECT_TRUE(is_valid_bfs_forest(g, out.layer, out.parent)) << adv->name();
  }
}

TEST(Adapters, AsyncInSyncMatchesNativeAsyncExhaustively) {
  // Every schedule of the wrapped protocol must still succeed and agree with
  // the reference BFS layers.
  const Graph g = connected_even_odd_bipartite(6, 1, 3, 21);
  const EobBfsProtocol inner;
  const AsyncInSync<BfsProtocolOutput> wrapped(inner);
  const BfsForest ref = bfs_forest(g);
  EXPECT_TRUE(all_executions_ok(g, wrapped, [&](const ExecutionResult& r) {
    const BfsProtocolOutput out = wrapped.output(r.board, 6);
    return out.valid && out.layer == ref.layer;
  }));
}

TEST(Adapters, FullChainReconstructsIdentically) {
  // SIMASYNC protocol pushed through the whole lattice: native, @simsync,
  // @async, and @async@sync — all four engines reconstruct the same graph.
  const Graph g = random_k_degenerate(10, 2, 30, 17);
  const BuildDegenerateProtocol native(2);
  const SimAsyncInSimSync<BuildOutput> at_simsync(native);
  const Rebadge<BuildOutput> at_async(native, ModelClass::kAsync);
  const AsyncInSync<BuildOutput> at_sync(at_async);

  const Protocol* protocols[] = {&native, &at_simsync, &at_async, &at_sync};
  const ModelClass classes[] = {ModelClass::kSimAsync, ModelClass::kSimSync,
                                ModelClass::kAsync, ModelClass::kSync};
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(protocols[i]->model_class(), classes[i]);
  }
  for (const auto* typed : {static_cast<const ProtocolWithOutput<BuildOutput>*>(
                                &native),
                            static_cast<const ProtocolWithOutput<BuildOutput>*>(
                                &at_simsync),
                            static_cast<const ProtocolWithOutput<BuildOutput>*>(
                                &at_async),
                            static_cast<const ProtocolWithOutput<BuildOutput>*>(
                                &at_sync)}) {
    LastAdversary adv;
    const ExecutionResult r = run_protocol(g, *typed, adv);
    ASSERT_TRUE(r.ok()) << typed->name();
    EXPECT_EQ(*typed->output(r.board, 10), g) << typed->name();
  }
}

}  // namespace
}  // namespace wb
