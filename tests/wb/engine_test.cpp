#include "src/wb/engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/graph/generators.h"
#include "src/protocols/build_forest.h"
#include "tests/wb/test_protocols.h"

namespace wb {
namespace {

TEST(Engine, SuccessfulRunWritesEveryNodeOnce) {
  const Graph g = path_graph(6);
  const testing::EchoIdProtocol p;
  const ExecutionResult r = run_protocol(g, p);
  ASSERT_EQ(r.status, RunStatus::kSuccess);
  EXPECT_EQ(r.board.message_count(), 6u);
  EXPECT_EQ(r.stats.writes, 6u);
  std::set<NodeId> writers(r.write_order.begin(), r.write_order.end());
  EXPECT_EQ(writers.size(), 6u);
  EXPECT_EQ(p.output(r.board, 6), 6u);
}

TEST(Engine, SingleNodeGraph) {
  const Graph g(1);
  const testing::EchoIdProtocol p;
  const ExecutionResult r = run_protocol(g, p);
  EXPECT_EQ(r.status, RunStatus::kSuccess);
  EXPECT_EQ(r.board.message_count(), 1u);
}

TEST(Engine, StatsTrackBitsAndRounds) {
  const Graph g = star_graph(9);
  const BuildForestProtocol p;
  const ExecutionResult r = run_protocol(g, p);
  ASSERT_TRUE(r.ok());
  EXPECT_LE(r.stats.max_message_bits, p.message_bit_limit(9));
  EXPECT_EQ(r.stats.total_bits, r.board.total_bits());
  EXPECT_GE(r.stats.rounds, r.stats.writes);
  // All nodes activated in round 1 (simultaneous class).
  for (std::size_t ar : r.stats.activation_round) EXPECT_EQ(ar, 1u);
  // Write rounds are strictly increasing per write order.
  for (NodeId v = 1; v <= 9; ++v) EXPECT_GE(r.stats.write_round[v - 1], 1u);
}

TEST(Engine, SimultaneousClassViolationIsProtocolError) {
  const Graph g = path_graph(3);
  const testing::LazySimSyncProtocol p;
  const ExecutionResult r = run_protocol(g, p);
  EXPECT_EQ(r.status, RunStatus::kProtocolError);
  EXPECT_NE(r.error.find("did not activate"), std::string::npos);
}

TEST(Engine, MessageOverflowIsReported) {
  const Graph g = path_graph(3);
  const testing::OversizeProtocol p;
  const ExecutionResult r = run_protocol(g, p);
  EXPECT_EQ(r.status, RunStatus::kMessageOverflow);
  EXPECT_NE(r.error.find("exceeding"), std::string::npos);
}

TEST(Engine, DeadlockDetected) {
  const Graph g = path_graph(4);
  const testing::OnlyFirstNodeProtocol p;
  const ExecutionResult r = run_protocol(g, p);
  EXPECT_EQ(r.status, RunStatus::kDeadlock);
  EXPECT_EQ(r.board.message_count(), 1u);  // only node 1 wrote
}

TEST(Engine, SynchronousRecompositionSeesCurrentBoard) {
  // Every written message must carry the pre-write board size: proves the
  // engine recomposes synchronous memories each round.
  const Graph g = complete_graph(5);
  const testing::BoardSizeProtocol p;
  for (auto& adv : standard_adversaries(g, 99)) {
    const ExecutionResult r = run_protocol(g, p, *adv);
    ASSERT_TRUE(r.ok()) << adv->name();
    EXPECT_EQ(p.output(r.board, 5), 1) << adv->name();
  }
}

TEST(Engine, AsynchronousMessagesAreFrozenAtActivation) {
  // All nodes activate on the empty board; everyone must write "0" no matter
  // how late the adversary schedules them.
  const Graph g = complete_graph(5);
  const testing::FrozenBoardSizeProtocol p;
  for (auto& adv : standard_adversaries(g, 99)) {
    const ExecutionResult r = run_protocol(g, p, *adv);
    ASSERT_TRUE(r.ok()) << adv->name();
    EXPECT_EQ(p.output(r.board, 5), 5) << adv->name();
  }
}

TEST(Engine, TraceRecordsLifecycle) {
  const Graph g = path_graph(3);
  const testing::EchoIdProtocol p;
  EngineOptions opts;
  opts.record_trace = true;
  const ExecutionResult r = run_protocol(g, p, opts);
  ASSERT_TRUE(r.ok());
  std::size_t activations = 0, writes = 0, terminations = 0;
  for (const TraceEvent& e : r.trace) {
    switch (e.kind) {
      case TraceEvent::Kind::kActivate: ++activations; break;
      case TraceEvent::Kind::kWrite: ++writes; break;
      case TraceEvent::Kind::kTerminate: ++terminations; break;
    }
  }
  EXPECT_EQ(activations, 3u);
  EXPECT_EQ(writes, 3u);
  EXPECT_GE(terminations, 2u);  // the last writer may terminate off-trace
}

TEST(Engine, RoundLimitGuard) {
  const Graph g = path_graph(3);
  const testing::EchoIdProtocol p;
  EngineOptions opts;
  opts.max_rounds = 1;  // not enough to finish 3 writes
  const ExecutionResult r = run_protocol(g, p, opts);
  EXPECT_EQ(r.status, RunStatus::kProtocolError);
}

TEST(EngineState, StepwiseApiMatchesRunner) {
  const Graph g = path_graph(4);
  const testing::EchoIdProtocol p;
  EngineState s(g, p);
  std::size_t writes = 0;
  while (true) {
    s.begin_round();
    if (s.terminal()) break;
    ASSERT_FALSE(s.candidates().empty());
    s.write(0);
    ++writes;
  }
  EXPECT_EQ(writes, 4u);
  EXPECT_EQ(s.finish().status, RunStatus::kSuccess);
}

TEST(EngineState, FinishBeforeTerminalThrows) {
  const Graph g = path_graph(2);
  const testing::EchoIdProtocol p;
  EngineState s(g, p);
  EXPECT_THROW((void)s.finish(), LogicError);
}

}  // namespace
}  // namespace wb
