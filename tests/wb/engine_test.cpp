#include "src/wb/engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/graph/generators.h"
#include "src/protocols/build_forest.h"
#include "tests/wb/test_protocols.h"

namespace wb {
namespace {

TEST(Engine, SuccessfulRunWritesEveryNodeOnce) {
  const Graph g = path_graph(6);
  const testing::EchoIdProtocol p;
  const ExecutionResult r = run_protocol(g, p);
  ASSERT_EQ(r.status, RunStatus::kSuccess);
  EXPECT_EQ(r.board.message_count(), 6u);
  EXPECT_EQ(r.stats.writes, 6u);
  std::set<NodeId> writers(r.write_order.begin(), r.write_order.end());
  EXPECT_EQ(writers.size(), 6u);
  EXPECT_EQ(p.output(r.board, 6), 6u);
}

TEST(Engine, SingleNodeGraph) {
  const Graph g(1);
  const testing::EchoIdProtocol p;
  const ExecutionResult r = run_protocol(g, p);
  EXPECT_EQ(r.status, RunStatus::kSuccess);
  EXPECT_EQ(r.board.message_count(), 1u);
}

TEST(Engine, StatsTrackBitsAndRounds) {
  const Graph g = star_graph(9);
  const BuildForestProtocol p;
  const ExecutionResult r = run_protocol(g, p);
  ASSERT_TRUE(r.ok());
  EXPECT_LE(r.stats.max_message_bits, p.message_bit_limit(9));
  EXPECT_EQ(r.stats.total_bits, r.board.total_bits());
  EXPECT_GE(r.stats.rounds, r.stats.writes);
  // All nodes activated in round 1 (simultaneous class).
  for (std::size_t ar : r.stats.activation_round) EXPECT_EQ(ar, 1u);
  // Write rounds are strictly increasing per write order.
  for (NodeId v = 1; v <= 9; ++v) EXPECT_GE(r.stats.write_round[v - 1], 1u);
}

TEST(Engine, SimultaneousClassViolationIsProtocolError) {
  const Graph g = path_graph(3);
  const testing::LazySimSyncProtocol p;
  const ExecutionResult r = run_protocol(g, p);
  EXPECT_EQ(r.status, RunStatus::kProtocolError);
  EXPECT_NE(r.error.find("did not activate"), std::string::npos);
}

TEST(Engine, MessageOverflowIsReported) {
  const Graph g = path_graph(3);
  const testing::OversizeProtocol p;
  const ExecutionResult r = run_protocol(g, p);
  EXPECT_EQ(r.status, RunStatus::kMessageOverflow);
  EXPECT_NE(r.error.find("exceeding"), std::string::npos);
}

TEST(Engine, DeadlockDetected) {
  const Graph g = path_graph(4);
  const testing::OnlyFirstNodeProtocol p;
  const ExecutionResult r = run_protocol(g, p);
  EXPECT_EQ(r.status, RunStatus::kDeadlock);
  EXPECT_EQ(r.board.message_count(), 1u);  // only node 1 wrote
}

TEST(Engine, SynchronousRecompositionSeesCurrentBoard) {
  // Every written message must carry the pre-write board size: proves the
  // engine recomposes synchronous memories each round.
  const Graph g = complete_graph(5);
  const testing::BoardSizeProtocol p;
  for (auto& adv : standard_adversaries(g, 99)) {
    const ExecutionResult r = run_protocol(g, p, *adv);
    ASSERT_TRUE(r.ok()) << adv->name();
    EXPECT_EQ(p.output(r.board, 5), 1) << adv->name();
  }
}

TEST(Engine, AsynchronousMessagesAreFrozenAtActivation) {
  // All nodes activate on the empty board; everyone must write "0" no matter
  // how late the adversary schedules them.
  const Graph g = complete_graph(5);
  const testing::FrozenBoardSizeProtocol p;
  for (auto& adv : standard_adversaries(g, 99)) {
    const ExecutionResult r = run_protocol(g, p, *adv);
    ASSERT_TRUE(r.ok()) << adv->name();
    EXPECT_EQ(p.output(r.board, 5), 5) << adv->name();
  }
}

TEST(Engine, TraceRecordsLifecycle) {
  const Graph g = path_graph(3);
  const testing::EchoIdProtocol p;
  EngineOptions opts;
  opts.record_trace = true;
  const ExecutionResult r = run_protocol(g, p, opts);
  ASSERT_TRUE(r.ok());
  std::size_t activations = 0, writes = 0, terminations = 0;
  for (const TraceEvent& e : r.trace) {
    switch (e.kind) {
      case TraceEvent::Kind::kActivate: ++activations; break;
      case TraceEvent::Kind::kWrite: ++writes; break;
      case TraceEvent::Kind::kTerminate: ++terminations; break;
    }
  }
  EXPECT_EQ(activations, 3u);
  EXPECT_EQ(writes, 3u);
  EXPECT_GE(terminations, 2u);  // the last writer may terminate off-trace
}

TEST(Engine, RoundLimitGuard) {
  const Graph g = path_graph(3);
  const testing::EchoIdProtocol p;
  EngineOptions opts;
  opts.max_rounds = 1;  // not enough to finish 3 writes
  const ExecutionResult r = run_protocol(g, p, opts);
  EXPECT_EQ(r.status, RunStatus::kProtocolError);
}

TEST(EngineState, StepwiseApiMatchesRunner) {
  const Graph g = path_graph(4);
  const testing::EchoIdProtocol p;
  EngineState s(g, p);
  std::size_t writes = 0;
  while (true) {
    s.begin_round();
    if (s.terminal()) break;
    ASSERT_FALSE(s.candidates().empty());
    s.write(0);
    ++writes;
  }
  EXPECT_EQ(writes, 4u);
  EXPECT_EQ(s.finish().status, RunStatus::kSuccess);
}

TEST(EngineState, FinishBeforeTerminalThrows) {
  const Graph g = path_graph(2);
  const testing::EchoIdProtocol p;
  EngineState s(g, p);
  EXPECT_THROW((void)s.finish(), LogicError);
}

TEST(EngineState, MoveFinishMatchesCopyFinish) {
  const Graph g = complete_graph(4);
  const testing::BoardSizeProtocol p;
  EngineOptions opts;
  opts.record_trace = true;
  EngineState s(g, p, opts);
  while (true) {
    s.begin_round();
    if (s.terminal()) break;
    s.write(s.candidates().size() - 1);  // last candidate, for variety
  }
  const ExecutionResult copied = s.finish();
  const ExecutionResult moved = std::move(s).finish();
  EXPECT_EQ(moved.status, copied.status);
  EXPECT_EQ(moved.write_order, copied.write_order);
  EXPECT_EQ(moved.error, copied.error);
  EXPECT_EQ(moved.stats.writes, copied.stats.writes);
  EXPECT_EQ(moved.stats.rounds, copied.stats.rounds);
  EXPECT_EQ(moved.stats.activation_round, copied.stats.activation_round);
  EXPECT_EQ(moved.stats.write_round, copied.stats.write_round);
  EXPECT_EQ(moved.trace.size(), copied.trace.size());
  ASSERT_EQ(moved.board.message_count(), copied.board.message_count());
  for (std::size_t i = 0; i < moved.board.message_count(); ++i) {
    EXPECT_TRUE(moved.board.message(i) == copied.board.message(i));
  }
}

TEST(EngineState, WriteNodeRejectsNonCandidates) {
  const Graph g = path_graph(3);
  const testing::OnlyFirstNodeProtocol p;  // only node 1 ever activates
  EngineState s(g, p);
  s.begin_round();
  ASSERT_FALSE(s.terminal());
  EXPECT_THROW(s.write_node(2), LogicError);   // awake, not active
  EXPECT_THROW(s.write_node(99), LogicError);  // not a node
  s.write_node(1);
  s.begin_round();  // node 1 terminates; run deadlocks
  EXPECT_TRUE(s.terminal());
}

TEST(EngineState, WriteNodeEnforcesOneWritePerRound) {
  const Graph g = complete_graph(3);
  const testing::EchoIdProtocol p;
  EngineState s(g, p);
  s.begin_round();
  ASSERT_FALSE(s.terminal());
  s.write_node(1);
  EXPECT_THROW(s.write_node(2), LogicError);  // no begin_round() in between
  s.begin_round();
  s.write_node(2);  // fine after the next round starts
}

TEST(EngineState, CheckpointRequiresJournaling) {
  const Graph g = path_graph(2);
  const testing::EchoIdProtocol p;
  EngineState s(g, p);
  EXPECT_THROW((void)s.checkpoint(), LogicError);
}

// Branch once by checkpoint/rewind and once on a fresh engine: every
// observable of the two executions must agree. Exercises undo of writes,
// activations, terminations, and (for the sync protocol) recompositions.
class EngineRewindTest : public ::testing::TestWithParam<bool> {};

TEST_P(EngineRewindTest, RewindReplaysExactly) {
  const bool sync = GetParam();
  const Graph g = complete_graph(4);
  const testing::BoardSizeProtocol sync_p;
  const testing::FrozenBoardSizeProtocol async_p;
  const Protocol& p =
      sync ? static_cast<const Protocol&>(sync_p) : async_p;
  EngineOptions opts;
  opts.record_trace = true;

  // Reference: a fresh engine that always writes the *last* candidate.
  auto reference = [&] {
    EngineState s(g, p, opts);
    while (true) {
      s.begin_round();
      if (s.terminal()) return std::move(s).finish();
      s.write(s.candidates().size() - 1);
    }
  }();

  // Journaling engine: first exhaust the first-candidate branch to terminal,
  // then rewind to the very start and replay the last-candidate branch.
  EngineState s(g, p, opts);
  s.set_journaling(true);
  const EngineState::Checkpoint start = s.checkpoint();
  while (true) {
    s.begin_round();
    if (s.terminal()) break;
    s.write(0);
  }
  const ExecutionResult first_branch = s.finish();
  EXPECT_TRUE(first_branch.ok());
  s.rewind(start);

  while (true) {
    s.begin_round();
    if (s.terminal()) break;
    s.write(s.candidates().size() - 1);
  }
  const ExecutionResult replay = s.finish();

  EXPECT_EQ(replay.status, reference.status);
  EXPECT_EQ(replay.write_order, reference.write_order);
  EXPECT_EQ(replay.stats.rounds, reference.stats.rounds);
  EXPECT_EQ(replay.stats.writes, reference.stats.writes);
  EXPECT_EQ(replay.stats.max_message_bits, reference.stats.max_message_bits);
  EXPECT_EQ(replay.stats.total_bits, reference.stats.total_bits);
  EXPECT_EQ(replay.stats.activation_round, reference.stats.activation_round);
  EXPECT_EQ(replay.stats.write_round, reference.stats.write_round);
  ASSERT_EQ(replay.board.message_count(), reference.board.message_count());
  for (std::size_t i = 0; i < replay.board.message_count(); ++i) {
    EXPECT_TRUE(replay.board.message(i) == reference.board.message(i));
  }
  EXPECT_EQ(replay.board.content_hash(), reference.board.content_hash());
  ASSERT_EQ(replay.trace.size(), reference.trace.size());
  for (std::size_t i = 0; i < replay.trace.size(); ++i) {
    EXPECT_EQ(replay.trace[i].round, reference.trace[i].round);
    EXPECT_EQ(replay.trace[i].kind, reference.trace[i].kind);
    EXPECT_EQ(replay.trace[i].node, reference.trace[i].node);
  }
  // The first branch's snapshot is unaffected by the rewind + replay.
  EXPECT_EQ(first_branch.board.message_count(), 4u);
  EXPECT_NE(first_branch.write_order, replay.write_order);
}

INSTANTIATE_TEST_SUITE_P(SyncAndAsync, EngineRewindTest,
                         ::testing::Values(true, false));

}  // namespace
}  // namespace wb
