#include "src/sym/bdd.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "src/support/check.h"

namespace wb::sym {
namespace {

std::vector<std::uint32_t> universe_of(std::size_t n) {
  std::vector<std::uint32_t> u(n);
  std::iota(u.begin(), u.end(), 0u);
  return u;
}

TEST(Bdd, TerminalsAndVariables) {
  BddManager m(3);
  EXPECT_EQ(m.var_count(), 3u);
  EXPECT_NE(kBddFalse, kBddTrue);
  // Canonicity: asking twice yields the same node.
  EXPECT_EQ(m.var(0), m.var(0));
  EXPECT_EQ(m.nvar(2), m.nvar(2));
  EXPECT_NE(m.var(0), m.var(1));
  EXPECT_NE(m.var(0), m.nvar(0));
}

TEST(Bdd, IteIdentitiesAreCanonical) {
  // Semantic equality is ref equality — every identity below is an
  // EXPECT_EQ on handles, which is the whole point of hash-consing.
  BddManager m(4);
  const BddRef a = m.var(0);
  const BddRef b = m.var(1);
  const BddRef c = m.var(2);

  EXPECT_EQ(m.ite(a, kBddTrue, kBddFalse), a);
  EXPECT_EQ(m.ite(kBddTrue, a, b), a);
  EXPECT_EQ(m.ite(kBddFalse, a, b), b);
  EXPECT_EQ(m.ite(a, b, b), b);

  EXPECT_EQ(m.bdd_and(a, a), a);
  EXPECT_EQ(m.bdd_or(a, a), a);
  EXPECT_EQ(m.bdd_and(a, kBddFalse), kBddFalse);
  EXPECT_EQ(m.bdd_or(a, kBddTrue), kBddTrue);
  EXPECT_EQ(m.bdd_and(a, m.bdd_not(a)), kBddFalse);
  EXPECT_EQ(m.bdd_or(a, m.bdd_not(a)), kBddTrue);
  EXPECT_EQ(m.bdd_not(m.bdd_not(a)), a);
  EXPECT_EQ(m.bdd_xor(a, a), kBddFalse);
  EXPECT_EQ(m.bdd_iff(a, a), kBddTrue);
  EXPECT_EQ(m.bdd_xor(a, kBddFalse), a);

  // Commutativity / associativity / De Morgan, as handle equalities.
  EXPECT_EQ(m.bdd_and(a, b), m.bdd_and(b, a));
  EXPECT_EQ(m.bdd_or(a, b), m.bdd_or(b, a));
  EXPECT_EQ(m.bdd_and(m.bdd_and(a, b), c), m.bdd_and(a, m.bdd_and(b, c)));
  EXPECT_EQ(m.bdd_not(m.bdd_and(a, b)),
            m.bdd_or(m.bdd_not(a), m.bdd_not(b)));
  // Distributivity.
  EXPECT_EQ(m.bdd_and(a, m.bdd_or(b, c)),
            m.bdd_or(m.bdd_and(a, b), m.bdd_and(a, c)));
  // Shannon expansion rebuilds the function it expanded.
  const BddRef f = m.bdd_xor(m.bdd_and(a, b), c);
  EXPECT_EQ(m.ite(a, m.bdd_xor(b, c), c), f);
}

TEST(Bdd, CubeMatchesTheAndChain) {
  BddManager m(5);
  const std::vector<BddLiteral> lits = {{0, true}, {2, false}, {4, true}};
  BddRef chain = kBddTrue;
  for (const auto& [v, phase] : lits) {
    chain = m.bdd_and(chain, phase ? m.var(v) : m.nvar(v));
  }
  EXPECT_EQ(m.cube(lits), chain);
  EXPECT_EQ(m.cube({}), kBddTrue);
  EXPECT_EQ(m.sat_count(m.cube(lits), universe_of(5)), 4u);  // 2 free vars
}

TEST(Bdd, EvalAgreesWithConstruction) {
  BddManager m(3);
  // f = (x0 & x1) | !x2
  const BddRef f =
      m.bdd_or(m.bdd_and(m.var(0), m.var(1)), m.nvar(2));
  for (unsigned bits = 0; bits < 8; ++bits) {
    const std::vector<bool> a = {(bits & 1) != 0, (bits & 2) != 0,
                                 (bits & 4) != 0};
    const bool expected = (a[0] && a[1]) || !a[2];
    EXPECT_EQ(m.eval(f, a), expected) << "assignment " << bits;
  }
  EXPECT_TRUE(m.eval(kBddTrue, {false, false, false}));
  EXPECT_FALSE(m.eval(kBddFalse, {true, true, true}));
}

TEST(Bdd, SatCountOverTheUniverse) {
  BddManager m(4);
  const auto u = universe_of(4);
  EXPECT_EQ(m.sat_count(kBddTrue, u), 16u);
  EXPECT_EQ(m.sat_count(kBddFalse, u), 0u);
  EXPECT_EQ(m.sat_count(m.var(1), u), 8u);
  const BddRef f = m.bdd_xor(m.var(0), m.var(3));
  EXPECT_EQ(m.sat_count(f, u), 8u);
  // Universe variables outside the support double the count...
  const std::vector<std::uint32_t> narrow = {0, 3};
  EXPECT_EQ(m.sat_count(f, narrow), 2u);
  // ...and a support variable missing from the universe is a bug.
  const std::vector<std::uint32_t> missing = {0, 1};
  EXPECT_THROW((void)m.sat_count(f, missing), LogicError);
}

TEST(Bdd, SatCountOverflowIsATypedRefusal) {
  // 2^65 models of TRUE over a 65-variable universe exceeds uint64.
  BddManager m(65);
  EXPECT_THROW((void)m.sat_count(kBddTrue, universe_of(65)), DataError);
  // 2^63 still fits.
  BddManager small(63);
  EXPECT_EQ(m.sat_count(kBddTrue, universe_of(63)),
            std::uint64_t{1} << 63);
}

TEST(Bdd, ExistsQuantifiesAway) {
  BddManager m(4);
  const BddRef a = m.var(0);
  const BddRef b = m.var(1);
  const BddRef f = m.bdd_and(a, b);
  const std::vector<std::uint32_t> just_b = {1};
  EXPECT_EQ(m.exists(f, just_b), a);           // ∃b. a∧b = a
  const std::vector<std::uint32_t> both = {0, 1};
  EXPECT_EQ(m.exists(f, both), kBddTrue);      // satisfiable
  EXPECT_EQ(m.exists(kBddFalse, both), kBddFalse);
  // ∃ distributes over ∨.
  const BddRef g = m.bdd_and(m.nvar(0), m.var(2));
  EXPECT_EQ(m.exists(m.bdd_or(f, g), just_b),
            m.bdd_or(m.exists(f, just_b), m.exists(g, just_b)));
  // Quantifying a variable outside the support is the identity.
  const std::vector<std::uint32_t> foreign = {3};
  EXPECT_EQ(m.exists(f, foreign), f);
}

TEST(Bdd, SubstituteRenamesInOrder) {
  BddManager m(6);
  // f over {0, 2}; shift to {1, 3} (order-preserving).
  const BddRef f = m.bdd_and(m.var(0), m.nvar(2));
  const std::vector<std::pair<std::uint32_t, std::uint32_t>> shift = {{0, 1},
                                                                      {2, 3}};
  EXPECT_EQ(m.substitute(f, shift), m.bdd_and(m.var(1), m.nvar(3)));
  EXPECT_EQ(m.substitute(f, {}), f);
  // An order-breaking rename (0 → 5 jumps past untouched var 2) is a bug.
  const std::vector<std::pair<std::uint32_t, std::uint32_t>> breaking = {
      {0, 5}};
  EXPECT_THROW((void)m.substitute(f, breaking), LogicError);
}

TEST(Bdd, HashConsingSharesStructure) {
  BddManager m(8);
  const std::size_t base = m.stats().nodes;
  const BddRef f = m.bdd_and(m.var(0), m.var(1));
  const std::size_t after_first = m.stats().nodes;
  // Rebuilding the same function allocates nothing.
  EXPECT_EQ(m.bdd_and(m.var(0), m.var(1)), f);
  EXPECT_EQ(m.stats().nodes, after_first);
  EXPECT_GT(after_first, base);
  EXPECT_GT(m.stats().unique_hits, 0u);
}

TEST(Bdd, UniqueTableStressStaysCanonical) {
  // Build a parity chain over 24 variables twice; canonical form means the
  // two roots are the same handle, through multiple table growths.
  BddManager m(24);
  const auto parity = [&m] {
    BddRef f = kBddFalse;
    for (std::uint32_t v = 0; v < 24; ++v) f = m.bdd_xor(f, m.var(v));
    return f;
  };
  const BddRef p1 = parity();
  const BddRef p2 = parity();
  EXPECT_EQ(p1, p2);
  // Parity of 24 bits: exactly half the assignments are odd.
  EXPECT_EQ(m.sat_count(p1, universe_of(24)), std::uint64_t{1} << 23);
  const BddStats& s = m.stats();
  EXPECT_GE(s.nodes, 2u + 2u * 23u + 1u);  // the parity ladder
  EXPECT_GT(s.cache_lookups, 0u);
  EXPECT_GT(s.ite_calls, 0u);
  EXPECT_EQ(s.vars, 24u);
}

}  // namespace
}  // namespace wb::sym
