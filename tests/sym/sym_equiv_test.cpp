// Cross-oracle equivalence: the symbolic (BDD) backend and the memoized
// enumerator against the `exhaustive:1` serial oracle. Everything the new
// backends answer must be *bit-identical* — same executions, same verdict
// arithmetic, same distinct-board count, byte-equal report lines — and
// everything they do not answer must be a typed refusal.
#include <gtest/gtest.h>

#include <string>

#include "src/cli/runners.h"
#include "src/cli/spec.h"
#include "src/protocols/anon_frontier.h"
#include "src/support/check.h"
#include "src/sym/encode.h"
#include "src/wb/exhaustive.h"

namespace wb::cli {
namespace {

/// The "schedules ... / verdict ..." block of a report — the exact bytes the
/// CI smoke job diffs between the two oracles.
std::string report_lines(const RunReport& r) {
  auto begin = r.summary.find("\nschedules ");
  EXPECT_NE(begin, std::string::npos) << r.summary;
  ++begin;  // past the anchoring newline
  const auto verdict = r.summary.find("verdict", begin);
  EXPECT_NE(verdict, std::string::npos) << r.summary;
  const auto end = r.summary.find('\n', verdict);
  return r.summary.substr(begin, end - begin);
}

RunReport serial_oracle(const char* protocol, const Graph& g) {
  ExhaustiveRunOptions opts;
  opts.threads = 1;
  return run_protocol_spec_exhaustive(protocol, g, opts);
}

void expect_symbolic_matches(const char* graph, const char* protocol,
                             const SymbolicRunOptions& opts = {}) {
  const Graph g = graph_from_spec(graph);
  const RunReport oracle = serial_oracle(protocol, g);
  const RunReport sym = run_protocol_spec_symbolic(protocol, g, opts);
  const std::string label =
      std::string(graph) + " " + protocol + " order=" +
      sym::to_string(opts.order) + " engine=" + sym::to_string(opts.engine);
  EXPECT_EQ(sym.executions, oracle.executions) << label;
  EXPECT_EQ(sym.engine_failures, oracle.engine_failures) << label;
  EXPECT_EQ(sym.wrong_outputs, oracle.wrong_outputs) << label;
  EXPECT_EQ(sym.correct, oracle.correct) << label;
  EXPECT_EQ(report_lines(sym), report_lines(oracle)) << label;
  EXPECT_NE(sym.summary.find("0 schedules enumerated"), std::string::npos)
      << label << "\n" << sym.summary;
}

TEST(SymEquiv, SymbolicMatchesTheSerialEnumerator) {
  // Every SYNC-capable zoo protocol the backend answers, on small graphs
  // where the enumerator is the affordable ground truth.
  const std::pair<const char*, const char*> cases[] = {
      {"twocliques:3", "two-cliques"},   // circuit, 720 schedules
      {"switched:3", "two-cliques"},     // circuit, NO instance
      {"path:4", "mis:1"},               // circuit, 24 schedules
      {"star:5", "anon-degree"},         // circuit, converging boards
      {"cycle:6", "anon-degree"},        // circuit, all-equal degrees
  };
  for (const auto& [graph, protocol] : cases) {
    expect_symbolic_matches(graph, protocol);
  }
}

TEST(SymEquiv, FrontierOnlyProtocolsMatch) {
  // SYNC (activation-gated) protocols have no circuit model; the explicit-
  // frontier engine must still reproduce the oracle bit-for-bit.
  SymbolicRunOptions opts;
  opts.engine = sym::SymEngine::kFrontier;
  const std::pair<const char*, const char*> cases[] = {
      {"cgnp:8:1/2:3", "sync-bfs"},
      {"twocliques:3", "spanning-forest"},
      {"path:5", "spanning-forest"},
  };
  for (const auto& [graph, protocol] : cases) {
    expect_symbolic_matches(graph, protocol, opts);
  }
}

TEST(SymEquiv, BothVariableOrdersAnswerIdentically) {
  for (const auto order : {sym::VarOrder::kInterleave, sym::VarOrder::kGrouped}) {
    SymbolicRunOptions opts;
    opts.order = order;
    expect_symbolic_matches("twocliques:3", "two-cliques", opts);
    expect_symbolic_matches("star:5", "anon-degree", opts);
  }
}

TEST(SymEquiv, CircuitAndFrontierEnginesAgree) {
  // The two symbolic engines are independent implementations of the same
  // semantics; cross-check them against each other, not just the oracle.
  for (const char* protocol : {"two-cliques", "anon-degree"}) {
    const Graph g = graph_from_spec("twocliques:3");
    SymbolicRunOptions circuit;
    circuit.engine = sym::SymEngine::kCircuit;
    SymbolicRunOptions frontier;
    frontier.engine = sym::SymEngine::kFrontier;
    const RunReport a = run_protocol_spec_symbolic(protocol, g, circuit);
    const RunReport b = run_protocol_spec_symbolic(protocol, g, frontier);
    EXPECT_EQ(a.executions, b.executions) << protocol;
    EXPECT_EQ(a.engine_failures, b.engine_failures) << protocol;
    EXPECT_EQ(a.wrong_outputs, b.wrong_outputs) << protocol;
    EXPECT_EQ(report_lines(a), report_lines(b)) << protocol;
    EXPECT_NE(a.summary.find("engine=circuit"), std::string::npos);
    EXPECT_NE(b.summary.find("engine=frontier"), std::string::npos);
  }
}

TEST(SymEquiv, AsynchronousClassesAreRefused) {
  // SIMASYNC freezes messages at activation — there is no per-round
  // transition relation, and the backend says so instead of guessing.
  EXPECT_THROW((void)run_protocol_spec_symbolic(
                   "square-oracle", graph_from_spec("grid:3x3")),
               sym::SymUnsupportedError);
  EXPECT_THROW((void)run_protocol_spec_symbolic(
                   "rand-two-cliques:11", graph_from_spec("twocliques:3")),
               sym::SymUnsupportedError);
  try {
    (void)run_protocol_spec_symbolic("square-oracle",
                                     graph_from_spec("grid:3x3"));
    FAIL() << "expected SymUnsupportedError";
  } catch (const sym::SymUnsupportedError& e) {
    EXPECT_NE(std::string(e.what()).find("symbolic backend unsupported"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("SIMASYNC"), std::string::npos)
        << e.what();
  }
}

TEST(SymEquiv, ForcedCircuitWithoutAModelIsRefused) {
  SymbolicRunOptions opts;
  opts.engine = sym::SymEngine::kCircuit;
  const Graph g = graph_from_spec("cgnp:8:1/2:3");
  EXPECT_THROW((void)run_protocol_spec_symbolic("sync-bfs", g, opts),
               sym::SymUnsupportedError);
}

TEST(SymEquiv, UnboundedWidthsHitTheVariableCap) {
  // complete:600 needs 6000 frontier variables against the 4096 cap; the
  // refusal is typed and happens before any BDD work.
  const Graph g = graph_from_spec("complete:600");
  try {
    (void)run_protocol_spec_symbolic("two-cliques", g);
    FAIL() << "expected SymUnsupportedError";
  } catch (const sym::SymUnsupportedError& e) {
    EXPECT_NE(std::string(e.what()).find("boolean variables"),
              std::string::npos)
        << e.what();
  }
}

// ---- the memoized enumerator (satellite 1) ----

TEST(SymEquiv, MemoizedSweepIsBitIdenticalToTheOracle) {
  // anon-degree on a star: all leaves share one degree, so schedules
  // converge factorially and the memo actually collapses the tree. The
  // report must not change by a byte.
  const Graph g = graph_from_spec("star:7");
  ExhaustiveRunOptions plain;
  plain.threads = 1;
  ExhaustiveRunOptions memo = plain;
  memo.memoize = true;
  const RunReport oracle = run_protocol_spec_exhaustive("anon-degree", g, plain);
  const RunReport memoized =
      run_protocol_spec_exhaustive("anon-degree", g, memo);
  EXPECT_EQ(memoized.executions, oracle.executions);
  EXPECT_EQ(memoized.engine_failures, oracle.engine_failures);
  EXPECT_EQ(memoized.wrong_outputs, oracle.wrong_outputs);
  EXPECT_EQ(report_lines(memoized), report_lines(oracle));
  EXPECT_NE(memoized.summary.find("memoize"), std::string::npos)
      << memoized.summary;
  EXPECT_NE(memoized.summary.find("memo hits"), std::string::npos)
      << memoized.summary;
  EXPECT_EQ(oracle.summary.find("memoize"), std::string::npos)
      << oracle.summary;
}

TEST(SymEquiv, MemoizationCollapsesConvergingSchedules) {
  // Direct sweep_memoized accounting: 7! = 5040 executions but far fewer
  // distinct states, because the anonymous messages erase write order.
  const Graph g = graph_from_spec("star:7");
  const AnonDegreeProtocol p;
  ExhaustiveOptions opts;
  opts.memoize = true;
  const MemoizedTotals t =
      sweep_memoized(g, p, [](const ExecutionResult&) { return true; }, opts);
  EXPECT_EQ(t.executions, 5040u);
  EXPECT_EQ(t.engine_failures, 0u);
  EXPECT_EQ(t.wrong_outputs, 0u);
  EXPECT_GT(t.memo_hits, 0u);
  EXPECT_LT(t.states_explored, t.executions);
  EXPECT_LT(t.terminals_visited, t.executions);
}

TEST(SymEquiv, MemoizationIsIdentityOnSignedProtocols) {
  // two-cliques signs every message with write_id: no two schedules
  // converge, the memo never hits, and the totals are still identical.
  const Graph g = graph_from_spec("twocliques:3");
  ExhaustiveRunOptions plain;
  plain.threads = 1;
  ExhaustiveRunOptions memo = plain;
  memo.memoize = true;
  const RunReport oracle = run_protocol_spec_exhaustive("two-cliques", g, plain);
  const RunReport memoized =
      run_protocol_spec_exhaustive("two-cliques", g, memo);
  EXPECT_EQ(report_lines(memoized), report_lines(oracle));
  EXPECT_EQ(memoized.executions, 720u);
}

TEST(SymEquiv, MemoizedHllDistinctMatchesTheOracle) {
  const Graph g = graph_from_spec("star:6");
  ExhaustiveRunOptions plain;
  plain.threads = 1;
  plain.distinct = DistinctConfig::Hll(12);
  ExhaustiveRunOptions memo = plain;
  memo.memoize = true;
  const RunReport oracle = run_protocol_spec_exhaustive("anon-degree", g, plain);
  const RunReport memoized =
      run_protocol_spec_exhaustive("anon-degree", g, memo);
  EXPECT_EQ(report_lines(memoized), report_lines(oracle));
  EXPECT_NE(memoized.summary.find("(hll:12)"), std::string::npos)
      << memoized.summary;
}

TEST(SymEquiv, MemoizedBudgetThrowsExactlyWhenTheOracleWould) {
  const Graph g = graph_from_spec("star:7");  // 5040 schedules
  ExhaustiveRunOptions memo;
  memo.threads = 1;
  memo.memoize = true;
  memo.max_executions = 100;
  EXPECT_THROW((void)run_protocol_spec_exhaustive("anon-degree", g, memo),
               BudgetExceededError);
  // At exactly the schedule count, both sweeps complete.
  memo.max_executions = 5040;
  const RunReport r = run_protocol_spec_exhaustive("anon-degree", g, memo);
  EXPECT_EQ(r.executions, 5040u);
}

}  // namespace
}  // namespace wb::cli
