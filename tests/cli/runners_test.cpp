#include "src/cli/runners.h"

#include <gtest/gtest.h>

#include "src/cli/spec.h"
#include "src/support/check.h"

namespace wb::cli {
namespace {

RunReport run(const std::string& graph, const std::string& protocol,
              const std::string& adversary = "first") {
  const Graph g = graph_from_spec(graph);
  auto adv = adversary_from_spec(adversary, g);
  return run_protocol_spec(protocol, g, *adv);
}

TEST(Runners, EveryProtocolSpecSmokeTest) {
  // (graph, protocol) pairs chosen so every runner validates successfully.
  const std::pair<const char*, const char*> cases[] = {
      {"forest:20:80:3", "build-forest"},
      {"kdeg:20:2:20:3", "build-degenerate:2"},
      {"gnp:12:1/3:5", "build-full"},
      {"cgnp:12:1/3:5", "mis:4"},
      {"twocliques:6", "two-cliques"},
      {"switched:6", "two-cliques"},
      {"twocliques:6", "rand-two-cliques:11"},
      {"ceob:14:1/4:2", "eob-bfs"},
      {"cycle:8", "bipartite-bfs"},
      {"cgnp:15:1/4:9", "sync-bfs"},
      {"gnp:14:1/2:1", "subgraph:5"},
      {"gnp:10:1/2:2", "triangle-oracle"},
      {"complete:5", "pair-chase"},
      {"gnp:16:1/8:4", "spanning-forest"},
      {"grid:3x3", "square-oracle"},
      {"star:8", "diameter-oracle:2"},
      {"cgnp:10:1/3:6", "connectivity-oracle"},
      {"twocliques:5", "connectivity-oracle"},
  };
  for (const auto& [graph, protocol] : cases) {
    const RunReport r = run(graph, protocol);
    EXPECT_TRUE(r.executed) << graph << " " << protocol;
    EXPECT_TRUE(r.correct) << graph << " " << protocol << "\n" << r.summary;
    EXPECT_FALSE(r.summary.empty());
  }
}

TEST(Runners, ExhaustiveSpecSweepsEverySchedule) {
  const Graph g = graph_from_spec("twocliques:3");  // 6 nodes, 6! schedules
  const RunReport serial = run_protocol_spec_exhaustive("two-cliques", g, 1);
  EXPECT_TRUE(serial.executed);
  EXPECT_TRUE(serial.correct) << serial.summary;
  EXPECT_EQ(serial.status, "success");
  EXPECT_NE(serial.summary.find("720 executions"), std::string::npos)
      << serial.summary;
  // Parallel sweeps must report the same totals as the serial oracle.
  for (const std::size_t threads : {std::size_t{0}, std::size_t{4}}) {
    const RunReport par =
        run_protocol_spec_exhaustive("two-cliques", g, threads);
    EXPECT_TRUE(par.correct) << par.summary;
    EXPECT_NE(par.summary.find("720 executions"), std::string::npos)
        << par.summary;
  }
}

TEST(Runners, ExhaustiveSpecReportsFailures) {
  // C6 is not two cliques; the SIMSYNC protocol still answers NO correctly
  // on every schedule, so use a wrong-promise input for build-forest, whose
  // rejection is correct — instead check an actually failing pairing:
  // sync-bfs expects its gated activations; a deadlocking toy is not
  // reachable via specs, so assert the budget guard instead.
  const Graph g = graph_from_spec("cgnp:12:1/3:5");
  EXPECT_THROW(
      (void)run_protocol_spec_exhaustive("mis:4", g, 0, /*max_executions=*/10),
      LogicError);
}

TEST(Runners, CounterexampleFindsSmallestPrefixFailingSchedule) {
  // broken-first:1 is wrong on exactly the schedules where node 1 does not
  // write first; the lexicographically-smallest failing write order on
  // path:4 is therefore 2 1 3 4. The serial sweep stops right there; the
  // parallel sweep takes the minimum over all failures — both must report
  // the identical schedule.
  const Graph g = graph_from_spec("path:4");
  ExhaustiveRunOptions opts;
  opts.counterexample = true;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    opts.threads = threads;
    const RunReport r =
        run_protocol_spec_exhaustive("broken-first:1", g, opts);
    EXPECT_FALSE(r.correct) << "threads=" << threads;
    EXPECT_EQ(r.counterexample, "2 1 3 4") << "threads=" << threads;
    EXPECT_NE(r.summary.find("counterexample 2 1 3 4 (wrong-output)"),
              std::string::npos)
        << "threads=" << threads << "\n" << r.summary;
  }
}

TEST(Runners, CounterexampleEmptyWhenEveryScheduleIsCorrect) {
  const Graph g = graph_from_spec("twocliques:3");
  ExhaustiveRunOptions opts;
  opts.threads = 1;
  opts.counterexample = true;
  const RunReport r = run_protocol_spec_exhaustive("two-cliques", g, opts);
  EXPECT_TRUE(r.correct) << r.summary;
  EXPECT_TRUE(r.counterexample.empty());
  EXPECT_NE(r.summary.find("counterexample none"), std::string::npos)
      << r.summary;
  EXPECT_NE(r.summary.find("720 executions"), std::string::npos) << r.summary;
}

TEST(Runners, ShardedSweepReproducesTheExhaustiveReportLines) {
  // plan / run x3 / merge for a CLI protocol spec: the merged totals must
  // produce byte-identical "schedules ... / verdict ..." lines to the
  // threads=1 exhaustive report — which is exactly what the CI smoke job
  // diffs across real processes.
  const Graph g = graph_from_spec("twocliques:3");  // 6 nodes, 720 schedules
  const RunReport serial = run_protocol_spec_exhaustive("two-cliques", g, 1);
  const auto specs = plan_protocol_spec_shards("two-cliques", g, 3);
  ASSERT_EQ(specs.size(), 3u);
  std::vector<shard::ShardResult> results;
  for (const auto& spec : specs) {
    // Round-trip every artifact through its text form, as processes would.
    const auto parsed = shard::parse_shard_spec(shard::serialize(spec));
    results.push_back(shard::parse_shard_result(
        shard::serialize(run_protocol_spec_shard(parsed, /*threads=*/2))));
  }
  const shard::MergedResult merged = shard::merge_shard_results(results);
  EXPECT_EQ(merged.executions, 720u);
  const std::string lines = exhaustive_summary_lines(
      merged.executions, merged.engine_failures, merged.wrong_outputs,
      merged.distinct_boards);
  EXPECT_NE(serial.summary.find(lines), std::string::npos)
      << "serial:\n" << serial.summary << "merged lines:\n" << lines;
}

TEST(Runners, HllExhaustiveReportMarksTheEstimateAndStaysDeterministic) {
  const Graph g = graph_from_spec("twocliques:3");  // 6 nodes, 720 schedules
  ExhaustiveRunOptions opts;
  opts.threads = 1;
  opts.distinct = DistinctConfig::Hll(14);
  const RunReport serial = run_protocol_spec_exhaustive("two-cliques", g, opts);
  EXPECT_TRUE(serial.correct) << serial.summary;
  EXPECT_NE(serial.summary.find("720 executions, ~"), std::string::npos)
      << serial.summary;
  EXPECT_NE(serial.summary.find("distinct final boards (hll:14)"),
            std::string::npos)
      << serial.summary;
  // The estimate line is bit-identical at any thread count.
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    opts.threads = threads;
    const RunReport par =
        run_protocol_spec_exhaustive("two-cliques", g, opts);
    EXPECT_EQ(par.summary.substr(par.summary.find("schedules")),
              serial.summary.substr(serial.summary.find("schedules")))
        << "threads=" << threads;
  }
  // The exact report is untouched by the hll machinery: no tilde marker.
  const RunReport exact = run_protocol_spec_exhaustive("two-cliques", g, 1);
  EXPECT_EQ(exact.summary.find("~"), std::string::npos) << exact.summary;
}

TEST(Runners, HllShardedSweepReproducesTheExhaustiveReportLines) {
  // Same contract as the exact version below, under distinct=hll:12: the
  // merged report lines must match the in-process sweep byte-for-byte.
  const Graph g = graph_from_spec("twocliques:3");
  ExhaustiveRunOptions opts;
  opts.threads = 1;
  opts.distinct = DistinctConfig::Hll(12);
  const RunReport serial = run_protocol_spec_exhaustive("two-cliques", g, opts);
  shard::PlanOptions plan;
  plan.distinct = DistinctConfig::Hll(12);
  const auto specs = plan_protocol_spec_shards("two-cliques", g, 3, plan);
  std::vector<shard::ShardResult> results;
  for (const auto& spec : specs) {
    const auto parsed = shard::parse_shard_spec(shard::serialize(spec));
    results.push_back(shard::parse_shard_result(
        shard::serialize(run_protocol_spec_shard(parsed, /*threads=*/2))));
  }
  const shard::MergedResult merged = shard::merge_shard_results(results);
  EXPECT_EQ(merged.executions, 720u);
  const std::string lines = exhaustive_summary_lines(
      merged.executions, merged.engine_failures, merged.wrong_outputs,
      merged.distinct_boards, merged.distinct);
  EXPECT_NE(serial.summary.find(lines), std::string::npos)
      << "serial:\n" << serial.summary << "merged lines:\n" << lines;
}

TEST(Runners, ShardedSweepCountsWrongOutputsLikeTheExhaustiveReport) {
  // The deliberately-broken fixture fails on a schedule-dependent subset;
  // sharded tallies must agree with the serial exhaustive report exactly.
  const Graph g = graph_from_spec("path:4");
  const RunReport serial =
      run_protocol_spec_exhaustive("broken-first:2", g, 1);
  const auto specs = plan_protocol_spec_shards("broken-first:2", g, 4);
  std::vector<shard::ShardResult> results;
  for (const auto& spec : specs) {
    results.push_back(run_protocol_spec_shard(spec, 1));
  }
  const shard::MergedResult merged = shard::merge_shard_results(results);
  const std::string lines = exhaustive_summary_lines(
      merged.executions, merged.engine_failures, merged.wrong_outputs,
      merged.distinct_boards);
  EXPECT_NE(serial.summary.find(lines), std::string::npos)
      << "serial:\n" << serial.summary << "merged lines:\n" << lines;
  EXPECT_GT(merged.wrong_outputs, 0u);
}

TEST(Runners, ReportsContainVitalSigns) {
  const RunReport r = run("forest:10:80:1", "build-forest", "random:3");
  EXPECT_NE(r.summary.find("protocol"), std::string::npos);
  EXPECT_NE(r.summary.find("status     success"), std::string::npos);
  EXPECT_NE(r.summary.find("board"), std::string::npos);
  EXPECT_NE(r.summary.find("verdict"), std::string::npos);
  EXPECT_EQ(r.status, "success");
}

TEST(Runners, RejectionIsACorrectAnswer) {
  // A cycle is not a forest: the builder must reject, and the runner counts
  // that as correct behaviour.
  const RunReport r = run("cycle:7", "build-forest");
  EXPECT_TRUE(r.correct);
  EXPECT_NE(r.summary.find("rejected"), std::string::npos);
}

TEST(Runners, DeadlockIsReportedNotValidated) {
  // triangle with tail deadlocks bipartite-bfs; correct=false, status tells.
  const Graph g = graph_from_spec("complete:3");
  GraphBuilder b(5);
  for (const Edge& e : g.edges()) b.add_edge(e.u, e.v);
  b.add_edge(3, 4);
  b.add_edge(4, 5);
  auto adv = adversary_from_spec("first", g);
  const Graph gg = b.build();
  auto adv2 = adversary_from_spec("first", gg);
  const RunReport r = run_protocol_spec("bipartite-bfs", gg, *adv2);
  EXPECT_TRUE(r.executed);
  EXPECT_FALSE(r.correct);
  EXPECT_EQ(r.status, "deadlock");
}

TEST(Runners, UnknownProtocolThrows) {
  const Graph g = graph_from_spec("path:4");
  auto adv = adversary_from_spec("first", g);
  EXPECT_THROW((void)run_protocol_spec("quantum-bfs", g, *adv), DataError);
}

TEST(Runners, BadArgumentsThrow) {
  const Graph g = graph_from_spec("path:4");
  auto adv = adversary_from_spec("first", g);
  EXPECT_THROW((void)run_protocol_spec("mis:9", g, *adv), DataError);  // root>n
  EXPECT_THROW((void)run_protocol_spec("build-degenerate", g, *adv),
               DataError);
}

}  // namespace
}  // namespace wb::cli
