#include "src/cli/spec.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "src/graph/algorithms.h"
#include "src/graph/generators.h"
#include "src/graph/io.h"

namespace wb::cli {
namespace {

TEST(SplitSpec, Basics) {
  EXPECT_EQ(split_spec("a:b:c"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split_spec("solo"), (std::vector<std::string>{"solo"}));
  EXPECT_EQ(split_spec("x:"), (std::vector<std::string>{"x", ""}));
}

TEST(ParseU64, AcceptsNumbersRejectsJunk) {
  EXPECT_EQ(parse_u64("42", "n"), 42u);
  EXPECT_EQ(parse_u64("0", "n"), 0u);
  EXPECT_THROW((void)parse_u64("", "n"), DataError);
  EXPECT_THROW((void)parse_u64("4x", "n"), DataError);
  EXPECT_THROW((void)parse_u64("-3", "n"), DataError);
}

TEST(ParseProb, FractionsValidated) {
  EXPECT_EQ(parse_prob("1/4"), (std::pair<std::uint64_t, std::uint64_t>{1, 4}));
  EXPECT_THROW((void)parse_prob("5"), DataError);
  EXPECT_THROW((void)parse_prob("3/2"), DataError);  // > 1
  EXPECT_THROW((void)parse_prob("1/0"), DataError);
}

TEST(SweepSpec, ParsesThreadsAndShardForms) {
  EXPECT_TRUE(is_exhaustive_spec("exhaustive"));
  EXPECT_TRUE(is_exhaustive_spec("exhaustive:4"));
  EXPECT_TRUE(is_exhaustive_spec("exhaustive:shards=2"));
  EXPECT_FALSE(is_exhaustive_spec("battery"));
  EXPECT_FALSE(is_exhaustive_spec("first"));

  SweepSpec spec = sweep_from_spec("exhaustive");
  EXPECT_EQ(spec.threads, 0u);
  EXPECT_EQ(spec.shards, 0u);
  EXPECT_EQ(spec.max_executions, kDefaultSweepBudget);

  spec = sweep_from_spec("exhaustive:3");
  EXPECT_EQ(spec.threads, 3u);
  EXPECT_EQ(spec.shards, 0u);

  spec = sweep_from_spec("exhaustive:shards=4");
  EXPECT_EQ(spec.threads, 0u);
  EXPECT_EQ(spec.shards, 4u);

  // Canonical order: THREADS before shards=.
  spec = sweep_from_spec("exhaustive:2:shards=4");
  EXPECT_EQ(spec.threads, 2u);
  EXPECT_EQ(spec.shards, 4u);

  // The legacy PR 4 order still parses.
  spec = sweep_from_spec("exhaustive:shards=4:2");
  EXPECT_EQ(spec.threads, 2u);
  EXPECT_EQ(spec.shards, 4u);

  EXPECT_THROW((void)sweep_from_spec("exhaustive:shards=0"), DataError);
  EXPECT_THROW((void)sweep_from_spec("exhaustive:shards=x"), DataError);
  EXPECT_THROW((void)sweep_from_spec("exhaustive:1:2"), DataError);
  EXPECT_THROW((void)sweep_from_spec("exhaustive:shards=2:1:0"), DataError);
  EXPECT_THROW((void)sweep_from_spec("exhaustive:shards=2:shards=3"),
               DataError);
  EXPECT_THROW((void)sweep_from_spec("exhaustive:bogus"), DataError);
  EXPECT_THROW((void)sweep_from_spec("battery"), DataError);
}

TEST(SweepSpec, ParsesTheBudgetOption) {
  SweepSpec spec = sweep_from_spec("exhaustive:budget=100000");
  EXPECT_EQ(spec.max_executions, 100000u);
  EXPECT_EQ(spec.threads, 0u);

  spec = sweep_from_spec("exhaustive:1:shards=4:budget=5000");
  EXPECT_EQ(spec.threads, 1u);
  EXPECT_EQ(spec.shards, 4u);
  EXPECT_EQ(spec.max_executions, 5000u);

  EXPECT_THROW((void)sweep_from_spec("exhaustive:budget=0"), DataError);
  EXPECT_THROW((void)sweep_from_spec("exhaustive:budget="), DataError);
  EXPECT_THROW((void)sweep_from_spec("exhaustive:budget=1:budget=2"),
               DataError);
}

TEST(SweepSpec, ParsesTheTrailingDistinctOption) {
  // distinct= is the final option of any exhaustive form (the hll config
  // itself contains a colon, so it cannot sit in the middle).
  SweepSpec spec = sweep_from_spec("exhaustive");
  EXPECT_EQ(spec.distinct, DistinctConfig::Exact());

  spec = sweep_from_spec("exhaustive:distinct=hll:14");
  EXPECT_EQ(spec.threads, 0u);
  EXPECT_EQ(spec.shards, 0u);
  EXPECT_EQ(spec.distinct, DistinctConfig::Hll(14));

  spec = sweep_from_spec("exhaustive:distinct=hll");
  EXPECT_EQ(spec.distinct, DistinctConfig::Hll());

  spec = sweep_from_spec("exhaustive:1:distinct=hll:8");
  EXPECT_EQ(spec.threads, 1u);
  EXPECT_EQ(spec.distinct, DistinctConfig::Hll(8));

  spec = sweep_from_spec("exhaustive:shards=4:distinct=exact");
  EXPECT_EQ(spec.shards, 4u);
  EXPECT_EQ(spec.distinct, DistinctConfig::Exact());

  spec = sweep_from_spec("exhaustive:shards=4:2:distinct=hll:12");
  EXPECT_EQ(spec.shards, 4u);
  EXPECT_EQ(spec.threads, 2u);
  EXPECT_EQ(spec.distinct, DistinctConfig::Hll(12));

  spec = sweep_from_spec("exhaustive:budget=77:distinct=hll:10");
  EXPECT_EQ(spec.max_executions, 77u);
  EXPECT_EQ(spec.distinct, DistinctConfig::Hll(10));

  EXPECT_THROW((void)sweep_from_spec("exhaustive:distinct=bogus"), DataError);
  EXPECT_THROW((void)sweep_from_spec("exhaustive:distinct=hll:99"), DataError);
  EXPECT_THROW((void)sweep_from_spec("exhaustive:distinct="), DataError);
}

TEST(SweepSpec, ParsesTheFaultsOption) {
  // faults= is the last option before distinct= (fault specs contain
  // colons too).
  SweepSpec spec = sweep_from_spec("exhaustive");
  EXPECT_EQ(spec.faults, FaultSpec::None());

  spec = sweep_from_spec("exhaustive:faults=crash:1");
  EXPECT_EQ(spec.faults, FaultSpec::Crash(1));

  spec = sweep_from_spec("exhaustive:2:faults=corrupt:1/8:3");
  EXPECT_EQ(spec.threads, 2u);
  EXPECT_EQ(spec.faults, FaultSpec::Corrupt(1, 8, 3));

  spec = sweep_from_spec(
      "exhaustive:shards=4:faults=adaptive:7:1024:distinct=hll:12");
  EXPECT_EQ(spec.shards, 4u);
  EXPECT_EQ(spec.faults, FaultSpec::Adaptive(7, 1024));
  EXPECT_EQ(spec.distinct, DistinctConfig::Hll(12));

  EXPECT_THROW((void)sweep_from_spec("exhaustive:faults=bogus:1"), DataError);
  EXPECT_THROW((void)sweep_from_spec("exhaustive:faults="), DataError);
  EXPECT_THROW((void)sweep_from_spec("exhaustive:faults=crash:x"), DataError);
}

TEST(SweepSpec, ParsesTheMemoizeOption) {
  SweepSpec spec = sweep_from_spec("exhaustive:memoize");
  EXPECT_TRUE(spec.memoize);
  EXPECT_EQ(spec.threads, 0u);

  spec = sweep_from_spec("exhaustive:1:memoize");
  EXPECT_TRUE(spec.memoize);
  EXPECT_EQ(spec.threads, 1u);

  spec = sweep_from_spec("exhaustive:memoize:budget=500");
  EXPECT_TRUE(spec.memoize);
  EXPECT_EQ(spec.max_executions, 500u);

  spec = sweep_from_spec("exhaustive:memoize:distinct=hll:12");
  EXPECT_TRUE(spec.memoize);
  EXPECT_EQ(spec.distinct, DistinctConfig::Hll(12));

  // The memoized sweep is serial, in-process, and fault-free — the parser
  // rejects contradictions instead of silently ignoring the flag.
  EXPECT_THROW((void)sweep_from_spec("exhaustive:4:memoize"), DataError);
  EXPECT_THROW((void)sweep_from_spec("exhaustive:memoize:shards=2"),
               DataError);
  EXPECT_THROW((void)sweep_from_spec("exhaustive:memoize:faults=crash:1"),
               DataError);
  EXPECT_THROW((void)sweep_from_spec("exhaustive:memoize:memoize"), DataError);
}

TEST(SymbolicSpec, ParsesOrderAndEngine) {
  EXPECT_TRUE(is_symbolic_spec("symbolic"));
  EXPECT_TRUE(is_symbolic_spec("symbolic:order=grouped"));
  EXPECT_FALSE(is_symbolic_spec("exhaustive"));
  EXPECT_FALSE(is_symbolic_spec("battery"));

  wb::cli::SymbolicSpec spec = symbolic_from_spec("symbolic");
  EXPECT_EQ(spec.order, sym::VarOrder::kInterleave);
  EXPECT_EQ(spec.engine, sym::SymEngine::kAuto);

  spec = symbolic_from_spec("symbolic:order=grouped");
  EXPECT_EQ(spec.order, sym::VarOrder::kGrouped);

  spec = symbolic_from_spec("symbolic:engine=frontier");
  EXPECT_EQ(spec.engine, sym::SymEngine::kFrontier);

  spec = symbolic_from_spec("symbolic:order=interleave:engine=circuit");
  EXPECT_EQ(spec.order, sym::VarOrder::kInterleave);
  EXPECT_EQ(spec.engine, sym::SymEngine::kCircuit);

  EXPECT_THROW((void)symbolic_from_spec("symbolic:order=bogus"), DataError);
  EXPECT_THROW((void)symbolic_from_spec("symbolic:engine="), DataError);
  EXPECT_THROW((void)symbolic_from_spec("symbolic:junk"), DataError);
  EXPECT_THROW((void)symbolic_from_spec("symbolic:order=grouped"
                                        ":order=interleave"),
               DataError);
}

TEST(SymbolicSpec, EnumeratorOptionsAreTypedRefusals) {
  // The backend enumerates nothing: thread counts, budgets, shards, fault
  // models, and distinct accumulators have no symbolic meaning. Each is a
  // SymUnsupportedError (exit 2), not a generic parse error.
  for (const char* spec :
       {"symbolic:1", "symbolic:4", "symbolic:budget=1000",
        "symbolic:shards=2", "symbolic:faults=crash:1",
        "symbolic:distinct=hll:12"}) {
    EXPECT_THROW((void)symbolic_from_spec(spec), sym::SymUnsupportedError)
        << spec;
  }
  // memoize belongs to the enumerator grammar; here it is just an unknown
  // token, not a capability the backend declines.
  EXPECT_THROW((void)symbolic_from_spec("symbolic:memoize"), DataError);
}

TEST(SymbolicSpec, FormatParseRoundTrip) {
  for (const char* canonical : {
           "symbolic",
           "symbolic:order=grouped",
           "symbolic:engine=circuit",
           "symbolic:engine=frontier",
           "symbolic:order=grouped:engine=frontier",
       }) {
    EXPECT_EQ(format_symbolic_spec(symbolic_from_spec(canonical)), canonical)
        << canonical;
  }
  for (const wb::cli::SymbolicSpec spec :
       {wb::cli::SymbolicSpec{},
        wb::cli::SymbolicSpec{.order = sym::VarOrder::kGrouped},
        wb::cli::SymbolicSpec{.engine = sym::SymEngine::kCircuit},
        wb::cli::SymbolicSpec{.order = sym::VarOrder::kGrouped,
                              .engine = sym::SymEngine::kFrontier}}) {
    EXPECT_EQ(symbolic_from_spec(format_symbolic_spec(spec)), spec);
  }
}

TEST(SweepSpec, FormatParseRoundTrip) {
  // format ∘ parse is the identity on canonical text...
  for (const char* canonical : {
           "exhaustive",
           "exhaustive:1",
           "exhaustive:memoize",
           "exhaustive:1:memoize:budget=7",
           "exhaustive:shards=4",
           "exhaustive:2:shards=4",
           "exhaustive:budget=100000",
           "exhaustive:distinct=hll:14",
           "exhaustive:faults=crash:2",
           "exhaustive:4:faults=corrupt:1/8:3:distinct=hll:10",
           "exhaustive:1:shards=8:budget=5000:distinct=hll:12",
           "exhaustive:1:shards=2:budget=5000:faults=adaptive:7:64"
           ":distinct=hll:12",
       }) {
    EXPECT_EQ(format_sweep_spec(sweep_from_spec(canonical)), canonical)
        << canonical;
  }
  // ...and parse ∘ format is the identity on every SweepSpec, including the
  // defaults format omits.
  for (const SweepSpec spec :
       {SweepSpec{}, SweepSpec{.threads = 3}, SweepSpec{.shards = 2},
        SweepSpec{.max_executions = 1}, SweepSpec{.memoize = true},
        SweepSpec{.threads = 1, .shards = 4, .max_executions = 9,
                  .distinct = DistinctConfig::Hll(9)}}) {
    EXPECT_EQ(sweep_from_spec(format_sweep_spec(spec)), spec);
  }
  // The legacy order normalizes to the canonical one.
  EXPECT_EQ(format_sweep_spec(sweep_from_spec("exhaustive:shards=4:2")),
            "exhaustive:2:shards=4");
}

TEST(GraphSpec, StructuredFamilies) {
  EXPECT_EQ(graph_from_spec("path:6"), path_graph(6));
  EXPECT_EQ(graph_from_spec("cycle:5"), cycle_graph(5));
  EXPECT_EQ(graph_from_spec("complete:4"), complete_graph(4));
  EXPECT_EQ(graph_from_spec("star:7"), star_graph(7));
  EXPECT_EQ(graph_from_spec("grid:3x4"), grid_graph(3, 4));
  EXPECT_EQ(graph_from_spec("twocliques:5"), two_cliques(5));
  EXPECT_EQ(graph_from_spec("switched:5"), two_cliques_switched(5));
}

TEST(GraphSpec, SeededFamiliesAreDeterministic) {
  EXPECT_EQ(graph_from_spec("tree:30:7"), random_tree(30, 7));
  EXPECT_EQ(graph_from_spec("forest:30:80:7"), random_forest(30, 80, 7));
  EXPECT_EQ(graph_from_spec("kdeg:30:3:20:7"),
            random_k_degenerate(30, 3, 20, 7));
  EXPECT_EQ(graph_from_spec("gnp:20:1/4:9"), erdos_renyi(20, 1, 4, 9));
  EXPECT_EQ(graph_from_spec("cgnp:20:1/4:9"), connected_gnp(20, 1, 4, 9));
  EXPECT_EQ(graph_from_spec("eob:20:1/4:9"),
            random_even_odd_bipartite(20, 1, 4, 9));
  EXPECT_EQ(graph_from_spec("ceob:20:1/4:9"),
            connected_even_odd_bipartite(20, 1, 4, 9));
  EXPECT_EQ(graph_from_spec("bipartite:5:6:1/3:2"),
            random_bipartite(5, 6, 1, 3, 2));
}

TEST(GraphSpec, Errors) {
  EXPECT_THROW((void)graph_from_spec("nope:5"), DataError);
  EXPECT_THROW((void)graph_from_spec("path"), DataError);
  EXPECT_THROW((void)graph_from_spec("grid:3"), DataError);
  EXPECT_THROW((void)graph_from_spec("gnp:10:0.5:1"), DataError);
}

TEST(GraphSpec, ScaleFamilies) {
  EXPECT_EQ(graph_from_spec("rmat:6:4:3"), rmat_graph(6, 4, 3));
  EXPECT_EQ(graph_from_spec("powerlaw:50:3:9"),
            random_power_law(50, 3, 2.5, 9));
  EXPECT_THROW((void)graph_from_spec("rmat:6:4"), DataError);
  EXPECT_THROW((void)graph_from_spec("powerlaw:50"), DataError);
}

TEST(GraphSpec, FileLoadsThroughTheStreamingReader) {
  const Graph g = erdos_renyi(15, 1, 3, 8);
  const std::string path =
      (std::filesystem::temp_directory_path() / "wb_spec_test.el").string();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    write_edge_list(g, out);
  }
  EXPECT_EQ(graph_from_spec("file:" + path), g);
  std::filesystem::remove(path);
  EXPECT_THROW((void)graph_from_spec("file:/no/such/file.el"), DataError);
  EXPECT_THROW((void)graph_from_spec("file:"), DataError);
}

TEST(AdversarySpec, AllKinds) {
  const Graph g = star_graph(5);
  EXPECT_EQ(adversary_from_spec("first", g)->name(), "first");
  EXPECT_EQ(adversary_from_spec("last", g)->name(), "last");
  EXPECT_EQ(adversary_from_spec("rotating", g)->name(), "rotating");
  EXPECT_EQ(adversary_from_spec("maxdeg", g)->name(), "max-degree");
  EXPECT_EQ(adversary_from_spec("mindeg", g)->name(), "min-degree");
  EXPECT_EQ(adversary_from_spec("random:5", g)->name(), "random");
  EXPECT_THROW((void)adversary_from_spec("evil", g), DataError);
  EXPECT_THROW((void)adversary_from_spec("random", g), DataError);
}

}  // namespace
}  // namespace wb::cli
