// The command registry's contract: help is generated from the table (a
// command cannot exist without appearing in it), dispatch routes by name
// with the default command as the fallback, and the exit-code conventions
// are centralized in one place.
#include "src/cli/command.h"

#include <gtest/gtest.h>

#include "src/support/check.h"

namespace wb::cli {
namespace {

CommandRegistry make_registry(std::vector<std::string>* trace) {
  CommandRegistry registry("tool");
  registry.set_default(Command{
      "", "positional specs", "tool <spec> [flags]",
      [trace](const std::vector<std::string>& args) {
        trace->push_back("default:" + std::to_string(args.size()));
        return kExitPass;
      }});
  registry.add(Command{
      "alpha", "does the alpha thing", "tool alpha <x>",
      [trace](const std::vector<std::string>& args) {
        trace->push_back("alpha:" + (args.empty() ? "" : args[0]));
        return kExitPass;
      }});
  registry.add(Command{
      "beta", "does the beta thing", "tool beta",
      [](const std::vector<std::string>&) { return kExitFail; }});
  return registry;
}

TEST(CommandRegistry, DispatchRoutesByNameWithDefaultFallback) {
  std::vector<std::string> trace;
  const CommandRegistry registry = make_registry(&trace);
  EXPECT_EQ(registry.dispatch({"alpha", "x"}), kExitPass);
  EXPECT_EQ(registry.dispatch({"beta"}), kExitFail);
  // An unknown first token is not an error: it is the default command's
  // first positional argument (graph specs are open-ended).
  EXPECT_EQ(registry.dispatch({"path:4", "proto"}), kExitPass);
  EXPECT_EQ(trace,
            (std::vector<std::string>{"alpha:x", "default:2"}));
}

TEST(CommandRegistry, OverviewListsEveryRegisteredCommand) {
  std::vector<std::string> trace;
  const CommandRegistry registry = make_registry(&trace);
  const std::string overview = registry.overview();
  EXPECT_NE(overview.find("tool <spec> [flags]"), std::string::npos);
  EXPECT_NE(overview.find("alpha"), std::string::npos);
  EXPECT_NE(overview.find("does the alpha thing"), std::string::npos);
  EXPECT_NE(overview.find("beta"), std::string::npos);
  EXPECT_NE(overview.find("help"), std::string::npos);
}

TEST(CommandRegistry, PerCommandHelpIsGeneratedFromTheTable) {
  std::vector<std::string> trace;
  const CommandRegistry registry = make_registry(&trace);
  const std::string help = registry.help_for("alpha");
  EXPECT_NE(help.find("usage: tool alpha <x>"), std::string::npos);
  EXPECT_NE(help.find("does the alpha thing"), std::string::npos);
  // An unknown name names the known commands in its diagnostic.
  try {
    (void)registry.help_for("gamma");
    FAIL();
  } catch (const DataError& e) {
    EXPECT_NE(std::string(e.what()).find("alpha"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("beta"), std::string::npos);
  }
}

TEST(CommandRegistry, DuplicateRegistrationIsABug) {
  std::vector<std::string> trace;
  CommandRegistry registry = make_registry(&trace);
  EXPECT_THROW(
      registry.add(Command{"alpha", "again", "tool alpha",
                           [](const std::vector<std::string>&) { return 0; }}),
      LogicError);
}

TEST(CommandRegistry, ExitCodeConventionsAreTheDocumentedOnes) {
  EXPECT_EQ(kExitPass, 0);
  EXPECT_EQ(kExitFail, 1);
  EXPECT_EQ(kExitUsage, 2);
  EXPECT_EQ(kExitBug, 3);
}

}  // namespace
}  // namespace wb::cli
