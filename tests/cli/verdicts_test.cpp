// The verdict matrix (ISSUE 9 deliverable): every zoo protocol x every
// failure model, exhaustive where the schedule/world space fits the per-cell
// budget, statistical (Wilson CI) where not. The committed golden at
// tests/wb/data/verdicts.golden is regenerated here and diffed byte-exact —
// any change to engine semantics, fault injection, classifier verdicts, or a
// protocol decoder must show up as a reviewable golden update, never as a
// silent drift.
#include "src/cli/verdicts.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/support/check.h"

namespace wb::cli {
namespace {

std::string data_file(const std::string& name) {
  const std::string path = std::string(WB_TEST_DATA_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing golden file " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(VerdictMatrix, RegeneratedMatrixIsByteIdenticalToTheCommittedGolden) {
  const std::string golden = data_file("verdicts.golden");
  const std::string regenerated = generate_verdict_matrix("");
  EXPECT_EQ(regenerated, golden)
      << "verdict matrix drifted — if the change is intentional, regenerate "
         "with `wbsim verdicts --out=tests/wb/data/verdicts.golden`";
}

TEST(VerdictMatrix, CoversEveryFailureModelForEveryRow) {
  const std::vector<std::string> lines = lines_of(data_file("verdicts.golden"));
  ASSERT_GE(lines.size(), 3u);
  EXPECT_EQ(lines.front(), "wb-verdicts v1");
  EXPECT_EQ(lines.back(), "end");
  // Every row of the zoo gets all four fault columns, in canonical order.
  const char* columns[] = {" none ", " crash:1 ", " corrupt:1/8:1 ",
                           " adaptive:7:256 "};
  std::size_t cells = 0;
  for (std::size_t i = 1; i + 1 < lines.size(); ++i) {
    const std::string& line = lines[i];
    ASSERT_TRUE(line.rfind("cell ", 0) == 0) << line;
    EXPECT_NE(line.find(columns[(i - 1) % 4]), std::string::npos) << line;
    // Every cell names its mode.
    EXPECT_TRUE(line.find(" mode=exhaustive ") != std::string::npos ||
                line.find(" mode=statistical ") != std::string::npos)
        << line;
    ++cells;
  }
  EXPECT_EQ(cells % 4, 0u);
  EXPECT_GE(cells / 4, 17u) << "zoo shrank below the protocol roster";
  // Adaptive columns are always statistical; the oversized build-forest
  // instance falls back to statistical for every fault model.
  for (const std::string& line : lines) {
    if (line.find(" adaptive:") != std::string::npos) {
      EXPECT_NE(line.find("mode=statistical"), std::string::npos) << line;
      EXPECT_NE(line.find(" ci="), std::string::npos) << line;
    }
    if (line.rfind("cell build-forest path:9 ", 0) == 0) {
      EXPECT_NE(line.find("mode=statistical"), std::string::npos) << line;
    }
  }
}

TEST(VerdictMatrix, FilteredMatrixIsTheMatchingSubsetOfTheGolden) {
  const std::vector<std::string> golden =
      lines_of(data_file("verdicts.golden"));
  const std::vector<std::string> filtered =
      lines_of(generate_verdict_matrix("krz-triangle"));
  ASSERT_EQ(filtered.size(), 2u + 4u);  // header + 4 fault columns + end
  for (const std::string& line : filtered) {
    if (line.rfind("cell ", 0) != 0) continue;
    EXPECT_NE(std::find(golden.begin(), golden.end(), line), golden.end())
        << "filtered cell not in golden: " << line;
  }
  EXPECT_THROW((void)generate_verdict_matrix("no-such-protocol"), DataError);
}

TEST(VerdictMatrix, CellRunnerReportsExhaustiveTotals) {
  // path:3 fault-free: 3! = 6 schedules, one world.
  const VerdictCell cell =
      run_verdict_cell("connectivity-oracle", "path:3", FaultSpec::None());
  EXPECT_FALSE(cell.statistical);
  EXPECT_EQ(cell.worlds, 1u);
  EXPECT_EQ(cell.executions, 6u);
  EXPECT_EQ(cell.engine_failures, 0u);
  EXPECT_EQ(cell.wrong_outputs, 0u);
  EXPECT_EQ(format_verdict_cell(cell),
            "cell connectivity-oracle path:3 none mode=exhaustive worlds=1 "
            "executions=6 failures=0 wrong=0\n");
}

TEST(VerdictMatrix, OversizedCellFallsBackToAStatisticalVerdict) {
  // 9! = 362880 > kVerdictCellBudget: the cell must degrade to sampled
  // trials instead of failing.
  const VerdictCell cell =
      run_verdict_cell("build-forest", "path:9", FaultSpec::None());
  EXPECT_TRUE(cell.statistical);
  EXPECT_EQ(cell.verdict_trials, kFallbackTrials);
  EXPECT_EQ(cell.verdict_failures, 0u);  // fault-free build-forest is correct
  const std::string line = format_verdict_cell(cell);
  EXPECT_NE(line.find("mode=statistical"), std::string::npos);
  EXPECT_NE(line.find("rate=0.0000"), std::string::npos);
}

}  // namespace
}  // namespace wb::cli
