#include "src/graph/enumerate.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/graph/algorithms.h"

namespace wb {
namespace {

TEST(Enumerate, AllLabeledGraphCounts) {
  for (std::size_t n : {1u, 2u, 3u, 4u, 5u}) {
    std::uint64_t count = 0;
    for_each_labeled_graph(n, [&](const Graph& g) {
      EXPECT_EQ(g.node_count(), n);
      ++count;
    });
    EXPECT_EQ(count, std::uint64_t{1} << (n * (n - 1) / 2));
  }
}

TEST(Enumerate, ConnectedCountsMatchOeisA001187) {
  // 1, 1, 4, 38, 728 connected labeled graphs on 1..5 nodes.
  const std::uint64_t expected[] = {1, 1, 4, 38, 728};
  for (std::size_t n = 1; n <= 5; ++n) {
    std::uint64_t count = 0;
    for_each_connected_graph(n, [&](const Graph&) { ++count; });
    EXPECT_EQ(count, expected[n - 1]) << "n=" << n;
  }
}

TEST(Enumerate, ForestCountsMatchOeisA001858) {
  // 1, 2, 7, 38, 291 labeled forests on 1..5 nodes.
  const std::uint64_t expected[] = {1, 2, 7, 38, 291};
  for (std::size_t n = 1; n <= 5; ++n) {
    std::uint64_t count = 0;
    for_each_labeled_forest(n, [&](const Graph& g) {
      EXPECT_TRUE(is_k_degenerate(g, 1));
      ++count;
    });
    EXPECT_EQ(count, expected[n - 1]) << "n=" << n;
    EXPECT_EQ(count_labeled_forests_exact(n), expected[n - 1]) << "n=" << n;
  }
}

TEST(Enumerate, ForestRecurrenceExtends) {
  // OEIS A001858 continues 2932, 36961, 561948.
  EXPECT_EQ(count_labeled_forests_exact(6), 2932u);
  EXPECT_EQ(count_labeled_forests_exact(7), 36961u);
  EXPECT_EQ(count_labeled_forests_exact(8), 561948u);
}

TEST(Enumerate, EvenOddBipartiteCounts) {
  for (std::size_t n : {2u, 3u, 4u, 5u}) {
    std::uint64_t count = 0;
    for_each_even_odd_bipartite_graph(n, [&](const Graph& g) {
      EXPECT_TRUE(is_even_odd_bipartite(g));
      ++count;
    });
    const std::size_t pairs = ((n + 1) / 2) * (n / 2);
    EXPECT_EQ(count, std::uint64_t{1} << pairs) << "n=" << n;
  }
}

TEST(Counting, ClosedForms) {
  EXPECT_DOUBLE_EQ(log2_count_all_graphs(10), 45.0);
  EXPECT_DOUBLE_EQ(log2_count_bipartite_fixed_parts(10), 25.0);
  EXPECT_DOUBLE_EQ(log2_count_even_odd_bipartite(10), 25.0);
  EXPECT_DOUBLE_EQ(log2_count_even_odd_bipartite(9), 20.0);
  EXPECT_DOUBLE_EQ(log2_count_subgraph_family(100, 10), 45.0);
}

TEST(Counting, ForestLogMatchesExactForSmallN) {
  for (std::size_t n = 1; n <= 14; ++n) {
    const double exact =
        std::log2(static_cast<double>(count_labeled_forests_exact(n)));
    EXPECT_NEAR(log2_count_labeled_forests(n), exact, 1e-9) << "n=" << n;
  }
}

TEST(Counting, ForestLogDomainIsMonotoneAndNearNLogN) {
  const double f100 = log2_count_labeled_forests(100);
  const double f200 = log2_count_labeled_forests(200);
  EXPECT_GT(f200, f100);
  // F(n) ≥ n^{n-2} (trees alone): log2 F(100) ≥ 98·log2(100) ≈ 651.
  EXPECT_GT(f100, 98 * std::log2(100.0) - 1);
  // And F(n) ≤ number of 1-degenerate graphs ≤ (n+1)^n roughly.
  EXPECT_LT(f100, 100 * std::log2(101.0) + 1);
}

TEST(Counting, KDegenerateLowerBoundGrowsWithK) {
  const double k1 = log2_count_k_degenerate_lower(200, 1);
  const double k3 = log2_count_k_degenerate_lower(200, 3);
  EXPECT_GT(k3, k1);
  EXPECT_GT(k1, 0.0);
}

TEST(Enumerate, GuardsAgainstBlowup) {
  EXPECT_THROW(for_each_labeled_graph(9, [](const Graph&) {}), LogicError);
}

}  // namespace
}  // namespace wb
