#include "src/graph/generators.h"

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "src/graph/algorithms.h"

namespace wb {
namespace {

TEST(Structured, PathCycleCompleteStar) {
  EXPECT_EQ(path_graph(5).edge_count(), 4u);
  EXPECT_EQ(path_graph(1).edge_count(), 0u);
  EXPECT_EQ(cycle_graph(6).edge_count(), 6u);
  EXPECT_EQ(complete_graph(5).edge_count(), 10u);
  EXPECT_EQ(star_graph(7).degree(1), 6u);
  EXPECT_EQ(grid_graph(3, 4).edge_count(), 3u * 3 + 4u * 2);
  EXPECT_EQ(complete_bipartite(3, 4).edge_count(), 12u);
}

TEST(Structured, TwoCliquesShape) {
  const Graph g = two_cliques(4);
  EXPECT_EQ(g.node_count(), 8u);
  EXPECT_TRUE(is_two_cliques(g));
  EXPECT_TRUE(is_regular(g, 3));
  EXPECT_FALSE(is_connected(g));
}

TEST(Structured, TwoCliquesSwitchedIsRegularConnectedNonCliques) {
  for (std::size_t n : {3u, 4u, 5u, 8u}) {
    const Graph g = two_cliques_switched(n);
    EXPECT_EQ(g.node_count(), 2 * n);
    EXPECT_TRUE(is_regular(g, n - 1)) << n;
    EXPECT_TRUE(is_connected(g)) << n;
    EXPECT_FALSE(is_two_cliques(g)) << n;
  }
}

class SeededGenTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(SeededGenTest, RandomTreeIsTree) {
  const auto [n, seed] = GetParam();
  const Graph g = random_tree(n, seed);
  EXPECT_EQ(g.edge_count(), n - 1);
  EXPECT_TRUE(is_connected(g));
}

TEST_P(SeededGenTest, RandomForestIsForest) {
  const auto [n, seed] = GetParam();
  const Graph g = random_forest(n, 70, seed);
  EXPECT_TRUE(is_k_degenerate(g, 1));
}

TEST_P(SeededGenTest, KDegenerateRespectsBound) {
  const auto [n, seed] = GetParam();
  for (int k : {1, 2, 3, 4}) {
    const Graph g = random_k_degenerate(n, k, 20, seed);
    EXPECT_LE(degeneracy_order(g).k, k) << "n=" << n << " k=" << k;
  }
}

TEST_P(SeededGenTest, EvenOddBipartiteHoldsParityInvariant) {
  const auto [n, seed] = GetParam();
  EXPECT_TRUE(is_even_odd_bipartite(random_even_odd_bipartite(n, 1, 3, seed)));
  if (n >= 2) {
    const Graph g = connected_even_odd_bipartite(n, 1, 4, seed);
    EXPECT_TRUE(is_even_odd_bipartite(g));
    EXPECT_TRUE(is_connected(g));
  }
}

TEST_P(SeededGenTest, ConnectedGnpIsConnected) {
  const auto [n, seed] = GetParam();
  EXPECT_TRUE(is_connected(connected_gnp(n, 1, 10, seed)));
}

TEST_P(SeededGenTest, BipartiteHasFixedParts) {
  const auto [n, seed] = GetParam();
  const std::size_t a = n / 2;
  const Graph g = random_bipartite(a, n - a, 1, 2, seed);
  for (const Edge& e : g.edges()) {
    EXPECT_LE(e.u, a);
    EXPECT_GT(e.v, a);
  }
}

TEST_P(SeededGenTest, PlantedTriangleWhenDense) {
  const auto [n, seed] = GetParam();
  if (n < 3) return;
  bool planted = false;
  const Graph g = planted_triangle(n, 2, 3, seed, &planted);
  if (planted) {
    EXPECT_TRUE(has_triangle(g));
  }
}

TEST_P(SeededGenTest, RandomPermutationIsValid) {
  const auto [n, seed] = GetParam();
  const auto perm = random_permutation(n, seed);
  std::set<NodeId> unique(perm.begin(), perm.end());
  EXPECT_EQ(unique.size(), n);
  EXPECT_EQ(*unique.begin(), 1u);
  EXPECT_EQ(*unique.rbegin(), static_cast<NodeId>(n));
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSeeds, SeededGenTest,
    ::testing::Combine(::testing::Values(2, 5, 16, 40, 101),
                       ::testing::Values(1u, 7u, 99u)));

TEST(Determinism, SameSeedSameGraph) {
  EXPECT_EQ(random_tree(30, 5), random_tree(30, 5));
  EXPECT_EQ(erdos_renyi(20, 1, 3, 9), erdos_renyi(20, 1, 3, 9));
  EXPECT_FALSE(erdos_renyi(20, 1, 3, 9) == erdos_renyi(20, 1, 3, 10));
}

TEST(ErdosRenyi, ExtremeProbabilities) {
  EXPECT_EQ(erdos_renyi(10, 0, 1, 3).edge_count(), 0u);
  EXPECT_EQ(erdos_renyi(10, 1, 1, 3).edge_count(), 45u);
}

TEST(Structured, Hypercube) {
  const Graph q3 = hypercube_graph(3);
  EXPECT_EQ(q3.node_count(), 8u);
  EXPECT_EQ(q3.edge_count(), 12u);
  EXPECT_TRUE(is_regular(q3, 3));
  EXPECT_TRUE(is_bipartite(q3));
  EXPECT_TRUE(is_connected(q3));
  EXPECT_EQ(diameter(q3), 3);
  EXPECT_EQ(hypercube_graph(0).node_count(), 1u);
}

TEST(Structured, Wheel) {
  const Graph w = wheel_graph(7);  // hub + C6
  EXPECT_EQ(w.edge_count(), 12u);
  EXPECT_EQ(w.degree(1), 6u);
  for (NodeId v = 2; v <= 7; ++v) EXPECT_EQ(w.degree(v), 3u);
  EXPECT_TRUE(has_triangle(w));
  EXPECT_EQ(diameter(w), 2);
}

TEST(Structured, Barbell) {
  const Graph b = barbell_graph(4, 2);
  EXPECT_EQ(b.node_count(), 10u);
  EXPECT_EQ(b.edge_count(), 2 * 6u + 3u);
  EXPECT_TRUE(is_connected(b));
  EXPECT_EQ(degeneracy_order(b).k, 3);
  EXPECT_TRUE(has_triangle(b));
}

TEST(RandomRegular, DegreeAndSimplicity) {
  for (auto [n, d] : {std::pair<std::size_t, std::size_t>{8, 3},
                      {10, 4},
                      {12, 5},
                      {16, 7}}) {
    for (std::uint64_t seed : {1u, 9u}) {
      const Graph g = random_regular(n, d, seed);
      EXPECT_TRUE(is_regular(g, d)) << n << " " << d;
      EXPECT_EQ(g.edge_count(), n * d / 2);
    }
  }
  EXPECT_THROW((void)random_regular(5, 3, 1), LogicError);  // n*d odd
}

TEST(Rmat, SeedDeterministicAndShaped) {
  const Graph a = rmat_graph(8, 8, 42);
  const Graph b = rmat_graph(8, 8, 42);
  EXPECT_EQ(a, b);  // same seed: bit-identical
  const Graph c = rmat_graph(8, 8, 43);
  EXPECT_NE(a, c);  // different seed: different graph
  EXPECT_EQ(a.node_count(), std::size_t{1} << 8);
  // Duplicates collapse, so m < samples; still a dense-ish core.
  EXPECT_GT(a.edge_count(), a.node_count());
  EXPECT_LE(a.edge_count(), (std::size_t{1} << 8) * 8);
  // Skew: RMAT's recursive quadrants concentrate degree far above average.
  std::size_t max_deg = 0;
  for (NodeId v = 1; v <= a.node_count(); ++v) {
    max_deg = std::max(max_deg, a.degree(v));
  }
  EXPECT_GT(max_deg, 4 * (2 * a.edge_count() / a.node_count()));
}

TEST(Rmat, ReportsBuildStats) {
  Graph::BuildStats stats;
  const Graph g = rmat_graph(6, 4, 7, &stats);
  EXPECT_EQ(stats.pairs, (std::size_t{1} << 6) * 4);
  EXPECT_EQ(stats.pairs, g.edge_count() + stats.self_loops_dropped +
                             stats.duplicates_dropped);
  EXPECT_GE(stats.peak_bytes, g.memory_bytes());
}

TEST(Rmat, RejectsBadParameters) {
  EXPECT_THROW((void)rmat_graph(0, 8, 1), LogicError);
  EXPECT_THROW((void)rmat_graph(29, 8, 1), LogicError);
  EXPECT_THROW((void)rmat_graph(8, 0, 1), LogicError);
}

TEST(PowerLaw, SeedDeterministicAndSkewed) {
  const Graph a = random_power_law(300, 4, 2.5, 11);
  EXPECT_EQ(a, random_power_law(300, 4, 2.5, 11));
  EXPECT_NE(a, random_power_law(300, 4, 2.5, 12));
  EXPECT_EQ(a.node_count(), 300u);
  std::size_t max_deg = 0;
  for (NodeId v = 1; v <= a.node_count(); ++v) {
    max_deg = std::max(max_deg, a.degree(v));
  }
  const std::size_t avg = 2 * a.edge_count() / a.node_count();
  EXPECT_GT(max_deg, 4 * avg);  // heavy head vs. the average degree
}

TEST(RandomRegular, SuppliesTwoCliquesNoInstances) {
  // (n-1)-regular on 2n nodes that is connected is a NO instance of
  // 2-CLIQUES; the pairing model gives connected samples routinely.
  std::size_t no_instances = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Graph g = random_regular(12, 5, seed);  // 2n=12, n-1=5
    if (!is_two_cliques(g)) ++no_instances;
  }
  EXPECT_GE(no_instances, 5u);
}

}  // namespace
}  // namespace wb
