#include "src/graph/graph.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/support/check.h"

namespace wb {
namespace {

TEST(Graph, EmptyGraph) {
  const Graph g(5);
  EXPECT_EQ(g.node_count(), 5u);
  EXPECT_EQ(g.edge_count(), 0u);
  for (NodeId v = 1; v <= 5; ++v) EXPECT_EQ(g.degree(v), 0u);
}

TEST(Graph, FromEdgeList) {
  const std::vector<Edge> edges = {{1, 2}, {2, 3}, {1, 3}};
  const Graph g(4, edges);
  EXPECT_EQ(g.edge_count(), 3u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.degree(4), 0u);
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_TRUE(g.has_edge(2, 1));
  EXPECT_FALSE(g.has_edge(1, 4));
  EXPECT_FALSE(g.has_edge(2, 2));
}

TEST(Graph, NeighborsAreSorted) {
  const std::vector<Edge> edges = {{2, 5}, {1, 2}, {2, 3}, {2, 4}};
  const Graph g(5, edges);
  const auto nb = g.neighbors(2);
  ASSERT_EQ(nb.size(), 4u);
  EXPECT_EQ(nb[0], 1u);
  EXPECT_EQ(nb[1], 3u);
  EXPECT_EQ(nb[2], 4u);
  EXPECT_EQ(nb[3], 5u);
}

TEST(Graph, RejectsDuplicateEdges) {
  const std::vector<Edge> edges = {{1, 2}, {1, 2}};
  EXPECT_THROW(Graph(3, edges), LogicError);
}

TEST(Graph, RejectsOutOfRangeEndpoints) {
  const std::vector<Edge> edges = {{1, 7}};
  EXPECT_THROW(Graph(3, edges), LogicError);
}

TEST(Graph, IdRangeChecked) {
  const Graph g(3);
  EXPECT_THROW((void)g.degree(0), LogicError);
  EXPECT_THROW((void)g.degree(4), LogicError);
}

TEST(MakeEdge, NormalizesOrder) {
  const Edge e = make_edge(5, 2);
  EXPECT_EQ(e.u, 2u);
  EXPECT_EQ(e.v, 5u);
  EXPECT_THROW((void)make_edge(3, 3), LogicError);
}

TEST(GraphBuilder, DeduplicatesAndBuilds) {
  GraphBuilder b(4);
  EXPECT_TRUE(b.add_edge(1, 2));
  EXPECT_FALSE(b.add_edge(2, 1));  // same edge
  EXPECT_TRUE(b.add_edge(3, 4));
  EXPECT_TRUE(b.has_edge(4, 3));
  EXPECT_FALSE(b.has_edge(1, 3));
  const Graph g = b.build();
  EXPECT_EQ(g.edge_count(), 2u);
}

TEST(GraphBuilder, RejectsSelfLoop) {
  GraphBuilder b(3);
  EXPECT_THROW(b.add_edge(2, 2), LogicError);
}

TEST(Graph, EqualityIsStructural) {
  const std::vector<Edge> e1 = {{1, 2}, {2, 3}};
  const std::vector<Edge> e2 = {{2, 3}, {1, 2}};
  EXPECT_EQ(Graph(3, e1), Graph(3, e2));
  EXPECT_FALSE(Graph(3, e1) == Graph(4, e1));
  const std::vector<Edge> e3 = {{1, 2}};
  EXPECT_FALSE(Graph(3, e1) == Graph(3, e3));
}

TEST(Relabel, PermutesEdges) {
  const std::vector<Edge> edges = {{1, 2}, {2, 3}};
  const Graph g(3, edges);
  const std::vector<NodeId> perm = {3, 1, 2};  // 1->3, 2->1, 3->2
  const Graph h = relabel(g, perm);
  EXPECT_TRUE(h.has_edge(3, 1));
  EXPECT_TRUE(h.has_edge(1, 2));
  EXPECT_FALSE(h.has_edge(2, 3));
}

TEST(Relabel, RejectsNonPermutations) {
  const Graph g(3);
  const std::vector<NodeId> bad = {1, 1, 2};
  EXPECT_THROW((void)relabel(g, bad), LogicError);
}

// --- Packed-CSR surface: bulk construction, edge adapter, memory ---

TEST(FromUnsortedEdges, NormalizesSortsAndDedups) {
  std::vector<Edge> messy = {{3, 2}, {2, 1}, {1, 2}, {4, 3}, {2, 3}};
  const Graph g = Graph::from_unsorted_edges(4, std::move(messy));
  EXPECT_EQ(g, Graph(4, {{1, 2}, {2, 3}, {3, 4}}));
}

TEST(FromUnsortedEdges, RejectsBadEndpointsAndLoops) {
  EXPECT_THROW((void)Graph::from_unsorted_edges(3, {{1, 4}}), LogicError);
  EXPECT_THROW((void)Graph::from_unsorted_edges(3, {{0, 2}}), LogicError);
  EXPECT_THROW((void)Graph::from_unsorted_edges(3, {{2, 2}}), LogicError);
}

TEST(EdgeRange, MatchesEdgeVectorAndIsSorted) {
  const Graph g(5, {{1, 2}, {1, 5}, {2, 3}, {3, 4}, {4, 5}});
  const std::vector<Edge> want = {{1, 2}, {1, 5}, {2, 3}, {3, 4}, {4, 5}};
  std::vector<Edge> seen;
  for (const Edge e : g.edges()) seen.push_back(e);
  EXPECT_EQ(seen, want);
  EXPECT_EQ(g.edge_vector(), want);
  EXPECT_EQ(g.edges().size(), g.edge_count());
}

TEST(EdgeRange, EmptyAndIsolatedNodes) {
  const Graph empty(4);
  EXPECT_EQ(empty.edges().begin(), empty.edges().end());
  // Isolated node 2 in the middle: the adapter must cross its empty block.
  const Graph g(3, {{1, 3}});
  std::vector<Edge> seen;
  for (const Edge e : g.edges()) seen.push_back(e);
  EXPECT_EQ(seen, (std::vector<Edge>{{1, 3}}));
}

TEST(FromPairStream, SymmetrizesAndReportsStats) {
  // Pairs in both orientations with a self-loop and a duplicate.
  const std::vector<std::pair<NodeId, NodeId>> pairs = {
      {2, 1}, {1, 2}, {3, 3}, {2, 3}, {1, 3}};
  Graph::BuildStats stats;
  const Graph g = Graph::from_pair_stream(
      3,
      [&](const Graph::PairSink& sink) {
        for (const auto& [a, b] : pairs) sink(a, b);
      },
      &stats);
  EXPECT_EQ(g, Graph(3, {{1, 2}, {1, 3}, {2, 3}}));
  EXPECT_EQ(stats.pairs, 5u);
  EXPECT_EQ(stats.self_loops_dropped, 1u);
  EXPECT_EQ(stats.duplicates_dropped, 1u);
  EXPECT_GE(stats.peak_bytes, g.memory_bytes());
}

TEST(FromPairStream, RejectsNonDeterministicReplay) {
  int pass = 0;
  EXPECT_THROW((void)Graph::from_pair_stream(
                   2,
                   [&](const Graph::PairSink& sink) {
                     sink(1, 2);
                     if (++pass > 1) sink(1, 2);  // extra pair on replay
                   }),
               LogicError);
}

TEST(FromPairStream, RejectsOutOfRangePairs) {
  EXPECT_THROW(
      (void)Graph::from_pair_stream(
          2, [](const Graph::PairSink& sink) { sink(1, 3); }),
      LogicError);
}

TEST(MemoryBytes, TracksCsrFootprint) {
  const Graph g(100, {{1, 2}, {50, 99}});
  // offsets: (n+1) u64; adjacency: 2m u32 — capacities may round up.
  EXPECT_GE(g.memory_bytes(), 101 * sizeof(std::uint64_t) + 4 * sizeof(NodeId));
}

TEST(GraphBuilder, ManyEdgesStayLinear) {
  // Regression guard for the old O(m^2) insertion path: 50k edges through
  // the builder must be effectively instant.
  const std::size_t n = 1000;
  GraphBuilder b(n);
  for (NodeId u = 1; u <= n; ++u) {
    for (NodeId v = u + 1; v <= u + 100 && v <= n; ++v) b.add_edge(u, v);
  }
  EXPECT_FALSE(b.add_edge(1, 2));  // duplicate still detected
  const Graph g = b.build();
  EXPECT_EQ(g.degree(500), 200u);
}

}  // namespace
}  // namespace wb
