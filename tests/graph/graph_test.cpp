#include "src/graph/graph.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/support/check.h"

namespace wb {
namespace {

TEST(Graph, EmptyGraph) {
  const Graph g(5);
  EXPECT_EQ(g.node_count(), 5u);
  EXPECT_EQ(g.edge_count(), 0u);
  for (NodeId v = 1; v <= 5; ++v) EXPECT_EQ(g.degree(v), 0u);
}

TEST(Graph, FromEdgeList) {
  const std::vector<Edge> edges = {{1, 2}, {2, 3}, {1, 3}};
  const Graph g(4, edges);
  EXPECT_EQ(g.edge_count(), 3u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.degree(4), 0u);
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_TRUE(g.has_edge(2, 1));
  EXPECT_FALSE(g.has_edge(1, 4));
  EXPECT_FALSE(g.has_edge(2, 2));
}

TEST(Graph, NeighborsAreSorted) {
  const std::vector<Edge> edges = {{2, 5}, {1, 2}, {2, 3}, {2, 4}};
  const Graph g(5, edges);
  const auto nb = g.neighbors(2);
  ASSERT_EQ(nb.size(), 4u);
  EXPECT_EQ(nb[0], 1u);
  EXPECT_EQ(nb[1], 3u);
  EXPECT_EQ(nb[2], 4u);
  EXPECT_EQ(nb[3], 5u);
}

TEST(Graph, RejectsDuplicateEdges) {
  const std::vector<Edge> edges = {{1, 2}, {1, 2}};
  EXPECT_THROW(Graph(3, edges), LogicError);
}

TEST(Graph, RejectsOutOfRangeEndpoints) {
  const std::vector<Edge> edges = {{1, 7}};
  EXPECT_THROW(Graph(3, edges), LogicError);
}

TEST(Graph, IdRangeChecked) {
  const Graph g(3);
  EXPECT_THROW((void)g.degree(0), LogicError);
  EXPECT_THROW((void)g.degree(4), LogicError);
}

TEST(MakeEdge, NormalizesOrder) {
  const Edge e = make_edge(5, 2);
  EXPECT_EQ(e.u, 2u);
  EXPECT_EQ(e.v, 5u);
  EXPECT_THROW((void)make_edge(3, 3), LogicError);
}

TEST(GraphBuilder, DeduplicatesAndBuilds) {
  GraphBuilder b(4);
  EXPECT_TRUE(b.add_edge(1, 2));
  EXPECT_FALSE(b.add_edge(2, 1));  // same edge
  EXPECT_TRUE(b.add_edge(3, 4));
  EXPECT_TRUE(b.has_edge(4, 3));
  EXPECT_FALSE(b.has_edge(1, 3));
  const Graph g = b.build();
  EXPECT_EQ(g.edge_count(), 2u);
}

TEST(GraphBuilder, RejectsSelfLoop) {
  GraphBuilder b(3);
  EXPECT_THROW(b.add_edge(2, 2), LogicError);
}

TEST(Graph, EqualityIsStructural) {
  const std::vector<Edge> e1 = {{1, 2}, {2, 3}};
  const std::vector<Edge> e2 = {{2, 3}, {1, 2}};
  EXPECT_EQ(Graph(3, e1), Graph(3, e2));
  EXPECT_FALSE(Graph(3, e1) == Graph(4, e1));
  const std::vector<Edge> e3 = {{1, 2}};
  EXPECT_FALSE(Graph(3, e1) == Graph(3, e3));
}

TEST(Relabel, PermutesEdges) {
  const std::vector<Edge> edges = {{1, 2}, {2, 3}};
  const Graph g(3, edges);
  const std::vector<NodeId> perm = {3, 1, 2};  // 1->3, 2->1, 3->2
  const Graph h = relabel(g, perm);
  EXPECT_TRUE(h.has_edge(3, 1));
  EXPECT_TRUE(h.has_edge(1, 2));
  EXPECT_FALSE(h.has_edge(2, 3));
}

TEST(Relabel, RejectsNonPermutations) {
  const Graph g(3);
  const std::vector<NodeId> bad = {1, 1, 2};
  EXPECT_THROW((void)relabel(g, bad), LogicError);
}

}  // namespace
}  // namespace wb
