#include "src/graph/io.h"

#include <gtest/gtest.h>

#include "src/graph/generators.h"
#include "src/support/check.h"

namespace wb {
namespace {

TEST(EdgeList, RoundTrip) {
  const Graph g = erdos_renyi(12, 1, 3, 5);
  const Graph h = from_edge_list(to_edge_list(g));
  EXPECT_EQ(g, h);
}

TEST(EdgeList, EmptyGraph) {
  const Graph g(4);
  EXPECT_EQ(to_edge_list(g), "4 0\n");
  EXPECT_EQ(from_edge_list("4 0\n"), g);
}

TEST(EdgeList, MalformedInputs) {
  EXPECT_THROW((void)from_edge_list(""), DataError);
  EXPECT_THROW((void)from_edge_list("3 2\n1 2\n"), DataError);      // truncated
  EXPECT_THROW((void)from_edge_list("3 1\n1 5\n"), DataError);      // range
  EXPECT_THROW((void)from_edge_list("3 1\n2 2\n"), DataError);      // loop
}

TEST(Dot, ContainsEdgesAndHighlights) {
  const std::vector<Edge> edges = {{1, 2}};
  const Graph g(3, edges);
  const std::string dot = to_dot(g, {2});
  EXPECT_NE(dot.find("1 -- 2;"), std::string::npos);
  EXPECT_NE(dot.find("2 [style=filled"), std::string::npos);
  EXPECT_NE(dot.find("  3;"), std::string::npos);  // isolated node listed
}

}  // namespace
}  // namespace wb
