#include "src/graph/io.h"

#include <gtest/gtest.h>

#include <istream>
#include <sstream>
#include <streambuf>
#include <string>

#include "src/graph/generators.h"
#include "src/support/check.h"

namespace wb {
namespace {

TEST(EdgeList, RoundTrip) {
  const Graph g = erdos_renyi(12, 1, 3, 5);
  const Graph h = from_edge_list(to_edge_list(g));
  EXPECT_EQ(g, h);
}

TEST(EdgeList, EmptyGraph) {
  const Graph g(4);
  EXPECT_EQ(to_edge_list(g), "4 0\n");
  EXPECT_EQ(from_edge_list("4 0\n"), g);
}

TEST(EdgeList, MalformedInputs) {
  EXPECT_THROW((void)from_edge_list(""), DataError);
  EXPECT_THROW((void)from_edge_list("3 2\n1 2\n"), DataError);      // truncated
  EXPECT_THROW((void)from_edge_list("3 1\n1 5\n"), DataError);      // range
  EXPECT_THROW((void)from_edge_list("3 1\n2 2\n"), DataError);      // loop
}

// --- Streaming loader (read_edge_list / write_edge_list) ---

/// An istream over a fixed string whose buffer does not support seeking, to
/// force read_edge_list onto its buffered single-pass fallback.
class NonSeekableBuf final : public std::streambuf {
 public:
  explicit NonSeekableBuf(std::string text) : text_(std::move(text)) {
    setg(text_.data(), text_.data(), text_.data() + text_.size());
  }
  // No seekoff/seekpos overrides: the std::streambuf defaults fail, so
  // tellg() returns -1 and the loader must not assume rewindability.

 private:
  std::string text_;
};

TEST(StreamEdgeList, SeekableRoundTripIsTwoPass) {
  const Graph g = erdos_renyi(40, 1, 4, 17);
  std::stringstream ss;
  write_edge_list(g, ss);
  EdgeListLoadStats stats;
  const Graph h = read_edge_list(ss, {}, &stats);
  EXPECT_EQ(g, h);
  EXPECT_TRUE(stats.two_pass);
  EXPECT_GT(stats.bytes_read, 0u);
  EXPECT_EQ(stats.build.pairs, g.edge_count());
  EXPECT_EQ(stats.build.self_loops_dropped, 0u);
  EXPECT_EQ(stats.build.duplicates_dropped, 0u);
}

TEST(StreamEdgeList, NonSeekableFallbackRoundTrip) {
  const Graph g = erdos_renyi(25, 1, 3, 23);
  std::stringstream ss;
  write_edge_list(g, ss);
  NonSeekableBuf buf(ss.str());
  std::istream in(&buf);
  EdgeListLoadStats stats;
  const Graph h = read_edge_list(in, {}, &stats);
  EXPECT_EQ(g, h);
  EXPECT_FALSE(stats.two_pass);
}

TEST(StreamEdgeList, WriterMatchesToEdgeList) {
  for (const Graph& g : {path_graph(6), star_graph(9), Graph(3)}) {
    std::ostringstream os;
    write_edge_list(g, os);
    EXPECT_EQ(os.str(), to_edge_list(g));
  }
}

TEST(StreamEdgeList, ToleratesMessyExternalInput) {
  // Unsorted, reversed, duplicated, both-direction, self-loop — must
  // collapse to path 1-2-3 on both the two-pass and the buffered path.
  const std::string messy = "3 6\n3 2\n1 2\n2 2\n2 1\n2 3\n1 2\n";
  const Graph want(3, {{1, 2}, {2, 3}});
  {
    std::stringstream ss(messy);
    EdgeListLoadStats stats;
    EXPECT_EQ(read_edge_list(ss, {}, &stats), want);
    EXPECT_TRUE(stats.two_pass);
    EXPECT_EQ(stats.build.self_loops_dropped, 1u);
    EXPECT_EQ(stats.build.duplicates_dropped, 3u);
    EXPECT_EQ(stats.build.pairs, 6u);  // every input pair, loops included
  }
  {
    NonSeekableBuf buf(messy);
    std::istream in(&buf);
    EdgeListLoadStats stats;
    EXPECT_EQ(read_edge_list(in, {}, &stats), want);
    EXPECT_EQ(stats.build.self_loops_dropped, 1u);
    EXPECT_EQ(stats.build.duplicates_dropped, 3u);
  }
}

TEST(StreamEdgeList, MalformedInputsAreDataErrors) {
  const auto load = [](const std::string& text) {
    std::stringstream ss(text);
    return read_edge_list(ss);
  };
  EXPECT_THROW((void)load(""), DataError);                  // missing header
  EXPECT_THROW((void)load("3"), DataError);                 // half a header
  EXPECT_THROW((void)load("3 2\n1 2\n"), DataError);        // truncated
  EXPECT_THROW((void)load("3 2\n1 2\n2"), DataError);       // odd token
  EXPECT_THROW((void)load("3 1\n0 2\n"), DataError);        // id 0
  EXPECT_THROW((void)load("3 1\n1 4\n"), DataError);        // out of range
  EXPECT_THROW((void)load("3 1\n1 x\n"), DataError);        // junk char
  EXPECT_THROW((void)load("3 1\n1 99999999999999999999\n"),
               DataError);                                  // overflow
}

TEST(StreamEdgeList, HeaderLimitsRejectHostileFiles) {
  EdgeListLimits tight;
  tight.max_nodes = 100;
  tight.max_edges = 10;
  {
    std::stringstream ss("101 0\n");
    EXPECT_THROW((void)read_edge_list(ss, tight), DataError);
  }
  {
    std::stringstream ss("5 11\n");
    EXPECT_THROW((void)read_edge_list(ss, tight), DataError);
  }
  {
    std::stringstream ss("100 0\n");
    EXPECT_EQ(read_edge_list(ss, tight), Graph(100));
  }
}

TEST(StreamEdgeList, WhitespaceIsFlexible) {
  std::stringstream ss("4   3\n\n1\t2\r\n2 3\n  3 4");
  EXPECT_EQ(read_edge_list(ss), Graph(4, {{1, 2}, {2, 3}, {3, 4}}));
}

TEST(Dot, ContainsEdgesAndHighlights) {
  const std::vector<Edge> edges = {{1, 2}};
  const Graph g(3, edges);
  const std::string dot = to_dot(g, {2});
  EXPECT_NE(dot.find("1 -- 2;"), std::string::npos);
  EXPECT_NE(dot.find("2 [style=filled"), std::string::npos);
  EXPECT_NE(dot.find("  3;"), std::string::npos);  // isolated node listed
}

}  // namespace
}  // namespace wb
