#include "src/graph/algorithms.h"

#include <gtest/gtest.h>

#include "src/graph/generators.h"

namespace wb {
namespace {

TEST(Bfs, DistancesOnPath) {
  const Graph g = path_graph(5);
  const BfsResult r = bfs_from(g, 1);
  for (NodeId v = 1; v <= 5; ++v) EXPECT_EQ(r.dist[v - 1], static_cast<int>(v) - 1);
  EXPECT_EQ(r.parent[0], kNoNode);
  EXPECT_EQ(r.parent[4], 4u);
}

TEST(Bfs, UnreachableIsMinusOne) {
  const std::vector<Edge> edges = {{1, 2}};
  const Graph g(4, edges);
  const BfsResult r = bfs_from(g, 1);
  EXPECT_EQ(r.dist[1], 1);
  EXPECT_EQ(r.dist[2], -1);
  EXPECT_EQ(r.dist[3], -1);
}

TEST(BfsForest, RootsAreComponentMinima) {
  // Components {1,4}, {2,3}, {5}.
  const std::vector<Edge> edges = {{1, 4}, {2, 3}};
  const Graph g(5, edges);
  const BfsForest f = bfs_forest(g);
  EXPECT_EQ(f.roots, (std::vector<NodeId>{1, 2, 5}));
  EXPECT_EQ(f.layer[0], 0);
  EXPECT_EQ(f.layer[3], 1);
  EXPECT_EQ(f.parent[3], 1u);
  EXPECT_EQ(f.layer[4], 0);
}

TEST(BfsForest, ValidatorAcceptsReferenceAndRejectsPerturbations) {
  const Graph g = connected_gnp(12, 1, 4, 3);
  BfsForest f = bfs_forest(g);
  EXPECT_TRUE(is_valid_bfs_forest(g, f.layer, f.parent));
  auto bad_layer = f.layer;
  bad_layer[5] += 1;
  EXPECT_FALSE(is_valid_bfs_forest(g, bad_layer, f.parent));
  auto bad_parent = f.parent;
  // Point some non-root's parent at itself.
  for (NodeId v = 1; v <= 12; ++v) {
    if (f.parent[v - 1] != kNoNode) {
      bad_parent[v - 1] = v;
      break;
    }
  }
  EXPECT_FALSE(is_valid_bfs_forest(g, f.layer, bad_parent));
}

TEST(Components, CountsAndIndexesByMinId) {
  const std::vector<Edge> edges = {{2, 5}, {3, 4}};
  const Graph g(6, edges);
  const Components c = connected_components(g);
  EXPECT_EQ(c.count, 4u);       // {1}, {2,5}, {3,4}, {6}
  EXPECT_EQ(c.component[0], 0u);
  EXPECT_EQ(c.component[1], 1u);
  EXPECT_EQ(c.component[4], 1u);
  EXPECT_EQ(c.component[2], 2u);
  EXPECT_EQ(c.component[5], 3u);
  EXPECT_FALSE(is_connected(g));
  EXPECT_TRUE(is_connected(path_graph(6)));
  EXPECT_TRUE(is_connected(Graph(1)));
}

TEST(Bipartite, EvenCycleYesOddCycleNo) {
  EXPECT_TRUE(is_bipartite(cycle_graph(8)));
  EXPECT_FALSE(is_bipartite(cycle_graph(7)));
  const auto coloring = bipartition(cycle_graph(4));
  ASSERT_TRUE(coloring.has_value());
  EXPECT_EQ((*coloring)[0], 0);
  EXPECT_NE((*coloring)[0], (*coloring)[1]);
}

TEST(EvenOddBipartite, ParityDefinition) {
  // 1-2 crosses parity; 1-3 does not.
  EXPECT_TRUE(is_even_odd_bipartite(Graph(3, std::vector<Edge>{{1, 2}})));
  EXPECT_FALSE(is_even_odd_bipartite(Graph(3, std::vector<Edge>{{1, 3}})));
  EXPECT_TRUE(is_even_odd_bipartite(path_graph(9)));  // consecutive ids
}

TEST(Degeneracy, KnownValues) {
  EXPECT_EQ(degeneracy_order(empty_graph(4)).k, 0);
  EXPECT_EQ(degeneracy_order(path_graph(6)).k, 1);
  EXPECT_EQ(degeneracy_order(random_tree(40, 3)).k, 1);
  EXPECT_EQ(degeneracy_order(cycle_graph(9)).k, 2);
  EXPECT_EQ(degeneracy_order(complete_graph(5)).k, 4);
  EXPECT_EQ(degeneracy_order(complete_bipartite(3, 7)).k, 3);
  EXPECT_EQ(degeneracy_order(grid_graph(4, 4)).k, 2);
}

TEST(Degeneracy, OrderWitnessesK) {
  const Graph g = erdos_renyi(30, 1, 4, 11);
  const Degeneracy d = degeneracy_order(g);
  // Replay the elimination: every node's degree among later nodes ≤ k.
  std::vector<bool> removed(g.node_count() + 1, false);
  for (NodeId v : d.order) {
    std::size_t later = 0;
    for (NodeId w : g.neighbors(v)) {
      if (!removed[w]) ++later;
    }
    EXPECT_LE(later, static_cast<std::size_t>(d.k));
    removed[v] = true;
  }
  EXPECT_TRUE(is_k_degenerate(g, d.k));
  EXPECT_FALSE(is_k_degenerate(g, d.k - 1));
}

TEST(Triangles, DetectionAndCounting) {
  EXPECT_FALSE(has_triangle(path_graph(10)));
  EXPECT_FALSE(has_triangle(complete_bipartite(4, 4)));
  EXPECT_TRUE(has_triangle(complete_graph(3)));
  EXPECT_EQ(count_triangles(complete_graph(4)), 4u);
  EXPECT_EQ(count_triangles(complete_graph(6)), 20u);
  EXPECT_EQ(count_triangles(cycle_graph(3)), 1u);
  EXPECT_EQ(count_triangles(cycle_graph(5)), 0u);
  const auto t = find_triangle(complete_graph(5));
  ASSERT_TRUE(t.has_value());
  EXPECT_TRUE((*t)[0] < (*t)[1] && (*t)[1] < (*t)[2]);
}

TEST(Squares, C4Detection) {
  EXPECT_TRUE(has_square(cycle_graph(4)));
  EXPECT_TRUE(has_square(complete_bipartite(2, 2)));
  EXPECT_FALSE(has_square(complete_graph(3)));
  EXPECT_FALSE(has_square(path_graph(8)));
  EXPECT_TRUE(has_square(grid_graph(2, 2)));
}

TEST(Diameter, PathAndDisconnected) {
  EXPECT_EQ(diameter(path_graph(7)), 6);
  EXPECT_EQ(diameter(complete_graph(5)), 1);
  EXPECT_EQ(diameter(cycle_graph(8)), 4);
  EXPECT_EQ(diameter(two_cliques(3)), -1);
}

TEST(IndependentSets, Validation) {
  const Graph g = cycle_graph(6);
  EXPECT_TRUE(is_independent_set(g, {1, 3, 5}));
  EXPECT_FALSE(is_independent_set(g, {1, 2}));
  EXPECT_FALSE(is_independent_set(g, {1, 1}));
  EXPECT_TRUE(is_maximal_independent_set(g, {1, 3, 5}));
  // {1,4} dominates 2,6 (via 1) and 3,5 (via 4): maximal despite size 2.
  EXPECT_TRUE(is_maximal_independent_set(g, {1, 4}));
  // {1} leaves 3,4,5 undominated.
  EXPECT_FALSE(is_maximal_independent_set(g, {1}));
  EXPECT_TRUE(is_rooted_mis(g, {2, 4, 6}, 4));
  EXPECT_FALSE(is_rooted_mis(g, {1, 3, 5}, 4));
}

TEST(TwoCliquesCheck, Shapes) {
  EXPECT_TRUE(is_two_cliques(two_cliques(5)));
  EXPECT_FALSE(is_two_cliques(two_cliques_switched(5)));
  EXPECT_FALSE(is_two_cliques(complete_graph(6)));
  EXPECT_FALSE(is_two_cliques(cycle_graph(6)));  // C6 is 2-regular, connected
  // Two triangles = two 3-cliques.
  const std::vector<Edge> tt = {{1, 2}, {1, 3}, {2, 3}, {4, 5}, {4, 6}, {5, 6}};
  EXPECT_TRUE(is_two_cliques(Graph(6, tt)));
  // Unequal components.
  const std::vector<Edge> uneq = {{1, 2}, {1, 3}, {2, 3}};
  EXPECT_FALSE(is_two_cliques(Graph(4, uneq)));
}

}  // namespace
}  // namespace wb
