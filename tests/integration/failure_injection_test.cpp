// Cross-module failure injection: every decoder must fail loudly (DataError)
// on corrupted whiteboards, the engine must flag protocol misbehavior, and
// the documented deadlock cases must deadlock — never hang, never return
// garbage silently.
#include <gtest/gtest.h>

#include "src/graph/algorithms.h"
#include "src/graph/generators.h"
#include "src/protocols/bfs_sync.h"
#include "src/protocols/build_degenerate.h"
#include "src/protocols/build_forest.h"
#include "src/protocols/eob_bfs.h"
#include "src/protocols/mis.h"
#include "src/protocols/two_cliques.h"
#include "src/wb/engine.h"

namespace wb {
namespace {

/// A whiteboard with one message whose bits are all ones (wrong everywhere).
Whiteboard garbage_board(std::size_t messages, std::size_t bits) {
  Whiteboard board;
  for (std::size_t i = 0; i < messages; ++i) {
    BitWriter w;
    for (std::size_t b = 0; b < bits; ++b) w.write_bit(true);
    board.append(w.take());
  }
  return board;
}

TEST(FailureInjection, DecodersRejectGarbageBoards) {
  // Node-count mismatch: every decoder checks message multiplicity or IDs.
  EXPECT_THROW((void)BuildForestProtocol().output(garbage_board(2, 12), 5),
               DataError);
  EXPECT_THROW(
      (void)BuildDegenerateProtocol(2).output(garbage_board(3, 200), 5),
      DataError);
  EXPECT_THROW((void)SyncBfsProtocol().output(garbage_board(5, 3), 5),
               DataError);
  EXPECT_THROW((void)EobBfsProtocol().output(garbage_board(5, 2), 5),
               DataError);
}

TEST(FailureInjection, DuplicateWritersDetectedEverywhere) {
  const Graph g = path_graph(3);
  const BuildForestProtocol forest;
  const ExecutionResult r = run_protocol(g, forest);
  ASSERT_TRUE(r.ok());
  Whiteboard dup;
  dup.append(r.board.message(0));
  dup.append(r.board.message(0));
  dup.append(r.board.message(1));
  EXPECT_THROW((void)forest.output(dup, 3), DataError);
}

TEST(FailureInjection, MisParsesButValidatorCatchesSemantics) {
  // The MIS decoder itself is permissive (it just collects IN ids); the
  // validator must reject fabricated non-independent sets.
  const Graph g = path_graph(3);
  const RootedMisProtocol p(1);
  Whiteboard forged;
  for (NodeId v = 1; v <= 3; ++v) {
    BitWriter w;
    w.write_uint(v - 1, 2);
    w.write_bit(true);  // everyone claims IN
    forged.append(w.take());
  }
  const MisOutput out = p.output(forged, 3);
  EXPECT_EQ(out.size(), 3u);
  EXPECT_FALSE(is_independent_set(g, out));
}

/// The canonical non-bipartite deadlock input for the ASYNC BFS protocol: a
/// triangle with a length-2 tail (the tail's far node waits on a layer
/// certificate that the intra-layer triangle edge keeps unbalanced forever).
Graph triangle_with_tail() {
  GraphBuilder b(5);
  b.add_edge(1, 2);
  b.add_edge(1, 3);
  b.add_edge(2, 3);
  b.add_edge(3, 4);
  b.add_edge(4, 5);
  return b.build();
}

TEST(FailureInjection, NonBipartiteDeadlocksBipartiteBfsButNotSyncBfs) {
  const Graph g = triangle_with_tail();
  const EobBfsProtocol bip(EobMode::kBipartiteNoCheck);
  const ExecutionResult r1 = run_protocol(g, bip);
  EXPECT_EQ(r1.status, RunStatus::kDeadlock);

  const SyncBfsProtocol sync_bfs;
  const ExecutionResult r2 = run_protocol(g, sync_bfs);
  EXPECT_EQ(r2.status, RunStatus::kSuccess);
}

TEST(FailureInjection, DeadlockReportsProgressSoFar) {
  const Graph g = triangle_with_tail();
  const EobBfsProtocol bip(EobMode::kBipartiteNoCheck);
  const ExecutionResult r = run_protocol(g, bip);
  ASSERT_EQ(r.status, RunStatus::kDeadlock);
  // The triangle and the first tail node write; node 5 never certifies.
  EXPECT_GE(r.board.message_count(), 1u);
  EXPECT_LT(r.board.message_count(), 5u);
  EXPECT_NE(r.error.find("deadlock"), std::string::npos);
}

TEST(FailureInjection, WrongNArgumentIsCaught) {
  const Graph g = path_graph(4);
  const BuildForestProtocol p;
  const ExecutionResult r = run_protocol(g, p);
  ASSERT_TRUE(r.ok());
  EXPECT_THROW((void)p.output(r.board, 5), DataError);   // expects 5 messages
  EXPECT_THROW((void)p.output(r.board, 3), DataError);   // expects 3
}

TEST(FailureInjection, TwoCliquesRejectsBadCode) {
  const TwoCliquesProtocol p;
  BitWriter w;
  w.write_uint(0, 1);  // id field for n=2 is 1 bit
  w.write_uint(3, 2);  // code 3 is undefined
  Whiteboard board;
  board.append(w.take());
  EXPECT_THROW((void)p.output(board, 2), DataError);
}

}  // namespace
}  // namespace wb
