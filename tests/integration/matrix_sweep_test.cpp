// The protocol × workload-family × adversary sweep: every protocol on every
// admissible family under every standard strategy, sizes parameterized.
// This is the broad-coverage net under the targeted per-protocol suites.
//
// Every adversary battery is fanned out across cores through the batch
// engine (src/wb/batch.h); results are deterministic at any thread count.
#include <gtest/gtest.h>

#include <tuple>

#include "src/graph/algorithms.h"
#include "src/graph/generators.h"
#include "src/protocols/bfs_sync.h"
#include "src/protocols/build_degenerate.h"
#include "src/protocols/build_forest.h"
#include "src/protocols/eob_bfs.h"
#include "src/protocols/mis.h"
#include "src/protocols/oracles.h"
#include "src/protocols/randomized.h"
#include "src/protocols/two_cliques.h"
#include "src/wb/batch.h"
#include "src/wb/engine.h"

namespace wb {
namespace {

class MatrixSweepTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
 protected:
  std::size_t n() const { return std::get<0>(GetParam()); }
  std::uint64_t seed() const { return std::get<1>(GetParam()); }
};

TEST_P(MatrixSweepTest, BuildForestOnForests) {
  const Graph g = random_forest(n(), 75, seed());
  const BuildForestProtocol p;
  for (const BatteryRun& run : run_standard_battery(g, p, seed())) {
    ASSERT_TRUE(run.result.ok()) << run.adversary;
    EXPECT_EQ(*p.output(run.result.board, n()), g) << run.adversary;
  }
}

TEST_P(MatrixSweepTest, BuildDegenerateAcrossK) {
  for (int k : {1, 2, 3}) {
    const Graph g = random_k_degenerate(n(), k, 30, seed());
    const BuildDegenerateProtocol p(k);
    for (const BatteryRun& run : run_standard_battery(g, p, seed())) {
      ASSERT_TRUE(run.result.ok()) << run.adversary << " k=" << k;
      EXPECT_EQ(*p.output(run.result.board, n()), g)
          << run.adversary << " k=" << k;
    }
  }
}

TEST_P(MatrixSweepTest, MisOnDenseAndSparse) {
  for (auto [num, den] : {std::pair{1u, 2u}, std::pair{1u, 8u}}) {
    const Graph g = erdos_renyi(n(), num, den, seed());
    const NodeId root = static_cast<NodeId>(1 + seed() % n());
    const RootedMisProtocol p(root);
    for (const BatteryRun& run : run_standard_battery(g, p, seed())) {
      ASSERT_TRUE(run.result.ok()) << run.adversary;
      EXPECT_TRUE(is_rooted_mis(g, p.output(run.result.board, n()), root))
          << run.adversary;
    }
  }
}

TEST_P(MatrixSweepTest, EobBfsOnSparseAndDenseBipartite) {
  for (auto [num, den] : {std::pair{1u, 2u}, std::pair{1u, 10u}}) {
    const Graph g = random_even_odd_bipartite(n(), num, den, seed());
    const EobBfsProtocol p;
    const BfsForest ref = bfs_forest(g);
    for (const BatteryRun& run : run_standard_battery(g, p, seed())) {
      ASSERT_TRUE(run.result.ok()) << run.adversary;
      const BfsProtocolOutput out = p.output(run.result.board, n());
      EXPECT_TRUE(out.valid && out.layer == ref.layer) << run.adversary;
    }
  }
}

TEST_P(MatrixSweepTest, SyncBfsOnEveryFamily) {
  const Graph graphs[] = {
      erdos_renyi(n(), 1, 3, seed()),
      connected_gnp(n(), 1, 6, seed()),
      random_tree(n(), seed()),
      random_even_odd_bipartite(n(), 1, 4, seed()),
  };
  const SyncBfsProtocol p;
  for (const Graph& g : graphs) {
    const BfsForest ref = bfs_forest(g);
    for (const BatteryRun& run : run_standard_battery(g, p, seed())) {
      ASSERT_TRUE(run.result.ok()) << run.adversary;
      const BfsProtocolOutput out = p.output(run.result.board, n());
      EXPECT_TRUE(out.layer == ref.layer &&
                  is_valid_bfs_forest(g, out.layer, out.parent))
          << run.adversary;
    }
  }
}

TEST_P(MatrixSweepTest, SpanningForestOnEveryFamily) {
  const Graph graphs[] = {erdos_renyi(n(), 1, 5, seed()),
                          random_forest(n(), 60, seed())};
  const SpanningForestProtocol p;
  for (const Graph& g : graphs) {
    for (const BatteryRun& run : run_standard_battery(g, p, seed())) {
      ASSERT_TRUE(run.result.ok()) << run.adversary;
      EXPECT_TRUE(is_spanning_forest_of(g, p.output(run.result.board, n())))
          << run.adversary;
    }
  }
}

TEST_P(MatrixSweepTest, TwoCliquesBothProtocols) {
  const std::size_t half = std::max<std::size_t>(2, n() / 2);
  const Graph yes = two_cliques(half);
  const Graph no = two_cliques_switched(half);
  const TwoCliquesProtocol det;
  const RandomizedTwoCliquesProtocol rnd(seed());
  for (const ProtocolWithOutput<TwoCliquesOutput>* p :
       {static_cast<const ProtocolWithOutput<TwoCliquesOutput>*>(&det),
        static_cast<const ProtocolWithOutput<TwoCliquesOutput>*>(&rnd)}) {
    for (const BatteryRun& run : run_standard_battery(yes, *p, seed())) {
      ASSERT_TRUE(run.result.ok());
      EXPECT_TRUE(p->output(run.result.board, 2 * half).yes) << run.adversary;
    }
    for (const BatteryRun& run : run_standard_battery(no, *p, seed())) {
      ASSERT_TRUE(run.result.ok());
      EXPECT_FALSE(p->output(run.result.board, 2 * half).yes) << run.adversary;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesSeeds, MatrixSweepTest,
    ::testing::Combine(::testing::Values(6, 13, 24, 50),
                       ::testing::Values(11u, 12021u)));

}  // namespace
}  // namespace wb
